module github.com/dsn2020-algorand/incentives

go 1.22
