package analysis

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
)

func paperInputs() core.Inputs {
	const total = 50e6
	return core.Inputs{
		SL:           26,
		SM:           13_000,
		SK:           total - 26 - 13_000,
		MinLeader:    1,
		MinCommittee: 1,
		MinOther:     10,
		Costs:        game.DefaultRoleCosts(),
	}
}

func findParam(t *testing.T, sens []Sensitivity, name string) Sensitivity {
	t.Helper()
	for _, s := range sens {
		if s.Param == name {
			return s
		}
	}
	t.Fatalf("parameter %q missing from sensitivities", name)
	return Sensitivity{}
}

func TestMechanismSensitivities(t *testing.T) {
	sens, err := MechanismSensitivities(paperInputs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) < 8 {
		t.Fatalf("only %d sensitivities computed", len(sens))
	}

	// The binding bound is B* ≈ (c^K − c_so)·S_K/(s*_k·γ), so locally:
	//   elasticity wrt S_K   ≈ +1
	//   elasticity wrt s*_k  ≈ −1
	//   elasticity wrt c^K   ≈ c^K/(c^K−c_so) = 6
	//   elasticity wrt c_so  ≈ −c_so/(c^K−c_so) = −5
	checks := []struct {
		param string
		want  float64
		tol   float64
	}{
		{"SK", 1, 0.1},
		{"s*_k", -1, 0.1},
		{"c^K", 6, 0.6},
		{"c_so", -5, 0.6},
	}
	for _, c := range checks {
		s := findParam(t, sens, c.param)
		if math.Abs(s.Elasticity-c.want) > c.tol {
			t.Errorf("elasticity(%s) = %.3f, want %.1f ± %.1f",
				c.param, s.Elasticity, c.want, c.tol)
		}
	}

	// Non-binding parameters barely move B*.
	for _, param := range []string{"SL", "SM", "c^L", "c^M"} {
		s := findParam(t, sens, param)
		if math.Abs(s.Elasticity) > 0.2 {
			t.Errorf("elasticity(%s) = %.3f, expected near zero (non-binding)",
				param, s.Elasticity)
		}
	}
}

func TestMostSensitive(t *testing.T) {
	sens, err := MechanismSensitivities(paperInputs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := MostSensitive(sens)
	if !ok {
		t.Fatal("no sensitivities")
	}
	// The cost gap c^K − c_so dominates: c^K has elasticity ~6.
	if top.Param != "c^K" {
		t.Errorf("most sensitive = %s (%.2f), want c^K", top.Param, top.Elasticity)
	}
	if _, ok := MostSensitive(nil); ok {
		t.Error("MostSensitive(nil) should report not found")
	}
}

func TestMechanismSensitivitiesValidation(t *testing.T) {
	if _, err := MechanismSensitivities(paperInputs(), 0); err == nil {
		t.Error("rel=0 accepted")
	}
	if _, err := MechanismSensitivities(paperInputs(), 1); err == nil {
		t.Error("rel=1 accepted")
	}
	bad := paperInputs()
	bad.SK = 0
	if _, err := MechanismSensitivities(bad, 0.01); err == nil {
		t.Error("infeasible base accepted")
	}
}
