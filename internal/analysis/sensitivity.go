// Package analysis provides sensitivity analysis for the reward
// mechanism: how the minimum incentive-compatible reward B* responds to
// perturbations in costs, role stakes and minimum stakes. The Foundation
// can read the elasticities to know which network quantities to monitor —
// the paper's closing recommendation made quantitative.
package analysis

import (
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/core"
)

// Sensitivity reports how B* responds to one parameter.
type Sensitivity struct {
	// Param names the perturbed input.
	Param string
	// Base is B* at the unperturbed inputs.
	Base float64
	// Perturbed is B* after scaling the parameter by (1 + Rel).
	Perturbed float64
	// Elasticity is (ΔB/B) / (Δx/x), the local log-log slope.
	Elasticity float64
}

// perturbation describes one scalar input of Algorithm 1.
type perturbation struct {
	name  string
	apply func(*core.Inputs, float64)
}

func perturbations() []perturbation {
	return []perturbation{
		{"SL", func(in *core.Inputs, f float64) { in.SL *= f }},
		{"SM", func(in *core.Inputs, f float64) { in.SM *= f }},
		{"SK", func(in *core.Inputs, f float64) { in.SK *= f }},
		{"s*_l", func(in *core.Inputs, f float64) { in.MinLeader *= f }},
		{"s*_m", func(in *core.Inputs, f float64) { in.MinCommittee *= f }},
		{"s*_k", func(in *core.Inputs, f float64) { in.MinOther *= f }},
		{"c^L", func(in *core.Inputs, f float64) { in.Costs.Leader *= f }},
		{"c^M", func(in *core.Inputs, f float64) { in.Costs.Committee *= f }},
		{"c^K", func(in *core.Inputs, f float64) { in.Costs.Other *= f }},
		{"c_so", func(in *core.Inputs, f float64) { in.Costs.Sortition *= f }},
	}
}

// MechanismSensitivities perturbs every Algorithm 1 input by the relative
// step rel (e.g. 0.01 for 1%) and reports the resulting elasticities of
// B*. Perturbations that make the inputs infeasible are skipped.
func MechanismSensitivities(in core.Inputs, rel float64) ([]Sensitivity, error) {
	if rel <= 0 || rel >= 1 {
		return nil, fmt.Errorf("analysis: relative step %g out of (0,1)", rel)
	}
	base, err := core.Minimize(in)
	if err != nil {
		return nil, fmt.Errorf("analysis: base point: %w", err)
	}
	out := make([]Sensitivity, 0, 10)
	for _, p := range perturbations() {
		perturbed := in
		p.apply(&perturbed, 1+rel)
		if perturbed.Validate() != nil {
			continue
		}
		res, err := core.Minimize(perturbed)
		if err != nil {
			continue
		}
		out = append(out, Sensitivity{
			Param:      p.name,
			Base:       base.MinB,
			Perturbed:  res.MinB,
			Elasticity: ((res.MinB - base.MinB) / base.MinB) / rel,
		})
	}
	return out, nil
}

// MostSensitive returns the sensitivity with the largest absolute
// elasticity, the quantity the operator should watch first.
func MostSensitive(sens []Sensitivity) (Sensitivity, bool) {
	var best Sensitivity
	found := false
	for _, s := range sens {
		if !found || abs(s.Elasticity) > abs(best.Elasticity) {
			best = s
			found = true
		}
	}
	return best, found
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
