// Package vrf provides the simulated verifiable random function used by
// cryptographic sortition. Algorand uses the VRF of Micali, Rabin and
// Vadhan (FOCS '99); this reproduction substitutes an HMAC-SHA256
// pseudo-VRF whose outputs are uniform and deterministic per
// (key, message) pair, which is the only property sortition's selection
// statistics depend on.
//
// Substitution note (see DESIGN.md): the "public key" of a simulated
// keypair carries enough material for verification by recomputation. This
// would be insecure in a real deployment but is behaviourally equivalent
// inside a trusted simulator: proofs are unforgeable within the simulation
// because only the engine holds the keys, and Verify rejects any tampered
// proof or message.
package vrf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
)

// hmacBlock is SHA-256's block size; HMAC pads the 32-byte key material
// with zeros up to this length.
const hmacBlock = 64

// hmacStackMsg is the longest message hashed without heap allocation.
// Sortition messages are 49 bytes, so the protocol hot path always stays
// on the stack; longer messages fall back to one temporary buffer.
const hmacStackMsg = 192

// hmacSHA256 computes HMAC-SHA256(key, msg) by the definition
// H(K⊕opad ‖ H(K⊕ipad ‖ msg)), using sha256.Sum256 over stack buffers so
// that the protocol hot path (VRF evaluate + verify per message) performs
// zero heap allocations. The result is bit-identical to crypto/hmac; a
// reference test pins the equivalence.
func hmacSHA256(key *[32]byte, msg []byte) [sha256.Size]byte {
	var inner [hmacBlock + hmacStackMsg]byte
	buf := inner[:]
	if len(msg) > hmacStackMsg {
		buf = make([]byte, hmacBlock+len(msg))
	}
	for i := 0; i < len(key); i++ {
		buf[i] = key[i] ^ 0x36
	}
	for i := len(key); i < hmacBlock; i++ {
		buf[i] = 0x36
	}
	copy(buf[hmacBlock:], msg)
	innerSum := sha256.Sum256(buf[:hmacBlock+len(msg)])

	var outer [hmacBlock + sha256.Size]byte
	for i := 0; i < len(key); i++ {
		outer[i] = key[i] ^ 0x5c
	}
	for i := len(key); i < hmacBlock; i++ {
		outer[i] = 0x5c
	}
	copy(outer[hmacBlock:], innerSum[:])
	return sha256.Sum256(outer[:])
}

// OutputLen is the byte length of a VRF output.
const OutputLen = sha256.Size

// Output is the pseudo-random value produced by evaluating the VRF.
type Output [OutputLen]byte

// Proof attests that an Output was produced by a given key on a message.
type Proof [OutputLen]byte

// PrivateKey evaluates the VRF. In this simulation it is 32 bytes of
// seed material.
type PrivateKey struct {
	material [32]byte
}

// PublicKey verifies VRF proofs produced by the matching PrivateKey.
type PublicKey struct {
	material [32]byte
}

// KeyPair bundles the two halves of a sortition identity.
type KeyPair struct {
	Private PrivateKey
	Public  PublicKey
}

// GenerateKey derives a keypair from the given random stream.
func GenerateKey(rng *rand.Rand) KeyPair {
	var m [32]byte
	for i := 0; i < len(m); i += 8 {
		binary.LittleEndian.PutUint64(m[i:], rng.Uint64())
	}
	return KeyPair{Private: PrivateKey{material: m}, Public: PublicKey{material: m}}
}

// Evaluate computes the VRF output and proof for msg under the private key.
// Output = SHA256(proof) so that the proof determines the output, exactly
// as in the Micali-Rabin-Vadhan construction.
func (k PrivateKey) Evaluate(msg []byte) (Output, Proof) {
	proof := Proof(hmacSHA256(&k.material, msg))
	return outputFromProof(proof), proof
}

// Verify reports whether proof is a valid VRF proof for msg under the
// public key, and whether out matches it.
func (k PublicKey) Verify(msg []byte, out Output, proof Proof) bool {
	expect := hmacSHA256(&k.material, msg)
	if !hmac.Equal(expect[:], proof[:]) {
		return false
	}
	return outputFromProof(proof) == out
}

func outputFromProof(p Proof) Output {
	return Output(sha256.Sum256(p[:]))
}

// Uniform maps the output to a float64 uniform in [0, 1). Sortition
// compares it against the binomial CDF of selected sub-users.
func (o Output) Uniform() float64 {
	u := binary.BigEndian.Uint64(o[:8])
	return float64(u>>11) / float64(uint64(1)<<53)
}

// Uint64 returns the leading 8 bytes of the output as an integer; used to
// derive sub-user priorities.
func (o Output) Uint64() uint64 {
	return binary.BigEndian.Uint64(o[:8])
}
