package vrf

import (
	"crypto/hmac"
	"crypto/sha256"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(seed int64) KeyPair {
	return GenerateKey(rand.New(rand.NewSource(seed)))
}

func TestEvaluateDeterministic(t *testing.T) {
	kp := testKey(1)
	msg := []byte("round-1-step-2")
	out1, proof1 := kp.Private.Evaluate(msg)
	out2, proof2 := kp.Private.Evaluate(msg)
	if out1 != out2 || proof1 != proof2 {
		t.Error("VRF evaluation is not deterministic")
	}
}

func TestEvaluateMessageSensitivity(t *testing.T) {
	kp := testKey(1)
	out1, _ := kp.Private.Evaluate([]byte("a"))
	out2, _ := kp.Private.Evaluate([]byte("b"))
	if out1 == out2 {
		t.Error("different messages produced identical outputs")
	}
}

func TestKeySensitivity(t *testing.T) {
	msg := []byte("same message")
	out1, _ := testKey(1).Private.Evaluate(msg)
	out2, _ := testKey(2).Private.Evaluate(msg)
	if out1 == out2 {
		t.Error("different keys produced identical outputs")
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	kp := testKey(3)
	msg := []byte("message")
	out, proof := kp.Private.Evaluate(msg)
	if !kp.Public.Verify(msg, out, proof) {
		t.Error("valid proof rejected")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	kp := testKey(3)
	msg := []byte("message")
	out, proof := kp.Private.Evaluate(msg)
	proof[0] ^= 0xff
	if kp.Public.Verify(msg, out, proof) {
		t.Error("tampered proof accepted")
	}
}

func TestVerifyRejectsTamperedOutput(t *testing.T) {
	kp := testKey(3)
	msg := []byte("message")
	out, proof := kp.Private.Evaluate(msg)
	out[0] ^= 0xff
	if kp.Public.Verify(msg, out, proof) {
		t.Error("tampered output accepted")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	kp := testKey(3)
	out, proof := kp.Private.Evaluate([]byte("original"))
	if kp.Public.Verify([]byte("forged"), out, proof) {
		t.Error("proof accepted for a different message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	msg := []byte("message")
	out, proof := testKey(1).Private.Evaluate(msg)
	if testKey(2).Public.Verify(msg, out, proof) {
		t.Error("proof accepted under a different key")
	}
}

func TestUniformRange(t *testing.T) {
	kp := testKey(4)
	var buf [8]byte
	for i := 0; i < 10_000; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		out, _ := kp.Private.Evaluate(buf[:])
		u := out.Uniform()
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform() = %v out of [0,1)", u)
		}
	}
}

func TestUniformDistribution(t *testing.T) {
	kp := testKey(5)
	n := 20_000
	sum := 0.0
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[0], buf[1], buf[2] = byte(i), byte(i>>8), byte(i>>16)
		out, _ := kp.Private.Evaluate(buf[:])
		sum += out.Uniform()
	}
	mean := sum / float64(n)
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

// The hand-rolled stack-buffer HMAC must be bit-identical to crypto/hmac
// for every message length, including the boundary where it falls back to
// a heap buffer. Simulation determinism across releases depends on this.
func TestHMACMatchesCryptoHMAC(t *testing.T) {
	var key [32]byte
	rng := rand.New(rand.NewSource(7))
	for i := range key {
		key[i] = byte(rng.Intn(256))
	}
	for _, n := range []int{0, 1, 48, 49, hmacStackMsg - 1, hmacStackMsg, hmacStackMsg + 1, 1024} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(rng.Intn(256))
		}
		got := hmacSHA256(&key, msg)
		mac := hmac.New(sha256.New, key[:])
		mac.Write(msg)
		want := mac.Sum(nil)
		if !hmac.Equal(got[:], want) {
			t.Errorf("len=%d: hmacSHA256 diverges from crypto/hmac", n)
		}
	}
}

// The sortition hot path calls Evaluate and Verify once per gossiped
// message; both must stay allocation-free for stack-sized messages.
func TestEvaluateVerifyAllocFree(t *testing.T) {
	kp := testKey(9)
	msg := make([]byte, 49) // sortition message size
	out, proof := kp.Private.Evaluate(msg)
	if n := testing.AllocsPerRun(100, func() {
		out, proof = kp.Private.Evaluate(msg)
	}); n > 0 {
		t.Errorf("Evaluate allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !kp.Public.Verify(msg, out, proof) {
			t.Fatal("verify failed")
		}
	}); n > 0 {
		t.Errorf("Verify allocates %v times per call, want 0", n)
	}
}

// Property: every (key, message) evaluation round-trips through Verify.
func TestEvaluateVerifyProperty(t *testing.T) {
	f := func(seed int64, msg []byte) bool {
		kp := testKey(seed)
		out, proof := kp.Private.Evaluate(msg)
		return kp.Public.Verify(msg, out, proof)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
