package ledger

import (
	"errors"
	"testing"
)

func TestVerifyChainEmpty(t *testing.T) {
	l := testLedger()
	if err := l.VerifyChain(); err != nil {
		t.Errorf("empty chain invalid: %v", err)
	}
}

func TestVerifyChainAfterAppends(t *testing.T) {
	l := testLedger()
	for r := uint64(1); r <= 5; r++ {
		if err := l.Append(EmptyBlock(r, l.Tip(), NextSeed(l.Seed(), r))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.VerifyChain(); err != nil {
		t.Errorf("healthy chain invalid: %v", err)
	}
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	l := testLedger()
	for r := uint64(1); r <= 3; r++ {
		if err := l.Append(EmptyBlock(r, l.Tip(), NextSeed(l.Seed(), r))); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper with an interior block.
	l.blocks[1].Proposer = 42
	if err := l.VerifyChain(); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tampered chain err = %v, want ErrChainBroken", err)
	}
}

func TestVerifyChainDetectsRoundGap(t *testing.T) {
	l := testLedger()
	if err := l.Append(EmptyBlock(1, l.Tip(), NextSeed(l.Seed(), 1))); err != nil {
		t.Fatal(err)
	}
	l.blocks[0].Round = 7
	if err := l.VerifyChain(); !errors.Is(err, ErrChainBroken) {
		t.Errorf("gapped chain err = %v, want ErrChainBroken", err)
	}
}

func TestFeesCollected(t *testing.T) {
	l := testLedger(50, 10, 10)
	block := Block{
		Round: 1, Prev: l.Tip(), Seed: NextSeed(l.Seed(), 1), Proposer: 0,
		Txns: []Transaction{
			{From: 0, To: 1, Amount: 5, Fee: 0.25, Nonce: 1},
			{From: 0, To: 2, Amount: 5, Fee: 0.75, Nonce: 2},
		},
	}
	if err := l.Append(block); err != nil {
		t.Fatal(err)
	}
	if got := l.FeesCollected(); got != 1.0 {
		t.Errorf("FeesCollected = %v, want 1", got)
	}
	// Sender paid amount + fee; receivers got only the amounts; the fee
	// left circulation (it is owed to the fee pool).
	if got := l.Stake(0); got != 50-5-0.25-5-0.75 {
		t.Errorf("sender balance = %v", got)
	}
	if got := l.TotalStake(); got != 70-1 {
		t.Errorf("total stake = %v, want fees removed", got)
	}
	if got := block.Fees(); got != 1.0 {
		t.Errorf("Block.Fees = %v, want 1", got)
	}
}

func TestValidateTxRequiresFeeCoverage(t *testing.T) {
	l := testLedger(10, 10, 10)
	if err := l.ValidateTx(Transaction{From: 0, To: 1, Amount: 9.5, Fee: 1}); !errors.Is(err, ErrInsufficientBal) {
		t.Errorf("err = %v, want ErrInsufficientBal", err)
	}
	if err := l.ValidateTx(Transaction{From: 0, To: 1, Amount: 5, Fee: -1}); !errors.Is(err, ErrBadAmount) {
		t.Errorf("negative fee err = %v, want ErrBadAmount", err)
	}
}
