package ledger

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// chainLedger builds a ledger with n accounts of stake 50 and r committed
// empty blocks.
func chainLedger(t *testing.T, n, r int) *Ledger {
	t.Helper()
	stakes := make([]float64, n)
	for i := range stakes {
		stakes[i] = 50
	}
	l := Genesis(stakes, rand.New(rand.NewSource(1)))
	for round := uint64(1); round <= uint64(r); round++ {
		if err := l.Append(EmptyBlock(round, l.Tip(), NextSeed(l.Seed(), round))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestCOWCloneIsSnapshot pins the clone contract in both directions:
// writes after the clone are invisible across it, for accounts (both
// Credit and transaction application) and for the chain.
func TestCOWCloneIsSnapshot(t *testing.T) {
	l := chainLedger(t, 200, 3)
	v := l.CloneView()

	// Source writes do not leak into the view.
	if err := l.Credit(7, 100); err != nil {
		t.Fatal(err)
	}
	block := Block{
		Round: l.Round(), Prev: l.Tip(), Seed: NextSeed(l.Seed(), l.Round()), Proposer: 0,
		Txns: []Transaction{{From: 0, To: 199, Amount: 10, Fee: 1, Nonce: 1}},
	}
	if err := l.Append(block); err != nil {
		t.Fatal(err)
	}
	if v.Stake(7) != 50 || v.Stake(0) != 50 || v.Stake(199) != 50 {
		t.Fatalf("source writes leaked into view: %v %v %v", v.Stake(7), v.Stake(0), v.Stake(199))
	}
	if v.Round() != 4 || v.FeesCollected() != 0 {
		t.Fatalf("source append leaked into view: round %d fees %v", v.Round(), v.FeesCollected())
	}

	// View writes do not leak into the source.
	if err := v.Credit(42, 5); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(EmptyBlock(4, v.Tip(), NextSeed(v.Seed(), 4))); err != nil {
		t.Fatal(err)
	}
	if l.Stake(42) != 50 {
		t.Fatalf("view credit leaked into source: %v", l.Stake(42))
	}
	if l.Stake(7) != 150 {
		t.Fatalf("source account corrupted: %v", l.Stake(7))
	}
	if err := v.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

// TestCOWSiblingViewsIndependent verifies that two views cloned from the
// same source never observe each other's writes even when they touch the
// same page.
func TestCOWSiblingViewsIndependent(t *testing.T) {
	l := chainLedger(t, 130, 2)
	a := l.CloneView()
	b := l.CloneView()
	if err := a.Credit(65, 1); err != nil { // page 1 on both
		t.Fatal(err)
	}
	if err := b.Credit(66, 2); err != nil {
		t.Fatal(err)
	}
	if a.Stake(66) != 50 || b.Stake(65) != 50 {
		t.Fatalf("sibling views share a materialized page: a(66)=%v b(65)=%v", a.Stake(66), b.Stake(65))
	}
	if l.Stake(65) != 50 || l.Stake(66) != 50 {
		t.Fatal("sibling view writes leaked into the source")
	}
}

// TestCOWCloneOfCloneFlattens exercises the cold path: cloning a view
// that both inherited a prefix and appended its own blocks.
func TestCOWCloneOfClone(t *testing.T) {
	l := chainLedger(t, 64, 2)
	v := l.CloneView()
	if err := v.Append(EmptyBlock(3, v.Tip(), NextSeed(v.Seed(), 3))); err != nil {
		t.Fatal(err)
	}
	w := v.CloneView()
	if w.Round() != 4 || w.Len() != 3 {
		t.Fatalf("clone-of-clone round %d len %d", w.Round(), w.Len())
	}
	if err := w.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	// All three replicas keep evolving independently.
	if err := w.Append(EmptyBlock(4, w.Tip(), NextSeed(w.Seed(), 4))); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 || l.Len() != 2 {
		t.Fatalf("append on grandchild leaked: v %d l %d", v.Len(), l.Len())
	}
	for r := uint64(1); r <= 4; r++ {
		if _, ok := w.BlockAt(r); !ok {
			t.Fatalf("BlockAt(%d) missing on grandchild", r)
		}
	}
}

// TestCOWDeepCloneSwitch pins the oracle toggle: with the switch on,
// CloneView must behave exactly like the historical full copy, and the
// switch must restore cleanly.
func TestCOWDeepCloneSwitch(t *testing.T) {
	prev := SetDeepCloneViews(true)
	defer SetDeepCloneViews(prev)
	l := chainLedger(t, 100, 2)
	v := l.CloneView()
	if err := l.Credit(0, 9); err != nil {
		t.Fatal(err)
	}
	if v.Stake(0) != 50 {
		t.Fatal("deep clone shares account state")
	}
	if v.Round() != l.Round() || v.Len() != 2 {
		t.Fatalf("deep clone chain mismatch: round %d len %d", v.Round(), v.Len())
	}
	if err := v.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

// measureCloneBytes reports the average heap bytes allocated by one
// CloneView plus a single-account write — the per-resync cost a
// desynchronised node pays in the simulator.
func measureCloneBytes(l *Ledger, iters int) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	clones := make([]*Ledger, iters) // keep clones live so GC cannot recycle mid-measure
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		v := l.CloneView()
		_ = v.Credit(i%l.NumAccounts(), 1)
		clones[i] = v
	}
	runtime.ReadMemStats(&after)
	_ = clones
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
}

// TestCOWResyncAllocBudget is the alloc pin for the tentpole: a resync
// clone must cost O(pages touched), not O(accounts). For 4096 accounts
// the deep clone copies the whole table (hundreds of KB); the COW clone
// must stay under a small budget that is dominated by the page-pointer
// table and one materialized page.
func TestCOWResyncAllocBudget(t *testing.T) {
	l := chainLedger(t, 4096, 4)

	// Pin each measurement's clone mode explicitly so the test means the
	// same thing under the ledger_deepclone oracle build tag.
	const iters = 200
	prev := SetDeepCloneViews(false)
	defer SetDeepCloneViews(prev)
	cowBytes := measureCloneBytes(l, iters)
	SetDeepCloneViews(true)
	deepBytes := measureCloneBytes(l, iters)
	SetDeepCloneViews(false)

	// 4096 accounts ≈ 64 page pointers (512 B) + ledger header + one
	// 64-account page copy; 32 KiB leaves ample noise headroom while a
	// full-table copy (≥ 4096 accounts × ~sizeof(Account)) cannot fit.
	const budget = 32 * 1024
	if cowBytes > budget {
		t.Errorf("COW resync allocates %.0f B/clone, budget %d — clone cost is scaling with accounts again", cowBytes, budget)
	}
	if cowBytes*4 > deepBytes {
		t.Errorf("COW resync (%.0f B) is not meaningfully cheaper than the deep-clone oracle (%.0f B)", cowBytes, deepBytes)
	}

	// Allocation count must not scale with accounts either: clone + one
	// page write is a handful of allocations.
	allocs := testing.AllocsPerRun(100, func() {
		v := l.CloneView()
		_ = v.Credit(1, 1)
	})
	if allocs > 8 {
		t.Errorf("COW resync performs %.1f allocations, want ≤ 8", allocs)
	}
}

// --- Differential clone oracle -------------------------------------------

// cowOp is one step of a randomized schedule replayed against both clone
// implementations.
type cowOp struct {
	kind   int // 0 append-payload, 1 append-empty, 2 credit, 3 resync view, 4 view-append
	view   int
	acct   int
	amount float64
}

// genSchedule derives a desync/crash-churn/reward-flavoured op mix: the
// canonical chain advances (payload or empty blocks), rewards are
// credited, views lag behind (crashed nodes miss appends) and
// resynchronise by re-cloning, and some views commit the canonical block
// themselves (the healthy-node path).
func genSchedule(rng *rand.Rand, views, ops int) []cowOp {
	sched := make([]cowOp, ops)
	for i := range sched {
		op := cowOp{view: rng.Intn(views), acct: rng.Intn(256)}
		switch r := rng.Float64(); {
		case r < 0.30:
			op.kind = 0
		case r < 0.45:
			op.kind = 1
		case r < 0.65:
			op.kind = 2
			op.amount = float64(rng.Intn(20) + 1)
		case r < 0.85:
			op.kind = 3
		default:
			op.kind = 4
		}
		sched[i] = op
	}
	return sched
}

// digest summarises every observable of a replica set: per-account
// stakes, tips, rounds, fees, and chain integrity.
func digest(t *testing.T, canonical *Ledger, views []*Ledger) string {
	t.Helper()
	out := ""
	for vi, l := range append([]*Ledger{canonical}, views...) {
		if err := l.VerifyChain(); err != nil {
			t.Fatalf("replica %d: %v", vi, err)
		}
		sum := 0.0
		for i, s := range l.Stakes() {
			sum += s * float64(i+1)
		}
		out += fmt.Sprintf("r%d:%d,%s,%.6f,%.6f;", vi, l.Round(), l.Tip(), l.FeesCollected(), sum)
	}
	return out
}

// runSchedule replays one schedule and returns the digest trace.
func runSchedule(t *testing.T, sched []cowOp, views int) []string {
	t.Helper()
	stakes := make([]float64, 256)
	for i := range stakes {
		stakes[i] = 100
	}
	canonical := Genesis(stakes, rand.New(rand.NewSource(99)))
	replicas := make([]*Ledger, views)
	for i := range replicas {
		replicas[i] = canonical.CloneView()
	}
	var trace []string
	nonce := uint64(0)
	for _, op := range sched {
		switch op.kind {
		case 0:
			round := canonical.Round()
			nonce++
			b := Block{
				Round: round, Prev: canonical.Tip(), Seed: NextSeed(canonical.Seed(), round), Proposer: op.acct,
				Txns: []Transaction{{From: op.acct, To: (op.acct + 17) % 256, Amount: 3, Fee: 0.5, Nonce: nonce}},
			}
			if err := canonical.Append(b); err != nil {
				t.Fatal(err)
			}
		case 1:
			round := canonical.Round()
			if err := canonical.Append(EmptyBlock(round, canonical.Tip(), NextSeed(canonical.Seed(), round))); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := canonical.Credit(op.acct, op.amount); err != nil {
				t.Fatal(err)
			}
		case 3:
			replicas[op.view] = canonical.CloneView()
		case 4:
			// A healthy node commits the canonical block for its round, if
			// it is not already ahead or desynced past it.
			v := replicas[op.view]
			if b, ok := canonical.BlockAt(v.Round()); ok && b.Prev == v.Tip() {
				if err := v.Append(b); err != nil {
					t.Fatal(err)
				}
			}
		}
		trace = append(trace, digest(t, canonical, replicas))
	}
	return trace
}

// TestCloneDifferentialOracle replays randomized desync/churn/reward
// schedules under the COW implementation and under the deep-clone oracle
// and requires every intermediate observable (accounts, tip, Round,
// fees) to be identical.
func TestCloneDifferentialOracle(t *testing.T) {
	const views = 6
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			sched := genSchedule(rand.New(rand.NewSource(seed)), views, 400)
			cow := runSchedule(t, sched, views)
			prev := SetDeepCloneViews(true)
			deep := runSchedule(t, sched, views)
			SetDeepCloneViews(prev)
			if len(cow) != len(deep) {
				t.Fatalf("trace lengths differ: %d vs %d", len(cow), len(deep))
			}
			for i := range cow {
				if cow[i] != deep[i] {
					t.Fatalf("op %d: COW and deep-clone observables diverge\ncow:  %s\ndeep: %s", i, cow[i], deep[i])
				}
			}
		})
	}
}
