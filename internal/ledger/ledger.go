// Package ledger implements the blockchain substrate: accounts with
// stakes, signed transactions, blocks, the hash chain, and the per-round
// random seed Q_r that feeds cryptographic sortition.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// Hash is a 32-byte SHA-256 digest used for blocks and seeds.
type Hash [32]byte

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// String renders the first 8 bytes in hex, enough for logs.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

// Account is one Algorand participant: a keypair plus a stake balance
// denominated in Algos.
type Account struct {
	// ID is the account's index in the ledger; it doubles as the node ID
	// in the network simulator.
	ID int
	// Keys is the sortition identity.
	Keys vrf.KeyPair
	// Stake is the balance in Algos.
	Stake float64
}

// Transaction transfers Amount Algos between two accounts and pays Fee
// Algos into the transaction-fee pool. Signatures are modelled by
// construction inside the trusted simulator; validity is a balance check.
type Transaction struct {
	From   int
	To     int
	Amount float64
	Fee    float64
	Nonce  uint64
}

// Hash returns the digest identifying the transaction.
func (t Transaction) Hash() Hash {
	var buf [8 * 5]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(int64(t.From)))
	binary.BigEndian.PutUint64(buf[8:], uint64(int64(t.To)))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(t.Amount))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(t.Fee))
	binary.BigEndian.PutUint64(buf[32:], t.Nonce)
	return sha256.Sum256(buf[:])
}

// Fees sums the fees carried by a block's transactions.
func (b Block) Fees() float64 {
	total := 0.0
	for _, tx := range b.Txns {
		total += tx.Fee
	}
	return total
}

// Block is either a payload block assembled by a proposer or the empty
// block that BA* falls back to when no proposal gains quorum.
type Block struct {
	Round    uint64
	Prev     Hash
	Seed     Hash
	Proposer int // -1 for the empty block
	Txns     []Transaction
	Empty    bool
}

// EmptyBlock constructs the round's default empty block, which is fully
// determined by the previous block so every node derives the same one.
func EmptyBlock(round uint64, prev, seed Hash) Block {
	return Block{Round: round, Prev: prev, Seed: seed, Proposer: -1, Empty: true}
}

// blockHeaderLen is the fixed-size prefix of a block's hash input:
// round ‖ prev ‖ seed ‖ proposer ‖ empty-flag.
const blockHeaderLen = 8 + 32 + 32 + 8 + 1

// blockHashStackTxns bounds the transaction count hashed without a heap
// allocation; empty and small blocks (the consensus hot path) stay on the
// stack.
const blockHashStackTxns = 13

// Hash returns the block digest: SHA-256 over the header prefix followed
// by every transaction hash. The byte stream matches the historical
// streaming implementation exactly, so digests are unchanged.
func (b Block) Hash() Hash {
	var stack [blockHeaderLen + 32*blockHashStackTxns]byte
	buf := stack[:0]
	if need := blockHeaderLen + 32*len(b.Txns); need > len(stack) {
		buf = make([]byte, 0, need)
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], b.Round)
	buf = append(buf, u64[:]...)
	buf = append(buf, b.Prev[:]...)
	buf = append(buf, b.Seed[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(int64(b.Proposer)))
	buf = append(buf, u64[:]...)
	if b.Empty {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, tx := range b.Txns {
		th := tx.Hash()
		buf = append(buf, th[:]...)
	}
	return Hash(sha256.Sum256(buf))
}

// Errors returned by ledger operations.
var (
	ErrBadRound        = errors.New("ledger: block round does not extend the chain")
	ErrBadPrev         = errors.New("ledger: block prev hash does not match chain tip")
	ErrUnknownAccount  = errors.New("ledger: unknown account")
	ErrInsufficientBal = errors.New("ledger: insufficient balance")
	ErrBadAmount       = errors.New("ledger: non-positive transaction amount")
)

// Ledger is one node's view of the chain plus the account table. The
// simulator shares a single genesis account table across nodes and lets
// each node maintain its own chain replica.
type Ledger struct {
	accounts []Account
	blocks   []Block
	seed     Hash
	tip      Hash // memoised hash of the last block; zero at genesis
	fees     float64
}

// FeesCollected returns the cumulative transaction fees deducted by
// applied blocks, the amount owed to the transaction-fee pool.
func (l *Ledger) FeesCollected() float64 { return l.fees }

// Genesis creates a ledger with n accounts whose stakes are given and
// whose keys derive from rng. The genesis seed Q_0 derives from the seed
// material of rng too, so two ledgers built with identical streams agree.
func Genesis(stakes []float64, rng *rand.Rand) *Ledger {
	accounts := make([]Account, len(stakes))
	for i, s := range stakes {
		accounts[i] = Account{ID: i, Keys: vrf.GenerateKey(rng), Stake: s}
	}
	var seed Hash
	for i := 0; i < len(seed); i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], rng.Uint64())
	}
	return &Ledger{accounts: accounts, seed: seed}
}

// CloneView returns an independent replica sharing the same genesis state.
// Each node in the network simulator holds its own view.
func (l *Ledger) CloneView() *Ledger {
	accounts := make([]Account, len(l.accounts))
	copy(accounts, l.accounts)
	blocks := make([]Block, len(l.blocks))
	copy(blocks, l.blocks)
	return &Ledger{accounts: accounts, blocks: blocks, seed: l.seed, tip: l.tip, fees: l.fees}
}

// NumAccounts returns the number of accounts.
func (l *Ledger) NumAccounts() int { return len(l.accounts) }

// Account returns account id, or an error when out of range.
func (l *Ledger) Account(id int) (Account, error) {
	if id < 0 || id >= len(l.accounts) {
		return Account{}, ErrUnknownAccount
	}
	return l.accounts[id], nil
}

// Stake returns the balance of account id (0 when unknown).
func (l *Ledger) Stake(id int) float64 {
	if id < 0 || id >= len(l.accounts) {
		return 0
	}
	return l.accounts[id].Stake
}

// TotalStake returns S_N, the total stake across accounts.
func (l *Ledger) TotalStake() float64 {
	sum := 0.0
	for _, a := range l.accounts {
		sum += a.Stake
	}
	return sum
}

// Credit adds amount Algos to account id; used by reward disbursement.
func (l *Ledger) Credit(id int, amount float64) error {
	if id < 0 || id >= len(l.accounts) {
		return ErrUnknownAccount
	}
	if amount < 0 {
		return ErrBadAmount
	}
	l.accounts[id].Stake += amount
	return nil
}

// Round returns the next round to be agreed on (1 + number of blocks).
func (l *Ledger) Round() uint64 { return uint64(len(l.blocks)) + 1 }

// Tip returns the hash of the last agreed block, or the zero hash at
// genesis. The hash is memoised at Append time: consensus consults the
// tip many times per round, and rehashing the block each call dominated
// the round loop's allocation profile.
func (l *Ledger) Tip() Hash {
	return l.tip
}

// Seed returns Q_{r-1}, the sortition seed for the upcoming round.
func (l *Ledger) Seed() Hash { return l.seed }

// NextSeed derives Q_r from Q_{r-1} and the round number, as the paper's
// seed-generation task does ("a random number generated by VRF from the
// last seed value and the current round number").
func NextSeed(prev Hash, round uint64) Hash {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], round)
	h.Write(buf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// ValidateTx checks a transaction against current balances. The sender
// must cover both the transferred amount and the fee.
func (l *Ledger) ValidateTx(tx Transaction) error {
	if tx.Amount <= 0 || tx.Fee < 0 {
		return ErrBadAmount
	}
	if tx.From < 0 || tx.From >= len(l.accounts) || tx.To < 0 || tx.To >= len(l.accounts) {
		return ErrUnknownAccount
	}
	if l.accounts[tx.From].Stake < tx.Amount+tx.Fee {
		return ErrInsufficientBal
	}
	return nil
}

// ValidateBlock checks that b extends this ledger's chain.
func (l *Ledger) ValidateBlock(b Block) error {
	if b.Round != l.Round() {
		return ErrBadRound
	}
	if b.Prev != l.Tip() {
		return ErrBadPrev
	}
	if b.Empty {
		return nil
	}
	for _, tx := range b.Txns {
		if err := l.ValidateTx(tx); err != nil {
			return fmt.Errorf("round %d tx: %w", b.Round, err)
		}
	}
	return nil
}

// Append validates and commits block b: transactions are applied to
// balances and the sortition seed advances.
func (l *Ledger) Append(b Block) error {
	if err := l.ValidateBlock(b); err != nil {
		return err
	}
	if !b.Empty {
		for _, tx := range b.Txns {
			// Re-validate sequentially: earlier transactions in the block may
			// have drained the sender.
			if err := l.ValidateTx(tx); err != nil {
				continue // invalid-at-apply transactions are skipped, not fatal
			}
			l.accounts[tx.From].Stake -= tx.Amount + tx.Fee
			l.accounts[tx.To].Stake += tx.Amount
			l.fees += tx.Fee
		}
	}
	l.blocks = append(l.blocks, b)
	l.seed = NextSeed(l.seed, b.Round)
	l.tip = b.Hash()
	return nil
}

// BlockAt returns the agreed block for round r (1-based).
func (l *Ledger) BlockAt(r uint64) (Block, bool) {
	if r < 1 || r > uint64(len(l.blocks)) {
		return Block{}, false
	}
	return l.blocks[r-1], true
}

// Len returns the number of committed blocks.
func (l *Ledger) Len() int { return len(l.blocks) }

// Stakes returns a copy of all balances, indexed by account ID.
func (l *Ledger) Stakes() []float64 {
	out := make([]float64, len(l.accounts))
	for i, a := range l.accounts {
		out[i] = a.Stake
	}
	return out
}

// ErrChainBroken reports a hash-chain integrity violation.
var ErrChainBroken = errors.New("ledger: hash chain broken")

// VerifyChain re-validates the committed chain's structure: rounds are
// consecutive from 1 and every block's Prev equals the previous block's
// hash. It is the integrity audit nodes would run after a catch-up.
func (l *Ledger) VerifyChain() error {
	prev := Hash{}
	for i, b := range l.blocks {
		if b.Round != uint64(i)+1 {
			return fmt.Errorf("%w: block %d has round %d", ErrChainBroken, i, b.Round)
		}
		if b.Prev != prev {
			return fmt.Errorf("%w: block %d prev mismatch", ErrChainBroken, i)
		}
		prev = b.Hash()
	}
	if len(l.blocks) > 0 && l.Tip() != prev {
		return fmt.Errorf("%w: tip mismatch", ErrChainBroken)
	}
	return nil
}
