// Package ledger implements the blockchain substrate: accounts with
// stakes, signed transactions, blocks, the hash chain, and the per-round
// random seed Q_r that feeds cryptographic sortition.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// Hash is a 32-byte SHA-256 digest used for blocks and seeds.
type Hash [32]byte

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// String renders the first 8 bytes in hex, enough for logs.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:8]) }

// Account is one Algorand participant: a keypair plus a stake balance
// denominated in Algos.
type Account struct {
	// ID is the account's index in the ledger; it doubles as the node ID
	// in the network simulator.
	ID int
	// Keys is the sortition identity.
	Keys vrf.KeyPair
	// Stake is the balance in Algos.
	Stake float64
}

// Transaction transfers Amount Algos between two accounts and pays Fee
// Algos into the transaction-fee pool. Signatures are modelled by
// construction inside the trusted simulator; validity is a balance check.
type Transaction struct {
	From   int
	To     int
	Amount float64
	Fee    float64
	Nonce  uint64
}

// Hash returns the digest identifying the transaction.
func (t Transaction) Hash() Hash {
	var buf [8 * 5]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(int64(t.From)))
	binary.BigEndian.PutUint64(buf[8:], uint64(int64(t.To)))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(t.Amount))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(t.Fee))
	binary.BigEndian.PutUint64(buf[32:], t.Nonce)
	return sha256.Sum256(buf[:])
}

// Fees sums the fees carried by a block's transactions.
func (b Block) Fees() float64 {
	total := 0.0
	for _, tx := range b.Txns {
		total += tx.Fee
	}
	return total
}

// Block is either a payload block assembled by a proposer or the empty
// block that BA* falls back to when no proposal gains quorum.
type Block struct {
	Round    uint64
	Prev     Hash
	Seed     Hash
	Proposer int // -1 for the empty block
	Txns     []Transaction
	Empty    bool
}

// EmptyBlock constructs the round's default empty block, which is fully
// determined by the previous block so every node derives the same one.
func EmptyBlock(round uint64, prev, seed Hash) Block {
	return Block{Round: round, Prev: prev, Seed: seed, Proposer: -1, Empty: true}
}

// blockHeaderLen is the fixed-size prefix of a block's hash input:
// round ‖ prev ‖ seed ‖ proposer ‖ empty-flag.
const blockHeaderLen = 8 + 32 + 32 + 8 + 1

// blockHashStackTxns bounds the transaction count hashed without a heap
// allocation; empty and small blocks (the consensus hot path) stay on the
// stack.
const blockHashStackTxns = 13

// Hash returns the block digest: SHA-256 over the header prefix followed
// by every transaction hash. The byte stream matches the historical
// streaming implementation exactly, so digests are unchanged.
func (b Block) Hash() Hash {
	var stack [blockHeaderLen + 32*blockHashStackTxns]byte
	buf := stack[:0]
	if need := blockHeaderLen + 32*len(b.Txns); need > len(stack) {
		buf = make([]byte, 0, need)
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], b.Round)
	buf = append(buf, u64[:]...)
	buf = append(buf, b.Prev[:]...)
	buf = append(buf, b.Seed[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(int64(b.Proposer)))
	buf = append(buf, u64[:]...)
	if b.Empty {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, tx := range b.Txns {
		th := tx.Hash()
		buf = append(buf, th[:]...)
	}
	return Hash(sha256.Sum256(buf))
}

// Errors returned by ledger operations.
var (
	ErrBadRound        = errors.New("ledger: block round does not extend the chain")
	ErrBadPrev         = errors.New("ledger: block prev hash does not match chain tip")
	ErrUnknownAccount  = errors.New("ledger: unknown account")
	ErrInsufficientBal = errors.New("ledger: insufficient balance")
	ErrBadAmount       = errors.New("ledger: non-positive transaction amount")
)

// Account pages: the account table is stored as fixed-span pages so a
// view can be cloned by sharing page pointers instead of copying every
// Account. A page shared with another view is frozen; the first write
// through either side materializes a private copy of just that page
// (copy-on-write), so a catch-up resync costs O(pages touched) instead of
// O(accounts).
const (
	pageShift = 6
	pageSize  = 1 << pageShift
)

// accountPage is one fixed-span slice of the account table. frozen marks
// the page as shared with at least one other view: it must be copied
// before the next write. The flag is monotonic per page object — it is
// never cleared, a writer installs a fresh unfrozen page instead.
type accountPage struct {
	frozen bool
	accts  []Account
}

// copyForWrite returns a private, unfrozen copy of p.
func (p *accountPage) copyForWrite() *accountPage {
	np := &accountPage{accts: make([]Account, len(p.accts))}
	copy(np.accts, p.accts)
	return np
}

// newPagedAccounts builds an unfrozen page table for n accounts, carving
// every page's span from one backing allocation.
func newPagedAccounts(n int) []*accountPage {
	numPages := (n + pageSize - 1) / pageSize
	pages := make([]*accountPage, numPages)
	headers := make([]accountPage, numPages)
	backing := make([]Account, n)
	for pi := range pages {
		lo := pi * pageSize
		hi := lo + pageSize
		if hi > n {
			hi = n
		}
		headers[pi].accts = backing[lo:hi:hi]
		pages[pi] = &headers[pi]
	}
	return pages
}

// Ledger is one node's view of the chain plus the account table. The
// simulator shares a single genesis account table across nodes and lets
// each node maintain its own chain replica. Views are copy-on-write: see
// CloneView for the sharing contract.
type Ledger struct {
	// nAccounts is the account count; pages is the COW page table.
	nAccounts int
	pages     []*accountPage
	// blockPrefix is the committed chain inherited from the clone source:
	// an immutable, capacity-clamped shared slice this view never appends
	// to or mutates. blocks holds the blocks this view committed itself.
	blockPrefix []Block
	blocks      []Block
	seed        Hash
	tip         Hash // memoised hash of the last block; zero at genesis
	fees        float64
	// observer, when set, is notified of every account-stake mutation on
	// THIS ledger (views never inherit it — CloneView and deepClone build
	// fresh structs). The incremental weight index (internal/weight)
	// registers here to keep its mirror current in O(1) per mutation.
	observer StakeObserver
	// observerTok identifies the current observer installation so a
	// stale owner cannot clear a successor (see ClearStakeObserver);
	// observerSeq mints the tokens.
	observerTok ObserverToken
	observerSeq uint64
}

// StakeObserver receives one notification per account-stake mutation:
// the account id, its balance before the write, and its balance after.
// Called synchronously from Credit and from Append's transaction apply;
// implementations must not mutate the ledger re-entrantly.
type StakeObserver func(id int, old, new float64)

// ObserverToken identifies one SetStakeObserver installation. The zero
// token never matches an installation, so holding one from a previous
// owner is always safe.
type ObserverToken uint64

// SetStakeObserver installs fn as this ledger's mutation observer
// (nil uninstalls) and returns the token identifying this installation.
// Cloned views never inherit the observer: a view's private writes are
// invisible to the source's stake index by design.
//
// An owner that may be replaced later must release with
// ClearStakeObserver(token) rather than SetStakeObserver(nil):
// unconditional nil-ing clobbers whatever observer was installed after
// it, silently leaving that successor's mirror permanently stale.
func (l *Ledger) SetStakeObserver(fn StakeObserver) ObserverToken {
	l.observer = fn
	if fn == nil {
		l.observerTok = 0
		return 0
	}
	l.observerSeq++
	l.observerTok = ObserverToken(l.observerSeq)
	return l.observerTok
}

// ClearStakeObserver uninstalls the observer only when tok identifies
// the currently installed one (compare-and-clear). It reports whether
// the observer was cleared; a stale token — the caller was already
// replaced by a later SetStakeObserver — is a no-op.
func (l *Ledger) ClearStakeObserver(tok ObserverToken) bool {
	if tok == 0 || tok != l.observerTok {
		return false
	}
	l.observer = nil
	l.observerTok = 0
	return true
}

// acctAt returns a read-only pointer to account id; the caller must not
// write through it (the page may be frozen).
func (l *Ledger) acctAt(id int) *Account {
	return &l.pages[id>>pageShift].accts[id&(pageSize-1)]
}

// mutableAcct returns a writable pointer to account id, materializing a
// private copy of its page first when the page is shared.
func (l *Ledger) mutableAcct(id int) *Account {
	pi := id >> pageShift
	p := l.pages[pi]
	if p.frozen {
		p = p.copyForWrite()
		l.pages[pi] = p
	}
	return &p.accts[id&(pageSize-1)]
}

// FeesCollected returns the cumulative transaction fees deducted by
// applied blocks, the amount owed to the transaction-fee pool.
func (l *Ledger) FeesCollected() float64 { return l.fees }

// Genesis creates a ledger with n accounts whose stakes are given and
// whose keys derive from rng. The genesis seed Q_0 derives from the seed
// material of rng too, so two ledgers built with identical streams agree.
func Genesis(stakes []float64, rng *rand.Rand) *Ledger {
	l := &Ledger{nAccounts: len(stakes), pages: newPagedAccounts(len(stakes))}
	for i, s := range stakes {
		*l.acctAt(i) = Account{ID: i, Keys: vrf.GenerateKey(rng), Stake: s}
	}
	var seed Hash
	for i := 0; i < len(seed); i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], rng.Uint64())
	}
	l.seed = seed
	return l
}

// deepCloneViews routes CloneView to the historical full-copy
// implementation, the differential oracle for the copy-on-write overlay.
// Build with -tags ledger_deepclone to force it process-wide, or flip it
// from a test with SetDeepCloneViews.
var deepCloneViews = false

// SetDeepCloneViews toggles the deep-clone oracle path for every
// subsequent CloneView and returns the previous setting. It exists for
// differential tests; it must not be flipped while simulations run
// concurrently.
func SetDeepCloneViews(on bool) (previous bool) {
	previous = deepCloneViews
	deepCloneViews = on
	return previous
}

// CloneView returns an independent replica of this view. The replica is
// observably a snapshot — later writes on either side are invisible to
// the other — but shares storage copy-on-write: account pages are frozen
// and materialized privately on first write (Credit or a block's
// transaction apply), and the committed chain is inherited as an
// immutable shared prefix. Cloning is therefore O(pages), not
// O(accounts + blocks); the historical deep copy survives behind the
// ledger_deepclone build tag / SetDeepCloneViews as a differential
// oracle.
func (l *Ledger) CloneView() *Ledger {
	if deepCloneViews {
		return l.deepClone()
	}
	pages := make([]*accountPage, len(l.pages))
	copy(pages, l.pages)
	for _, p := range l.pages {
		p.frozen = true
	}
	v := &Ledger{
		nAccounts: l.nAccounts,
		pages:     pages,
		seed:      l.seed,
		tip:       l.tip,
		fees:      l.fees,
	}
	switch {
	case len(l.blocks) == 0:
		v.blockPrefix = l.blockPrefix
	case len(l.blockPrefix) == 0:
		// Clamp capacity so the source's future appends (which may write
		// the backing array beyond this length) stay invisible here.
		v.blockPrefix = l.blocks[:len(l.blocks):len(l.blocks)]
	default:
		// The source both inherited a prefix and appended its own blocks:
		// flatten once into a fresh immutable prefix. The runner only
		// clones the canonical chain (prefix always empty there), so this
		// path is cold.
		flat := make([]Block, 0, len(l.blockPrefix)+len(l.blocks))
		flat = append(flat, l.blockPrefix...)
		flat = append(flat, l.blocks...)
		v.blockPrefix = flat
	}
	return v
}

// deepClone is the pre-COW CloneView: full private copies of the account
// table and the block list, sharing nothing.
func (l *Ledger) deepClone() *Ledger {
	v := &Ledger{
		nAccounts: l.nAccounts,
		pages:     newPagedAccounts(l.nAccounts),
		seed:      l.seed,
		tip:       l.tip,
		fees:      l.fees,
	}
	for i := 0; i < l.nAccounts; i++ {
		*v.acctAt(i) = *l.acctAt(i)
	}
	total := len(l.blockPrefix) + len(l.blocks)
	if total > 0 {
		v.blocks = make([]Block, 0, total)
		v.blocks = append(v.blocks, l.blockPrefix...)
		v.blocks = append(v.blocks, l.blocks...)
	}
	return v
}

// NumAccounts returns the number of accounts.
func (l *Ledger) NumAccounts() int { return l.nAccounts }

// Account returns account id, or an error when out of range.
func (l *Ledger) Account(id int) (Account, error) {
	if id < 0 || id >= l.nAccounts {
		return Account{}, ErrUnknownAccount
	}
	return *l.acctAt(id), nil
}

// Stake returns the balance of account id (0 when unknown).
func (l *Ledger) Stake(id int) float64 {
	if id < 0 || id >= l.nAccounts {
		return 0
	}
	return l.acctAt(id).Stake
}

// TotalStake returns S_N, the total stake across accounts.
func (l *Ledger) TotalStake() float64 {
	sum := 0.0
	for _, p := range l.pages {
		for i := range p.accts {
			sum += p.accts[i].Stake
		}
	}
	return sum
}

// Credit adds amount Algos to account id; used by reward disbursement.
func (l *Ledger) Credit(id int, amount float64) error {
	if id < 0 || id >= l.nAccounts {
		return ErrUnknownAccount
	}
	if amount < 0 {
		return ErrBadAmount
	}
	a := l.mutableAcct(id)
	old := a.Stake
	a.Stake = old + amount
	if l.observer != nil {
		l.observer(id, old, a.Stake)
	}
	return nil
}

// Round returns the next round to be agreed on (1 + number of blocks).
func (l *Ledger) Round() uint64 { return uint64(len(l.blockPrefix)+len(l.blocks)) + 1 }

// Tip returns the hash of the last agreed block, or the zero hash at
// genesis. The hash is memoised at Append time: consensus consults the
// tip many times per round, and rehashing the block each call dominated
// the round loop's allocation profile.
func (l *Ledger) Tip() Hash {
	return l.tip
}

// Seed returns Q_{r-1}, the sortition seed for the upcoming round.
func (l *Ledger) Seed() Hash { return l.seed }

// NextSeed derives Q_r from Q_{r-1} and the round number, as the paper's
// seed-generation task does ("a random number generated by VRF from the
// last seed value and the current round number").
func NextSeed(prev Hash, round uint64) Hash {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], round)
	h.Write(buf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// ValidateTx checks a transaction against current balances. The sender
// must cover both the transferred amount and the fee.
func (l *Ledger) ValidateTx(tx Transaction) error {
	if tx.Amount <= 0 || tx.Fee < 0 {
		return ErrBadAmount
	}
	if tx.From < 0 || tx.From >= l.nAccounts || tx.To < 0 || tx.To >= l.nAccounts {
		return ErrUnknownAccount
	}
	if l.acctAt(tx.From).Stake < tx.Amount+tx.Fee {
		return ErrInsufficientBal
	}
	return nil
}

// ValidateBlock checks that b extends this ledger's chain.
func (l *Ledger) ValidateBlock(b Block) error {
	if b.Round != l.Round() {
		return ErrBadRound
	}
	if b.Prev != l.Tip() {
		return ErrBadPrev
	}
	if b.Empty {
		return nil
	}
	for _, tx := range b.Txns {
		if err := l.ValidateTx(tx); err != nil {
			return fmt.Errorf("round %d tx: %w", b.Round, err)
		}
	}
	return nil
}

// Append validates and commits block b: transactions are applied to
// balances and the sortition seed advances.
func (l *Ledger) Append(b Block) error {
	if err := l.ValidateBlock(b); err != nil {
		return err
	}
	if !b.Empty {
		for _, tx := range b.Txns {
			// Re-validate sequentially: earlier transactions in the block may
			// have drained the sender.
			if err := l.ValidateTx(tx); err != nil {
				continue // invalid-at-apply transactions are skipped, not fatal
			}
			from := l.mutableAcct(tx.From)
			oldFrom := from.Stake
			from.Stake = oldFrom - (tx.Amount + tx.Fee)
			if l.observer != nil {
				l.observer(tx.From, oldFrom, from.Stake)
			}
			to := l.mutableAcct(tx.To)
			oldTo := to.Stake
			to.Stake = oldTo + tx.Amount
			if l.observer != nil {
				l.observer(tx.To, oldTo, to.Stake)
			}
			l.fees += tx.Fee
		}
	}
	l.blocks = append(l.blocks, b)
	l.seed = NextSeed(l.seed, b.Round)
	l.tip = b.Hash()
	return nil
}

// BlockAt returns the agreed block for round r (1-based).
func (l *Ledger) BlockAt(r uint64) (Block, bool) {
	if r < 1 || r > uint64(len(l.blockPrefix)+len(l.blocks)) {
		return Block{}, false
	}
	if p := uint64(len(l.blockPrefix)); r <= p {
		return l.blockPrefix[r-1], true
	}
	return l.blocks[r-1-uint64(len(l.blockPrefix))], true
}

// Len returns the number of committed blocks.
func (l *Ledger) Len() int { return len(l.blockPrefix) + len(l.blocks) }

// Stakes returns a copy of all balances, indexed by account ID.
func (l *Ledger) Stakes() []float64 {
	return l.StakesInto(nil)
}

// StakesInto fills dst with all balances indexed by account ID, growing
// it as needed, and returns it; dst may be nil. Callers on the round hot
// path reuse one buffer instead of allocating per call.
func (l *Ledger) StakesInto(dst []float64) []float64 {
	if cap(dst) < l.nAccounts {
		dst = make([]float64, l.nAccounts)
	}
	dst = dst[:l.nAccounts]
	for pi, p := range l.pages {
		base := pi * pageSize
		for i := range p.accts {
			dst[base+i] = p.accts[i].Stake
		}
	}
	return dst
}

// ErrChainBroken reports a hash-chain integrity violation.
var ErrChainBroken = errors.New("ledger: hash chain broken")

// VerifyChain re-validates the committed chain's structure: rounds are
// consecutive from 1 and every block's Prev equals the previous block's
// hash. It is the integrity audit nodes would run after a catch-up.
func (l *Ledger) VerifyChain() error {
	prev := Hash{}
	i := 0
	for _, seg := range [2][]Block{l.blockPrefix, l.blocks} {
		for _, b := range seg {
			if b.Round != uint64(i)+1 {
				return fmt.Errorf("%w: block %d has round %d", ErrChainBroken, i, b.Round)
			}
			if b.Prev != prev {
				return fmt.Errorf("%w: block %d prev mismatch", ErrChainBroken, i)
			}
			prev = b.Hash()
			i++
		}
	}
	if i > 0 && l.Tip() != prev {
		return fmt.Errorf("%w: tip mismatch", ErrChainBroken)
	}
	return nil
}
