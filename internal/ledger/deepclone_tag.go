//go:build ledger_deepclone

package ledger

// Building with -tags ledger_deepclone forces every CloneView through the
// historical deep-copy path process-wide. CI runs the golden figure tests
// under this tag: identical outputs prove the copy-on-write overlay is
// observably equivalent to independent full replicas.
func init() { deepCloneViews = true }
