package ledger

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testLedger(stakes ...float64) *Ledger {
	if len(stakes) == 0 {
		stakes = []float64{10, 20, 30}
	}
	return Genesis(stakes, rand.New(rand.NewSource(1)))
}

func TestGenesis(t *testing.T) {
	l := testLedger(10, 20, 30)
	if l.NumAccounts() != 3 {
		t.Errorf("NumAccounts = %d", l.NumAccounts())
	}
	if l.TotalStake() != 60 {
		t.Errorf("TotalStake = %v", l.TotalStake())
	}
	if l.Round() != 1 {
		t.Errorf("Round = %d, want 1", l.Round())
	}
	if !l.Tip().IsZero() {
		t.Error("genesis tip should be zero")
	}
	if l.Seed().IsZero() {
		t.Error("genesis seed should be non-zero")
	}
}

func TestGenesisDeterministic(t *testing.T) {
	a := Genesis([]float64{5, 5}, rand.New(rand.NewSource(7)))
	b := Genesis([]float64{5, 5}, rand.New(rand.NewSource(7)))
	if a.Seed() != b.Seed() {
		t.Error("same RNG stream produced different seeds")
	}
	accA, _ := a.Account(0)
	accB, _ := b.Account(0)
	if accA.Keys.Public != accB.Keys.Public {
		t.Error("same RNG stream produced different keys")
	}
}

func TestAccountLookup(t *testing.T) {
	l := testLedger()
	if _, err := l.Account(-1); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("Account(-1) err = %v", err)
	}
	if _, err := l.Account(3); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("Account(3) err = %v", err)
	}
	acct, err := l.Account(1)
	if err != nil || acct.Stake != 20 || acct.ID != 1 {
		t.Errorf("Account(1) = %+v, err %v", acct, err)
	}
	if l.Stake(99) != 0 {
		t.Error("Stake of unknown account should be 0")
	}
}

func TestCredit(t *testing.T) {
	l := testLedger()
	if err := l.Credit(0, 5); err != nil {
		t.Fatal(err)
	}
	if l.Stake(0) != 15 {
		t.Errorf("stake after credit = %v", l.Stake(0))
	}
	if err := l.Credit(99, 5); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("Credit(99) err = %v", err)
	}
	if err := l.Credit(0, -5); !errors.Is(err, ErrBadAmount) {
		t.Errorf("Credit(-5) err = %v", err)
	}
}

func TestValidateTx(t *testing.T) {
	l := testLedger(10, 20, 30)
	tests := []struct {
		name string
		tx   Transaction
		want error
	}{
		{"valid", Transaction{From: 0, To: 1, Amount: 5}, nil},
		{"zero amount", Transaction{From: 0, To: 1, Amount: 0}, ErrBadAmount},
		{"negative", Transaction{From: 0, To: 1, Amount: -2}, ErrBadAmount},
		{"unknown sender", Transaction{From: 9, To: 1, Amount: 1}, ErrUnknownAccount},
		{"unknown receiver", Transaction{From: 0, To: 9, Amount: 1}, ErrUnknownAccount},
		{"overdraft", Transaction{From: 0, To: 1, Amount: 11}, ErrInsufficientBal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := l.ValidateTx(tt.tx)
			if !errors.Is(err, tt.want) && !(err == nil && tt.want == nil) {
				t.Errorf("ValidateTx = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestAppendAndApply(t *testing.T) {
	l := testLedger(10, 20, 30)
	block := Block{
		Round:    1,
		Prev:     l.Tip(),
		Seed:     NextSeed(l.Seed(), 1),
		Proposer: 0,
		Txns: []Transaction{
			{From: 0, To: 1, Amount: 4, Nonce: 1},
			{From: 1, To: 2, Amount: 10, Nonce: 2},
		},
	}
	if err := l.Append(block); err != nil {
		t.Fatal(err)
	}
	if l.Round() != 2 || l.Len() != 1 {
		t.Errorf("Round=%d Len=%d after append", l.Round(), l.Len())
	}
	if l.Stake(0) != 6 || l.Stake(1) != 14 || l.Stake(2) != 40 {
		t.Errorf("stakes after apply: %v", l.Stakes())
	}
	if l.TotalStake() != 60 {
		t.Errorf("total stake changed: %v", l.TotalStake())
	}
	got, ok := l.BlockAt(1)
	if !ok || got.Hash() != block.Hash() {
		t.Error("BlockAt(1) mismatch")
	}
}

func TestAppendRejectsWrongRound(t *testing.T) {
	l := testLedger()
	block := Block{Round: 5, Prev: l.Tip(), Empty: true}
	if err := l.Append(block); !errors.Is(err, ErrBadRound) {
		t.Errorf("err = %v, want ErrBadRound", err)
	}
}

func TestAppendRejectsWrongPrev(t *testing.T) {
	l := testLedger()
	block := Block{Round: 1, Prev: Hash{9}, Empty: true}
	if err := l.Append(block); !errors.Is(err, ErrBadPrev) {
		t.Errorf("err = %v, want ErrBadPrev", err)
	}
}

func TestAppendEmptyBlock(t *testing.T) {
	l := testLedger()
	empty := EmptyBlock(1, l.Tip(), NextSeed(l.Seed(), 1))
	if err := l.Append(empty); err != nil {
		t.Fatal(err)
	}
	if l.Stake(0) != 10 {
		t.Error("empty block changed balances")
	}
}

func TestSeedAdvances(t *testing.T) {
	l := testLedger()
	s0 := l.Seed()
	_ = l.Append(EmptyBlock(1, l.Tip(), NextSeed(l.Seed(), 1)))
	if l.Seed() == s0 {
		t.Error("seed did not advance")
	}
	if l.Seed() != NextSeed(s0, 1) {
		t.Error("seed does not follow NextSeed(Q_{r-1}, r)")
	}
}

func TestAppendSkipsInvalidAtApply(t *testing.T) {
	// Two transactions that are individually valid but the second drains
	// more than remains after the first: the second is skipped.
	l := testLedger(10, 0, 0)
	block := Block{
		Round: 1, Prev: l.Tip(), Seed: NextSeed(l.Seed(), 1), Proposer: 0,
		Txns: []Transaction{
			{From: 0, To: 1, Amount: 8, Nonce: 1},
			{From: 0, To: 2, Amount: 8, Nonce: 2}, // invalid after the first
		},
	}
	if err := l.Append(block); err != nil {
		t.Fatal(err)
	}
	if l.Stake(0) != 2 || l.Stake(1) != 8 || l.Stake(2) != 0 {
		t.Errorf("stakes = %v", l.Stakes())
	}
}

func TestValidateBlockRejectsBadTx(t *testing.T) {
	l := testLedger(10, 20, 30)
	block := Block{
		Round: 1, Prev: l.Tip(), Seed: NextSeed(l.Seed(), 1), Proposer: 0,
		Txns: []Transaction{{From: 0, To: 1, Amount: 99, Nonce: 1}},
	}
	if err := l.ValidateBlock(block); err == nil {
		t.Error("overdraft block validated")
	}
}

func TestCloneViewIndependence(t *testing.T) {
	l := testLedger()
	v := l.CloneView()
	_ = l.Append(EmptyBlock(1, l.Tip(), NextSeed(l.Seed(), 1)))
	if v.Round() != 1 {
		t.Error("clone advanced with the original")
	}
	_ = v.Credit(0, 100)
	if l.Stake(0) != 10 {
		t.Error("clone credit leaked into the original")
	}
}

func TestBlockHashSensitivity(t *testing.T) {
	base := Block{Round: 1, Proposer: 2}
	variants := []Block{
		{Round: 2, Proposer: 2},
		{Round: 1, Proposer: 3},
		{Round: 1, Proposer: 2, Empty: true},
		{Round: 1, Proposer: 2, Prev: Hash{1}},
		{Round: 1, Proposer: 2, Seed: Hash{1}},
		{Round: 1, Proposer: 2, Txns: []Transaction{{From: 0, To: 1, Amount: 1}}},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestBlockAtOutOfRange(t *testing.T) {
	l := testLedger()
	if _, ok := l.BlockAt(0); ok {
		t.Error("BlockAt(0) should fail")
	}
	if _, ok := l.BlockAt(1); ok {
		t.Error("BlockAt(1) should fail before any append")
	}
}

func TestTransactionHashDistinct(t *testing.T) {
	a := Transaction{From: 1, To: 2, Amount: 3, Nonce: 4}
	variants := []Transaction{
		{From: 2, To: 2, Amount: 3, Nonce: 4},
		{From: 1, To: 3, Amount: 3, Nonce: 4},
		{From: 1, To: 2, Amount: 5, Nonce: 4},
		{From: 1, To: 2, Amount: 3, Nonce: 5},
	}
	for i, v := range variants {
		if v.Hash() == a.Hash() {
			t.Errorf("tx variant %d collides", i)
		}
	}
}

// Property: applying any block conserves total stake.
func TestAppendConservesTotalProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		l := Genesis([]float64{50, 50, 50, 50}, rand.New(rand.NewSource(seed)))
		before := l.TotalStake()
		txns := make([]Transaction, 0, len(raw))
		for i, b := range raw {
			txns = append(txns, Transaction{
				From:   int(b) % 4,
				To:     int(b>>2) % 4,
				Amount: float64(b%10) + 1,
				Nonce:  uint64(i),
			})
		}
		block := Block{Round: 1, Prev: l.Tip(), Seed: NextSeed(l.Seed(), 1), Proposer: 0, Txns: txns}
		if l.ValidateBlock(block) != nil {
			return true // invalid blocks are rejected wholesale, fine
		}
		if err := l.Append(block); err != nil {
			return false
		}
		diff := l.TotalStake() - before
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NextSeed is injective-ish over rounds (no immediate cycles).
func TestNextSeedProgressProperty(t *testing.T) {
	f := func(b [32]byte, round uint64) bool {
		h := Hash(b)
		next := NextSeed(h, round)
		return next != h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
