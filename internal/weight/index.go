package weight

import (
	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// Index is the incremental ledger backend: a dense stake mirror plus a
// Fenwick (binary-indexed) prefix-sum tree, both patched in O(log n) per
// account mutation by the ledger's stake observer. Refreshing a round's
// weights therefore costs O(changed accounts) ledger work instead of a
// full account-table walk, and TotalWeight is a running scalar.
//
// Determinism: per-node weights are assignment-mirrored (dense[id] = new
// balance), so Weight and WeightsInto are bit-identical to ledger-direct
// reads. The running total and the tree accumulate deltas, which can
// drift from an exact re-sum by float ulps as mutations pile up; both
// are therefore re-derived from dense every resumEvery mutations (an
// amortised-O(1) exact re-sum in the ledger's index order), bounding the
// drift a long stake-drift run can accumulate instead of letting
// sortition probabilities diverge without limit. The differential suite
// pins per-node weights exactly and totals to a 1e-9 relative band. In
// mutation-free runs the initial index-order sum is never re-accumulated,
// so Index is bit-identical throughout.
//
// An Index registers itself as l's stake observer. Installations are
// token-scoped: Detach releases only this index's installation
// (compare-and-clear), so detaching a stale index can never clobber an
// index installed after it.
type Index struct {
	l     *ledger.Ledger
	tok   ledger.ObserverToken
	dense []float64 // dense[id] mirrors account id's stake exactly
	tree  []float64 // 1-indexed Fenwick tree over dense
	total float64   // running sum of dense, exactly re-summed periodically
	// mutations counts observer deliveries since the last exact re-sum;
	// at resumEvery the total and tree are rebuilt from dense.
	mutations  int
	resumEvery int
	// updates is the telemetry counter of observed mutations; nil (a
	// no-op) when the registry is disabled, resolved once at construction.
	updates *obs.Counter
}

var _ Oracle = (*Index)(nil)

// NewIndex snapshots l's account table into a fresh index and registers
// the index as l's stake observer so subsequent Credit/Append mutations
// patch it incrementally.
func NewIndex(l *ledger.Ledger) *Index {
	n := l.NumAccounts()
	x := &Index{
		l:     l,
		dense: l.StakesInto(make([]float64, 0, n)),
		tree:  make([]float64, n+1),
	}
	// Re-summing every max(1024, n) mutations keeps the exact rebuild
	// amortised O(1) per observed mutation while small indexes are not
	// rebuilt on every few writes.
	x.resumEvery = n
	if x.resumEvery < 1024 {
		x.resumEvery = 1024
	}
	// Initial total in index order — the same order TotalStake walks, so
	// the starting point is bit-identical to the ledger's own sum.
	for _, w := range x.dense {
		x.total += w
	}
	x.rebuildTree()
	if m := obs.DefaultSim(); m != nil {
		x.updates = m.WeightIndexUpdate
	}
	x.tok = l.SetStakeObserver(x.observe)
	return x
}

// Detach unregisters the index from its ledger; the mirror stops
// tracking mutations from that point on. Only this index's own
// installation is released: if a later index already replaced it as the
// ledger's observer, Detach leaves the successor untouched.
func (x *Index) Detach() { x.l.ClearStakeObserver(x.tok) }

// observe is the ledger mutation hook: assignment-mirror the new balance
// and patch the prefix tree and running total by the delta.
func (x *Index) observe(id int, old, new float64) {
	x.dense[id] = new
	delta := new - old
	x.treeAdd(id, delta)
	x.total += delta
	x.mutations++
	x.updates.Add(1)
	if x.mutations >= x.resumEvery {
		x.resum()
	}
}

// resum re-derives the running total (in ledger index order, matching
// TotalStake's walk) and the Fenwick tree exactly from the dense mirror,
// zeroing the float drift the delta patches accumulate.
func (x *Index) resum() {
	x.mutations = 0
	var total float64
	for _, w := range x.dense {
		total += w
	}
	x.total = total
	x.rebuildTree()
}

// rebuildTree constructs the Fenwick tree from dense in O(n).
func (x *Index) rebuildTree() {
	tree := x.tree
	for i := range tree {
		tree[i] = 0
	}
	for id, w := range x.dense {
		tree[id+1] = w
	}
	for i := 1; i < len(tree); i++ {
		if j := i + (i & -i); j < len(tree) {
			tree[j] += tree[i]
		}
	}
}

func (x *Index) treeAdd(id int, delta float64) {
	for i := id + 1; i < len(x.tree); i += i & -i {
		x.tree[i] += delta
	}
}

// NumNodes implements Oracle.
func (x *Index) NumNodes() int { return len(x.dense) }

// Weight implements Oracle; the round argument is advisory (the mirror
// tracks the ledger's current round).
func (x *Index) Weight(_ uint64, node int) float64 {
	if node < 0 || node >= len(x.dense) {
		return 0
	}
	return x.dense[node]
}

// TotalWeight implements Oracle.
func (x *Index) TotalWeight(_ uint64) float64 { return x.total }

// WeightsInto implements Oracle.
func (x *Index) WeightsInto(_ uint64, dst []float64) []float64 {
	dst = append(dst[:0], x.dense...)
	return dst
}

// PrefixWeight returns the summed weight of nodes [0, k) from the
// Fenwick tree in O(log n) — the cumulative-stake query stake-weighted
// samplers bisect over. Out-of-range k clamps: k <= 0 sums nothing,
// k >= n sums everything.
func (x *Index) PrefixWeight(k int) float64 {
	if k < 0 {
		k = 0
	}
	if k > len(x.dense) {
		k = len(x.dense)
	}
	var sum float64
	for i := k; i > 0; i -= i & -i {
		sum += x.tree[i]
	}
	return sum
}

// Bisect inverts PrefixWeight: it returns the node id owning cumulative
// stake position target, i.e. the smallest id with
// PrefixWeight(id+1) > target, by descending the Fenwick tree in
// O(log n). Targets below zero map to the first node; targets at or
// beyond the total map to the last node. This is the seat→node mapping
// of the sparse-committee sampler: a uniform target in [0, total)
// selects each node with probability weight/total.
func (x *Index) Bisect(target float64) int {
	n := len(x.dense)
	if n == 0 {
		return 0
	}
	if target < 0 {
		target = 0
	}
	pos := 0 // 1-based Fenwick position of the last prefix <= target
	mask := 1
	for mask<<1 < len(x.tree) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := pos + mask
		if next < len(x.tree) && x.tree[next] <= target {
			target -= x.tree[next]
			pos = next
		}
	}
	if pos >= n {
		pos = n - 1
	}
	return pos
}
