package weight

import (
	"github.com/dsn2020-algorand/incentives/internal/ledger"
)

// Index is the incremental ledger backend: a dense stake mirror plus a
// Fenwick (binary-indexed) prefix-sum tree, both patched in O(log n) per
// account mutation by the ledger's stake observer. Refreshing a round's
// weights therefore costs O(changed accounts) ledger work instead of a
// full account-table walk, and TotalWeight is a running scalar.
//
// Determinism: per-node weights are assignment-mirrored (dense[id] = new
// balance), so Weight and WeightsInto are bit-identical to ledger-direct
// reads. The running total accumulates deltas, which can drift from the
// ledger's index-order page-walk sum by float ulps once mutations occur;
// the differential suite pins per-node weights exactly and totals to a
// 1e-9 relative band. In mutation-free runs the initial index-order sum
// is never re-accumulated, so Index is bit-identical throughout.
//
// An Index registers itself as l's stake observer; a ledger carries at
// most one observer, so build at most one Index per ledger and Detach it
// before installing another.
type Index struct {
	l     *ledger.Ledger
	dense []float64 // dense[id] mirrors account id's stake exactly
	tree  []float64 // 1-indexed Fenwick tree over dense
	total float64   // running sum of dense
}

var _ Oracle = (*Index)(nil)

// NewIndex snapshots l's account table into a fresh index and registers
// the index as l's stake observer so subsequent Credit/Append mutations
// patch it incrementally.
func NewIndex(l *ledger.Ledger) *Index {
	n := l.NumAccounts()
	x := &Index{
		l:     l,
		dense: l.StakesInto(make([]float64, 0, n)),
		tree:  make([]float64, n+1),
	}
	// Initial total in index order — the same order TotalStake walks, so
	// the starting point is bit-identical to the ledger's own sum.
	for _, w := range x.dense {
		x.total += w
	}
	for id, w := range x.dense {
		x.treeAdd(id, w)
	}
	l.SetStakeObserver(x.observe)
	return x
}

// Detach unregisters the index from its ledger; the mirror stops
// tracking mutations from that point on.
func (x *Index) Detach() { x.l.SetStakeObserver(nil) }

// observe is the ledger mutation hook: assignment-mirror the new balance
// and patch the prefix tree and running total by the delta.
func (x *Index) observe(id int, old, new float64) {
	x.dense[id] = new
	delta := new - old
	x.treeAdd(id, delta)
	x.total += delta
}

func (x *Index) treeAdd(id int, delta float64) {
	for i := id + 1; i < len(x.tree); i += i & -i {
		x.tree[i] += delta
	}
}

// NumNodes implements Oracle.
func (x *Index) NumNodes() int { return len(x.dense) }

// Weight implements Oracle; the round argument is advisory (the mirror
// tracks the ledger's current round).
func (x *Index) Weight(_ uint64, node int) float64 {
	if node < 0 || node >= len(x.dense) {
		return 0
	}
	return x.dense[node]
}

// TotalWeight implements Oracle.
func (x *Index) TotalWeight(_ uint64) float64 { return x.total }

// WeightsInto implements Oracle.
func (x *Index) WeightsInto(_ uint64, dst []float64) []float64 {
	dst = append(dst[:0], x.dense...)
	return dst
}

// PrefixWeight returns the summed weight of nodes [0, k) from the
// Fenwick tree in O(log n) — the cumulative-stake query stake-weighted
// samplers bisect over.
func (x *Index) PrefixWeight(k int) float64 {
	if k > len(x.dense) {
		k = len(x.dense)
	}
	var sum float64
	for i := k; i > 0; i -= i & -i {
		sum += x.tree[i]
	}
	return sum
}
