package weight_test

import (
	"math"
	"sort"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// TestSyntheticTotalIsSumEveryRound is the core synthetic-backend
// property: at every round of a randomized churn schedule, TotalWeight
// must equal the sum of per-node Weights (to running-total tolerance).
func TestSyntheticTotalIsSumEveryRound(t *testing.T) {
	rng := sim.NewRNG(11, "weight.test.synthetic")
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		var churn []weight.ChurnStep
		for len(churn) < 5 {
			churn = append(churn, weight.ChurnStep{
				Round: uint64(1 + rng.Intn(30)),
				Frac:  rng.Float64() * 0.4,
				Scale: rng.Float64() * 3, // includes near-0 departures
			})
		}
		o := weight.NewZipf(n, 0.5+rng.Float64(), 25.5*float64(n), int64(trial)).WithChurn(churn)
		for round := uint64(1); round <= 32; round++ {
			ws := o.WeightsInto(round, nil)
			var sum float64
			for _, w := range ws {
				sum += w
			}
			total := o.TotalWeight(round)
			if d := relDiff(total, sum); d > 1e-9 {
				t.Fatalf("trial %d round %d: TotalWeight %v != sum %v (rel %g)", trial, round, total, sum, d)
			}
		}
	}
}

// TestZipfTailExponent checks the generated profile really is Zipf: the
// log-log slope of the rank-ordered weights recovers the requested
// exponent (the ranks are exact powers, so the fit is tight).
func TestZipfTailExponent(t *testing.T) {
	for _, s := range []float64{0.6, 1.0, 1.4} {
		const n = 500
		o := weight.NewZipf(n, s, 25.5*n, 99)
		ws := o.WeightsInto(1, nil)
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		// w_(r) = C * r^-s exactly, so s = log(w_1/w_r) / log(r) for any r.
		for _, r := range []int{10, 100, n} {
			got := math.Log(ws[0]/ws[r-1]) / math.Log(float64(r))
			if math.Abs(got-s) > 1e-9 {
				t.Fatalf("exponent %v: rank-%d slope %v", s, r, got)
			}
		}
	}
}

// TestZipfPermutationDecorrelatesIDs guards the seeded rank deal: node 0
// must not systematically hold the largest stake.
func TestZipfPermutationDecorrelatesIDs(t *testing.T) {
	const n = 200
	topIsZero := 0
	for seed := int64(0); seed < 20; seed++ {
		o := weight.NewZipf(n, 1.0, 25.5*n, seed)
		ws := o.WeightsInto(1, nil)
		top := 0
		for i, w := range ws {
			if w > ws[top] {
				top = i
			}
		}
		if top == 0 {
			topIsZero++
		}
	}
	if topIsZero > 3 {
		t.Fatalf("node 0 held the top stake in %d/20 seeds; ranks are not being shuffled", topIsZero)
	}
}

// TestChurnScheduleDeterministic pins churn replay: two oracles built
// from the same (profile, seed, schedule) must agree bit-for-bit at
// every round, regardless of which query granularity advanced them.
func TestChurnScheduleDeterministic(t *testing.T) {
	churn := []weight.ChurnStep{
		{Round: 3, Frac: 0.25, Scale: 0},
		{Round: 7, Frac: 0.10, Scale: 4},
		{Round: 7, Frac: 0.05, Scale: 0.5},
	}
	const n = 120
	a := weight.NewZipf(n, 1.1, 25.5*n, 42).WithChurn(churn)
	b := weight.NewZipf(n, 1.1, 25.5*n, 42).WithChurn(churn)
	for round := uint64(1); round <= 10; round++ {
		was := a.WeightsInto(round, nil)
		for i := 0; i < n; i++ {
			if w := b.Weight(round, i); w != was[i] {
				t.Fatalf("round %d node %d: %v vs %v", round, i, was[i], w)
			}
		}
		if a.TotalWeight(round) != b.TotalWeight(round) {
			t.Fatalf("round %d: totals diverge", round)
		}
	}
}

// TestSyntheticMonotonicRounds pins the advance contract: querying an
// older round after a newer one must panic, not silently answer with
// post-churn weights.
func TestSyntheticMonotonicRounds(t *testing.T) {
	o := weight.NewZipf(50, 1.0, 1000, 1).WithChurn([]weight.ChurnStep{{Round: 4, Frac: 0.5, Scale: 2}})
	o.TotalWeight(5)
	defer func() {
		if recover() == nil {
			t.Fatal("regressing the round must panic")
		}
	}()
	o.Weight(3, 0)
}

// TestSyntheticExplicitVector pins NewSynthetic: the oracle answers the
// given vector verbatim and copies it defensively.
func TestSyntheticExplicitVector(t *testing.T) {
	src := []float64{5, 1, 3}
	o := weight.NewSynthetic(src, 1)
	src[1] = 99
	if got := o.Weight(1, 1); got != 1 {
		t.Fatalf("oracle aliased the caller's vector: Weight(1) = %v", got)
	}
	if got := o.TotalWeight(1); got != 9 {
		t.Fatalf("TotalWeight = %v, want 9", got)
	}
	if got := o.Weight(1, 5); got != 0 {
		t.Fatalf("out-of-range weight = %v, want 0", got)
	}
}
