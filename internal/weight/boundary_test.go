package weight_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestNoDirectStakeReadsOutsideBackends enforces the oracle seam: no
// non-test source file outside internal/ledger (the owner) and
// internal/weight (the backends) may call the ledger's stake readers
// directly. Everything else routes through a weight.Oracle.
func TestNoDirectStakeReadsOutsideBackends(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	// Method-call patterns: plain identifiers (Params.TotalStake field
	// literals, RoleStake.Stake fields) are fine, calls are not.
	re := regexp.MustCompile(`\.(Stake|Stakes|StakesInto|TotalStake)\(`)
	var offenders []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if d.IsDir() {
			switch rel {
			case ".git", "internal/ledger", "internal/weight":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if re.MatchString(line) {
				offenders = append(offenders, rel+":"+strconv.Itoa(i+1)+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("direct ledger stake reads outside the weight seam:\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
