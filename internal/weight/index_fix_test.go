package weight_test

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// TestDetachClearsOnlyOwnInstallation is the regression test for the
// install→install→Detach-first ordering: detaching a superseded index
// must not clobber the observer a later index installed, or the later
// index goes permanently stale.
func TestDetachClearsOnlyOwnInstallation(t *testing.T) {
	const n = 64
	stakes := genStakes(n, 11)
	l := ledger.Genesis(stakes, sim.NewRNG(11, "weight.test.genesis"))

	first := weight.NewIndex(l)
	second := weight.NewIndex(l) // replaces first as l's observer

	// Detaching the STALE index first must leave the second installed.
	first.Detach()
	if err := l.Credit(3, 7.5); err != nil {
		t.Fatal(err)
	}
	if got, want := second.Weight(1, 3), l.Stake(3); got != want {
		t.Fatalf("second index went stale after first.Detach: Weight(3) = %v, want %v", got, want)
	}

	// Detaching the live index releases it for real.
	second.Detach()
	if err := l.Credit(3, 2.5); err != nil {
		t.Fatal(err)
	}
	if got := second.Weight(1, 3); got == l.Stake(3) {
		t.Fatalf("second index still tracking after its own Detach: Weight(3) = %v", got)
	}
}

// TestClearStakeObserverToken pins the ledger-level compare-and-clear
// contract directly: a stale token is a no-op, the live token clears.
func TestClearStakeObserverToken(t *testing.T) {
	l := ledger.Genesis([]float64{1, 2, 3}, sim.NewRNG(12, "weight.test.genesis"))
	var aFired, bFired int
	tokA := l.SetStakeObserver(func(int, float64, float64) { aFired++ })
	tokB := l.SetStakeObserver(func(int, float64, float64) { bFired++ })
	if l.ClearStakeObserver(tokA) {
		t.Fatal("stale token cleared the live observer")
	}
	if err := l.Credit(0, 1); err != nil {
		t.Fatal(err)
	}
	if bFired != 1 || aFired != 0 {
		t.Fatalf("after stale clear: aFired=%d bFired=%d, want 0/1", aFired, bFired)
	}
	if !l.ClearStakeObserver(tokB) {
		t.Fatal("live token did not clear")
	}
	if err := l.Credit(0, 1); err != nil {
		t.Fatal(err)
	}
	if bFired != 1 {
		t.Fatalf("observer fired after clear: bFired=%d", bFired)
	}
	if l.ClearStakeObserver(0) {
		t.Fatal("zero token must never clear")
	}
}

// TestIndexTotalNoDriftUnderHeavyMutation runs over a million credit
// mutations and differentially pins the index's running total against
// the ledger's exact page-walk sum. The periodic exact re-sum bounds
// the float drift the per-mutation deltas accumulate; without it this
// schedule drifts measurably.
func TestIndexTotalNoDriftUnderHeavyMutation(t *testing.T) {
	const n = 400
	const mutations = 1_200_000
	stakes := genStakes(n, 13)
	l := ledger.Genesis(stakes, sim.NewRNG(13, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	rng := sim.NewRNG(13, "weight.test.heavy")
	for i := 0; i < mutations; i++ {
		// Tiny irrational-ish amounts maximise representation error.
		if err := l.Credit(rng.Intn(n), rng.Float64()*1e-3); err != nil {
			t.Fatal(err)
		}
		if i%100_000 == 0 {
			if d := relDiff(idx.TotalWeight(1), l.TotalStake()); d > 1e-9 {
				t.Fatalf("after %d mutations: total drift %v > 1e-9 (index %v, ledger %v)",
					i, d, idx.TotalWeight(1), l.TotalStake())
			}
		}
	}
	if d := relDiff(idx.TotalWeight(1), l.TotalStake()); d > 1e-9 {
		t.Fatalf("final total drift %v > 1e-9 (index %v, ledger %v)",
			d, idx.TotalWeight(1), l.TotalStake())
	}
	// The tree must stay consistent with the total it backs.
	if d := relDiff(idx.PrefixWeight(n), idx.TotalWeight(1)); d > 1e-9 {
		t.Fatalf("tree/total divergence: PrefixWeight(n)=%v, total=%v", idx.PrefixWeight(n), idx.TotalWeight(1))
	}
}

// TestPrefixWeightBounds hardens the query against out-of-range k,
// including the formerly-unguarded negative k.
func TestPrefixWeightBounds(t *testing.T) {
	stakes := []float64{4, 0, 9, 2}
	l := ledger.Genesis(stakes, sim.NewRNG(14, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	if got := idx.PrefixWeight(-1); got != 0 {
		t.Fatalf("PrefixWeight(-1) = %v, want 0", got)
	}
	if got := idx.PrefixWeight(-1 << 40); got != 0 {
		t.Fatalf("PrefixWeight(very negative) = %v, want 0", got)
	}
	if got, want := idx.PrefixWeight(99), idx.PrefixWeight(len(stakes)); got != want {
		t.Fatalf("PrefixWeight(over) = %v, want clamp to %v", got, want)
	}
}

// TestPrefixWeightMatchesDenseAfterChurn is the randomized property
// test: after arbitrary churn/reward replays, PrefixWeight(k) must equal
// the dense prefix sum over the mirrored weights within a tight
// relative band (the Fenwick blocks associate additions differently, so
// equality holds to ulps, not bit-for-bit).
func TestPrefixWeightMatchesDenseAfterChurn(t *testing.T) {
	const n = 257 // off power-of-two to exercise ragged tree levels
	stakes := genStakes(n, 15)
	l := ledger.Genesis(stakes, sim.NewRNG(15, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	rng := sim.NewRNG(15, "weight.test.churn")
	for replay := 0; replay < 40; replay++ {
		// A churn/reward burst: rewards to random accounts, including
		// fractional amounts, occasionally large (stake concentration).
		for k := 0; k < 1+rng.Intn(300); k++ {
			amt := rng.Float64() * 3
			if rng.Intn(10) == 0 {
				amt *= 1000
			}
			if err := l.Credit(rng.Intn(n), amt); err != nil {
				t.Fatal(err)
			}
		}
		dense := idx.WeightsInto(uint64(replay+1), nil)
		var prefix float64
		for k := 0; k <= n; k++ {
			got := idx.PrefixWeight(k)
			if d := relDiff(got, prefix); d > 1e-12 {
				t.Fatalf("replay %d: PrefixWeight(%d) = %v, dense prefix %v (rel %v)",
					replay, k, got, prefix, d)
			}
			if k < n {
				prefix += dense[k]
			}
		}
	}
}

// TestBisectMatchesLinearScan pins the Fenwick descend against the
// obvious linear inversion for random targets, including boundary and
// out-of-range targets and zero-weight accounts.
func TestBisectMatchesLinearScan(t *testing.T) {
	const n = 130
	stakes := genStakes(n, 16)
	stakes[7], stakes[8], stakes[9] = 0, 0, 0 // zero-weight run
	l := ledger.Genesis(stakes, sim.NewRNG(16, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	rng := sim.NewRNG(16, "weight.test.bisect")

	linear := func(target float64) int {
		dense := idx.WeightsInto(1, nil)
		var cum float64
		for i, w := range dense {
			if target < cum+w {
				return i
			}
			cum += w
		}
		return n - 1
	}

	for trial := 0; trial < 5000; trial++ {
		target := rng.Float64() * idx.TotalWeight(1)
		if got, want := idx.Bisect(target), linear(target); got != want {
			t.Fatalf("Bisect(%v) = %d, want %d", target, got, want)
		}
	}
	if got := idx.Bisect(-5); got != 0 {
		t.Fatalf("Bisect(-5) = %d, want 0", got)
	}
	if got := idx.Bisect(idx.TotalWeight(1) + 100); got != n-1 {
		t.Fatalf("Bisect(beyond total) = %d, want %d", got, n-1)
	}
	// Mutations must keep the inversion exact.
	for i := 0; i < 50; i++ {
		if err := l.Credit(rng.Intn(n), rng.Float64()*20); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		target := rng.Float64() * idx.TotalWeight(1)
		if got, want := idx.Bisect(target), linear(target); got != want {
			t.Fatalf("post-churn Bisect(%v) = %d, want %d", target, got, want)
		}
	}
}
