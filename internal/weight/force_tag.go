//go:build weight_ledgerdirect

package weight

// Built with -tags weight_ledgerdirect: every ForLedger selection takes
// the ledger-direct backend, the differential oracle for the incremental
// index. CI runs the goldens and the weight suite under this tag.
var forceLedgerDirect = true

// SetForceLedgerDirect is a no-op under the weight_ledgerdirect tag: the
// build pins the forced selection on.
func SetForceLedgerDirect(bool) (previous bool) { return true }

// ForcedLedgerDirect reports whether ForLedger currently ignores the
// backend selection; always true under this tag.
func ForcedLedgerDirect() bool { return true }
