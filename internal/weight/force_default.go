//go:build !weight_ledgerdirect

package weight

// forceLedgerDirect routes every ForLedger selection to the ledger-direct
// backend when true. The weight_ledgerdirect build tag flips the default,
// turning the whole test suite into a differential-oracle run, mirroring
// sim_legacy_heap and ledger_deepclone.
var forceLedgerDirect = false

// SetForceLedgerDirect toggles the forced ledger-direct selection for
// every subsequent ForLedger call and returns the previous setting. It
// exists for differential tests; it must not be flipped while simulations
// run concurrently.
func SetForceLedgerDirect(on bool) (previous bool) {
	previous = forceLedgerDirect
	forceLedgerDirect = on
	return previous
}

// ForcedLedgerDirect reports whether ForLedger currently ignores the
// backend selection.
func ForcedLedgerDirect() bool { return forceLedgerDirect }
