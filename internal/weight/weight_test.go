package weight_test

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// genStakes draws n uniform-integer stakes from a labelled stream.
func genStakes(n int, seed int64) []float64 {
	rng := sim.NewRNG(seed, "weight.test.stakes")
	stakes := make([]float64, n)
	for i := range stakes {
		stakes[i] = float64(1 + rng.Intn(50))
	}
	return stakes
}

// relDiff returns |a-b| / max(|a|,|b|), 0 when both are 0.
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestLedgerDirectMatchesLedger pins the pass-through backend to the
// ledger's own reads, query for query.
func TestLedgerDirectMatchesLedger(t *testing.T) {
	stakes := genStakes(130, 1)
	l := ledger.Genesis(stakes, sim.NewRNG(1, "weight.test.genesis"))
	o := weight.NewLedgerDirect(l)
	if o.NumNodes() != l.NumAccounts() {
		t.Fatalf("NumNodes = %d, want %d", o.NumNodes(), l.NumAccounts())
	}
	for i := 0; i < o.NumNodes(); i++ {
		if got, want := o.Weight(1, i), l.Stake(i); got != want {
			t.Fatalf("Weight(%d) = %v, want %v", i, got, want)
		}
	}
	if got, want := o.TotalWeight(1), l.TotalStake(); got != want {
		t.Fatalf("TotalWeight = %v, want %v", got, want)
	}
	ws := o.WeightsInto(1, nil)
	for i, w := range ws {
		if w != l.Stake(i) {
			t.Fatalf("WeightsInto[%d] = %v, want %v", i, w, l.Stake(i))
		}
	}
}

// TestIndexDifferentialCredits mutates a ledger with a randomized credit
// schedule and differentially checks the incremental index against the
// ledger-direct oracle after every batch: per-node weights must match
// bit-for-bit (the index assignment-mirrors balances), totals to 1e-9
// relative (the running total accumulates deltas in mutation order, the
// page walk re-sums in index order).
func TestIndexDifferentialCredits(t *testing.T) {
	const n = 300
	stakes := genStakes(n, 2)
	l := ledger.Genesis(stakes, sim.NewRNG(2, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	direct := weight.NewLedgerDirect(l)
	rng := sim.NewRNG(2, "weight.test.credits")
	for batch := 0; batch < 50; batch++ {
		for k := 0; k < 1+rng.Intn(20); k++ {
			if err := l.Credit(rng.Intn(n), rng.Float64()*10); err != nil {
				t.Fatal(err)
			}
		}
		round := uint64(batch + 1)
		for i := 0; i < n; i++ {
			if got, want := idx.Weight(round, i), direct.Weight(round, i); got != want {
				t.Fatalf("batch %d: Weight(%d) = %v, want %v", batch, i, got, want)
			}
		}
		if d := relDiff(idx.TotalWeight(round), direct.TotalWeight(round)); d > 1e-9 {
			t.Fatalf("batch %d: TotalWeight drift %g: index %v, direct %v",
				batch, d, idx.TotalWeight(round), direct.TotalWeight(round))
		}
	}
}

// TestIndexPrefixWeight checks the Fenwick prefix query against a naive
// prefix sum after a randomized mutation schedule.
func TestIndexPrefixWeight(t *testing.T) {
	const n = 257 // straddles a page and a power of two
	stakes := genStakes(n, 3)
	l := ledger.Genesis(stakes, sim.NewRNG(3, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	rng := sim.NewRNG(3, "weight.test.credits")
	for k := 0; k < 200; k++ {
		if err := l.Credit(rng.Intn(n), rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	ws := idx.WeightsInto(1, nil)
	var naive float64
	for k := 0; k <= n; k++ {
		if d := relDiff(idx.PrefixWeight(k), naive); d > 1e-9 {
			t.Fatalf("PrefixWeight(%d) = %v, naive %v (rel %g)", k, idx.PrefixWeight(k), naive, d)
		}
		if k < n {
			naive += ws[k]
		}
	}
	if idx.PrefixWeight(n+10) != idx.PrefixWeight(n) {
		t.Fatal("PrefixWeight past the population should clamp to the total")
	}
}

// TestRunnerIndexedDifferential drives a full BA* simulation on the
// indexed backend with rewards credited and transactions committed every
// round — both ledger mutation paths — and cross-checks the index
// against a ledger-direct oracle over the same canonical chain at every
// round end.
func TestRunnerIndexedDifferential(t *testing.T) {
	const nodes = 80
	const rounds = 12
	stakes := genStakes(nodes, 4)
	behaviors := make([]protocol.Behavior, nodes)
	for i := range behaviors {
		behaviors[i] = protocol.Honest
	}

	var runner *protocol.Runner
	rng := sim.NewRNG(4, "weight.test.mutations")
	mutated := false
	cfg := protocol.Config{
		Params:        protocol.DefaultParams(),
		Stakes:        stakes,
		Behaviors:     behaviors,
		Fanout:        5,
		Seed:          4,
		WeightBackend: weight.BackendIndexed,
		Reward: func(roles protocol.RoundRoles, report protocol.RoundReport) {
			// Credit the round's proposers (the reward path) and submit a
			// few transfers for the next block (the Append path); some
			// overdraw on purpose and must be skipped at apply.
			for _, rs := range roles.Leaders {
				if err := runner.Canonical().Credit(rs.ID, 2.5); err != nil {
					t.Fatal(err)
				}
				mutated = true
			}
			for k := 0; k < 4; k++ {
				from, to := rng.Intn(nodes), rng.Intn(nodes)
				runner.SubmitTransactionFee(from, to, rng.Float64()*3, 0.01)
			}
		},
	}
	var err error
	runner, err = protocol.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := runner.Weights().(*weight.Index)
	if ok == weight.ForcedLedgerDirect() {
		t.Fatalf("backend selection: got %T with forced=%v", runner.Weights(), weight.ForcedLedgerDirect())
	}
	direct := weight.NewLedgerDirect(runner.Canonical())
	for r := 0; r < rounds; r++ {
		runner.RunRounds(1)
		if idx == nil {
			continue // forced ledger-direct build: nothing to differentiate
		}
		round := runner.Canonical().Round()
		for i := 0; i < nodes; i++ {
			if got, want := idx.Weight(round, i), direct.Weight(round, i); got != want {
				t.Fatalf("round %d: Weight(%d) = %v, want %v", round, i, got, want)
			}
		}
		if d := relDiff(idx.TotalWeight(round), direct.TotalWeight(round)); d > 1e-9 {
			t.Fatalf("round %d: TotalWeight drift %g", round, d)
		}
	}
	if idx != nil && !mutated {
		t.Fatal("differential run never mutated the ledger; rewards did not fire")
	}
}

// TestForLedgerForced pins the weight_ledgerdirect escape hatch: with the
// force on, an indexed selection still builds the ledger-direct backend.
func TestForLedgerForced(t *testing.T) {
	stakes := genStakes(64, 5)
	l := ledger.Genesis(stakes, sim.NewRNG(5, "weight.test.genesis"))
	prev := weight.SetForceLedgerDirect(true)
	defer weight.SetForceLedgerDirect(prev)
	o, err := weight.ForLedger(l, weight.BackendIndexed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.(*weight.LedgerDirect); !ok {
		t.Fatalf("forced build returned %T, want *weight.LedgerDirect", o)
	}
}

// TestForLedgerBadBackend pins the error path.
func TestForLedgerBadBackend(t *testing.T) {
	if weight.ForcedLedgerDirect() {
		t.Skip("forced ledger-direct build folds every selection to the default")
	}
	stakes := genStakes(16, 6)
	l := ledger.Genesis(stakes, sim.NewRNG(6, "weight.test.genesis"))
	if _, err := weight.ForLedger(l, weight.Backend(99)); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

// TestSnapshotIsACopy guards the adversary contract: a Snapshot must not
// alias backend state that later mutations move under it.
func TestSnapshotIsACopy(t *testing.T) {
	stakes := genStakes(70, 7)
	l := ledger.Genesis(stakes, sim.NewRNG(7, "weight.test.genesis"))
	idx := weight.NewIndex(l)
	snap := weight.Snapshot(idx, 1)
	before := snap[3]
	if err := l.Credit(3, 1000); err != nil {
		t.Fatal(err)
	}
	if snap[3] != before {
		t.Fatal("Snapshot aliased the index's dense mirror")
	}
}
