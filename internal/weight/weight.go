// Package weight is the stake/weight oracle seam of the simulator: every
// consumer of sortition weights — the protocol runner's round-stake
// refresh, tau resolution, the adversary's stake-ranked target selectors,
// the experiment drivers and the CLIs — reads stake through an Oracle
// instead of touching the ledger's account table directly. Inverting the
// dependency makes the weight source pluggable: the ledger-direct backend
// reproduces today's reads bit-for-bit, the incremental index answers the
// same queries in O(changed accounts) per round, and the synthetic
// backends express stake shapes (heavy-tail Zipf, scheduled churn) that
// no fixed account vector can.
//
// A boundary test (TestNoDirectStakeReadsOutsideBackends) greps the tree
// so no direct Stake/StakesInto/TotalStake call creeps back in outside
// internal/ledger and this package.
package weight

import (
	"errors"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
)

// Oracle answers stake-weight queries for a simulated round. Rounds are
// 1-based ledger rounds; implementations backed by live state (the
// ledger backends) answer for the state's current round and treat the
// round argument as advisory, while schedule-driven backends (synthetic
// churn profiles) require the round sequence across calls to be
// non-decreasing — the protocol runner, which queries once per round in
// order, satisfies that by construction.
//
// Oracles are not safe for concurrent use; each run-pool worker's runner
// owns its own, like the sortition cache.
type Oracle interface {
	// NumNodes returns the population size the oracle answers for.
	NumNodes() int
	// Weight returns node's sortition weight (its stake in Algos) for
	// round; 0 for out-of-range nodes.
	Weight(round uint64, node int) float64
	// TotalWeight returns W, the network-wide weight for round — the
	// denominator of every sortition threshold.
	TotalWeight(round uint64) float64
	// WeightsInto fills dst with every node's weight for round, growing
	// dst as needed, and returns it; dst may be nil. This is the round
	// hot path: the runner refreshes one reusable buffer per round.
	WeightsInto(round uint64, dst []float64) []float64
}

// Snapshot returns a fresh copy of every node's weight for round.
func Snapshot(o Oracle, round uint64) []float64 {
	return o.WeightsInto(round, nil)
}

// Backend selects how a ledger-backed oracle answers queries; it is the
// protocol.Config knob for runs whose weights come from the canonical
// chain.
type Backend int

const (
	// BackendLedgerDirect reads the account table on every query —
	// bit-identical to the pre-oracle direct reads (the zero value, and
	// the default).
	BackendLedgerDirect Backend = iota
	// BackendIndexed maintains an incremental stake index (dense mirror +
	// Fenwick tree) updated by ledger mutation notifications, so per-round
	// refresh costs O(changed accounts) instead of O(accounts).
	BackendIndexed
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendLedgerDirect:
		return "ledger-direct"
	case BackendIndexed:
		return "indexed"
	default:
		return "unknown"
	}
}

// ErrBadBackend flags an unknown Backend value.
var ErrBadBackend = errors.New("weight: unknown backend")

// ForLedger builds the selected ledger-backed oracle over l. Building
// with -tags weight_ledgerdirect (or SetForceLedgerDirect) forces the
// ledger-direct backend regardless of the selection — the differential-
// oracle run that CI drives over the goldens, mirroring the legacy-heap
// and deep-clone tags.
func ForLedger(l *ledger.Ledger, b Backend) (Oracle, error) {
	if forceLedgerDirect {
		b = BackendLedgerDirect
	}
	switch b {
	case BackendLedgerDirect:
		return NewLedgerDirect(l), nil
	case BackendIndexed:
		return NewIndex(l), nil
	default:
		return nil, ErrBadBackend
	}
}

// LedgerDirect answers every query straight from the ledger's account
// table, exactly as the pre-oracle runner did: WeightsInto is
// ledger.StakesInto, TotalWeight is ledger.TotalStake. It is the default
// backend and the differential oracle the other backends are tested
// against; the golden figure tests pin its outputs bit-for-bit.
type LedgerDirect struct {
	l *ledger.Ledger
}

// NewLedgerDirect wraps l in the pass-through backend.
func NewLedgerDirect(l *ledger.Ledger) *LedgerDirect { return &LedgerDirect{l: l} }

var _ Oracle = (*LedgerDirect)(nil)

// NumNodes implements Oracle.
func (o *LedgerDirect) NumNodes() int { return o.l.NumAccounts() }

// Weight implements Oracle; the round argument is advisory (the ledger
// holds exactly its current round's stakes).
func (o *LedgerDirect) Weight(_ uint64, node int) float64 { return o.l.Stake(node) }

// TotalWeight implements Oracle.
func (o *LedgerDirect) TotalWeight(_ uint64) float64 { return o.l.TotalStake() }

// WeightsInto implements Oracle.
func (o *LedgerDirect) WeightsInto(_ uint64, dst []float64) []float64 {
	return o.l.StakesInto(dst)
}
