package weight

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

// ChurnStep rescales a seeded-random fraction of the population at one
// round boundary: when the oracle first answers for a round >= Round,
// floor(Frac*n) nodes (chosen by the oracle's churn stream) have their
// weight multiplied by Scale. Scale 0 models departure, Scale > 1 a
// whale arriving or a node consolidating stake.
type ChurnStep struct {
	Round uint64
	Frac  float64
	Scale float64
}

// Synthetic is a schedule-driven oracle, independent of any ledger: the
// stake shape comes from a generator (Zipf rank weights, or an explicit
// vector) and evolves only through its churn schedule. Queries must
// advance monotonically in round — the runner's once-per-round refresh
// satisfies that — and every draw comes from labelled streams of the
// construction seed, so a given (profile, seed) pair answers identically
// regardless of worker count or sweep order.
type Synthetic struct {
	weights []float64
	total   float64
	churn   []ChurnStep // sorted by Round; churn[:applied] already applied
	applied int
	rng     *rand.Rand // churn subset stream
	round   uint64     // highest round seen, for the monotonic contract
}

var _ Oracle = (*Synthetic)(nil)

// NewSynthetic wraps an explicit weight vector (copied) in an oracle.
// Total weight starts as the index-order sum of weights.
func NewSynthetic(weights []float64, seed int64) *Synthetic {
	s := &Synthetic{
		weights: append([]float64(nil), weights...),
		rng:     sim.NewRNG(seed, "weight.synthetic.churn"),
	}
	for _, w := range s.weights {
		s.total += w
	}
	return s
}

// NewZipf builds a rank-based Zipf stake profile over n nodes: the node
// of rank r (1-based) holds weight proportional to r^-exponent, ranks are
// dealt to node IDs by a seeded permutation so ID order carries no stake
// information, and the whole vector is normalized to sum to total. An
// exponent near 1 reproduces the heavy-tailed holdings observed on real
// chains; exponent 0 degenerates to the uniform profile.
func NewZipf(n int, exponent, total float64, seed int64) *Synthetic {
	if n <= 0 {
		panic(fmt.Sprintf("weight: NewZipf with n=%d", n))
	}
	raw := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		raw[r] = math.Pow(float64(r+1), -exponent)
		sum += raw[r]
	}
	perm := sim.NewRNG(seed, "weight.synthetic.zipf").Perm(n)
	weights := make([]float64, n)
	scale := total / sum
	for r, id := range perm {
		weights[id] = raw[r] * scale
	}
	return NewSynthetic(weights, seed)
}

// WithChurn installs the churn schedule (sorted by round, stably) and
// returns the oracle for chaining. Call before the first query.
func (s *Synthetic) WithChurn(steps []ChurnStep) *Synthetic {
	s.churn = append([]ChurnStep(nil), steps...)
	sort.SliceStable(s.churn, func(i, j int) bool { return s.churn[i].Round < s.churn[j].Round })
	return s
}

// advance applies every churn step due at or before round. The round
// sequence across queries must be non-decreasing; re-querying an older
// round after advancing would silently answer with newer weights, so it
// panics instead.
func (s *Synthetic) advance(round uint64) {
	if round < s.round {
		panic(fmt.Sprintf("weight: synthetic oracle queried for round %d after round %d", round, s.round))
	}
	s.round = round
	for s.applied < len(s.churn) && s.churn[s.applied].Round <= round {
		s.apply(s.churn[s.applied])
		s.applied++
	}
}

// apply rescales a seeded subset of floor(Frac*n) nodes by Scale. The
// subset is drawn by Fisher–Yates-style index selection from the churn
// stream; draws happen in schedule order, so the evolution is a pure
// function of (weights, schedule, seed).
func (s *Synthetic) apply(step ChurnStep) {
	n := len(s.weights)
	k := int(step.Frac * float64(n))
	if k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	for _, id := range s.rng.Perm(n)[:k] {
		old := s.weights[id]
		s.weights[id] = old * step.Scale
		s.total += s.weights[id] - old
	}
}

// NumNodes implements Oracle.
func (s *Synthetic) NumNodes() int { return len(s.weights) }

// Weight implements Oracle.
func (s *Synthetic) Weight(round uint64, node int) float64 {
	s.advance(round)
	if node < 0 || node >= len(s.weights) {
		return 0
	}
	return s.weights[node]
}

// TotalWeight implements Oracle.
func (s *Synthetic) TotalWeight(round uint64) float64 {
	s.advance(round)
	return s.total
}

// WeightsInto implements Oracle.
func (s *Synthetic) WeightsInto(round uint64, dst []float64) []float64 {
	s.advance(round)
	dst = append(dst[:0], s.weights...)
	return dst
}
