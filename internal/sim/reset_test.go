package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestResetMatchesFresh pins the arena-recycling contract: an engine
// rewound with Reset — after a full drain or mid-run with events still
// queued, and with whatever ring geometry the previous run grew — must
// execute a program in exactly the order a brand-new engine does.
func TestResetMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := NewRNG(seed, "differential.reset")
			delays := func() time.Duration {
				// Mixed near/far so the warm-up touches both rungs (and can
				// trigger resizes the recycled run inherits).
				if rng.Intn(2) == 0 {
					return time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
				}
				return time.Duration(rng.Int63n(int64(13 * time.Second)))
			}
			warm := genOps(rng, 200, 2, delays)
			ops := genOps(rng, 300, 3, delays)

			fresh := runProgram(t, ops, false, 0)

			recycled := NewEngine(99)
			var warmLog []int
			warmID := 0
			for i := range warm {
				schedule(recycled, &warm[i], &warmID, &warmLog)
			}
			if seed%2 == 0 {
				// Abandon mid-run: Reset must drop the queued remainder.
				if err := recycled.Run(recycled.Now() + 300*time.Millisecond); err != nil {
					t.Fatal(err)
				}
			} else if err := recycled.Run(0); err != nil {
				t.Fatal(err)
			}

			recycled.Reset(1) // runProgram's engines use seed 1
			if recycled.Now() != 0 || recycled.Steps() != 0 || recycled.Pending() != 0 {
				t.Fatalf("Reset left state: now=%v steps=%d pending=%d",
					recycled.Now(), recycled.Steps(), recycled.Pending())
			}
			var log []int
			id := 0
			for i := range ops {
				schedule(recycled, &ops[i], &id, &log)
			}
			if err := recycled.Run(0); err != nil {
				t.Fatal(err)
			}

			if len(log) != len(fresh) {
				t.Fatalf("recycled executed %d events, fresh %d", len(log), len(fresh))
			}
			for i := range log {
				if log[i] != fresh[i] {
					t.Fatalf("pop order diverges at step %d: recycled ran %d, fresh ran %d", i, log[i], fresh[i])
				}
			}
		})
	}
}

// TestResetRNGStreams pins that Reset rebinds the labelled random
// streams to the new seed exactly as NewEngine would.
func TestResetRNGStreams(t *testing.T) {
	a := NewEngine(3)
	a.Schedule(time.Second, func() {})
	if err := a.Run(0); err != nil {
		t.Fatal(err)
	}
	a.Reset(17)
	b := NewEngine(17)
	ra, rb := a.RNG("protocol"), b.RNG("protocol")
	for i := 0; i < 32; i++ {
		if x, y := ra.Int63(), rb.Int63(); x != y {
			t.Fatalf("draw %d: reset stream %d, fresh stream %d", i, x, y)
		}
	}
}
