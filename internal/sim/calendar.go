package sim

import "time"

// calendarQueue is a two-rung calendar (ladder) queue over the engine's
// bounded delay horizon:
//
//   - a fine-grained NEAR ring of per-bucket FIFO slices covering a short
//     window just ahead of the clock, sorted lazily bucket-by-bucket as
//     the drain reaches them;
//   - a coarse FAR ring of unsorted day-width buckets covering the full
//     delay horizon, each migrated wholesale into the near ring when the
//     clock reaches its day;
//   - a conventional binary min-heap for the rare event beyond even the
//     far span.
//
// Gossip-delay events live on a bounded horizon — every hop delay is at
// most maxDelay×asyncFactor ahead of the clock — so scheduling is one
// append into a bucket, popping is one index bump, and each event
// migrates between rungs at most once: amortised O(1) per event (the
// calendar-queue result of Brown 1988; the two-rung split is the ladder
// variant that keeps it O(1) when event times cluster instead of
// spreading uniformly). The only ordering work left is one insertion
// sort per near bucket per drain, amortised O(bucket occupancy) per
// event over sequential memory — where the old binary heap paid
// O(log population) per operation scattered across a near-megabyte
// slice.
//
// Ordering contract: pops follow strict (at, seq) order, identical to
// the legacy binary heap — the golden figure outputs pin this. Two
// events in one near bucket may differ in timestamp, hence the lazy
// sort; within a timestamp, appends arrive in seq order and the stable
// insertion sort preserves FIFO. Events pushed into the bucket currently
// being drained insert into its still-sorted tail.
//
// Memory bounds: both rings have a fixed bucket count (near buckets
// double only while halving the width, far buckets double only to cover
// a grown horizon, both capped), and every bucket's time slot recurs
// every lap, so per-bucket slice capacities converge to the workload's
// per-slot peak instead of creeping — the failure mode of a single
// fine-grained ring spanning the whole horizon, where each round's burst
// pattern lands on fresh buckets.
//
// Invariants:
//
//   - every queued event has at >= the engine clock at all times (pushes
//     clamp, pops advance the clock monotonically);
//   - near events all lie in [migrated - farWidth, migrated + farWidth):
//     the most recently migrated far day plus the day the window is
//     currently inside. The two days together span exactly the near ring,
//     so distinct times never collide in a near bucket index;
//   - the far chain of day farCursor+1 — the [migrated, migrated+farWidth)
//     day pushes insert into the near ring directly — is always empty:
//     advanceTo drains it the moment the window reaches it. Without the
//     drain, a day's events could split between rungs with the far part
//     popping late; with it, short-delay events take the near route in
//     one write instead of far block → near bucket (the double write that
//     dominated round CPU before this scheme);
//   - far events all lie in [migrated + farWidth, migrated + farSpan -
//     farWidth), one far lap with a spare day of margin;
//   - the near cursor points at or before the earliest near event's
//     absolute bucket; farCursor's day is the last one migrated.
type calendarQueue struct {
	// near is the fine ring; len is a power of two.
	near []calBucket
	// nearShift sets the near bucket width to 1<<nearShift nanoseconds.
	nearShift uint
	nearMask  int64
	// cursor is the absolute near-bucket number (at >> nearShift, not
	// wrapped) the drain resumes from. It advances monotonically except
	// when a push lands behind it.
	cursor int64
	// ring counts events currently stored in near buckets.
	ring int

	// farHead is the coarse ring of unsorted day buckets; len is a power
	// of two. Each entry heads a chain of fixed-size event blocks in
	// blocks (-1 = empty day).
	farHead []int32
	// farShift sets the day width to 1<<farShift nanoseconds; it is
	// derived from the near geometry so a whole day always fits the near
	// ring (farWidth == nearSpan/2).
	farShift uint
	farMask  int64
	// farCursor is the absolute day number last migrated into the near
	// ring; migrated == (farCursor+1) << farShift.
	farCursor int64
	// farCount counts events currently stored in far buckets.
	farCount int
	// migrated is the time boundary between the rungs: events before it
	// are in the near ring (or already executed), events at or after it
	// are in the far ring or overflow.
	migrated time.Duration

	// blocks is the shared far-event block pool; freeBlk heads its
	// freelist. Pooling makes far memory proportional to the peak far
	// population rather than to (day count × per-day burst peak): which
	// days carry gossip bursts rotates across rounds, so per-day slices
	// would grow every slot to the burst size eventually.
	blocks  []farBlock
	freeBlk int32

	// slab backs near-bucket slices: grow steps carve zero-len chunks off
	// large blocks instead of allocating per bucket, collapsing the
	// thousands of small cold-start allocations a fresh engine would
	// otherwise pay while its buckets grow from nil.
	slab []event

	// overflow holds events beyond the far span, ordered by (at, seq).
	overflow eventQueue

	// Routing statistics: plain (non-atomic) counters — the queue is
	// single-threaded — incremented on the push/migrate paths and read
	// through Engine.SchedStats. They are observability only and never
	// influence scheduling; Engine.Reset clears them with the rest of the
	// counters so per-run deltas stay well-defined on recycled engines.
	statNear     uint64 // pushes routed to the near ring
	statFar      uint64 // pushes routed to the far ring
	statOverflow uint64 // pushes routed to the overflow heap
	statMigrated uint64 // events migrated far ring -> near ring
}

// calBucket is one near-ring slot: an append-order event slice that gets
// insertion-sorted by (at, seq) when the drain cursor reaches it, then
// drained by advancing next.
//
// unsorted tracks, append by append, whether the slice has fallen out of
// (at, seq) order since its last drain; gossip fan-outs schedule mostly
// ascending timestamps, so most buckets arrive presorted and the drain
// can skip the sortBucket verification walk entirely (its compares move
// to one per append).
type calBucket struct {
	events   []event
	next     int32
	sorted   bool
	unsorted bool
}

// farBlock is one fixed-size chunk of a far day's unsorted event chain.
type farBlock struct {
	next   int32 // next block in the day chain or freelist, -1 = none
	n      int32 // events used
	events [calFarBlockLen]event
}

const (
	// calNearBuckets is the initial near ring size; width halving doubles
	// it up to calMaxNearBuckets while keeping the near span constant.
	calNearBuckets    = 2048
	calMaxNearBuckets = 1 << 16
	// calNearShift gives 2^17 ns ≈ 131 µs near buckets: a 268 ms near
	// span, matching the simulator's densest delay windows.
	calNearShift = 17
	// calMaxBucketLen is the near-bucket occupancy at which the width
	// halves. It sits well above the Poisson tail of the equilibrium
	// occupancy (a few events per bucket), so only genuine density shifts
	// trigger a resize, not burst noise.
	calMaxBucketLen = 32
	// calMinNearShift (1 µs buckets) stops width halving: a burst of
	// events on one exact timestamp can never be spread by a finer grid,
	// it simply lives in one bucket (where its seq-ordered appends make
	// the lazy sort linear).
	calMinNearShift = 10
	// calFarBuckets is the initial far ring size: with 134 ms days the
	// initial far span is ~34 s, covering the default protocol's timers
	// and its 8×-inflated weak-synchrony delays without any resize.
	calFarBuckets = 256
	// calMaxFarBuckets caps horizon growth (the overflow heap absorbs
	// anything beyond the capped span).
	calMaxFarBuckets = 1 << 12
	// calOverflowSlack is how many overflow events are tolerated before a
	// far-span regrow is considered.
	calOverflowSlack = 64
	// calFarBlockLen sizes the pooled far blocks (~3.6 KB each): small
	// enough that sparse days waste little, large enough that burst days
	// chain few blocks.
	calFarBlockLen = 64
	// calSlabLen sizes the near-bucket slab blocks (events per block).
	calSlabLen = 4096
	// calSlabMaxChunk caps slab-carved bucket capacities; the rare bucket
	// growing beyond it falls back to ordinary append doubling.
	calSlabMaxChunk = 512
)

// bucketGrow is the capacity ladder for near buckets: coarse steps keep
// the number of grow-copies (and abandoned slab chunks) small.
func bucketGrow(c int) int {
	switch {
	case c == 0:
		return 8
	default:
		return c * 4
	}
}

func (c *calendarQueue) init() {
	c.near = make([]calBucket, calNearBuckets)
	c.nearShift = calNearShift
	c.nearMask = calNearBuckets - 1
	c.farHead = make([]int32, calFarBuckets)
	for i := range c.farHead {
		c.farHead[i] = -1
	}
	// farWidth = nearSpan/2: log2(2048) - 1 = 10 extra bits.
	c.farShift = calNearShift + 10
	c.farMask = calFarBuckets - 1
	c.farCursor = -1
	c.freeBlk = -1
	c.migrated = 0
}

// len reports the total number of queued events.
func (c *calendarQueue) len() int { return c.ring + c.farCount + len(c.overflow) }

// reset empties the calendar back to its post-init state while keeping
// every allocation and the current geometry: near buckets keep their
// grown capacities (and slab-carved backings), far blocks return to the
// freelist, and ring sizes/widths stay where resizes left them. Pop
// order is strict (at, seq) regardless of geometry, so a reset calendar
// schedules identically to a fresh one — it just skips the warm-up
// growth. All closure/payload references are dropped.
func (c *calendarQueue) reset() {
	for i := range c.near {
		b := &c.near[i]
		clear(b.events)
		b.events = b.events[:0]
		b.next = 0
		b.sorted = false
		b.unsorted = false
	}
	c.cursor = 0
	c.ring = 0
	for i := range c.farHead {
		c.farHead[i] = -1
	}
	c.farCursor = -1
	c.farCount = 0
	c.migrated = 0
	c.freeBlk = -1
	for i := range c.blocks {
		blk := &c.blocks[i]
		clear(blk.events[:blk.n])
		blk.n = 0
		blk.next = c.freeBlk
		c.freeBlk = int32(i)
	}
	clear(c.overflow)
	c.overflow = c.overflow[:0]
	c.statNear = 0
	c.statFar = 0
	c.statOverflow = 0
	c.statMigrated = 0
}

// ensureWindow advances the rung boundary after the clock jumped past it
// (an overflow pop, or an idle stretch). Far days strictly before the
// clock's day are necessarily empty — every event is at or after the
// clock — so only the clock's own day and the one after it (the new
// direct-insert day) can hold events, and advanceTo drains both.
func (c *calendarQueue) ensureWindow(now time.Duration) {
	if now < c.migrated {
		return
	}
	c.advanceTo(int64(now) >> c.farShift)
}

// advanceTo moves the rung boundary so `day` is the last migrated far
// day, then drains both far chains the near window now covers: day
// itself into [migrated - farWidth, migrated) and day+1 — the new
// direct-insert day — into [migrated, migrated + farWidth). Draining
// day+1 eagerly is what lets push route that day's events straight to
// the near ring without ever splitting a day between rungs.
func (c *calendarQueue) advanceTo(day int64) {
	c.farCursor = day
	c.migrated = time.Duration((day + 1) << c.farShift)
	if c.farCount > 0 {
		c.migrate(day)
	}
	if c.farCount > 0 {
		c.migrate(day + 1)
	}
}

// migrate moves one far day's events into the near ring and recycles
// its blocks. The two days advanceTo migrates land within
// [migrated - farWidth, migrated + farWidth) — exactly the near span,
// so near indices cannot collide. Direct near inserts may already
// occupy the target buckets; insertNear's unsorted tracking keeps the
// eventual bucket drain in (at, seq) order regardless.
func (c *calendarQueue) migrate(day int64) {
	slot := day & c.farMask
	for h := c.farHead[slot]; h >= 0; {
		blk := &c.blocks[h]
		n := int(blk.n)
		for i := 0; i < n; i++ {
			c.insertNear(blk.events[i])
		}
		c.farCount -= n
		c.statMigrated += uint64(n)
		clear(blk.events[:n]) // release closure/payload references
		blk.n = 0
		next := blk.next
		blk.next = c.freeBlk
		c.freeBlk = h
		h = next
	}
	c.farHead[slot] = -1
}

// allocBlock takes a block from the freelist, growing the pool when it
// is empty.
func (c *calendarQueue) allocBlock() int32 {
	if h := c.freeBlk; h >= 0 {
		c.freeBlk = c.blocks[h].next
		return h
	}
	c.blocks = append(c.blocks, farBlock{next: -1})
	return int32(len(c.blocks) - 1)
}

// appendFar chains ev onto its day bucket.
func (c *calendarQueue) appendFar(ev event) {
	slot := (int64(ev.at) >> c.farShift) & c.farMask
	h := c.farHead[slot]
	if h < 0 || c.blocks[h].n == calFarBlockLen {
		nb := c.allocBlock()
		c.blocks[nb].next = h
		c.farHead[slot] = nb
		h = nb
	}
	blk := &c.blocks[h]
	blk.events[blk.n] = ev
	blk.n++
	c.farCount++
}

// insertNear places ev in its near bucket and returns the bucket's
// pending event count.
func (c *calendarQueue) insertNear(ev event) int {
	abs := int64(ev.at) >> c.nearShift
	if abs < c.cursor {
		// The drain already passed this bucket (possible after the clock
		// jumped); pull the cursor back so the event is not skipped.
		c.cursor = abs
	}
	b := &c.near[abs&c.nearMask]
	e := b.events
	if len(e) == cap(e) {
		e = c.growBucket(e)
	}
	e = append(e, ev)
	if b.sorted {
		// The bucket is mid-drain: keep its undrained tail sorted. New
		// events rarely precede anything already pending (their time is
		// at least the clock), so the scan almost always stops at once.
		i := len(e) - 1
		for i > int(b.next) && ev.before(&e[i-1]) {
			e[i] = e[i-1]
			i--
		}
		e[i] = ev
	} else if !b.unsorted && len(e) > 1 && ev.before(&e[len(e)-2]) {
		// Appends have broken ascending order: the drain must sort.
		b.unsorted = true
	}
	b.events = e
	c.ring++
	return len(e) - int(b.next)
}

// growBucket returns e rebacked with the next capacity step, carved from
// the shared slab when small enough. The abandoned backing stays inside
// its slab block until the block itself is unreferenced; the coarse
// growth ladder bounds that waste.
func (c *calendarQueue) growBucket(e []event) []event {
	want := bucketGrow(cap(e))
	if want > calSlabMaxChunk {
		// Ordinary append doubling takes over for the rare huge bucket
		// (e.g. a same-timestamp burst pinned by calMinNearShift).
		return e
	}
	if len(c.slab)+want > cap(c.slab) {
		c.slab = make([]event, 0, calSlabLen)
	}
	off := len(c.slab)
	c.slab = c.slab[:off+want]
	ne := c.slab[off : off : off+want]
	return append(ne, e...)
}

// push routes ev to the near ring, the far ring, or the overflow heap,
// then reacts to pressure by resizing. now is the engine clock; ev.at is
// already clamped to now or later.
//
// Events inside the current day — [migrated, migrated + farWidth) — go
// straight to the near ring rather than far ring → migrate → near ring.
// Short-delay gossip hops land in that window almost always, and the
// old route wrote each of them twice (profiles put the far-block
// round-trip at ~a quarter of round CPU); the doubled near window costs
// nothing because a far day is half the near span by construction.
func (c *calendarQueue) push(ev event, now time.Duration) {
	c.ensureWindow(now)
	if ev.at < c.migrated+time.Duration(1)<<c.farShift {
		c.statNear++
		if c.insertNear(ev) > calMaxBucketLen &&
			c.nearShift > calMinNearShift && len(c.near) < calMaxNearBuckets {
			// Halve the near width at constant span. The far geometry is
			// untouched: a far day still fits the near ring.
			c.resizeNear(c.nearShift - 1)
		}
		return
	}
	if (int64(ev.at)>>c.farShift)-c.farCursor < c.farMask {
		c.statFar++
		c.appendFar(ev)
		return
	}
	c.statOverflow++
	c.overflow.push(ev)
	// A growing overflow means the horizon outgrew the far span (a delay
	// model without a hint): double the far ring. A few far-future
	// timers alone never trigger this.
	if len(c.overflow) > calOverflowSlack && len(c.overflow) > c.ring+c.farCount &&
		len(c.farHead) < calMaxFarBuckets {
		c.resizeFar(len(c.farHead) * 2)
	}
}

// sortBucket insertion-sorts a near bucket by (at, seq). Insertion sort
// fits the workload: buckets hold at most ~calMaxBucketLen events, and
// the degenerate large case — a same-timestamp burst pinned to one
// bucket by calMinNearShift — arrives already seq-ordered, which is the
// algorithm's linear best case.
func sortBucket(e []event) {
	for i := 1; i < len(e); i++ {
		ev := e[i]
		j := i
		for j > 0 && ev.before(&e[j-1]) {
			e[j] = e[j-1]
			j--
		}
		e[j] = ev
	}
}

// peekNear returns a pointer to the earliest near-ring event, walking
// the cursor over empty buckets and sorting the bucket it lands on, or
// nil when the near ring is empty. The walk terminates because ring > 0
// guarantees a non-empty bucket within the migrated window, and it is
// correct because every near event sits at or after the cursor's bucket.
func (c *calendarQueue) peekNear(now time.Duration) *event {
	if c.ring == 0 {
		return nil
	}
	// Every near event lies in [migrated - farWidth, migrated + farWidth);
	// resume the walk no earlier than that window's base, not at the
	// clock's bucket — after a migration jumped the window ahead of an
	// idle clock, walking from the clock would visit the window's buckets
	// at aliased ring positions, out of time order.
	lo := (int64(c.migrated) >> c.nearShift) - int64(1)<<(c.farShift-c.nearShift)
	if l := int64(now) >> c.nearShift; l > lo {
		lo = l
	}
	if c.cursor < lo {
		c.cursor = lo
	}
	for {
		if b := &c.near[c.cursor&c.nearMask]; int(b.next) < len(b.events) {
			if !b.sorted {
				// Presorted buckets (the common case, tracked append by
				// append) skip the verification walk.
				if b.unsorted {
					sortBucket(b.events)
					b.unsorted = false
				}
				b.sorted = true
			}
			return &b.events[b.next]
		}
		c.cursor++
	}
}

// farNextDay returns the next non-empty far day at or after
// c.farCursor+1. The caller guarantees farCount > 0, which bounds the
// walk to one far lap.
func (c *calendarQueue) farNextDay() int64 {
	day := c.farCursor + 1
	for c.farHead[day&c.farMask] < 0 {
		day++
	}
	return day
}

// farMin returns a pointer to the earliest event of far day `day`, by
// linear scan over its block chain (far days are unsorted).
func (c *calendarQueue) farMin(day int64) *event {
	var min *event
	for h := c.farHead[day&c.farMask]; h >= 0; h = c.blocks[h].next {
		blk := &c.blocks[h]
		for i := 0; i < int(blk.n); i++ {
			if min == nil || blk.events[i].before(min) {
				min = &blk.events[i]
			}
		}
	}
	return min
}

// peek returns a pointer to the earliest queued event without removing
// it, or nil when the queue is empty. The pointer is invalidated by the
// next push or pop. Peeking never migrates a far day: migration ahead of
// the clock is only safe when the migrated day's minimum is popped at
// once (see pop) — a peek-only caller such as Run(until) may stop
// without popping, and events pushed afterwards would then alias the
// displaced near window. A peek into the far ring instead scans the next
// day read-only.
func (c *calendarQueue) peek(now time.Duration) *event {
	c.ensureWindow(now)
	ring := c.peekNear(now)
	if ring == nil && c.farCount > 0 {
		ring = c.farMin(c.farNextDay())
	}
	if len(c.overflow) == 0 {
		return ring
	}
	over := &c.overflow[0]
	if ring == nil || over.before(ring) {
		return over
	}
	return ring
}

// pop removes and returns the earliest queued event in (at, seq) order.
// When the near ring is drained it migrates far days — skipping empty
// ones — until the near ring has an event or the far ring drains,
// stopping if the overflow heap's minimum precedes the next far day.
// Migrating a day ahead of the clock is safe here precisely because the
// pop then returns that day's minimum (nothing queued precedes it), so
// the engine advances the clock into the day before any further push.
func (c *calendarQueue) pop(now time.Duration) (event, bool) {
	c.ensureWindow(now)
	ring := c.peekNear(now)
	for ring == nil && c.farCount > 0 {
		day := c.farNextDay()
		if len(c.overflow) > 0 && c.overflow[0].at < time.Duration(day<<c.farShift) {
			break
		}
		c.advanceTo(day)
		ring = c.peekNear(now)
	}
	if len(c.overflow) > 0 && (ring == nil || c.overflow[0].before(ring)) {
		return c.overflow.pop(), true
	}
	if ring == nil {
		return event{}, false
	}
	ev := *ring
	b := &c.near[c.cursor&c.nearMask]
	b.next++
	if int(b.next) == len(b.events) {
		// Fully drained: release the closure/payload references in one
		// bulk clear and recycle the slice for the next lap.
		clear(b.events)
		b.events = b.events[:0]
		b.next = 0
		b.sorted = false
		b.unsorted = false
	}
	c.ring--
	return ev, true
}

// hintHorizon guarantees that events up to horizon ahead of the clock
// take a ring route, growing the far span at constant day width. The
// span only grows — shrinking on a transient delay-factor reset would
// thrash — and growing is one O(current population) rebuild, so callers
// hint eagerly (network construction, delay-factor changes).
func (c *calendarQueue) hintHorizon(horizon time.Duration) {
	if horizon <= 0 {
		return
	}
	n := len(c.farHead)
	// A worst-case event at now+horizon lands horizon>>farShift + 1 days
	// ahead of farCursor when it crosses a day boundary, and push demands
	// strictly fewer than farMask (= n-1) days of lead: grow until
	// horizon>>farShift <= n-3.
	for int64(horizon)>>c.farShift >= int64(n-2) && n < calMaxFarBuckets {
		n *= 2
	}
	if n != len(c.farHead) {
		c.resizeFar(n)
	}
}

// resizeNear rebuilds the near ring with a finer bucket width at
// constant span, redistributing the pending near events. Width only
// shrinks, geometrically, so total resize work is O(population) per
// halving and halvings are bounded.
func (c *calendarQueue) resizeNear(shift uint) {
	old := c.near
	c.near = make([]calBucket, len(old)*2)
	c.nearShift = shift
	c.nearMask = int64(len(c.near) - 1)
	// migrated is far-day aligned, so it is also aligned to the finer
	// grid; the cursor restarts at the window base and re-walks.
	c.cursor = (int64(c.migrated) >> shift) - int64(len(c.near))
	if c.cursor < 0 {
		c.cursor = 0
	}
	c.ring = 0
	for i := range old {
		b := &old[i]
		for _, ev := range b.events[b.next:] {
			c.insertNear(ev)
		}
	}
}

// resizeFar rebuilds the far ring with more day buckets at constant
// width. Day chains relink wholesale — a chain's day is recoverable from
// any of its events — and overflow events that the wider span now covers
// migrate into the ring.
func (c *calendarQueue) resizeFar(nbuckets int) {
	oldHeads := c.farHead
	c.farHead = make([]int32, nbuckets)
	for i := range c.farHead {
		c.farHead[i] = -1
	}
	c.farMask = int64(nbuckets - 1)
	for _, h := range oldHeads {
		for h >= 0 {
			blk := &c.blocks[h]
			next := blk.next
			slot := (int64(blk.events[0].at) >> c.farShift) & c.farMask
			blk.next = c.farHead[slot]
			c.farHead[slot] = h
			h = next
		}
	}
	oldOverflow := c.overflow
	c.overflow = nil
	for _, ev := range oldOverflow {
		switch day := int64(ev.at) >> c.farShift; {
		case day <= c.farCursor+1:
			// Inside the near window (overflow events never precede
			// migrated - farWidth: the pop loop stops advancing at the
			// overflow minimum). Chaining onto a migrated day — or the
			// direct-insert day, whose far chain must stay empty — would
			// strand the event a far lap out of order.
			c.insertNear(ev)
		case day-c.farCursor < c.farMask:
			c.appendFar(ev)
		default:
			c.overflow.push(ev)
		}
	}
}
