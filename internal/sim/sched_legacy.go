//go:build sim_legacy_heap

package sim

// legacyHeapDefault: this build runs every engine on the legacy binary
// heap, the differential-testing oracle for the calendar queue.
const legacyHeapDefault = true
