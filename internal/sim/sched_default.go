//go:build !sim_legacy_heap

package sim

// legacyHeapDefault selects the scheduler NewEngine installs. The default
// build uses the calendar queue; `-tags sim_legacy_heap` flips every
// engine to the pre-calendar binary heap so the full suite (including the
// golden figure tests) runs against the oracle scheduler.
const legacyHeapDefault = false
