// Package sim is a deterministic discrete-event simulation engine. It is
// the substrate under the Algorand protocol simulator: a virtual clock, a
// time-ordered event queue with stable FIFO tie-breaking, and labelled
// deterministic random streams so that every experiment is reproducible
// from a single seed.
package sim

import (
	"container/heap"
	"errors"
	"hash/fnv"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when execution was halted via Stop.
var ErrStopped = errors.New("sim: engine stopped")

// Action is a unit of simulated work executed at its scheduled virtual time.
type Action func()

type event struct {
	at     time.Duration
	seq    uint64
	action Action
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending event set. It is not safe
// for concurrent use: simulated concurrency is expressed through event
// ordering, not goroutines, which keeps runs bit-for-bit reproducible.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	seed    int64
	steps   uint64
}

// NewEngine creates an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues action to run delay after the current virtual time.
// Negative delays are treated as zero (run "now", after already-queued
// events at the same timestamp).
func (e *Engine) Schedule(delay time.Duration, action Action) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, action)
}

// ScheduleAt enqueues action at the absolute virtual time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, action Action) {
	if action == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, action: action})
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&e.queue).(*event)
	if !ok {
		return false
	}
	e.now = ev.at
	e.steps++
	ev.action()
	return true
}

// Run executes events until the queue drains, until the clock passes
// until (exclusive), or until Stop is called. A zero until means "no time
// limit". It returns ErrStopped when halted via Stop, nil otherwise.
// Whenever Run returns nil with a positive until, the clock has advanced
// to until even if the queue drained before reaching it.
func (e *Engine) Run(until time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if until > 0 && e.queue[0].at >= until {
			e.now = until
			return nil
		}
		e.Step()
	}
	if until > 0 && e.now < until {
		e.now = until
	}
	return nil
}

// Stop halts a Run in progress after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules action at fixed intervals starting one interval from
// now, until the predicate keepGoing returns false (checked before each
// execution) or the engine drains. It returns immediately; the chain of
// events lives on the engine's queue.
func (e *Engine) Every(interval time.Duration, keepGoing func() bool, action Action) {
	if interval <= 0 || action == nil || keepGoing == nil {
		return
	}
	var tick Action
	tick = func() {
		if !keepGoing() {
			return
		}
		action()
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
}

// RNG returns a deterministic random stream for the given label. Streams
// with distinct labels are statistically independent; the same
// (seed, label) pair always yields the same stream, so adding a new
// consumer never perturbs existing ones.
func (e *Engine) RNG(label string) *rand.Rand {
	return NewRNG(e.seed, label)
}

// NewRNG builds the deterministic stream for (seed, label) without an
// engine, for components that only need randomness.
func NewRNG(seed int64, label string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	mixed := seed ^ int64(h.Sum64())
	// splitmix64 finalizer decorrelates adjacent seeds.
	z := uint64(mixed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
