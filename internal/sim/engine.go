// Package sim is a deterministic discrete-event simulation engine. It is
// the substrate under the Algorand protocol simulator: a virtual clock, a
// time-ordered event queue with stable FIFO tie-breaking, and labelled
// deterministic random streams so that every experiment is reproducible
// from a single seed.
package sim

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when execution was halted via Stop.
var ErrStopped = errors.New("sim: engine stopped")

// Action is a unit of simulated work executed at its scheduled virtual time.
type Action func()

// event is one pending unit of work. Exactly one of action or fn is set:
// action is the general closure form, fn+arg+payload is the pre-bound form
// used by hot paths (gossip delivery) to avoid a closure allocation per
// event. Events are stored by value in the queue slice, so steady-state
// scheduling reuses the queue's capacity instead of boxing a heap node
// per event.
type event struct {
	at      time.Duration
	seq     uint64
	action  Action
	fn      func(arg int, payload any)
	arg     int
	payload any
}

// before reports whether e precedes other in the engine's total event
// order: earlier time first, then lower sequence number (FIFO among
// same-time events). Every scheduler implementation must pop in exactly
// this order — the golden figure outputs pin it.
func (e *event) before(other *event) bool {
	if e.at != other.at {
		return e.at < other.at
	}
	return e.seq < other.seq
}

// eventQueue is a binary min-heap ordered by (at, seq); seq breaks ties
// FIFO so scheduling order is deterministic. The heap is hand-rolled over
// a value slice: container/heap would force a per-event allocation and
// dispatch every comparison through an interface. It serves as the
// legacy whole-queue scheduler (the differential-testing oracle, see
// UseLegacyHeap) and as the calendar queue's far-future overflow heap.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		smallest := i
		if l := 2*i + 1; l < n && q.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	q.siftUp(len(*q) - 1)
}

func (q *eventQueue) pop() event {
	h := *q
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop closure/payload references
	*q = h[:n]
	(*q).siftDown(0)
	return ev
}

// Engine owns the virtual clock and the pending event set. It is not safe
// for concurrent use: simulated concurrency is expressed through event
// ordering, not goroutines, which keeps runs bit-for-bit reproducible.
//
// Events are scheduled through a calendar queue (see calendarQueue) whose
// ring span tracks the gossip delay horizon; the pre-optimization binary
// heap survives as a differential-testing oracle behind UseLegacyHeap and
// the sim_legacy_heap build tag. Both schedulers pop in identical
// (time, seq) order.
type Engine struct {
	now     time.Duration
	seq     uint64
	legacy  bool
	queue   eventQueue // legacy whole-queue heap (oracle scheduler)
	cal     calendarQueue
	stopped bool
	seed    int64
	steps   uint64
}

// NewEngine creates an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{seed: seed, legacy: legacyHeapDefault}
	if !e.legacy {
		e.cal.init()
	}
	return e
}

// UseLegacyHeap switches the engine to the pre-calendar binary-heap
// scheduler. It exists for differential testing — driving the same
// schedule through both schedulers and asserting identical pop order —
// and must be called before anything is scheduled. Building with
// -tags sim_legacy_heap makes the heap the default for every engine,
// turning the whole test suite into an oracle run.
func (e *Engine) UseLegacyHeap() {
	if e.Pending() > 0 || e.steps > 0 {
		panic("sim: UseLegacyHeap called on a running engine")
	}
	e.legacy = true
	e.cal = calendarQueue{} // release the unused calendar rings
}

// Reset rewinds the engine to a fresh post-NewEngine state for seed,
// keeping the scheduler's allocations and geometry: the calendar's
// near/far rings stay at whatever widths and spans previous runs grew
// them to, buckets keep their capacities, and far blocks return to the
// free pool. Pop order is strict (at, seq) independent of geometry, so a
// recycled engine is output-identical to NewEngine(seed) while skipping
// the calendar warm-up — the run-pool arenas lean on that. Any still-
// queued events are dropped. The scheduler selection (legacy heap vs
// calendar) carries over.
func (e *Engine) Reset(seed int64) {
	e.now = 0
	e.seq = 0
	e.steps = 0
	e.stopped = false
	e.seed = seed
	clear(e.queue)
	e.queue = e.queue[:0]
	if !e.legacy {
		e.cal.reset()
	}
}

// HintHorizon tells the scheduler that hot-path events arrive at most
// horizon ahead of the clock, sizing the calendar ring so they all take
// the O(1) bucket route. The hint is a pure optimisation: events beyond
// it stay correct via the overflow heap, and the span also adapts
// automatically when the overflow population grows. The network layer
// hints its maximum hop delay (times the current delay factor) on
// construction and on every SetDelayFactor call.
func (e *Engine) HintHorizon(horizon time.Duration) {
	if !e.legacy {
		e.cal.hintHorizon(horizon)
	}
}

// SchedStats is a snapshot of the engine's scheduling counters, for
// telemetry. All fields count since construction or the last Reset;
// consumers flush deltas between snapshots, so the mixed reset
// semantics of recycled engines never produce negative rates as long
// as the baseline is re-taken after each Reset (protocol runners take
// theirs at construction, which follows the arena's Reset).
type SchedStats struct {
	// Scheduled counts events pushed; Executed counts events popped and
	// run. Both cover either scheduler.
	Scheduled uint64
	Executed  uint64
	// Near/Far/Overflow split pushes by calendar route; Migrated counts
	// far-ring events rehomed into the near ring. All zero under the
	// legacy heap.
	Near     uint64
	Far      uint64
	Overflow uint64
	Migrated uint64
}

// SchedStats returns the current scheduling counters. Reading them has
// no effect on scheduling.
func (e *Engine) SchedStats() SchedStats {
	return SchedStats{
		Scheduled: e.seq,
		Executed:  e.steps,
		Near:      e.cal.statNear,
		Far:       e.cal.statFar,
		Overflow:  e.cal.statOverflow,
		Migrated:  e.cal.statMigrated,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int {
	if e.legacy {
		return len(e.queue)
	}
	return e.cal.len()
}

// Schedule enqueues action to run delay after the current virtual time.
// Negative delays are treated as zero (run "now", after already-queued
// events at the same timestamp).
func (e *Engine) Schedule(delay time.Duration, action Action) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, action)
}

// ScheduleAt enqueues action at the absolute virtual time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, action Action) {
	if action == nil {
		return
	}
	e.pushEvent(event{at: at, action: action})
}

// ScheduleFn enqueues the pre-bound call fn(arg, payload) to run delay
// after the current virtual time. It is the allocation-free counterpart
// of Schedule for hot paths: fn is typically a callback stored once at
// construction, so no closure is captured per event. Ordering semantics
// are identical to Schedule.
func (e *Engine) ScheduleFn(delay time.Duration, fn func(arg int, payload any), arg int, payload any) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	e.pushEvent(event{at: e.now + delay, fn: fn, arg: arg, payload: payload})
}

func (e *Engine) pushEvent(ev event) {
	if ev.at < e.now {
		ev.at = e.now
	}
	e.seq++
	ev.seq = e.seq
	if e.legacy {
		e.queue.push(ev)
	} else {
		e.cal.push(ev, e.now)
	}
}

// popEvent removes and returns the earliest pending event.
func (e *Engine) popEvent() (event, bool) {
	if e.legacy {
		if len(e.queue) == 0 {
			return event{}, false
		}
		return e.queue.pop(), true
	}
	return e.cal.pop(e.now)
}

// peekAt returns the timestamp of the earliest pending event.
func (e *Engine) peekAt() (time.Duration, bool) {
	if e.legacy {
		if len(e.queue) == 0 {
			return 0, false
		}
		return e.queue[0].at, true
	}
	ev := e.cal.peek(e.now)
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev, ok := e.popEvent()
	if !ok {
		return false
	}
	e.now = ev.at
	e.steps++
	if ev.action != nil {
		ev.action()
	} else {
		ev.fn(ev.arg, ev.payload)
	}
	return true
}

// Run executes events until the queue drains, until the clock passes
// until (exclusive), or until Stop is called. A zero until means "no time
// limit". It returns ErrStopped when halted via Stop, nil otherwise.
// Whenever Run returns nil with a positive until, the clock has advanced
// to until even if the queue drained before reaching it.
func (e *Engine) Run(until time.Duration) error {
	e.stopped = false
	if until <= 0 {
		// No deadline: drain without peeking ahead of every step. Stop
		// semantics match the deadline path — ErrStopped only when events
		// remain after the stopping event.
		for {
			if !e.Step() {
				return nil
			}
			if e.stopped {
				if e.Pending() > 0 {
					return ErrStopped
				}
				return nil
			}
		}
	}
	for {
		at, ok := e.peekAt()
		if !ok {
			break
		}
		if e.stopped {
			return ErrStopped
		}
		if at >= until {
			e.now = until
			return nil
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// Stop halts a Run in progress after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules action at fixed intervals starting one interval from
// now, until the predicate keepGoing returns false (checked before each
// execution) or the engine drains. It returns immediately; the chain of
// events lives on the engine's queue.
func (e *Engine) Every(interval time.Duration, keepGoing func() bool, action Action) {
	if interval <= 0 || action == nil || keepGoing == nil {
		return
	}
	var tick Action
	tick = func() {
		if !keepGoing() {
			return
		}
		action()
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
}

// RNG returns a deterministic random stream for the given label. Streams
// with distinct labels are statistically independent; the same
// (seed, label) pair always yields the same stream, so adding a new
// consumer never perturbs existing ones.
func (e *Engine) RNG(label string) *rand.Rand {
	return NewRNG(e.seed, label)
}

// NewRNG builds the deterministic stream for (seed, label) without an
// engine, for components that only need randomness.
func NewRNG(seed int64, label string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	mixed := seed ^ int64(h.Sum64())
	// splitmix64 finalizer decorrelates adjacent seeds.
	z := uint64(mixed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
