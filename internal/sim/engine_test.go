package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	_ = e.Run(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []time.Duration
	e.Schedule(time.Second, func() {
		hits = append(hits, e.Now())
		e.Schedule(time.Second, func() {
			hits = append(hits, e.Now())
		})
	})
	_ = e.Run(0)
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 2*time.Second {
		t.Errorf("hits = %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(3*time.Second, func() { ran++ })
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran %d events before the deadline, want 1", ran)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesClockOnDrain(t *testing.T) {
	// The queue drains at 1s, well before the 5s deadline; the clock must
	// still pass until, as the doc promises.
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v after drain, want 5s", e.Now())
	}
	// An already-empty queue behaves the same.
	if err := e.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7*time.Second {
		t.Errorf("Now = %v on empty queue, want 7s", e.Now())
	}
	// A zero until still means "no time limit": the clock stays at the
	// last event's timestamp.
	e2 := NewEngine(1)
	e2.Schedule(time.Second, func() {})
	if err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
	if e2.Now() != time.Second {
		t.Errorf("Now = %v with no limit, want 1s", e2.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { ran++ })
	if err := e.Run(0); err != ErrStopped {
		t.Errorf("Run error = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	_ = e.Run(0)
	if !ran || e.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.Schedule(time.Second, func() {
		e.ScheduleAt(0, func() { at = e.Now() })
	})
	_ = e.Run(0)
	if at != time.Second {
		t.Errorf("past event executed at %v, want 1s", at)
	}
}

func TestNilActionIgnored(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, nil)
	if e.Pending() != 0 {
		t.Error("nil action was enqueued")
	}
}

func TestStepCounting(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	_ = e.Run(0)
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7, "stream")
	b := NewRNG(7, "stream")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,label) produced different streams")
		}
	}
}

func TestRNGLabelIndependence(t *testing.T) {
	a := NewRNG(7, "alpha")
	b := NewRNG(7, "beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("distinct labels collided %d/64 times", same)
	}
}

func TestEngineRNGMatchesNewRNG(t *testing.T) {
	e := NewEngine(99)
	a := e.RNG("x")
	b := NewRNG(99, "x")
	if a.Uint64() != b.Uint64() {
		t.Error("Engine.RNG disagrees with NewRNG")
	}
}

// ScheduleFn must interleave with Schedule in strict (time, seq) order —
// the no-closure fast path cannot be allowed to perturb event ordering.
func TestScheduleFnOrdersWithSchedule(t *testing.T) {
	e := NewEngine(1)
	var got []int
	record := func(arg int, _ any) { got = append(got, arg) }
	e.ScheduleFn(20*time.Millisecond, record, 3, nil)
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.ScheduleFn(10*time.Millisecond, record, 2, nil) // same time: FIFO after the closure
	e.Schedule(30*time.Millisecond, func() { got = append(got, 4) })
	e.ScheduleFn(-5*time.Millisecond, record, 0, nil) // negative delay clamps to now
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// ScheduleFn passes its payload through untouched.
func TestScheduleFnPayload(t *testing.T) {
	e := NewEngine(1)
	type box struct{ v int }
	b := &box{v: 7}
	var seen *box
	e.ScheduleFn(0, func(_ int, p any) { seen = p.(*box) }, 0, b)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if seen != b {
		t.Fatal("payload pointer did not round-trip")
	}
}
