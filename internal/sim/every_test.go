package sim

import (
	"testing"
	"time"
)

func TestEveryRunsUntilPredicateFails(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Every(time.Second, func() bool { return fired < 3 }, func() { fired++ })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
	if e.Now() != 4*time.Second {
		// Three executions at 1s,2s,3s plus the final (declined) check at 4s.
		t.Errorf("clock at %v, want 4s", e.Now())
	}
}

func TestEveryInvalidArgsIgnored(t *testing.T) {
	e := NewEngine(1)
	e.Every(0, func() bool { return true }, func() {})
	e.Every(time.Second, nil, func() {})
	e.Every(time.Second, func() bool { return true }, nil)
	if e.Pending() != 0 {
		t.Error("invalid Every calls enqueued events")
	}
}

func TestEveryInterleavesWithOtherEvents(t *testing.T) {
	e := NewEngine(1)
	var order []string
	ticks := 0
	e.Every(2*time.Second, func() bool { return ticks < 2 }, func() {
		ticks++
		order = append(order, "tick")
	})
	e.Schedule(3*time.Second, func() { order = append(order, "once") })
	_ = e.Run(0)
	want := []string{"tick", "once", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
