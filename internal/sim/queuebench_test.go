package sim

import (
	"testing"
	"time"
)

// benchQueueChurn drives a steady-state churn (pop one, push one) at a
// given pending population with protocol-like uniform delays.
func benchQueueChurn(b *testing.B, legacy bool, pending int) {
	e := NewEngine(1)
	if legacy {
		e.UseLegacyHeap()
	}
	e.HintHorizon(1600 * time.Millisecond)
	rng := NewRNG(1, "queuebench")
	delays := make([]time.Duration, 8192)
	for i := range delays {
		delays[i] = 20*time.Millisecond + time.Duration(rng.Int63n(int64(180*time.Millisecond)))
	}
	fn := func(int, any) {}
	for i := 0; i < pending; i++ {
		e.ScheduleFn(delays[i%len(delays)], fn, 0, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.ScheduleFn(delays[i%len(delays)], fn, 0, nil)
	}
}

func BenchmarkQueueChurnCalendar16k(b *testing.B) { benchQueueChurn(b, false, 16384) }
func BenchmarkQueueChurnHeap16k(b *testing.B)     { benchQueueChurn(b, true, 16384) }
func BenchmarkQueueChurnCalendar1k(b *testing.B)  { benchQueueChurn(b, false, 1024) }
func BenchmarkQueueChurnHeap1k(b *testing.B)      { benchQueueChurn(b, true, 1024) }
