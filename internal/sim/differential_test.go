package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The differential tests drive the calendar queue and the legacy binary
// heap through identical randomized schedules and assert bit-identical
// pop order — the scheduler contract the golden figures rely on. Event
// mixes cover the regimes the protocol produces: dense near-future
// bursts, same-timestamp ties, far-future timers, horizon hints
// mid-run, and long idle jumps.

// diffOp replays a pre-generated schedule program: the randomness is
// drawn once and shared, so both engines see identical operations.
type diffOp struct {
	delay    time.Duration
	absolute bool
	fn       bool // use ScheduleFn instead of Schedule
	children []diffOp
	hint     time.Duration
}

func genOps(rng *rand.Rand, n, depth int, delays func() time.Duration) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		op := diffOp{
			delay: delays(),
			fn:    rng.Intn(2) == 0,
		}
		if rng.Intn(8) == 0 {
			op.absolute = true
		}
		if rng.Intn(16) == 0 {
			op.hint = time.Duration(rng.Int63n(int64(20 * time.Second)))
		}
		if depth > 0 && rng.Intn(3) == 0 {
			op.children = genOps(rng, rng.Intn(4), depth-1, delays)
		}
		ops[i] = op
	}
	return ops
}

// schedule installs op on the engine, appending its unique id to log at
// execution time and scheduling its children from within the event.
func schedule(e *Engine, op *diffOp, id *int, log *[]int) {
	myID := *id
	*id++
	body := func() {
		*log = append(*log, myID)
		if op.hint > 0 {
			e.HintHorizon(op.hint)
		}
		for i := range op.children {
			schedule(e, &op.children[i], id, log)
		}
	}
	switch {
	case op.fn:
		e.ScheduleFn(op.delay, func(int, any) { body() }, 0, nil)
	case op.absolute:
		e.ScheduleAt(e.Now()+op.delay, body)
	default:
		e.Schedule(op.delay, body)
	}
}

// runProgram executes the same op program on a fresh engine and returns
// the execution order. ids are assigned in schedule order, which is
// identical across engines.
func runProgram(t *testing.T, ops []diffOp, legacy bool, until time.Duration) []int {
	t.Helper()
	e := NewEngine(1)
	if legacy {
		e.UseLegacyHeap()
	}
	var log []int
	id := 0
	for i := range ops {
		schedule(e, &ops[i], &id, &log)
	}
	if until > 0 {
		// Chunked runs exercise the peek path and clock jumps to `until`.
		for e.Pending() > 0 {
			if err := e.Run(e.Now() + until); err != nil {
				t.Fatal(err)
			}
		}
	} else if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return log
}

func diffCompare(t *testing.T, ops []diffOp, until time.Duration) {
	t.Helper()
	cal := runProgram(t, ops, false, until)
	heap := runProgram(t, ops, true, until)
	if len(cal) != len(heap) {
		t.Fatalf("calendar executed %d events, legacy heap %d", len(cal), len(heap))
	}
	for i := range cal {
		if cal[i] != heap[i] {
			t.Fatalf("pop order diverges at step %d: calendar ran event %d, legacy heap ran event %d", i, cal[i], heap[i])
		}
	}
}

// TestCalendarMatchesHeap cross-checks the calendar queue against the
// legacy heap over many randomized schedule programs and delay regimes.
func TestCalendarMatchesHeap(t *testing.T) {
	regimes := []struct {
		name   string
		delays func(rng *rand.Rand) func() time.Duration
	}{
		{"gossip", func(rng *rand.Rand) func() time.Duration {
			// Dense 20-200 ms hops with a heavy 8× tail, like the network.
			return func() time.Duration {
				d := 20*time.Millisecond + time.Duration(rng.Int63n(int64(180*time.Millisecond)))
				if rng.Intn(25) == 0 {
					d *= 8
				}
				return d
			}
		}},
		{"bursts", func(rng *rand.Rand) func() time.Duration {
			// Many events on few distinct timestamps: FIFO tie-breaking.
			ticks := []time.Duration{0, time.Millisecond, time.Millisecond, 5 * time.Millisecond, time.Second}
			return func() time.Duration { return ticks[rng.Intn(len(ticks))] }
		}},
		{"timers", func(rng *rand.Rand) func() time.Duration {
			// Sparse far-future events: overflow heap and idle jumps.
			return func() time.Duration { return time.Duration(rng.Int63n(int64(40 * time.Second))) }
		}},
		{"mixed", func(rng *rand.Rand) func() time.Duration {
			// Everything at once, including resize-boundary landings.
			return func() time.Duration {
				switch rng.Intn(4) {
				case 0:
					return time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
				case 1:
					return time.Duration(rng.Int63n(int64(13 * time.Second)))
				case 2:
					// Exact bucket/day boundaries for every plausible shift.
					return time.Duration(rng.Int63n(1<<10) << (10 + uint(rng.Intn(20))))
				default:
					return 0
				}
			}
		}},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				t.Run(fmt.Sprint(seed), func(t *testing.T) {
					rng := NewRNG(seed, "differential."+reg.name)
					ops := genOps(rng, 300, 3, reg.delays(rng))
					var until time.Duration
					if seed%2 == 1 {
						until = 700 * time.Millisecond // chunked Run exercises peeks
					}
					diffCompare(t, ops, until)
				})
			}
		})
	}
}

// TestCalendarMatchesHeapFactorSwings replays the weak-synchrony shape:
// dense gossip whose delays inflate 8× for a window mid-run, with
// matching HintHorizon calls, as the network layer issues them.
func TestCalendarMatchesHeapFactorSwings(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			build := func(legacy bool) []int {
				e := NewEngine(1)
				if legacy {
					e.UseLegacyHeap()
				}
				rng := NewRNG(seed, "differential.swings")
				var log []int
				id := 0
				factor := time.Duration(1)
				var spawn func(depth int)
				spawn = func(depth int) {
					myID := id
					id++
					delay := factor * time.Duration(20+rng.Int63n(200)) * time.Millisecond / 4
					e.ScheduleFn(delay, func(int, any) {
						log = append(log, myID)
						if depth > 0 {
							for i := 0; i < 3; i++ {
								spawn(depth - 1)
							}
						}
					}, 0, nil)
				}
				for round := 0; round < 6; round++ {
					if round == 2 {
						factor = 8
						e.HintHorizon(8 * 1600 * time.Millisecond)
					}
					if round == 4 {
						factor = 1
						e.HintHorizon(1600 * time.Millisecond)
					}
					// A round: a deadline timer far ahead plus gossip cascades.
					e.Schedule(13*time.Second, func() { log = append(log, -1) })
					for i := 0; i < 40; i++ {
						spawn(3)
					}
					if err := e.Run(0); err != nil {
						t.Fatal(err)
					}
				}
				return log
			}
			cal := build(false)
			heap := build(true)
			if len(cal) != len(heap) {
				t.Fatalf("calendar executed %d events, legacy heap %d", len(cal), len(heap))
			}
			for i := range cal {
				if cal[i] != heap[i] {
					t.Fatalf("pop order diverges at step %d: calendar ran event %d, legacy heap ran event %d", i, cal[i], heap[i])
				}
			}
		})
	}
}
