package sim

import (
	"testing"
	"time"
)

// TestPendingAcrossRungs counts events through all three storage tiers:
// near ring, far ring, overflow heap.
func TestPendingAcrossRungs(t *testing.T) {
	e := NewEngine(1)
	delays := []time.Duration{
		0, time.Millisecond, 50 * time.Millisecond, // near window
		time.Second, 13 * time.Second, 30 * time.Second, // far days
		5 * time.Minute, time.Hour, // beyond the far span: overflow
	}
	for _, d := range delays {
		e.Schedule(d, func() {})
	}
	if got := e.Pending(); got != len(delays) {
		t.Fatalf("Pending = %d, want %d", got, len(delays))
	}
	ran := 0
	for e.Step() {
		ran++
	}
	if ran != len(delays) || e.Pending() != 0 {
		t.Fatalf("ran %d events (want %d), Pending = %d", ran, len(delays), e.Pending())
	}
	if e.Now() != time.Hour {
		t.Fatalf("Now = %v after drain, want 1h", e.Now())
	}
}

// TestSameTimestampBurstFIFO pins the FIFO tie-break for a burst far
// larger than any bucket threshold: all events share one timestamp, so
// they pile into a single bucket and must still run in schedule order.
func TestSameTimestampBurstFIFO(t *testing.T) {
	e := NewEngine(1)
	const n = 20_000
	got := make([]int, 0, n)
	record := func(arg int, _ any) { got = append(got, arg) }
	for i := 0; i < n; i++ {
		e.ScheduleFn(time.Second, record, i, nil)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("burst order[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestHintHorizonGrowsFarSpan verifies that a horizon hint moves far
// timers from the overflow heap onto the far ring's O(1) route.
func TestHintHorizonGrowsFarSpan(t *testing.T) {
	if legacyHeapDefault {
		t.Skip("white-box calendar test; engine runs the legacy heap in this build")
	}
	e := NewEngine(1)
	long := 2 * time.Minute // beyond the default ~34 s far span
	e.Schedule(long, func() {})
	if len(e.cal.overflow) != 1 {
		t.Fatalf("pre-hint: overflow holds %d events, want 1", len(e.cal.overflow))
	}
	e.HintHorizon(5 * time.Minute)
	if len(e.cal.overflow) != 0 || e.cal.farCount != 1 {
		t.Fatalf("post-hint: overflow=%d farCount=%d, want 0/1", len(e.cal.overflow), e.cal.farCount)
	}
	e.Schedule(long, func() {})
	if e.cal.farCount != 2 {
		t.Fatalf("post-hint push: farCount = %d, want 2", e.cal.farCount)
	}
	ran := 0
	for e.Step() {
		ran++
	}
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
}

// TestRunUntilAcrossRungBoundaries runs the clock in small chunks across
// far-day boundaries: peeks must see through the far ring without
// disturbing order.
func TestRunUntilAcrossRungBoundaries(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	for d := 50 * time.Millisecond; d < 3*time.Second; d += 130 * time.Millisecond {
		d := d
		e.ScheduleAt(d, func() { got = append(got, d) })
	}
	want := len(got)
	for e.Pending() > 0 {
		if err := e.Run(e.Now() + 77*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) == want {
		t.Fatal("no events executed")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

// TestCrowdedBucketRefinesWidth floods one near window with distinct
// timestamps and checks the width-halving resize keeps order and loses
// nothing.
func TestCrowdedBucketRefinesWidth(t *testing.T) {
	if legacyHeapDefault {
		t.Skip("white-box calendar test; engine runs the legacy heap in this build")
	}
	e := NewEngine(1)
	shift0 := e.cal.nearShift
	const n = 5000
	var got []time.Duration
	for i := 0; i < n; i++ {
		// Distinct nanosecond timestamps inside one initial bucket width.
		at := time.Duration(1 + i*7)
		at = at % (1 << 17)
		e.ScheduleAt(at, func() { got = append(got, e.Now()) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d", i)
		}
	}
	if e.cal.nearShift >= shift0 {
		t.Fatalf("crowded bucket did not refine width: shift %d -> %d", shift0, e.cal.nearShift)
	}
}

// TestUseLegacyHeapPanicsMidRun pins the oracle-switch contract: it is a
// construction-time choice.
func TestUseLegacyHeapPanicsMidRun(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("UseLegacyHeap on a non-empty engine did not panic")
		}
	}()
	e.UseLegacyHeap()
}
