// Package evolution studies the repeated-round dynamics that the paper's
// one-shot analysis motivates: a population of honest-but-selfish nodes
// that, when they reconsider, play a myopic best response — "cooperate if
// and only if the reward is more than the cost" (the paper's definition
// of selfishness). Strategies are conditioned on the role a node holds
// when it revises, since Algorand resamples roles every round.
//
// The headline contrast: under the role-based split with the Algorithm 1
// reward, the paid roles stay fully cooperative for as long as the chain
// lives (the α/β premiums are strict), whereas under the Foundation's
// role-blind split the leader and committee dispositions erode from the
// first round. Both schemes share one fragility the one-shot analysis
// hides: cooperation of the unpaid "others" is sustained only by
// knife-edge pivotality inside the strong synchrony set, so the commons
// erodes to the synchrony threshold and eventually tips the network into
// the Fig. 3 collapse. This quantifies why the paper's conclusion calls
// for the Foundation to keep adapting rewards to the network state.
package evolution

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// SchemeKind selects the reward rule driving the dynamics.
type SchemeKind uint8

// The two competing schemes.
const (
	// SchemeFoundation pays a fixed per-round reward, stake-proportional
	// and role-blind (20 Algos, the period-1 schedule).
	SchemeFoundation SchemeKind = iota + 1
	// SchemeRoleBased recomputes Algorithm 1 every round on the realised
	// roles and pays (α, β, γ) role pools.
	SchemeRoleBased
)

// String implements fmt.Stringer.
func (s SchemeKind) String() string {
	switch s {
	case SchemeFoundation:
		return "foundation"
	case SchemeRoleBased:
		return "role-based"
	default:
		return "unknown"
	}
}

// Config parameterises one evolutionary run.
type Config struct {
	// Nodes is the population size.
	Nodes int
	// Dist draws node stakes.
	Dist stake.Distribution
	// Costs is the role-cost model.
	Costs game.RoleCosts
	// Scheme selects the reward rule.
	Scheme SchemeKind
	// FoundationReward is the fixed per-round reward under
	// SchemeFoundation (the role-based scheme computes its own).
	FoundationReward float64
	// Rounds is the number of simulated revision rounds.
	Rounds int
	// InitialDefection is the starting per-role defection probability.
	InitialDefection float64
	// RevisionRate is the fraction of nodes revising per round. Revisions
	// are applied sequentially in random order (asynchronous best-response
	// dynamics), so revisers see the effect of earlier revisions.
	RevisionRate float64
	// Noise is the probability that a revising node picks a random
	// strategy instead of its best response (exploration / trembles).
	Noise float64
	// LeadersPerRound / CommitteePerRound are the stake-weighted role
	// draws per round.
	LeadersPerRound, CommitteePerRound int
	// SyncSetFrac is the fraction of "other" nodes whose relaying the
	// round depends on (the strong synchrony set Y).
	SyncSetFrac float64
	// SyncThreshold is the cooperating fraction of Y needed for strong
	// synchrony (Definition 2's "most honest nodes, e.g. 95%").
	SyncThreshold float64
	// QuorumFrac is the committee-stake quorum (BA* threshold).
	QuorumFrac float64
	// SafetyMargin inflates the Algorithm 1 reward above its strict
	// infimum: B = (1 + SafetyMargin) · B*. The theorem only needs any
	// B > B*, and a real operator pays a margin so that incentives stay
	// strict when defectors inflate the γ-pool denominator.
	SafetyMargin float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a 300-node population with the paper's constants.
func DefaultConfig(scheme SchemeKind) Config {
	return Config{
		Nodes:             300,
		Dist:              stake.Uniform{A: 1, B: 200},
		Costs:             game.DefaultRoleCosts(),
		Scheme:            scheme,
		FoundationReward:  20,
		Rounds:            150,
		InitialDefection:  0,
		RevisionRate:      0.20,
		Noise:             0,
		LeadersPerRound:   3,
		CommitteePerRound: 20,
		SyncSetFrac:       0.5,
		SyncThreshold:     0.95,
		QuorumFrac:        0.685,
		SafetyMargin:      0.5,
		Seed:              1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 10:
		return errors.New("evolution: need at least 10 nodes")
	case c.Dist == nil:
		return errors.New("evolution: nil stake distribution")
	case c.Rounds < 1:
		return errors.New("evolution: need at least one round")
	case c.InitialDefection < 0 || c.InitialDefection > 1:
		return errors.New("evolution: initial defection out of [0,1]")
	case c.RevisionRate <= 0 || c.RevisionRate > 1:
		return errors.New("evolution: revision rate out of (0,1]")
	case c.Noise < 0 || c.Noise > 1:
		return errors.New("evolution: noise out of [0,1]")
	case c.LeadersPerRound < 1 || c.CommitteePerRound < 1:
		return errors.New("evolution: need at least one leader and committee member")
	case c.LeadersPerRound+c.CommitteePerRound >= c.Nodes:
		return errors.New("evolution: role draws exceed population")
	case c.SyncSetFrac <= 0 || c.SyncSetFrac > 1:
		return errors.New("evolution: sync-set fraction out of (0,1]")
	case c.SyncThreshold <= 0 || c.SyncThreshold > 1:
		return errors.New("evolution: sync threshold out of (0,1]")
	case c.QuorumFrac <= 0 || c.QuorumFrac > 1:
		return errors.New("evolution: quorum out of (0,1]")
	case c.SafetyMargin < 0:
		return errors.New("evolution: negative safety margin")
	case c.Scheme != SchemeFoundation && c.Scheme != SchemeRoleBased:
		return fmt.Errorf("evolution: unknown scheme %d", c.Scheme)
	}
	if c.Scheme == SchemeFoundation && c.FoundationReward <= 0 {
		return errors.New("evolution: foundation reward must be positive")
	}
	return c.Costs.Validate()
}

// RoundStats is one round's aggregate state.
type RoundStats struct {
	Round          int
	CoopAll        float64 // cooperating fraction of all nodes (in-role)
	CoopLeaders    float64 // cooperating fraction among this round's leaders
	CoopCommittee  float64
	CoopSyncSet    float64
	BlockProduced  bool
	RewardB        float64 // reward disbursed this round (0 if no block)
	MeanPayoffCoop float64
	MeanPayoffDef  float64
	// StratLeaders / StratCommittee / StratOthers are the population-wide
	// fractions of nodes whose strategy table says "cooperate" for each
	// role — the learned dispositions, independent of this round's draws.
	StratLeaders   float64
	StratCommittee float64
	StratOthers    float64
}

// Result is the full trajectory.
type Result struct {
	Config Config
	Stats  []RoundStats
}

// FinalCoop returns the mean cooperating fraction over the last quarter
// of the run.
func (r *Result) FinalCoop() float64 {
	start := len(r.Stats) * 3 / 4
	sum := 0.0
	for _, s := range r.Stats[start:] {
		sum += s.CoopAll
	}
	return sum / float64(len(r.Stats)-start)
}

// FinalRoleCoop returns the mean cooperating fractions of leaders and
// committee members over the last quarter of the run.
func (r *Result) FinalRoleCoop() (leaders, committee float64) {
	start := len(r.Stats) * 3 / 4
	n := 0.0
	for _, s := range r.Stats[start:] {
		leaders += s.CoopLeaders
		committee += s.CoopCommittee
		n++
	}
	return leaders / n, committee / n
}

// BlockRate returns the fraction of rounds that produced a block.
func (r *Result) BlockRate() float64 {
	produced := 0
	for _, s := range r.Stats {
		if s.BlockProduced {
			produced++
		}
	}
	return float64(produced) / float64(len(r.Stats))
}

// SurvivalRounds returns the number of rounds before the first failed
// round (the producing prefix length); len(Stats) if no round failed.
func (r *Result) SurvivalRounds() int {
	for i, s := range r.Stats {
		if !s.BlockProduced {
			return i
		}
	}
	return len(r.Stats)
}

// PrefixStratCoop returns the mean learned cooperation dispositions for
// leaders and committee members over the producing prefix (or the first
// round if the very first round failed).
func (r *Result) PrefixStratCoop() (leaders, committee float64) {
	n := r.SurvivalRounds()
	if n == 0 {
		n = 1
	}
	for _, s := range r.Stats[:n] {
		leaders += s.StratLeaders
		committee += s.StratCommittee
	}
	return leaders / float64(n), committee / float64(n)
}

// roleIdx maps a role to the strategy-table index.
func roleIdx(r game.Role) int {
	switch r {
	case game.RoleLeader:
		return 0
	case game.RoleCommittee:
		return 1
	default:
		return 2
	}
}

// Run executes the dynamics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed, "evolution")
	pop, err := stake.SamplePopulation(cfg.Dist, cfg.Nodes, rng)
	if err != nil {
		return nil, err
	}

	// strat[i][r] is whether node i cooperates when holding role r.
	strat := make([][3]bool, cfg.Nodes)
	for i := range strat {
		for r := 0; r < 3; r++ {
			strat[i][r] = rng.Float64() >= cfg.InitialDefection
		}
	}

	// The strong synchrony set is structural (who the gossip topology
	// depends on), so membership is drawn once per run, not per round.
	inSync := make([]bool, cfg.Nodes)
	for i := range inSync {
		inSync[i] = rng.Float64() < cfg.SyncSetFrac
	}

	res := &Result{Config: cfg, Stats: make([]RoundStats, 0, cfg.Rounds)}
	for round := 0; round < cfg.Rounds; round++ {
		stats := playRound(cfg, pop, strat, inSync, rng)
		stats.Round = round + 1
		var sl, sm, sk int
		for i := range strat {
			if strat[i][0] {
				sl++
			}
			if strat[i][1] {
				sm++
			}
			if strat[i][2] {
				sk++
			}
		}
		stats.StratLeaders = float64(sl) / float64(cfg.Nodes)
		stats.StratCommittee = float64(sm) / float64(cfg.Nodes)
		stats.StratOthers = float64(sk) / float64(cfg.Nodes)
		res.Stats = append(res.Stats, stats)
	}
	return res, nil
}

// roundState carries one round's realised roles and aggregates; payoff
// counterfactuals and sequential revisions mutate it incrementally.
type roundState struct {
	cfg    Config
	pop    *stake.Population
	role   []game.Role
	inSync []bool
	coop   []bool

	sl, sm, sk       float64 // role stake totals (fixed)
	online           float64
	slCoopCount      int
	smCoop           float64
	syncTotal        int
	syncCoop         int
	effSL, effSM     float64 // cooperating pool stakes
	effSK            float64 // everyone else (others + defecting L/M)
	b, alpha, beta   float64
	minL, minM, minK float64
}

func (st *roundState) produced() bool {
	return st.slCoopCount > 0 &&
		st.smCoop >= st.cfg.QuorumFrac*st.sm &&
		(st.syncTotal == 0 || float64(st.syncCoop) >= st.cfg.SyncThreshold*float64(st.syncTotal))
}

// producedIf evaluates the block predicate with node i's strategy flipped
// to c.
func (st *roundState) producedIf(i int, c bool) bool {
	if c == st.coop[i] {
		return st.produced()
	}
	lc, smC, syC := st.slCoopCount, st.smCoop, st.syncCoop
	s := st.pop.Stakes[i]
	switch st.role[i] {
	case game.RoleLeader:
		if c {
			lc++
		} else {
			lc--
		}
	case game.RoleCommittee:
		if c {
			smC += s
		} else {
			smC -= s
		}
	}
	// Synchrony-set membership is orthogonal to the round's role: every
	// member relays, so its cooperation counts towards strong synchrony
	// whatever role it drew.
	if st.inSync[i] {
		if c {
			syC++
		} else {
			syC--
		}
	}
	return lc > 0 && smC >= st.cfg.QuorumFrac*st.sm &&
		(st.syncTotal == 0 || float64(syC) >= st.cfg.SyncThreshold*float64(st.syncTotal))
}

// payoffIf evaluates node i's utility for strategy c against the current
// profile.
func (st *roundState) payoffIf(i int, c bool) float64 {
	cost := st.cfg.Costs.Sortition
	if c {
		cost = st.cfg.Costs.ForRole(st.role[i])
	}
	if st.b <= 0 || !st.producedIf(i, c) {
		return -cost
	}
	s := st.pop.Stakes[i]
	reward := 0.0
	switch st.cfg.Scheme {
	case SchemeFoundation:
		reward = st.b * s / st.online
	case SchemeRoleBased:
		sl2, sm2, sk2 := st.effSL, st.effSM, st.effSK
		if c != st.coop[i] {
			switch st.role[i] {
			case game.RoleLeader:
				if c {
					sl2, sk2 = sl2+s, sk2-s
				} else {
					sl2, sk2 = sl2-s, sk2+s
				}
			case game.RoleCommittee:
				if c {
					sm2, sk2 = sm2+s, sk2-s
				} else {
					sm2, sk2 = sm2-s, sk2+s
				}
			}
		}
		switch {
		case st.role[i] == game.RoleLeader && c:
			reward = st.alpha * st.b * s / sl2
		case st.role[i] == game.RoleCommittee && c:
			reward = st.beta * st.b * s / sm2
		default:
			if sk2 > 0 {
				reward = (1 - st.alpha - st.beta) * st.b * s / sk2
			}
		}
	}
	return reward - cost
}

// apply flips node i's strategy to c, updating all aggregates.
func (st *roundState) apply(i int, c bool) {
	if c == st.coop[i] {
		return
	}
	s := st.pop.Stakes[i]
	switch st.role[i] {
	case game.RoleLeader:
		if c {
			st.slCoopCount++
			st.effSL += s
			st.effSK -= s
		} else {
			st.slCoopCount--
			st.effSL -= s
			st.effSK += s
		}
	case game.RoleCommittee:
		if c {
			st.smCoop += s
			st.effSM += s
			st.effSK -= s
		} else {
			st.smCoop -= s
			st.effSM -= s
			st.effSK += s
		}
	}
	if st.inSync[i] {
		if c {
			st.syncCoop++
		} else {
			st.syncCoop--
		}
	}
	st.coop[i] = c
}

// playRound samples roles, evaluates the round, records stats and applies
// asynchronous best-response revisions to the role-conditional strategy
// table.
func playRound(cfg Config, pop *stake.Population, strat [][3]bool, inSync []bool, rng *rand.Rand) RoundStats {
	n := cfg.Nodes
	st := &roundState{
		cfg:    cfg,
		pop:    pop,
		role:   make([]game.Role, n),
		inSync: make([]bool, n),
		coop:   make([]bool, n),
	}
	for i := range st.role {
		st.role[i] = game.RoleOther
	}
	drawn := make(map[int]struct{}, cfg.LeadersPerRound+cfg.CommitteePerRound)
	draw := func(count int, r game.Role) {
		for picked := 0; picked < count; {
			i := pop.WeightedIndex(rng)
			if _, dup := drawn[i]; dup {
				continue
			}
			drawn[i] = struct{}{}
			st.role[i] = r
			picked++
		}
	}
	draw(cfg.LeadersPerRound, game.RoleLeader)
	draw(cfg.CommitteePerRound, game.RoleCommittee)

	minStake := func(cur, s float64) float64 {
		if cur == 0 || s < cur {
			return s
		}
		return cur
	}
	var nL, nLCoop, nM, nMCoop int
	for i := 0; i < n; i++ {
		s := pop.Stakes[i]
		st.online += s
		st.coop[i] = strat[i][roleIdx(st.role[i])]
		if inSync[i] {
			st.inSync[i] = true
			st.syncTotal++
			if st.coop[i] {
				st.syncCoop++
			}
		}
		switch st.role[i] {
		case game.RoleLeader:
			st.sl += s
			st.minL = minStake(st.minL, s)
			nL++
			if st.coop[i] {
				st.slCoopCount++
				st.effSL += s
				nLCoop++
			} else {
				st.effSK += s
			}
		case game.RoleCommittee:
			st.sm += s
			st.minM = minStake(st.minM, s)
			nM++
			if st.coop[i] {
				st.smCoop += s
				st.effSM += s
				nMCoop++
			} else {
				st.effSK += s
			}
		default:
			st.sk += s
			st.effSK += s
			if inSync[i] {
				st.minK = minStake(st.minK, s)
			}
		}
	}

	// Reward level and split.
	switch cfg.Scheme {
	case SchemeFoundation:
		st.b = cfg.FoundationReward
	case SchemeRoleBased:
		in := core.Inputs{
			SL: st.sl, SM: st.sm, SK: st.sk,
			MinLeader: st.minL, MinCommittee: st.minM, MinOther: st.minK,
			Costs: cfg.Costs,
		}
		if st.minK == 0 {
			in.MinOther = pop.Min()
			if in.MinOther <= 0 {
				in.MinOther = 1
			}
		}
		if params, err := core.Minimize(in); err == nil {
			st.b = params.B * (1 + cfg.SafetyMargin)
			st.alpha, st.beta = params.Alpha, params.Beta
		}
	}

	produced := st.produced()
	var coopSum, defSum float64
	var coopN, defN int
	for i := 0; i < n; i++ {
		u := st.payoffIf(i, st.coop[i])
		if st.coop[i] {
			coopSum += u
			coopN++
		} else {
			defSum += u
			defN++
		}
	}

	stats := RoundStats{
		CoopAll:       float64(coopN) / float64(n),
		BlockProduced: produced,
	}
	if produced {
		stats.RewardB = st.b
	}
	if nL > 0 {
		stats.CoopLeaders = float64(nLCoop) / float64(nL)
	}
	if nM > 0 {
		stats.CoopCommittee = float64(nMCoop) / float64(nM)
	}
	if st.syncTotal > 0 {
		stats.CoopSyncSet = float64(st.syncCoop) / float64(st.syncTotal)
	}
	if coopN > 0 {
		stats.MeanPayoffCoop = coopSum / float64(coopN)
	}
	if defN > 0 {
		stats.MeanPayoffDef = defSum / float64(defN)
	}

	// Asynchronous best-response revision: revisers act one at a time in
	// random order and see earlier revisions, which lets populations hover
	// at pivotality boundaries instead of overshooting them.
	for _, i := range rng.Perm(n) {
		if rng.Float64() >= cfg.RevisionRate {
			continue
		}
		var choice bool
		if rng.Float64() < cfg.Noise {
			choice = rng.Float64() < 0.5
		} else {
			uC := st.payoffIf(i, true)
			uD := st.payoffIf(i, false)
			choice = uC > uD
		}
		st.apply(i, choice)
		strat[i][roleIdx(st.role[i])] = choice
	}
	return stats
}
