package evolution

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(SchemeFoundation).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 5 },
		func(c *Config) { c.Dist = nil },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.InitialDefection = 1.5 },
		func(c *Config) { c.RevisionRate = 0 },
		func(c *Config) { c.Noise = -0.1 },
		func(c *Config) { c.LeadersPerRound = 0 },
		func(c *Config) { c.LeadersPerRound = c.Nodes },
		func(c *Config) { c.SyncSetFrac = 0 },
		func(c *Config) { c.SyncThreshold = 0 },
		func(c *Config) { c.QuorumFrac = 2 },
		func(c *Config) { c.SafetyMargin = -1 },
		func(c *Config) { c.Scheme = SchemeKind(9) },
		func(c *Config) { c.FoundationReward = 0 },
		func(c *Config) { c.Costs = game.RoleCosts{} },
	}
	for i, m := range mutations {
		cfg := DefaultConfig(SchemeFoundation)
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSchemeKindString(t *testing.T) {
	if SchemeFoundation.String() != "foundation" || SchemeRoleBased.String() != "role-based" ||
		SchemeKind(9).String() != "unknown" {
		t.Error("SchemeKind.String broken")
	}
}

func TestRunProducesTrajectory(t *testing.T) {
	cfg := DefaultConfig(SchemeRoleBased)
	cfg.Rounds = 20
	cfg.Nodes = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 20 {
		t.Fatalf("got %d rounds", len(res.Stats))
	}
	for _, s := range res.Stats {
		if s.CoopAll < 0 || s.CoopAll > 1 || s.StratLeaders < 0 || s.StratLeaders > 1 {
			t.Errorf("round %d fractions out of range: %+v", s.Round, s)
		}
		if s.BlockProduced && s.RewardB <= 0 {
			t.Errorf("round %d produced a block with zero reward", s.Round)
		}
		if !s.BlockProduced && s.RewardB != 0 {
			t.Errorf("round %d paid %v without a block", s.Round, s.RewardB)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(SchemeFoundation)
	cfg.Rounds = 15
	cfg.Nodes = 100
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Stats {
		if a.Stats[i] != b.Stats[i] {
			t.Fatalf("round %d differs across identical seeds", i)
		}
	}
}

// TestRoleBasedKeepsPaidRolesCooperative is the module's headline claim:
// while the chain is producing blocks, the role-based premiums keep the
// leader and committee dispositions fully cooperative, whereas the
// role-blind Foundation split lets them erode immediately.
func TestRoleBasedKeepsPaidRolesCooperative(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		roleCfg := DefaultConfig(SchemeRoleBased)
		roleCfg.Nodes = 200
		roleCfg.Seed = seed
		roleRes, err := Run(roleCfg)
		if err != nil {
			t.Fatal(err)
		}
		foundCfg := DefaultConfig(SchemeFoundation)
		foundCfg.Nodes = 200
		foundCfg.Seed = seed
		foundRes, err := Run(foundCfg)
		if err != nil {
			t.Fatal(err)
		}

		rl, rm := roleRes.PrefixStratCoop()
		fl, fm := foundRes.PrefixStratCoop()
		if rl < 0.99 || rm < 0.99 {
			t.Errorf("seed %d: role-based prefix dispositions (%.3f, %.3f), want ~1",
				seed, rl, rm)
		}
		if fm >= rm {
			t.Errorf("seed %d: foundation committee disposition %.3f did not erode below role-based %.3f",
				seed, fm, rm)
		}
		_ = fl // leaders erode more slowly; committee is the sharp signal
	}
}

// TestCommonsErodeUnderBothSchemes documents the shared fragility: the
// unpaid "others" dispositions decay to near-zero under both schemes, and
// the network eventually loses liveness through the synchrony set.
func TestCommonsErodeUnderBothSchemes(t *testing.T) {
	for _, scheme := range []SchemeKind{SchemeFoundation, SchemeRoleBased} {
		cfg := DefaultConfig(scheme)
		cfg.Nodes = 200
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := res.Stats[len(res.Stats)-1]
		if last.StratOthers > 0.3 {
			t.Errorf("%s: others disposition %v did not erode", scheme, last.StratOthers)
		}
		if res.SurvivalRounds() == len(res.Stats) {
			t.Errorf("%s: network never failed; expected eventual sync-set collapse", scheme)
		}
	}
}

func TestSurvivalAndPrefixHelpers(t *testing.T) {
	res := &Result{Stats: []RoundStats{
		{BlockProduced: true, StratLeaders: 1, StratCommittee: 0.5},
		{BlockProduced: true, StratLeaders: 0.8, StratCommittee: 0.7},
		{BlockProduced: false},
		{BlockProduced: true},
	}}
	if res.SurvivalRounds() != 2 {
		t.Errorf("SurvivalRounds = %d, want 2", res.SurvivalRounds())
	}
	l, m := res.PrefixStratCoop()
	if l != 0.9 || m != 0.6 {
		t.Errorf("PrefixStratCoop = (%v, %v)", l, m)
	}
	if res.BlockRate() != 0.75 {
		t.Errorf("BlockRate = %v", res.BlockRate())
	}
}

func TestSurvivalAllProduced(t *testing.T) {
	res := &Result{Stats: []RoundStats{{BlockProduced: true}, {BlockProduced: true}}}
	if res.SurvivalRounds() != 2 {
		t.Error("SurvivalRounds should equal len(Stats) when nothing failed")
	}
}

func TestRunWithParetoStakes(t *testing.T) {
	cfg := DefaultConfig(SchemeRoleBased)
	cfg.Dist = stake.Pareto{Xm: 5, Alpha: 1.5}
	cfg.Rounds = 10
	cfg.Nodes = 100
	if _, err := Run(cfg); err != nil {
		t.Fatalf("pareto stakes: %v", err)
	}
}

func TestFinalCoopAndRoleCoop(t *testing.T) {
	cfg := DefaultConfig(SchemeFoundation)
	cfg.Rounds = 40
	cfg.Nodes = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.FinalCoop(); c < 0 || c > 1 {
		t.Errorf("FinalCoop = %v", c)
	}
	l, m := res.FinalRoleCoop()
	if l < 0 || l > 1 || m < 0 || m > 1 {
		t.Errorf("FinalRoleCoop = (%v, %v)", l, m)
	}
}
