package experiments

import (
	"os"
	"testing"
)

func TestSmokeFig5(t *testing.T) {
	res, err := RunFig5(DefaultFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
}

func TestSmokeEquilibrium(t *testing.T) {
	cfg := DefaultEquilibriumConfig()
	cfg.Samples = 10
	res, err := RunEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
	if !res.AllHold() {
		t.Error("analytical claims violated")
	}
}

func TestSmokeFig6(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Nodes = 5000
	cfg.Runs = 4
	cfg.RoundsPerRun = 2
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
}

func TestSmokeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultFig3Config()
	cfg.Runs = 2
	cfg.Rounds = 10
	cfg.DefectionRates = []float64{0.05, 0.15, 0.30}
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
}
