package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
	"github.com/dsn2020-algorand/incentives/internal/txgen"
)

// Fig6Config parameterises the reward-distribution experiment of Fig. 6:
// the distribution of the per-round reward B_i computed by Algorithm 1
// over repeated simulations, for each stake distribution.
type Fig6Config struct {
	// Nodes is the population size (paper: 500k).
	Nodes int
	// Runs is the number of independent simulations (paper: 200).
	Runs int
	// RoundsPerRun is the number of rounds per simulation (paper: 10),
	// with the transaction workload applied between rounds.
	RoundsPerRun int
	// Distributions are the stake distributions to sweep.
	Distributions []stake.Distribution
	// Costs is the role cost model.
	Costs game.RoleCosts
	// Options tune Algorithm 1 (committee expectations, s* floors).
	Options core.Options
	// Workload is the inter-round transaction generator config.
	Workload txgen.Config
	// Seed drives all randomness.
	Seed int64
	// HistogramBins controls the rendered distribution resolution.
	HistogramBins int
	// Workers bounds the run pool's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sink optionally receives each distribution panel as one cell
	// whose rows are the individual per-round rewards B_i.
	Sink Sink
}

// fig6Columns is the sink schema: one reward observation per row.
var fig6Columns = []string{"reward_B"}

// PaperDistributions are the four Fig. 6 panels.
func PaperDistributions() []stake.Distribution {
	return []stake.Distribution{
		stake.Uniform{A: 1, B: 200},
		stake.Normal{Mu: 100, Sigma: 20},
		stake.Normal{Mu: 100, Sigma: 10},
		stake.Normal{Mu: 2000, Sigma: 25},
	}
}

// DefaultFig6Config is a laptop-scale configuration (50k nodes, 40 runs)
// that preserves the panels' ordering and approximate locations.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Nodes:         50_000,
		Runs:          40,
		RoundsPerRun:  5,
		Distributions: PaperDistributions(),
		Costs:         game.DefaultRoleCosts(),
		Workload:      txgen.DefaultConfig(),
		Seed:          1,
		HistogramBins: 20,
	}
}

// FullFig6Config uses the paper's 500k nodes and 200 runs of 10 rounds.
func FullFig6Config() Fig6Config {
	cfg := DefaultFig6Config()
	cfg.Nodes = 500_000
	cfg.Runs = 200
	cfg.RoundsPerRun = 10
	return cfg
}

// Fig6Panel is one stake distribution's result.
type Fig6Panel struct {
	Distribution string
	// Rewards are every per-round B_i computed across runs and rounds.
	Rewards []float64
	Summary stats.Summary
	// MeanAlpha/MeanBeta/MeanGamma are the average optimal shares.
	MeanAlpha, MeanBeta, MeanGamma float64
}

// Fig6Result bundles all panels.
type Fig6Result struct {
	Config Fig6Config
	Panels []Fig6Panel
}

// RunFig6 executes the experiment.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.Nodes < 100 || cfg.Runs < 1 || cfg.RoundsPerRun < 1 {
		return nil, errors.New("experiments: fig6 needs >=100 nodes and >=1 run/round")
	}
	if len(cfg.Distributions) == 0 {
		cfg.Distributions = PaperDistributions()
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	res := &Fig6Result{Config: cfg}
	for di, dist := range cfg.Distributions {
		panel, err := runFig6Panel(cfg, dist, int64(di))
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", dist.Name(), err)
		}
		if cfg.Sink != nil {
			cell := Cell{Index: di, Name: dist.Name(), Seed: cfg.Seed}
			if err := cfg.Sink.CellStart(cell, fig6Columns); err != nil {
				return nil, err
			}
			if err := emitSeriesRows(cfg.Sink, cell, panel.Rewards); err != nil {
				return nil, err
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return nil, err
			}
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// fig6Run is one simulation's per-round parameters.
type fig6Run struct {
	rewards          []float64
	sumA, sumB, sumG float64
}

func runFig6Panel(cfg Fig6Config, dist stake.Distribution, salt int64) (Fig6Panel, error) {
	runs, err := runpool.Sweep(cfg.Runs, cfg.Workers, func(run int) (fig6Run, error) {
		rng := sim.NewRNG(cfg.Seed+salt*104729+int64(run)*7919, "fig6")
		pop, err := stake.SamplePopulation(dist, cfg.Nodes, rng)
		if err != nil {
			return fig6Run{}, err
		}
		gen, err := txgen.New(cfg.Workload, rng)
		if err != nil {
			return fig6Run{}, err
		}
		controller := core.NewController(cfg.Costs, cfg.Options)
		out := fig6Run{rewards: make([]float64, 0, cfg.RoundsPerRun)}
		for round := 0; round < cfg.RoundsPerRun; round++ {
			p, err := controller.Step(pop)
			if err != nil {
				return fig6Run{}, err
			}
			out.rewards = append(out.rewards, p.B)
			out.sumA += p.Alpha
			out.sumB += p.Beta
			out.sumG += p.Gamma
			txgen.Apply(pop, gen.Round(pop))
		}
		return out, nil
	})
	if err != nil {
		return Fig6Panel{}, err
	}

	panel := runpool.Accumulate(runs, Fig6Panel{Distribution: dist.Name()}, func(p Fig6Panel, r fig6Run) Fig6Panel {
		p.Rewards = append(p.Rewards, r.rewards...)
		p.MeanAlpha += r.sumA
		p.MeanBeta += r.sumB
		p.MeanGamma += r.sumG
		return p
	})
	// Sweep aborts on any failed run, so every surviving run contributed
	// exactly RoundsPerRun parameter sets.
	count := float64(cfg.Runs * cfg.RoundsPerRun)
	panel.MeanAlpha /= count
	panel.MeanBeta /= count
	panel.MeanGamma /= count
	summary, err := stats.Summarize(panel.Rewards)
	if err != nil {
		return Fig6Panel{}, err
	}
	panel.Summary = summary
	return panel, nil
}

// Histogram renders one panel's reward distribution.
func (p Fig6Panel) Histogram(bins int) (*stats.Histogram, error) {
	lo, hi := p.Summary.Min, p.Summary.Max
	if lo == hi {
		hi = lo + 1
	}
	h, err := stats.NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.ObserveAll(p.Rewards)
	return h, nil
}

// Table renders per-panel reward summaries.
func (r *Fig6Result) Table() *stats.Table {
	t := &stats.Table{}
	means := make([]float64, len(r.Panels))
	medians := make([]float64, len(r.Panels))
	mins := make([]float64, len(r.Panels))
	maxs := make([]float64, len(r.Panels))
	for i, p := range r.Panels {
		means[i] = p.Summary.Mean
		medians[i] = p.Summary.Median
		mins[i] = p.Summary.Min
		maxs[i] = p.Summary.Max
	}
	t.AddColumn("panel", indexColumn(len(r.Panels)))
	t.AddColumn("mean_B", means)
	t.AddColumn("median_B", medians)
	t.AddColumn("min_B", mins)
	t.AddColumn("max_B", maxs)
	return t
}

func indexColumn(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// WriteSummary prints one line per distribution.
func (r *Fig6Result) WriteSummary(w io.Writer) error {
	for _, p := range r.Panels {
		_, err := fmt.Fprintf(w,
			"%-14s B_i: mean %8.3f  median %8.3f  [%8.3f, %8.3f]  (alpha %.2e, beta %.2e, gamma %.4f)\n",
			p.Distribution, p.Summary.Mean, p.Summary.Median,
			p.Summary.Min, p.Summary.Max, p.MeanAlpha, p.MeanBeta, p.MeanGamma)
		if err != nil {
			return err
		}
	}
	return nil
}
