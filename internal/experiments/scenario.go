package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// ScenarioConfig parameterises one adversary-scenario sweep: Runs
// independent simulations of the named scenario over an otherwise honest
// population, aggregated like the figure experiments.
type ScenarioConfig struct {
	// Scenario names a registered scenario (see internal/adversary
	// Builtin) to script over each run.
	Scenario string
	// Nodes is the network size per run.
	Nodes int
	// Rounds is the number of simulated rounds per run.
	Rounds int
	// Runs is the number of independent simulations aggregated.
	Runs int
	// Fanout is the gossip fan-out (paper: 5).
	Fanout int
	// TrimFrac is the trimmed-mean fraction for per-round aggregation.
	TrimFrac float64
	// Seed drives all randomness; run i derives its own seed from it.
	Seed int64
	// Params overrides the protocol constants.
	Params protocol.Params
	// StakeDist draws per-node stakes (paper: U{1..50}).
	StakeDist stake.Distribution
	// CommonConfig supplies Workers, WeightBackend, WeightProfile,
	// Sparse and Sink — the execution-shaping knobs shared by every
	// sweep config. Sparse combined with absolute committee taus in
	// Params scales a sweep to populations far beyond the paper's 100
	// nodes.
	CommonConfig
}

// DefaultScenarioConfig is a laptop-scale sweep of the named scenario.
func DefaultScenarioConfig(scenario string) ScenarioConfig {
	return ScenarioConfig{
		Scenario:  scenario,
		Nodes:     100,
		Rounds:    12,
		Runs:      4,
		Fanout:    5,
		TrimFrac:  0.20,
		Seed:      1,
		Params:    protocol.DefaultParams(),
		StakeDist: stake.UniformInt{A: 1, B: 50},
	}
}

// ScenarioResult aggregates a scenario sweep: per-round outcome
// fractions (trimmed means across runs) plus the merged safety/liveness
// audit.
type ScenarioResult struct {
	Config   ScenarioConfig
	Scenario adversary.Scenario
	// Final/Tentative/None are per-round outcome fractions.
	Final, Tentative, None []float64
	// Audit merges every run's audit report.
	Audit adversary.Report
	// RunAudits holds the per-run reports, run-indexed.
	RunAudits []adversary.Report
}

// scenarioRun is one simulation's contribution.
type scenarioRun struct {
	final, tentative, none []float64
	audit                  adversary.Report
}

// RunScenario executes the sweep through the deterministic run pool.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Nodes < 10 || cfg.Rounds < 1 || cfg.Runs < 1 {
		return nil, errors.New("experiments: scenario needs >=10 nodes, >=1 round, >=1 run")
	}
	if cfg.StakeDist == nil {
		cfg.StakeDist = stake.UniformInt{A: 1, B: 50}
	}
	scn, ok := adversary.Lookup(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", cfg.Scenario)
	}
	cfg.Sink = instrumentSink(cfg.Sink)

	// Aggregation rows come from one slab and each worker reuses a
	// protocol.Arena across its runs — output-neutral, see RunFig3.
	slab := runpool.NewFloatSlab(3*cfg.Runs, cfg.Rounds)
	runs, err := runpool.SweepWithState(cfg.Runs, cfg.Workers,
		func(int) *protocol.Arena { return protocol.NewArena() },
		func(run int, arena *protocol.Arena) (scenarioRun, error) {
			seed := cfg.Seed + int64(run)*7919
			rng := sim.NewRNG(seed, "scenario.setup")
			pop, err := stake.SamplePopulation(cfg.StakeDist, cfg.Nodes, rng)
			if err != nil {
				return scenarioRun{}, err
			}
			pcfg := protocol.Config{
				Params:        cfg.Params,
				Stakes:        pop.Stakes,
				Behaviors:     arena.BehaviorBuf(cfg.Nodes),
				Fanout:        cfg.Fanout,
				Seed:          seed,
				Arena:         arena,
				WeightBackend: cfg.WeightBackend,
				Sparse:        cfg.Sparse,
			}
			if run == 0 {
				pcfg.Trace = cfg.Trace // single-writer: first run only
			}
			if cfg.WeightProfile != nil {
				pcfg.Weights = cfg.WeightProfile(cfg.Nodes, seed)
			}
			runner, err := protocol.NewRunner(pcfg)
			if err != nil {
				return scenarioRun{}, err
			}
			eng, err := adversary.Attach(runner, scn)
			if err != nil {
				return scenarioRun{}, err
			}
			out := scenarioRun{
				final:     slab.Row(3 * run),
				tentative: slab.Row(3*run + 1),
				none:      slab.Row(3*run + 2),
			}
			for round, report := range runner.RunRounds(cfg.Rounds) {
				out.final[round] = report.FinalFrac()
				out.tentative[round] = report.TentativeFrac()
				out.none[round] = report.NoneFrac()
			}
			out.audit = eng.Audit().Report()
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	// Stream every run as one cell: its per-round rows plus its audit.
	if cfg.Sink != nil {
		for run, r := range runs {
			cell := Cell{Index: run, Name: cfg.Scenario, Seed: cfg.Seed + int64(run)*7919}
			if err := cfg.Sink.CellStart(cell, outcomeColumns); err != nil {
				return nil, err
			}
			if err := emitSeriesRows(cfg.Sink, cell, r.final, r.tentative, r.none); err != nil {
				return nil, err
			}
			if err := cfg.Sink.AuditEvent(cell, r.audit); err != nil {
				return nil, err
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return nil, err
			}
		}
	}

	result := &ScenarioResult{Config: cfg, Scenario: scn}
	pick := func(field func(scenarioRun) []float64) [][]float64 {
		rows := make([][]float64, len(runs))
		for i, r := range runs {
			rows[i] = field(r)
		}
		return rows
	}
	if result.Final, err = runpool.TrimmedMeanColumns(pick(func(r scenarioRun) []float64 { return r.final }), cfg.TrimFrac); err != nil {
		return nil, err
	}
	if result.Tentative, err = runpool.TrimmedMeanColumns(pick(func(r scenarioRun) []float64 { return r.tentative }), cfg.TrimFrac); err != nil {
		return nil, err
	}
	if result.None, err = runpool.TrimmedMeanColumns(pick(func(r scenarioRun) []float64 { return r.none }), cfg.TrimFrac); err != nil {
		return nil, err
	}
	result.RunAudits = make([]adversary.Report, len(runs))
	for i, r := range runs {
		result.RunAudits[i] = r.audit
		result.Audit.Merge(r.audit)
	}
	return result, nil
}

// Table renders the per-round outcome fractions.
func (r *ScenarioResult) Table() *stats.Table {
	t := &stats.Table{}
	roundCol := make([]float64, r.Config.Rounds)
	for i := range roundCol {
		roundCol[i] = float64(i + 1)
	}
	t.AddColumn("round", roundCol)
	t.AddColumn("final", r.Final)
	t.AddColumn("tentative", r.Tentative)
	t.AddColumn("none", r.None)
	return t
}

// AuditTable renders the merged audit counters as a one-row table, the
// machine-readable safety/liveness summary written next to the figures.
func (r *ScenarioResult) AuditTable() *stats.Table {
	t := &stats.Table{}
	a := r.Audit
	t.AddColumn("rounds", []float64{float64(a.Rounds)})
	t.AddColumn("decided", []float64{float64(a.Decided)})
	t.AddColumn("empty_decided", []float64{float64(a.EmptyDecided)})
	t.AddColumn("stalls", []float64{float64(a.Stalls)})
	t.AddColumn("max_stall_run", []float64{float64(a.MaxStallRun)})
	t.AddColumn("safety_violations", []float64{float64(a.SafetyViolations)})
	t.AddColumn("corruptions", []float64{float64(a.Corruptions)})
	t.AddColumn("mean_final", []float64{a.MeanFinalFrac})
	t.AddColumn("mean_none", []float64{a.MeanNoneFrac})
	t.AddColumn("mean_desynced", []float64{a.MeanDesynced})
	return t
}

// WriteSummary prints the scenario headline plus the merged audit.
func (r *ScenarioResult) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "scenario %s: %s\n", r.Scenario.Name, r.Scenario.Description); err != nil {
		return err
	}
	return r.Audit.WriteSummary(w)
}
