//go:build grid_materialize

package experiments

// gridMaterialize forces StreamScenarioGrid through the legacy
// collect-then-replay path: the differential oracle. Every sink event,
// file and summary byte must be identical to the streaming-fold
// default — the equivalence the grid oracle CI steps pin.
const gridMaterialize = true
