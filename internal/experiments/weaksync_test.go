package experiments

import (
	"os"
	"testing"
)

func TestWeakSyncValidation(t *testing.T) {
	cfg := DefaultWeakSyncConfig()
	cfg.Nodes = 5
	if _, err := RunWeakSync(cfg); err == nil {
		t.Error("tiny network accepted")
	}
	cfg = DefaultWeakSyncConfig()
	cfg.WindowFrom = 0
	if _, err := RunWeakSync(cfg); err == nil {
		t.Error("window at round 0 accepted")
	}
	cfg = DefaultWeakSyncConfig()
	cfg.WindowTo = uint64(cfg.Rounds) + 5
	if _, err := RunWeakSync(cfg); err == nil {
		t.Error("window past the run accepted")
	}
}

func TestWindowMeanFromZeroClamped(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// from == 0 used to index xs[-1] and panic; it must clamp to round 1.
	if got := windowMean(xs, 0, 2); got != 1.5 {
		t.Errorf("windowMean(from=0, to=2) = %v, want 1.5", got)
	}
	if got := windowMean(xs, 1, 2); got != 1.5 {
		t.Errorf("windowMean(from=1, to=2) = %v, want 1.5", got)
	}
	if got := windowMean(xs, 3, 0); got != 0 {
		t.Errorf("empty window = %v, want 0", got)
	}
}

func TestSpikeRatioWindowFromZero(t *testing.T) {
	// WindowFrom == 0 used to underflow WindowFrom-1 to MaxUint64; the
	// metrics must stay finite and panic-free on a hand-built result.
	res := &WeakSyncResult{
		Config: WeakSyncConfig{WindowFrom: 0, WindowTo: 2, Rounds: 4},
		Final:  []float64{0.9, 0.5, 0.5, 0.9},
	}
	if ratio := res.SpikeRatio(); ratio <= 0 {
		t.Errorf("SpikeRatio = %v, want positive", ratio)
	}
	_ = res.Recovered(0.9) // must not panic
}

func TestWeakSyncSpikeAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultWeakSyncConfig()
	cfg.Runs = 3
	res, err := RunWeakSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
	// The degraded window must visibly dent final consensus...
	if ratio := res.SpikeRatio(); ratio < 1.5 {
		t.Errorf("consensus-loss spike ratio %v, want >= 1.5", ratio)
	}
	// ...and the network must recover after it, the weak-synchrony
	// behaviour of the paper's Fig. 3-(c) rounds 17-18.
	if !res.Recovered(0.8) {
		t.Error("network did not recover after the degraded window")
	}
	if res.Table().Rows() != cfg.Rounds {
		t.Error("weaksync table rows mismatch")
	}
}

func TestCostsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	res, err := RunCosts(DefaultCostsConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
	// Selfish nodes pay exactly c_so = 5 µAlgos per round.
	wantSelfish := 5.0
	if got := res.SelfishPerRound / 1e-6; got < wantSelfish*0.99 || got > wantSelfish*1.01 {
		t.Errorf("selfish per-round cost %.3f µAlgos, want %.1f", got, wantSelfish)
	}
	// Honest nodes pay at least the fixed cost c^K = 6 µAlgos (they also
	// relay and vote), and strictly more than defectors.
	if res.HonestPerRound <= res.SelfishPerRound {
		t.Error("honest cost not above selfish cost")
	}
	if got := res.HonestPerRound / 1e-6; got < 6 {
		t.Errorf("honest per-round cost %.3f µAlgos below c^K", got)
	}
	if res.Table().Rows() != 1 {
		t.Error("costs table rows mismatch")
	}
}

func TestCostsValidation(t *testing.T) {
	cfg := DefaultCostsConfig()
	cfg.Nodes = 3
	if _, err := RunCosts(cfg); err == nil {
		t.Error("tiny network accepted")
	}
}

func TestMixedBehaviors(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultMixedConfig()
	cfg.Runs = 2
	cfg.Rounds = 8
	res, err := RunMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.WriteSummary(os.Stderr)
	baseline := res.Rows[0]
	if baseline.FinalFrac < 0.7 {
		t.Errorf("all-honest baseline final %v, want >= 0.7", baseline.FinalFrac)
	}
	// Every 10% perturbation hurts relative to the baseline.
	for _, row := range res.Rows[1:] {
		if row.FinalFrac > baseline.FinalFrac+0.02 {
			t.Errorf("mix %s finalised more than the honest baseline: %v > %v",
				row.Mix.Label(), row.FinalFrac, baseline.FinalFrac)
		}
	}
	if res.Table().Rows() != len(cfg.Mixes) {
		t.Error("mixed table rows mismatch")
	}
}

func TestMixedValidation(t *testing.T) {
	cfg := DefaultMixedConfig()
	cfg.Mixes = []BehaviorMix{{Selfish: 0.8, Malicious: 0.8}}
	if _, err := RunMixed(cfg); err == nil {
		t.Error("over-unity mix accepted")
	}
	cfg.Mixes = nil
	if _, err := RunMixed(cfg); err == nil {
		t.Error("empty mixes accepted")
	}
}
