// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver has a scaled-down default
// configuration suitable for tests and benchmarks plus a Full variant
// with the paper's parameters, and renders its results as stats tables.
package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Fig3Config parameterises the defection experiment of Fig. 3: the share
// of nodes extracting final / tentative / no blocks per round under
// increasing defection rates.
type Fig3Config struct {
	// Nodes is the network size per run.
	Nodes int
	// Rounds is the number of simulated rounds per run.
	Rounds int
	// Runs is the number of independent simulations averaged per rate.
	Runs int
	// DefectionRates are the fractions of selfish nodes to sweep
	// (paper: 5%..30% in steps of 5%).
	DefectionRates []float64
	// Fanout is the gossip fan-out (paper: 5).
	Fanout int
	// TrimFrac is the trimmed-mean fraction when averaging runs
	// (paper: 0.20).
	TrimFrac float64
	// Seed drives all randomness.
	Seed int64
	// Params overrides the protocol constants (zero value = defaults).
	Params protocol.Params
	// StakeDist draws per-node stakes (paper: U{1..50}).
	StakeDist stake.Distribution
	// Scenario optionally attaches a registered adversary scenario to
	// every run (see internal/adversary). The honest-baseline scenario
	// leaves the figure bit-for-bit identical to an unscripted run — the
	// golden tests pin that equivalence.
	Scenario string
	// CommonConfig supplies Workers, WeightBackend, WeightProfile,
	// Sparse and Sink — the execution-shaping knobs shared by every
	// sweep config. LargeFig3Config's absolute committee taus are what
	// make the zero-value SparseAuto engage the sparse round path.
	CommonConfig
}

// DefaultFig3Config is a laptop-scale configuration that preserves the
// figure's shape (collapse ordering across defection rates).
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Nodes:          100,
		Rounds:         30,
		Runs:           8,
		DefectionRates: []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Fanout:         5,
		TrimFrac:       0.20,
		Seed:           1,
		Params:         protocol.DefaultParams(),
		StakeDist:      stake.UniformInt{A: 1, B: 50},
	}
}

// FullFig3Config matches the paper's 100-run averaging.
func FullFig3Config() Fig3Config {
	cfg := DefaultFig3Config()
	cfg.Runs = 100
	cfg.Rounds = 50
	return cfg
}

// LargeFig3Config scales the defection experiment to populations far
// beyond the paper's (50k, 500k): absolute committee taus replace the
// fractional defaults — real Algorand committees are a few hundred seats
// regardless of network size — which makes the run sparse-eligible, and
// the run/round counts are trimmed so a 500k-node sweep completes on one
// machine. Fractions, not counts, are reported, so results remain
// directly comparable across population sizes.
func LargeFig3Config(nodes int) Fig3Config {
	cfg := DefaultFig3Config()
	cfg.Nodes = nodes
	cfg.Rounds = 20
	cfg.Runs = 3
	cfg.Params.TauStep = 200
	cfg.Params.TauFinal = 300
	return cfg
}

// Fig3Series is one panel of Fig. 3: per-round outcome fractions for a
// given defection rate, averaged over runs with a trimmed mean.
type Fig3Series struct {
	Rate      float64
	Final     []float64
	Tentative []float64
	None      []float64
}

// Fig3Result bundles all panels.
type Fig3Result struct {
	Config Fig3Config
	Series []Fig3Series
}

// RunFig3 executes the experiment.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.Nodes < 10 || cfg.Rounds < 1 || cfg.Runs < 1 {
		return nil, errors.New("experiments: fig3 needs >=10 nodes, >=1 round, >=1 run")
	}
	if cfg.StakeDist == nil {
		cfg.StakeDist = stake.UniformInt{A: 1, B: 50}
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	result := &Fig3Result{Config: cfg}
	for rateIdx, rate := range cfg.DefectionRates {
		series, err := runFig3Rate(cfg, rateIdx, rate)
		if err != nil {
			return nil, fmt.Errorf("fig3 rate %.0f%%: %w", rate*100, err)
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// fig3RunSeed derives one run's seed; the rate term keeps panels'
// random streams disjoint.
func fig3RunSeed(cfg Fig3Config, rate float64, run int) int64 {
	return cfg.Seed + int64(run)*7919 + int64(rate*1e4)
}

// fig3Run is one simulation's per-round outcome fractions.
type fig3Run struct {
	final, tentative, none []float64
}

func runFig3Rate(cfg Fig3Config, rateIdx int, rate float64) (Fig3Series, error) {
	// All per-run aggregation rows are carved from one slab (3 rows per
	// run), and each run-pool worker carries a protocol.Arena so Runner
	// construction is amortised across its runs; neither changes any
	// output bit (see the golden tests and the arena contract).
	slab := runpool.NewFloatSlab(3*cfg.Runs, cfg.Rounds)
	runs, err := runpool.SweepWithState(cfg.Runs, cfg.Workers,
		func(int) *protocol.Arena { return protocol.NewArena() },
		func(run int, arena *protocol.Arena) (fig3Run, error) {
			seed := fig3RunSeed(cfg, rate, run)
			rng := sim.NewRNG(seed, "fig3.setup")
			pop, err := stake.SamplePopulation(cfg.StakeDist, cfg.Nodes, rng)
			if err != nil {
				return fig3Run{}, err
			}
			behaviors := arena.BehaviorBuf(cfg.Nodes)
			// Random uniform choice of defectors, as in the paper.
			defectors := int(rate * float64(cfg.Nodes))
			for _, idx := range rng.Perm(cfg.Nodes)[:defectors] {
				behaviors[idx] = protocol.Selfish
			}
			pcfg := protocol.Config{
				Params:        cfg.Params,
				Stakes:        pop.Stakes,
				Behaviors:     behaviors,
				Fanout:        cfg.Fanout,
				Seed:          seed,
				Arena:         arena,
				WeightBackend: cfg.WeightBackend,
				Sparse:        cfg.Sparse,
			}
			if rateIdx == 0 && run == 0 {
				pcfg.Trace = cfg.Trace // single-writer: first run only
			}
			if cfg.WeightProfile != nil {
				pcfg.Weights = cfg.WeightProfile(cfg.Nodes, seed)
			}
			runner, err := protocol.NewRunner(pcfg)
			if err != nil {
				return fig3Run{}, err
			}
			if cfg.Scenario != "" {
				scn, ok := adversary.Lookup(cfg.Scenario)
				if !ok {
					return fig3Run{}, fmt.Errorf("unknown scenario %q", cfg.Scenario)
				}
				if _, err := adversary.Attach(runner, scn); err != nil {
					return fig3Run{}, err
				}
			}
			out := fig3Run{
				final:     slab.Row(3 * run),
				tentative: slab.Row(3*run + 1),
				none:      slab.Row(3*run + 2),
			}
			for round, report := range runner.RunRounds(cfg.Rounds) {
				out.final[round] = report.FinalFrac()
				out.tentative[round] = report.TentativeFrac()
				out.none[round] = report.NoneFrac()
			}
			return out, nil
		})
	if err != nil {
		return Fig3Series{}, err
	}

	// Stream every run of this panel as one cell — the per-run rows the
	// trimmed-mean aggregation below consumes but never exposes.
	if cfg.Sink != nil {
		name := fmt.Sprintf("d%02.0f", rate*100)
		for run, r := range runs {
			cell := Cell{Index: rateIdx*cfg.Runs + run, Name: name, Seed: fig3RunSeed(cfg, rate, run)}
			if err := cfg.Sink.CellStart(cell, outcomeColumns); err != nil {
				return Fig3Series{}, err
			}
			if err := emitSeriesRows(cfg.Sink, cell, r.final, r.tentative, r.none); err != nil {
				return Fig3Series{}, err
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return Fig3Series{}, err
			}
		}
	}

	pick := func(field func(fig3Run) []float64) [][]float64 {
		rows := make([][]float64, len(runs))
		for i, r := range runs {
			rows[i] = field(r)
		}
		return rows
	}
	series := Fig3Series{Rate: rate}
	if series.Final, err = runpool.TrimmedMeanColumns(pick(func(r fig3Run) []float64 { return r.final }), cfg.TrimFrac); err != nil {
		return Fig3Series{}, err
	}
	if series.Tentative, err = runpool.TrimmedMeanColumns(pick(func(r fig3Run) []float64 { return r.tentative }), cfg.TrimFrac); err != nil {
		return Fig3Series{}, err
	}
	if series.None, err = runpool.TrimmedMeanColumns(pick(func(r fig3Run) []float64 { return r.none }), cfg.TrimFrac); err != nil {
		return Fig3Series{}, err
	}
	return series, nil
}

// MeanFinal returns the average final-block fraction across all rounds of
// the series, the headline number used to compare panels.
func (s Fig3Series) MeanFinal() float64 {
	m, err := stats.Mean(s.Final)
	if err != nil {
		return 0
	}
	return m
}

// MeanNone returns the average no-block fraction across rounds.
func (s Fig3Series) MeanNone() float64 {
	m, err := stats.Mean(s.None)
	if err != nil {
		return 0
	}
	return m
}

// TailFinal returns the mean final fraction over the last quarter of the
// rounds, capturing late-simulation collapse.
func (s Fig3Series) TailFinal() float64 {
	start := len(s.Final) * 3 / 4
	m, err := stats.Mean(s.Final[start:])
	if err != nil {
		return 0
	}
	return m
}

// Table renders the per-round outcome fractions of every panel.
func (r *Fig3Result) Table() *stats.Table {
	t := &stats.Table{}
	roundCol := make([]float64, r.Config.Rounds)
	for i := range roundCol {
		roundCol[i] = float64(i + 1)
	}
	t.AddColumn("round", roundCol)
	for _, s := range r.Series {
		prefix := fmt.Sprintf("d%02.0f_", s.Rate*100)
		t.AddColumn(prefix+"final", s.Final)
		t.AddColumn(prefix+"tentative", s.Tentative)
		t.AddColumn(prefix+"none", s.None)
	}
	return t
}

// WriteSummary prints one line per panel with headline fractions.
func (r *Fig3Result) WriteSummary(w io.Writer) error {
	for _, s := range r.Series {
		_, err := fmt.Fprintf(w,
			"defection %4.0f%%: mean final %5.1f%%  tail final %5.1f%%  mean none %5.1f%%\n",
			s.Rate*100, 100*s.MeanFinal(), 100*s.TailFinal(), 100*s.MeanNone())
		if err != nil {
			return err
		}
	}
	return nil
}
