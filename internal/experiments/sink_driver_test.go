package experiments

import (
	"math"
	"reflect"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// countKinds tallies the recorded event stream by kind.
func countKinds(events []sinkEvent) map[string]int {
	out := map[string]int{}
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// TestDriverSinkEmission pins every driver's cell/row shape: each
// driver streams a grammar-valid event sequence (the recordingSink
// rejects violations) with the documented cell count and row schema.
func TestDriverSinkEmission(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}

	t.Run("fig3", func(t *testing.T) {
		cfg := DefaultFig3Config()
		cfg.Runs = 3
		cfg.Rounds = 8
		cfg.DefectionRates = []float64{0.05, 0.30}
		sink := newRecordingSink()
		cfg.Sink = sink
		if _, err := RunFig3(cfg); err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		wantCells := len(cfg.DefectionRates) * cfg.Runs
		if kinds["done"] != wantCells || kinds["row"] != wantCells*cfg.Rounds || kinds["audit"] != 0 {
			t.Fatalf("fig3 emitted %v, want %d cells x %d rows, no audits", kinds, wantCells, cfg.Rounds)
		}
		if got := sink.events[0].Cell.Name; got != "d05" {
			t.Fatalf("first fig3 cell named %q", got)
		}
	})

	t.Run("scenario", func(t *testing.T) {
		cfg := DefaultScenarioConfig("crash_churn")
		cfg.Nodes = 40
		cfg.Rounds = 6
		cfg.Runs = 3
		sink := newRecordingSink()
		cfg.Sink = sink
		res, err := RunScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		if kinds["done"] != cfg.Runs || kinds["row"] != cfg.Runs*cfg.Rounds || kinds["audit"] != cfg.Runs {
			t.Fatalf("scenario emitted %v, want %d cells x %d rows with audits", kinds, cfg.Runs, cfg.Rounds)
		}
		// Per-run audit events must match the materialized RunAudits.
		i := 0
		for _, ev := range sink.events {
			if ev.Kind == "audit" {
				if !reflect.DeepEqual(ev.Audit, res.RunAudits[i]) {
					t.Fatalf("run %d audit event differs from RunAudits", i)
				}
				i++
			}
		}
	})

	t.Run("weaksync", func(t *testing.T) {
		cfg := DefaultWeakSyncConfig()
		cfg.Runs = 2
		sink := newRecordingSink()
		cfg.Sink = sink
		if _, err := RunWeakSync(cfg); err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		if kinds["done"] != cfg.Runs || kinds["row"] != cfg.Runs*cfg.Rounds {
			t.Fatalf("weaksync emitted %v, want %d cells x %d rows", kinds, cfg.Runs, cfg.Rounds)
		}
	})

	t.Run("mixed", func(t *testing.T) {
		cfg := DefaultMixedConfig()
		cfg.Runs = 2
		cfg.Rounds = 6
		sink := newRecordingSink()
		cfg.Sink = sink
		res, err := RunMixed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		if kinds["done"] != len(cfg.Mixes) || kinds["row"] != len(cfg.Mixes) {
			t.Fatalf("mixed emitted %v, want one single-row cell per mix", kinds)
		}
		for _, ev := range sink.events {
			if ev.Kind == "row" && ev.Row[0] != res.Rows[ev.Cell.Index].FinalFrac {
				t.Fatalf("mix %d row disagrees with result", ev.Cell.Index)
			}
		}
	})

	t.Run("fig5", func(t *testing.T) {
		cfg := DefaultFig5Config()
		cfg.Steps = 6
		sink := newRecordingSink()
		cfg.Sink = sink
		res, err := RunFig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		if kinds["done"] != cfg.Steps || kinds["row"] != cfg.Steps*cfg.Steps {
			t.Fatalf("fig5 emitted %v, want %d cells x %d rows", kinds, cfg.Steps, cfg.Steps)
		}
		// Rows replay the surface in scan order.
		i := 0
		for _, ev := range sink.events {
			if ev.Kind != "row" {
				continue
			}
			pt := res.Surface[i]
			if ev.Row[0] != pt.Alpha || ev.Row[1] != pt.Beta ||
				(ev.Row[2] != pt.B && !(math.IsInf(ev.Row[2], 1) && math.IsInf(pt.B, 1))) {
				t.Fatalf("fig5 row %d = %v, surface point %+v", i, ev.Row, pt)
			}
			i++
		}
	})

	t.Run("fig6", func(t *testing.T) {
		cfg := DefaultFig6Config()
		cfg.Nodes = 2000
		cfg.Runs = 2
		cfg.RoundsPerRun = 3
		cfg.Distributions = []stake.Distribution{
			stake.Uniform{A: 1, B: 200},
			stake.Normal{Mu: 100, Sigma: 20},
		}
		sink := newRecordingSink()
		cfg.Sink = sink
		if _, err := RunFig6(cfg); err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		wantRows := len(cfg.Distributions) * cfg.Runs * cfg.RoundsPerRun
		if kinds["done"] != len(cfg.Distributions) || kinds["row"] != wantRows {
			t.Fatalf("fig6 emitted %v, want %d cells, %d rows", kinds, len(cfg.Distributions), wantRows)
		}
	})

	t.Run("fig7", func(t *testing.T) {
		cfg := DefaultFig7Config()
		cfg.Nodes = 2000
		cfg.Runs = 2
		cfg.Periods = 3
		cfg.Distributions = []stake.Distribution{stake.Uniform{A: 1, B: 200}}
		cfg.RemovalThresholds = []float64{0, 3}
		sink := newRecordingSink()
		cfg.Sink = sink
		if _, err := RunFig7(cfg); err != nil {
			t.Fatal(err)
		}
		kinds := countKinds(sink.events)
		wantCells := 1 + len(cfg.Distributions) + len(cfg.RemovalThresholds)
		if kinds["done"] != wantCells || kinds["row"] != wantCells*cfg.Periods {
			t.Fatalf("fig7 emitted %v, want %d cells x %d rows", kinds, wantCells, cfg.Periods)
		}
		if got := sink.events[0].Cell.Name; got != "foundation" {
			t.Fatalf("first fig7 cell named %q", got)
		}
	})
}
