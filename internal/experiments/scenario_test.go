package experiments

import (
	"os"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
)

// TestScenarioHonestBaselineMatchesFig3Golden is the acceptance pin for
// the adversary seams: attaching the honest-baseline scenario (hooks
// installed, zero injections) to the golden Fig. 3 configuration must
// reproduce the pre-adversary golden file bit-for-bit, at both run-pool
// widths. Any diff means the seams perturb hook-free behaviour.
func TestScenarioHonestBaselineMatchesFig3Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	want, err := os.ReadFile(goldenPath("fig3"))
	if err != nil {
		t.Fatalf("missing fig3 golden: %v", err)
	}
	for _, workers := range goldenWorkers {
		cfg := DefaultFig3Config()
		cfg.Runs = 3
		cfg.Rounds = 4
		cfg.DefectionRates = []float64{0.05, 0.15}
		cfg.Workers = workers
		cfg.Scenario = adversary.HonestBaseline
		res, err := RunFig3(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := marshalTable(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: honest-baseline scenario diverges from fig3 golden:\n%s",
				workers, diffHint("fig3+honest_baseline", want, got))
		}
	}
}

// TestScenarioDeterministicAcrossWorkers pins the acceptance criterion
// that the bundled eclipse+equivocation sweep is bit-identical at
// workers=1 and workers=8, tables and audits both.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	run := func(workers int) (string, adversary.Report) {
		cfg := DefaultScenarioConfig(adversary.EclipseEquivocation)
		cfg.Nodes = 60
		cfg.Rounds = 8
		cfg.Runs = 4
		cfg.Workers = workers
		res, err := RunScenario(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		table, err := marshalTable(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		audit, err := marshalTable(res.AuditTable())
		if err != nil {
			t.Fatal(err)
		}
		return string(table) + string(audit), res.Audit
	}
	out1, audit1 := run(1)
	out8, audit8 := run(8)
	if out1 != out8 {
		t.Fatal("eclipse_equivocation output differs between workers=1 and workers=8")
	}
	if audit1.Rounds != audit8.Rounds || audit1.Stalls != audit8.Stalls ||
		audit1.SafetyViolations != audit8.SafetyViolations {
		t.Fatalf("audit mismatch across workers: %+v vs %+v", audit1, audit8)
	}
}

// TestScenarioBuiltinsSmoke runs every registered scenario at a small
// configuration: each must complete, observe every round, and keep BA*
// safety (no conflicting honest finalisations).
func TestScenarioBuiltinsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	for _, name := range adversary.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultScenarioConfig(name)
			cfg.Nodes = 40
			cfg.Rounds = 6
			cfg.Runs = 2
			res, err := RunScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit.Rounds != cfg.Rounds*cfg.Runs {
				t.Fatalf("audit observed %d rounds, want %d", res.Audit.Rounds, cfg.Rounds*cfg.Runs)
			}
			if res.Audit.SafetyViolations != 0 {
				t.Fatalf("safety violated: %+v", res.Audit.Forks)
			}
		})
	}
}

// TestScenarioUnknownName fails fast instead of silently running an
// unscripted simulation.
func TestScenarioUnknownName(t *testing.T) {
	cfg := DefaultScenarioConfig("no_such_scenario")
	if _, err := RunScenario(cfg); err == nil {
		t.Fatal("unknown scenario did not error")
	}
	fig3 := DefaultFig3Config()
	fig3.Runs, fig3.Rounds = 1, 1
	fig3.DefectionRates = []float64{0.05}
	fig3.Scenario = "no_such_scenario"
	if _, err := RunFig3(fig3); err == nil {
		t.Fatal("unknown fig3 scenario did not error")
	}
}
