package experiments

import (
	"github.com/dsn2020-algorand/incentives/internal/adversary"
)

// The streaming result-sink contract. Drivers emit results as a
// sequence of cells — one independent unit of work such as a (scenario,
// seed) grid cell, one run of a sweep, or one figure panel — each
// carrying zero or more rows and at most one audit event:
//
//	CellStart (Row* AuditEvent? ) CellDone, cells in ascending Index order
//
// Emission order is deterministic: cells arrive in ascending Cell.Index
// order and rows in ascending Row.Index order at any worker count
// (runpool.SweepFold's contract), so a deterministic sink produces
// bit-identical output regardless of scheduling. Calls are never
// concurrent. Any sink error aborts the driver and is returned to the
// caller.

// Cell identifies one streamed unit of work.
type Cell struct {
	// Index is the cell's position on the driver's cell axis (grid
	// cells: scenario-major × seed; sweeps: the run index). Sharded
	// grids preserve the global index.
	Index int
	// Name labels the cell (scenario name, panel label, ...).
	Name string
	// Seed is the cell's base seed.
	Seed int64
	// Restored marks a cell replayed from a checkpoint: its audit event
	// is delivered so summaries cover the whole grid, but its rows are
	// not re-simulated (they were already sunk by the interrupted run).
	Restored bool
}

// Row is one streamed observation of a cell. Values is only valid for
// the duration of the call — sinks that retain it must copy.
type Row struct {
	// Index is the row's position within its cell (grid cells: the
	// zero-based round).
	Index int
	// Values holds one float64 per column, aligned with the columns
	// slice passed to CellStart.
	Values []float64
}

// Sink consumes a driver's result stream. Implementations need no
// locking: drivers serialize all calls.
type Sink interface {
	// CellStart opens a cell and declares its column schema. The
	// columns slice is shared — sinks must not mutate it.
	CellStart(cell Cell, columns []string) error
	// Row delivers one observation; see Row.Values for aliasing rules.
	Row(cell Cell, row Row) error
	// AuditEvent delivers the cell's safety/liveness report, after its
	// rows and before CellDone. Cells without an audit skip it.
	AuditEvent(cell Cell, report adversary.Report) error
	// CellDone closes the cell.
	CellDone(cell Cell) error
}

// multiSink fans one stream out to several sinks in order.
type multiSink []Sink

// MultiSink combines sinks into one that forwards every call to each,
// in argument order, stopping at the first error. Nil sinks are
// dropped; a single survivor is returned unwrapped.
func MultiSink(sinks ...Sink) Sink {
	var ms multiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	}
	return ms
}

func (ms multiSink) CellStart(cell Cell, columns []string) error {
	for _, s := range ms {
		if err := s.CellStart(cell, columns); err != nil {
			return err
		}
	}
	return nil
}

func (ms multiSink) Row(cell Cell, row Row) error {
	for _, s := range ms {
		if err := s.Row(cell, row); err != nil {
			return err
		}
	}
	return nil
}

func (ms multiSink) AuditEvent(cell Cell, report adversary.Report) error {
	for _, s := range ms {
		if err := s.AuditEvent(cell, report); err != nil {
			return err
		}
	}
	return nil
}

func (ms multiSink) CellDone(cell Cell) error {
	for _, s := range ms {
		if err := s.CellDone(cell); err != nil {
			return err
		}
	}
	return nil
}

// emitSeriesRows streams aligned per-column series as rows: row i holds
// series[0][i], series[1][i], ... All series must share length; one
// scratch buffer is reused across rows per the Row.Values contract.
func emitSeriesRows(sink Sink, cell Cell, series ...[]float64) error {
	if len(series) == 0 {
		return nil
	}
	buf := make([]float64, len(series))
	for i := 0; i < len(series[0]); i++ {
		for j, s := range series {
			buf[j] = s[i]
		}
		if err := sink.Row(cell, Row{Index: i, Values: buf}); err != nil {
			return err
		}
	}
	return nil
}

// outcomeColumns is the schema shared by every per-round outcome
// stream: the fraction of nodes finishing the round with a final block,
// a tentative block, or none.
var outcomeColumns = []string{"final", "tentative", "none"}
