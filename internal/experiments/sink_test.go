package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// sinkEvent is one recorded Sink call, row values copied out of the
// reused buffer.
type sinkEvent struct {
	Kind    string // "start", "row", "audit", "done"
	Cell    Cell
	Columns []string
	Row     []float64
	Audit   adversary.Report
}

// recordingSink captures the full event stream and enforces the Sink
// grammar: cells strictly ascending, rows/audits only inside an open
// cell, every opened cell closed.
type recordingSink struct {
	events []sinkEvent
	open   bool
	cur    int
	last   int
}

func newRecordingSink() *recordingSink { return &recordingSink{last: -1} }

func (s *recordingSink) CellStart(cell Cell, columns []string) error {
	if s.open {
		return fmt.Errorf("CellStart(%d) while cell %d open", cell.Index, s.cur)
	}
	if cell.Index <= s.last {
		return fmt.Errorf("CellStart(%d) after cell %d: not ascending", cell.Index, s.last)
	}
	s.open, s.cur, s.last = true, cell.Index, cell.Index
	s.events = append(s.events, sinkEvent{Kind: "start", Cell: cell, Columns: append([]string(nil), columns...)})
	return nil
}

func (s *recordingSink) Row(cell Cell, row Row) error {
	if !s.open || cell.Index != s.cur {
		return fmt.Errorf("Row for cell %d, open cell %d", cell.Index, s.cur)
	}
	s.events = append(s.events, sinkEvent{Kind: "row", Cell: cell, Row: append([]float64(nil), row.Values...)})
	return nil
}

func (s *recordingSink) AuditEvent(cell Cell, report adversary.Report) error {
	if !s.open || cell.Index != s.cur {
		return fmt.Errorf("AuditEvent for cell %d, open cell %d", cell.Index, s.cur)
	}
	s.events = append(s.events, sinkEvent{Kind: "audit", Cell: cell, Audit: report})
	return nil
}

func (s *recordingSink) CellDone(cell Cell) error {
	if !s.open || cell.Index != s.cur {
		return fmt.Errorf("CellDone for cell %d, open cell %d", cell.Index, s.cur)
	}
	s.open = false
	s.events = append(s.events, sinkEvent{Kind: "done", Cell: cell})
	return nil
}

// cellCount tallies distinct completed cells.
func (s *recordingSink) cellCount() int {
	n := 0
	for _, ev := range s.events {
		if ev.Kind == "done" {
			n++
		}
	}
	return n
}

func csvBytes(t *testing.T, table *stats.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamMatchesMaterialize is the tentpole's differential oracle in
// unit form: the streaming fold and the legacy materialize-then-replay
// execution must produce identical event streams at every worker count.
func TestStreamMatchesMaterialize(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	oracle := newRecordingSink()
	if err := MaterializeScenarioGrid(cfg, oracle, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		got := newRecordingSink()
		if err := StreamScenarioGrid(cfg, got, StreamOptions{}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.events, oracle.events) {
			t.Fatalf("workers=%d: streamed events differ from materialized oracle", workers)
		}
	}
}

// TestStreamShardsPartitionGrid pins the shard contract: any n-way
// split covers every cell exactly once, each cell's events are
// identical to the unsharded stream's, and reassembling shard streams
// in cell order reproduces the whole stream.
func TestStreamShardsPartitionGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	cfg.Workers = 2
	whole := newRecordingSink()
	if err := StreamScenarioGrid(cfg, whole, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 4} {
		var merged []sinkEvent
		for i := 0; i < n; i++ {
			part := newRecordingSink()
			err := StreamScenarioGrid(cfg, part, StreamOptions{Shard: ShardSpec{Index: i, Count: n}})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			merged = append(merged, part.events...)
		}
		// Each cell's events are contiguous; stable-sort blocks by index.
		sort.SliceStable(merged, func(a, b int) bool { return merged[a].Cell.Index < merged[b].Cell.Index })
		if !reflect.DeepEqual(merged, whole.events) {
			t.Fatalf("%d-way shard reassembly differs from unsharded stream", n)
		}
	}
}

// TestRunScenarioGridReplaysSink pins that the materializing entry
// point replays the identical event stream into cfg.Sink.
func TestRunScenarioGridReplaysSink(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	streamed := newRecordingSink()
	if err := StreamScenarioGrid(cfg, streamed, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	replayed := newRecordingSink()
	cfg.Sink = replayed
	res, err := RunScenarioGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.events, streamed.events) {
		t.Fatal("RunScenarioGrid sink replay differs from StreamScenarioGrid")
	}
	if len(res.Cells) != replayed.cellCount() {
		t.Fatalf("replayed %d cells, materialized %d", replayed.cellCount(), len(res.Cells))
	}
}

// TestStreamSummaryInvariance pins the satellite-3 byte-identity claim:
// the stream summary CSV is identical at any worker count and under
// shard splits whose partial summaries are merged.
func TestStreamSummaryInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	baselineSink := NewSummarySink(0)
	if err := StreamScenarioGrid(cfg, baselineSink, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	baselineTable, err := baselineSink.Table()
	if err != nil {
		t.Fatal(err)
	}
	baseline := csvBytes(t, baselineTable)

	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		sink := NewSummarySink(0)
		if err := StreamScenarioGrid(cfg, sink, StreamOptions{}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		table, err := sink.Table()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvBytes(t, table), baseline) {
			t.Fatalf("workers=%d stream summary differs", workers)
		}
	}

	cfg.Workers = 2
	for _, n := range []int{3, 4} {
		var all []*CellSummary
		for i := 0; i < n; i++ {
			sink := NewSummarySink(0)
			err := StreamScenarioGrid(cfg, sink, StreamOptions{Shard: ShardSpec{Index: i, Count: n}})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, n, err)
			}
			all = append(all, sink.CellSummaries()...)
		}
		table, err := StreamSummaryTable(all)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvBytes(t, table), baseline) {
			t.Fatalf("%d-way shard-merged stream summary differs", n)
		}
	}
}

// TestGridCSVSinkMatchesMaterializedTables pins the CSV sink against
// the materialized result's own table renderings, file by file, and
// the O(rounds) buffering bound.
func TestGridCSVSinkMatchesMaterializedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	dir := t.TempDir()
	sink := NewGridCSVSink(dir, cfg, "full_grid_summary.csv")
	if err := StreamScenarioGrid(cfg, sink, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := RunScenarioGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		base := fmt.Sprintf("full_%s_s%d", c.Scenario, c.Seed)
		got, err := os.ReadFile(filepath.Join(dir, base+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, csvBytes(t, c.Table())) {
			t.Fatalf("%s.csv differs from materialized table", base)
		}
		got, err = os.ReadFile(filepath.Join(dir, base+"_audit.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, csvBytes(t, c.AuditTable())) {
			t.Fatalf("%s_audit.csv differs from materialized table", base)
		}
	}
	got, err := os.ReadFile(filepath.Join(dir, "full_grid_summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, csvBytes(t, res.SummaryTable())) {
		t.Fatal("full_grid_summary.csv differs from materialized summary")
	}
	if sink.CellsSeen() != len(res.Cells) {
		t.Fatalf("sink saw %d cells, want %d", sink.CellsSeen(), len(res.Cells))
	}
	if sink.PeakBufferedRows() != cfg.Rounds {
		t.Fatalf("peak buffered rows %d, want %d (one cell)", sink.PeakBufferedRows(), cfg.Rounds)
	}
	if v := sink.SafetyViolations(); v != res.SafetyViolations() {
		t.Fatalf("sink safety violations %d, materialized %d", v, res.SafetyViolations())
	}
}

// streamWithCheckpoint runs the grid with the full -full sink stack
// (CSV + summary + checkpoint) restoring from any prior records, and
// returns the paths it wrote.
func streamWithCheckpoint(t *testing.T, cfg ScenarioGridConfig, dir string, prior []GridCellRecord) {
	t.Helper()
	fp := GridFingerprint(cfg, "")
	ckptPath := filepath.Join(dir, GridCheckpointName(ShardSpec{}))
	cw, err := CreateGridCheckpoint(ckptPath, fp, ShardSpec{}, prior)
	if err != nil {
		t.Fatal(err)
	}
	summary := NewSummarySink(0)
	summary.Restore(prior)
	csv := NewGridCSVSink(dir, cfg, "full_grid_summary.csv")
	restored := make(map[int]adversary.Report, len(prior))
	for _, rec := range prior {
		restored[rec.Index] = rec.Audit
	}
	sink := MultiSink(csv, summary, NewCheckpointSink(cw, 0))
	if err := StreamScenarioGrid(cfg, sink, StreamOptions{Restored: restored}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := csv.Close(); err != nil {
		t.Fatal(err)
	}
	table, err := summary.Table()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "full_grid_stream_summary.csv"), csvBytes(t, table), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointResumeByteIdentity simulates a kill after two cells —
// including a torn final checkpoint line — and pins that the resumed
// run's checkpoint, grid summary and stream summary are byte-identical
// to an uninterrupted run's.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	cfg.Workers = 2
	fp := GridFingerprint(cfg, "")

	cleanDir := t.TempDir()
	streamWithCheckpoint(t, cfg, cleanDir, nil)

	// Interrupted run: keep the header plus the first two records, then
	// a torn half-record, as if the process died mid-write.
	resumeDir := t.TempDir()
	cleanCkpt, err := os.ReadFile(filepath.Join(cleanDir, GridCheckpointName(ShardSpec{})))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(cleanCkpt, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("checkpoint has %d lines, want >=4", len(lines))
	}
	torn := append([]byte{}, bytes.Join(lines[:3], nil)...)
	torn = append(torn, lines[3][:len(lines[3])/2]...)
	resumeCkpt := filepath.Join(resumeDir, GridCheckpointName(ShardSpec{}))
	if err := os.WriteFile(resumeCkpt, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	prior, err := LoadGridCheckpoint(resumeCkpt, fp, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("loaded %d records from torn checkpoint, want 2", len(prior))
	}
	streamWithCheckpoint(t, cfg, resumeDir, prior)

	for _, name := range []string{GridCheckpointName(ShardSpec{}), "full_grid_summary.csv", "full_grid_stream_summary.csv"} {
		clean, err := os.ReadFile(filepath.Join(cleanDir, name))
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(filepath.Join(resumeDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(clean, resumed) {
			t.Fatalf("%s differs between uninterrupted and resumed runs", name)
		}
	}
}

// TestCheckpointHeaderValidation pins the loud failure modes: a foreign
// fingerprint, a wrong shard, and the silent fresh start on a missing
// file.
func TestCheckpointHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, GridCheckpointName(ShardSpec{}))
	cw, err := CreateGridCheckpoint(path, "fp-a", ShardSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Record(GridCellRecord{Index: 0, Scenario: "x", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, err := LoadGridCheckpoint(path, "fp-a", ShardSpec{}); err != nil || len(recs) != 1 {
		t.Fatalf("round trip: %v, %d records", err, len(recs))
	}
	if _, err := LoadGridCheckpoint(path, "fp-b", ShardSpec{}); err == nil {
		t.Fatal("foreign fingerprint accepted")
	}
	if _, err := LoadGridCheckpoint(path, "fp-a", ShardSpec{Index: 1, Count: 2}); err == nil {
		t.Fatal("wrong shard accepted")
	}
	recs, err := LoadGridCheckpoint(filepath.Join(dir, "absent.jsonl"), "fp-a", ShardSpec{})
	if err != nil || recs != nil {
		t.Fatalf("missing file: %v, %v (want nil, nil)", recs, err)
	}
}

// TestMergeGridCheckpoints runs a 3-way sharded grid with per-shard
// checkpoints, merges them, and pins the rebuilt grid summary against
// the unsharded run's — plus the refusal paths for incomplete and
// inconsistent shard sets.
func TestMergeGridCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	fp := GridFingerprint(cfg, "")
	wantCells := len(cfg.Scenarios) * len(cfg.Seeds)

	cleanDir := t.TempDir()
	streamWithCheckpoint(t, cfg, cleanDir, nil)
	wantSummary, err := os.ReadFile(filepath.Join(cleanDir, "full_grid_summary.csv"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const n = 3
	for i := 0; i < n; i++ {
		shard := ShardSpec{Index: i, Count: n}
		cw, err := CreateGridCheckpoint(filepath.Join(dir, GridCheckpointName(shard)), fp, shard, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := StreamScenarioGrid(cfg, NewCheckpointSink(cw, 0), StreamOptions{Shard: shard}); err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	records, err := MergeGridCheckpoints(dir, fp, wantCells)
	if err != nil {
		t.Fatal(err)
	}
	if got := csvBytes(t, GridSummaryFromRecords(cfg, records)); !bytes.Equal(got, wantSummary) {
		t.Fatal("merged shard summary differs from unsharded full_grid_summary.csv")
	}
	summaries := make([]*CellSummary, 0, len(records))
	for _, rec := range records {
		if rec.Summary == nil {
			t.Fatalf("cell %d record carries no summary", rec.Index)
		}
		summaries = append(summaries, rec.Summary)
	}
	mergedStream, err := StreamSummaryTable(summaries)
	if err != nil {
		t.Fatal(err)
	}
	wantStream, err := os.ReadFile(filepath.Join(cleanDir, "full_grid_stream_summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, mergedStream), wantStream) {
		t.Fatal("checkpoint-merged stream summary differs from unsharded run's")
	}

	if _, err := MergeGridCheckpoints(dir, fp, wantCells+1); err == nil {
		t.Fatal("incomplete cell coverage accepted")
	}
	if err := os.Remove(filepath.Join(dir, GridCheckpointName(ShardSpec{Index: 1, Count: n}))); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeGridCheckpoints(dir, fp, wantCells); err == nil {
		t.Fatal("missing shard checkpoint accepted")
	}
}

// TestShardSpecParsing covers the CLI surface of the shard axis.
func TestShardSpecParsing(t *testing.T) {
	if s, err := ParseShard(""); err != nil || s.String() != "0/1" {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	if s, err := ParseShard("2/5"); err != nil || !s.Owns(7) || s.Owns(8) {
		t.Fatalf("2/5: %v, %v", s, err)
	}
	for _, bad := range []string{"2", "a/b", "5/5", "-1/3", "0/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestMultiSinkFanout pins fan-out order and nil tolerance.
func TestMultiSinkFanout(t *testing.T) {
	a, b := newRecordingSink(), newRecordingSink()
	sink := MultiSink(nil, a, nil, b)
	cell := Cell{Index: 0, Name: "x", Seed: 1}
	if err := sink.CellStart(cell, []string{"v"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Row(cell, Row{Index: 0, Values: []float64{42}}); err != nil {
		t.Fatal(err)
	}
	if err := sink.CellDone(cell); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.events, b.events) || len(a.events) != 3 {
		t.Fatalf("fan-out mismatch: %d vs %d events", len(a.events), len(b.events))
	}
	if only := MultiSink(nil, a); only != Sink(a) {
		t.Fatal("single-sink MultiSink did not unwrap")
	}
}
