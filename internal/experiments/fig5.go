package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Fig5Config parameterises the numerical analysis of Sec. V-A: the
// minimum feasible reward B_i as a function of the shares (α, β), with
// s* = (1, 1, 10) and role costs (16, 12, 6, 5) µAlgos.
type Fig5Config struct {
	// Inputs are the Theorem 3 inputs; zero value uses the paper's
	// constants on a 50M-Algo network.
	Inputs core.Inputs
	// AlphaMax / BetaMax bound the scanned grid.
	AlphaMax, BetaMax float64
	// Steps is the grid resolution per axis.
	Steps int
	// Workers bounds the grid scan's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sink optionally receives each alpha row as one cell of
	// (alpha, beta, min_B) rows.
	Sink Sink
}

// fig5Columns is the sink schema: one row per scanned (alpha, beta).
var fig5Columns = []string{"alpha", "beta", "min_B"}

// PaperFig5Inputs returns the Sec. V-A constants: SL and SM from the
// sortition expectations (26 and 13000), a 50M-Algo network, minimum
// stakes s*_l = s*_m = 1 and s*_k = 10, and the paper's µAlgo cost
// vector.
func PaperFig5Inputs() core.Inputs {
	const totalStake = 50e6
	committee := core.DefaultCommittee()
	sl := committee.ExpectedSL()
	sm := committee.ExpectedSM()
	return core.Inputs{
		SL:           sl,
		SM:           sm,
		SK:           totalStake - sl - sm,
		MinLeader:    1,
		MinCommittee: 1,
		MinOther:     10,
		Costs:        game.DefaultRoleCosts(),
	}
}

// DefaultFig5Config scans (α, β) in (0, 0.3]² at 1% resolution.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Inputs:   PaperFig5Inputs(),
		AlphaMax: 0.30,
		BetaMax:  0.30,
		Steps:    30,
	}
}

// Fig5Point is one grid cell of the surface.
type Fig5Point struct {
	Alpha, Beta float64
	B           float64 // +Inf when infeasible
}

// Fig5Result is the full surface plus the analytic optimum.
type Fig5Result struct {
	Config  Fig5Config
	Surface []Fig5Point
	// GridBest is the feasible grid minimum (the paper's reported
	// (0.02, 0.03) → ≈5.2 Algos).
	GridBest Fig5Point
	// Optimal is the closed-form Algorithm 1 optimum.
	Optimal core.Params
}

// RunFig5 evaluates the surface and both optimisers.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Steps < 2 {
		return nil, errors.New("experiments: fig5 needs at least 2 grid steps")
	}
	if err := cfg.Inputs.Validate(); err != nil {
		return nil, fmt.Errorf("fig5 inputs: %w", err)
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	res := &Fig5Result{Config: cfg, GridBest: Fig5Point{B: math.Inf(1)}}
	// One pool task per alpha row; rows are appended and the minimum is
	// folded in row order, so the scan is worker-count independent.
	rows, err := runpool.Sweep(cfg.Steps, cfg.Workers, func(i int) ([]Fig5Point, error) {
		alpha := cfg.AlphaMax * float64(i+1) / float64(cfg.Steps)
		row := make([]Fig5Point, cfg.Steps)
		for j := 1; j <= cfg.Steps; j++ {
			beta := cfg.BetaMax * float64(j) / float64(cfg.Steps)
			row[j-1] = Fig5Point{Alpha: alpha, Beta: beta, B: core.BoundB(cfg.Inputs, alpha, beta)}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if cfg.Sink != nil {
			cell := Cell{Index: i, Name: fmt.Sprintf("alpha_row_%02d", i+1)}
			if err := cfg.Sink.CellStart(cell, fig5Columns); err != nil {
				return nil, err
			}
			buf := make([]float64, 3)
			for j, pt := range row {
				buf[0], buf[1], buf[2] = pt.Alpha, pt.Beta, pt.B
				if err := cfg.Sink.Row(cell, Row{Index: j, Values: buf}); err != nil {
					return nil, err
				}
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return nil, err
			}
		}
		res.Surface = append(res.Surface, row...)
		for _, pt := range row {
			if pt.B < res.GridBest.B {
				res.GridBest = pt
			}
		}
	}
	opt, err := core.Minimize(cfg.Inputs)
	if err != nil {
		return nil, fmt.Errorf("fig5 optimum: %w", err)
	}
	res.Optimal = opt
	return res, nil
}

// Table renders the surface as (alpha, beta, B) triples.
func (r *Fig5Result) Table() *stats.Table {
	alphas := make([]float64, len(r.Surface))
	betas := make([]float64, len(r.Surface))
	bs := make([]float64, len(r.Surface))
	for i, p := range r.Surface {
		alphas[i] = p.Alpha
		betas[i] = p.Beta
		bs[i] = p.B
	}
	t := &stats.Table{}
	t.AddColumn("alpha", alphas)
	t.AddColumn("beta", betas)
	t.AddColumn("min_B", bs)
	return t
}

// WriteSummary prints the grid and analytic optima.
func (r *Fig5Result) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"grid optimum:     B=%.4f Algos at (alpha, beta)=(%.3f, %.3f)\n"+
			"analytic optimum: B=%.4f Algos at (alpha, beta)=(%.5f, %.5f), binding=%s\n",
		r.GridBest.B, r.GridBest.Alpha, r.GridBest.Beta,
		r.Optimal.MinB, r.Optimal.Alpha, r.Optimal.Beta, r.Optimal.Binding)
	return err
}
