package experiments

import (
	"reflect"
	"testing"
)

// The run-pool contract: for the same seed, every worker count must
// produce byte-identical results. Series are compared (not whole results)
// because the Workers knob itself lives in the embedded Config.

func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultFig3Config()
	cfg.Runs = 3
	cfg.Rounds = 4
	cfg.DefectionRates = []float64{0.15}

	cfg.Workers = 1
	serial, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Errorf("fig3 workers=1 vs workers=8 diverged:\n%+v\nvs\n%+v", serial.Series, parallel.Series)
	}
}

func TestWeakSyncDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultWeakSyncConfig()
	cfg.Runs = 3
	cfg.Rounds = 8
	cfg.WindowFrom, cfg.WindowTo = 4, 5

	cfg.Workers = 1
	serial, err := RunWeakSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunWeakSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Final, parallel.Final) ||
		!reflect.DeepEqual(serial.Tentative, parallel.Tentative) ||
		!reflect.DeepEqual(serial.None, parallel.None) {
		t.Error("weaksync workers=1 vs workers=8 diverged")
	}
}

func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Nodes = 2_000
	cfg.Runs = 4
	cfg.RoundsPerRun = 2

	cfg.Workers = 1
	serial, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Panels, parallel.Panels) {
		t.Error("fig6 workers=1 vs workers=8 diverged")
	}
}

func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Workers = 1
	serial, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Surface, parallel.Surface) {
		t.Error("fig5 surface diverged across worker counts")
	}
	if serial.GridBest != parallel.GridBest {
		t.Errorf("fig5 grid best diverged: %+v vs %+v", serial.GridBest, parallel.GridBest)
	}
}

func TestEquilibriumDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultEquilibriumConfig()
	cfg.Samples = 12

	cfg.Workers = 1
	serial, err := RunEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Theorem1 != parallel.Theorem1 || serial.Theorem2 != parallel.Theorem2 ||
		serial.Lemma1 != parallel.Lemma1 || serial.Theorem3 != parallel.Theorem3 ||
		serial.Tightness != parallel.Tightness ||
		!reflect.DeepEqual(serial.Failures, parallel.Failures) {
		t.Error("equilibrium audit diverged across worker counts")
	}
}

func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.Nodes = 2_000
	cfg.Runs = 4

	cfg.Workers = 1
	serial, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Ours, parallel.Ours) || !reflect.DeepEqual(serial.Removal, parallel.Removal) {
		t.Error("fig7 trajectories diverged across worker counts")
	}
}

func TestMixedDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultMixedConfig()
	cfg.Runs = 3
	cfg.Rounds = 3
	cfg.Mixes = []BehaviorMix{{Selfish: 0.10}}

	cfg.Workers = 1
	serial, err := RunMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Error("mixed sweep diverged across worker counts")
	}
}
