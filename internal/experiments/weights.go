package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// WeightProfile builds a per-run synthetic weight oracle for n nodes
// from the run's seed; nil keeps weights ledger-backed. Profiles are
// pure functions of (n, seed), so a sweep stays bit-identical across
// worker counts — each run constructs its own oracle from its own seed.
type WeightProfile func(n int, seed int64) weight.Oracle

// ZipfProfile returns the heavy-tail profile: rank-r stake proportional
// to r^-exponent, normalized so the mean stake is meanStake (matching
// the U{1..50} baseline scale when meanStake is 25.5), with an optional
// churn schedule replayed identically in every run.
func ZipfProfile(exponent, meanStake float64, churn ...weight.ChurnStep) WeightProfile {
	return func(n int, seed int64) weight.Oracle {
		return weight.NewZipf(n, exponent, meanStake*float64(n), seed).WithChurn(churn)
	}
}

// ParseWeightProfile resolves a CLI profile spec: "" selects ledger
// weights (nil profile), "zipf:<exponent>" the Zipf profile at the
// baseline mean stake, and "zipf:<exponent>:<meanStake>" overrides the
// scale. An optional ";churn@<round>:<frac>:<scale>[,...]" suffix
// appends a churn schedule, e.g. "zipf:1.1;churn@10:0.2:0,20:0.1:3".
func ParseWeightProfile(spec string) (WeightProfile, error) {
	if spec == "" {
		return nil, nil
	}
	base := spec
	var churn []weight.ChurnStep
	if i := strings.IndexByte(spec, ';'); i >= 0 {
		base = spec[:i]
		var err error
		churn, err = parseChurn(spec[i+1:])
		if err != nil {
			return nil, err
		}
	}
	parts := strings.Split(base, ":")
	if parts[0] != "zipf" || len(parts) > 3 {
		return nil, fmt.Errorf("experiments: unknown weight profile %q (want zipf:<exponent>[:<meanStake>])", spec)
	}
	exponent := 1.1
	meanStake := 25.5
	var err error
	if len(parts) > 1 && parts[1] != "" {
		if exponent, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return nil, fmt.Errorf("experiments: weight profile %q: bad exponent: %w", spec, err)
		}
	}
	if len(parts) > 2 {
		if meanStake, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return nil, fmt.Errorf("experiments: weight profile %q: bad mean stake: %w", spec, err)
		}
	}
	return ZipfProfile(exponent, meanStake, churn...), nil
}

// parseChurn decodes "churn@<round>:<frac>:<scale>[,<round>:<frac>:<scale>...]".
func parseChurn(spec string) ([]weight.ChurnStep, error) {
	body, ok := strings.CutPrefix(spec, "churn@")
	if !ok {
		return nil, fmt.Errorf("experiments: bad churn spec %q (want churn@<round>:<frac>:<scale>,...)", spec)
	}
	var steps []weight.ChurnStep
	for _, item := range strings.Split(body, ",") {
		f := strings.Split(item, ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("experiments: bad churn step %q (want <round>:<frac>:<scale>)", item)
		}
		round, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn step %q: bad round: %w", item, err)
		}
		frac, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn step %q: bad fraction: %w", item, err)
		}
		scale, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn step %q: bad scale: %w", item, err)
		}
		steps = append(steps, weight.ChurnStep{Round: round, Frac: frac, Scale: scale})
	}
	return steps, nil
}

// ParseWeightBackend resolves a CLI backend name to the ledger-backed
// oracle selection: "" or "direct" is ledger-direct, "indexed" the
// incremental stake index.
func ParseWeightBackend(name string) (weight.Backend, error) {
	switch name {
	case "", "direct", "ledger-direct":
		return weight.BackendLedgerDirect, nil
	case "indexed":
		return weight.BackendIndexed, nil
	default:
		return 0, fmt.Errorf("experiments: unknown weight backend %q (want direct or indexed)", name)
	}
}
