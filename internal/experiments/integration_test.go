package experiments

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// TestFullPipeline wires every subsystem together the way a deployment
// would: the BA* simulator produces blocks and fees; the funding source
// drips the Table III schedule into the Foundation pool and pays each
// round's B_i; Algorithm 1 recomputes B_i from the live ledger stakes;
// the role-based scheme disburses to the realised roles; and the credits
// land back on the ledger.
func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	const nodes = 60
	rng := sim.NewRNG(77, "integration")
	pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, nodes, rng)
	if err != nil {
		t.Fatal(err)
	}
	behaviors := make([]protocol.Behavior, nodes)
	for i := range behaviors {
		behaviors[i] = protocol.Honest
	}
	behaviors[7] = protocol.Selfish

	costs := game.DefaultRoleCosts()
	source := rewards.NewSource()
	committee := core.CommitteeConfig{TauProposer: 5, SStep: 50, Steps: 3, SFinal: 100}

	var runner *protocol.Runner
	var disbursed, funded float64
	var rewardRounds int
	runner, err = protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    pop.Stakes,
		Behaviors: behaviors,
		Seed:      77,
		Reward: func(roles protocol.RoundRoles, report protocol.RoundReport) {
			if !report.Decided {
				return
			}
			live := &stake.Population{Stakes: runner.Canonical().Stakes()}
			params, err := core.ComputeParameters(live, costs, core.Options{Committee: committee})
			if err != nil {
				t.Errorf("round %d: compute: %v", report.Round, err)
				return
			}
			pool, err := source.Withdraw(report.Round, params.B)
			if err != nil {
				t.Errorf("round %d: withdraw: %v", report.Round, err)
				return
			}
			if pool != "foundation" {
				t.Errorf("round %d funded from %q", report.Round, pool)
			}
			scheme := rewards.RoleBased{Alpha: params.Alpha, Beta: params.Beta}
			shares, err := scheme.Distribute(params.B, roles)
			if err != nil {
				t.Errorf("round %d: distribute: %v", report.Round, err)
				return
			}
			for _, s := range shares {
				if err := runner.Canonical().Credit(s.ID, s.Amount); err != nil {
					t.Errorf("credit %d: %v", s.ID, err)
				}
			}
			disbursed += rewards.TotalOf(shares)
			funded += params.B
			rewardRounds++
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Workload with fees.
	for i := 0; i < 20; i++ {
		runner.SubmitTransactionFee(rng.Intn(nodes), rng.Intn(nodes), 0.5, 0.05)
	}
	before := runner.Canonical().TotalStake()
	runner.RunRounds(6)

	if rewardRounds == 0 {
		t.Fatal("no rounds were rewarded")
	}
	// Value conservation: ledger total = genesis − fees + disbursed.
	fees := runner.FeesCollected()
	after := runner.Canonical().TotalStake()
	if math.Abs(after-(before-fees+disbursed)) > 1e-6 {
		t.Errorf("ledger total %v, want %v (genesis %v − fees %v + rewards %v)",
			after, before-fees+disbursed, before, fees, disbursed)
	}
	// Disbursement matched the funding exactly.
	if math.Abs(disbursed-funded) > 1e-9 {
		t.Errorf("disbursed %v != funded %v", disbursed, funded)
	}
	// Fees can be deposited to the fee pool for the future phase.
	if err := source.DepositFees(fees); err != nil {
		t.Fatal(err)
	}
	if source.FeeBalance() != fees {
		t.Errorf("fee pool balance %v, want %v", source.FeeBalance(), fees)
	}
	// Chain integrity end to end.
	if err := runner.Canonical().VerifyChain(); err != nil {
		t.Error(err)
	}
}
