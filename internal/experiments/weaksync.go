package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// WeakSyncConfig parameterises the asynchrony-recovery experiment: a
// deterministic weak-synchrony window is injected mid-simulation to
// reproduce the tentative-block spike and subsequent recovery the paper
// highlights in Fig. 3-(c) ("in round #17 the asynchrony of network has
// caused an increase in the number of nodes that have extracted tentative
// blocks ... in round #18 network becomes synchronous again").
type WeakSyncConfig struct {
	Nodes      int
	Rounds     int
	Runs       int
	Defection  float64
	WindowFrom uint64
	WindowTo   uint64
	Seed       int64
	Params     protocol.Params
	// Workers bounds the run pool's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sink optionally receives each run as one cell of per-round
	// outcome rows.
	Sink Sink
}

// DefaultWeakSyncConfig injects a 3-round window in the middle of a
// 24-round run at 10% defection.
func DefaultWeakSyncConfig() WeakSyncConfig {
	params := protocol.DefaultParams()
	params.AsyncProb = 0 // only the deterministic window degrades
	return WeakSyncConfig{
		Nodes:      100,
		Rounds:     24,
		Runs:       6,
		Defection:  0.10,
		WindowFrom: 9,
		WindowTo:   11,
		Seed:       1,
		Params:     params,
	}
}

// WeakSyncResult carries the averaged outcome series and the derived
// spike/recovery metrics.
type WeakSyncResult struct {
	Config    WeakSyncConfig
	Final     []float64
	Tentative []float64
	None      []float64
}

// RunWeakSync executes the experiment.
func RunWeakSync(cfg WeakSyncConfig) (*WeakSyncResult, error) {
	if cfg.Nodes < 10 || cfg.Rounds < 4 || cfg.Runs < 1 {
		return nil, errors.New("experiments: weaksync needs >=10 nodes, >=4 rounds, >=1 run")
	}
	if cfg.WindowFrom < 2 || cfg.WindowTo >= uint64(cfg.Rounds) || cfg.WindowFrom > cfg.WindowTo {
		return nil, errors.New("experiments: window must sit strictly inside the run")
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	type weakSyncRun struct {
		final, tentative, none []float64
	}
	runs, err := runpool.Sweep(cfg.Runs, cfg.Workers, func(run int) (weakSyncRun, error) {
		seed := cfg.Seed + int64(run)*7919
		rng := sim.NewRNG(seed, "weaksync.setup")
		pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, cfg.Nodes, rng)
		if err != nil {
			return weakSyncRun{}, err
		}
		behaviors := make([]protocol.Behavior, cfg.Nodes)
		for i := range behaviors {
			behaviors[i] = protocol.Honest
		}
		for _, idx := range rng.Perm(cfg.Nodes)[:int(cfg.Defection*float64(cfg.Nodes))] {
			behaviors[idx] = protocol.Selfish
		}
		runner, err := protocol.NewRunner(protocol.Config{
			Params:    cfg.Params,
			Stakes:    pop.Stakes,
			Behaviors: behaviors,
			Seed:      seed,
		})
		if err != nil {
			return weakSyncRun{}, err
		}
		runner.SetDegradedWindow(cfg.WindowFrom, cfg.WindowTo)
		out := weakSyncRun{
			final:     make([]float64, cfg.Rounds),
			tentative: make([]float64, cfg.Rounds),
			none:      make([]float64, cfg.Rounds),
		}
		for round, report := range runner.RunRounds(cfg.Rounds) {
			out.final[round] = report.FinalFrac()
			out.tentative[round] = report.TentativeFrac()
			out.none[round] = report.NoneFrac()
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Stream every run as one cell before averaging.
	if cfg.Sink != nil {
		for run, r := range runs {
			cell := Cell{Index: run, Name: "weaksync", Seed: cfg.Seed + int64(run)*7919}
			if err := cfg.Sink.CellStart(cell, outcomeColumns); err != nil {
				return nil, err
			}
			if err := emitSeriesRows(cfg.Sink, cell, r.final, r.tentative, r.none); err != nil {
				return nil, err
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return nil, err
			}
		}
	}

	res := &WeakSyncResult{Config: cfg}
	pick := func(field func(weakSyncRun) []float64) [][]float64 {
		rows := make([][]float64, len(runs))
		for i, r := range runs {
			rows[i] = field(r)
		}
		return rows
	}
	if res.Final, err = runpool.MeanColumns(pick(func(r weakSyncRun) []float64 { return r.final })); err != nil {
		return nil, err
	}
	if res.Tentative, err = runpool.MeanColumns(pick(func(r weakSyncRun) []float64 { return r.tentative })); err != nil {
		return nil, err
	}
	if res.None, err = runpool.MeanColumns(pick(func(r weakSyncRun) []float64 { return r.none })); err != nil {
		return nil, err
	}
	return res, nil
}

// windowMean averages xs over [from, to] (1-based round indices). A from
// of 0 is clamped to round 1: r-1 would otherwise index xs at -1 and
// panic (or, upstream, WindowFrom-1 would wrap around to MaxUint64).
func windowMean(xs []float64, from, to uint64) float64 {
	if from == 0 {
		from = 1
	}
	sum, n := 0.0, 0.0
	for r := from; r <= to && int(r) <= len(xs); r++ {
		sum += xs[r-1]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// preWindow is the last healthy round before the degraded window, 0 when
// the window starts at round 0 (guarding the uint64 underflow of
// WindowFrom-1).
func (r *WeakSyncResult) preWindow() uint64 {
	if r.Config.WindowFrom == 0 {
		return 0
	}
	return r.Config.WindowFrom - 1
}

// SpikeRatio compares the non-final fraction (tentative + none) inside
// the degraded window against the healthy rounds before it.
func (r *WeakSyncResult) SpikeRatio() float64 {
	before := windowMean(r.Final, 1, r.preWindow())
	during := windowMean(r.Final, r.Config.WindowFrom, r.Config.WindowTo)
	lossBefore := 1 - before
	lossDuring := 1 - during
	if lossBefore <= 0 {
		lossBefore = 1e-9
	}
	return lossDuring / lossBefore
}

// Recovered reports whether the post-window final fraction returns to at
// least frac of the pre-window level.
func (r *WeakSyncResult) Recovered(frac float64) bool {
	before := windowMean(r.Final, 1, r.preWindow())
	// Allow a couple of catch-up rounds after the window closes.
	after := windowMean(r.Final, r.Config.WindowTo+3, uint64(r.Config.Rounds))
	return after >= frac*before
}

// Table renders the series.
func (r *WeakSyncResult) Table() *stats.Table {
	t := &stats.Table{}
	t.AddColumn("round", indexColumn(r.Config.Rounds))
	t.AddColumn("final", r.Final)
	t.AddColumn("tentative", r.Tentative)
	t.AddColumn("none", r.None)
	return t
}

// WriteSummary prints the spike and recovery metrics.
func (r *WeakSyncResult) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"degraded window rounds %d-%d: consensus-loss spike x%.1f, recovered=%v\n",
		r.Config.WindowFrom, r.Config.WindowTo, r.SpikeRatio(), r.Recovered(0.9))
	return err
}
