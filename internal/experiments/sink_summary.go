package experiments

import (
	"fmt"
	"sort"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// CellSummary is one cell's mergeable contribution to the streaming
// grid summary: per-column moment accumulators and quantile sketches
// over the cell's rows. It is a pure, deterministic function of the
// cell's row stream, and encoding/json round-trips every float64
// exactly, so a summary restored from a checkpoint or shipped across a
// shard boundary is bit-identical to one computed in process — the
// property that makes the merged stream summary byte-identical at any
// worker count, shard split, or interruption point.
type CellSummary struct {
	Cell     int                     `json:"cell"`
	Columns  []string                `json:"columns"`
	Rows     int                     `json:"rows"`
	Moments  []stats.Moments         `json:"moments"`
	Sketches []*stats.QuantileSketch `json:"sketches"`
}

// newCellSummary starts a summary for one cell.
func newCellSummary(cell int, columns []string, sketchK int) *CellSummary {
	cs := &CellSummary{
		Cell:     cell,
		Columns:  append([]string(nil), columns...),
		Moments:  make([]stats.Moments, len(columns)),
		Sketches: make([]*stats.QuantileSketch, len(columns)),
	}
	for i := range cs.Sketches {
		cs.Sketches[i] = stats.NewQuantileSketch(sketchK)
	}
	return cs
}

// observe folds one row in.
func (cs *CellSummary) observe(values []float64) error {
	if len(values) != len(cs.Columns) {
		return fmt.Errorf("experiments: row has %d values, summary has %d columns", len(values), len(cs.Columns))
	}
	for i, v := range values {
		cs.Moments[i].Observe(v)
		cs.Sketches[i].Observe(v)
	}
	cs.Rows++
	return nil
}

// SummarySink is the memory-bounded streaming fold: it reduces every
// cell's rows to a CellSummary as they stream past, holding O(cells)
// sketch state and never the rows themselves. Table() folds the
// per-cell summaries in ascending cell order into one
// mean/CI/percentile row per column — the full_grid_stream_summary.csv
// artifact.
type SummarySink struct {
	sketchK int
	columns []string
	cells   map[int]*CellSummary
	cur     *CellSummary
}

// NewSummarySink builds the sink; sketchK <= 0 selects
// stats.DefaultSketchK.
func NewSummarySink(sketchK int) *SummarySink {
	return &SummarySink{sketchK: sketchK, cells: make(map[int]*CellSummary)}
}

// Restore pre-seeds checkpointed cell summaries so a resumed grid's
// stream summary covers the cells that are not re-simulated.
func (s *SummarySink) Restore(records []GridCellRecord) {
	for _, rec := range records {
		if rec.Summary != nil {
			s.cells[rec.Index] = rec.Summary
		}
	}
}

func (s *SummarySink) CellStart(cell Cell, columns []string) error {
	if s.columns == nil {
		s.columns = append([]string(nil), columns...)
	} else if len(columns) != len(s.columns) {
		return fmt.Errorf("experiments: summary sink schema changed mid-stream (%d columns, then %d)", len(s.columns), len(columns))
	}
	if cell.Restored {
		if _, ok := s.cells[cell.Index]; !ok {
			return fmt.Errorf("experiments: restored cell %d has no checkpointed summary", cell.Index)
		}
		s.cur = nil
		return nil
	}
	s.cur = newCellSummary(cell.Index, columns, s.sketchK)
	return nil
}

func (s *SummarySink) Row(cell Cell, row Row) error {
	if s.cur == nil {
		return fmt.Errorf("experiments: summary sink got a row for restored cell %d", cell.Index)
	}
	return s.cur.observe(row.Values)
}

func (s *SummarySink) AuditEvent(Cell, adversary.Report) error { return nil }

func (s *SummarySink) CellDone(cell Cell) error {
	if s.cur != nil {
		s.cells[cell.Index] = s.cur
		s.cur = nil
	}
	return nil
}

// CellSummaries returns the accumulated summaries in ascending cell
// order (the checkpoint sink's record payloads come from its own
// identical accumulation; this accessor serves tests and merges).
func (s *SummarySink) CellSummaries() []*CellSummary {
	idx := make([]int, 0, len(s.cells))
	for i := range s.cells {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]*CellSummary, len(idx))
	for j, i := range idx {
		out[j] = s.cells[i]
	}
	return out
}

// streamSummaryColumns is the per-column statistic set Table renders.
var streamSummaryColumns = []string{"column_idx", "rows", "mean", "ci95", "min", "p10", "p25", "p50", "p75", "p90", "max"}

// Table folds every cell summary — ascending cell index, left to right
// — and renders one row per outcome column. The fixed fold order makes
// the output independent of worker count, shard split, and resume
// history.
func (s *SummarySink) Table() (*stats.Table, error) {
	return StreamSummaryTable(s.CellSummaries())
}

// StreamSummaryTable merges per-cell summaries (ascending cell order,
// left-fold) into the stream-summary table: one row per column with
// mean, CI and sketch percentiles over every row of every cell.
func StreamSummaryTable(cells []*CellSummary) (*stats.Table, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no cell summaries to merge")
	}
	sorted := append([]*CellSummary(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cell < sorted[j].Cell })
	columns := sorted[0].Columns
	merged := newCellSummary(0, columns, sorted[0].Sketches[0].K)
	for _, cs := range sorted {
		if len(cs.Columns) != len(columns) {
			return nil, fmt.Errorf("experiments: cell %d has %d columns, want %d", cs.Cell, len(cs.Columns), len(columns))
		}
		for i := range columns {
			merged.Moments[i].Merge(cs.Moments[i])
			if err := merged.Sketches[i].Merge(cs.Sketches[i]); err != nil {
				return nil, err
			}
		}
		merged.Rows += cs.Rows
	}

	t := &stats.Table{}
	rows := make(map[string][]float64, len(streamSummaryColumns))
	for i := range columns {
		m, sk := merged.Moments[i], merged.Sketches[i]
		q := func(p float64) float64 {
			v, err := sk.Quantile(p)
			if err != nil {
				return 0
			}
			return v
		}
		rows["column_idx"] = append(rows["column_idx"], float64(i))
		rows["rows"] = append(rows["rows"], float64(m.N))
		rows["mean"] = append(rows["mean"], m.Mean())
		rows["ci95"] = append(rows["ci95"], m.CI95())
		rows["min"] = append(rows["min"], m.Min)
		rows["p10"] = append(rows["p10"], q(0.10))
		rows["p25"] = append(rows["p25"], q(0.25))
		rows["p50"] = append(rows["p50"], q(0.50))
		rows["p75"] = append(rows["p75"], q(0.75))
		rows["p90"] = append(rows["p90"], q(0.90))
		rows["max"] = append(rows["max"], m.Max)
	}
	for _, name := range streamSummaryColumns {
		t.AddColumn(name, rows[name])
	}
	return t, nil
}
