package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// EquilibriumConfig parameterises the analytical-claims audit: on random
// role assignments it certifies Theorems 1–3 and Lemma 1–2 numerically.
type EquilibriumConfig struct {
	// Samples is the number of random games audited.
	Samples int
	// Leaders/Committee/Others are the group sizes per sampled game.
	Leaders, Committee, Others int
	// StakeDist draws player stakes.
	StakeDist stake.Distribution
	// Costs is the role-cost model.
	Costs game.RoleCosts
	Seed  int64
	// Workers bounds the audit pool's parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultEquilibriumConfig audits 50 random games with the paper's cost
// model.
func DefaultEquilibriumConfig() EquilibriumConfig {
	return EquilibriumConfig{
		Samples:   50,
		Leaders:   3,
		Committee: 8,
		Others:    30,
		StakeDist: stake.Uniform{A: 1, B: 200},
		Costs:     game.DefaultRoleCosts(),
		Seed:      1,
	}
}

// EquilibriumResult counts how often each analytical claim held.
type EquilibriumResult struct {
	Config EquilibriumConfig
	// Theorem1 counts games where All-D is a NE of GAl.
	Theorem1 int
	// Theorem2 counts games where All-C is NOT a NE of GAl.
	Theorem2 int
	// Lemma1 counts games where O never beats D.
	Lemma1 int
	// Theorem3 counts games where the cooperative profile is a NE of GAl+
	// at the Algorithm 1 reward.
	Theorem3 int
	// Tightness counts games where shaving the reward below the bound
	// breaks the equilibrium (the bound is tight).
	Tightness int
	// Failures lists human-readable descriptions of violated claims.
	Failures []string
}

// RunEquilibrium executes the audit.
func RunEquilibrium(cfg EquilibriumConfig) (*EquilibriumResult, error) {
	if cfg.Samples < 1 || cfg.Leaders < 2 || cfg.Committee < 1 || cfg.Others < 2 {
		return nil, errors.New("experiments: equilibrium audit needs >=1 sample, >=2 leaders, >=1 committee, >=2 others")
	}
	if cfg.StakeDist == nil {
		cfg.StakeDist = stake.Uniform{A: 1, B: 200}
	}
	type sampleAudit struct {
		theorem1, theorem2, lemma1, theorem3, tightness bool
		failures                                        []string
	}
	audits, err := runpool.Sweep(cfg.Samples, cfg.Workers, func(s int) (sampleAudit, error) {
		rng := sim.NewRNG(cfg.Seed+int64(s)*7919, "equilibrium")
		g, in := sampleGame(cfg, rng)
		foundation := game.FoundationRule{}
		var a sampleAudit

		// Theorem 1: All-D is a NE of GAl.
		if ok, _ := g.IsNash(foundation, g.AllD()); ok {
			a.theorem1 = true
		} else {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: All-D not NE under foundation", s))
		}
		// Theorem 2: All-C is not a NE of GAl.
		if ok, _ := g.IsNash(foundation, g.AllC()); !ok {
			a.theorem2 = true
		} else {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: All-C unexpectedly NE under foundation", s))
		}
		// Lemma 1: O is dominated by D.
		if dev := g.DominatedOffline(foundation, g.AllC()); dev == nil {
			a.lemma1 = true
		} else {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: lemma1 violated: %s", s, dev))
		}

		// Theorem 3 at the Algorithm 1 reward.
		params, err := core.Minimize(in)
		if err != nil {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: minimize: %v", s, err))
			return a, nil
		}
		g.B = params.B
		rule := game.RoleBasedRule{Alpha: params.Alpha, Beta: params.Beta}
		profile := g.Theorem3Profile()
		if ok, devs := g.IsNash(rule, profile); ok {
			a.theorem3 = true
		} else {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: theorem3 violated at B=%g: %s", s, params.B, devs[0]))
		}
		// Tightness: 50% of the bound must break cooperation.
		g.B = params.MinB * 0.5
		if ok, _ := g.IsNash(rule, profile); !ok {
			a.tightness = true
		} else {
			a.failures = append(a.failures, fmt.Sprintf("sample %d: bound not tight at B=%g", s, g.B))
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	res := runpool.Accumulate(audits, &EquilibriumResult{Config: cfg}, func(r *EquilibriumResult, a sampleAudit) *EquilibriumResult {
		boolToInt := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		r.Theorem1 += boolToInt(a.theorem1)
		r.Theorem2 += boolToInt(a.theorem2)
		r.Lemma1 += boolToInt(a.lemma1)
		r.Theorem3 += boolToInt(a.theorem3)
		r.Tightness += boolToInt(a.tightness)
		r.Failures = append(r.Failures, a.failures...)
		return r
	})
	return res, nil
}

// sampleGame builds a random role assignment and the matching Algorithm 1
// inputs. Every "other" node is placed in the strong synchrony set so the
// Theorem 3 bound must protect all of them.
func sampleGame(cfg EquilibriumConfig, rng interface {
	Float64() float64
	Intn(int) int
}) (*game.Game, core.Inputs) {
	players := make([]game.Player, 0, cfg.Leaders+cfg.Committee+cfg.Others)
	id := 0
	draw := func() float64 {
		switch d := cfg.StakeDist.(type) {
		case stake.Uniform:
			return d.A + rng.Float64()*(d.B-d.A)
		default:
			return 1 + rng.Float64()*199
		}
	}
	var leaders, committee, others []float64
	for i := 0; i < cfg.Leaders; i++ {
		s := draw()
		leaders = append(leaders, s)
		players = append(players, game.Player{ID: id, Role: game.RoleLeader, Stake: s})
		id++
	}
	for i := 0; i < cfg.Committee; i++ {
		s := draw()
		committee = append(committee, s)
		players = append(players, game.Player{ID: id, Role: game.RoleCommittee, Stake: s})
		id++
	}
	for i := 0; i < cfg.Others; i++ {
		s := draw()
		others = append(others, s)
		players = append(players, game.Player{ID: id, Role: game.RoleOther, Stake: s, InSyncSet: true})
		id++
	}
	g := &game.Game{Players: players, Costs: cfg.Costs, B: 1, QuorumFrac: 0.685}
	in, _ := core.InputsFromRoles(leaders, committee, others, cfg.Costs)
	return g, in
}

// AllHold reports whether every claim held on every sample.
func (r *EquilibriumResult) AllHold() bool {
	n := r.Config.Samples
	return r.Theorem1 == n && r.Theorem2 == n && r.Lemma1 == n &&
		r.Theorem3 == n && r.Tightness == n
}

// WriteSummary prints the claim counts.
func (r *EquilibriumResult) WriteSummary(w io.Writer) error {
	n := r.Config.Samples
	_, err := fmt.Fprintf(w,
		"theorem1 (All-D NE, GAl):          %d/%d\n"+
			"theorem2 (All-C not NE, GAl):      %d/%d\n"+
			"lemma1   (O dominated by D):       %d/%d\n"+
			"theorem3 (coop NE, GAl+ at B*):    %d/%d\n"+
			"tightness (B*/2 breaks coop):      %d/%d\n",
		r.Theorem1, n, r.Theorem2, n, r.Lemma1, n, r.Theorem3, n, r.Tightness, n)
	if err != nil {
		return err
	}
	for _, f := range r.Failures {
		if _, err := fmt.Fprintln(w, "FAIL:", f); err != nil {
			return err
		}
	}
	return nil
}
