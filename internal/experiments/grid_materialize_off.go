//go:build !grid_materialize

package experiments

// gridMaterialize routes StreamScenarioGrid through the streaming fold
// (the default). The grid_materialize build tag flips it to the legacy
// collect-then-replay path, the differential oracle CI diffs the
// streamed outputs against.
const gridMaterialize = false
