package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// GridCSVSink renders a streamed grid as the exact files the
// materialized -full path wrote: full_<scenario>_s<seed>.csv and
// full_<scenario>_s<seed>_audit.csv per cell, plus the audit-counter
// summary (full_grid_summary.csv) on Close. Only the current cell's
// rows are buffered — cells arrive strictly in index order and one at
// a time, so the sink's live row count is O(rounds), not
// O(cells × rounds); PeakBufferedRows pins that in the budget test.
// Restored cells skip the file writes (their files were produced by
// the interrupted run) but still contribute to the summary.
type GridCSVSink struct {
	dir         string
	cfg         ScenarioGridConfig
	summaryName string
	logf        func(format string, args ...any)

	cur      GridCell
	cells    []int
	reports  []adversary.Report
	peakRows int
}

// NewGridCSVSink writes into dir; summaryName is the summary file
// ("full_grid_summary.csv" for a whole grid, a shard-suffixed name for
// partial grids).
func NewGridCSVSink(dir string, cfg ScenarioGridConfig, summaryName string) *GridCSVSink {
	return &GridCSVSink{dir: dir, cfg: cfg, summaryName: summaryName}
}

// SetLog directs the sink's "wrote <path>" lines (the CLI's progress
// feedback) to w; nil silences them.
func (s *GridCSVSink) SetLog(w io.Writer) {
	if w == nil {
		s.logf = nil
		return
	}
	s.logf = func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
}

func (s *GridCSVSink) CellStart(cell Cell, columns []string) error {
	if len(columns) != 3 {
		return fmt.Errorf("experiments: grid CSV sink expects 3 outcome columns, got %d", len(columns))
	}
	s.cur.Scenario = cell.Name
	s.cur.Seed = cell.Seed
	s.cur.Final = s.cur.Final[:0]
	s.cur.Tentative = s.cur.Tentative[:0]
	s.cur.None = s.cur.None[:0]
	return nil
}

func (s *GridCSVSink) Row(cell Cell, row Row) error {
	if len(row.Values) != 3 {
		return fmt.Errorf("experiments: grid CSV sink row has %d values, want 3", len(row.Values))
	}
	s.cur.Final = append(s.cur.Final, row.Values[0])
	s.cur.Tentative = append(s.cur.Tentative, row.Values[1])
	s.cur.None = append(s.cur.None, row.Values[2])
	if n := len(s.cur.Final); n > s.peakRows {
		s.peakRows = n
	}
	return nil
}

func (s *GridCSVSink) AuditEvent(cell Cell, report adversary.Report) error {
	s.cur.Audit = report
	s.cells = append(s.cells, cell.Index)
	s.reports = append(s.reports, report)
	return nil
}

func (s *GridCSVSink) CellDone(cell Cell) error {
	if cell.Restored {
		return nil
	}
	base := fmt.Sprintf("full_%s_s%d", s.cur.Scenario, s.cur.Seed)
	if err := s.writeCSV(base+".csv", s.cur.Table()); err != nil {
		return err
	}
	return s.writeCSV(base+"_audit.csv", s.cur.AuditTable())
}

// Close writes the grid summary over every audited cell. It is not part
// of the Sink contract — the driver owning the sink calls it once the
// stream ends.
func (s *GridCSVSink) Close() error {
	return s.writeCSV(s.summaryName, gridSummaryTable(s.cfg, s.cells, s.reports))
}

// SafetyViolations sums conflicting-finalisation rounds across every
// audited cell — the CLI's exit verdict.
func (s *GridCSVSink) SafetyViolations() int {
	total := 0
	for _, rep := range s.reports {
		total += rep.SafetyViolations
	}
	return total
}

// CellsSeen reports how many cells streamed through.
func (s *GridCSVSink) CellsSeen() int { return len(s.cells) }

// PeakBufferedRows reports the largest number of rows the sink ever
// held at once; the streaming-budget test pins it to one cell's rounds.
func (s *GridCSVSink) PeakBufferedRows() int { return s.peakRows }

func (s *GridCSVSink) writeCSV(name string, table *stats.Table) error {
	path := filepath.Join(s.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := table.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if s.logf != nil {
		s.logf("wrote %s\n", path)
	}
	return nil
}

// GridTextSink reproduces the materialized path's per-cell stdout
// lines ("<scenario> seed <n> <audit summary>") as cells complete.
type GridTextSink struct {
	W io.Writer
}

func (s *GridTextSink) CellStart(Cell, []string) error { return nil }
func (s *GridTextSink) Row(Cell, Row) error            { return nil }

func (s *GridTextSink) AuditEvent(cell Cell, report adversary.Report) error {
	if _, err := fmt.Fprintf(s.W, "%-22s seed %-3d ", cell.Name, cell.Seed); err != nil {
		return err
	}
	return report.WriteSummary(s.W)
}

func (s *GridTextSink) CellDone(Cell) error { return nil }
