package experiments

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/ledger"
)

func smallGridConfig() ScenarioGridConfig {
	cfg := FullScenarioGridConfig()
	cfg.Scenarios = []string{adversary.HonestBaseline, "crash_churn"}
	cfg.Seeds = []int64{1, 2}
	cfg.Nodes = 40
	cfg.Rounds = 5
	return cfg
}

func gridDigest(t *testing.T, res *ScenarioGridResult) string {
	t.Helper()
	out := ""
	for _, c := range res.Cells {
		table, err := marshalTable(c.Table())
		if err != nil {
			t.Fatal(err)
		}
		audit, err := marshalTable(c.AuditTable())
		if err != nil {
			t.Fatal(err)
		}
		out += c.Scenario + ":" + string(table) + string(audit)
	}
	return out
}

// TestScenarioGridShapeAndSafety runs a small grid end to end: every
// cell present in grid order, every round observed, no safety
// violations on the bundled scenarios.
func TestScenarioGridShapeAndSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	res, err := RunScenarioGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	for i, c := range res.Cells {
		wantScn := cfg.Scenarios[i/2]
		wantSeed := cfg.Seeds[i%2]
		if c.Scenario != wantScn || c.Seed != wantSeed {
			t.Fatalf("cell %d is (%s, %d), want (%s, %d)", i, c.Scenario, c.Seed, wantScn, wantSeed)
		}
		if c.Audit.Rounds != cfg.Rounds {
			t.Fatalf("cell %d observed %d rounds, want %d", i, c.Audit.Rounds, cfg.Rounds)
		}
		if len(c.Final) != cfg.Rounds {
			t.Fatalf("cell %d has %d per-round rows, want %d", i, len(c.Final), cfg.Rounds)
		}
	}
	if v := res.SafetyViolations(); v != 0 {
		t.Fatalf("safety violated %d times on bundled scenarios", v)
	}
	if got := res.SummaryTable().Columns[0].Name; got != "scenario_idx" {
		t.Fatalf("summary table first column %q", got)
	}
}

// TestScenarioGridDeterministicAcrossWorkers pins the grid's run-pool
// contract: any worker count yields bit-identical cells, which also
// proves the per-worker arenas leak no state between cells (workers pick
// up different cell subsets at different widths).
func TestScenarioGridDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := smallGridConfig()
	var first string
	for _, workers := range []int{1, 2, 3, 8} {
		cfg.Workers = workers
		res, err := RunScenarioGrid(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		digest := gridDigest(t, res)
		if first == "" {
			first = digest
		} else if digest != first {
			t.Fatalf("workers=%d grid differs from workers=1", workers)
		}
	}
}

// TestScenarioGridUnknownScenario fails fast.
func TestScenarioGridUnknownScenario(t *testing.T) {
	cfg := smallGridConfig()
	cfg.Scenarios = []string{"no_such_scenario"}
	if _, err := RunScenarioGrid(cfg); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestCrashChurnCOWMatchesDeepCloneOracle is the system-level
// differential oracle for the copy-on-write ledger: a desync-heavy
// crash-churn sweep (many catch-up clones per round) must be
// bit-identical whether views are COW overlays or the legacy deep
// copies. It flips the process-wide clone switch, so it must not run in
// parallel with other tests.
func TestCrashChurnCOWMatchesDeepCloneOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	run := func() string {
		cfg := DefaultScenarioConfig("crash_churn")
		cfg.Nodes = 50
		cfg.Rounds = 8
		cfg.Runs = 3
		cfg.Workers = 2
		res, err := RunScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		table, err := marshalTable(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		audit, err := marshalTable(res.AuditTable())
		if err != nil {
			t.Fatal(err)
		}
		return string(table) + string(audit)
	}
	cow := run()
	prev := ledger.SetDeepCloneViews(true)
	deep := run()
	ledger.SetDeepCloneViews(prev)
	if cow != deep {
		t.Fatal("crash_churn output diverges between COW views and the deep-clone oracle")
	}
}

// TestEclipseArenaDeterministicAcrossWorkers extends the eclipse
// determinism pin to odd worker counts, exercising arena reuse under
// maximally uneven run-to-worker assignments.
func TestEclipseArenaDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	run := func(workers int) string {
		cfg := DefaultScenarioConfig(adversary.EclipseEquivocation)
		cfg.Nodes = 50
		cfg.Rounds = 6
		cfg.Runs = 5
		cfg.Workers = workers
		res, err := RunScenario(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		table, err := marshalTable(res.Table())
		if err != nil {
			t.Fatal(err)
		}
		return string(table)
	}
	first := run(1)
	for _, workers := range []int{2, 3, 5} {
		if got := run(workers); got != first {
			t.Fatalf("workers=%d eclipse output differs from workers=1", workers)
		}
	}
}
