package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
)

// The wire sink serialises the Sink event grammar as NDJSON — one JSON
// object per line, in exactly the order the driver emitted the events:
//
//	{"event":"cell_start","cell":0,"name":"...","seed":1,"columns":[...]}
//	{"event":"row","cell":0,"row":0,"values":[...]}
//	{"event":"audit","cell":0,"audit":{...}}
//	{"event":"cell_done","cell":0}
//
// Because drivers emit cells and rows in deterministic order at any
// worker count (runpool.SweepFold's contract) and encoding/json renders
// every float64 with the shortest round-trip form, the encoded byte
// stream is itself deterministic: the simulation daemon's contract that
// a streamed job is byte-identical at any worker budget, cold or served
// from cache, reduces to this encoding. ReplayWire inverts it, driving
// any local Sink (CSV, summary, checkpoint) from a received stream —
// which is how a daemon client reconstructs the exact files the CLI
// would have written.

// Wire event names.
const (
	WireCellStart = "cell_start"
	WireRow       = "row"
	WireAudit     = "audit"
	WireCellDone  = "cell_done"
)

// WireEvent is one line of the NDJSON stream: a tagged union over the
// four Sink calls, with unused fields omitted.
type WireEvent struct {
	Event    string            `json:"event"`
	Cell     int               `json:"cell"`
	Name     string            `json:"name,omitempty"`
	Seed     int64             `json:"seed,omitempty"`
	Restored bool              `json:"restored,omitempty"`
	Columns  []string          `json:"columns,omitempty"`
	Row      int               `json:"row,omitempty"`
	Values   []float64         `json:"values,omitempty"`
	Audit    *adversary.Report `json:"audit,omitempty"`
}

// WireSink encodes the sink stream onto w as NDJSON. Writes are
// line-buffered internally only by the encoder; callers needing
// flush-per-event semantics (live streaming) should hand it a writer
// that flushes on Write.
type WireSink struct {
	enc *json.Encoder
}

// NewWireSink streams onto w.
func NewWireSink(w io.Writer) *WireSink {
	return &WireSink{enc: json.NewEncoder(w)}
}

func (s *WireSink) CellStart(cell Cell, columns []string) error {
	return s.enc.Encode(WireEvent{
		Event: WireCellStart, Cell: cell.Index,
		Name: cell.Name, Seed: cell.Seed, Restored: cell.Restored,
		Columns: columns,
	})
}

func (s *WireSink) Row(cell Cell, row Row) error {
	return s.enc.Encode(WireEvent{Event: WireRow, Cell: cell.Index, Row: row.Index, Values: row.Values})
}

func (s *WireSink) AuditEvent(cell Cell, report adversary.Report) error {
	return s.enc.Encode(WireEvent{Event: WireAudit, Cell: cell.Index, Audit: &report})
}

func (s *WireSink) CellDone(cell Cell) error {
	return s.enc.Encode(WireEvent{Event: WireCellDone, Cell: cell.Index})
}

// ReplayWire decodes an NDJSON wire stream and drives sink with the
// decoded events, enforcing the Sink grammar (CellStart opens a cell,
// rows/audit belong to the open cell, CellDone closes it). It is the
// client half of the wire sink: replaying a daemon's stream into the
// CSV and summary sinks reproduces the CLI's files byte for byte.
func ReplayWire(r io.Reader, sink Sink) error {
	if sink == nil {
		return fmt.Errorf("experiments: wire replay needs a sink")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var (
		cur  Cell
		open bool
		line int
	)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("experiments: wire line %d: %w", line, err)
		}
		switch ev.Event {
		case WireCellStart:
			if open {
				return fmt.Errorf("experiments: wire line %d: cell %d started while cell %d is open", line, ev.Cell, cur.Index)
			}
			cur = Cell{Index: ev.Cell, Name: ev.Name, Seed: ev.Seed, Restored: ev.Restored}
			open = true
			if err := sink.CellStart(cur, ev.Columns); err != nil {
				return err
			}
		case WireRow:
			if !open || ev.Cell != cur.Index {
				return fmt.Errorf("experiments: wire line %d: row for cell %d outside its cell", line, ev.Cell)
			}
			if err := sink.Row(cur, Row{Index: ev.Row, Values: ev.Values}); err != nil {
				return err
			}
		case WireAudit:
			if !open || ev.Cell != cur.Index {
				return fmt.Errorf("experiments: wire line %d: audit for cell %d outside its cell", line, ev.Cell)
			}
			if ev.Audit == nil {
				return fmt.Errorf("experiments: wire line %d: audit event without a report", line)
			}
			if err := sink.AuditEvent(cur, *ev.Audit); err != nil {
				return err
			}
		case WireCellDone:
			if !open || ev.Cell != cur.Index {
				return fmt.Errorf("experiments: wire line %d: cell_done for cell %d outside its cell", line, ev.Cell)
			}
			open = false
			if err := sink.CellDone(cur); err != nil {
				return err
			}
		default:
			return fmt.Errorf("experiments: wire line %d: unknown event %q", line, ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if open {
		return fmt.Errorf("experiments: wire stream ended inside cell %d", cur.Index)
	}
	return nil
}
