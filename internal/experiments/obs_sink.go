package experiments

import (
	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// instrumentSink wraps a sink with sink-pipeline telemetry — rows
// streamed, cells done, audit events by kind — counted in the shared
// pool registry. It is the identity when the sink is nil or telemetry
// is disabled, so the disabled path costs nothing; when active it only
// counts, so the wrapped stream (and therefore every output derived
// from it) is byte-identical to the unwrapped one. Every driver passes
// its configured sink through here once at entry.
func instrumentSink(sink Sink) Sink {
	m := obs.DefaultPool()
	if sink == nil || m == nil {
		return sink
	}
	return &metricsSink{inner: sink, m: m}
}

// metricsSink counts the stream it forwards. Audit events are
// classified by their most severe finding: a report witnessing a
// safety violation counts as "safety-violation" even if it also
// stalled; then "stall", then "corruption", then "clean".
type metricsSink struct {
	inner Sink
	m     *obs.PoolMetrics
}

func auditKind(report adversary.Report) string {
	switch {
	case report.SafetyViolations > 0:
		return "safety-violation"
	case report.Stalls > 0:
		return "stall"
	case report.Corruptions > 0:
		return "corruption"
	}
	return "clean"
}

func (s *metricsSink) CellStart(cell Cell, columns []string) error {
	return s.inner.CellStart(cell, columns)
}

func (s *metricsSink) Row(cell Cell, row Row) error {
	s.m.RowsStreamed.Add(1)
	return s.inner.Row(cell, row)
}

func (s *metricsSink) AuditEvent(cell Cell, report adversary.Report) error {
	s.m.AuditEvents(auditKind(report)).Add(1)
	return s.inner.AuditEvent(cell, report)
}

func (s *metricsSink) CellDone(cell Cell) error {
	s.m.CellsDone.Add(1)
	return s.inner.CellDone(cell)
}
