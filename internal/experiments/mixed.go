package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// BehaviorMix is one population composition for the mixed-behaviour
// sweep: fractions of selfish, malicious and faulty nodes (the remainder
// is honest).
type BehaviorMix struct {
	Selfish   float64
	Malicious float64
	Faulty    float64
}

// Valid reports whether the fractions are sane.
func (m BehaviorMix) Valid() bool {
	for _, f := range []float64{m.Selfish, m.Malicious, m.Faulty} {
		if f < 0 || f > 1 {
			return false
		}
	}
	return m.Selfish+m.Malicious+m.Faulty <= 1
}

// Label renders the mix compactly.
func (m BehaviorMix) Label() string {
	return fmt.Sprintf("s%02.0f_m%02.0f_f%02.0f", m.Selfish*100, m.Malicious*100, m.Faulty*100)
}

// MixedConfig parameterises the sweep: the paper's Fig. 3 isolates
// selfish defection; this extension crosses it with the other two
// behaviour classes of Sec. III-C to show their distinct liveness
// signatures (selfish nodes also stop relaying; malicious nodes vote but
// adversarially; faulty nodes silently disappear).
type MixedConfig struct {
	Nodes  int
	Rounds int
	Runs   int
	Mixes  []BehaviorMix
	Seed   int64
	Params protocol.Params
	// Workers bounds the run pool's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sink optionally receives each mix as one cell with a single
	// aggregated row.
	Sink Sink
}

// mixedColumns is the sink schema: one averaged row per mix.
var mixedColumns = []string{"final_frac", "none_frac", "decide_rate"}

// DefaultMixedConfig sweeps a selfish / malicious / faulty grid at 10%.
func DefaultMixedConfig() MixedConfig {
	return MixedConfig{
		Nodes:  100,
		Rounds: 12,
		Runs:   4,
		Mixes: []BehaviorMix{
			{},                // all honest baseline
			{Selfish: 0.10},   // Fig. 3's axis
			{Malicious: 0.10}, // byzantine voters
			{Faulty: 0.10},    // silent crashes
			{Selfish: 0.05, Malicious: 0.05, Faulty: 0.05},
		},
		Seed:   1,
		Params: protocol.DefaultParams(),
	}
}

// mixedRun is one simulation's summed outcome fractions.
type mixedRun struct {
	finalSum, noneSum, decided float64
}

// MixedRow is the averaged result of one mix.
type MixedRow struct {
	Mix        BehaviorMix
	FinalFrac  float64
	NoneFrac   float64
	DecideRate float64
}

// MixedResult bundles the sweep.
type MixedResult struct {
	Config MixedConfig
	Rows   []MixedRow
}

// RunMixed executes the sweep.
func RunMixed(cfg MixedConfig) (*MixedResult, error) {
	if cfg.Nodes < 10 || cfg.Rounds < 1 || cfg.Runs < 1 || len(cfg.Mixes) == 0 {
		return nil, errors.New("experiments: mixed sweep needs nodes, rounds, runs and mixes")
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	res := &MixedResult{Config: cfg}
	for mi, mix := range cfg.Mixes {
		if !mix.Valid() {
			return nil, fmt.Errorf("experiments: invalid mix %+v", mix)
		}
		runs, err := runpool.Sweep(cfg.Runs, cfg.Workers, func(run int) (mixedRun, error) {
			seed := cfg.Seed + int64(mi)*104729 + int64(run)*7919
			rng := sim.NewRNG(seed, "mixed.setup")
			pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, cfg.Nodes, rng)
			if err != nil {
				return mixedRun{}, err
			}
			behaviors := make([]protocol.Behavior, cfg.Nodes)
			for i := range behaviors {
				behaviors[i] = protocol.Honest
			}
			perm := rng.Perm(cfg.Nodes)
			idx := 0
			assign := func(frac float64, b protocol.Behavior) {
				for k := 0; k < int(frac*float64(cfg.Nodes)) && idx < cfg.Nodes; k++ {
					behaviors[perm[idx]] = b
					idx++
				}
			}
			assign(mix.Selfish, protocol.Selfish)
			assign(mix.Malicious, protocol.Malicious)
			assign(mix.Faulty, protocol.Faulty)

			runner, err := protocol.NewRunner(protocol.Config{
				Params:    cfg.Params,
				Stakes:    pop.Stakes,
				Behaviors: behaviors,
				Seed:      seed,
			})
			if err != nil {
				return mixedRun{}, err
			}
			var out mixedRun
			for _, rep := range runner.RunRounds(cfg.Rounds) {
				out.finalSum += rep.FinalFrac()
				out.noneSum += rep.NoneFrac()
				if rep.Decided {
					out.decided++
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		row := runpool.Accumulate(runs, MixedRow{Mix: mix}, func(r MixedRow, m mixedRun) MixedRow {
			r.FinalFrac += m.finalSum
			r.NoneFrac += m.noneSum
			r.DecideRate += m.decided
			return r
		})
		denom := float64(cfg.Runs * cfg.Rounds)
		row.FinalFrac /= denom
		row.NoneFrac /= denom
		row.DecideRate /= denom
		if cfg.Sink != nil {
			cell := Cell{Index: mi, Name: mix.Label(), Seed: cfg.Seed + int64(mi)*104729}
			if err := cfg.Sink.CellStart(cell, mixedColumns); err != nil {
				return nil, err
			}
			values := []float64{row.FinalFrac, row.NoneFrac, row.DecideRate}
			if err := cfg.Sink.Row(cell, Row{Index: 0, Values: values}); err != nil {
				return nil, err
			}
			if err := cfg.Sink.CellDone(cell); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep.
func (r *MixedResult) Table() *stats.Table {
	t := &stats.Table{}
	selfish := make([]float64, len(r.Rows))
	malicious := make([]float64, len(r.Rows))
	faulty := make([]float64, len(r.Rows))
	final := make([]float64, len(r.Rows))
	none := make([]float64, len(r.Rows))
	decide := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		selfish[i] = row.Mix.Selfish
		malicious[i] = row.Mix.Malicious
		faulty[i] = row.Mix.Faulty
		final[i] = row.FinalFrac
		none[i] = row.NoneFrac
		decide[i] = row.DecideRate
	}
	t.AddColumn("selfish", selfish)
	t.AddColumn("malicious", malicious)
	t.AddColumn("faulty", faulty)
	t.AddColumn("final_frac", final)
	t.AddColumn("none_frac", none)
	t.AddColumn("decide_rate", decide)
	return t
}

// WriteSummary prints one line per mix.
func (r *MixedResult) WriteSummary(w io.Writer) error {
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w,
			"%-14s final %5.1f%%  none %5.1f%%  decided %5.1f%%\n",
			row.Mix.Label(), 100*row.FinalFrac, 100*row.NoneFrac, 100*row.DecideRate); err != nil {
			return err
		}
	}
	return nil
}
