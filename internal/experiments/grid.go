package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// ScenarioGridConfig parameterises the paper-scale robustness sweep the
// `cmd/scenario -full` path runs: a scenario×seed grid where every cell
// is one independent simulation at fig-scale node counts. Cells fan out
// through the deterministic run pool with a per-worker protocol.Arena,
// so Runner construction (topology, genesis, sortition cache) is
// amortised across the grid — the reuse that, together with
// copy-on-write ledger views, makes 500+-node grids affordable.
type ScenarioGridConfig struct {
	// Scenarios are the registered scenario names forming the grid's
	// first axis.
	Scenarios []string
	// Seeds form the second axis: each (scenario, seed) cell runs once
	// with that seed.
	Seeds []int64
	// Nodes is the network size per cell (the -full default is 500).
	Nodes int
	// Rounds is the number of simulated rounds per cell.
	Rounds int
	// Fanout is the gossip fan-out (paper: 5).
	Fanout int
	// Params overrides the protocol constants.
	Params protocol.Params
	// StakeDist draws per-node stakes (paper: U{1..50}).
	StakeDist stake.Distribution
	// CommonConfig supplies Workers, WeightBackend, WeightProfile,
	// Sparse and Sink — the execution-shaping knobs shared by every
	// sweep config. Sparse combined with absolute committee taus in
	// Params lets a grid cell run at populations far beyond the -full
	// default (e.g. 5000 nodes).
	CommonConfig
}

// FullScenarioGridConfig is the paper-scale default: every registered
// scenario at 500 nodes across three seeds.
func FullScenarioGridConfig() ScenarioGridConfig {
	return ScenarioGridConfig{
		Scenarios: adversary.Names(),
		Seeds:     []int64{1, 2, 3},
		Nodes:     500,
		Rounds:    12,
		Fanout:    5,
		Params:    protocol.DefaultParams(),
		StakeDist: stake.UniformInt{A: 1, B: 50},
	}
}

// GridCell is one completed (scenario, seed) simulation: per-round
// outcome fractions plus the cell's safety/liveness audit.
type GridCell struct {
	Scenario string
	Seed     int64
	// Final/Tentative/None are the per-round outcome fractions.
	Final, Tentative, None []float64
	// Audit is this cell's safety/liveness report.
	Audit adversary.Report
}

// ScenarioGridResult is the completed grid, cells in scenario-major
// order (matching Config.Scenarios × Config.Seeds).
type ScenarioGridResult struct {
	Config ScenarioGridConfig
	Cells  []GridCell
}

// resolveGrid validates the grid config (applying the StakeDist
// default) and resolves every scenario up front so an unknown name
// fails before any cell burns cycles.
func resolveGrid(cfg *ScenarioGridConfig) ([]adversary.Scenario, error) {
	if len(cfg.Scenarios) == 0 || len(cfg.Seeds) == 0 {
		return nil, errors.New("experiments: grid needs at least one scenario and one seed")
	}
	if cfg.Nodes < 10 || cfg.Rounds < 1 {
		return nil, errors.New("experiments: grid needs >=10 nodes and >=1 round")
	}
	if cfg.StakeDist == nil {
		cfg.StakeDist = stake.UniformInt{A: 1, B: 50}
	}
	scenarios := make([]adversary.Scenario, len(cfg.Scenarios))
	for i, name := range cfg.Scenarios {
		scn, ok := adversary.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario %q", name)
		}
		scenarios[i] = scn
	}
	return scenarios, nil
}

// simulateGridCell runs one grid cell. rows supplies the three
// aggregation rows by slot (the materialized path carves them from a
// slab); a nil rows allocates them.
func simulateGridCell(cfg ScenarioGridConfig, scenarios []adversary.Scenario, cell int, arena *protocol.Arena, rows func(slot int) []float64) (GridCell, error) {
	if rows == nil {
		backing := make([]float64, 3*cfg.Rounds)
		rows = func(slot int) []float64 {
			lo := (slot % 3) * cfg.Rounds
			return backing[lo : lo+cfg.Rounds : lo+cfg.Rounds]
		}
	}
	si, ki := cell/len(cfg.Seeds), cell%len(cfg.Seeds)
	seed := cfg.Seeds[ki]
	out := GridCell{Scenario: cfg.Scenarios[si], Seed: seed}
	rng := sim.NewRNG(seed, "scenario.setup")
	// The population vector is arena scratch: NewRunner copies the stakes
	// into the genesis ledger and never retains the slice, so one buffer
	// serves every cell a worker runs — at sparse-grid populations the
	// per-cell make([]float64, n) was a measurable slice of setup time.
	pop, err := stake.SamplePopulationInto(cfg.StakeDist, arena.StakeBuf(cfg.Nodes), rng)
	if err != nil {
		return out, err
	}
	pcfg := protocol.Config{
		Params:        cfg.Params,
		Stakes:        pop.Stakes,
		Behaviors:     arena.BehaviorBuf(cfg.Nodes),
		Fanout:        cfg.Fanout,
		Seed:          seed,
		Arena:         arena,
		WeightBackend: cfg.WeightBackend,
		Sparse:        cfg.Sparse,
	}
	if cell == 0 {
		pcfg.Trace = cfg.Trace // single-writer: first global cell only
	}
	if cfg.WeightProfile != nil {
		pcfg.Weights = cfg.WeightProfile(cfg.Nodes, seed)
	}
	runner, err := protocol.NewRunner(pcfg)
	if err != nil {
		return out, err
	}
	eng, err := adversary.Attach(runner, scenarios[si])
	if err != nil {
		return out, err
	}
	out.Final = rows(3 * cell)
	out.Tentative = rows(3*cell + 1)
	out.None = rows(3*cell + 2)
	for round, report := range runner.RunRounds(cfg.Rounds) {
		out.Final[round] = report.FinalFrac()
		out.Tentative[round] = report.TentativeFrac()
		out.None[round] = report.NoneFrac()
	}
	out.Audit = eng.Audit().Report()
	return out, nil
}

// RunScenarioGrid executes every cell through the deterministic run
// pool and returns them in grid order — the materialize-everything
// path, which retains O(cells × rounds) rows. When cfg.Sink is set the
// completed grid is also replayed into it cell by cell; grids too large
// to materialize stream through StreamScenarioGrid instead.
func RunScenarioGrid(cfg ScenarioGridConfig) (*ScenarioGridResult, error) {
	scenarios, err := resolveGrid(&cfg)
	if err != nil {
		return nil, err
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	cells := len(cfg.Scenarios) * len(cfg.Seeds)
	slab := runpool.NewFloatSlab(3*cells, cfg.Rounds)
	results, err := runpool.SweepWithState(cells, cfg.Workers,
		func(int) *protocol.Arena { return protocol.NewArena() },
		func(cell int, arena *protocol.Arena) (GridCell, error) {
			return simulateGridCell(cfg, scenarios, cell, arena, slab.Row)
		})
	if err != nil {
		return nil, err
	}
	r := &ScenarioGridResult{Config: cfg, Cells: results}
	if cfg.Sink != nil {
		for i := range results {
			if err := emitGridCell(cfg.Sink, Cell{Index: i, Name: results[i].Scenario, Seed: results[i].Seed}, &results[i]); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// SafetyViolations sums conflicting-finalisation rounds across the grid.
func (r *ScenarioGridResult) SafetyViolations() int {
	total := 0
	for _, c := range r.Cells {
		total += c.Audit.SafetyViolations
	}
	return total
}

// Table renders one cell's per-round outcome fractions.
func (c *GridCell) Table() *stats.Table {
	t := &stats.Table{}
	roundCol := make([]float64, len(c.Final))
	for i := range roundCol {
		roundCol[i] = float64(i + 1)
	}
	t.AddColumn("round", roundCol)
	t.AddColumn("final", c.Final)
	t.AddColumn("tentative", c.Tentative)
	t.AddColumn("none", c.None)
	return t
}

// auditColumns appends one audit report's counters to the table column
// set, prefixing nothing: the caller controls row multiplicity by
// passing aligned slices.
func auditTableColumns(t *stats.Table, reports []adversary.Report) {
	col := func(name string, pick func(adversary.Report) float64) {
		vals := make([]float64, len(reports))
		for i, rep := range reports {
			vals[i] = pick(rep)
		}
		t.AddColumn(name, vals)
	}
	col("rounds", func(a adversary.Report) float64 { return float64(a.Rounds) })
	col("decided", func(a adversary.Report) float64 { return float64(a.Decided) })
	col("empty_decided", func(a adversary.Report) float64 { return float64(a.EmptyDecided) })
	col("stalls", func(a adversary.Report) float64 { return float64(a.Stalls) })
	col("max_stall_run", func(a adversary.Report) float64 { return float64(a.MaxStallRun) })
	col("safety_violations", func(a adversary.Report) float64 { return float64(a.SafetyViolations) })
	col("corruptions", func(a adversary.Report) float64 { return float64(a.Corruptions) })
	col("mean_final", func(a adversary.Report) float64 { return a.MeanFinalFrac })
	col("mean_none", func(a adversary.Report) float64 { return a.MeanNoneFrac })
	col("mean_desynced", func(a adversary.Report) float64 { return a.MeanDesynced })
}

// AuditTable renders one cell's audit as a one-row table with its seed,
// the per-cell CSV the -full driver writes.
func (c *GridCell) AuditTable() *stats.Table {
	t := &stats.Table{}
	t.AddColumn("seed", []float64{float64(c.Seed)})
	auditTableColumns(t, []adversary.Report{c.Audit})
	return t
}

// gridSummaryTable renders grid cells as one row each: the scenario's
// grid index, the seed, and the audit counters. cells carries global
// cell indices (scenario-major × seed) so a shard's partial summary and
// a merged full summary derive scenario_idx and seed identically to the
// materialized path; reports is aligned with cells.
func gridSummaryTable(cfg ScenarioGridConfig, cells []int, reports []adversary.Report) *stats.Table {
	t := &stats.Table{}
	idx := make([]float64, len(cells))
	seeds := make([]float64, len(cells))
	for i, cell := range cells {
		idx[i] = float64(cell / len(cfg.Seeds))
		seeds[i] = float64(cfg.Seeds[cell%len(cfg.Seeds)])
	}
	t.AddColumn("scenario_idx", idx)
	t.AddColumn("seed", seeds)
	auditTableColumns(t, reports)
	return t
}

// SummaryTable renders the whole grid, one row per cell: the scenario's
// grid index, the seed, and the audit counters. Scenario names map to
// indices in Config.Scenarios order (stats tables are numeric); the
// textual summary carries the names.
func (r *ScenarioGridResult) SummaryTable() *stats.Table {
	cells := make([]int, len(r.Cells))
	reports := make([]adversary.Report, len(r.Cells))
	for i, c := range r.Cells {
		cells[i] = i
		reports[i] = c.Audit
	}
	return gridSummaryTable(r.Config, cells, reports)
}

// WriteSummary prints one line per cell plus the grid verdict.
func (r *ScenarioGridResult) WriteSummary(w io.Writer) error {
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%-22s seed %-3d ", c.Scenario, c.Seed); err != nil {
			return err
		}
		if err := c.Audit.WriteSummary(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "grid: %d cells (%d scenarios x %d seeds), %d nodes, %d rounds/cell, safety violations %d\n",
		len(r.Cells), len(r.Config.Scenarios), len(r.Config.Seeds),
		r.Config.Nodes, r.Config.Rounds, r.SafetyViolations())
	return err
}
