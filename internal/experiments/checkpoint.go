package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Grid checkpoints make an interrupted -full grid resumable and a
// sharded grid mergeable: one JSON header line identifying the grid,
// then one JSON line per completed cell, appended (and flushed) as the
// in-order fold closes each cell. Because the fold emits cells in
// ascending owned order, a checkpoint is always an order-preserving
// prefix of the full record sequence — possibly ending in one torn
// line if the process died mid-write, which the loader drops. Each
// record carries the cell's audit (enough to rebuild
// full_grid_summary.csv) and its CellSummary (enough to rebuild the
// stream summary), so shard checkpoints double as the mergeable
// partial summaries.

// gridCheckpointVersion guards the record layout.
const gridCheckpointVersion = 1

// GridCellRecord is one checkpointed cell.
type GridCellRecord struct {
	Index    int              `json:"index"`
	Scenario string           `json:"scenario"`
	Seed     int64            `json:"seed"`
	Audit    adversary.Report `json:"audit"`
	Summary  *CellSummary     `json:"summary,omitempty"`
}

// gridCheckpointHeader is the first line of a checkpoint file.
type gridCheckpointHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shard       string `json:"shard"`
}

// GridFingerprint digests every config knob that shapes a grid's
// results. A resume or shard merge refuses checkpoints whose
// fingerprint differs — mixing results from different grids is the
// checkpoint-format failure mode worth failing loudly on. weightsSpec
// is the CLI's -weights string (profiles are functions and cannot be
// digested directly).
func GridFingerprint(cfg ScenarioGridConfig, weightsSpec string) string {
	return fmt.Sprintf("v%d|scenarios=%s|seeds=%v|nodes=%d|rounds=%d|fanout=%d|params=%+v|stake=%+v|backend=%d|weights=%s|sparse=%d",
		gridCheckpointVersion, strings.Join(cfg.Scenarios, ","), cfg.Seeds,
		cfg.Nodes, cfg.Rounds, cfg.Fanout, cfg.Params, cfg.StakeDist,
		cfg.WeightBackend, weightsSpec, cfg.Sparse)
}

// GridCellFingerprint digests the configuration one grid cell's results
// depend on: the grid fingerprint with the scenario and seed axes
// collapsed to this cell's (scenario, seed) pair. A cell's simulation
// reads nothing else from the grid shape — not the other scenarios, not
// the other seeds, not the cell's index — so two grids sharing a cell
// key produce bit-identical rows and audit for it. This is the
// completed-cell cache key the simulation daemon uses to skip repeated
// cells across otherwise different sweeps.
func GridCellFingerprint(cfg ScenarioGridConfig, weightsSpec, scenario string, seed int64) string {
	cfg.Scenarios = []string{scenario}
	cfg.Seeds = []int64{seed}
	return "cell|" + GridFingerprint(cfg, weightsSpec)
}

// GridCheckpointName is the checkpoint filename for one shard of the
// grid ("full_grid_checkpoint_<i>of<n>.jsonl"; the whole grid is shard
// 0 of 1).
func GridCheckpointName(shard ShardSpec) string {
	shard = shard.normalized()
	return fmt.Sprintf("full_grid_checkpoint_%dof%d.jsonl", shard.Index, shard.Count)
}

// LoadGridCheckpoint reads a checkpoint file, validating its header
// against the expected fingerprint and shard. A missing file is a
// fresh start (nil records, no error); a torn final line — the
// signature of a killed process — is dropped. Records are returned in
// file order.
func LoadGridCheckpoint(path, fingerprint string, shard ShardSpec) ([]GridCellRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, nil // empty file: treat as fresh
	}
	var hdr gridCheckpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("experiments: checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Version != gridCheckpointVersion {
		return nil, fmt.Errorf("experiments: checkpoint %s: version %d, want %d", path, hdr.Version, gridCheckpointVersion)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, fmt.Errorf("experiments: checkpoint %s was written by a different grid configuration; rerun without -resume or delete it", path)
	}
	if hdr.Shard != shard.String() {
		return nil, fmt.Errorf("experiments: checkpoint %s covers shard %s, want %s", path, hdr.Shard, shard)
	}
	var records []GridCellRecord
	for sc.Scan() {
		var rec GridCellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn final line from an interrupted write
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}

// CheckpointWriter appends cell records to a checkpoint file, flushing
// and syncing after each so a killed process loses at most the cell in
// flight.
type CheckpointWriter struct {
	f *os.File
	w *bufio.Writer
}

// CreateGridCheckpoint (re)creates a checkpoint file: header first,
// then any already-completed records (a resume rewrites the loaded
// prefix, healing a torn tail in place).
func CreateGridCheckpoint(path, fingerprint string, shard ShardSpec, records []GridCellRecord) (*CheckpointWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	cw := &CheckpointWriter{f: f, w: bufio.NewWriter(f)}
	hdr := gridCheckpointHeader{Version: gridCheckpointVersion, Fingerprint: fingerprint, Shard: shard.String()}
	if err := cw.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	for _, rec := range records {
		if err := cw.writeLine(rec); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := cw.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return cw, nil
}

func (cw *CheckpointWriter) writeLine(v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(blob); err != nil {
		return err
	}
	return cw.w.WriteByte('\n')
}

func (cw *CheckpointWriter) sync() error {
	if err := cw.w.Flush(); err != nil {
		return err
	}
	if m := obs.DefaultPool(); m != nil {
		m.CheckpointFlushes.Add(1)
	}
	return cw.f.Sync()
}

// Record appends one cell and makes it durable.
func (cw *CheckpointWriter) Record(rec GridCellRecord) error {
	if err := cw.writeLine(rec); err != nil {
		return err
	}
	return cw.sync()
}

// Close flushes and closes the file.
func (cw *CheckpointWriter) Close() error {
	if err := cw.w.Flush(); err != nil {
		cw.f.Close()
		return err
	}
	return cw.f.Close()
}

// CheckpointSink records each completed cell into a CheckpointWriter:
// the audit it observed plus a CellSummary it accumulates from the
// rows (identical, by determinism, to the SummarySink's). Restored
// cells are skipped — their records are already in the file. Place it
// last in a MultiSink so a cell is only marked durable after every
// other sink has fully consumed it.
type CheckpointSink struct {
	w       *CheckpointWriter
	sketchK int
	cur     *CellSummary
	audit   adversary.Report
}

// NewCheckpointSink records into w, building summaries with the given
// sketch width (use the SummarySink's so restored summaries merge).
func NewCheckpointSink(w *CheckpointWriter, sketchK int) *CheckpointSink {
	return &CheckpointSink{w: w, sketchK: sketchK}
}

func (s *CheckpointSink) CellStart(cell Cell, columns []string) error {
	if cell.Restored {
		s.cur = nil
		return nil
	}
	s.cur = newCellSummary(cell.Index, columns, s.sketchK)
	s.audit = adversary.Report{}
	return nil
}

func (s *CheckpointSink) Row(cell Cell, row Row) error {
	if s.cur == nil {
		return nil
	}
	return s.cur.observe(row.Values)
}

func (s *CheckpointSink) AuditEvent(cell Cell, report adversary.Report) error {
	if s.cur != nil {
		s.audit = report
	}
	return nil
}

func (s *CheckpointSink) CellDone(cell Cell) error {
	if s.cur == nil {
		return nil
	}
	rec := GridCellRecord{Index: cell.Index, Scenario: cell.Name, Seed: cell.Seed, Audit: s.audit, Summary: s.cur}
	s.cur = nil
	return s.w.Record(rec)
}

// MergeGridCheckpoints discovers every shard checkpoint in dir,
// validates the set is one complete n-way split of this grid
// (consistent headers, every shard file present, every cell recorded
// exactly once), and returns the records sorted by cell index — the
// order every summary derives from, which is what makes the merge
// shard-split-invariant.
func MergeGridCheckpoints(dir, fingerprint string, wantCells int) ([]GridCellRecord, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "full_grid_checkpoint_*of*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("experiments: no grid checkpoints in %s", dir)
	}
	sort.Strings(matches)
	count := -1
	seenShards := map[int]bool{}
	var all []GridCellRecord
	for _, path := range matches {
		var i, n int
		if _, err := fmt.Sscanf(filepath.Base(path), "full_grid_checkpoint_%dof%d.jsonl", &i, &n); err != nil {
			return nil, fmt.Errorf("experiments: unrecognised checkpoint name %s", path)
		}
		if count == -1 {
			count = n
		} else if n != count {
			return nil, fmt.Errorf("experiments: %s mixes shard splits (%d-way and %d-way)", dir, count, n)
		}
		shard := ShardSpec{Index: i, Count: n}
		if err := shard.Validate(); err != nil {
			return nil, err
		}
		recs, err := LoadGridCheckpoint(path, fingerprint, shard)
		if err != nil {
			return nil, err
		}
		seenShards[i] = true
		all = append(all, recs...)
	}
	for i := 0; i < count; i++ {
		if !seenShards[i] {
			return nil, fmt.Errorf("experiments: shard %d/%d checkpoint missing from %s", i, count, dir)
		}
	}
	seen := make(map[int]bool, len(all))
	for _, rec := range all {
		if seen[rec.Index] {
			return nil, fmt.Errorf("experiments: cell %d recorded twice across shard checkpoints", rec.Index)
		}
		seen[rec.Index] = true
	}
	if len(all) != wantCells {
		return nil, fmt.Errorf("experiments: shard checkpoints cover %d of %d cells; finish every shard before merging", len(all), wantCells)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Index < all[j].Index })
	return all, nil
}

// GridSummaryFromRecords rebuilds the audit-counter grid summary
// (full_grid_summary.csv) from checkpoint records, byte-identical to
// the table an unsharded run writes.
func GridSummaryFromRecords(cfg ScenarioGridConfig, records []GridCellRecord) *stats.Table {
	cells := make([]int, len(records))
	reports := make([]adversary.Report, len(records))
	for i, rec := range records {
		cells[i] = rec.Index
		reports[i] = rec.Audit
	}
	return gridSummaryTable(cfg, cells, reports)
}
