package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestWireRoundTripIdempotent checks that encode∘replay is the
// identity on wire bytes: streaming a grid through a WireSink and
// replaying those bytes into a second WireSink reproduces them
// exactly. This is the property the daemon's byte-identity contract
// rests on — a client re-encoding a received stream cannot drift.
func TestWireRoundTripIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation in -short mode")
	}
	cfg := smallGridConfig()
	var first bytes.Buffer
	if err := StreamScenarioGrid(cfg, NewWireSink(&first), StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := ReplayWire(bytes.NewReader(first.Bytes()), NewWireSink(&second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("replay re-encoding differs from original stream (%d vs %d bytes)", first.Len(), second.Len())
	}

	// The replayed stream also satisfies the Sink grammar end to end.
	rec := newRecordingSink()
	if err := ReplayWire(bytes.NewReader(first.Bytes()), rec); err != nil {
		t.Fatal(err)
	}
	if got, want := rec.cellCount(), len(cfg.Scenarios)*len(cfg.Seeds); got != want {
		t.Fatalf("replayed %d cells, want %d", got, want)
	}
}

// TestReplayWireGrammar rejects streams that violate the Sink event
// grammar, with the offending line identified.
func TestReplayWireGrammar(t *testing.T) {
	cases := []struct {
		name, stream, want string
	}{
		{
			name:   "row outside cell",
			stream: `{"event":"row","cell":0,"row":0,"values":[1]}`,
			want:   "row for cell 0 outside its cell",
		},
		{
			name: "row for wrong cell",
			stream: `{"event":"cell_start","cell":0,"columns":["x"]}
{"event":"row","cell":1,"row":0,"values":[1]}`,
			want: "row for cell 1 outside its cell",
		},
		{
			name: "cell_start while open",
			stream: `{"event":"cell_start","cell":0,"columns":["x"]}
{"event":"cell_start","cell":1,"columns":["x"]}`,
			want: "cell 1 started while cell 0 is open",
		},
		{
			name: "audit without report",
			stream: `{"event":"cell_start","cell":0,"columns":["x"]}
{"event":"audit","cell":0}`,
			want: "audit event without a report",
		},
		{
			name:   "cell_done outside cell",
			stream: `{"event":"cell_done","cell":0}`,
			want:   "cell_done for cell 0 outside its cell",
		},
		{
			name:   "unknown event",
			stream: `{"event":"cell_begin","cell":0}`,
			want:   `unknown event "cell_begin"`,
		},
		{
			name:   "truncated inside cell",
			stream: `{"event":"cell_start","cell":3,"columns":["x"]}`,
			want:   "stream ended inside cell 3",
		},
		{
			name:   "malformed json",
			stream: `{"event":`,
			want:   "wire line 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ReplayWire(strings.NewReader(tc.stream), newRecordingSink())
			if err == nil {
				t.Fatalf("stream accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if err := ReplayWire(strings.NewReader(""), nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

// TestStreamCachedReplayByteIdentical checks the completed-cell cache
// contract: a grid whose cells are all served from cached GridCells
// streams byte-identical wire events to a fresh simulation.
func TestStreamCachedReplayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation in -short mode")
	}
	cfg := smallGridConfig()
	res, err := RunScenarioGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fresh bytes.Buffer
	if err := StreamScenarioGrid(cfg, NewWireSink(&fresh), StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	cached := make(map[int]*GridCell, len(res.Cells))
	for i := range res.Cells {
		cached[i] = &res.Cells[i]
	}
	var warm bytes.Buffer
	if err := StreamScenarioGrid(cfg, NewWireSink(&warm), StreamOptions{Cached: cached}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), warm.Bytes()) {
		t.Fatalf("cached replay differs from fresh stream (%d vs %d bytes)", fresh.Len(), warm.Len())
	}
}

// TestStreamInterrupt checks the graceful-shutdown seam: with
// Interrupt already true, every cell fails with ErrInterrupted before
// simulating and nothing reaches the sink.
func TestStreamInterrupt(t *testing.T) {
	cfg := smallGridConfig()
	rec := newRecordingSink()
	err := StreamScenarioGrid(cfg, rec, StreamOptions{Interrupt: func() bool { return true }})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(rec.events) != 0 {
		t.Fatalf("%d events streamed from an interrupted-before-start grid, want 0", len(rec.events))
	}
}

// TestStreamInterruptSparesCachedCells checks that cached cells are
// still replayed when the interrupt is already raised — a draining
// daemon serves what it has without simulating anything new.
func TestStreamInterruptSparesCachedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation in -short mode")
	}
	if gridMaterialize {
		t.Skip("the materialize oracle collects the whole grid before emitting, so an interrupt error masks the cached replay")
	}
	cfg := smallGridConfig()
	res, err := RunScenarioGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached := map[int]*GridCell{0: &res.Cells[0]}
	rec := newRecordingSink()
	err = StreamScenarioGrid(cfg, rec, StreamOptions{Cached: cached, Interrupt: func() bool { return true }})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := rec.cellCount(); got != 1 {
		t.Fatalf("streamed %d cells, want exactly the cached one", got)
	}
	if len(rec.events) == 0 || rec.events[0].Cell.Index != 0 {
		t.Fatal("cached cell 0 was not the cell streamed")
	}
}
