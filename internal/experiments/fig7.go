package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Fig7Config parameterises the reward-trajectory comparison of Fig. 7:
// per-round and accumulated rewards of the adaptive mechanism versus the
// Foundation schedule across the first 12 reward periods (6M blocks), and
// the effect of removing small-stake nodes (panel c).
type Fig7Config struct {
	// Nodes is the population size.
	Nodes int
	// Runs averages the mechanism's B over independent populations.
	Runs int
	// Distributions are the panels of Fig. 7(a,b).
	Distributions []stake.Distribution
	// RemovalThresholds are the U_w(1,200) cutoffs of Fig. 7(c)
	// (paper: 3, 5, 7; 0 = no removal baseline).
	RemovalThresholds []float64
	// Periods is how many 500k-block reward periods to project (paper: 12).
	Periods int
	// Costs and Options configure Algorithm 1.
	Costs   game.RoleCosts
	Options core.Options
	Seed    int64
	// Workers bounds the run pool's parallelism (0 = GOMAXPROCS).
	Workers int
	// Sink optionally receives each trajectory as one cell of
	// (per_round, accumulated) rows, one per projected period.
	Sink Sink
}

// fig7Columns is the sink schema: one projected period per row.
var fig7Columns = []string{"per_round", "accumulated"}

// DefaultFig7Config is the laptop-scale configuration.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Nodes:             50_000,
		Runs:              10,
		Distributions:     PaperDistributions(),
		RemovalThresholds: []float64{0, 3, 5, 7},
		Periods:           12,
		Costs:             game.DefaultRoleCosts(),
		Seed:              1,
	}
}

// FullFig7Config uses the paper's 500k-node populations.
func FullFig7Config() Fig7Config {
	cfg := DefaultFig7Config()
	cfg.Nodes = 500_000
	cfg.Runs = 50
	return cfg
}

// Fig7Trajectory is one scheme's reward path over the projected periods.
type Fig7Trajectory struct {
	Label string
	// PerRound is the per-round reward in each period.
	PerRound []float64
	// Accumulated is the cumulative disbursement at each period boundary.
	Accumulated []float64
}

// Fig7Result bundles panels (a,b) trajectories and panel (c) removal
// trajectories.
type Fig7Result struct {
	Config     Fig7Config
	Foundation Fig7Trajectory
	Ours       []Fig7Trajectory // one per distribution
	Removal    []Fig7Trajectory // one per threshold, U(1,200) stakes
}

// RunFig7 executes the experiment.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.Periods < 1 || cfg.Nodes < 100 || cfg.Runs < 1 {
		return nil, errors.New("experiments: fig7 needs >=1 period, >=100 nodes, >=1 run")
	}
	if len(cfg.Distributions) == 0 {
		cfg.Distributions = PaperDistributions()
	}
	cfg.Sink = instrumentSink(cfg.Sink)
	res := &Fig7Result{Config: cfg}

	// Foundation schedule trajectory (Table III).
	var schedule rewards.Schedule
	res.Foundation = Fig7Trajectory{Label: "foundation"}
	acc := 0.0
	for p := 1; p <= cfg.Periods; p++ {
		perRound, err := schedule.RoundReward(uint64(p-1)*rewards.BlocksPerPeriod + 1)
		if err != nil {
			return nil, err
		}
		total, err := schedule.PeriodReward(p)
		if err != nil {
			return nil, err
		}
		acc += total
		res.Foundation.PerRound = append(res.Foundation.PerRound, perRound)
		res.Foundation.Accumulated = append(res.Foundation.Accumulated, acc)
	}

	// Our mechanism per distribution: the stake distribution is treated as
	// stationary across periods (the paper's Fig. 7 holds the distribution
	// fixed), so the per-round B is the run-averaged Algorithm 1 output.
	for di, dist := range cfg.Distributions {
		b, err := meanMechanismReward(cfg, dist, 0, int64(di))
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", dist.Name(), err)
		}
		res.Ours = append(res.Ours, flatTrajectory("ours "+dist.Name(), b, cfg.Periods))
	}

	// Panel (c): removal thresholds on U(1,200).
	base := stake.Uniform{A: 1, B: 200}
	for _, w := range cfg.RemovalThresholds {
		b, err := meanMechanismReward(cfg, base, w, 977)
		if err != nil {
			return nil, fmt.Errorf("fig7 removal w=%g: %w", w, err)
		}
		label := "U(1,200)"
		if w > 0 {
			label = fmt.Sprintf("U%g(1,200)", w)
		}
		res.Removal = append(res.Removal, flatTrajectory(label, b, cfg.Periods))
	}

	// Stream every trajectory as one cell, in presentation order.
	if cfg.Sink != nil {
		cellIdx := 0
		emit := func(tr Fig7Trajectory) error {
			cell := Cell{Index: cellIdx, Name: sanitize(tr.Label), Seed: cfg.Seed}
			cellIdx++
			if err := cfg.Sink.CellStart(cell, fig7Columns); err != nil {
				return err
			}
			if err := emitSeriesRows(cfg.Sink, cell, tr.PerRound, tr.Accumulated); err != nil {
				return err
			}
			return cfg.Sink.CellDone(cell)
		}
		if err := emit(res.Foundation); err != nil {
			return nil, err
		}
		for _, tr := range res.Ours {
			if err := emit(tr); err != nil {
				return nil, err
			}
		}
		for _, tr := range res.Removal {
			if err := emit(tr); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// meanMechanismReward averages Algorithm 1's B over fresh populations,
// optionally removing stakes below w from the rewarded set.
func meanMechanismReward(cfg Fig7Config, dist stake.Distribution, w float64, salt int64) (float64, error) {
	bs, err := runpool.Sweep(cfg.Runs, cfg.Workers, func(run int) (float64, error) {
		rng := sim.NewRNG(cfg.Seed+salt*104729+int64(run)*7919, "fig7")
		pop, err := stake.SamplePopulation(dist, cfg.Nodes, rng)
		if err != nil {
			return 0, err
		}
		if w > 0 {
			pop = pop.RemoveBelow(w)
			if pop.N() == 0 {
				return 0, fmt.Errorf("experiments: removal threshold %g empties the population", w)
			}
		}
		p, err := core.ComputeParameters(pop, cfg.Costs, cfg.Options)
		if err != nil {
			return 0, err
		}
		return p.B, nil
	})
	if err != nil {
		return 0, err
	}
	return runpool.MeanOf(bs, func(b float64) float64 { return b }), nil
}

func flatTrajectory(label string, perRound float64, periods int) Fig7Trajectory {
	t := Fig7Trajectory{Label: label}
	acc := 0.0
	for p := 1; p <= periods; p++ {
		acc += perRound * rewards.BlocksPerPeriod
		t.PerRound = append(t.PerRound, perRound)
		t.Accumulated = append(t.Accumulated, acc)
	}
	return t
}

// Table renders per-period per-round rewards for all trajectories.
func (r *Fig7Result) Table() *stats.Table {
	t := &stats.Table{}
	t.AddColumn("period", indexColumn(r.Config.Periods))
	t.AddColumn("foundation_perround", r.Foundation.PerRound)
	t.AddColumn("foundation_accum", r.Foundation.Accumulated)
	for _, tr := range r.Ours {
		t.AddColumn(sanitize(tr.Label)+"_perround", tr.PerRound)
		t.AddColumn(sanitize(tr.Label)+"_accum", tr.Accumulated)
	}
	for _, tr := range r.Removal {
		t.AddColumn(sanitize(tr.Label)+"_accum", tr.Accumulated)
	}
	return t
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WriteSummary prints headline savings numbers.
func (r *Fig7Result) WriteSummary(w io.Writer) error {
	last := r.Config.Periods - 1
	if _, err := fmt.Fprintf(w, "foundation: period-1 per-round %.1f Algos, accumulated after %d periods %.3g Algos\n",
		r.Foundation.PerRound[0], r.Config.Periods, r.Foundation.Accumulated[last]); err != nil {
		return err
	}
	for _, tr := range r.Ours {
		saving := 100 * (1 - tr.Accumulated[last]/r.Foundation.Accumulated[last])
		if _, err := fmt.Fprintf(w, "%-20s per-round %8.3f Algos, accumulated %.3g Algos (%.1f%% below foundation)\n",
			tr.Label, tr.PerRound[0], tr.Accumulated[last], saving); err != nil {
			return err
		}
	}
	for _, tr := range r.Removal {
		if _, err := fmt.Fprintf(w, "removal %-12s per-round %8.3f Algos, accumulated %.3g Algos\n",
			tr.Label, tr.PerRound[0], tr.Accumulated[last]); err != nil {
			return err
		}
	}
	return nil
}
