package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// The telemetry determinism contract: every simulation output must be
// byte-identical with metrics disabled, enabled, or scraped mid-run,
// and the deterministic registry totals must be identical at any worker
// count. These tests drive the two main streaming producers — the fig3
// sweep and a scenario grid cell — through all three telemetry states.

// obsFig3 runs a small fig3 sweep (with a recording sink, so the sink
// pipeline is exercised too) and returns the rendered CSV.
func obsFig3(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := DefaultFig3Config()
	cfg.Runs = 4
	cfg.Rounds = 8
	cfg.DefectionRates = []float64{0.10, 0.20}
	cfg.Workers = workers
	rec := newRecordingSink()
	cfg.Sink = rec
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Table().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(fmt.Sprintf("sink: %d events\n", len(rec.events)))
	return buf.Bytes()
}

// obsGridCell streams a 2-cell scenario grid and returns every sink
// event rendered to text.
func obsGridCell(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := FullScenarioGridConfig()
	cfg.Scenarios = []string{"honest_baseline", "crash_churn"}
	cfg.Seeds = []int64{1}
	cfg.Nodes = 60
	cfg.Rounds = 6
	cfg.Workers = workers
	rec := newRecordingSink()
	if err := StreamScenarioGrid(cfg, rec, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, ev := range rec.events {
		fmt.Fprintf(&buf, "%+v\n", ev)
	}
	return buf.Bytes()
}

func TestTelemetryDeterminism(t *testing.T) {
	if !obs.Enabled {
		t.Skip("obs_off build")
	}
	drivers := []struct {
		name string
		run  func(t *testing.T, workers int) []byte
	}{
		{"fig3", obsFig3},
		{"grid_cell", obsGridCell},
	}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			obs.Disable()
			baseline := d.run(t, 1)

			// Metrics enabled: outputs byte-identical, and the registry's
			// deterministic totals must not depend on the worker count.
			totals := make([]map[string]uint64, 0, 2)
			for _, workers := range []int{1, 8} {
				obs.Disable()
				obs.Enable()
				got := d.run(t, workers)
				if !bytes.Equal(baseline, got) {
					t.Fatalf("output with metrics on (workers=%d) differs from metrics-off baseline", workers)
				}
				totals = append(totals, obs.Default().DeterministicTotals())
				obs.Disable()
			}
			if len(totals[0]) == 0 {
				t.Fatal("enabled run registered no deterministic metrics")
			}
			if fmt.Sprint(totals[0]) != fmt.Sprint(totals[1]) {
				t.Fatalf("deterministic totals differ between 1 and 8 workers:\n %v\n %v", totals[0], totals[1])
			}

			// Scraped concurrently mid-run: a scraper hammering the
			// Prometheus exporter must not change a byte of output.
			obs.Disable()
			reg := obs.Enable()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if err := reg.WritePrometheus(io.Discard); err != nil {
							panic(err)
						}
					}
				}
			}()
			got := d.run(t, 4)
			close(stop)
			wg.Wait()
			obs.Disable()
			if !bytes.Equal(baseline, got) {
				t.Fatal("output while scraped concurrently differs from baseline")
			}
		})
	}
}

// The sink instrumentation must count exactly what flowed through and
// classify audit events by severity.
func TestInstrumentedSinkCounts(t *testing.T) {
	if !obs.Enabled {
		t.Skip("obs_off build")
	}
	obs.Disable()
	obs.Enable()
	defer obs.Disable()

	cfg := DefaultScenarioConfig("crash_churn")
	cfg.Nodes = 60
	cfg.Rounds = 6
	cfg.Runs = 3
	cfg.Workers = 1
	rec := newRecordingSink()
	cfg.Sink = rec
	if _, err := RunScenario(cfg); err != nil {
		t.Fatal(err)
	}
	totals := obs.Default().DeterministicTotals()
	if got := totals["exp_cells_done_total"]; got != uint64(cfg.Runs) {
		t.Fatalf("exp_cells_done_total = %d, want %d", got, cfg.Runs)
	}
	if got := totals["exp_rows_streamed_total"]; got != uint64(cfg.Runs*cfg.Rounds) {
		t.Fatalf("exp_rows_streamed_total = %d, want %d", got, cfg.Runs*cfg.Rounds)
	}
	audits := uint64(0)
	for key, v := range totals {
		if len(key) > len("exp_audit_events_total") && key[:len("exp_audit_events_total")] == "exp_audit_events_total" {
			audits += v
		}
	}
	if audits != uint64(cfg.Runs) {
		t.Fatalf("audit events by kind sum to %d, want %d", audits, cfg.Runs)
	}
	if got := totals["pool_runs_completed_total"]; got != uint64(cfg.Runs) {
		t.Fatalf("pool_runs_completed_total = %d, want %d", got, cfg.Runs)
	}
}

// A trace attached to run 0 must record spans without changing output,
// and only run 0 writes it.
func TestTraceDoesNotPerturbFig3(t *testing.T) {
	if !obs.Enabled {
		t.Skip("obs_off build")
	}
	obs.Disable()
	baseline := obsFig3(t, 1)

	cfg := DefaultFig3Config()
	cfg.Runs = 4
	cfg.Rounds = 8
	cfg.DefectionRates = []float64{0.10, 0.20}
	cfg.Workers = 4
	cfg.Trace = obs.NewTrace(obs.DefaultTracePanel)
	rec := newRecordingSink()
	cfg.Sink = rec
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Table().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(fmt.Sprintf("sink: %d events\n", len(rec.events)))
	if !bytes.Equal(baseline, buf.Bytes()) {
		t.Fatal("tracing changed the fig3 output")
	}
	if cfg.Trace.Len() == 0 {
		t.Fatal("trace recorded no events")
	}
	var out bytes.Buffer
	if err := cfg.Trace.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
}
