package experiments

import (
	"reflect"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// TestFig3IndexedBitIdentical pins the incremental index against the
// ledger-direct default at the figure level: fig3 runs commit no reward
// or transaction mutations, so the index's initial index-order sum is
// never re-accumulated and both backends must agree bit-for-bit. CI
// re-runs this under -tags weight_ledgerdirect, where the indexed
// selection is forced to ledger-direct and equality is the tag's
// sanity check.
func TestFig3IndexedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultFig3Config()
	cfg.Runs = 3
	cfg.Rounds = 4
	cfg.DefectionRates = []float64{0.15}

	cfg.WeightBackend = weight.BackendLedgerDirect
	direct, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WeightBackend = weight.BackendIndexed
	indexed, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Series, indexed.Series) {
		t.Errorf("fig3 ledger-direct vs indexed diverged:\n%+v\nvs\n%+v", direct.Series, indexed.Series)
	}
}

// TestFig3ZipfChurnDeterministicAcrossWorkers extends the run-pool
// determinism contract to the synthetic backend: a Zipf profile with a
// mid-sweep churn schedule must produce byte-identical figures at every
// worker count (profiles are pure functions of each run's seed).
func TestFig3ZipfChurnDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultFig3Config()
	cfg.Runs = 3
	cfg.Rounds = 4
	cfg.DefectionRates = []float64{0.15}
	cfg.WeightProfile = ZipfProfile(1.1, 25.5, weight.ChurnStep{Round: 2, Frac: 0.2, Scale: 0.5})

	cfg.Workers = 1
	serial, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Errorf("fig3 zipf+churn workers=1 vs workers=8 diverged:\n%+v\nvs\n%+v", serial.Series, parallel.Series)
	}
}

// TestScenarioIndexedBitIdentical pins backend equivalence on the
// adversary path too: scenario sweeps drive churn/eclipse overlays but
// still commit no ledger mutations, so the backends must agree exactly
// (including the audit counters).
func TestScenarioIndexedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultScenarioConfig("eclipse_equivocation")
	cfg.Runs = 2
	cfg.Rounds = 4

	cfg.WeightBackend = weight.BackendLedgerDirect
	direct, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WeightBackend = weight.BackendIndexed
	indexed, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Final, indexed.Final) ||
		!reflect.DeepEqual(direct.Tentative, indexed.Tentative) ||
		!reflect.DeepEqual(direct.None, indexed.None) ||
		!reflect.DeepEqual(direct.Audit, indexed.Audit) {
		t.Errorf("scenario ledger-direct vs indexed diverged")
	}
}

func TestParseWeightProfile(t *testing.T) {
	if p, err := ParseWeightProfile(""); err != nil || p != nil {
		t.Fatalf("empty spec: profile %v, err %v", p, err)
	}
	p, err := ParseWeightProfile("zipf:1.3:40;churn@5:0.1:0,9:0.2:2")
	if err != nil {
		t.Fatal(err)
	}
	o := p(100, 7)
	if o.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", o.NumNodes())
	}
	// Mean stake honoured before churn fires.
	if got, want := o.TotalWeight(1), 40*100.0; got < want*0.999 || got > want*1.001 {
		t.Fatalf("TotalWeight = %v, want ~%v", got, want)
	}
	for _, bad := range []string{"pareto", "zipf:x", "zipf:1:2:3", "zipf:1;churn@5:0.1", "zipf:1;decay@5:0.1:0"} {
		if _, err := ParseWeightProfile(bad); err == nil {
			t.Fatalf("spec %q: want error", bad)
		}
	}
}

func TestParseWeightBackend(t *testing.T) {
	for spec, want := range map[string]weight.Backend{
		"":              weight.BackendLedgerDirect,
		"direct":        weight.BackendLedgerDirect,
		"ledger-direct": weight.BackendLedgerDirect,
		"indexed":       weight.BackendIndexed,
	} {
		got, err := ParseWeightBackend(spec)
		if err != nil || got != want {
			t.Fatalf("ParseWeightBackend(%q) = %v, %v", spec, got, err)
		}
	}
	if _, err := ParseWeightBackend("fenwick"); err == nil {
		t.Fatal("want error for unknown backend name")
	}
}
