package experiments

import (
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/rewards"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Table3Row is one reward period of the Foundation schedule.
type Table3Row struct {
	Period           int
	ProjectedMillion float64
	PerRound         float64
}

// Table3Result reproduces Table III: the projected reward of the first 12
// reward periods and the implied per-round reward.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 evaluates the schedule.
func RunTable3() (*Table3Result, error) {
	var schedule rewards.Schedule
	res := &Table3Result{}
	for p := 1; p <= schedule.Periods(); p++ {
		total, err := schedule.PeriodReward(p)
		if err != nil {
			return nil, err
		}
		firstRound := uint64(p-1)*rewards.BlocksPerPeriod + 1
		perRound, err := schedule.RoundReward(firstRound)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Period:           p,
			ProjectedMillion: total / 1e6,
			PerRound:         perRound,
		})
	}
	return res, nil
}

// Table renders the schedule.
func (r *Table3Result) Table() *stats.Table {
	periods := make([]float64, len(r.Rows))
	millions := make([]float64, len(r.Rows))
	perRound := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		periods[i] = float64(row.Period)
		millions[i] = row.ProjectedMillion
		perRound[i] = row.PerRound
	}
	t := &stats.Table{}
	t.AddColumn("period", periods)
	t.AddColumn("projected_millions", millions)
	t.AddColumn("per_round_algos", perRound)
	return t
}

// WriteSummary prints the schedule rows.
func (r *Table3Result) WriteSummary(w io.Writer) error {
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "period %2d: %4.0fM Algos projected, %5.1f Algos per round\n",
			row.Period, row.ProjectedMillion, row.PerRound); err != nil {
			return err
		}
	}
	return nil
}
