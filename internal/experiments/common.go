package experiments

import (
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// CommonConfig is the execution-shaping knob set every sweep config
// shares, embedded (and field-promoted) into Fig3Config, ScenarioConfig
// and ScenarioGridConfig so the run pool, the weight-oracle seam, the
// sparse round path and the streaming sink are spelled once instead of
// re-declared per driver. None of its fields changes a single output
// bit: worker counts are aggregation-neutral by runpool's contract,
// backends are pinned equivalent by the differential oracles, and the
// sink only observes.
type CommonConfig struct {
	// Workers bounds the run pool's parallelism (0 = GOMAXPROCS). The
	// result is identical for every worker count.
	Workers int
	// WeightBackend selects the ledger-backed weight oracle per run; the
	// zero value (ledger-direct) reads stakes exactly as before the
	// oracle seam.
	WeightBackend weight.Backend
	// WeightProfile, when set, replaces ledger weights with a synthetic
	// per-run oracle (see ZipfProfile); StakeDist still seeds the
	// on-chain balances, but sortition no longer reads them.
	WeightProfile WeightProfile
	// Sparse selects the protocol round path per run. The zero value
	// (SparseAuto) engages the sparse-committee path automatically for
	// populations of protocol.SparseAutoThreshold and above when the
	// committee taus are absolute, and keeps the dense path otherwise.
	Sparse protocol.SparseMode
	// Sink, when non-nil, receives the driver's results as a stream of
	// cells, rows and audit events in deterministic order (see Sink), in
	// addition to — never instead of — the returned result value.
	Sink Sink
	// Trace, when non-nil, records a Chrome-trace timeline of round,
	// step and gossip phases. A trace is single-writer, so drivers
	// attach it to exactly one simulation — the first run (or first
	// grid cell) of the sweep — and leave every other run untraced.
	// Timestamps are virtual simulation time, so the recorded events
	// are as deterministic as the run itself.
	Trace *obs.Trace
}
