package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/stake"
)

func TestTable3MatchesPaper(t *testing.T) {
	res, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(res.Rows))
	}
	wantMillions := []float64{10, 13, 16, 19, 22, 25, 28, 31, 34, 36, 38, 38}
	for i, row := range res.Rows {
		if row.ProjectedMillion != wantMillions[i] {
			t.Errorf("period %d projected %vM, want %vM", row.Period, row.ProjectedMillion, wantMillions[i])
		}
		wantPerRound := wantMillions[i] * 1e6 / 500_000
		if math.Abs(row.PerRound-wantPerRound) > 1e-9 {
			t.Errorf("period %d per-round %v, want %v", row.Period, row.PerRound, wantPerRound)
		}
	}
	var sb strings.Builder
	if err := res.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "20.0 Algos per round") {
		t.Errorf("summary missing period-1 reward:\n%s", sb.String())
	}
	if res.Table().Rows() != 12 {
		t.Error("table rows mismatch")
	}
}

func TestFig5GridNearPaperOptimum(t *testing.T) {
	res, err := RunFig5(DefaultFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈5.2 Algos at (α, β) = (0.02, 0.03) with a 1% grid.
	if res.GridBest.B < 4.8 || res.GridBest.B > 5.6 {
		t.Errorf("grid best B = %v, want ~5.2", res.GridBest.B)
	}
	if res.GridBest.Alpha > 0.06 || res.GridBest.Beta > 0.06 {
		t.Errorf("grid optimum at (%v, %v), expected small shares", res.GridBest.Alpha, res.GridBest.Beta)
	}
	if res.Optimal.MinB > res.GridBest.B {
		t.Error("analytic optimum worse than grid")
	}
	if got := len(res.Surface); got != 30*30 {
		t.Errorf("surface has %d points, want 900", got)
	}
	if res.Table().Rows() != 900 {
		t.Error("fig5 table rows mismatch")
	}
}

func TestFig5Validation(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Steps = 1
	if _, err := RunFig5(cfg); err == nil {
		t.Error("steps=1 accepted")
	}
	cfg = DefaultFig5Config()
	cfg.Inputs.SL = 0
	if _, err := RunFig5(cfg); err == nil {
		t.Error("invalid inputs accepted")
	}
}

func TestFig6Ordering(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Nodes = 20_000
	cfg.Runs = 3
	cfg.RoundsPerRun = 2
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("got %d panels", len(res.Panels))
	}
	// Paper ordering: U(1,200) needs the largest reward; N(2000,25)
	// (stake-rich network) the smallest.
	u200 := res.Panels[0].Summary.Mean
	n2000 := res.Panels[3].Summary.Mean
	if u200 <= res.Panels[1].Summary.Mean || u200 <= res.Panels[2].Summary.Mean {
		t.Errorf("U(1,200) should dominate: %v vs %v, %v",
			u200, res.Panels[1].Summary.Mean, res.Panels[2].Summary.Mean)
	}
	if n2000 >= u200 {
		t.Errorf("N(2000,25) should need less than U(1,200): %v >= %v", n2000, u200)
	}
	// Shares must be valid.
	for _, p := range res.Panels {
		if p.MeanAlpha <= 0 || p.MeanBeta <= 0 || p.MeanGamma <= 0 {
			t.Errorf("%s: invalid mean shares %+v", p.Distribution, p)
		}
	}
	h, err := res.Panels[0].Histogram(10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(res.Panels[0].Rewards) {
		t.Error("histogram lost samples")
	}
}

func TestFig6Validation(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Nodes = 10
	if _, err := RunFig6(cfg); err == nil {
		t.Error("tiny population accepted")
	}
}

func TestFig7SavingsAndRemoval(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.Nodes = 20_000
	cfg.Runs = 2
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Foundation trajectory follows Table III: 20 Algos/round in period 1,
	// accumulating 310M Algos over 12 periods.
	if res.Foundation.PerRound[0] != 20 {
		t.Errorf("foundation period-1 per-round = %v", res.Foundation.PerRound[0])
	}
	last := cfg.Periods - 1
	if math.Abs(res.Foundation.Accumulated[last]-310e6) > 1 {
		t.Errorf("foundation accumulated = %v, want 310M", res.Foundation.Accumulated[last])
	}
	// Our mechanism beats the schedule for every distribution at this
	// scale.
	for _, tr := range res.Ours {
		if tr.Accumulated[last] >= res.Foundation.Accumulated[last] {
			t.Errorf("%s accumulated %v not below foundation", tr.Label, tr.Accumulated[last])
		}
	}
	// Removal thresholds shrink the reward monotonically (Fig. 7-c).
	for i := 1; i < len(res.Removal); i++ {
		if res.Removal[i].PerRound[0] >= res.Removal[i-1].PerRound[0] {
			t.Errorf("removal %s per-round %v >= previous %v",
				res.Removal[i].Label, res.Removal[i].PerRound[0], res.Removal[i-1].PerRound[0])
		}
	}
	if res.Table().Rows() != cfg.Periods {
		t.Error("fig7 table rows mismatch")
	}
}

func TestFig7Validation(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.Periods = 0
	if _, err := RunFig7(cfg); err == nil {
		t.Error("zero periods accepted")
	}
}

func TestEquilibriumValidation(t *testing.T) {
	cfg := DefaultEquilibriumConfig()
	cfg.Leaders = 1
	if _, err := RunEquilibrium(cfg); err == nil {
		t.Error("single leader accepted (theorems need nL > 1)")
	}
}

func TestFig3Validation(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.Nodes = 5
	if _, err := RunFig3(cfg); err == nil {
		t.Error("tiny network accepted")
	}
}

func TestFig3MonotoneDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	cfg := DefaultFig3Config()
	cfg.Runs = 3
	cfg.Rounds = 8
	cfg.DefectionRates = []float64{0.05, 0.30}
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, high := res.Series[0], res.Series[1]
	if low.MeanFinal() <= high.MeanFinal() {
		t.Errorf("5%% defection final %v should exceed 30%% final %v",
			low.MeanFinal(), high.MeanFinal())
	}
	if high.MeanFinal() > 0.2 {
		t.Errorf("30%% defection should collapse: final %v", high.MeanFinal())
	}
	if low.MeanNone() >= high.MeanNone() {
		t.Errorf("no-block fraction should grow with defection: %v vs %v",
			low.MeanNone(), high.MeanNone())
	}
	tbl := res.Table()
	if tbl.Rows() != cfg.Rounds {
		t.Error("fig3 table rows mismatch")
	}
}

func TestPaperDistributions(t *testing.T) {
	dists := PaperDistributions()
	want := []string{"U(1,200)", "N(100,20)", "N(100,10)", "N(2000,25)"}
	if len(dists) != len(want) {
		t.Fatalf("got %d distributions", len(dists))
	}
	for i, d := range dists {
		if d.Name() != want[i] {
			t.Errorf("distribution %d = %s, want %s", i, d.Name(), want[i])
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("ours U(1,200)"); got != "ours_U_1_200_" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestMeanMechanismRewardRemovalError(t *testing.T) {
	cfg := DefaultFig7Config()
	cfg.Nodes = 1000
	cfg.Runs = 1
	if _, err := meanMechanismReward(cfg, stake.Uniform{A: 1, B: 2}, 100, 1); err == nil {
		t.Error("removal emptying the population accepted")
	}
}
