package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/stake"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// CostsConfig parameterises the cost-accounting experiment: run the
// protocol simulator with task metering and compare the measured
// per-behaviour expenditure against the Eq. 1–2 role-cost aggregates.
type CostsConfig struct {
	Nodes     int
	Rounds    int
	Defection float64
	Seed      int64
	TaskCosts game.TaskCosts
}

// DefaultCostsConfig runs 100 nodes for 12 rounds at 10% defection.
func DefaultCostsConfig() CostsConfig {
	return CostsConfig{
		Nodes:     100,
		Rounds:    12,
		Defection: 0.10,
		Seed:      1,
		TaskCosts: game.DefaultTaskCosts(),
	}
}

// CostsResult carries the measured per-behaviour per-round expenditure.
type CostsResult struct {
	Config CostsConfig
	// HonestPerRound is the mean per-round cost of an honest node in
	// Algos; SelfishPerRound likewise for defectors.
	HonestPerRound  float64
	SelfishPerRound float64
	// HonestCounts / SelfishCounts are the pooled task counters.
	HonestCounts  protocol.TaskCounts
	SelfishCounts protocol.TaskCounts
	honestNodes   int
	selfishNodes  int
}

// RunCosts executes the experiment.
func RunCosts(cfg CostsConfig) (*CostsResult, error) {
	if cfg.Nodes < 10 || cfg.Rounds < 1 {
		return nil, errors.New("experiments: costs needs >=10 nodes and >=1 round")
	}
	rng := sim.NewRNG(cfg.Seed, "costs.setup")
	pop, err := stake.SamplePopulation(stake.UniformInt{A: 1, B: 50}, cfg.Nodes, rng)
	if err != nil {
		return nil, err
	}
	behaviors := make([]protocol.Behavior, cfg.Nodes)
	for i := range behaviors {
		behaviors[i] = protocol.Honest
	}
	for _, idx := range rng.Perm(cfg.Nodes)[:int(cfg.Defection*float64(cfg.Nodes))] {
		behaviors[idx] = protocol.Selfish
	}
	runner, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    pop.Stakes,
		Behaviors: behaviors,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// A little transaction load so verification costs register.
	for i := 0; i < 32; i++ {
		from := rng.Intn(cfg.Nodes)
		to := rng.Intn(cfg.Nodes)
		if from != to {
			runner.SubmitTransactionFee(from, to, 0.5, 0.01)
		}
	}
	runner.RunRounds(cfg.Rounds)

	res := &CostsResult{Config: cfg}
	for i, counts := range runner.TaskCounts() {
		if behaviors[i] == protocol.Selfish {
			res.SelfishCounts.Add(counts)
			res.selfishNodes++
		} else {
			res.HonestCounts.Add(counts)
			res.honestNodes++
		}
	}
	perRound := float64(cfg.Rounds)
	if res.honestNodes > 0 {
		res.HonestPerRound = res.HonestCounts.Cost(cfg.TaskCosts) / float64(res.honestNodes) / perRound
	}
	if res.selfishNodes > 0 {
		res.SelfishPerRound = res.SelfishCounts.Cost(cfg.TaskCosts) / float64(res.selfishNodes) / perRound
	}
	return res, nil
}

// Table renders the per-behaviour costs in µAlgos per round.
func (r *CostsResult) Table() *stats.Table {
	t := &stats.Table{}
	t.AddColumn("honest_microalgos_round", []float64{r.HonestPerRound / game.MicroAlgo})
	t.AddColumn("selfish_microalgos_round", []float64{r.SelfishPerRound / game.MicroAlgo})
	roles := game.RoleCosts{}
	roles = r.Config.TaskCosts.Roles()
	t.AddColumn("model_cK_microalgos", []float64{roles.Other / game.MicroAlgo})
	t.AddColumn("model_cso_microalgos", []float64{roles.Sortition / game.MicroAlgo})
	return t
}

// WriteSummary prints measured-vs-model cost lines.
func (r *CostsResult) WriteSummary(w io.Writer) error {
	roles := r.Config.TaskCosts.Roles()
	_, err := fmt.Fprintf(w,
		"measured per-round cost: honest %.2f µAlgos, selfish %.2f µAlgos\n"+
			"cost model (Eq. 2): c^K = %.2f µAlgos (others), c^M = %.2f, c^L = %.2f, c_so = %.2f\n"+
			"selfish nodes pay exactly c_so; honest nodes pay c^K plus their realised role duties\n",
		r.HonestPerRound/game.MicroAlgo, r.SelfishPerRound/game.MicroAlgo,
		roles.Other/game.MicroAlgo, roles.Committee/game.MicroAlgo,
		roles.Leader/game.MicroAlgo, roles.Sortition/game.MicroAlgo)
	return err
}
