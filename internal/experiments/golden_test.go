package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// updateGolden regenerates the pinned outputs under testdata/. Run
//
//	go test ./internal/experiments -run TestGolden -update
//
// after an intentional behaviour change; any other diff against the
// goldens is a regression. The goldens were first generated from the
// pre-optimization hot path, so they prove the allocation-lean round
// loop is bit-for-bit identical to the original implementation.
var updateGolden = flag.Bool("update", false, "rewrite testdata/*.golden.json")

// goldenWorkers are the run-pool widths every golden is checked at; the
// figure outputs must be identical for all of them.
var goldenWorkers = []int{1, 8}

// goldenCase produces one experiment's pinned table for a given worker
// count. Configurations are deliberately small (seconds, not minutes) but
// exercise the full protocol/sortition hot path at fixed seeds.
type goldenCase struct {
	name string
	run  func(workers int) (*stats.Table, error)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "table3", run: func(workers int) (*stats.Table, error) {
			res, err := RunTable3()
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{name: "fig3", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultFig3Config()
			cfg.Runs = 3
			cfg.Rounds = 4
			cfg.DefectionRates = []float64{0.05, 0.15}
			cfg.Workers = workers
			res, err := RunFig3(cfg)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{name: "fig5", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultFig5Config()
			cfg.Workers = workers
			res, err := RunFig5(cfg)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{name: "fig6", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultFig6Config()
			cfg.Nodes = 2_000
			cfg.Runs = 4
			cfg.RoundsPerRun = 2
			cfg.Workers = workers
			res, err := RunFig6(cfg)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{name: "fig7", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultFig7Config()
			cfg.Nodes = 2_000
			cfg.Runs = 4
			cfg.Workers = workers
			res, err := RunFig7(cfg)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
		{name: "equilibrium", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultEquilibriumConfig()
			cfg.Samples = 12
			cfg.Workers = workers
			res, err := RunEquilibrium(cfg)
			if err != nil {
				return nil, err
			}
			n := float64(res.Config.Samples)
			t := &stats.Table{}
			t.AddColumn("theorem1", []float64{float64(res.Theorem1) / n})
			t.AddColumn("theorem2", []float64{float64(res.Theorem2) / n})
			t.AddColumn("lemma1", []float64{float64(res.Lemma1) / n})
			t.AddColumn("theorem3", []float64{float64(res.Theorem3) / n})
			t.AddColumn("tightness", []float64{float64(res.Tightness) / n})
			return t, nil
		}},
		{name: "weaksync", run: func(workers int) (*stats.Table, error) {
			cfg := DefaultWeakSyncConfig()
			cfg.Runs = 3
			cfg.Rounds = 10
			cfg.WindowFrom, cfg.WindowTo = 4, 5
			cfg.Workers = workers
			res, err := RunWeakSync(cfg)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

// marshalTable renders a table as indented JSON. encoding/json emits
// float64 with shortest-round-trip precision, so the comparison is exact
// to the last bit.
func marshalTable(t *stats.Table) ([]byte, error) {
	out, err := json.MarshalIndent(t.Columns, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			var first []byte
			for _, workers := range goldenWorkers {
				table, err := gc.run(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got, err := marshalTable(table)
				if err != nil {
					t.Fatalf("workers=%d: marshal: %v", workers, err)
				}
				if first == nil {
					first = got
				} else if string(first) != string(got) {
					t.Fatalf("workers=%d output differs from workers=%d", workers, goldenWorkers[0])
				}
			}
			path := goldenPath(gc.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, first, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if string(want) != string(first) {
				t.Fatal(diffHint(gc.name, want, first))
			}
		})
	}
}

// diffHint reports the first differing line so a golden failure is
// actionable without external tooling.
func diffHint(name string, want, got []byte) string {
	w, g := string(want), string(got)
	line := 1
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("%s: output diverges from golden at byte %d (line %d); rerun with -update only if the change is intentional", name, i, line)
		}
		if w[i] == '\n' {
			line++
		}
	}
	return fmt.Sprintf("%s: output length %d differs from golden length %d", name, len(g), len(w))
}
