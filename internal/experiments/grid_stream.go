package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
)

// ShardSpec deterministically partitions the grid's cell axis across N
// cooperating processes: shard i of n owns every cell whose global
// index is congruent to i mod n. The zero value means "the whole grid"
// (shard 0 of 1). Because ownership is a pure function of the global
// cell index, any shard split covers every cell exactly once and the
// per-cell results are independent of the split — merging shard
// outputs in cell-index order reproduces the unsharded outputs byte
// for byte (runpool's determinism contract, extended across
// processes).
type ShardSpec struct {
	// Index is the shard's position in [0, Count).
	Index int
	// Count is the total number of shards (0 is normalized to 1).
	Count int
}

// normalized maps the zero value to the canonical 0/1 whole-grid spec.
func (s ShardSpec) normalized() ShardSpec {
	if s.Count == 0 && s.Index == 0 {
		return ShardSpec{Index: 0, Count: 1}
	}
	return s
}

// Validate rejects impossible specs.
func (s ShardSpec) Validate() error {
	s = s.normalized()
	if s.Count < 1 {
		return fmt.Errorf("experiments: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// Owns reports whether this shard runs the given global cell index.
func (s ShardSpec) Owns(cell int) bool {
	s = s.normalized()
	return cell%s.Count == s.Index
}

// String renders the spec in the CLI's "i/n" form.
func (s ShardSpec) String() string {
	s = s.normalized()
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses a CLI "i/n" shard spec; the empty string means the
// whole grid.
func ParseShard(spec string) (ShardSpec, error) {
	if spec == "" {
		return ShardSpec{}, nil
	}
	lo, hi, ok := strings.Cut(spec, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("experiments: shard spec %q is not i/n", spec)
	}
	i, err1 := strconv.Atoi(lo)
	n, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || n < 1 {
		return ShardSpec{}, fmt.Errorf("experiments: shard spec %q is not i/n", spec)
	}
	s := ShardSpec{Index: i, Count: n}
	if err := s.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return s, nil
}

// StreamOptions shape one streaming execution of a grid without being
// part of the experiment's identity: the same grid config streamed
// under any shard split or restore set produces the same per-cell
// events.
type StreamOptions struct {
	// Shard restricts execution to the cells this shard owns (zero
	// value: the whole grid).
	Shard ShardSpec
	// Restored maps global cell indices to checkpointed audits. Those
	// cells are not re-simulated: they stream as Restored cells carrying
	// only their audit event, so summaries still cover the whole grid
	// while an interrupted run resumes where it stopped.
	Restored map[int]adversary.Report
	// Cached maps global cell indices to previously completed cells
	// (rows and audit). Those cells are not re-simulated either, but —
	// unlike Restored — they replay their full row stream, so the sink
	// observes a byte-identical event sequence to a fresh simulation.
	// This is the simulation daemon's completed-cell cache seam: entries
	// must be exact prior results for this cell's configuration (see
	// GridCellFingerprint) and are never mutated by the driver.
	Cached map[int]*GridCell
	// Interrupt, when non-nil, is polled before each cell executes; once
	// it returns true every remaining cell fails with ErrInterrupted
	// instead of simulating, so the stream stops at a cell boundary:
	// cells completed before the interrupt have fully streamed (and, with
	// a CheckpointSink attached, are durable), cells after it cost
	// nothing. This is the graceful-shutdown seam — a later run restoring
	// the checkpoint resumes exactly where the interrupt landed.
	Interrupt func() bool
}

// ErrInterrupted is the per-cell failure StreamScenarioGrid reports once
// StreamOptions.Interrupt fires; test with errors.Is (the run pool wraps
// it with the failing cell's index).
var ErrInterrupted = errors.New("experiments: grid interrupted")

// gridCellOut is one streamed cell in flight between the run pool and
// the fold.
type gridCellOut struct {
	cell     GridCell
	restored bool
}

// emitGridCell streams one completed cell into the sink: its rows
// (unless restored), its audit, and the cell close. One scratch row is
// reused across rounds per the Row.Values contract.
func emitGridCell(sink Sink, cell Cell, c *GridCell) error {
	if err := sink.CellStart(cell, outcomeColumns); err != nil {
		return err
	}
	if !cell.Restored {
		if err := emitSeriesRows(sink, cell, c.Final, c.Tentative, c.None); err != nil {
			return err
		}
	}
	if err := sink.AuditEvent(cell, c.Audit); err != nil {
		return err
	}
	return sink.CellDone(cell)
}

// StreamScenarioGrid executes the grid's cells through the
// deterministic run pool and streams each completed cell into the sink
// in ascending global-index order, retaining only the in-flight cells
// (bounded by worker completion skew) instead of the whole grid —
// O(rounds × workers) live rows instead of O(cells × rounds). Under
// the grid_materialize build tag the legacy collect-then-replay path
// runs instead and must produce a byte-identical event stream: the
// differential oracle CI exercises.
func StreamScenarioGrid(cfg ScenarioGridConfig, sink Sink, opt StreamOptions) error {
	if sink == nil {
		return errors.New("experiments: streaming grid needs a sink")
	}
	sink = instrumentSink(sink)
	scenarios, err := resolveGrid(&cfg)
	if err != nil {
		return err
	}
	if err := opt.Shard.Validate(); err != nil {
		return err
	}
	owned := ownedCells(cfg, opt.Shard)
	if gridMaterialize {
		return materializeOwnedCells(cfg, scenarios, owned, sink, opt)
	}
	return runpool.SweepFold(len(owned), cfg.Workers,
		func(int) *protocol.Arena { return protocol.NewArena() },
		func(i int, arena *protocol.Arena) (gridCellOut, error) {
			return runOwnedCell(cfg, scenarios, owned[i], arena, opt)
		},
		func(i int, out gridCellOut) error {
			return emitGridCell(sink, Cell{Index: owned[i], Name: out.cell.Scenario, Seed: out.cell.Seed, Restored: out.restored}, &out.cell)
		})
}

// MaterializeScenarioGrid is the legacy collect-everything execution
// behind the same sink API: every owned cell is computed and retained,
// then replayed into the sink in ascending order. It is the streaming
// path's differential oracle (see the grid_materialize build tag) and
// the benchgen companion workload that prices what streaming saves.
func MaterializeScenarioGrid(cfg ScenarioGridConfig, sink Sink, opt StreamOptions) error {
	if sink == nil {
		return errors.New("experiments: materialized grid needs a sink")
	}
	sink = instrumentSink(sink)
	scenarios, err := resolveGrid(&cfg)
	if err != nil {
		return err
	}
	if err := opt.Shard.Validate(); err != nil {
		return err
	}
	return materializeOwnedCells(cfg, scenarios, ownedCells(cfg, opt.Shard), sink, opt)
}

// ownedCells lists the global cell indices this shard runs, ascending.
func ownedCells(cfg ScenarioGridConfig, shard ShardSpec) []int {
	cells := len(cfg.Scenarios) * len(cfg.Seeds)
	var owned []int
	for cell := 0; cell < cells; cell++ {
		if shard.Owns(cell) {
			owned = append(owned, cell)
		}
	}
	return owned
}

// runOwnedCell computes one owned cell, or replays it without
// simulating: a checkpointed audit (restore set, no rows) or a cached
// prior result (rows included). Restore wins when a cell is in both —
// its rows were already delivered by the interrupted run.
func runOwnedCell(cfg ScenarioGridConfig, scenarios []adversary.Scenario, cell int, arena *protocol.Arena, opt StreamOptions) (gridCellOut, error) {
	if rep, ok := opt.Restored[cell]; ok {
		si, ki := cell/len(cfg.Seeds), cell%len(cfg.Seeds)
		return gridCellOut{
			cell:     GridCell{Scenario: cfg.Scenarios[si], Seed: cfg.Seeds[ki], Audit: rep},
			restored: true,
		}, nil
	}
	if c, ok := opt.Cached[cell]; ok {
		return gridCellOut{cell: *c}, nil
	}
	if opt.Interrupt != nil && opt.Interrupt() {
		return gridCellOut{}, ErrInterrupted
	}
	c, err := simulateGridCell(cfg, scenarios, cell, arena, nil)
	return gridCellOut{cell: c}, err
}

// materializeOwnedCells is the collect-then-replay execution shared by
// MaterializeScenarioGrid and the grid_materialize oracle build of
// StreamScenarioGrid.
func materializeOwnedCells(cfg ScenarioGridConfig, scenarios []adversary.Scenario, owned []int, sink Sink, opt StreamOptions) error {
	slab := runpool.NewFloatSlab(3*len(owned), cfg.Rounds)
	results, err := runpool.SweepWithState(len(owned), cfg.Workers,
		func(int) *protocol.Arena { return protocol.NewArena() },
		func(i int, arena *protocol.Arena) (gridCellOut, error) {
			if _, restored := opt.Restored[owned[i]]; restored {
				return runOwnedCell(cfg, scenarios, owned[i], arena, opt)
			}
			if _, cached := opt.Cached[owned[i]]; cached {
				return runOwnedCell(cfg, scenarios, owned[i], arena, opt)
			}
			if opt.Interrupt != nil && opt.Interrupt() {
				return gridCellOut{}, ErrInterrupted
			}
			c, err := simulateGridCell(cfg, scenarios, owned[i], arena, func(slot int) []float64 {
				return slab.Row(3*i + slot%3)
			})
			return gridCellOut{cell: c}, err
		})
	if err != nil {
		return err
	}
	for i := range results {
		out := &results[i]
		cell := Cell{Index: owned[i], Name: out.cell.Scenario, Seed: out.cell.Seed, Restored: out.restored}
		if err := emitGridCell(sink, cell, &out.cell); err != nil {
			return err
		}
	}
	return nil
}
