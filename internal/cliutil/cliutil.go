// Package cliutil centralises the flag surface the command-line tools
// share: every command registers -workers, -seed, the weight-oracle
// pair (-weightBackend/-weights) and the sparse-path trio
// (-sparse/-tauStep/-tauFinal) through these helpers, so the flags
// spell, default and document identically everywhere and resolve
// through one code path.
package cliutil

import (
	"flag"
	"fmt"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// Workers registers the shared run-pool width flag. Every command
// documents the same contract: the width never changes any output.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "run-pool workers (0 = GOMAXPROCS); results are identical for every value")
}

// Seed registers the shared -seed flag; usage varies per command (a
// single-run tool seeds one RNG, a sweep derives per-run seeds).
func Seed(fs *flag.FlagSet, def int64, usage string) *int64 {
	return fs.Int64("seed", def, usage)
}

// WeightFlags is the registered weight-oracle flag pair.
type WeightFlags struct {
	backend *string
	profile *string
}

// Weights registers -weightBackend and -weights.
func Weights(fs *flag.FlagSet) *WeightFlags {
	return &WeightFlags{
		backend: fs.String("weightBackend", "direct", "ledger-backed weight oracle: direct (bit-identical reads) or indexed (incremental stake index)"),
		profile: fs.String("weights", "", "synthetic weight profile, e.g. zipf:1.1 or zipf:1.1;churn@6:0.2:0 (empty = ledger weights)"),
	}
}

// Resolve parses both flags into the experiment-layer values.
func (w *WeightFlags) Resolve() (weight.Backend, experiments.WeightProfile, error) {
	backend, err := experiments.ParseWeightBackend(*w.backend)
	if err != nil {
		return 0, nil, err
	}
	profile, err := experiments.ParseWeightProfile(*w.profile)
	if err != nil {
		return 0, nil, err
	}
	return backend, profile, nil
}

// Spec returns the raw -weights string; grid fingerprints digest it
// because profiles are functions and cannot be digested directly.
func (w *WeightFlags) Spec() string { return *w.profile }

// Backend returns the raw -weightBackend string; daemon clients ship it
// verbatim in job specs and let the server resolve it, so client and
// server cannot drift on the parse.
func (w *WeightFlags) Backend() string { return *w.backend }

// SparseFlags is the registered sparse-path flag trio.
type SparseFlags struct {
	mode     *string
	tauStep  *float64
	tauFinal *float64
}

// Sparse registers -sparse, -tauStep and -tauFinal.
func Sparse(fs *flag.FlagSet) *SparseFlags {
	return &SparseFlags{
		mode:     fs.String("sparse", "auto", "protocol round path: auto, on (sparse committees) or off (dense per-node sweep)"),
		tauStep:  fs.Float64("tauStep", 0, "committee tau override: > 1 absolute seats, (0,1] fraction of stake, 0 = default"),
		tauFinal: fs.Float64("tauFinal", 0, "final-committee tau override, same units as -tauStep, 0 = default"),
	}
}

// Resolve parses the mode and applies the tau overrides to the default
// protocol params.
func (s *SparseFlags) Resolve() (protocol.SparseMode, protocol.Params, error) {
	mode, err := protocol.ParseSparseMode(*s.mode)
	if err != nil {
		return 0, protocol.Params{}, err
	}
	params := protocol.DefaultParams()
	if *s.tauStep != 0 {
		params.TauStep = *s.tauStep
	}
	if *s.tauFinal != 0 {
		params.TauFinal = *s.tauFinal
	}
	return mode, params, nil
}

// Mode returns the raw -sparse string for daemon job specs.
func (s *SparseFlags) Mode() string { return *s.mode }

// TauStepValue/TauFinalValue return the raw tau overrides (0 = default)
// for daemon job specs.
func (s *SparseFlags) TauStepValue() float64  { return *s.tauStep }
func (s *SparseFlags) TauFinalValue() float64 { return *s.tauFinal }

// ClientFlags is the daemon-client flag set the simd submit/watch
// subcommands share.
type ClientFlags struct {
	addr *string
}

// Client registers -addr, the simulation daemon's base URL.
func Client(fs *flag.FlagSet) *ClientFlags {
	return &ClientFlags{
		addr: fs.String("addr", "http://127.0.0.1:8080", "simulation daemon base URL"),
	}
}

// BaseURL returns the daemon base URL without a trailing slash.
func (c *ClientFlags) BaseURL() string {
	return strings.TrimSuffix(*c.addr, "/")
}

// NoArgs rejects stray positional arguments after flag parsing.
func NoArgs(fs *flag.FlagSet) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return nil
}
