package cliutil

import (
	"flag"
	"io"
	"testing"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestWeightsResolve(t *testing.T) {
	fs := newFlagSet()
	w := Weights(fs)
	if err := fs.Parse([]string{"-weightBackend", "indexed", "-weights", "zipf:1.3:40"}); err != nil {
		t.Fatal(err)
	}
	if _, profile, err := w.Resolve(); err != nil || profile == nil {
		t.Fatalf("resolve: profile=%v err=%v", profile, err)
	}
	if w.Spec() != "zipf:1.3:40" {
		t.Fatalf("spec %q", w.Spec())
	}

	for name, args := range map[string][]string{
		"bad backend": {"-weightBackend", "psychic"},
		"bad profile": {"-weights", "zipf:not-a-number"},
	} {
		fs := newFlagSet()
		w := Weights(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Resolve(); err == nil {
			t.Fatalf("%s: resolved without error", name)
		}
	}
}

func TestSparseResolve(t *testing.T) {
	fs := newFlagSet()
	s := Sparse(fs)
	if err := fs.Parse([]string{"-sparse", "on", "-tauStep", "200", "-tauFinal", "300"}); err != nil {
		t.Fatal(err)
	}
	_, params, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if params.TauStep != 200 || params.TauFinal != 300 {
		t.Fatalf("tau overrides not applied: %+v", params)
	}

	fs = newFlagSet()
	s = Sparse(fs)
	if err := fs.Parse([]string{"-sparse", "never"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Resolve(); err == nil {
		t.Fatal("bad sparse mode resolved without error")
	}
}

func TestNoArgs(t *testing.T) {
	fs := newFlagSet()
	Workers(fs)
	Seed(fs, 1, "seed")
	if err := fs.Parse([]string{"-workers", "2", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if err := NoArgs(fs); err != nil {
		t.Fatal(err)
	}
	fs = newFlagSet()
	if err := fs.Parse([]string{"stray"}); err != nil {
		t.Fatal(err)
	}
	if err := NoArgs(fs); err == nil {
		t.Fatal("stray positional accepted")
	}
}
