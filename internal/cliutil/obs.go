package cliutil

import (
	"flag"
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// ObsFlags is the registered telemetry flag pair shared by the
// simulation commands: -metricsAddr exposes the live registry (plus
// expvar and pprof) over HTTP for the duration of the run, -trace
// records a Chrome-trace timeline of the first simulated run. Both are
// opt-in; with neither set the telemetry registry stays disabled and
// the hot paths keep their zero-overhead no-op behaviour.
type ObsFlags struct {
	addr  *string
	trace *string
}

// Obs registers -metricsAddr and -trace.
func Obs(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		addr:  fs.String("metricsAddr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the run (e.g. localhost:9090; empty = off)"),
		trace: fs.String("trace", "", "write a Chrome-trace JSON timeline of the first run to this file (load via chrome://tracing or Perfetto; empty = off)"),
	}
}

// ObsSession is one command execution's live telemetry: the enabled
// registry, the optional HTTP endpoint and the optional trace
// recorder. Close it before exit.
type ObsSession struct {
	server *obs.Server
	trace  *obs.Trace
	path   string
}

// Start enables telemetry as requested by the flags and returns the
// session (never nil). Enabling the registry is observation-only: by
// the telemetry determinism contract it changes no simulation output.
func (f *ObsFlags) Start() (*ObsSession, error) {
	s := &ObsSession{}
	if *f.addr == "" && *f.trace == "" {
		return s, nil
	}
	reg := obs.Enable()
	if *f.addr != "" {
		srv, err := obs.Serve(*f.addr, reg)
		if err != nil {
			return nil, fmt.Errorf("metrics endpoint: %w", err)
		}
		s.server = srv
	}
	if *f.trace != "" {
		s.trace = obs.NewTrace(obs.DefaultTracePanel)
		s.path = *f.trace
	}
	return s, nil
}

// Trace returns the trace recorder to hand to the experiment config
// (nil when -trace is off).
func (s *ObsSession) Trace() *obs.Trace { return s.trace }

// Addr returns the bound metrics address ("" when -metricsAddr is
// off); useful when the flag asked for port 0.
func (s *ObsSession) Addr() string {
	if s.server == nil {
		return ""
	}
	return s.server.Addr()
}

// Close writes the trace file (if tracing) and shuts the endpoint
// down. It reports what it wrote on w when non-nil.
func (s *ObsSession) Close(w io.Writer) error {
	var firstErr error
	if s.trace != nil {
		if err := s.trace.WriteFile(s.path); err != nil {
			firstErr = fmt.Errorf("write trace: %w", err)
		} else if w != nil {
			fmt.Fprintf(w, "wrote %s (%d trace events)\n", s.path, s.trace.Len())
		}
	}
	if s.server != nil {
		if err := s.server.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
