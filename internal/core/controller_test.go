package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

func testPopulation(t *testing.T, dist stake.Distribution, n int) *stake.Population {
	t.Helper()
	pop, err := stake.SamplePopulation(dist, n, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestDefaultCommittee(t *testing.T) {
	c := DefaultCommittee()
	if c.ExpectedSL() != 26 {
		t.Errorf("SL = %v, want 26", c.ExpectedSL())
	}
	// SM = SSTEP*(2+1) + SFINAL = 1000*3 + 10000 = 13000 per the paper.
	if c.ExpectedSM() != 13_000 {
		t.Errorf("SM = %v, want 13000", c.ExpectedSM())
	}
}

func TestInputsFromPopulation(t *testing.T) {
	pop := testPopulation(t, stake.Uniform{A: 1, B: 200}, 10_000)
	in, err := InputsFromPopulation(pop, game.DefaultRoleCosts(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.SL != 26 || in.SM != 13_000 {
		t.Errorf("role stakes = %v, %v", in.SL, in.SM)
	}
	if math.Abs(in.SK-(pop.Total()-13_026)) > 1e-6 {
		t.Errorf("SK = %v", in.SK)
	}
	if in.MinOther != pop.Min() {
		t.Errorf("MinOther = %v, want population min %v", in.MinOther, pop.Min())
	}
	if in.MinLeader != 1 || in.MinCommittee != 1 {
		t.Errorf("role minimums = %v, %v, want 1", in.MinLeader, in.MinCommittee)
	}
}

func TestInputsFromPopulationFloor(t *testing.T) {
	pop := &stake.Population{Stakes: []float64{1, 2, 50, 100, 200000}}
	in, err := InputsFromPopulation(pop, game.DefaultRoleCosts(), Options{OtherFloor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if in.MinOther != 50 {
		t.Errorf("MinOther with floor 10 = %v, want 50", in.MinOther)
	}
	if _, err := InputsFromPopulation(pop, game.DefaultRoleCosts(), Options{OtherFloor: 1e9}); err == nil {
		t.Error("floor above all stakes accepted")
	}
}

func TestInputsFromPopulationErrors(t *testing.T) {
	if _, err := InputsFromPopulation(nil, game.DefaultRoleCosts(), Options{}); err == nil {
		t.Error("nil population accepted")
	}
	tiny := &stake.Population{Stakes: []float64{1, 2}}
	if _, err := InputsFromPopulation(tiny, game.DefaultRoleCosts(), Options{}); err == nil {
		t.Error("population smaller than committee expectations accepted")
	}
}

func TestInputsFromRoles(t *testing.T) {
	in, err := InputsFromRoles(
		[]float64{5, 10},
		[]float64{3, 7, 2},
		[]float64{100, 50},
		game.DefaultRoleCosts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if in.SL != 15 || in.SM != 12 || in.SK != 150 {
		t.Errorf("totals = %+v", in)
	}
	if in.MinLeader != 5 || in.MinCommittee != 2 || in.MinOther != 50 {
		t.Errorf("minimums = %+v", in)
	}
	if _, err := InputsFromRoles(nil, []float64{1}, []float64{1}, game.DefaultRoleCosts()); err == nil {
		t.Error("empty leader group accepted")
	}
}

func TestComputeParametersPaperScale(t *testing.T) {
	// U(1,200) on ~50M Algos: the required reward is dominated by the
	// others bound with s*_k = 1, landing near 50 Algos (paper: "around
	// 50 Algos for uniform distribution").
	pop := testPopulation(t, stake.Uniform{A: 1, B: 200}, 500_000)
	p, err := ComputeParameters(pop, game.DefaultRoleCosts(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.B < 30 || p.B > 70 {
		t.Errorf("U(1,200) B = %v, want ~50 Algos", p.B)
	}
}

func TestComputeParametersOrdering(t *testing.T) {
	// Fig. 6 ordering: U(1,200) needs a (much) larger reward than
	// N(100,10), which needs more than N(2000,25).
	costs := game.DefaultRoleCosts()
	bFor := func(d stake.Distribution) float64 {
		pop := testPopulation(t, d, 100_000)
		p, err := ComputeParameters(pop, costs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		return p.B
	}
	bu := bFor(stake.Uniform{A: 1, B: 200})
	bn10 := bFor(stake.Normal{Mu: 100, Sigma: 10})
	bn2000 := bFor(stake.Normal{Mu: 2000, Sigma: 25})
	if !(bu > bn10 && bn10 > bn2000) {
		t.Errorf("ordering violated: U=%v N(100,10)=%v N(2000,25)=%v", bu, bn10, bn2000)
	}
}

func TestRemovalReducesReward(t *testing.T) {
	// Fig. 7-(c): removing stakes below w shrinks the required reward.
	pop := testPopulation(t, stake.Uniform{A: 1, B: 200}, 100_000)
	costs := game.DefaultRoleCosts()
	prev := math.Inf(1)
	for _, w := range []float64{0, 3, 5, 7} {
		p := pop
		if w > 0 {
			p = pop.RemoveBelow(w)
		}
		params, err := ComputeParameters(p, costs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if params.B >= prev {
			t.Errorf("w=%v: B=%v did not decrease (prev %v)", w, params.B, prev)
		}
		prev = params.B
	}
}

func TestVerifyIncentiveCompatible(t *testing.T) {
	in := paperInputs()
	p, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIncentiveCompatible(in, p); err != nil {
		t.Errorf("optimal parameters rejected: %v", err)
	}
	// Halving the reward must yield a detectable deviation.
	broken := p
	broken.B = p.MinB * 0.5
	if err := VerifyIncentiveCompatible(in, broken); err == nil {
		t.Error("under-funded parameters certified as incentive compatible")
	}
}

func TestBuildGameStakesMatchInputs(t *testing.T) {
	in := paperInputs()
	g := BuildGame(in, 10)
	tt := g.Totals()
	if math.Abs(tt.SL-in.SL) > 1e-6 || math.Abs(tt.SM-in.SM) > 1e-6 || math.Abs(tt.SK-in.SK) > 1e-6 {
		t.Errorf("game totals %+v do not match inputs", tt)
	}
	if tt.MinL != in.MinLeader || tt.MinM != in.MinCommittee || tt.MinKSync != in.MinOther {
		t.Errorf("game minimums %+v do not match inputs", tt)
	}
}

func TestController(t *testing.T) {
	pop := testPopulation(t, stake.Normal{Mu: 100, Sigma: 10}, 50_000)
	c := NewController(game.DefaultRoleCosts(), Options{})
	var total float64
	for i := 0; i < 5; i++ {
		p, err := c.Step(pop)
		if err != nil {
			t.Fatal(err)
		}
		total += p.B
	}
	if math.Abs(c.TotalDisbursed()-total) > 1e-9 {
		t.Errorf("TotalDisbursed = %v, want %v", c.TotalDisbursed(), total)
	}
	if len(c.History()) != 5 {
		t.Errorf("history length = %d", len(c.History()))
	}
	// History must be a copy.
	c.History()[0].B = -1
	if c.History()[0].B == -1 {
		t.Error("History leaks internal state")
	}
}
