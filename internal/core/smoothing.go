package core

import (
	"errors"

	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// SmoothingPolicy configures the production controller's hysteresis.
// Recomputing and republishing (α, β, B) every round would make node
// income jittery and leak per-round stake information; the policy
// republishes only when the optimum drifts materially, while never
// publishing a reward below the currently required bound (which would
// break the Theorem 3 guarantee).
type SmoothingPolicy struct {
	// RelTolerance is the relative drift of the newly computed optimum
	// from the published parameters that triggers republication.
	RelTolerance float64
	// Headroom inflates the published reward above the strict bound so
	// that small upward drifts don't force immediate updates.
	Headroom float64
	// MaxRoundsBetweenUpdates forces republication after this many rounds
	// even without drift (0 = never force).
	MaxRoundsBetweenUpdates int
}

// DefaultSmoothing republishes on 10% drift with 20% headroom, at least
// every 1000 rounds.
func DefaultSmoothing() SmoothingPolicy {
	return SmoothingPolicy{
		RelTolerance:            0.10,
		Headroom:                0.20,
		MaxRoundsBetweenUpdates: 1000,
	}
}

// Validate reports invalid policies.
func (p SmoothingPolicy) Validate() error {
	if p.RelTolerance < 0 || p.RelTolerance >= 1 {
		return errors.New("core: RelTolerance must be in [0, 1)")
	}
	if p.Headroom < 0 {
		return errors.New("core: negative headroom")
	}
	if p.MaxRoundsBetweenUpdates < 0 {
		return errors.New("core: negative update interval")
	}
	return nil
}

// SmoothedController wraps the per-round Algorithm 1 computation with a
// publication policy: Step always computes the exact optimum, but the
// published parameters only change when the policy demands it.
type SmoothedController struct {
	inner  *Controller
	policy SmoothingPolicy

	published   Params
	hasPublish  bool
	sinceUpdate int
	updates     int
}

// NewSmoothedController builds the production controller.
func NewSmoothedController(c *Controller, policy SmoothingPolicy) (*SmoothedController, error) {
	if c == nil {
		return nil, errors.New("core: nil controller")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &SmoothedController{inner: c, policy: policy}, nil
}

// Updates returns how many times new parameters were published.
func (s *SmoothedController) Updates() int { return s.updates }

// Step computes the round's optimum and returns the parameters to
// publish, republishing per the policy. The returned parameters always
// satisfy the current Theorem 3 bound.
func (s *SmoothedController) Step(pop *stake.Population) (Params, error) {
	exact, err := s.inner.Step(pop)
	if err != nil {
		return Params{}, err
	}
	s.sinceUpdate++
	if s.shouldRepublish(exact) {
		published := exact
		published.B = exact.MinB * (1 + s.policy.Headroom)
		s.published = published
		s.hasPublish = true
		s.sinceUpdate = 0
		s.updates++
	}
	return s.published, nil
}

func (s *SmoothedController) shouldRepublish(exact Params) bool {
	if !s.hasPublish {
		return true
	}
	if s.policy.MaxRoundsBetweenUpdates > 0 && s.sinceUpdate >= s.policy.MaxRoundsBetweenUpdates {
		return true
	}
	// The published reward must stay strictly above the current bound; if
	// the bound caught up with the headroom, republish immediately.
	if s.published.B <= exact.MinB {
		return true
	}
	// Republish when the optimum drifted materially in either direction.
	rel := (exact.MinB - s.published.MinB) / s.published.MinB
	if rel < 0 {
		rel = -rel
	}
	return rel > s.policy.RelTolerance
}
