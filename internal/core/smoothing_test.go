package core

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

func TestSmoothingPolicyValidate(t *testing.T) {
	if err := DefaultSmoothing().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []SmoothingPolicy{
		{RelTolerance: -0.1},
		{RelTolerance: 1},
		{RelTolerance: 0.1, Headroom: -1},
		{RelTolerance: 0.1, MaxRoundsBetweenUpdates: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestNewSmoothedControllerValidation(t *testing.T) {
	if _, err := NewSmoothedController(nil, DefaultSmoothing()); err == nil {
		t.Error("nil controller accepted")
	}
	c := NewController(game.DefaultRoleCosts(), Options{})
	if _, err := NewSmoothedController(c, SmoothingPolicy{RelTolerance: 2}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestSmoothedControllerStablePopulation(t *testing.T) {
	pop := testPopulation(t, stake.Normal{Mu: 100, Sigma: 10}, 20_000)
	inner := NewController(game.DefaultRoleCosts(), Options{})
	s, err := NewSmoothedController(inner, DefaultSmoothing())
	if err != nil {
		t.Fatal(err)
	}
	var first Params
	for i := 0; i < 50; i++ {
		p, err := s.Step(pop)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p
			continue
		}
		if p != first {
			t.Fatalf("round %d: parameters changed on a static population", i)
		}
	}
	if s.Updates() != 1 {
		t.Errorf("Updates = %d, want 1 on static population", s.Updates())
	}
}

func TestSmoothedControllerRepublishesOnDrift(t *testing.T) {
	pop := testPopulation(t, stake.Normal{Mu: 100, Sigma: 10}, 20_000)
	inner := NewController(game.DefaultRoleCosts(), Options{})
	s, err := NewSmoothedController(inner, DefaultSmoothing())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(pop); err != nil {
		t.Fatal(err)
	}
	// Double the population (same per-account stakes): SK doubles while
	// s*_k stays put, so the binding bound doubles — a 100% drift. (Note
	// that scaling every stake by 2 would NOT drift the bound: the SK and
	// s*_k elasticities are +1 and −1 and cancel exactly.)
	pop.Stakes = append(pop.Stakes, pop.Stakes...)
	p, err := s.Step(pop)
	if err != nil {
		t.Fatal(err)
	}
	if s.Updates() != 2 {
		t.Errorf("Updates = %d, want 2 after drift", s.Updates())
	}
	// The republished reward must cover the new bound with headroom.
	exact, err := ComputeParameters(pop, game.DefaultRoleCosts(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.B <= exact.MinB {
		t.Errorf("published B %v does not cover the new bound %v", p.B, exact.MinB)
	}
}

func TestSmoothedControllerForcedUpdate(t *testing.T) {
	pop := testPopulation(t, stake.Normal{Mu: 100, Sigma: 10}, 20_000)
	inner := NewController(game.DefaultRoleCosts(), Options{})
	policy := DefaultSmoothing()
	policy.MaxRoundsBetweenUpdates = 5
	s, err := NewSmoothedController(inner, policy)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if _, err := s.Step(pop); err != nil {
			t.Fatal(err)
		}
	}
	// Initial publish + forced refreshes at rounds 6 and 11.
	if s.Updates() != 3 {
		t.Errorf("Updates = %d, want 3 with forced interval 5", s.Updates())
	}
}

func TestSmoothedControllerNeverBelowBound(t *testing.T) {
	pop := testPopulation(t, stake.Uniform{A: 1, B: 200}, 20_000)
	inner := NewController(game.DefaultRoleCosts(), Options{})
	s, err := NewSmoothedController(inner, SmoothingPolicy{RelTolerance: 0.5, Headroom: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(pop); err != nil {
		t.Fatal(err)
	}
	// Shrink the min stake: the bound rises sharply (B ~ 1/s*_k). Even
	// within tolerance, the controller must republish rather than publish
	// a reward below the bound.
	minIdx := 0
	for i, st := range pop.Stakes {
		if st < pop.Stakes[minIdx] {
			minIdx = i
		}
	}
	pop.Stakes[minIdx] /= 10
	p, err := s.Step(pop)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ComputeParameters(pop, game.DefaultRoleCosts(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.B <= exact.MinB {
		t.Errorf("published B %v below required bound %v", p.B, exact.MinB)
	}
}
