// Package core implements the paper's primary contribution: the
// incentive-compatible role-based reward sharing mechanism (Algorithm 1).
// Given the round's role-stake aggregates and the cost model, it computes
// the reward shares (α, β, γ) and the minimum per-round reward B_i such
// that the cooperative profile of Theorem 3 is a Nash equilibrium — no
// leader, committee member or strong-synchrony-set node can profit by
// unilaterally defecting.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/dsn2020-algorand/incentives/internal/game"
)

// Inputs are the quantities Algorithm 1 reads at the end of a round.
type Inputs struct {
	// SL, SM, SK are the total stakes of leaders, committee members and
	// remaining online nodes.
	SL, SM, SK float64
	// MinLeader, MinCommittee, MinOther are s*_l, s*_m and s*_k — the
	// minimum stakes within each group (for s*_k: within the strong
	// synchrony set Y).
	MinLeader, MinCommittee, MinOther float64
	// Costs is the per-role cost model.
	Costs game.RoleCosts
}

// Validate reports structurally invalid inputs.
func (in Inputs) Validate() error {
	switch {
	case in.SL <= 0 || in.SM <= 0 || in.SK <= 0:
		return errors.New("core: role stakes must be positive")
	case in.MinLeader <= 0 || in.MinLeader > in.SL:
		return fmt.Errorf("core: invalid s*_l = %g", in.MinLeader)
	case in.MinCommittee <= 0 || in.MinCommittee > in.SM:
		return fmt.Errorf("core: invalid s*_m = %g", in.MinCommittee)
	case in.MinOther <= 0 || in.MinOther > in.SK:
		return fmt.Errorf("core: invalid s*_k = %g", in.MinOther)
	}
	return in.Costs.Validate()
}

// SN returns the total stake S_N = S_L + S_M + S_K.
func (in Inputs) SN() float64 { return in.SL + in.SM + in.SK }

// Params is Algorithm 1's output: the reward split and the reward level.
type Params struct {
	Alpha float64
	Beta  float64
	Gamma float64
	// MinB is the infimum of feasible rewards (the Theorem 3 bound); any
	// B strictly above it sustains cooperation.
	MinB float64
	// B is the reward to disburse: MinB inflated by the safety margin.
	B float64
	// Binding names the bound that determines MinB: "leader", "committee"
	// or "others".
	Binding string
}

// Bounds evaluates the three Theorem 3 lower bounds on B_i for a given
// (α, β). Infeasible shares (violating Eq. 8/9) yield +Inf components.
func Bounds(in Inputs, alpha, beta float64) (leader, committee, others float64) {
	gamma := 1 - alpha - beta
	leader = math.Inf(1)
	committee = math.Inf(1)
	others = math.Inf(1)
	if alpha <= 0 || beta <= 0 || gamma <= 0 {
		return leader, committee, others
	}
	if d := alpha/in.SL - gamma/(in.SK+in.MinLeader); d > 0 {
		leader = (in.Costs.Leader - in.Costs.Sortition) / (d * in.MinLeader)
	}
	if d := beta/in.SM - gamma/(in.SK+in.MinCommittee); d > 0 {
		committee = (in.Costs.Committee - in.Costs.Sortition) / (d * in.MinCommittee)
	}
	others = (in.Costs.Other - in.Costs.Sortition) * in.SK / (in.MinOther * gamma)
	return leader, committee, others
}

// BoundB returns the overall Theorem 3 bound max(b_L, b_M, b_K) for the
// given shares, +Inf when infeasible. This is the surface plotted in
// Fig. 5.
func BoundB(in Inputs, alpha, beta float64) float64 {
	l, m, k := Bounds(in, alpha, beta)
	return math.Max(l, math.Max(m, k))
}

// ErrInfeasible is returned when no (α, β) satisfies the Theorem 3
// feasibility constraints.
var ErrInfeasible = errors.New("core: no feasible reward shares exist")

// defaultMargin is the relative safety margin applied above the strict
// Theorem 3 infimum so the published B satisfies the strict inequality.
const defaultMargin = 1e-9

// Minimize computes the (α, β) minimising the Theorem 3 bound in closed
// form and returns the resulting parameters.
//
// Derivation: for a fixed γ the leader and committee bounds are both
// decreasing in their own share, so the optimum spends all of 1−γ and
// equalises them at the common value
//
//	V(γ) = (S_L·A_L + S_M·A_M) / (1 − γ − γ·(S_L/(S_K+s*_l) + S_M/(S_K+s*_m)))
//
// with A_L = (c^L−c_so)/s*_l and A_M = (c^M−c_so)/s*_m. V is increasing in
// γ while the others bound b_K(γ) = (c^K−c_so)·S_K/(s*_k·γ) is decreasing,
// so the minimax sits at their crossing, located by bisection.
func Minimize(in Inputs) (Params, error) {
	if err := in.Validate(); err != nil {
		return Params{}, err
	}
	aL := (in.Costs.Leader - in.Costs.Sortition) / in.MinLeader
	aM := (in.Costs.Committee - in.Costs.Sortition) / in.MinCommittee
	kL := in.SL / (in.SK + in.MinLeader)
	kM := in.SM / (in.SK + in.MinCommittee)
	cK := (in.Costs.Other - in.Costs.Sortition) * in.SK / in.MinOther

	// Feasible γ keeps V's denominator positive.
	gammaMax := 1 / (1 + kL + kM)
	if gammaMax <= 0 {
		return Params{}, ErrInfeasible
	}
	num := in.SL*aL + in.SM*aM
	vOf := func(gamma float64) float64 {
		den := 1 - gamma*(1+kL+kM)
		if den <= 0 {
			return math.Inf(1)
		}
		return num / den
	}
	bKOf := func(gamma float64) float64 { return cK / gamma }

	// Bisect on f(γ) = V(γ) − b_K(γ): negative near 0, positive near
	// γ_max, monotone increasing.
	lo, hi := gammaMax*1e-12, gammaMax*(1-1e-12)
	if vOf(lo)-bKOf(lo) > 0 {
		// Others bound is never binding: push γ as small as the leader and
		// committee constraints allow; the minimum is at γ → 0 with
		// V(0) = num. (Does not occur with positive c^K − c_so, but guard.)
		gamma := lo
		return finishParams(in, gamma, vOf(gamma), aL, aM, kL, kM)
	}
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lo + hi)
		if vOf(mid) < bKOf(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	gamma := 0.5 * (lo + hi)
	minB := math.Max(vOf(gamma), bKOf(gamma))
	return finishParams(in, gamma, minB, aL, aM, kL, kM)
}

func finishParams(in Inputs, gamma, minB, aL, aM, kL, kM float64) (Params, error) {
	if math.IsInf(minB, 1) || minB <= 0 || gamma <= 0 || gamma >= 1 {
		return Params{}, ErrInfeasible
	}
	// Invert the equalisation: α = S_L(A_L/V + γ/(S_K+s*_l)), same for β.
	alpha := in.SL * (aL/minB + gamma/(in.SK+in.MinLeader))
	beta := in.SM * (aM/minB + gamma/(in.SK+in.MinCommittee))
	p := Params{
		Alpha: alpha,
		Beta:  beta,
		Gamma: 1 - alpha - beta,
		MinB:  minB,
		B:     minB * (1 + defaultMargin),
	}
	l, m, k := Bounds(in, p.Alpha, p.Beta)
	switch {
	case k >= l && k >= m:
		p.Binding = "others"
	case l >= m:
		p.Binding = "leader"
	default:
		p.Binding = "committee"
	}
	if math.IsInf(BoundB(in, p.Alpha, p.Beta), 1) {
		return Params{}, ErrInfeasible
	}
	return p, nil
}

// GridMinimize scans an (α, β) grid with the given resolution and returns
// the best feasible point. It is the brute-force comparator for the
// closed-form optimiser (ablation 2 in DESIGN.md) and the generator of the
// Fig. 5 surface.
func GridMinimize(in Inputs, steps int) (Params, error) {
	if err := in.Validate(); err != nil {
		return Params{}, err
	}
	if steps < 2 {
		return Params{}, errors.New("core: grid needs at least 2 steps")
	}
	best := Params{MinB: math.Inf(1)}
	for i := 1; i < steps; i++ {
		alpha := float64(i) / float64(steps)
		for j := 1; j < steps-i; j++ {
			beta := float64(j) / float64(steps)
			b := BoundB(in, alpha, beta)
			if b < best.MinB {
				best = Params{
					Alpha: alpha,
					Beta:  beta,
					Gamma: 1 - alpha - beta,
					MinB:  b,
					B:     b * (1 + defaultMargin),
				}
			}
		}
	}
	if math.IsInf(best.MinB, 1) {
		return Params{}, ErrInfeasible
	}
	l, m, k := Bounds(in, best.Alpha, best.Beta)
	switch {
	case k >= l && k >= m:
		best.Binding = "others"
	case l >= m:
		best.Binding = "leader"
	default:
		best.Binding = "committee"
	}
	return best, nil
}
