package core_test

import (
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/core"
	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// ExampleMinimize computes the incentive-compatible reward for the
// paper's Sec. V-A constants: a 50M-Algo network with the sortition
// expectations S_L = 26 and S_M = 13000 and minimum stakes (1, 1, 10).
func ExampleMinimize() {
	in := core.Inputs{
		SL:           26,
		SM:           13_000,
		SK:           50e6 - 13_026,
		MinLeader:    1,
		MinCommittee: 1,
		MinOther:     10,
		Costs:        game.DefaultRoleCosts(),
	}
	params, err := core.Minimize(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("minimum reward: %.2f Algos per round\n", params.MinB)
	fmt.Printf("binding bound:  %s\n", params.Binding)
	// Output:
	// minimum reward: 5.09 Algos per round
	// binding bound:  others
}

// ExampleBoundB evaluates the Fig. 5 surface at the paper's reported
// optimum (α, β) = (0.02, 0.03).
func ExampleBoundB() {
	in := core.Inputs{
		SL:           26,
		SM:           13_000,
		SK:           50e6 - 13_026,
		MinLeader:    1,
		MinCommittee: 1,
		MinOther:     10,
		Costs:        game.DefaultRoleCosts(),
	}
	fmt.Printf("B(0.02, 0.03) = %.2f Algos\n", core.BoundB(in, 0.02, 0.03))
	// Output:
	// B(0.02, 0.03) = 5.26 Algos
}

// ExampleController tracks a drifting stake population round by round,
// the paper's "adapt dynamically with the distribution of stakes": as the
// network grows, the required reward grows with it.
func ExampleController() {
	costs := game.DefaultRoleCosts()
	c := core.NewController(costs, core.Options{})
	pop := &stake.Population{Stakes: make([]float64, 20_000)}
	for i := range pop.Stakes {
		pop.Stakes[i] = 100
	}
	p1, err := c.Step(pop)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The population doubles in size: S_K doubles while s*_k stays put,
	// so the required reward rises.
	pop.Stakes = append(pop.Stakes, pop.Stakes...)
	p2, err := c.Step(pop)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("reward grew with the network:", p2.B > p1.B)
	fmt.Println("rounds tracked:", len(c.History()))
	// Output:
	// reward grew with the network: true
	// rounds tracked: 2
}
