package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dsn2020-algorand/incentives/internal/game"
)

// paperInputs are the Sec. V-A numerical-analysis constants: expected
// role stakes on a 50M-Algo network with s* = (1, 1, 10).
func paperInputs() Inputs {
	const total = 50e6
	return Inputs{
		SL:           26,
		SM:           13_000,
		SK:           total - 26 - 13_000,
		MinLeader:    1,
		MinCommittee: 1,
		MinOther:     10,
		Costs:        game.DefaultRoleCosts(),
	}
}

func TestInputsValidate(t *testing.T) {
	good := paperInputs()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper inputs invalid: %v", err)
	}
	cases := []func(*Inputs){
		func(in *Inputs) { in.SL = 0 },
		func(in *Inputs) { in.SM = -1 },
		func(in *Inputs) { in.SK = 0 },
		func(in *Inputs) { in.MinLeader = 0 },
		func(in *Inputs) { in.MinLeader = in.SL + 1 },
		func(in *Inputs) { in.MinCommittee = 0 },
		func(in *Inputs) { in.MinOther = 0 },
		func(in *Inputs) { in.MinOther = in.SK * 2 },
		func(in *Inputs) { in.Costs.Sortition = 0 },
	}
	for i, mutate := range cases {
		in := paperInputs()
		mutate(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid inputs accepted", i)
		}
	}
}

func TestBoundsAtPaperPoint(t *testing.T) {
	// At (α, β) = (0.02, 0.03) — the paper's reported optimum — the
	// "others" bound dominates and evaluates to ≈5.26 Algos:
	// (c^K − c_so) · S_K / (s*_k · γ) = 1e-6 · (50e6 − 13026) / (10 · 0.95).
	in := paperInputs()
	l, m, k := Bounds(in, 0.02, 0.03)
	wantK := 1e-6 * in.SK / (10 * 0.95)
	if math.Abs(k-wantK) > 1e-6 {
		t.Errorf("others bound = %v, want %v", k, wantK)
	}
	if l >= k || m >= k {
		t.Errorf("others bound should dominate: l=%v m=%v k=%v", l, m, k)
	}
	if k < 5.0 || k > 5.5 {
		t.Errorf("paper point B = %v, want ~5.26 Algos", k)
	}
}

func TestBoundsInfeasible(t *testing.T) {
	in := paperInputs()
	// α so small that α/SL <= γ/(SK+s*_l): leader bound infeasible.
	l, _, _ := Bounds(in, 1e-12, 0.03)
	if !math.IsInf(l, 1) {
		t.Errorf("leader bound should be +Inf at tiny alpha, got %v", l)
	}
	// Degenerate shares.
	if b := BoundB(in, 0, 0.5); !math.IsInf(b, 1) {
		t.Errorf("alpha=0 should be infeasible, got %v", b)
	}
	if b := BoundB(in, 0.6, 0.5); !math.IsInf(b, 1) {
		t.Errorf("alpha+beta>1 should be infeasible, got %v", b)
	}
}

func TestMinimizeMatchesPaper(t *testing.T) {
	p, err := Minimize(paperInputs())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~5.2 Algos; the exact continuous optimum is ~5.09.
	if p.MinB < 4.5 || p.MinB > 5.5 {
		t.Errorf("MinB = %v, want ~5.1 Algos", p.MinB)
	}
	if p.Binding != "others" {
		t.Errorf("binding = %s, want others", p.Binding)
	}
	if p.Alpha <= 0 || p.Beta <= 0 || p.Gamma <= 0 ||
		math.Abs(p.Alpha+p.Beta+p.Gamma-1) > 1e-9 {
		t.Errorf("shares do not sum to one: %+v", p)
	}
	if p.B <= p.MinB {
		t.Error("published B must exceed the strict bound")
	}
}

func TestMinimizeIsFeasible(t *testing.T) {
	in := paperInputs()
	p, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if b := BoundB(in, p.Alpha, p.Beta); math.IsInf(b, 1) {
		t.Error("optimal shares are infeasible")
	} else if math.Abs(b-p.MinB) > 1e-6*p.MinB {
		t.Errorf("BoundB at optimum = %v, MinB = %v", b, p.MinB)
	}
}

func TestGridMinimizeAgreesWithAnalytic(t *testing.T) {
	in := paperInputs()
	analytic, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := GridMinimize(in, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The grid can only do as well as the continuous optimum.
	if grid.MinB < analytic.MinB-1e-9 {
		t.Errorf("grid %v beat analytic %v", grid.MinB, analytic.MinB)
	}
	if grid.MinB > analytic.MinB*1.25 {
		t.Errorf("grid %v far above analytic %v", grid.MinB, analytic.MinB)
	}
}

func TestGridMinimizeValidation(t *testing.T) {
	if _, err := GridMinimize(paperInputs(), 1); err == nil {
		t.Error("steps=1 accepted")
	}
	bad := paperInputs()
	bad.SL = 0
	if _, err := GridMinimize(bad, 10); err == nil {
		t.Error("invalid inputs accepted")
	}
}

func TestMinimizeHigherTotalStakeNeedsSmallerShare(t *testing.T) {
	// Paper's Fig. 6-(c)/(d) comparison: on the 1B-Algo network
	// (N(2000,25)) the required reward is smaller than on the 50M-Algo
	// network *relative to the per-unit cost basis*, because s*_k grows
	// from ~56 to ~1900. Here we isolate the s*_k effect.
	in := paperInputs()
	small, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	in.MinOther = 1900
	big, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if big.MinB >= small.MinB {
		t.Errorf("larger s*_k should reduce B: %v >= %v", big.MinB, small.MinB)
	}
}

func TestMinimizeMonotoneInOtherCost(t *testing.T) {
	in := paperInputs()
	base, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Costs.Other *= 2
	in.Costs.Committee *= 2
	in.Costs.Leader *= 2
	higher, err := Minimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if higher.MinB <= base.MinB {
		t.Errorf("doubling costs should raise B: %v <= %v", higher.MinB, base.MinB)
	}
}

// Property: the analytic optimum never exceeds any feasible grid point.
func TestMinimizeOptimalityProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16, skRaw uint32) bool {
		in := paperInputs()
		in.SK = 1e6 + float64(skRaw%uint32(100e6))
		analytic, err := Minimize(in)
		if err != nil {
			return true // infeasible configurations are allowed to error
		}
		alpha := (float64(aRaw%998) + 1) / 1000
		beta := (float64(bRaw%998) + 1) / 1000
		if alpha+beta >= 1 {
			return true
		}
		b := BoundB(in, alpha, beta)
		return b >= analytic.MinB-1e-6*analytic.MinB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Minimize output always satisfies the feasibility constraints
// Eq. 8 and Eq. 9.
func TestMinimizeFeasibilityProperty(t *testing.T) {
	f := func(skRaw uint32, minKRaw uint16) bool {
		in := paperInputs()
		in.SK = 1e5 + float64(skRaw%uint32(1e9))
		in.MinOther = 1 + float64(minKRaw%2000)
		if in.MinOther > in.SK {
			return true
		}
		p, err := Minimize(in)
		if err != nil {
			return true
		}
		eq8 := p.Alpha/in.SL - p.Gamma/(in.SK+in.MinLeader)
		eq9 := p.Beta/in.SM - p.Gamma/(in.SK+in.MinCommittee)
		return eq8 > 0 && eq9 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
