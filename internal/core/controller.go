package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/dsn2020-algorand/incentives/internal/game"
	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// CommitteeConfig captures the sortition expectations the paper plugs
// into Algorithm 1 when roles are drawn per round: SL = τ_proposer
// expected leader stake; SM = SSTEP·Steps + SFINAL expected committee
// stake (the paper uses 1000·3 + 10000 = 13000).
type CommitteeConfig struct {
	TauProposer float64
	SStep       float64
	Steps       int
	SFinal      float64
}

// DefaultCommittee returns the paper's Sec. V-B constants.
func DefaultCommittee() CommitteeConfig {
	return CommitteeConfig{TauProposer: 26, SStep: 1000, Steps: 3, SFinal: 10_000}
}

// ExpectedSL returns the expected leader stake S_L.
func (c CommitteeConfig) ExpectedSL() float64 { return c.TauProposer }

// ExpectedSM returns the expected committee stake S_M.
func (c CommitteeConfig) ExpectedSM() float64 {
	return c.SStep*float64(c.Steps) + c.SFinal
}

// Options tune how InputsFromPopulation derives Algorithm 1's inputs.
type Options struct {
	// Committee supplies the expected role stakes; zero value means
	// DefaultCommittee.
	Committee CommitteeConfig
	// MinRoleStake is s*_l and s*_m, the minimum stake unit acting as a
	// leader or committee member (the paper's numerical analysis uses 1).
	MinRoleStake float64
	// OtherFloor implements the paper's "ignore strong synchrony sets
	// containing nodes with stakes less than w" rule: s*_k becomes the
	// smallest population stake >= OtherFloor. Zero keeps the true minimum.
	OtherFloor float64
}

func (o Options) withDefaults() Options {
	if o.Committee == (CommitteeConfig{}) {
		o.Committee = DefaultCommittee()
	}
	if o.MinRoleStake <= 0 {
		o.MinRoleStake = 1
	}
	return o
}

// InputsFromPopulation derives Algorithm 1's inputs for a stake
// population using sortition expectations for the role aggregates, the
// procedure of the paper's Sec. V-B evaluation.
func InputsFromPopulation(pop *stake.Population, costs game.RoleCosts, opts Options) (Inputs, error) {
	if pop == nil || pop.N() == 0 {
		return Inputs{}, errors.New("core: empty population")
	}
	opts = opts.withDefaults()
	sl := opts.Committee.ExpectedSL()
	sm := opts.Committee.ExpectedSM()
	sn := pop.Total()
	sk := sn - sl - sm
	if sk <= 0 {
		return Inputs{}, fmt.Errorf("core: population stake %g cannot cover committee expectations %g", sn, sl+sm)
	}
	// Zero-stake accounts cannot win sortition and hold no synchrony-set
	// duties, so s*_k is the smallest strictly positive stake (optionally
	// raised to the paper's floor).
	floor := opts.OtherFloor
	if floor <= 0 {
		floor = math.SmallestNonzeroFloat64
	}
	minOther := pop.MinAbove(floor)
	if minOther == 0 {
		return Inputs{}, fmt.Errorf("core: no stakes >= floor %g", floor)
	}
	return Inputs{
		SL:           sl,
		SM:           sm,
		SK:           sk,
		MinLeader:    opts.MinRoleStake,
		MinCommittee: opts.MinRoleStake,
		MinOther:     minOther,
		Costs:        costs,
	}, nil
}

// InputsFromRoles derives Algorithm 1's inputs from an explicitly
// realised role assignment (used when the protocol simulator reports who
// actually led and voted).
func InputsFromRoles(leaders, committee, others []float64, costs game.RoleCosts) (Inputs, error) {
	sum := func(xs []float64) (total, minimum float64) {
		for _, x := range xs {
			total += x
			if minimum == 0 || x < minimum {
				minimum = x
			}
		}
		return total, minimum
	}
	sl, minL := sum(leaders)
	sm, minM := sum(committee)
	sk, minK := sum(others)
	if sl <= 0 || sm <= 0 || sk <= 0 {
		return Inputs{}, errors.New("core: every role group needs positive stake")
	}
	return Inputs{
		SL: sl, SM: sm, SK: sk,
		MinLeader: minL, MinCommittee: minM, MinOther: minK,
		Costs: costs,
	}, nil
}

// ComputeParameters is Algorithm 1 end to end: derive the inputs from the
// population, then find the (α, β) minimising B_i under the Theorem 3
// bounds.
func ComputeParameters(pop *stake.Population, costs game.RoleCosts, opts Options) (Params, error) {
	in, err := InputsFromPopulation(pop, costs, opts)
	if err != nil {
		return Params{}, err
	}
	return Minimize(in)
}

// BuildGame materialises the stylised round game the parameters are meant
// to stabilise: nL leaders of stake s*_l, committee of stake s*_m units,
// and the population as other online nodes, all inside the strong
// synchrony set. It is used by VerifyIncentiveCompatible and the tests.
func BuildGame(in Inputs, b float64) *game.Game {
	players := make([]game.Player, 0, 8)
	id := 0
	add := func(role game.Role, stakes []float64, inSync bool) {
		for _, s := range stakes {
			players = append(players, game.Player{ID: id, Role: role, Stake: s, InSyncSet: inSync})
			id++
		}
	}
	// Two leaders (Theorems require nL > 1): the minimum-stake one plus the
	// rest of S_L.
	add(game.RoleLeader, []float64{in.MinLeader, in.SL - in.MinLeader}, false)
	// Two committee members likewise.
	add(game.RoleCommittee, []float64{in.MinCommittee, in.SM - in.MinCommittee}, false)
	// Others: the pivotal minimum-stake sync-set member, a second sync-set
	// node, and the remaining bulk outside Y.
	rest := in.SK - in.MinOther
	bulkSync := rest * 0.5
	add(game.RoleOther, []float64{in.MinOther, bulkSync}, true)
	add(game.RoleOther, []float64{rest - bulkSync}, false)
	return &game.Game{
		Players:    players,
		Costs:      in.Costs,
		B:          b,
		QuorumFrac: 0.685,
	}
}

// VerifyIncentiveCompatible certifies that with reward p.B the Theorem 3
// cooperative profile is a Nash equilibrium of the induced game, and that
// with any reward strictly below MinB it is not. It returns an error
// describing the first profitable deviation found.
func VerifyIncentiveCompatible(in Inputs, p Params) error {
	g := BuildGame(in, p.B)
	rule := game.RoleBasedRule{Alpha: p.Alpha, Beta: p.Beta}
	profile := g.Theorem3Profile()
	if ok, devs := g.IsNash(rule, profile); !ok {
		return fmt.Errorf("core: B=%g admits deviation %s", p.B, devs[0])
	}
	return nil
}

// Controller recomputes Algorithm 1 each round and tracks the disbursed
// totals, letting the Foundation "adapt rewards to the status of the
// network" as the paper suggests.
type Controller struct {
	costs game.RoleCosts
	opts  Options

	history []Params
	total   float64
}

// NewController builds an adaptive reward controller.
func NewController(costs game.RoleCosts, opts Options) *Controller {
	return &Controller{costs: costs, opts: opts.withDefaults()}
}

// Step computes the round's parameters from the current stake population
// and accumulates the disbursed total.
func (c *Controller) Step(pop *stake.Population) (Params, error) {
	p, err := ComputeParameters(pop, c.costs, c.opts)
	if err != nil {
		return Params{}, err
	}
	c.history = append(c.history, p)
	c.total += p.B
	return p, nil
}

// TotalDisbursed returns the Algos paid out so far.
func (c *Controller) TotalDisbursed() float64 { return c.total }

// History returns the per-round parameters computed so far.
func (c *Controller) History() []Params {
	out := make([]Params, len(c.history))
	copy(out, c.history)
	return out
}
