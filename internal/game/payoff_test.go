package game

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFoundationPayoutProportional(t *testing.T) {
	g := tinyGame(200) // B = S_N so the rate is exactly 1 Algo per stake
	out := FoundationRule{}.Payout(g, g.AllC(), true)
	for i, p := range g.Players {
		if math.Abs(out[i]-p.Stake) > 1e-9 {
			t.Errorf("player %d payout %v, want %v", i, out[i], p.Stake)
		}
	}
}

func TestFoundationPayoutNoBlock(t *testing.T) {
	g := tinyGame(200)
	out := FoundationRule{}.Payout(g, g.AllC(), false)
	for i, v := range out {
		if v != 0 {
			t.Errorf("player %d paid %v without a block", i, v)
		}
	}
}

func TestFoundationPaysDefectorsButNotOffline(t *testing.T) {
	g := tinyGame(200)
	profile := g.AllC()
	profile[5] = Defect
	profile[4] = Offline
	out := FoundationRule{}.Payout(g, profile, true)
	if out[4] != 0 {
		t.Error("offline player received a reward")
	}
	if out[5] <= 0 {
		t.Error("defector was not paid by the foundation rule (no punishment exists)")
	}
	// Remaining online stake is 190; player 5 holds 110 of it.
	want := 200.0 * 110 / 190
	if math.Abs(out[5]-want) > 1e-9 {
		t.Errorf("defector payout %v, want %v", out[5], want)
	}
}

func TestRoleBasedPayoutSplits(t *testing.T) {
	g := tinyGame(100)
	rule := RoleBasedRule{Alpha: 0.2, Beta: 0.3}
	out := rule.Payout(g, g.AllC(), true)
	// Leaders share 20: stakes 10,20 of SL=30.
	if math.Abs(out[0]-20.0/3) > 1e-9 || math.Abs(out[1]-40.0/3) > 1e-9 {
		t.Errorf("leader payouts %v, %v", out[0], out[1])
	}
	// Committee shares 30: stakes 10,40 of SM=50.
	if math.Abs(out[2]-6) > 1e-9 || math.Abs(out[3]-24) > 1e-9 {
		t.Errorf("committee payouts %v, %v", out[2], out[3])
	}
	// Others share 50: stakes 10,110 of SK=120.
	if math.Abs(out[4]-50.0*10/120) > 1e-9 || math.Abs(out[5]-50.0*110/120) > 1e-9 {
		t.Errorf("other payouts %v, %v", out[4], out[5])
	}
}

func TestRoleBasedDefectingLeaderJoinsOthersPool(t *testing.T) {
	// The Lemma 2 deviation payoff: a defecting leader earns
	// γB·s/(SK + s_l) instead of αB·s/SL.
	g := tinyGame(100)
	rule := RoleBasedRule{Alpha: 0.2, Beta: 0.3}
	profile := g.AllC()
	profile[0] = Defect
	out := rule.Payout(g, profile, g.BlockProduced(profile))
	gamma := 0.5
	want := gamma * 100 * 10 / (120 + 10)
	if math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("defecting leader payout %v, want %v", out[0], want)
	}
	// The remaining leader now owns the whole α pool.
	if math.Abs(out[1]-0.2*100) > 1e-9 {
		t.Errorf("remaining leader payout %v, want 20", out[1])
	}
}

func TestRoleBasedGamma(t *testing.T) {
	r := RoleBasedRule{Alpha: 0.02, Beta: 0.03}
	if math.Abs(r.Gamma()-0.95) > 1e-12 {
		t.Errorf("Gamma = %v", r.Gamma())
	}
}

func TestStrategyCost(t *testing.T) {
	g := tinyGame(1)
	leader := g.Players[0]
	if g.StrategyCost(leader, Cooperate) != g.Costs.Leader {
		t.Error("cooperating leader must pay c^L")
	}
	if g.StrategyCost(leader, Defect) != g.Costs.Sortition {
		t.Error("defector must pay c_so")
	}
	if g.StrategyCost(leader, Offline) != g.Costs.Sortition {
		t.Error("offline must pay c_so")
	}
}

func TestPayoffsAllD(t *testing.T) {
	// Theorem 1's base case: under All-D everyone earns exactly -c_so.
	g := tinyGame(100)
	for _, rule := range []RewardRule{FoundationRule{}, RoleBasedRule{Alpha: 0.2, Beta: 0.3}} {
		payoffs := g.Payoffs(rule, g.AllD())
		for i, u := range payoffs {
			if math.Abs(u-(-g.Costs.Sortition)) > 1e-15 {
				t.Errorf("%s: player %d payoff %v, want -c_so", rule.Name(), i, u)
			}
		}
	}
}

func TestPayoffOfMatchesPayoffs(t *testing.T) {
	g := tinyGame(100)
	rule := RoleBasedRule{Alpha: 0.1, Beta: 0.2}
	profile := g.Theorem3Profile()
	all := g.Payoffs(rule, profile)
	for i := range g.Players {
		if one := g.PayoffOf(rule, profile, i); math.Abs(one-all[i]) > 1e-15 {
			t.Errorf("PayoffOf(%d) = %v, Payoffs[%d] = %v", i, one, i, all[i])
		}
	}
}

// Property: both reward rules conserve value — payouts sum to B whenever a
// block is produced and at least one player is eligible.
func TestPayoutConservationProperty(t *testing.T) {
	f := func(stakesRaw []uint16, aRaw, bRaw uint8) bool {
		if len(stakesRaw) < 6 {
			return true
		}
		g := tinyGame(0)
		for i := range g.Players {
			g.Players[i].Stake = float64(stakesRaw[i]%1000) + 1
		}
		g.B = 37.5
		alpha := 0.01 + float64(aRaw%40)/100
		beta := 0.01 + float64(bRaw%40)/100
		rules := []RewardRule{FoundationRule{}, RoleBasedRule{Alpha: alpha, Beta: beta}}
		profile := g.Theorem3Profile()
		for _, rule := range rules {
			out := rule.Payout(g, profile, true)
			sum := 0.0
			for _, v := range out {
				sum += v
			}
			if math.Abs(sum-g.B) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: foundation payouts are monotone in stake.
func TestFoundationMonotoneProperty(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		g := tinyGame(100)
		g.Players[4].Stake = float64(s1%1000) + 1
		g.Players[5].Stake = float64(s2%1000) + 1
		out := FoundationRule{}.Payout(g, g.AllC(), true)
		if g.Players[4].Stake <= g.Players[5].Stake {
			return out[4] <= out[5]+1e-12
		}
		return out[5] <= out[4]+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleNames(t *testing.T) {
	if (FoundationRule{}).Name() != "foundation" {
		t.Error("foundation name")
	}
	if (RoleBasedRule{}).Name() != "role-based" {
		t.Error("role-based name")
	}
}
