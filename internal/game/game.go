package game

import (
	"errors"
	"fmt"
)

// Role is a node's assignment in the round being analysed.
type Role uint8

// The three role classes of the paper: L, M and K.
const (
	RoleLeader Role = iota + 1
	RoleCommittee
	RoleOther
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleCommittee:
		return "committee"
	case RoleOther:
		return "other"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Strategy is a player's action in GAl / GAl+.
type Strategy uint8

// The strategy set S = {C, D, O}.
const (
	Cooperate Strategy = iota + 1
	Defect
	Offline
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Cooperate:
		return "C"
	case Defect:
		return "D"
	case Offline:
		return "O"
	default:
		return "?"
	}
}

// Player is one node in the round game.
type Player struct {
	ID    int
	Role  Role
	Stake float64
	// InSyncSet marks membership of the Algorand strong-synchrony set Y
	// (Definition 4); only meaningful for RoleOther players.
	InSyncSet bool
}

// Game is one round of GAl or GAl+ — the choice between the two is made
// by the RewardRule attached at evaluation time.
type Game struct {
	Players []Player
	Costs   RoleCosts
	// B is the per-round reward B_i disbursed when a block is produced.
	B float64
	// QuorumFrac is the fraction of committee stake that must cooperate
	// for the round to produce a block (the BA* vote threshold).
	QuorumFrac float64
}

// Validate checks the game is well formed: at least one player per role
// class referenced by the theorems and positive stakes.
func (g *Game) Validate() error {
	if len(g.Players) == 0 {
		return errors.New("game: no players")
	}
	if g.B < 0 {
		return errors.New("game: negative reward")
	}
	if g.QuorumFrac <= 0 || g.QuorumFrac > 1 {
		return errors.New("game: quorum fraction must be in (0, 1]")
	}
	for _, p := range g.Players {
		if p.Stake <= 0 {
			return fmt.Errorf("game: player %d has non-positive stake", p.ID)
		}
	}
	return nil
}

// Totals aggregates stakes per role for a given strategy profile view.
type Totals struct {
	SL, SM, SK, SN float64
	NL, NM, NK     int
	MinL, MinM     float64
	MinKSync       float64 // min stake of sync-set members in K
}

// Totals computes the role-stake aggregates S_L, S_M, S_K, S_N and the
// minimum role stakes s*_l, s*_m, s*_k used by Lemma 2 and Theorem 3.
func (g *Game) Totals() Totals {
	var t Totals
	for _, p := range g.Players {
		t.SN += p.Stake
		switch p.Role {
		case RoleLeader:
			t.SL += p.Stake
			t.NL++
			if t.MinL == 0 || p.Stake < t.MinL {
				t.MinL = p.Stake
			}
		case RoleCommittee:
			t.SM += p.Stake
			t.NM++
			if t.MinM == 0 || p.Stake < t.MinM {
				t.MinM = p.Stake
			}
		default:
			t.SK += p.Stake
			t.NK++
			if p.InSyncSet && (t.MinKSync == 0 || p.Stake < t.MinKSync) {
				t.MinKSync = p.Stake
			}
		}
	}
	return t
}

// Profile maps each player index to a strategy.
type Profile []Strategy

// AllC returns the all-cooperate profile for g.
func (g *Game) AllC() Profile { return uniformProfile(len(g.Players), Cooperate) }

// AllD returns the all-defect profile for g.
func (g *Game) AllD() Profile { return uniformProfile(len(g.Players), Defect) }

func uniformProfile(n int, s Strategy) Profile {
	p := make(Profile, n)
	for i := range p {
		p[i] = s
	}
	return p
}

// Theorem3Profile returns the paper's cooperative equilibrium candidate:
// leaders and committee cooperate, sync-set members of K cooperate, all
// remaining K players defect.
func (g *Game) Theorem3Profile() Profile {
	p := make(Profile, len(g.Players))
	for i, pl := range g.Players {
		switch {
		case pl.Role == RoleLeader || pl.Role == RoleCommittee:
			p[i] = Cooperate
		case pl.InSyncSet:
			p[i] = Cooperate
		default:
			p[i] = Defect
		}
	}
	return p
}

// BlockProduced evaluates the round-success predicate for a profile: at
// least one leader cooperates, the cooperating committee stake reaches the
// quorum fraction, and every strong-synchrony-set member cooperates
// (Definition 2: losing a sync-set member breaks strong synchrony, so no
// final block emerges).
func (g *Game) BlockProduced(profile Profile) bool {
	if len(profile) != len(g.Players) {
		return false
	}
	leaderC := false
	committeeC, committeeTotal := 0.0, 0.0
	for i, pl := range g.Players {
		coop := profile[i] == Cooperate
		switch pl.Role {
		case RoleLeader:
			if coop {
				leaderC = true
			}
		case RoleCommittee:
			committeeTotal += pl.Stake
			if coop {
				committeeC += pl.Stake
			}
		default:
			if pl.InSyncSet && !coop {
				return false
			}
		}
	}
	if !leaderC {
		return false
	}
	if committeeTotal == 0 {
		return false
	}
	return committeeC >= g.QuorumFrac*committeeTotal
}
