package game_test

import (
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/game"
)

// ExampleGame_IsNash reproduces Theorems 1 and 2 on a six-player round:
// under the Foundation's stake-proportional rewards, all-defection is a
// Nash equilibrium and all-cooperation is not.
func ExampleGame_IsNash() {
	g := &game.Game{
		Players: []game.Player{
			{ID: 0, Role: game.RoleLeader, Stake: 10},
			{ID: 1, Role: game.RoleLeader, Stake: 20},
			{ID: 2, Role: game.RoleCommittee, Stake: 10},
			{ID: 3, Role: game.RoleCommittee, Stake: 40},
			{ID: 4, Role: game.RoleOther, Stake: 10, InSyncSet: true},
			{ID: 5, Role: game.RoleOther, Stake: 110},
		},
		Costs:      game.DefaultRoleCosts(),
		B:          20, // period-1 Foundation reward
		QuorumFrac: 0.685,
	}
	rule := game.FoundationRule{}

	allD, _ := g.IsNash(rule, g.AllD())
	allC, devs := g.IsNash(rule, g.AllC())
	fmt.Println("All-D is NE:", allD)
	fmt.Println("All-C is NE:", allC)
	fmt.Println("example deviation:", devs[0].From.String(), "->", devs[0].To.String())
	// Output:
	// All-D is NE: true
	// All-C is NE: false
	// example deviation: C -> D
}

// ExampleTaskCosts_Roles derives the paper's per-role costs (Eq. 2) from
// the itemised Table II tasks.
func ExampleTaskCosts_Roles() {
	roles := game.DefaultTaskCosts().Roles()
	fmt.Printf("c^L  = %.0f microAlgos\n", roles.Leader/game.MicroAlgo)
	fmt.Printf("c^M  = %.0f microAlgos\n", roles.Committee/game.MicroAlgo)
	fmt.Printf("c^K  = %.0f microAlgos\n", roles.Other/game.MicroAlgo)
	fmt.Printf("c_so = %.0f microAlgos\n", roles.Sortition/game.MicroAlgo)
	// Output:
	// c^L  = 16 microAlgos
	// c^M  = 12 microAlgos
	// c^K  = 6 microAlgos
	// c_so = 5 microAlgos
}
