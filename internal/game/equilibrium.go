package game

import "fmt"

// Deviation records a profitable unilateral strategy change.
type Deviation struct {
	Player int
	From   Strategy
	To     Strategy
	Gain   float64
}

// String implements fmt.Stringer.
func (d Deviation) String() string {
	return fmt.Sprintf("player %d: %s -> %s gains %.9g", d.Player, d.From, d.To, d.Gain)
}

// epsGain is the numerical tolerance for "strictly profitable": gains
// below it are treated as ties (no incentive to move).
const epsGain = 1e-12

// IsNash reports whether profile is a Nash equilibrium of the game under
// the reward rule: no player can strictly increase its payoff by a
// unilateral strategy change. The full strategy set {C, D, O} is searched.
func (g *Game) IsNash(rule RewardRule, profile Profile) (bool, []Deviation) {
	devs := g.Deviations(rule, profile, 0)
	return len(devs) == 0, devs
}

// Deviations returns the profitable unilateral deviations from profile,
// up to limit entries (0 = unlimited).
func (g *Game) Deviations(rule RewardRule, profile Profile, limit int) []Deviation {
	var devs []Deviation
	scratch := make(Profile, len(profile))
	copy(scratch, profile)
	for i := range g.Players {
		base := g.PayoffOf(rule, scratch, i)
		for _, alt := range []Strategy{Cooperate, Defect, Offline} {
			if alt == profile[i] {
				continue
			}
			scratch[i] = alt
			gain := g.PayoffOf(rule, scratch, i) - base
			scratch[i] = profile[i]
			if gain > epsGain {
				devs = append(devs, Deviation{Player: i, From: profile[i], To: alt, Gain: gain})
				if limit > 0 && len(devs) >= limit {
					return devs
				}
			}
		}
	}
	return devs
}

// BestResponse returns player i's best strategy against the rest of the
// profile, with ties broken in favour of the current strategy (so an
// indifferent player does not churn).
func (g *Game) BestResponse(rule RewardRule, profile Profile, i int) (Strategy, float64) {
	scratch := make(Profile, len(profile))
	copy(scratch, profile)
	best := profile[i]
	bestPayoff := g.PayoffOf(rule, scratch, i)
	for _, alt := range []Strategy{Cooperate, Defect, Offline} {
		if alt == profile[i] {
			continue
		}
		scratch[i] = alt
		if u := g.PayoffOf(rule, scratch, i); u > bestPayoff+epsGain {
			best, bestPayoff = alt, u
		}
		scratch[i] = profile[i]
	}
	return best, bestPayoff
}

// BestResponseDynamics iterates best responses from the starting profile
// until a fixed point (a pure NE) or maxSweeps full passes. It returns the
// final profile and whether it converged to an equilibrium. The paper's
// prediction is that GAl converges to All-D while GAl+ with a sufficient
// B converges to the Theorem 3 cooperative profile.
func (g *Game) BestResponseDynamics(rule RewardRule, start Profile, maxSweeps int) (Profile, bool) {
	profile := make(Profile, len(start))
	copy(profile, start)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for i := range g.Players {
			if br, _ := g.BestResponse(rule, profile, i); br != profile[i] {
				profile[i] = br
				changed = true
			}
		}
		if !changed {
			ok, _ := g.IsNash(rule, profile)
			return profile, ok
		}
	}
	ok, _ := g.IsNash(rule, profile)
	return profile, ok
}

// DominatedOffline verifies Lemma 1 on this game: for every player and
// every opponent profile tested (the candidate profile plus its single
// flips), playing D yields at least the O payoff plus margin. It returns
// the first counterexample found, or nil.
func (g *Game) DominatedOffline(rule RewardRule, profile Profile) *Deviation {
	scratch := make(Profile, len(profile))
	copy(scratch, profile)
	for i := range g.Players {
		scratch[i] = Offline
		offU := g.PayoffOf(rule, scratch, i)
		scratch[i] = Defect
		defU := g.PayoffOf(rule, scratch, i)
		scratch[i] = profile[i]
		if offU > defU+epsGain {
			return &Deviation{Player: i, From: Defect, To: Offline, Gain: offU - defU}
		}
	}
	return nil
}
