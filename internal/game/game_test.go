package game

import (
	"math"
	"testing"
)

// paperCosts returns the evaluation cost vector in Algos.
func paperCosts() RoleCosts { return DefaultRoleCosts() }

func TestDefaultCostsMatchPaper(t *testing.T) {
	c := paperCosts()
	tol := 1e-12
	if math.Abs(c.Leader-16e-6) > tol {
		t.Errorf("c^L = %v, want 16 µAlgos", c.Leader)
	}
	if math.Abs(c.Committee-12e-6) > tol {
		t.Errorf("c^M = %v, want 12 µAlgos", c.Committee)
	}
	if math.Abs(c.Other-6e-6) > tol {
		t.Errorf("c^K = %v, want 6 µAlgos", c.Other)
	}
	if math.Abs(c.Sortition-5e-6) > tol {
		t.Errorf("c_so = %v, want 5 µAlgos", c.Sortition)
	}
}

func TestFixedCostIdentity(t *testing.T) {
	// Eq. 1: c_fix = c_ve + c_se + c_so + c_go + c_vs + c_vc, and the
	// "others" role cost is exactly c_fix (Eq. 2).
	tc := DefaultTaskCosts()
	want := tc.Verify + tc.Seed + tc.Sortition + tc.Gossip + tc.VerifyProof + tc.CountVotes
	if math.Abs(tc.Fixed()-want) > 1e-18 {
		t.Errorf("Fixed() = %v, want %v", tc.Fixed(), want)
	}
	rc := tc.Roles()
	if rc.Other != tc.Fixed() {
		t.Errorf("c^K = %v, want c_fix = %v", rc.Other, tc.Fixed())
	}
	if rc.Leader != tc.Fixed()+tc.Propose {
		t.Errorf("c^L = %v, want c_fix + c_bl", rc.Leader)
	}
	if rc.Committee != tc.Fixed()+tc.SelectBlock+tc.Vote {
		t.Errorf("c^M = %v, want c_fix + c_bs + c_vo", rc.Committee)
	}
}

func TestRoleCostsValidate(t *testing.T) {
	good := paperCosts()
	if err := good.Validate(); err != nil {
		t.Errorf("paper costs invalid: %v", err)
	}
	bad := []RoleCosts{
		{Leader: 16, Committee: 12, Other: 6, Sortition: 0},
		{Leader: 16, Committee: 12, Other: 4, Sortition: 5},
		{Leader: 16, Committee: 5, Other: 6, Sortition: 5},
		{Leader: 10, Committee: 12, Other: 6, Sortition: 5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad costs %d validated", i)
		}
	}
}

func TestForRole(t *testing.T) {
	c := RoleCosts{Leader: 4, Committee: 3, Other: 2, Sortition: 1}
	if c.ForRole(RoleLeader) != 4 || c.ForRole(RoleCommittee) != 3 || c.ForRole(RoleOther) != 2 {
		t.Error("ForRole mapping broken")
	}
}

// tinyGame builds the minimal game of the theorems: 2 leaders, 2 committee
// members, 2 others (one in the sync set), with easy round numbers.
func tinyGame(b float64) *Game {
	return &Game{
		Players: []Player{
			{ID: 0, Role: RoleLeader, Stake: 10},
			{ID: 1, Role: RoleLeader, Stake: 20},
			{ID: 2, Role: RoleCommittee, Stake: 10},
			{ID: 3, Role: RoleCommittee, Stake: 40},
			{ID: 4, Role: RoleOther, Stake: 10, InSyncSet: true},
			{ID: 5, Role: RoleOther, Stake: 110},
		},
		Costs:      paperCosts(),
		B:          b,
		QuorumFrac: 0.685,
	}
}

func TestGameValidate(t *testing.T) {
	g := tinyGame(1)
	if err := g.Validate(); err != nil {
		t.Errorf("valid game rejected: %v", err)
	}
	g.B = -1
	if err := g.Validate(); err == nil {
		t.Error("negative reward accepted")
	}
	g = tinyGame(1)
	g.QuorumFrac = 0
	if err := g.Validate(); err == nil {
		t.Error("zero quorum accepted")
	}
	g = tinyGame(1)
	g.Players[0].Stake = 0
	if err := g.Validate(); err == nil {
		t.Error("zero stake accepted")
	}
	if err := (&Game{QuorumFrac: 0.5}).Validate(); err == nil {
		t.Error("empty game accepted")
	}
}

func TestTotals(t *testing.T) {
	g := tinyGame(1)
	tt := g.Totals()
	if tt.SL != 30 || tt.SM != 50 || tt.SK != 120 || tt.SN != 200 {
		t.Errorf("totals = %+v", tt)
	}
	if tt.MinL != 10 || tt.MinM != 10 || tt.MinKSync != 10 {
		t.Errorf("minimums = %+v", tt)
	}
	if tt.NL != 2 || tt.NM != 2 || tt.NK != 2 {
		t.Errorf("counts = %+v", tt)
	}
}

func TestBlockProducedAllC(t *testing.T) {
	g := tinyGame(1)
	if !g.BlockProduced(g.AllC()) {
		t.Error("All-C should produce a block")
	}
	if g.BlockProduced(g.AllD()) {
		t.Error("All-D should not produce a block")
	}
}

func TestBlockProducedNeedsLeader(t *testing.T) {
	g := tinyGame(1)
	p := g.AllC()
	p[0], p[1] = Defect, Defect // both leaders out
	if g.BlockProduced(p) {
		t.Error("block produced without any leader")
	}
	p[1] = Cooperate // one leader is enough
	if !g.BlockProduced(p) {
		t.Error("one cooperating leader should suffice")
	}
}

func TestBlockProducedNeedsCommitteeQuorum(t *testing.T) {
	g := tinyGame(1)
	p := g.AllC()
	p[3] = Defect // 40 of 50 committee stake defects -> 20% < 68.5%
	if g.BlockProduced(p) {
		t.Error("block produced without committee quorum")
	}
	p[3], p[2] = Cooperate, Defect // 80% >= 68.5%
	if !g.BlockProduced(p) {
		t.Error("80% committee stake should reach quorum")
	}
}

func TestBlockProducedNeedsSyncSet(t *testing.T) {
	g := tinyGame(1)
	p := g.AllC()
	p[4] = Defect // the sync-set member
	if g.BlockProduced(p) {
		t.Error("block produced after a sync-set member defected")
	}
	p[4], p[5] = Cooperate, Defect // non-sync-set K node defecting is fine
	if !g.BlockProduced(p) {
		t.Error("non-sync-set defection should not break the block")
	}
}

func TestBlockProducedLengthMismatch(t *testing.T) {
	g := tinyGame(1)
	if g.BlockProduced(Profile{Cooperate}) {
		t.Error("short profile accepted")
	}
}

func TestTheorem3Profile(t *testing.T) {
	g := tinyGame(1)
	p := g.Theorem3Profile()
	want := Profile{Cooperate, Cooperate, Cooperate, Cooperate, Cooperate, Defect}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("profile[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	if !g.BlockProduced(p) {
		t.Error("theorem-3 profile should produce a block")
	}
}

func TestStrategyAndRoleStrings(t *testing.T) {
	if Cooperate.String() != "C" || Defect.String() != "D" || Offline.String() != "O" || Strategy(9).String() != "?" {
		t.Error("Strategy.String broken")
	}
	if RoleLeader.String() != "leader" || RoleCommittee.String() != "committee" ||
		RoleOther.String() != "other" || Role(9).String() != "role(9)" {
		t.Error("Role.String broken")
	}
}
