package game

// CoalitionGain evaluates a joint deviation: every member of the
// coalition switches to its listed strategy simultaneously. It returns
// each member's payoff change. A coalition deviation is profitable (in
// the strong-equilibrium sense) when every member weakly gains and at
// least one strictly gains.
func (g *Game) CoalitionGain(rule RewardRule, profile Profile, members []int, to []Strategy) []float64 {
	if len(members) != len(to) {
		return nil
	}
	base := make([]float64, len(members))
	basePayoffs := g.Payoffs(rule, profile)
	for i, m := range members {
		if m < 0 || m >= len(g.Players) {
			return nil
		}
		base[i] = basePayoffs[m]
	}
	deviated := make(Profile, len(profile))
	copy(deviated, profile)
	for i, m := range members {
		deviated[m] = to[i]
	}
	devPayoffs := g.Payoffs(rule, deviated)
	gains := make([]float64, len(members))
	for i, m := range members {
		gains[i] = devPayoffs[m] - base[i]
	}
	return gains
}

// CoalitionProfitable reports whether the joint deviation makes every
// member weakly better off with at least one strict gain.
func (g *Game) CoalitionProfitable(rule RewardRule, profile Profile, members []int, to []Strategy) bool {
	gains := g.CoalitionGain(rule, profile, members, to)
	if gains == nil {
		return false
	}
	strict := false
	for _, gain := range gains {
		if gain < -epsGain {
			return false
		}
		if gain > epsGain {
			strict = true
		}
	}
	return strict
}

// FindPairCoalition searches all two-player joint defections from the
// profile and returns the first profitable one, if any. The paper's
// Theorem 3 certifies only unilateral robustness; this probe measures how
// far that protection extends — pairs of K-group players can typically
// free-ride together once neither is individually pivotal.
func (g *Game) FindPairCoalition(rule RewardRule, profile Profile) ([]int, bool) {
	to := []Strategy{Defect, Defect}
	for i := 0; i < len(g.Players); i++ {
		if profile[i] != Cooperate {
			continue
		}
		for j := i + 1; j < len(g.Players); j++ {
			if profile[j] != Cooperate {
				continue
			}
			if g.CoalitionProfitable(rule, profile, []int{i, j}, to) {
				return []int{i, j}, true
			}
		}
	}
	return nil, false
}
