package game

// RewardRule maps a strategy profile to per-player rewards. The two
// implementations are the Foundation's stake-proportional split (Eq. 3,
// game GAl) and the paper's role-based split (Eq. 5, game GAl+).
//
// Neither scheme punishes defectors: a defecting node stays online and
// still collects whatever its effective group is owed — the root of the
// free-rider problem Theorem 2 formalises.
type RewardRule interface {
	// Name identifies the rule in experiment output.
	Name() string
	// Payout returns each player's reward, zero everywhere when no block
	// was produced this round.
	Payout(g *Game, profile Profile, produced bool) []float64
}

// FoundationRule is the Algorand Foundation proposal: the round reward B
// is split among all online nodes proportionally to stake, irrespective
// of role (r^L = r^M = r^K = B / S_N).
type FoundationRule struct{}

var _ RewardRule = FoundationRule{}

// Name implements RewardRule.
func (FoundationRule) Name() string { return "foundation" }

// Payout implements RewardRule.
func (FoundationRule) Payout(g *Game, profile Profile, produced bool) []float64 {
	out := make([]float64, len(g.Players))
	if !produced {
		return out
	}
	online := 0.0
	for i, p := range g.Players {
		if profile[i] != Offline {
			online += p.Stake
		}
	}
	if online == 0 {
		return out
	}
	rate := g.B / online
	for i, p := range g.Players {
		if profile[i] != Offline {
			out[i] = rate * p.Stake
		}
	}
	return out
}

// RoleBasedRule is the paper's mechanism: αB to the cooperating leaders,
// βB to the cooperating committee members, γB = (1−α−β)B to the remaining
// online nodes, each pool split proportionally to stake within its group.
// A defecting leader or committee member ignores its role and is treated
// as an ordinary online node, exactly as in the Lemma 2 deviation payoffs
// (it earns from the γ pool, whose stake base grows by its own stake).
type RoleBasedRule struct {
	Alpha, Beta float64
}

var _ RewardRule = RoleBasedRule{}

// Name implements RewardRule.
func (r RoleBasedRule) Name() string { return "role-based" }

// Gamma returns 1 − α − β.
func (r RoleBasedRule) Gamma() float64 { return 1 - r.Alpha - r.Beta }

// Payout implements RewardRule.
func (r RoleBasedRule) Payout(g *Game, profile Profile, produced bool) []float64 {
	out := make([]float64, len(g.Players))
	if !produced {
		return out
	}
	var sl, sm, sk float64
	for i, p := range g.Players {
		switch effectiveRole(p, profile[i]) {
		case RoleLeader:
			sl += p.Stake
		case RoleCommittee:
			sm += p.Stake
		case RoleOther:
			sk += p.Stake
		}
	}
	for i, p := range g.Players {
		switch effectiveRole(p, profile[i]) {
		case RoleLeader:
			if sl > 0 {
				out[i] = r.Alpha * g.B * p.Stake / sl
			}
		case RoleCommittee:
			if sm > 0 {
				out[i] = r.Beta * g.B * p.Stake / sm
			}
		case RoleOther:
			if sk > 0 {
				out[i] = r.Gamma() * g.B * p.Stake / sk
			}
		}
	}
	return out
}

// effectiveRole is the group a player is paid in: its assigned role when
// cooperating, the "others" pool when defecting, nothing when offline.
func effectiveRole(p Player, s Strategy) Role {
	switch s {
	case Cooperate:
		return p.Role
	case Defect:
		return RoleOther
	default:
		return 0 // offline: excluded from every pool
	}
}

// StrategyCost is what the strategy costs a player of the given role:
// cooperation costs the full role cost; defection and offline still pay
// the sortition cost c_so needed to join the network.
func (g *Game) StrategyCost(p Player, s Strategy) float64 {
	if s == Cooperate {
		return g.Costs.ForRole(p.Role)
	}
	return g.Costs.Sortition
}

// Payoffs evaluates every player's utility under the profile and rule:
// reward (if a block is produced) minus the strategy's cost.
func (g *Game) Payoffs(rule RewardRule, profile Profile) []float64 {
	produced := g.BlockProduced(profile)
	rewards := rule.Payout(g, profile, produced)
	out := make([]float64, len(g.Players))
	for i, p := range g.Players {
		out[i] = rewards[i] - g.StrategyCost(p, profile[i])
	}
	return out
}

// PayoffOf evaluates a single player's utility under the profile.
func (g *Game) PayoffOf(rule RewardRule, profile Profile, i int) float64 {
	produced := g.BlockProduced(profile)
	rewards := rule.Payout(g, profile, produced)
	return rewards[i] - g.StrategyCost(g.Players[i], profile[i])
}
