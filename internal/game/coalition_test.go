package game

import (
	"math"
	"testing"
)

func TestCoalitionGainMatchesUnilateral(t *testing.T) {
	g := tinyGame(100)
	rule := FoundationRule{}
	profile := g.AllC()
	// A singleton coalition must match the unilateral deviation gain.
	single := g.CoalitionGain(rule, profile, []int{5}, []Strategy{Defect})
	if single == nil {
		t.Fatal("nil gains")
	}
	base := g.PayoffOf(rule, profile, 5)
	dev := make(Profile, len(profile))
	copy(dev, profile)
	dev[5] = Defect
	want := g.PayoffOf(rule, dev, 5) - base
	if math.Abs(single[0]-want) > 1e-15 {
		t.Errorf("singleton coalition gain %v, want %v", single[0], want)
	}
}

func TestCoalitionGainValidation(t *testing.T) {
	g := tinyGame(100)
	if g.CoalitionGain(FoundationRule{}, g.AllC(), []int{1}, nil) != nil {
		t.Error("length mismatch accepted")
	}
	if g.CoalitionGain(FoundationRule{}, g.AllC(), []int{99}, []Strategy{Defect}) != nil {
		t.Error("out-of-range member accepted")
	}
}

func TestPairCoalitionBreaksBlock(t *testing.T) {
	// Two leaders defecting together kill the block; both end at -c_so,
	// strictly worse than their cooperative payoffs with a large reward —
	// not profitable.
	g := tinyGame(1000)
	if g.CoalitionProfitable(FoundationRule{}, g.AllC(), []int{0, 1}, []Strategy{Defect, Defect}) {
		t.Error("block-killing coalition reported profitable")
	}
}

func TestPairCoalitionFreeRides(t *testing.T) {
	// Under the Foundation rule at All-C, two non-pivotal players (a
	// leader plus the non-sync other) can defect together: the block
	// survives and both save costs.
	g := tinyGame(100)
	if !g.CoalitionProfitable(FoundationRule{}, g.AllC(), []int{0, 5}, []Strategy{Defect, Defect}) {
		t.Error("free-riding pair not detected under foundation rewards")
	}
}

func TestFindPairCoalitionFoundation(t *testing.T) {
	g := tinyGame(100)
	pair, found := g.FindPairCoalition(FoundationRule{}, g.AllC())
	if !found {
		t.Fatal("no profitable pair found at All-C under foundation (Theorem 2 implies one)")
	}
	if len(pair) != 2 {
		t.Errorf("pair = %v", pair)
	}
}

// TestTheorem3NotCoalitionProof documents the boundary of the paper's
// guarantee: Theorem 3 is a (unilateral) Nash equilibrium, and pairs that
// are jointly non-pivotal can still gain — here two committee members
// whose combined stake stays above quorum... in the tiny game committee
// is pivotal, so we use a widened committee.
func TestTheorem3NotCoalitionProof(t *testing.T) {
	// Committee of four equal members: any two leave 50% < 68.5%, so
	// pairs are blocked; singles leave 75% >= 68.5%, so singles are safe
	// for the block but unprofitable under role-based premiums.
	g := &Game{
		Players: []Player{
			{ID: 0, Role: RoleLeader, Stake: 10},
			{ID: 1, Role: RoleLeader, Stake: 20},
			{ID: 2, Role: RoleCommittee, Stake: 10},
			{ID: 3, Role: RoleCommittee, Stake: 10},
			{ID: 4, Role: RoleCommittee, Stake: 10},
			{ID: 5, Role: RoleCommittee, Stake: 10},
			{ID: 6, Role: RoleOther, Stake: 10, InSyncSet: true},
			{ID: 7, Role: RoleOther, Stake: 110},
		},
		Costs:      paperCosts(),
		QuorumFrac: 0.685,
	}
	bound := lemma2Bound(g, 0.2, 0.3)
	g.B = bound * 1.01
	rule := RoleBasedRule{Alpha: 0.2, Beta: 0.3}
	profile := g.Theorem3Profile()

	// Sanity: it is a unilateral NE.
	if ok, devs := g.IsNash(rule, profile); !ok {
		t.Fatalf("profile not NE at B above bound: %v", devs[0])
	}
	// Pairs of committee members jointly defecting would break quorum
	// (50% < 68.5%), so even coalitions cannot profit here — the premium
	// design extends to pairs whenever the quorum margin is below half
	// the committee.
	if _, found := g.FindPairCoalition(rule, profile); found {
		t.Error("profitable pair exists under role-based at B*; quorum margin analysis wrong")
	}
}
