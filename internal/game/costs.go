// Package game models a single Algorand round as the static
// non-cooperative game the paper analyses: the task-level cost model of
// Table II, the payoff functions of the Foundation scheme (GAl, Eq. 4)
// and the role-based scheme (GAl+, Eq. 5), and equilibrium analysis for
// Lemma 1–2 and Theorems 1–3.
package game

import (
	"errors"
	"fmt"
)

// MicroAlgo converts µAlgos to Algos; the paper quotes all costs in
// micro-Algos.
const MicroAlgo = 1e-6

// TaskCosts itemises the per-round cost of every protocol task a node may
// perform (Table II), in Algos.
type TaskCosts struct {
	Verify      float64 // c_ve: transaction verification
	Seed        float64 // c_se: seed generation
	Sortition   float64 // c_so: sortition algorithm
	VerifyProof float64 // c_vs: verify sortition proofs
	Propose     float64 // c_bl: block proposition (leaders only)
	Gossip      float64 // c_go: gossiping network messages
	SelectBlock float64 // c_bs: block selection (committee only)
	Vote        float64 // c_vo: voting (committee only)
	CountVotes  float64 // c_vc: vote counting
}

// DefaultTaskCosts reproduces the paper's evaluation constants: the
// itemised tasks sum to the role costs (c^L, c^M, c^K, c_so) =
// (16, 12, 6, 5) µAlgos used in Sec. V-A.
func DefaultTaskCosts() TaskCosts {
	return TaskCosts{
		Verify:      0.20 * MicroAlgo,
		Seed:        0.20 * MicroAlgo,
		Sortition:   5.00 * MicroAlgo,
		VerifyProof: 0.15 * MicroAlgo,
		Propose:     10.0 * MicroAlgo,
		Gossip:      0.30 * MicroAlgo,
		SelectBlock: 2.00 * MicroAlgo,
		Vote:        4.00 * MicroAlgo,
		CountVotes:  0.15 * MicroAlgo,
	}
}

// Fixed returns c_fix = c_ve + c_se + c_so + c_go + c_vs + c_vc (Eq. 1),
// the cost every cooperative node pays regardless of role.
func (t TaskCosts) Fixed() float64 {
	return t.Verify + t.Seed + t.Sortition + t.Gossip + t.VerifyProof + t.CountVotes
}

// RoleCosts aggregates the per-role per-round costs of Eq. 2 plus the
// sortition-only cost c_so paid even by defectors.
type RoleCosts struct {
	Leader    float64 // c^L = c_fix + c_bl
	Committee float64 // c^M = c_fix + c_bs + c_vo
	Other     float64 // c^K = c_fix
	Sortition float64 // c_so
}

// Roles derives the Eq. 2 role costs from the itemised tasks.
func (t TaskCosts) Roles() RoleCosts {
	fix := t.Fixed()
	return RoleCosts{
		Leader:    fix + t.Propose,
		Committee: fix + t.SelectBlock + t.Vote,
		Other:     fix,
		Sortition: t.Sortition,
	}
}

// DefaultRoleCosts returns the paper's (c^L, c^M, c^K, c_so) =
// (16, 12, 6, 5) µAlgos directly.
func DefaultRoleCosts() RoleCosts {
	return DefaultTaskCosts().Roles()
}

// Validate checks the structural constraints the analysis relies on:
// positive costs and c^L > c^M > c^K > c_so > 0.
func (c RoleCosts) Validate() error {
	switch {
	case c.Sortition <= 0:
		return errors.New("game: c_so must be positive")
	case c.Other <= c.Sortition:
		return fmt.Errorf("game: c^K (%g) must exceed c_so (%g)", c.Other, c.Sortition)
	case c.Committee <= c.Other:
		return fmt.Errorf("game: c^M (%g) must exceed c^K (%g)", c.Committee, c.Other)
	case c.Leader <= c.Committee:
		return fmt.Errorf("game: c^L (%g) must exceed c^M (%g)", c.Leader, c.Committee)
	}
	return nil
}

// ForRole returns the cooperation cost of a node playing the given role.
func (c RoleCosts) ForRole(r Role) float64 {
	switch r {
	case RoleLeader:
		return c.Leader
	case RoleCommittee:
		return c.Committee
	default:
		return c.Other
	}
}
