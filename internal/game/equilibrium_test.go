package game

import (
	"math"
	"testing"
)

// TestTheorem1AllDIsNash reproduces Theorem 1: under the Foundation rule,
// All-D is a Nash equilibrium — no unilateral cooperator can produce a
// block alone, so deviating only adds cost.
func TestTheorem1AllDIsNash(t *testing.T) {
	for _, b := range []float64{0, 5, 20, 1000} {
		g := tinyGame(b)
		if ok, devs := g.IsNash(FoundationRule{}, g.AllD()); !ok {
			t.Errorf("B=%v: All-D not NE: %v", b, devs[0])
		}
	}
}

// TestTheorem2AllCNotNash reproduces Theorem 2: under the Foundation rule
// All-C is never a Nash equilibrium — defectors keep their reward and
// save the cost difference.
func TestTheorem2AllCNotNash(t *testing.T) {
	for _, b := range []float64{0.1, 5, 20, 1000} {
		g := tinyGame(b)
		ok, devs := g.IsNash(FoundationRule{}, g.AllC())
		if ok {
			t.Fatalf("B=%v: All-C unexpectedly NE under foundation rewards", b)
		}
		// The deviation must be towards D, not O (Lemma 1).
		for _, d := range devs {
			if d.To == Offline {
				t.Errorf("B=%v: profitable deviation to Offline contradicts Lemma 1: %v", b, d)
			}
		}
	}
}

// TestTheorem2DeviationGain checks the exact gain of a defecting
// non-pivotal node under the Foundation rule: it saves its role cost minus
// c_so while keeping the same reward.
func TestTheorem2DeviationGain(t *testing.T) {
	g := tinyGame(100)
	profile := g.AllC()
	base := g.PayoffOf(FoundationRule{}, profile, 5) // plain online node, not pivotal
	profile[5] = Defect
	dev := g.PayoffOf(FoundationRule{}, profile, 5)
	wantGain := g.Costs.Other - g.Costs.Sortition
	if math.Abs((dev-base)-wantGain) > 1e-12 {
		t.Errorf("defection gain = %v, want c^K - c_so = %v", dev-base, wantGain)
	}
}

// TestLemma1OfflineDominated: O never strictly beats D.
func TestLemma1OfflineDominated(t *testing.T) {
	g := tinyGame(50)
	for _, rule := range []RewardRule{FoundationRule{}, RoleBasedRule{Alpha: 0.2, Beta: 0.3}} {
		for _, profile := range []Profile{g.AllC(), g.AllD(), g.Theorem3Profile()} {
			if dev := g.DominatedOffline(rule, profile); dev != nil {
				t.Errorf("%s: lemma 1 violated: %v", rule.Name(), dev)
			}
		}
	}
}

// lemma2Bound computes the Lemma 2 reward bound for the tiny game with
// shares (alpha, beta).
func lemma2Bound(g *Game, alpha, beta float64) float64 {
	tt := g.Totals()
	gamma := 1 - alpha - beta
	bl := (g.Costs.Leader - g.Costs.Sortition) /
		((alpha/tt.SL - gamma/(tt.SK+tt.MinL)) * tt.MinL)
	bm := (g.Costs.Committee - g.Costs.Sortition) /
		((beta/tt.SM - gamma/(tt.SK+tt.MinM)) * tt.MinM)
	bk := (g.Costs.Other - g.Costs.Sortition) * tt.SK / (tt.MinKSync * gamma)
	return math.Max(bl, math.Max(bm, bk))
}

// TestTheorem3CooperativeNash: with B above the Theorem 3 bound, the
// cooperative profile is a NE of GAl+; below the bound it is not.
func TestTheorem3CooperativeNash(t *testing.T) {
	alpha, beta := 0.2, 0.3
	g := tinyGame(0)
	bound := lemma2Bound(g, alpha, beta)
	rule := RoleBasedRule{Alpha: alpha, Beta: beta}
	profile := g.Theorem3Profile()

	g.B = bound * 1.0001
	if ok, devs := g.IsNash(rule, profile); !ok {
		t.Errorf("B just above bound: not NE: %v", devs[0])
	}

	g.B = bound * 0.50
	if ok, _ := g.IsNash(rule, profile); ok {
		t.Error("B at half the bound: cooperation should break")
	}
}

// TestTheorem3SyncSetPivotal: the sync-set member's incentive condition is
// exactly the third bound of Theorem 3.
func TestTheorem3SyncSetPivotal(t *testing.T) {
	alpha, beta := 0.2, 0.3
	g := tinyGame(0)
	tt := g.Totals()
	bk := (g.Costs.Other - g.Costs.Sortition) * tt.SK / (tt.MinKSync * (1 - alpha - beta))
	rule := RoleBasedRule{Alpha: alpha, Beta: beta}
	profile := g.Theorem3Profile()

	g.B = bk * 1.001
	base := g.PayoffOf(rule, profile, 4)
	profile[4] = Defect
	dev := g.PayoffOf(rule, profile, 4)
	profile[4] = Cooperate
	if dev >= base {
		t.Errorf("sync-set member should prefer C above the bound: C=%v D=%v", base, dev)
	}

	g.B = bk * 0.98
	base = g.PayoffOf(rule, profile, 4)
	profile[4] = Defect
	dev = g.PayoffOf(rule, profile, 4)
	if dev <= base {
		t.Errorf("sync-set member should prefer D below the bound: C=%v D=%v", base, dev)
	}
}

func TestBestResponse(t *testing.T) {
	g := tinyGame(100)
	// Under foundation rewards at All-C, every NON-PIVOTAL node's best
	// response is D. Players 3 (holds 80% of committee stake, quorum
	// breaks without it) and 4 (sync-set member) are pivotal: their
	// defection kills the block and their reward, so they stay C.
	wantDefect := []int{0, 1, 2, 5}
	for _, i := range wantDefect {
		br, _ := g.BestResponse(FoundationRule{}, g.AllC(), i)
		if br != Defect {
			t.Errorf("player %d best response = %v, want D", i, br)
		}
	}
	for _, i := range []int{3, 4} {
		br, _ := g.BestResponse(FoundationRule{}, g.AllC(), i)
		if br != Cooperate {
			t.Errorf("pivotal player %d best response = %v, want C", i, br)
		}
	}
}

func TestBestResponseDynamicsLeaveAllC(t *testing.T) {
	// Sequential best responses from All-C must converge to a NE that is
	// not All-C (Theorem 2); only pivotal players may remain cooperative.
	g := tinyGame(100)
	final, isNE := g.BestResponseDynamics(FoundationRule{}, g.AllC(), 20)
	if !isNE {
		t.Fatal("dynamics did not converge to a NE")
	}
	defections := 0
	for _, s := range final {
		if s == Defect {
			defections++
		}
	}
	if defections == 0 {
		t.Error("no player defected from All-C under foundation rewards")
	}
}

func TestBestResponseDynamicsFromAllDStayAllD(t *testing.T) {
	// All-D is absorbing (Theorem 1): dynamics started there never move.
	g := tinyGame(100)
	final, isNE := g.BestResponseDynamics(FoundationRule{}, g.AllD(), 20)
	if !isNE {
		t.Fatal("All-D not recognised as NE")
	}
	for i, s := range final {
		if s != Defect {
			t.Errorf("player %d left All-D to %v", i, s)
		}
	}
}

func TestBestResponseDynamicsStayCooperative(t *testing.T) {
	alpha, beta := 0.2, 0.3
	g := tinyGame(0)
	g.B = lemma2Bound(g, alpha, beta) * 1.01
	rule := RoleBasedRule{Alpha: alpha, Beta: beta}
	start := g.Theorem3Profile()
	final, isNE := g.BestResponseDynamics(rule, start, 20)
	if !isNE {
		t.Fatal("dynamics left the cooperative profile without converging")
	}
	for i, s := range final {
		if s != start[i] {
			t.Errorf("player %d moved from %v to %v", i, start[i], s)
		}
	}
}

func TestDeviationsLimit(t *testing.T) {
	g := tinyGame(100)
	devs := g.Deviations(FoundationRule{}, g.AllC(), 2)
	if len(devs) != 2 {
		t.Errorf("limit ignored: got %d deviations", len(devs))
	}
}

func TestDeviationString(t *testing.T) {
	d := Deviation{Player: 3, From: Cooperate, To: Defect, Gain: 0.5}
	if d.String() != "player 3: C -> D gains 0.5" {
		t.Errorf("String = %q", d.String())
	}
}
