package runpool

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

func TestSweepOrderIndependentOfWorkers(t *testing.T) {
	// Each run draws from its own labelled RNG stream, the same scheme
	// the experiment drivers use; every worker count must reproduce the
	// serial result exactly.
	fn := func(run int) ([]float64, error) {
		rng := sim.NewRNG(42+int64(run), "runpool.test")
		out := make([]float64, 8)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out, nil
	}
	serial, err := Sweep(16, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		parallel, err := Sweep(16, workers, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d produced different results than serial", workers)
		}
	}
}

func TestSweepReportsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Sweep(10, workers, func(run int) (int, error) {
			if run >= 3 {
				return 0, sentinel
			}
			return run, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "run 3") {
			t.Errorf("workers=%d: err = %v, want lowest-indexed run 3", workers, err)
		}
	}
}

func TestSweepRunsEveryIndexOnce(t *testing.T) {
	var calls atomic.Int64
	seen := make([]atomic.Bool, 100)
	res, err := Sweep(100, 7, func(run int) (int, error) {
		calls.Add(1)
		if seen[run].Swap(true) {
			t.Errorf("run %d executed twice", run)
		}
		return run * run, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Errorf("executed %d runs, want 100", calls.Load())
	}
	for i, v := range res {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(-1, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative run count accepted")
	}
	if _, err := Sweep[int](3, 1, nil); err == nil {
		t.Error("nil run function accepted")
	}
	res, err := Sweep(0, 4, func(int) (int, error) { return 1, nil })
	if err != nil || len(res) != 0 {
		t.Errorf("zero runs: res=%v err=%v", res, err)
	}
}

func TestResolve(t *testing.T) {
	if Resolve(5) != 5 {
		t.Error("positive workers not passed through")
	}
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("non-positive workers did not resolve to GOMAXPROCS")
	}
}

func TestAccumulateFoldsInOrder(t *testing.T) {
	got := Accumulate([]int{1, 2, 3}, "x", func(acc string, r int) string {
		return acc + string(rune('0'+r))
	})
	if got != "x123" {
		t.Errorf("Accumulate = %q, want x123", got)
	}
}

func TestMeanColumns(t *testing.T) {
	out, err := MeanColumns([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []float64{3, 4}) {
		t.Errorf("MeanColumns = %v", out)
	}
	if out, err := MeanColumns(nil); out != nil || err != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
	if _, err := MeanColumns([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestTrimmedMeanColumns(t *testing.T) {
	rows := [][]float64{{0, 10}, {1, 20}, {2, 30}, {3, 40}, {100, 50}}
	out, err := TrimmedMeanColumns(rows, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 drops the 0 and 100 outliers; column 1 drops 10 and 50.
	if !reflect.DeepEqual(out, []float64{2, 30}) {
		t.Errorf("TrimmedMeanColumns = %v, want [2 30]", out)
	}
	if _, err := TrimmedMeanColumns([][]float64{{1}, {2, 3}}, 0.2); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := TrimmedMeanColumns(rows, 0.7); err == nil {
		t.Error("invalid trim fraction accepted")
	}
}

func TestMeanOf(t *testing.T) {
	type r struct{ b float64 }
	if got := MeanOf([]r{{2}, {4}}, func(x r) float64 { return x.b }); got != 3 {
		t.Errorf("MeanOf = %v, want 3", got)
	}
	if got := MeanOf(nil, func(x r) float64 { return x.b }); got != 0 {
		t.Errorf("MeanOf(empty) = %v, want 0", got)
	}
}
