package runpool

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSweepFoldOrdered pins the core contract: fold sees runs in strict
// ascending index order, exactly once each, never concurrently — at any
// worker count, under completion-order pressure (later runs finish
// first).
func TestSweepFoldOrdered(t *testing.T) {
	const runs = 60
	for _, workers := range []int{1, 2, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var folded []int
			var values []int
			var inFold atomic.Int32
			err := SweepFold(runs, workers, nil,
				func(run int, _ struct{}) (int, error) {
					// Skew completion order: early runs finish last.
					time.Sleep(time.Duration((runs-run)%5) * time.Millisecond)
					return run * run, nil
				},
				func(run int, v int) error {
					if !inFold.CompareAndSwap(0, 1) {
						t.Error("fold entered concurrently")
					}
					defer inFold.Store(0)
					folded = append(folded, run)
					values = append(values, v)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(folded) != runs {
				t.Fatalf("folded %d runs, want %d", len(folded), runs)
			}
			for i, run := range folded {
				if run != i {
					t.Fatalf("fold order %v: position %d holds run %d", folded[:i+1], i, run)
				}
				if values[i] != i*i {
					t.Fatalf("run %d folded value %d, want %d", i, values[i], i*i)
				}
			}
		})
	}
}

// TestSweepFoldMatchesSweepWithState pins that folding is just a
// streamed version of collect-then-iterate: the fold observes the same
// (run, result) sequence SweepWithState would hand Accumulate.
func TestSweepFoldMatchesSweepWithState(t *testing.T) {
	const runs = 40
	fn := func(run int, scratch []int) (int, error) {
		// Recycled worker state, fully overwritten each run.
		scratch[0] = run * 3
		return scratch[0] + 1, nil
	}
	want, err := SweepWithState(runs, 4, func(int) []int { return make([]int, 1) }, fn)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	err = SweepFold(runs, 7, func(int) []int { return make([]int, 1) }, fn,
		func(run int, v int) error {
			got = append(got, v)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("folded %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: folded %d, collected %d", i, got[i], want[i])
		}
	}
}

// TestSweepFoldRunError: every run is attempted, the lowest-indexed fn
// error wins, and folding stops at the failed run.
func TestSweepFoldRunError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var attempted atomic.Int32
		var folded []int
		err := SweepFold(20, workers, nil,
			func(run int, _ struct{}) (int, error) {
				attempted.Add(1)
				if run == 7 || run == 11 {
					return 0, errors.New("boom")
				}
				return run, nil
			},
			func(run int, v int) error {
				folded = append(folded, run)
				return nil
			})
		if err == nil || !strings.Contains(err.Error(), "run 7") {
			t.Fatalf("workers=%d: err = %v, want lowest-indexed run 7", workers, err)
		}
		if attempted.Load() != 20 {
			t.Fatalf("workers=%d: attempted %d runs, want all 20", workers, attempted.Load())
		}
		for i, run := range folded {
			if run != i || run >= 7 {
				t.Fatalf("workers=%d: fold sequence %v crosses the failed run", workers, folded)
			}
		}
	}
}

// TestSweepFoldFoldError: a fold error is reported (when no fn failed)
// and no later run is folded.
func TestSweepFoldFoldError(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		var folded []int
		err := SweepFold(20, workers, nil,
			func(run int, _ struct{}) (int, error) { return run, nil },
			func(run int, v int) error {
				if run == 3 {
					return sentinel
				}
				folded = append(folded, run)
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want fold sentinel", workers, err)
		}
		if len(folded) != 3 {
			t.Fatalf("workers=%d: folded %v after fold error at run 3", workers, folded)
		}
	}
}

func TestSweepFoldValidation(t *testing.T) {
	fn := func(run int, _ struct{}) (int, error) { return 0, nil }
	fold := func(int, int) error { return nil }
	if err := SweepFold(-1, 1, nil, fn, fold); err == nil {
		t.Fatal("negative runs accepted")
	}
	if err := SweepFold[int, struct{}](1, 1, nil, nil, fold); err == nil {
		t.Fatal("nil fn accepted")
	}
	if err := SweepFold(1, 1, nil, fn, nil); err == nil {
		t.Fatal("nil fold accepted")
	}
	if err := SweepFold(0, 4, nil, fn, fold); err != nil {
		t.Fatalf("zero runs: %v", err)
	}
}
