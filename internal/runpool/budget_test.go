package runpool

import (
	"context"
	"testing"
	"time"
)

func TestWorkerBudgetClampAndGrant(t *testing.T) {
	b := NewWorkerBudget(4)
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	// Oversized requests clamp to the whole budget.
	n, release, err := b.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("granted %d, want clamp to 4", n)
	}
	if b.InUse() != 4 {
		t.Fatalf("InUse = %d, want 4", b.InUse())
	}
	release()
	release() // idempotent
	if b.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", b.InUse())
	}
	// Zero means "as many as the host would use", still clamped.
	n, release, err = b.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 4 {
		t.Fatalf("granted %d for workers=0, want within [1,4]", n)
	}
	release()
}

func TestWorkerBudgetFIFO(t *testing.T) {
	b := NewWorkerBudget(4)
	_, releaseA, err := b.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		who     string
		release func()
	}
	grants := make(chan grant, 2)
	acquire := func(who string, n int) {
		_, release, err := b.Acquire(context.Background(), n)
		if err != nil {
			t.Errorf("%s: %v", who, err)
			return
		}
		grants <- grant{who, release}
	}
	go acquire("big", 4)
	// Give "big" time to join the queue first, then queue a small job
	// that current free slots (1) could serve — FIFO must hold it behind
	// the big job anyway.
	for b.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	go acquire("small", 1)
	for b.Queued() < 2 {
		time.Sleep(time.Millisecond)
	}

	select {
	case g := <-grants:
		t.Fatalf("%s granted while head-of-queue job still waits", g.who)
	case <-time.After(20 * time.Millisecond):
	}

	releaseA()
	first := <-grants
	if first.who != "big" {
		t.Fatalf("first grant went to %s, want the queue head (big)", first.who)
	}
	first.release()
	second := <-grants
	if second.who != "small" {
		t.Fatalf("second grant went to %s, want small", second.who)
	}
	second.release()
	if b.InUse() != 0 || b.Queued() != 0 {
		t.Fatalf("budget not drained: inUse %d queued %d", b.InUse(), b.Queued())
	}
}

func TestWorkerBudgetAcquireCancel(t *testing.T) {
	b := NewWorkerBudget(2)
	_, release, err := b.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Acquire(ctx, 1)
		done <- err
	}()
	for b.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled Acquire returned nil error")
	}
	release()
	// The cancelled waiter must not have leaked slots or queue entries.
	n, release2, err := b.Acquire(context.Background(), 2)
	if err != nil || n != 2 {
		t.Fatalf("post-cancel Acquire = (%d, %v), want (2, nil)", n, err)
	}
	release2()
}
