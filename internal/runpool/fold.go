package runpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// SweepFold executes fn for every run index like SweepWithState, but
// streams each result into fold in strict run-index order instead of
// retaining the full result slice: fold(run, result) is called exactly
// once per successful run, in ascending run order, never concurrently,
// and the result is released immediately after, so a sweep's live
// results are bounded by the completion skew between workers rather
// than by the run count. This is the seam the streaming experiment
// sinks (experiments.Sink) build on.
//
// The determinism contract is SweepWithState's: fold observes runs
// 0, 1, 2, ... at any worker count, so a deterministic fold produces
// bit-identical state regardless of scheduling. The obligation on
// per-worker state is unchanged too (recycled buffers fully
// overwritten, caches pure). One addition: fn results handed to fold
// must not alias the worker state, because the worker has already
// moved on to another run by the time fold sees them.
//
// Error semantics mirror SweepWithState: every run's fn is attempted
// regardless of failures, and the lowest-indexed fn error is reported.
// Folding stops at the first failed run — results before it have all
// been folded, results after it are dropped — or at the first fold
// error, which is reported when no fn failed.
func SweepFold[T, S any](runs, workers int, newState func(worker int) S, fn func(run int, state S) (T, error), fold func(run int, result T) error) error {
	if runs < 0 {
		return fmt.Errorf("runpool: negative run count %d", runs)
	}
	if fn == nil {
		return fmt.Errorf("runpool: nil run function")
	}
	if fold == nil {
		return fmt.Errorf("runpool: nil fold function")
	}
	if newState == nil {
		newState = func(int) S { var zero S; return zero }
	}

	workers = Resolve(workers)
	if workers > runs {
		workers = runs
	}
	m := obs.DefaultPool()
	if workers <= 1 {
		state := newState(0)
		work := poolHook(fn, m, 0, runs)
		var firstErr, foldErr error
		for run := 0; run < runs; run++ {
			r, err := work(run, state)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("runpool: run %d: %w", run, err)
				}
				continue
			}
			if firstErr == nil && foldErr == nil {
				foldErr = fold(run, r)
			}
		}
		if firstErr != nil {
			return firstErr
		}
		return foldErr
	}

	var (
		mu       sync.Mutex
		pending  = make(map[int]T) // completed, not yet folded; bounded by worker skew
		errs     = make([]error, runs)
		nextFold int  // lowest run index not yet folded
		folding  bool // a worker is inside fold; others just deposit
		stopped  bool // fold hit a failed run or a fold error
		foldErr  error
		next     atomic.Int64
		wg       sync.WaitGroup
	)

	// deliver deposits one completed run and, unless another worker is
	// already folding, drains the contiguous prefix. fold runs outside
	// the lock; the folding flag keeps it serial.
	deliver := func(run int, r T, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs[run] = err
		} else {
			pending[run] = r
		}
		if folding {
			return
		}
		folding = true
		for !stopped && nextFold < runs {
			if errs[nextFold] != nil {
				stopped = true
				break
			}
			r, ok := pending[nextFold]
			if !ok {
				break
			}
			delete(pending, nextFold)
			idx := nextFold
			mu.Unlock()
			ferr := fold(idx, r)
			mu.Lock()
			if ferr != nil {
				foldErr = ferr
				stopped = true
				break
			}
			nextFold++
		}
		folding = false
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			state := newState(w)
			work := poolHook(fn, m, w, runs)
			for {
				run := int(next.Add(1)) - 1
				if run >= runs {
					return
				}
				r, err := work(run, state)
				deliver(run, r, err)
			}
		}()
	}
	wg.Wait()

	for run, err := range errs {
		if err != nil {
			return fmt.Errorf("runpool: run %d: %w", run, err)
		}
	}
	return foldErr
}
