// Package runpool fans independent simulation runs out across a fixed
// worker count while keeping every result bit-for-bit identical to a
// serial execution. The contract every experiment driver relies on:
//
//   - Each run derives all of its randomness from its own run index via
//     the sim.NewRNG(seed, label) labelled-stream scheme, so runs never
//     share mutable state.
//   - Results are collected into run-indexed slots and aggregated in
//     run-index order, never completion order, so the worker count and
//     goroutine scheduling cannot change any output.
//
// The zero worker count means "use GOMAXPROCS"; 1 degrades to a plain
// serial loop with no goroutines at all.
package runpool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// Resolve maps a configured worker count to the effective one: positive
// values pass through, anything else means GOMAXPROCS.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// poolHook wraps fn with one worker's run-pool telemetry (runs
// started/completed, claimed-queue depth, per-worker busy wall time);
// it returns fn unchanged when telemetry is disabled, so the disabled
// path adds nothing to the per-run call. Runs are claimed in ascending
// index order, so runs-1-run is the unclaimed count at claim time.
func poolHook[T, S any](fn func(run int, state S) (T, error), m *obs.PoolMetrics, worker, runs int) func(run int, state S) (T, error) {
	if m == nil {
		return fn
	}
	busy := m.WorkerBusy(worker)
	return func(run int, state S) (T, error) {
		m.RunsStarted.Add(1)
		m.QueueDepth.Set(int64(runs - 1 - run))
		t0 := time.Now()
		r, err := fn(run, state)
		busy.Add(uint64(time.Since(t0)))
		m.RunsCompleted.Add(1)
		return r, err
	}
}

// Sweep executes fn for every run index in [0, runs) across the given
// worker count and returns the results in run-index order. All runs are
// attempted even when some fail, and the error reported is always the
// lowest-indexed one, so failures are as deterministic as successes.
func Sweep[T any](runs, workers int, fn func(run int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("runpool: nil run function")
	}
	return SweepWithState(runs, workers, nil,
		func(run int, _ struct{}) (T, error) { return fn(run) })
}

// SweepWithState is Sweep with a per-worker state hook: newState is
// invoked once per worker (with the worker's index) and its value is
// threaded into every fn call that worker executes. Experiment drivers
// use it to hold a reusable arena — memory and memoisation pools that
// amortise per-run setup across the hundreds of runs of a sweep.
//
// The determinism contract is unchanged and puts one obligation on the
// state: runs are distributed to workers dynamically, so the state must
// be semantically transparent — recycled buffers fully overwritten,
// caches pure — or results would depend on which worker ran which run.
// A nil newState supplies the zero value.
func SweepWithState[T, S any](runs, workers int, newState func(worker int) S, fn func(run int, state S) (T, error)) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("runpool: negative run count %d", runs)
	}
	if fn == nil {
		return nil, fmt.Errorf("runpool: nil run function")
	}
	if newState == nil {
		newState = func(int) S { var zero S; return zero }
	}
	results := make([]T, runs)
	errs := make([]error, runs)

	workers = Resolve(workers)
	if workers > runs {
		workers = runs
	}
	m := obs.DefaultPool()
	if workers <= 1 {
		state := newState(0)
		work := poolHook(fn, m, 0, runs)
		for run := 0; run < runs; run++ {
			results[run], errs[run] = work(run, state)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			w := w
			go func() {
				defer wg.Done()
				state := newState(w)
				work := poolHook(fn, m, w, runs)
				for {
					run := int(next.Add(1)) - 1
					if run >= runs {
						return
					}
					results[run], errs[run] = work(run, state)
				}
			}()
		}
		wg.Wait()
	}

	for run, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runpool: run %d: %w", run, err)
		}
	}
	return results, nil
}

// FloatSlab carves equal-width float64 rows out of one contiguous
// allocation. Sweeps that aggregate per-run series previously allocated
// a handful of small slices per run (the ~14 MB/run fig3 aggregation
// buffers at -full scale); carving them from a slab costs one allocation
// per sweep and keeps rows cache-adjacent for the column-wise reductions
// that follow. Rows are disjoint and capacity-clamped, so concurrent
// workers writing different rows never share an element and rows can be
// retained or appended to safely.
type FloatSlab struct {
	backing []float64
	width   int
}

// NewFloatSlab allocates a slab of rows×width float64s.
func NewFloatSlab(rows, width int) *FloatSlab {
	if rows < 0 || width < 0 {
		rows, width = 0, 0
	}
	return &FloatSlab{backing: make([]float64, rows*width), width: width}
}

// Row returns row i: a zeroed []float64 of the slab's width.
func (s *FloatSlab) Row(i int) []float64 {
	lo := i * s.width
	return s.backing[lo : lo+s.width : lo+s.width]
}

// Accumulate folds per-run results in run-index order. It exists to make
// the deterministic-aggregation contract explicit at call sites: feed it
// a Sweep result and the fold sees runs 0, 1, 2, ... regardless of the
// order the pool finished them in.
func Accumulate[T, A any](results []T, acc A, fold func(acc A, r T) A) A {
	for _, r := range results {
		acc = fold(acc, r)
	}
	return acc
}

// MeanColumns averages rows element-wise: rows[run][i] in, mean over runs
// per position i out. All rows must share the first row's length; an
// empty input yields nil.
func MeanColumns(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	width := len(rows[0])
	out := make([]float64, width)
	for run, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("runpool: row %d has %d columns, want %d", run, len(row), width)
		}
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out, nil
}

// TrimmedMeanColumns reduces rows[run][i] to a per-position trimmed mean
// over runs, the paper's aggregation for its 100-instance averages.
func TrimmedMeanColumns(rows [][]float64, trim float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	width := len(rows[0])
	for run, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("runpool: row %d has %d columns, want %d", run, len(row), width)
		}
	}
	out := make([]float64, width)
	column := make([]float64, len(rows))
	for i := 0; i < width; i++ {
		for run, row := range rows {
			column[run] = row[i]
		}
		m, err := stats.TrimmedMean(column, trim)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// MeanOf averages one float64 per run, a common Sweep reduction.
func MeanOf[T any](results []T, value func(T) float64) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += value(r)
	}
	return sum / float64(len(results))
}
