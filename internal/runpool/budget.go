package runpool

import (
	"context"
	"fmt"
	"sync"
)

// WorkerBudget is the job-level scheduling seam for long-lived services
// running many sweeps concurrently: a FIFO semaphore over a fixed pool
// of worker slots. Each job acquires the worker count it will pass to
// Sweep/SweepFold before starting, so the total goroutine parallelism
// across every in-flight sweep never exceeds the budget, and jobs queue
// in submission order instead of oversubscribing the host.
//
// Scheduling is strictly FIFO: a large job at the head of the queue
// blocks smaller jobs behind it until it gets its slots. That head-of-
// line blocking is deliberate — backfilling small jobs around a big one
// would starve it on a busy service.
//
// The budget only shapes execution, never results: by the run-pool
// determinism contract a sweep's output is identical at any worker
// count, so whatever slot count a job is granted, its stream is
// byte-identical.
type WorkerBudget struct {
	mu      sync.Mutex
	total   int
	free    int
	waiters []*budgetWaiter
}

type budgetWaiter struct {
	n  int
	ch chan struct{}
}

// NewWorkerBudget builds a budget of total slots; total < 1 means one.
func NewWorkerBudget(total int) *WorkerBudget {
	if total < 1 {
		total = 1
	}
	return &WorkerBudget{total: total, free: total}
}

// Total returns the budget's slot count.
func (b *WorkerBudget) Total() int { return b.total }

// InUse returns the slots currently held by running jobs.
func (b *WorkerBudget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.free
}

// Queued returns the number of jobs waiting for slots.
func (b *WorkerBudget) Queued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.waiters)
}

// clamp maps a requested worker count to a grantable one: 0 and
// negatives mean "as many as the host would use" (Resolve), and no job
// may hold more than the whole budget.
func (b *WorkerBudget) clamp(n int) int {
	n = Resolve(n)
	if n > b.total {
		n = b.total
	}
	return n
}

// Acquire blocks until n slots are free and every earlier waiter has
// been served, then claims them. It returns the granted count (n after
// clamping — the worker count to run the sweep with) and an idempotent
// release function the job must call when its sweep finishes. A
// cancelled ctx abandons the wait.
func (b *WorkerBudget) Acquire(ctx context.Context, n int) (int, func(), error) {
	n = b.clamp(n)
	b.mu.Lock()
	if len(b.waiters) == 0 && b.free >= n {
		b.free -= n
		b.mu.Unlock()
		return n, b.releaseOnce(n), nil
	}
	w := &budgetWaiter{n: n, ch: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	select {
	case <-w.ch:
		return n, b.releaseOnce(n), nil
	case <-ctx.Done():
		b.mu.Lock()
		granted := true
		for i, q := range b.waiters {
			if q == w {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				granted = false
				break
			}
		}
		b.mu.Unlock()
		if granted {
			// The grant raced the cancellation: hand the slots back.
			b.release(n)
		}
		return 0, nil, fmt.Errorf("runpool: budget acquire: %w", ctx.Err())
	}
}

// releaseOnce wraps release in a sync.Once so double-releasing a job
// (deferred release plus an explicit one) cannot corrupt the budget.
func (b *WorkerBudget) releaseOnce(n int) func() {
	var once sync.Once
	return func() { once.Do(func() { b.release(n) }) }
}

// release returns n slots and serves the queue head-first.
func (b *WorkerBudget) release(n int) {
	b.mu.Lock()
	b.free += n
	for len(b.waiters) > 0 && b.free >= b.waiters[0].n {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		b.free -= w.n
		close(w.ch)
	}
	b.mu.Unlock()
}
