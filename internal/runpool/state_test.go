package runpool

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// workerArena is a toy worker state: a recycled buffer plus an identity,
// mirroring how experiment drivers use protocol arenas.
type workerArena struct {
	worker int
	buf    []float64
}

func TestSweepWithStateOnePerWorker(t *testing.T) {
	var created atomic.Int64
	var mu sync.Mutex
	seen := map[*workerArena]int{}
	_, err := SweepWithState(64, 4,
		func(worker int) *workerArena {
			created.Add(1)
			return &workerArena{worker: worker}
		},
		func(run int, a *workerArena) (int, error) {
			mu.Lock()
			seen[a]++
			mu.Unlock()
			return run, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := created.Load(); got != 4 {
		t.Errorf("newState invoked %d times, want once per worker (4)", got)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	// Run claiming is dynamic, so a fast worker may consume most runs;
	// what is guaranteed is that every call got some worker's state and
	// no more than one state per worker exists.
	if len(seen) < 1 || len(seen) > 4 || total != 64 {
		t.Errorf("runs used %d distinct states over %d calls, want 1..4 states over 64 calls", len(seen), total)
	}
}

func TestSweepWithStateSerialPath(t *testing.T) {
	var created int
	results, err := SweepWithState(5, 1,
		func(worker int) *workerArena {
			created++
			return &workerArena{worker: worker, buf: make([]float64, 1)}
		},
		func(run int, a *workerArena) (float64, error) {
			// The recycled buffer is fully overwritten each run, so reuse
			// cannot change results.
			a.buf[0] = float64(run * run)
			return a.buf[0], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if created != 1 {
		t.Errorf("serial path created %d states, want 1", created)
	}
	if !reflect.DeepEqual(results, []float64{0, 1, 4, 9, 16}) {
		t.Errorf("results = %v", results)
	}
}

func TestSweepWithStateNilStateFactory(t *testing.T) {
	results, err := SweepWithState[int, struct{}](3, 2, nil,
		func(run int, _ struct{}) (int, error) { return run + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, []int{1, 2, 3}) {
		t.Errorf("results = %v", results)
	}
}

func TestFloatSlabRowsDisjoint(t *testing.T) {
	s := NewFloatSlab(4, 3)
	for i := 0; i < 4; i++ {
		row := s.Row(i)
		if len(row) != 3 || cap(row) != 3 {
			t.Fatalf("row %d: len %d cap %d, want 3/3", i, len(row), cap(row))
		}
		for j := range row {
			row[j] = float64(10*i + j)
		}
	}
	for i := 0; i < 4; i++ {
		for j, v := range s.Row(i) {
			if v != float64(10*i+j) {
				t.Fatalf("rows overlap: row %d col %d = %v", i, j, v)
			}
		}
	}
	// Appending past a row's capacity must not bleed into its neighbour.
	row0 := append(s.Row(0), 99)
	_ = row0
	if s.Row(1)[0] != 10 {
		t.Fatal("append to row 0 overwrote row 1")
	}
}
