package protocol

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/game"
)

func TestTaskCountsAddAndCost(t *testing.T) {
	a := TaskCounts{Verify: 1, Sortition: 2, Vote: 3}
	b := TaskCounts{Verify: 10, Gossip: 5, Propose: 1}
	a.Add(b)
	if a.Verify != 11 || a.Gossip != 5 || a.Vote != 3 || a.Propose != 1 {
		t.Errorf("Add result %+v", a)
	}
	costs := game.TaskCosts{Verify: 2, Sortition: 3, Vote: 5, Gossip: 7, Propose: 11}
	want := 11.0*2 + 2*3 + 3*5 + 5*7 + 1*11
	if got := a.Cost(costs); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestRunnerTaskAccounting(t *testing.T) {
	behaviors := behaviorsOf(50, Honest)
	behaviors[5] = Selfish
	behaviors[6] = Faulty
	r := newTestRunner(t, 50, behaviors, 23)
	r.SubmitTransaction(1, 2, 1)
	rounds := 4
	r.RunRounds(rounds)

	counts := r.TaskCounts()
	if len(counts) != 50 {
		t.Fatalf("got counters for %d nodes", len(counts))
	}

	var honest, selfish, faulty TaskCounts
	for i, c := range counts {
		switch behaviors[i] {
		case Selfish:
			selfish.Add(c)
		case Faulty:
			faulty.Add(c)
		default:
			honest.Add(c)
		}
	}

	// Faulty nodes are offline: no work at all.
	if faulty != (TaskCounts{}) {
		t.Errorf("faulty node performed work: %+v", faulty)
	}
	// Selfish nodes pay only sortition (to stay joined) — no seeds, no
	// votes, no proposals, no relaying, no verification.
	if selfish.Sortition != uint64(rounds) {
		t.Errorf("selfish sortition count = %d, want %d", selfish.Sortition, rounds)
	}
	if selfish.Seed != 0 || selfish.Vote != 0 || selfish.Propose != 0 ||
		selfish.Gossip != 0 || selfish.VerifyProof != 0 || selfish.CountVotes != 0 {
		t.Errorf("selfish node performed protocol tasks: %+v", selfish)
	}
	// Honest nodes do everything: seeds every round, sortition every
	// round, votes, relays and proof verifications.
	if honest.Seed == 0 || honest.Sortition == 0 || honest.Vote == 0 ||
		honest.Gossip == 0 || honest.VerifyProof == 0 || honest.CountVotes == 0 ||
		honest.SelectBlock == 0 {
		t.Errorf("honest pool missing task classes: %+v", honest)
	}
	// Someone proposed in 4 rounds with near-certainty (tau_proposer=26).
	if honest.Propose == 0 {
		t.Error("no proposals counted")
	}

	// Pricing the counters with the paper's cost vector yields positive,
	// role-consistent expenditure: honest >> selfish.
	costs := game.DefaultTaskCosts()
	if honest.Cost(costs) <= selfish.Cost(costs) {
		t.Error("honest work priced below selfish work")
	}
	wantSelfish := float64(rounds) * costs.Sortition
	if got := selfish.Cost(costs); got != wantSelfish {
		t.Errorf("selfish cost = %v, want %v (rounds x c_so)", got, wantSelfish)
	}
}

func TestSetDegradedWindowStallsRounds(t *testing.T) {
	r := newTestRunner(t, 60, behaviorsOf(60, Honest), 29)
	r.SetDegradedWindow(2, 3)
	reports := r.RunRounds(5)
	if !reports[1].Degraded || !reports[2].Degraded {
		t.Error("forced window not marked degraded")
	}
	// Degraded rounds mostly fail; the surrounding rounds should fare
	// better on average.
	degradedFinal := reports[1].FinalFrac() + reports[2].FinalFrac()
	healthyFinal := reports[0].FinalFrac() + reports[4].FinalFrac()
	if degradedFinal >= healthyFinal {
		t.Errorf("degraded rounds finalised as much as healthy ones: %v >= %v",
			degradedFinal, healthyFinal)
	}
}
