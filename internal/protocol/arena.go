package protocol

import (
	"github.com/dsn2020-algorand/incentives/internal/network"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// Arena is a per-worker construction pool that amortises Runner setup
// across the runs of a sweep. Building a Runner from scratch allocates
// the node table (each node carrying tally tables, block maps and a
// ledger view), the key table, the cost meter, and a cold sortition
// cache; a sweep at -full scale pays that hundreds of times. An Arena
// recycles those structures between consecutive runs of one run-pool
// worker: pass it via Config.Arena, typically from a
// runpool.SweepWithState worker-state hook.
//
// The arena is semantically transparent — results are bit-for-bit
// identical with and without one, which the golden figure tests and the
// cross-worker determinism tests pin. Two rules make that hold:
//
//   - Recycled memory is fully re-initialised before reuse (takeNodes
//     resets every node, counters are zeroed, behaviour buffers are
//     overwritten by the caller).
//   - The shared sortition cache is a pure memoisation keyed on
//     (stake, probability): carrying entries across runs changes no
//     Select/Verify outcome, only their cost.
//
// An Arena is owned by one goroutine at a time: a Runner built from it
// borrows its storage, so the arena must not be handed to a second
// Runner until the first is done. One arena per run-pool worker (never
// shared across workers) satisfies both.
type Arena struct {
	cache     *sortition.Cache
	nodes     []*node
	keys      []vrf.KeyPair
	roleTaken []bool
	meter     *costMeter
	behaviors []Behavior
	// stakes is the caller-facing population scratch; see StakeBuf.
	stakes []float64
	// engine is the recycled simulation engine: the first run through the
	// arena stashes its engine here, later runs rewind it with
	// sim.Engine.Reset instead of re-growing the calendar queue's rings
	// from scratch. Reset keeps the scheduler geometry but pops in the
	// same strict (time, seq) order, so recycling is output-invisible.
	engine *sim.Engine
	// net recycles the gossip layer's topology slab and node tables; see
	// network.Arena.
	net network.Arena
	// nilNodes is the sparse-mode node table: a length-n all-nil slice that
	// beginRoundSparse links materialized nodes into. It is distinct from
	// nodes so a worker alternating dense and sparse runs keeps both pools.
	nilNodes []*node
	// behaviorTab is the runner-owned behaviour table (Runner.behaviors);
	// distinct from behaviors, the caller-facing BehaviorBuf scratch.
	behaviorTab []Behavior
	// sparse recycles the sparse-committee path's pooled node structs,
	// committee maps and scratch buffers; see sparseState.adopt.
	sparse *sparseState
}

// NewArena returns an empty arena; pools grow on first use.
func NewArena() *Arena {
	return &Arena{cache: sortition.NewCache()}
}

// takeNodes returns n recycled node structs, fully reset except for
// their retained containers (tally tables, block maps, vote-dedup maps),
// which the per-round reset machinery clears before first use.
func (a *Arena) takeNodes(n int) []*node {
	if cap(a.nodes) < n {
		grown := make([]*node, n)
		copy(grown, a.nodes[:cap(a.nodes)])
		a.nodes = grown
	}
	a.nodes = a.nodes[:n]
	for i, nd := range a.nodes {
		if nd == nil {
			a.nodes[i] = &node{}
			continue
		}
		// Preserve the allocated containers, drop everything else. The
		// maps still hold the previous run's entries; beginRound clears
		// them (and resets the pooled tallies) before any read.
		*nd = node{
			blocks:     nd.blocks,
			tallies:    nd.tallies,
			tallyPool:  nd.tallyPool,
			finalTally: nd.finalTally,
		}
	}
	return a.nodes
}

// takeNodesNil returns an all-nil node table of length n for the sparse
// path, where only the round's materialized nodes are linked in.
func (a *Arena) takeNodesNil(n int) []*node {
	if cap(a.nilNodes) < n {
		a.nilNodes = make([]*node, n)
	}
	a.nilNodes = a.nilNodes[:n]
	clear(a.nilNodes)
	return a.nilNodes
}

// takeBehaviors returns a cleared behaviour table of length n; NewRunner
// copies Config.Behaviors into it.
func (a *Arena) takeBehaviors(n int) []Behavior {
	if cap(a.behaviorTab) < n {
		a.behaviorTab = make([]Behavior, n)
	}
	a.behaviorTab = a.behaviorTab[:n]
	clear(a.behaviorTab)
	return a.behaviorTab
}

// takeKeys returns a zeroed key table of length n.
func (a *Arena) takeKeys(n int) []vrf.KeyPair {
	if cap(a.keys) < n {
		a.keys = make([]vrf.KeyPair, n)
	}
	a.keys = a.keys[:n]
	clear(a.keys)
	return a.keys
}

// takeRoleTaken returns a cleared role-scratch table of length n.
func (a *Arena) takeRoleTaken(n int) []bool {
	if cap(a.roleTaken) < n {
		a.roleTaken = make([]bool, n)
	}
	a.roleTaken = a.roleTaken[:n]
	clear(a.roleTaken)
	return a.roleTaken
}

// takeMeter returns a zeroed cost meter for n nodes.
func (a *Arena) takeMeter(n int) *costMeter {
	if a.meter == nil || cap(a.meter.counts) < n {
		a.meter = &costMeter{counts: make([]TaskCounts, n)}
		return a.meter
	}
	a.meter.counts = a.meter.counts[:n]
	clear(a.meter.counts)
	return a.meter
}

// StakeBuf returns a length-n float64 buffer owned by the arena, for
// sampling stake populations into (stake.SamplePopulationInto) instead
// of allocating a fresh vector per run. NewRunner never retains
// Config.Stakes — Genesis copies the values into ledger accounts — so
// the buffer is free again once the runner is built; with one arena per
// sweep worker and runs strictly sequential per worker, handing the same
// buffer to every cell is safe.
func (a *Arena) StakeBuf(n int) []float64 {
	if cap(a.stakes) < n {
		a.stakes = make([]float64, n)
	}
	return a.stakes[:n]
}

// BehaviorBuf returns a length-n behaviour buffer owned by the arena,
// initialised to Honest. Experiment drivers fill it and pass it as
// Config.Behaviors; NewRunner copies the values out, so the buffer is
// free for the worker's next run.
func (a *Arena) BehaviorBuf(n int) []Behavior {
	if cap(a.behaviors) < n {
		a.behaviors = make([]Behavior, n)
	}
	a.behaviors = a.behaviors[:n]
	for i := range a.behaviors {
		a.behaviors[i] = Honest
	}
	return a.behaviors
}
