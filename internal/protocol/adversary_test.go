package protocol

import (
	"testing"
)

// TestHonestStakeAssumptionHolds verifies the paper's adversary model
// boundary from the constructive side: when honest users hold well above
// the threshold h > 2/3 of stake, malicious nodes cannot stop consensus.
func TestHonestStakeAssumptionHolds(t *testing.T) {
	const n = 60
	stakes := make([]float64, n)
	behaviors := make([]Behavior, n)
	for i := range stakes {
		stakes[i] = 10
		behaviors[i] = Honest
	}
	// 10% of stake malicious: comfortably inside the h > 2/3 assumption.
	for i := 0; i < 6; i++ {
		behaviors[i] = Malicious
	}
	r, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      41,
	})
	if err != nil {
		t.Fatal(err)
	}
	decided := 0
	for _, rep := range r.RunRounds(6) {
		if rep.Decided {
			decided++
		}
	}
	if decided < 4 {
		t.Errorf("only %d/6 rounds decided with 10%% malicious stake", decided)
	}
}

// TestMaliciousMajorityBreaksLiveness verifies the boundary from the
// destructive side: an adversary holding ~45% of stake (violating
// h > 2/3) prevents final consensus — the BA* quorum of 68.5% of expected
// committee stake cannot be met by 55% honest participation.
func TestMaliciousMajorityBreaksLiveness(t *testing.T) {
	const n = 60
	stakes := make([]float64, n)
	behaviors := make([]Behavior, n)
	for i := range stakes {
		stakes[i] = 10
		behaviors[i] = Honest
	}
	for i := 0; i < 27; i++ { // 45% of nodes and stake
		behaviors[i] = Malicious
	}
	r, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      43,
	})
	if err != nil {
		t.Fatal(err)
	}
	finals := 0
	for _, rep := range r.RunRounds(5) {
		finals += rep.FinalCount
	}
	// Malicious voters split their votes, so honest nodes should almost
	// never observe a final quorum.
	if float64(finals) > 0.15*5*n {
		t.Errorf("final consensus survived a 45%% malicious adversary: %d final outcomes", finals)
	}
}

// TestRichDefectorsAmplifyDamage reproduces the paper's observation that
// "defection of these rich nodes can amplify the network synchrony
// problem": at equal node counts, defectors holding the richest accounts
// hurt liveness more than defectors holding the poorest.
func TestRichDefectorsAmplifyDamage(t *testing.T) {
	const n = 80
	const defectors = 12
	stakes := make([]float64, n)
	for i := range stakes {
		stakes[i] = float64(1 + i) // increasing stakes 1..80
	}

	run := func(rich bool) float64 {
		behaviors := make([]Behavior, n)
		for i := range behaviors {
			behaviors[i] = Honest
		}
		if rich {
			for i := n - defectors; i < n; i++ {
				behaviors[i] = Selfish
			}
		} else {
			for i := 0; i < defectors; i++ {
				behaviors[i] = Selfish
			}
		}
		r, err := NewRunner(Config{
			Params:    DefaultParams(),
			Stakes:    stakes,
			Behaviors: behaviors,
			Seed:      47,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, rep := range r.RunRounds(6) {
			sum += rep.FinalFrac()
		}
		return sum / 6
	}

	poorFinal := run(false)
	richFinal := run(true)
	if richFinal >= poorFinal {
		t.Errorf("rich defectors (final %.2f) should hurt more than poor ones (final %.2f)",
			richFinal, poorFinal)
	}
}

// TestSafetyNoConflictingFinalBlocks checks BA*'s safety goal: within a
// round, no two honest nodes finalise different non-empty blocks.
func TestSafetyNoConflictingFinalBlocks(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	for i := 0; i < 9; i++ {
		behaviors[i*6] = Malicious // 15% adversary, inside the h bound
	}
	r := newTestRunner(t, 60, behaviors, 53)
	for _, rep := range r.RunRounds(6) {
		var finalHash *[32]byte
		for id, outcome := range rep.Outcomes {
			if outcome != OutcomeFinal || behaviors[id] != Honest {
				continue
			}
			h := [32]byte(r.nodes[id].outcomeHash)
			if finalHash == nil {
				finalHash = &h
				continue
			}
			if *finalHash != h {
				t.Fatalf("round %d: honest nodes finalised different blocks", rep.Round)
			}
		}
	}
}
