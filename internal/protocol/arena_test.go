package protocol

import (
	"fmt"
	"reflect"
	"testing"
)

// runReportsDigest runs rounds and summarises every observable of the
// reports plus the runner's cost counters.
func runReportsDigest(t *testing.T, cfg Config, rounds int) string {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, rep := range r.RunRounds(rounds) {
		out += fmt.Sprintf("%d:%d/%d/%d:%s:%v:%d;", rep.Round, rep.FinalCount,
			rep.TentativeCount, rep.NoneCount, rep.CanonicalHash, rep.Decided, rep.Desynced)
	}
	out += fmt.Sprintf("tip=%s fees=%v counts=%v", r.Canonical().Tip(), r.FeesCollected(), r.TaskCounts())
	return out
}

// TestArenaRunnersMatchFreshRunners pins the arena's transparency
// contract: a Runner built from a warm arena — one that already carried
// a different run, with a populated sortition cache and dirty recycled
// node state — must produce bit-identical reports to a fresh build.
func TestArenaRunnersMatchFreshRunners(t *testing.T) {
	mkCfg := func(n int, seed int64) Config {
		stakes := make([]float64, n)
		behaviors := make([]Behavior, n)
		for i := range stakes {
			stakes[i] = float64(1 + i%50)
			behaviors[i] = Honest
			if i%9 == 0 {
				behaviors[i] = Selfish
			}
		}
		return Config{Params: DefaultParams(), Stakes: stakes, Behaviors: behaviors, Seed: seed}
	}

	fresh := map[string]string{}
	for _, n := range []int{40, 60} {
		for seed := int64(1); seed <= 3; seed++ {
			fresh[fmt.Sprintf("%d/%d", n, seed)] = runReportsDigest(t, mkCfg(n, seed), 4)
		}
	}

	// One arena carries every run back to back, including population-size
	// changes mid-stream (the grid driver does exactly this).
	ar := NewArena()
	for _, n := range []int{60, 40} { // reversed order: maximally stale reuse
		for seed := int64(3); seed >= 1; seed-- {
			cfg := mkCfg(n, seed)
			cfg.Arena = ar
			got := runReportsDigest(t, cfg, 4)
			if want := fresh[fmt.Sprintf("%d/%d", n, seed)]; got != want {
				t.Fatalf("arena runner diverged from fresh runner at n=%d seed=%d\narena: %s\nfresh: %s", n, seed, got, want)
			}
		}
	}
}

// TestArenaBuffersReinitialised pins the helper-buffer contract: buffers
// come back sized and defaulted, regardless of what the previous run
// left in them.
func TestArenaBuffersReinitialised(t *testing.T) {
	ar := NewArena()
	b := ar.BehaviorBuf(8)
	for i := range b {
		b[i] = Faulty
	}
	if !reflect.DeepEqual(ar.BehaviorBuf(4), []Behavior{Honest, Honest, Honest, Honest}) {
		t.Fatal("BehaviorBuf not reset to Honest on reuse")
	}
}
