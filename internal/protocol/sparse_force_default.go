//go:build !protocol_pernode_draw

package protocol

// forcePerNodeDraw routes every sparse-eligible configuration back to the
// dense per-node sortition sweep when true. The protocol_pernode_draw
// build tag flips the default, turning the whole test suite into a
// differential-oracle run against the legacy path, mirroring
// sim_legacy_heap, ledger_deepclone and weight_ledgerdirect.
const forcePerNodeDraw = false
