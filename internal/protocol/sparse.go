package protocol

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/network"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// SparseMode selects between the dense per-node sortition sweep and the
// centralized sparse-committee round path.
//
// The dense path evaluates one VRF lottery per node per step — O(N) work
// per step for committees whose expected size is a constant τ — and
// clones a ledger view per node. The sparse path draws each step's TOTAL
// seat count from one binomial over the whole network stake, maps seats
// to nodes by bisecting cumulative stake, and materializes per-node
// runner state only for the nodes that can act this round (committee
// members plus a uniform probe panel). Per-round cost then tracks
// committee size, not population, which is what lets a 500k-node run
// complete on one machine.
//
// The two paths are distributionally equivalent, not bit-identical: by
// binomial splitting, total-draw-then-stake-weighted-seat-assignment
// (without replacement over stake units) yields exactly the joint
// per-node Binomial(w_i, τ/W) law of independent per-node draws, and the
// randomized equivalence suite pins the committee-size distributions
// against each other. Gossip becomes mean-field (see sparseGossip), and
// per-node round outcomes are observed on the probe panel and
// extrapolated to the unmaterialized population, so RoundReport.Outcomes
// is nil in sparse rounds (Population carries the denominator).
type SparseMode uint8

const (
	// SparseAuto — the default — picks the sparse path when the
	// population is at least SparseAutoThreshold nodes AND the committee
	// taus are absolute (> 1): fractional taus select stake-proportional
	// committees that are themselves O(N), so there is nothing sparse to
	// exploit. Small or fractional-tau configurations keep the dense
	// path, bit-identical to builds that predate sparse mode.
	SparseAuto SparseMode = iota
	// SparseOff forces the dense per-node sweep.
	SparseOff
	// SparseOn forces the sparse path and makes NewRunner reject
	// configurations it cannot serve (fractional taus). Under the
	// protocol_pernode_draw oracle build tag, SparseOn still runs dense.
	SparseOn
)

// SparseAutoThreshold is the population size at which SparseAuto switches
// to the sparse path (given absolute taus). Below it the dense sweep is
// cheap and keeps golden outputs bit-identical.
const SparseAutoThreshold = 4096

// String renders the mode the way ParseSparseMode reads it.
func (m SparseMode) String() string {
	switch m {
	case SparseOff:
		return "off"
	case SparseOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseSparseMode reads the CLI spelling of a SparseMode.
func ParseSparseMode(s string) (SparseMode, error) {
	switch s {
	case "", "auto":
		return SparseAuto, nil
	case "off", "dense":
		return SparseOff, nil
	case "on", "sparse":
		return SparseOn, nil
	}
	return SparseAuto, fmt.Errorf("protocol: unknown sparse mode %q (want auto, on or off)", s)
}

// sparsePanelSize is the probe-panel size: uniformly drawn nodes
// materialized as pure observers so per-node outcome and desync fractions
// can be measured and extrapolated to the unmaterialized population.
const sparsePanelSize = 256

// errSparseTau rejects SparseOn with fractional taus.
var errSparseTau = errors.New(
	"protocol: Sparse: SparseOn requires absolute TauStep and TauFinal (> 1); " +
		"fractional taus make committees O(population)")

// sparseEligible reports whether cfg can run the sparse path at all.
func sparseEligible(cfg *Config) bool {
	return cfg.Params.TauStep > 1 && cfg.Params.TauFinal > 1
}

// sparseCommittee is one step's pre-sampled committee: seat counts by
// node plus the deterministic (sorted) iteration order. Seats are the
// lottery only — behaviour/online/synced filters apply at emission time,
// exactly where the dense path applies them, so mid-round behaviour flips
// (adaptive corruption) see the same semantics on both paths.
type sparseCommittee struct {
	seats map[int]int
	ids   []int
}

func (c *sparseCommittee) reset() {
	if c.seats == nil {
		c.seats = make(map[int]int)
	} else {
		clear(c.seats)
	}
	c.ids = c.ids[:0]
}

// sparseState is the per-runner state of the sparse-committee path.
type sparseState struct {
	// rng is the dedicated deterministic stream ("protocol.sparse") every
	// sparse draw consumes, in a fixed code order over sorted id sets, so
	// runs are reproducible and worker-count invariant.
	rng *rand.Rand

	// idx is the weight-index fast path for seat→node bisection; nil when
	// the runner's oracle is not an incremental index. prefix is the
	// fallback: integer stake-unit prefix sums rebuilt each round.
	idx    *weight.Index
	prefix []int64

	// trials is Σ int(w_i): the total integer stake units, the binomial
	// trial count a whole-network draw runs over (dense sortition
	// truncates each node's stake to whole units — see sortition.Select).
	trials int64
	// integral notes whether every stake is a whole number this round,
	// the precondition for bisecting the float Fenwick tree exactly.
	integral bool

	// committees maps sortition step → pre-sampled committee. Step 0 is
	// the proposer lottery; finalVoteStep the final committee.
	committees map[uint64]*sparseCommittee
	comPool    []*sparseCommittee

	// actors are the materialized nodes this round, sorted by id; the
	// same structs are linked from Runner.nodes[id]. free pools returned
	// node structs across rounds.
	actors []*node
	free   []*node

	// panel are this round's probe ids (sorted, distinct, uniform).
	panel []int

	// pinned are ids materialized every round regardless of committee or
	// panel membership, set via Runner.PinMaterialized. Adversary
	// scenarios that name victims by index pin them so per-victim
	// NodeOutcome queries report exact outcomes instead of the
	// unmaterialized OutcomeNone. Pinned nodes join the exact-outcome
	// side of the panel extrapolation (they are materialized), but never
	// the panel statistics themselves — the panel stays a uniform draw.
	pinned []int

	// desynced is the explicit lagging-node set replacing per-node ledger
	// views: materialized nodes all share the canonical ledger read-only,
	// and membership here is what "behind the canonical chain" means.
	desynced map[int]struct{}

	// hops is the modelled gossip path length: each mean-field delivery
	// delays by the sum of hops per-hop samples.
	hops int

	// reach is this round's expected epidemic coverage (recomputed each
	// round from the live relay fraction); relayFrac backs it.
	reach float64

	// delayTable is the round's empirical path-delay distribution: each
	// entry is one pre-sampled multi-hop first-passage delay, and every
	// mean-field delivery draws one entry uniformly. Pre-sampling keeps the
	// per-delivery cost at a single RNG draw while the table itself models
	// hops × (min of fanout per-hop samples) — the epidemic front advances
	// on the fastest outgoing link of each relay, not an average one, which
	// is what makes sparse vote-arrival times match the dense network's
	// first-arrival times within the step windows.
	delayTable []time.Duration

	// scratch buffers reused across rounds.
	idScratch  []int
	desScratch []int
}

func newSparseState(rng *rand.Rand) *sparseState {
	return &sparseState{
		rng:        rng,
		committees: make(map[uint64]*sparseCommittee),
		desynced:   make(map[int]struct{}),
	}
}

// adopt rewinds a recycled sparseState for a fresh runner, keeping pooled
// node structs and committee maps but dropping all run-specific state.
func (s *sparseState) adopt(rng *rand.Rand) {
	s.rng = rng
	s.idx = nil
	for step, c := range s.committees {
		c.reset()
		s.comPool = append(s.comPool, c)
		delete(s.committees, step)
	}
	for _, nd := range s.actors {
		s.free = append(s.free, nd)
	}
	s.actors = s.actors[:0]
	s.panel = s.panel[:0]
	s.pinned = s.pinned[:0]
	clear(s.desynced)
}

// takeCommittee returns a cleared committee from the pool.
func (s *sparseState) takeCommittee() *sparseCommittee {
	if n := len(s.comPool); n > 0 {
		c := s.comPool[n-1]
		s.comPool = s.comPool[:n-1]
		return c
	}
	c := &sparseCommittee{seats: make(map[int]int)}
	return c
}

// committeeFor returns the pre-sampled committee for a sortition step (0
// = proposer, finalVoteStep = final committee), or nil outside the
// sampled set.
func (s *sparseState) committeeFor(step uint64) *sparseCommittee {
	return s.committees[step]
}

// refreshWeights derives the round's integer stake-unit geometry from the
// runner's weight snapshot: total trials, integrality, and — when the
// Fenwick fast path is unavailable or inexact — the unit prefix array.
func (s *sparseState) refreshWeights(stakes []float64, oracle weight.Oracle) {
	s.trials = 0
	s.integral = true
	for _, w := range stakes {
		t := int64(w)
		s.trials += t
		if float64(t) != w {
			s.integral = false
		}
	}
	s.idx = nil
	if idx, ok := oracle.(*weight.Index); ok && s.integral {
		// Whole-unit stakes make the float Fenwick tree an exact integer
		// prefix structure, so seat units bisect it without building
		// anything per round.
		s.idx = idx
		return
	}
	s.prefix = s.prefix[:0]
	if cap(s.prefix) < len(stakes)+1 {
		s.prefix = make([]int64, 0, len(stakes)+1)
	}
	var cum int64
	s.prefix = append(s.prefix, 0)
	for _, w := range stakes {
		cum += int64(w)
		s.prefix = append(s.prefix, cum)
	}
}

// seatNode maps one stake unit (0 <= unit < trials) to its owning node.
func (s *sparseState) seatNode(unit int64) int {
	if s.idx != nil {
		return s.idx.Bisect(float64(unit))
	}
	// smallest i with prefix[i+1] > unit
	return sort.Search(len(s.prefix)-1, func(i int) bool { return s.prefix[i+1] > int64(unit) })
}

// sampleCommittee draws one step's whole-network lottery: the total seat
// count S ~ Binomial(trials, tau/W), then S distinct stake units sampled
// without replacement and mapped to their owners. Sampling units without
// replacement makes the per-node seat counts exactly the multivariate
// conditional of independent per-node Binomial(w_i, tau/W) draws — the
// dense path's joint law — including the cap that a node can never hold
// more seats than stake units.
func (s *sparseState) sampleCommittee(tau, totalStake float64) *sparseCommittee {
	c := s.takeCommittee()
	if s.trials <= 0 || totalStake <= 0 {
		return c
	}
	p := tau / totalStake
	seatCount := sortition.Binomial(s.rng, s.trials, p)
	if seatCount <= 0 {
		return c
	}
	// Distinct-unit rejection sampling: seatCount ≪ trials in every
	// sparse-eligible configuration, so collisions are rare. The unit set
	// is only needed transiently.
	taken := make(map[int64]struct{}, seatCount)
	for int64(len(taken)) < seatCount {
		u := s.rng.Int63n(s.trials)
		if _, dup := taken[u]; dup {
			continue
		}
		taken[u] = struct{}{}
		id := s.seatNode(u)
		if c.seats[id] == 0 {
			c.ids = append(c.ids, id)
		}
		c.seats[id]++
	}
	sort.Ints(c.ids)
	return c
}

// samplePanel draws the probe panel: min(sparsePanelSize, n) distinct
// uniform ids. Uniformity over the whole population (not stake) is what
// lets panel outcome fractions extrapolate to per-node counts.
func (s *sparseState) samplePanel(n int) {
	s.panel = s.panel[:0]
	want := sparsePanelSize
	if want > n {
		want = n
	}
	taken := make(map[int]struct{}, want)
	for len(s.panel) < want {
		id := s.rng.Intn(n)
		if _, dup := taken[id]; dup {
			continue
		}
		taken[id] = struct{}{}
		s.panel = append(s.panel, id)
	}
	sort.Ints(s.panel)
}

// takeNode returns a pooled node struct, reset the same way the arena
// resets dense nodes (containers kept, everything else zeroed).
func (s *sparseState) takeNode() *node {
	if n := len(s.free); n > 0 {
		nd := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*nd = node{
			blocks:     nd.blocks,
			tallies:    nd.tallies,
			tallyPool:  nd.tallyPool,
			finalTally: nd.finalTally,
		}
		return nd
	}
	return &node{}
}

// --- Runner integration --------------------------------------------------

// sparseHops models the epidemic path length for a population of n with
// the given fanout: the depth at which a fanout-ary push tree covers n.
func sparseHops(n, fanout int) int {
	if fanout < 2 {
		fanout = 2
	}
	h := int(math.Ceil(math.Log(float64(n)) / math.Log(float64(fanout))))
	if h < 1 {
		h = 1
	}
	return h
}

// beginRoundSparse replaces the dense O(N) per-node round entry: it
// pre-samples every step committee, materializes committee ∪ panel, and
// runs the flat meter passes (sortition/seed costs accrue to all online
// non-faulty nodes whether or not they are materialized).
func (r *Runner) beginRoundSparse(round uint64, lastStep int) {
	s := r.sparse
	n := len(r.roundStakes)

	// Return last round's materialized nodes to the pool.
	for _, nd := range s.actors {
		r.nodes[nd.id] = nil
		s.free = append(s.free, nd)
	}
	s.actors = s.actors[:0]
	for step, c := range s.committees {
		c.reset()
		s.comPool = append(s.comPool, c)
		delete(s.committees, step)
	}

	s.refreshWeights(r.roundStakes, r.weights)

	// Pre-sample every step's lottery up front, in a fixed step order, so
	// the materialized set is known before any phase event fires and
	// mean-field deliveries can target the full round's audience.
	s.committees[0] = s.sampleCommittee(r.params.TauProposer, r.roundTotal)
	for step := uint64(1); step <= uint64(lastStep); step++ {
		s.committees[step] = s.sampleCommittee(r.tauStepAbs, r.roundTotal)
	}
	s.committees[finalVoteStep] = s.sampleCommittee(r.tauFinalAbs, r.roundTotal)
	s.samplePanel(n)

	// Materialize committee ∪ panel, sorted by id. Materialized nodes
	// share the canonical ledger read-only (commits become desynced-set
	// updates, never Append), so no per-node clone exists anywhere.
	ids := s.idScratch[:0]
	seen := make(map[int]struct{}, 16*len(s.panel))
	collect := func(id int) {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	for step := uint64(0); step <= uint64(lastStep); step++ {
		for _, id := range s.committees[step].ids {
			collect(id)
		}
	}
	for _, id := range s.committees[finalVoteStep].ids {
		collect(id)
	}
	for _, id := range s.panel {
		collect(id)
	}
	for _, id := range s.pinned {
		collect(id)
	}
	sort.Ints(ids)
	s.idScratch = ids

	for _, id := range ids {
		nd := s.takeNode()
		nd.id = id
		nd.behavior = r.behaviors[id]
		nd.ledger = r.canonical
		_, behind := s.desynced[id]
		nd.synced = !behind
		nd.beginRound(round)
		r.nodes[id] = nd
		s.actors = append(s.actors, nd)
	}

	// Flat meter pass: every online node derives the round seed; even
	// defectors run sortition to join the network ("paying cost c_so").
	for id := 0; id < n; id++ {
		if r.net.Online(id) && r.behaviors[id] != Faulty {
			meter := r.meter.of(id)
			meter.Sortition++
			if r.behaviors[id] != Selfish {
				meter.Seed++
			}
		}
	}

	// Mean-field reach for this round's gossip: fanout-ary pushes with
	// the current live relay fraction and per-hop loss.
	relayers := 0
	for id := 0; id < n; id++ {
		if r.net.Online(id) && r.net.Relaying(id) {
			relayers++
		}
	}
	s.reach = network.ReachAnalysis{
		Fanout:    r.fanout,
		RelayFrac: float64(relayers) / float64(n),
		LossProb:  r.lossProb,
	}.ExpectedCoverage()

	// Refill the path-delay table (the delay model is stateless but the
	// draw order must stay deterministic, so the table is rebuilt in the
	// fixed round preamble rather than lazily).
	s.delayTable = s.delayTable[:0]
	if cap(s.delayTable) < sparseDelayTableLen {
		s.delayTable = make([]time.Duration, 0, sparseDelayTableLen)
	}
	for i := 0; i < sparseDelayTableLen; i++ {
		var d time.Duration
		for h := 0; h < s.hops; h++ {
			best := r.delay.Sample(s.rng)
			for f := 1; f < r.fanout; f++ {
				if alt := r.delay.Sample(s.rng); alt < best {
					best = alt
				}
			}
			d += best
		}
		s.delayTable = append(s.delayTable, d)
	}
}

// sparseDelayTableLen sizes the per-round empirical path-delay table; see
// sparseState.delayTable.
const sparseDelayTableLen = 4096

// participatesID is the id-indexed participation predicate the sparse
// flat passes use; it matches participates() exactly (synced is the
// desynced-set complement in sparse mode).
func (r *Runner) participatesID(id int) bool {
	if !r.net.Online(id) {
		return false
	}
	if _, behind := r.sparse.desynced[id]; behind {
		return false
	}
	b := r.behaviors[id]
	return b == Honest || b == Malicious
}

// sparseGossip is the mean-field replacement for Network.Gossip: the
// origin consumes its own message immediately, then every other
// materialized node receives it independently with the epidemic coverage
// probability, after a delay summing hops per-hop samples. The real
// network still carries topology, online/relay state and the fault
// overlay — sparseGossip consults all three — but no per-hop push fans
// out, so gossip work is O(materialized), not O(N·fanout).
//
// Unmaterialized nodes receive nothing: they hold no tallies to update.
// Their sortition/seed costs accrue in the flat meter passes and their
// outcomes are extrapolated from the probe panel; their verify/relay
// task counts are NOT modelled (sparse task counters cover materialized
// nodes only — document-level approximation, see README).
func (r *Runner) sparseGossip(origin int, msg network.Message) {
	if !r.net.Online(origin) {
		return
	}
	r.handleMessage(origin, msg)
	if !r.net.Relaying(origin) {
		return
	}
	r.meter.of(origin).Gossip++
	s := r.sparse
	factor := r.net.DelayFactor()
	for _, nd := range s.actors {
		v := nd.id
		if v == origin || !r.net.Online(v) {
			continue
		}
		fault := r.net.Fault(origin, v)
		if fault.Drop {
			// Mean-field reading of a severed link: the overlay cut every
			// path between the pair (partitions/eclipses are what overlays
			// script; single-link cuts are below this model's resolution).
			continue
		}
		p := s.reach
		if fault.Loss > 0 {
			p *= 1 - fault.Loss
		}
		if s.rng.Float64() >= p {
			continue
		}
		delay := s.delayTable[s.rng.Intn(len(s.delayTable))]
		delay = time.Duration(float64(delay) * factor)
		if fault.DelayScale > 1 {
			delay = time.Duration(float64(delay) * fault.DelayScale)
		}
		r.engine.ScheduleFn(delay, r.sparseDeliverCb, v, msg.Payload)
	}
}

// sparseDeliver hands one mean-field delivery to the protocol handler.
// Kind/ID are irrelevant past this point (no dedup layer: each pair gets
// at most one delivery per message by construction), so only the payload
// travels through the scheduler.
func (r *Runner) sparseDeliver(nodeID int, payload any) {
	if !r.net.Online(nodeID) {
		return
	}
	if r.net.Relaying(nodeID) {
		// The receiver forwards the message onward (its fan-out is already
		// folded into the mean-field coverage); the relay task is metered at
		// delivery time, when the node's live relay status is known.
		r.meter.of(nodeID).Gossip++
	}
	r.handleMessage(nodeID, network.Message{Origin: nodeID, Payload: payload})
}

// finalizeRoundSparse mirrors finalizeRound's outcome rules on the
// materialized set, then extrapolates the unmaterialized population from
// the probe panel and converts ledger commits into desynced-set updates.
func (r *Runner) finalizeRoundSparse(round uint64, lastStep int) RoundReport {
	s := r.sparse
	n := len(r.roundStakes)
	report := RoundReport{
		Round:      round,
		Population: n,
		Degraded:   r.degraded,
	}
	finalQuorum := r.params.ThresholdFinal * r.tauFinalAbs
	quorum := r.params.ThresholdStep * r.tauStepAbs

	for _, nd := range s.actors {
		if r.participates(nd) && !nd.decided {
			r.evaluateBinaryTally(nd, nd.tally(uint64(lastStep)), quorum, uint64(lastStep))
		}
	}

	// Outcome classification for materialized nodes: identical rules to
	// the dense path.
	decisions := make(map[ledger.Hash]int)
	inPanel := make(map[int]struct{}, len(s.panel))
	for _, id := range s.panel {
		inPanel[id] = struct{}{}
	}
	panelParticipants := 0
	panelFinal, panelTentative := 0, 0
	for _, nd := range s.actors {
		outcome := OutcomeNone
		var hash ledger.Hash
		if r.participates(nd) && nd.decided {
			hash = nd.decidedHash
			switch {
			case hash == nd.emptyHash():
				outcome = OutcomeTentative
			case nd.finalTally.weightFor(hash) >= finalQuorum:
				outcome = OutcomeFinal
			default:
				outcome = OutcomeTentative
			}
			if _, has := nd.blocks[hash]; !has && hash != nd.emptyHash() {
				outcome = OutcomeNone
			}
		}
		nd.outcome = outcome
		nd.outcomeHash = hash
		switch outcome {
		case OutcomeFinal:
			report.FinalCount++
			decisions[hash]++
		case OutcomeTentative:
			report.TentativeCount++
			decisions[hash]++
		default:
			report.NoneCount++
		}
		if _, probe := inPanel[nd.id]; probe && r.participatesID(nd.id) {
			panelParticipants++
			switch outcome {
			case OutcomeFinal:
				panelFinal++
			case OutcomeTentative:
				panelTentative++
			}
		}
	}

	// Extrapolate the unmaterialized participants from the panel's
	// outcome fractions, preserving integer-count randomness with
	// sequential binomial splits of the remainder. Non-participants are
	// None by definition, exactly as in the dense path.
	materializedParticipants := 0
	for _, nd := range s.actors {
		if r.participatesID(nd.id) {
			materializedParticipants++
		}
	}
	totalParticipants := 0
	for id := 0; id < n; id++ {
		if r.participatesID(id) {
			totalParticipants++
		}
	}
	rest := int64(totalParticipants - materializedParticipants)
	var restFinal, restTentative int64
	if rest > 0 && panelParticipants > 0 {
		pF := float64(panelFinal) / float64(panelParticipants)
		pT := float64(panelTentative) / float64(panelParticipants)
		restFinal = sortition.Binomial(s.rng, rest, pF)
		if pF < 1 {
			restTentative = sortition.Binomial(s.rng, rest-restFinal, pT/(1-pF))
		}
	}
	report.FinalCount += int(restFinal)
	report.TentativeCount += int(restTentative)
	// Non-participants are None by definition; the materialized ones were
	// already counted None in the actors loop, so only the unmaterialized
	// remainder is added here.
	report.NoneCount += int(rest-restFinal-restTentative) +
		(n - totalParticipants) - (len(s.actors) - materializedParticipants)

	canonicalBlock, decided := r.pickCanonicalSparse(round, decisions)
	report.Decided = decided
	if decided {
		report.CanonicalEmpty = canonicalBlock.Empty
		report.CanonicalHash = canonicalBlock.Hash()
	}
	// The canonical append happens AFTER the desync bookkeeping below:
	// blockForSparse reconstructs empty commits from the canonical tip,
	// which must still be the tip the round's blocks were built on —
	// appending first would make every empty-block committer look
	// desynced, and a fully-desynced population can never recover (no
	// synced peers left to serve catch-up).

	// Commits become desynced-set updates. Dense semantics: a node ends
	// the round synced iff its chain equals the advanced canonical chain —
	// with a decision, that means it committed the canonical block; with
	// no decision, that means it committed nothing.
	emptySynced := ledger.Hash{} // sentinel: "committed nothing"
	syncedAfter := func(nd *node) bool {
		committedHash := emptySynced
		if nd.outcome != OutcomeNone {
			if block, ok := r.blockForSparse(nd, nd.outcomeHash); ok {
				committedHash = block.Hash()
			}
		}
		if !nd.synced {
			// Was already behind; committing on top of a stale view never
			// reconverges within the round.
			return false
		}
		if decided {
			return committedHash == report.CanonicalHash
		}
		return committedHash == emptySynced
	}
	newDesyncPanel := 0
	for _, nd := range s.actors {
		// Participation must be read before this id's desynced entry is
		// updated: it is the pre-round status the extrapolation conditions
		// on. Selfish and faulty panel members are excluded — they follow
		// their own recovery rules (catchUpSparse), not the participant
		// sync transition being measured here.
		_, probe := inPanel[nd.id]
		wasParticipant := probe && r.participatesID(nd.id)
		if syncedAfter(nd) {
			delete(s.desynced, nd.id)
		} else {
			s.desynced[nd.id] = struct{}{}
		}
		if wasParticipant {
			if _, behind := s.desynced[nd.id]; behind {
				newDesyncPanel++
			}
		}
	}

	// Extrapolate desync onto the unmaterialized participants: the panel's
	// participants (uniform over the population) measure the synced→behind
	// transition rate this round; a binomial draw fixes how many of the
	// unmaterialized participants went out of sync, and distinct uniform
	// picks decide which. Already-desynced nodes stay desynced.
	if panelParticipants > 0 && rest > 0 {
		pDesync := float64(newDesyncPanel) / float64(panelParticipants)
		want := int(sortition.Binomial(s.rng, rest, pDesync))
		if want > 0 {
			eligible := s.desScratch[:0]
			for id := 0; id < n; id++ {
				if r.nodes[id] != nil {
					continue
				}
				if _, behind := s.desynced[id]; behind {
					continue
				}
				if r.participatesID(id) {
					eligible = append(eligible, id)
				}
			}
			s.desScratch = eligible
			if want > len(eligible) {
				want = len(eligible)
			}
			// Partial Fisher–Yates over the eligible ids.
			for k := 0; k < want; k++ {
				j := k + s.rng.Intn(len(eligible)-k)
				eligible[k], eligible[j] = eligible[j], eligible[k]
				s.desynced[eligible[k]] = struct{}{}
			}
		}
	}

	if decided {
		if err := r.canonical.Append(canonicalBlock); err == nil && !canonicalBlock.Empty {
			r.removePending(canonicalBlock.Txns)
		}
	}
	return report
}

// pickCanonicalSparse is pickCanonical over the materialized set.
func (r *Runner) pickCanonicalSparse(round uint64, decisions map[ledger.Hash]int) (ledger.Block, bool) {
	empty := ledger.EmptyBlock(round, r.canonical.Tip(), ledger.NextSeed(r.canonical.Seed(), round))
	var bestHash ledger.Hash
	bestCount := 0
	for h, c := range decisions {
		if c > bestCount || (c == bestCount && hashLess(h, bestHash)) {
			bestHash, bestCount = h, c
		}
	}
	if bestCount == 0 {
		return empty, false
	}
	if bestHash == empty.Hash() {
		return empty, true
	}
	for _, nd := range r.sparse.actors {
		if b, ok := nd.blocks[bestHash]; ok {
			return b, true
		}
	}
	return empty, false
}

// blockForSparse resolves the block a materialized node committed to; it
// never touches per-node ledgers (there are none).
func (r *Runner) blockForSparse(nd *node, hash ledger.Hash) (ledger.Block, bool) {
	if hash == nd.emptyHash() {
		return ledger.EmptyBlock(nd.round, r.canonical.Tip(), ledger.NextSeed(r.canonical.Seed(), nd.round)), true
	}
	b, ok := nd.blocks[hash]
	return b, ok
}

// catchUpSparse resynchronises lagging nodes by shrinking the desynced
// set: same recovery rules as the dense path (selfish nodes free-ride,
// honest nodes need an honest synced online peer plus the CatchUpProb
// coin), iterated in sorted id order for determinism.
func (r *Runner) catchUpSparse() {
	s := r.sparse
	if len(s.desynced) == 0 {
		return
	}
	prob := r.params.CatchUpProb
	if r.degraded {
		prob *= 0.2
	}
	ids := s.desScratch[:0]
	for id := range s.desynced {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.desScratch = ids
	for _, id := range ids {
		if r.behaviors[id] == Selfish {
			delete(s.desynced, id)
			r.resyncs++
			continue
		}
		if !r.net.Online(id) {
			continue
		}
		if s.rng.Float64() >= prob {
			continue
		}
		for _, peer := range r.net.Peers(id) {
			if r.behaviors[peer] != Honest || !r.net.Online(peer) {
				continue
			}
			if _, behind := s.desynced[peer]; behind {
				continue
			}
			delete(s.desynced, id)
			r.resyncs++
			break
		}
	}
}
