package protocol

// CountersCoverage declares how much of the population the runner's
// Table II task counters (TaskCounts) actually metered. The dense
// per-node sweep meters every node. The sparse O(committee) path meters
// sortition/seed costs for everyone via its flat passes, but verify,
// relay, block-selection-tally and vote-counting work is metered for
// materialized nodes (committee ∪ probe panel) only — set-K work by
// unmaterialized nodes is NOT in the counters. Reward-layer experiments
// pricing tasks with game.TaskCosts must check this marker before
// treating TaskCounts as population-complete; silently summing a
// materialized-only meter undercounts set K (ROADMAP #1).
type CountersCoverage int

const (
	// CoverageFull: counters cover every node (dense path).
	CoverageFull CountersCoverage = iota
	// CoverageMaterializedOnly: verify/relay-class counters cover the
	// round's materialized nodes only (sparse path).
	CoverageMaterializedOnly
)

// String returns the stable marker spelling experiments embed in
// results and logs.
func (c CountersCoverage) String() string {
	if c == CoverageMaterializedOnly {
		return "materialized-only"
	}
	return "full"
}

// CountersCoverage reports the coverage of this runner's TaskCounts.
// It is also exported as the sim_counters_coverage_materialized_only
// gauge when telemetry is enabled.
func (r *Runner) CountersCoverage() CountersCoverage {
	if r.sparse != nil {
		return CoverageMaterializedOnly
	}
	return CoverageFull
}
