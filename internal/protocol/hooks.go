package protocol

import (
	"math/rand"
	"sort"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
)

// Hooks are the adversary seams of a Runner: optional callbacks through
// which an external controller (internal/adversary) scripts behaviour
// changes, equivocation, selective silence, and adaptive corruption over
// a run. Every field may be nil; a Runner with zero Hooks is bit-for-bit
// identical to one built before the seams existed — no hook consumes
// randomness, changes message identifiers, or perturbs scheduling when
// absent, which is what lets the honest-baseline scenario reproduce the
// golden figure outputs exactly.
type Hooks struct {
	// RoundStart runs at the top of every round, after per-round state is
	// reset and before any node derives its seed or the phase events are
	// scheduled. Controllers apply phase transitions here: behaviour
	// flips (SetBehavior), crash/recover churn (Network().SetOnline), and
	// network fault-overlay reconfiguration.
	RoundStart func(round uint64)

	// RoundEnd runs after the round finalised, catch-up completed, and
	// the reward hook fired. Audit collectors read per-node outcomes via
	// Runner.NodeOutcome here.
	RoundEnd func(round uint64, report RoundReport)

	// VoteValues intercepts one node's committee vote after sortition
	// selected it and the honest value (post any Malicious transform) is
	// known. Returning ok=false keeps the normal single-value vote.
	// Returning ok=true replaces it with one vote per returned value —
	// an empty slice is selective silence (the node pays the sortition
	// cost but withholds its vote), two or more values is Byzantine
	// equivocation: each value is gossiped under a distinct message ID
	// with the same credential, so different peers count conflicting
	// votes depending on arrival order. The returned slice is consumed
	// before the hook is called again and may be reused by the caller.
	VoteValues func(node int, round, step uint64, final bool, honest, empty ledger.Hash) (values []ledger.Hash, ok bool)

	// ProposalFan intercepts one node's block proposal after sortition
	// selected it as proposer. Return 1 for the normal single proposal,
	// 0 to withhold it (selective silence), or k>1 to equivocate: k
	// conflicting blocks (distinct seeds, hence distinct hashes) under
	// the same proposer credential.
	ProposalFan func(node int, round uint64) int

	// StepDone runs after each phase's cast loop with the nodes whose
	// sortition credential was revealed in that step (step 0 is the
	// proposal phase). Adaptive adversaries corrupt committee members
	// here — after the lottery exposed them, mirroring the "targeted
	// corruption once roles are public" threat model. The slice is
	// reused across steps; copy it to retain.
	StepDone func(round, step uint64, revealed []int)
}

// SetHooks installs the adversary seams. It must be called before the
// first round runs; installing hooks mid-run would let a controller see
// a half-initialised round.
func (r *Runner) SetHooks(h Hooks) { r.hooks = h }

// SetBehavior flips node i's behaviour class mid-run, keeping the
// network-layer consequences consistent with construction: selfish nodes
// stop relaying, faulty nodes go offline, and restoring an honest
// behaviour restores both. The adversary engine uses it for scripted
// behaviour phases and adaptive corruption.
func (r *Runner) SetBehavior(i int, b Behavior) {
	if i < 0 || i >= len(r.behaviors) {
		return
	}
	if r.behaviors[i] == b {
		return
	}
	r.behaviors[i] = b
	// The behaviour table is the source of truth; dense node structs (and
	// sparse materialized ones) mirror it.
	if nd := r.nodes[i]; nd != nil {
		nd.behavior = b
	}
	r.net.SetRelay(i, b != Selfish)
	r.net.SetOnline(i, b != Faulty)
}

// Behavior returns node i's current behaviour class.
func (r *Runner) Behavior(i int) Behavior {
	if i < 0 || i >= len(r.behaviors) {
		return 0
	}
	return r.behaviors[i]
}

// PinMaterialized forces the given node ids to be materialized in every
// sparse round, so NodeOutcome reports their exact outcomes instead of
// the unmaterialized OutcomeNone. Controllers that script index-based
// targets (eclipse victims, named equivocators) call this once at attach
// time; per-victim audit assertions then work above the sparse
// threshold. A no-op on the dense path, where every node is always
// materialized. Out-of-range ids are ignored; duplicates collapse.
//
// Pinning moves the named nodes from the panel-extrapolated mass to the
// exactly-simulated set, so aggregate sparse outputs differ (slightly)
// from an unpinned run of the same seed — which is why scenarios pin
// only explicitly named targets, never stake- or count-based ones.
func (r *Runner) PinMaterialized(ids []int) {
	if r.sparse == nil || len(ids) == 0 {
		return
	}
	s := r.sparse
	for _, id := range ids {
		if id < 0 || id >= len(r.behaviors) {
			continue
		}
		dup := false
		for _, have := range s.pinned {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			s.pinned = append(s.pinned, id)
		}
	}
	sort.Ints(s.pinned)
}

// NodeOutcome reports what node i extracted from the most recently
// finalised round: its outcome class and the block hash it committed to
// (zero for none). Valid between rounds; audit collectors read it from
// the RoundEnd hook to detect conflicting finalisations. In sparse rounds
// only materialized nodes carry an exact outcome; everyone else reports
// OutcomeNone (per-node outcomes are panel-extrapolated in aggregate) —
// PinMaterialized guarantees exact outcomes for specific ids.
func (r *Runner) NodeOutcome(i int) (Outcome, ledger.Hash) {
	if i < 0 || i >= len(r.nodes) || r.nodes[i] == nil {
		return OutcomeNone, ledger.Hash{}
	}
	nd := r.nodes[i]
	return nd.outcome, nd.outcomeHash
}

// RNG exposes the engine's labelled deterministic stream factory so
// attached controllers draw reproducible randomness without perturbing
// any existing stream.
func (r *Runner) RNG(label string) *rand.Rand { return r.engine.RNG(label) }
