package protocol

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
)

func TestStepTallyDeduplicatesVoters(t *testing.T) {
	tally := newStepTally()
	h := ledger.Hash{1}
	tally.add(7, h, 5)
	tally.add(7, h, 5) // same voter again: ignored
	tally.add(8, h, 3)
	if got := tally.weightFor(h); got != 8 {
		t.Errorf("weight = %v, want 8", got)
	}
}

func TestStepTallyLeader(t *testing.T) {
	tally := newStepTally()
	a, b := ledger.Hash{1}, ledger.Hash{2}
	tally.add(1, a, 5)
	tally.add(2, b, 9)
	leader, w := tally.leader()
	if leader != b || w != 9 {
		t.Errorf("leader = %v (%v), want b (9)", leader, w)
	}
	empty := newStepTally()
	if _, w := empty.leader(); w != 0 {
		t.Errorf("empty tally leader weight = %v", w)
	}
}

func TestStepTallyLeaderTieBreak(t *testing.T) {
	tally := newStepTally()
	a, b := ledger.Hash{1}, ledger.Hash{2}
	tally.add(1, b, 5)
	tally.add(2, a, 5)
	leader, _ := tally.leader()
	// Ties break towards the lexicographically smaller hash for
	// determinism.
	if leader != a {
		t.Errorf("tie broke to %v, want the smaller hash", leader)
	}
}

func TestHashLess(t *testing.T) {
	a, b := ledger.Hash{1}, ledger.Hash{2}
	if !hashLess(a, b) || hashLess(b, a) || hashLess(a, a) {
		t.Error("hashLess ordering broken")
	}
}

func TestProposalAndVoteIDsDistinct(t *testing.T) {
	ids := map[[32]byte]string{}
	record := func(id [32]byte, label string) {
		if prev, dup := ids[id]; dup {
			t.Fatalf("id collision between %s and %s", prev, label)
		}
		ids[id] = label
	}
	record(proposalID(1, 0), "proposal r1 n0")
	record(proposalID(1, 1), "proposal r1 n1")
	record(proposalID(2, 0), "proposal r2 n0")
	record(voteID(1, 1, false, 0), "vote r1 s1 n0")
	record(voteID(1, 1, false, 1), "vote r1 s1 n1")
	record(voteID(1, 2, false, 0), "vote r1 s2 n0")
	record(voteID(2, 1, false, 0), "vote r2 s1 n0")
	record(voteID(1, 1, true, 0), "final vote r1 s1 n0")
}

func TestNodeObserveProposalKeepsHighestPriority(t *testing.T) {
	nd := &node{}
	nd.beginRound(1)
	low := &proposalPayload{
		BlockHash:  ledger.Hash{1},
		Credential: sortition.Result{Priority: sortition.Priority{0: 1}},
		Proposer:   1,
	}
	high := &proposalPayload{
		BlockHash:  ledger.Hash{2},
		Credential: sortition.Result{Priority: sortition.Priority{0: 9}},
		Proposer:   2,
	}
	nd.observeProposal(low)
	nd.observeProposal(high)
	nd.observeProposal(low) // lower priority again: must not displace
	if nd.bestProposal.Proposer != 2 {
		t.Errorf("best proposal from %d, want 2", nd.bestProposal.Proposer)
	}
	if len(nd.blocks) != 2 {
		t.Errorf("retained %d block bodies, want 2", len(nd.blocks))
	}
}

func TestNodeObserveVoteRouting(t *testing.T) {
	nd := &node{}
	nd.beginRound(3)
	nd.observeVote(&votePayload{
		Round: 3, Step: 2, Voter: 4, Value: ledger.Hash{7},
		Credential: sortition.Result{SubUsers: 6},
	})
	nd.observeVote(&votePayload{
		Round: 3, Final: true, Voter: 5, Value: ledger.Hash{7},
		Credential: sortition.Result{SubUsers: 2},
	})
	if got := nd.tally(2).weightFor(ledger.Hash{7}); got != 6 {
		t.Errorf("step tally weight = %v, want 6", got)
	}
	if got := nd.finalTally.weightFor(ledger.Hash{7}); got != 2 {
		t.Errorf("final tally weight = %v, want 2", got)
	}
}

func TestRemovePending(t *testing.T) {
	r := &Runner{}
	r.pending = []ledger.Transaction{
		{Nonce: 1}, {Nonce: 2}, {Nonce: 3},
	}
	r.removePending([]ledger.Transaction{{Nonce: 2}})
	if len(r.pending) != 2 || r.pending[0].Nonce != 1 || r.pending[1].Nonce != 3 {
		t.Errorf("pending after removal: %+v", r.pending)
	}
	r.removePending(nil) // no-op
	if len(r.pending) != 2 {
		t.Error("nil removal changed pending")
	}
}

func TestResolveTau(t *testing.T) {
	if got := resolveTau(0.35, 1000); got != 350 {
		t.Errorf("fractional tau = %v, want 350", got)
	}
	if got := resolveTau(26, 1000); got != 26 {
		t.Errorf("absolute tau = %v, want 26", got)
	}
}

func TestSortRoleStakes(t *testing.T) {
	rs := []RoleStake{{ID: 3}, {ID: 1}, {ID: 2}}
	sortRoleStakes(rs)
	for i, want := range []int{1, 2, 3} {
		if rs[i].ID != want {
			t.Fatalf("sorted order %v", rs)
		}
	}
}
