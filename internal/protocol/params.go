// Package protocol implements the Algorand BA* agreement protocol on top
// of the gossip network: block proposal with priority selection, the
// two-step Reduction phase, the BinaryBA* phase, the final-committee vote
// that distinguishes FINAL from TENTATIVE consensus, and the four node
// behaviours the paper defines (honest, honest-but-selfish, malicious,
// faulty).
package protocol

import (
	"errors"
	"time"
)

// Params are the protocol constants of a simulation. Defaults follow the
// Algorand paper (Gilad et al., SOSP'17) scaled to simulator-sized
// networks; all are overridable per experiment.
type Params struct {
	// TauProposer is the expected stake selected as block proposers per
	// round (Algorand: 26).
	TauProposer float64
	// TauStep is the expected committee stake per BA* step.
	TauStep float64
	// TauFinal is the expected committee stake for the final vote.
	TauFinal float64
	// ThresholdStep is the fraction of TauStep votes required for a step
	// quorum (Algorand: 0.685).
	ThresholdStep float64
	// ThresholdFinal is the fraction of TauFinal required to declare a
	// block FINAL (Algorand: 0.74).
	ThresholdFinal float64
	// ProposalTimeout is how long nodes collect block proposals.
	ProposalTimeout time.Duration
	// StepTimeout is the per-step vote collection window (the paper quotes
	// a 20 second vote timeout; simulations compress it).
	StepTimeout time.Duration
	// MaxBinarySteps bounds the BinaryBA* phase (Algorand: 11 on average).
	MaxBinarySteps int
	// MaxTxPerBlock caps the transactions a proposer packs into a block.
	MaxTxPerBlock int
	// CatchUpProb is the per-round probability that a desynchronised node
	// successfully resynchronises from a healthy peer while the network is
	// strongly synchronous.
	CatchUpProb float64
	// AsyncProb is the per-round probability of a degraded (weakly
	// synchronous) round in which gossip delays inflate by AsyncFactor.
	AsyncProb float64
	// AsyncFactor multiplies gossip delays during degraded rounds.
	AsyncFactor float64
}

// DefaultParams returns the constants used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		TauProposer:     26,
		TauStep:         0.35, // fraction of total stake; resolved by Runner
		TauFinal:        0.45,
		ThresholdStep:   0.685,
		ThresholdFinal:  0.74,
		ProposalTimeout: 2 * time.Second,
		StepTimeout:     1 * time.Second,
		MaxBinarySteps:  11,
		MaxTxPerBlock:   64,
		CatchUpProb:     0.6,
		AsyncProb:       0.05,
		AsyncFactor:     8,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.TauProposer <= 0:
		return errors.New("protocol: TauProposer must be positive")
	case p.TauStep <= 0:
		return errors.New("protocol: TauStep must be positive")
	case p.TauFinal <= 0:
		return errors.New("protocol: TauFinal must be positive")
	case p.ThresholdStep <= 0.5 || p.ThresholdStep >= 1:
		return errors.New("protocol: ThresholdStep must be in (0.5, 1)")
	case p.ThresholdFinal <= 0.5 || p.ThresholdFinal >= 1:
		return errors.New("protocol: ThresholdFinal must be in (0.5, 1)")
	case p.ProposalTimeout <= 0 || p.StepTimeout <= 0:
		return errors.New("protocol: timeouts must be positive")
	case p.MaxBinarySteps < 1:
		return errors.New("protocol: MaxBinarySteps must be >= 1")
	}
	return nil
}

// Behavior is a node's strategy type, following Sec. III-C of the paper.
type Behavior uint8

// The four behaviour classes.
const (
	// Honest nodes always cooperate, even at a loss (altruists).
	Honest Behavior = iota + 1
	// Selfish nodes are "honest but selfish": they cooperate only when the
	// reward exceeds the cost. In the Fig. 3 experiments selfish nodes have
	// concluded defection pays, so they stay online, run sortition (cost
	// c_so) and skip every other task.
	Selfish
	// Malicious nodes deviate arbitrarily: they vote for random values and
	// propose conflicting blocks.
	Malicious
	// Faulty nodes are offline (system malfunction, not by choice).
	Faulty
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Selfish:
		return "selfish"
	case Malicious:
		return "malicious"
	case Faulty:
		return "faulty"
	default:
		return "unknown"
	}
}

// Cooperates reports whether the behaviour performs protocol tasks.
func (b Behavior) Cooperates() bool { return b == Honest }

// Outcome is what a node extracted from a round's network messages —
// exactly the three series plotted in Fig. 3.
type Outcome uint8

// Possible per-node round outcomes.
const (
	// OutcomeNone: the node could not extract any block for the round.
	OutcomeNone Outcome = iota
	// OutcomeTentative: consensus reached but safety not yet guaranteed
	// (late BinaryBA* step, weak final quorum, or empty block).
	OutcomeTentative
	// OutcomeFinal: full final consensus on a block.
	OutcomeFinal
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeFinal:
		return "final"
	case OutcomeTentative:
		return "tentative"
	default:
		return "none"
	}
}
