package protocol

// slab is a chunked per-round arena for gossip payloads. take returns a
// pointer to a zeroed slot; reset rewinds the arena so the next round
// reuses the same memory instead of allocating hundreds of payloads per
// round. Chunks are fixed-size and never moved, so issued pointers stay
// valid until their slots are re-issued after a reset.
//
// Safety contract: a slot may be referenced only until the next reset.
// The round driver resets at the top of runRound, after the previous
// round's gossip has fully drained (engine.Run(0)) and every node's
// per-round references were dropped by beginRound.
type slab[T any] struct {
	chunks [][]T
	chunk  int // index of the chunk currently being carved
	used   int // slots issued from the current chunk
}

const slabChunkSize = 256

// take returns a zeroed slot from the arena, growing it by one chunk when
// exhausted.
func (s *slab[T]) take() *T {
	if s.chunk == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunkSize))
	}
	c := s.chunks[s.chunk]
	p := &c[s.used]
	*p = *new(T)
	s.used++
	if s.used == len(c) {
		s.chunk++
		s.used = 0
	}
	return p
}

// reset rewinds the arena; previously issued slots will be zeroed and
// re-issued by subsequent takes.
func (s *slab[T]) reset() {
	s.chunk = 0
	s.used = 0
}
