package protocol

import "github.com/dsn2020-algorand/incentives/internal/game"

// TaskCounts tallies how many times one node performed each Table II task
// during a simulation. The counters let experiments price a run with the
// game-theoretic cost model and compare realised per-role costs against
// the Eq. 1–2 aggregates.
type TaskCounts struct {
	Verify      uint64 // c_ve: transactions validated
	Seed        uint64 // c_se: seed derivations
	Sortition   uint64 // c_so: sortition draws
	VerifyProof uint64 // c_vs: sortition proofs verified
	Propose     uint64 // c_bl: blocks assembled and proposed
	Gossip      uint64 // c_go: messages relayed
	SelectBlock uint64 // c_bs: proposal selections
	Vote        uint64 // c_vo: votes cast
	CountVotes  uint64 // c_vc: vote messages tallied
}

// Add accumulates other into c.
func (c *TaskCounts) Add(other TaskCounts) {
	c.Verify += other.Verify
	c.Seed += other.Seed
	c.Sortition += other.Sortition
	c.VerifyProof += other.VerifyProof
	c.Propose += other.Propose
	c.Gossip += other.Gossip
	c.SelectBlock += other.SelectBlock
	c.Vote += other.Vote
	c.CountVotes += other.CountVotes
}

// Cost prices the counted tasks with a per-task cost vector, yielding the
// node's total expenditure in Algos. Per-round task costs in the paper
// are per-occurrence of the round's duty, so the counters are priced
// directly.
func (c TaskCounts) Cost(costs game.TaskCosts) float64 {
	return float64(c.Verify)*costs.Verify +
		float64(c.Seed)*costs.Seed +
		float64(c.Sortition)*costs.Sortition +
		float64(c.VerifyProof)*costs.VerifyProof +
		float64(c.Propose)*costs.Propose +
		float64(c.Gossip)*costs.Gossip +
		float64(c.SelectBlock)*costs.SelectBlock +
		float64(c.Vote)*costs.Vote +
		float64(c.CountVotes)*costs.CountVotes
}

// costMeter records per-node task counts for a Runner.
type costMeter struct {
	counts []TaskCounts
}

func newCostMeter(n int) *costMeter {
	return &costMeter{counts: make([]TaskCounts, n)}
}

func (m *costMeter) of(id int) *TaskCounts {
	return &m.counts[id]
}

// Snapshot returns a copy of all per-node counters.
func (m *costMeter) Snapshot() []TaskCounts {
	out := make([]TaskCounts, len(m.counts))
	copy(out, m.counts)
	return out
}
