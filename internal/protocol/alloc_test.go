package protocol

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// roundAllocBudget is the loud-failure ceiling for one steady-state BA*
// round of a 100-node honest network. The allocation-lean hot path runs
// ~1.6k allocs/round (it was ~670k before the slab/cache work); the
// budget leaves headroom for noise while still failing hard if payload
// pooling, the sortition cache, or the event queue regress to per-call
// allocation.
const roundAllocBudget = 20_000

func TestRoundAllocBudget(t *testing.T) {
	stakes := make([]float64, 100)
	behaviors := make([]Behavior, 100)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = Honest
	}
	runner, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner.RunRounds(3) // warm pools, caches and map sizes
	allocs := testing.AllocsPerRun(5, func() {
		runner.RunRounds(1)
	})
	if allocs > roundAllocBudget {
		t.Errorf("one round allocates %.0f times, budget %d — the allocation-lean hot path regressed", allocs, roundAllocBudget)
	}
}

// A warm sortition oracle must select and verify with zero heap
// allocations: the threshold table exists, the VRF runs on stack
// buffers, and the result is returned by value.
func TestSortitionSelectAllocFree(t *testing.T) {
	cache := sortition.NewCache()
	key := vrf.GenerateKey(sim.NewRNG(5, "alloc.sortition"))
	p := sortition.Params{
		Seed: [32]byte{1}, Role: sortition.RoleCommittee,
		Tau: 1_000, TotalStake: 1e6,
	}
	res, err := cache.Select(key.Private, 500, p) // builds the table
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		p.Round++
		if _, err := cache.Select(key.Private, 500, p); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm cached Select allocates %.1f times per call, want 0", allocs)
	}
	p.Round = 0
	if allocs := testing.AllocsPerRun(100, func() {
		if !cache.Verify(key.Public, 500, p, res) {
			t.Fatal("verify failed")
		}
	}); allocs > 0 {
		t.Errorf("warm cached Verify allocates %.1f times per call, want 0", allocs)
	}
	// The uncached scalar path is also allocation-free since the VRF and
	// message construction moved to stack buffers.
	if allocs := testing.AllocsPerRun(100, func() {
		p.Round++
		if _, err := sortition.Select(key.Private, 500, p); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("direct Select allocates %.1f times per call, want 0", allocs)
	}
}
