package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/network"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// RoleStake identifies one participant of a round together with its stake
// and sortition weight (selected sub-users).
type RoleStake struct {
	ID     int
	Stake  float64
	Weight float64
}

// RoundRoles lists who actually played which role in a round; the reward
// hook receives it to disburse per-round incentives.
type RoundRoles struct {
	Round     uint64
	Leaders   []RoleStake
	Committee []RoleStake
	Others    []RoleStake
}

// RoundReport summarises one simulated round: the per-node outcomes that
// Fig. 3 plots plus bookkeeping about the canonical chain.
//
// Sparse rounds (see SparseMode) carry no per-node Outcomes slice — the
// counts are exact for materialized nodes and panel-extrapolated for the
// rest — so Population, not len(Outcomes), is the fraction denominator
// there. Dense rounds fill both.
type RoundReport struct {
	Round          uint64
	Outcomes       []Outcome
	Population     int // total node count (= len(Outcomes) in dense rounds)
	FinalCount     int
	TentativeCount int
	NoneCount      int
	CanonicalHash  ledger.Hash
	CanonicalEmpty bool
	Decided        bool // some node decided this round
	Degraded       bool // weak-synchrony round
	Desynced       int  // nodes behind the canonical chain after catch-up
}

// population is the denominator for the fraction accessors: the Outcomes
// length when per-node outcomes exist, the Population field otherwise.
func (r RoundReport) population() int {
	if len(r.Outcomes) > 0 {
		return len(r.Outcomes)
	}
	return r.Population
}

// FinalFrac returns the fraction of nodes that extracted a final block.
func (r RoundReport) FinalFrac() float64 {
	return float64(r.FinalCount) / float64(r.population())
}

// TentativeFrac returns the fraction of nodes with a tentative block.
func (r RoundReport) TentativeFrac() float64 {
	return float64(r.TentativeCount) / float64(r.population())
}

// NoneFrac returns the fraction of nodes that extracted no block.
func (r RoundReport) NoneFrac() float64 {
	return float64(r.NoneCount) / float64(r.population())
}

// RewardHook is invoked after every round with the realised roles.
type RewardHook func(roles RoundRoles, report RoundReport)

// Config assembles a protocol simulation.
type Config struct {
	Params    Params
	Stakes    []float64
	Behaviors []Behavior
	Fanout    int
	Delay     network.DelayModel
	// LossProb is the per-hop gossip loss probability; negative selects
	// the default (DefaultLossProb).
	LossProb float64
	Seed     int64
	Reward   RewardHook
	// Hooks are the optional adversary seams (see Hooks); the zero value
	// leaves the run bit-for-bit identical to a hook-free build.
	Hooks Hooks
	// Arena optionally recycles construction-heavy Runner state (node
	// tables, key tables, the sortition cache) across consecutive runs of
	// one run-pool worker. See Arena for the ownership and determinism
	// contract; nil builds everything fresh.
	Arena *Arena
	// Weights overrides the round weight source with an external oracle
	// (e.g. a synthetic Zipf/churn profile); its NumNodes must equal
	// len(Stakes). Nil — the default — derives the oracle from the
	// canonical ledger per WeightBackend. An external oracle decouples
	// sortition weights from ledger balances: rewards still accrue on
	// chain but no longer feed back into committee selection.
	Weights weight.Oracle
	// WeightBackend selects the ledger-backed oracle when Weights is nil;
	// the zero value is weight.BackendLedgerDirect, bit-identical to
	// reading the ledger directly.
	WeightBackend weight.Backend
	// Sparse selects the round hot-path implementation: the zero value
	// (SparseAuto) picks the centralized sparse-committee sampler for
	// large populations with absolute taus and the dense per-node sweep
	// otherwise. See SparseMode for the semantics and the equivalence
	// contract.
	Sparse SparseMode
	// Metrics overrides the telemetry bundle per-round deltas flush
	// into; nil — the usual case — resolves obs.DefaultSim(), which is
	// itself nil (all flushes skipped) until obs.Enable is called.
	// Telemetry is side-effect-free: it reads no RNG and mutates no
	// simulation state, so outputs are byte-identical either way.
	Metrics *obs.SimMetrics
	// Trace optionally records Chrome-trace spans of this runner's
	// round/step phases plus gossip deliveries to the trace's bounded
	// node panel, timestamped in virtual time (deterministic). A Trace
	// is single-writer: attach it to one runner (drivers use run 0).
	Trace *obs.Trace
}

// DefaultLossProb is the effective per-hop gossip loss used when
// Config.LossProb is zero. It folds queueing and per-link timeouts into a
// single Bernoulli drop; 0.20 calibrates the simulator so that a 5%
// defection rate leaves roughly 7% of nodes without a block, the
// operating point the paper reports for Fig. 3-(a).
const DefaultLossProb = 0.20

// Runner drives the BA* protocol for a population of simulated nodes.
type Runner struct {
	params    Params
	engine    *sim.Engine
	net       *network.Network
	canonical *ledger.Ledger
	weights   weight.Oracle
	// nodes is id-indexed; in dense mode every entry is live, in sparse
	// mode only the round's materialized nodes are non-nil.
	nodes []*node
	// behaviors is the id-indexed behaviour table, the source of truth in
	// both modes (dense node structs mirror it).
	behaviors                []Behavior
	keys                     []vrf.KeyPair
	rng                      *rand.Rand
	reward                   RewardHook
	pending                  []ledger.Transaction
	nonce                    uint64
	meter                    *costMeter
	degradedFrom, degradedTo uint64 // forced weak-synchrony window

	// sparse is non-nil when this runner uses the centralized
	// sparse-committee path; fanout/lossProb/delay snapshot the gossip
	// parameters its mean-field model needs, and sparseDeliverCb is the
	// single pre-bound delivery callback handed to Engine.ScheduleFn.
	sparse          *sparseState
	fanout          int
	lossProb        float64
	delay           network.DelayModel
	sparseDeliverCb func(node int, payload any)

	// cache is the per-runner sortition oracle: every Select/Verify in
	// the round hot path walks its memoised threshold tables instead of
	// recomputing binomial PDFs. Runners are single-threaded, so the
	// cache needs no locking; each run-pool worker owns its own Runner.
	cache *sortition.Cache

	// Per-round scratch state, reused across rounds.
	roundStakes []float64
	roundTotal  float64
	roundSeed   ledger.Hash
	tauStepAbs  float64
	tauFinalAbs float64
	degraded    bool
	proposers   map[int]float64 // node -> sub-user weight this round
	voters      map[int]float64

	// Payload arenas: gossip payloads live exactly one round (the engine
	// drains fully before finalisation), so they are slab-allocated and
	// rewound at the top of each round.
	votePool slab[votePayload]
	propPool slab[proposalPayload]

	// outcomeSlab carves the per-report Outcomes slices from large
	// chunks. Reports own disjoint sub-slices — callers may retain them —
	// while the runner allocates once per chunk instead of once per round.
	outcomeSlab []Outcome

	// collectRoles scratch: roleTaken marks nodes already assigned,
	// roleScratch stages the three role groups before the exact-size copy
	// handed to the reward hook.
	roleTaken   []bool
	roleScratch []RoleStake

	// hooks are the adversary seams; all-nil for ordinary runs.
	// stepRevealed stages the nodes whose sortition credential was
	// revealed in the current step, for the StepDone hook; it is only
	// populated when that hook is installed.
	hooks        Hooks
	stepRevealed []int

	// Telemetry. metrics is nil when the registry is disabled; the
	// per-round flush (flushMetrics) is the only place the runner
	// touches its atomics, fed by deltas against the prev* baselines
	// (re-taken at construction because arenas recycle the engine and
	// the sortition cache across runs). resyncs counts catch-up
	// recoveries within the current round; trace is the optional span
	// recorder. None of it reads an RNG or mutates simulation state.
	metrics            *obs.SimMetrics
	trace              *obs.Trace
	prevSched          sim.SchedStats
	prevHits, prevMiss uint64
	resyncs            uint64
}

// NewRunner validates cfg and builds the simulation.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Stakes) < 2 {
		return nil, errors.New("protocol: need at least two nodes")
	}
	if len(cfg.Behaviors) != len(cfg.Stakes) {
		return nil, errors.New("protocol: behaviors and stakes length mismatch")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 5
	}
	if cfg.Delay == nil {
		cfg.Delay = HeavyTailDefault()
	}

	var engine *sim.Engine
	if ar := cfg.Arena; ar != nil && ar.engine != nil {
		engine = ar.engine
		engine.Reset(cfg.Seed)
	} else {
		engine = sim.NewEngine(cfg.Seed)
		if ar != nil {
			ar.engine = engine
		}
	}
	canonical := ledger.Genesis(cfg.Stakes, engine.RNG("ledger.genesis"))

	weights := cfg.Weights
	if weights == nil {
		var err error
		weights, err = weight.ForLedger(canonical, cfg.WeightBackend)
		if err != nil {
			return nil, err
		}
	} else if weights.NumNodes() != len(cfg.Stakes) {
		return nil, fmt.Errorf("protocol: weight oracle covers %d nodes, population has %d",
			weights.NumNodes(), len(cfg.Stakes))
	}

	useSparse := false
	switch cfg.Sparse {
	case SparseOn:
		if !sparseEligible(&cfg) {
			return nil, errSparseTau
		}
		useSparse = !forcePerNodeDraw
	case SparseAuto:
		useSparse = !forcePerNodeDraw &&
			len(cfg.Stakes) >= SparseAutoThreshold && sparseEligible(&cfg)
	}

	n := len(cfg.Stakes)
	r := &Runner{
		params:    cfg.Params,
		engine:    engine,
		canonical: canonical,
		weights:   weights,
		rng:       engine.RNG("runner"),
		reward:    cfg.Reward,
		proposers: make(map[int]float64),
		voters:    make(map[int]float64),
		hooks:     cfg.Hooks,
	}
	if ar := cfg.Arena; ar != nil {
		if useSparse {
			r.nodes = ar.takeNodesNil(n)
		} else {
			r.nodes = ar.takeNodes(n)
			r.keys = ar.takeKeys(n)
		}
		r.meter = ar.takeMeter(n)
		r.roleTaken = ar.takeRoleTaken(n)
		r.behaviors = ar.takeBehaviors(n)
		r.cache = ar.cache
	} else {
		r.nodes = make([]*node, n)
		if !useSparse {
			for i := range r.nodes {
				r.nodes[i] = &node{}
			}
			r.keys = make([]vrf.KeyPair, n)
		}
		r.meter = newCostMeter(n)
		r.roleTaken = make([]bool, n)
		r.behaviors = make([]Behavior, n)
		r.cache = sortition.NewCache()
	}
	copy(r.behaviors, cfg.Behaviors)
	if useSparse {
		// No per-node state exists up front: node structs materialize
		// lazily per round (committee ∪ panel), credentials are fabricated
		// centrally (no VRF keys read), and no ledger views are cloned —
		// materialized nodes share the canonical ledger read-only.
		if ar := cfg.Arena; ar != nil {
			if ar.sparse == nil {
				ar.sparse = newSparseState(engine.RNG("protocol.sparse"))
			} else {
				ar.sparse.adopt(engine.RNG("protocol.sparse"))
			}
			r.sparse = ar.sparse
		} else {
			r.sparse = newSparseState(engine.RNG("protocol.sparse"))
		}
		r.sparseDeliverCb = r.sparseDeliver
	} else {
		for i, nd := range r.nodes {
			acct, err := canonical.Account(i)
			if err != nil {
				return nil, fmt.Errorf("protocol: genesis account %d: %w", i, err)
			}
			r.keys[i] = acct.Keys
			nd.id = i
			nd.behavior = cfg.Behaviors[i]
			nd.ledger = canonical.CloneView()
			nd.synced = true
		}
	}

	loss := cfg.LossProb
	if loss == 0 {
		loss = DefaultLossProb
	}
	if loss < 0 {
		loss = 0
	}
	netCfg := network.Config{
		N:        len(cfg.Stakes),
		Fanout:   cfg.Fanout,
		Delay:    cfg.Delay,
		LossProb: loss,
	}
	if cfg.Arena != nil {
		netCfg.Arena = &cfg.Arena.net
	}
	net, err := network.New(netCfg, engine, r.handleMessage)
	if err != nil {
		return nil, err
	}
	r.net = net
	r.fanout = cfg.Fanout
	r.lossProb = loss
	r.delay = cfg.Delay
	// The network hints the engine's scheduling horizon for the current
	// delay factor; pre-hint the weak-synchrony worst case too, so the
	// first degraded round never rebuilds the calendar ring mid-run. The
	// sparse path delays each mean-field delivery by a whole multi-hop
	// path, so its horizon scales with the modelled hop count.
	if bd, ok := cfg.Delay.(network.BoundedDelay); ok {
		horizon := float64(bd.MaxDelay())
		if cfg.Params.AsyncFactor > 1 {
			horizon *= cfg.Params.AsyncFactor
		}
		if r.sparse != nil {
			r.sparse.hops = sparseHops(n, cfg.Fanout)
			horizon *= float64(r.sparse.hops)
		}
		if cfg.Params.AsyncFactor > 1 || r.sparse != nil {
			engine.HintHorizon(time.Duration(horizon))
		}
	} else if r.sparse != nil {
		r.sparse.hops = sparseHops(n, cfg.Fanout)
	}
	net.SetRelayObserver(func(nodeID int) {
		r.meter.of(nodeID).Gossip++
	})
	for i, b := range r.behaviors {
		switch b {
		case Selfish:
			net.SetRelay(i, false) // defectors refuse the gossiping task
		case Faulty:
			net.SetOnline(i, false)
		}
	}
	r.metrics = cfg.Metrics
	if r.metrics == nil {
		r.metrics = obs.DefaultSim()
	}
	r.trace = cfg.Trace
	if r.metrics != nil {
		// Baselines for the per-round delta flush: the engine and the
		// sortition cache arrive from the arena with history.
		r.prevSched = engine.SchedStats()
		r.prevHits, r.prevMiss = r.cache.Stats()
		coverage := int64(0)
		if r.sparse != nil {
			coverage = 1
		}
		r.metrics.CoverageMaterializedOnly.Set(coverage)
	}
	return r, nil
}

// HeavyTailDefault is the default per-hop delay model: 20–200 ms with a 4%
// chance of an 8x slower link.
func HeavyTailDefault() network.DelayModel {
	return network.HeavyTailDelay{
		Base:       network.UniformDelay{Min: 20 * time.Millisecond, Max: 200 * time.Millisecond},
		SlowProb:   0.04,
		SlowFactor: 8,
	}
}

// Canonical exposes the authoritative chain (what the synced quorum
// agreed on); experiments read stakes and blocks from it.
func (r *Runner) Canonical() *ledger.Ledger { return r.canonical }

// Weights exposes the runner's weight oracle — the only sanctioned path
// to sortition weights for adversaries, experiments and examples. Query
// it for the runner's current round only: schedule-driven oracles
// enforce monotonic round advance.
func (r *Runner) Weights() weight.Oracle { return r.weights }

// Network exposes the gossip fabric, e.g. for stats.
func (r *Runner) Network() *network.Network { return r.net }

// SubmitTransaction queues a fee-less transfer for inclusion by future
// proposers.
func (r *Runner) SubmitTransaction(from, to int, amount float64) {
	r.SubmitTransactionFee(from, to, amount, 0)
}

// SubmitTransactionFee queues a transfer paying the given fee. Fees are
// deducted from senders when the block commits and accumulate in the
// canonical ledger's fee account (see FeesCollected), from where the
// Foundation's transaction-fee pool is funded.
func (r *Runner) SubmitTransactionFee(from, to int, amount, fee float64) {
	r.nonce++
	r.pending = append(r.pending, ledger.Transaction{
		From: from, To: to, Amount: amount, Fee: fee, Nonce: r.nonce,
	})
}

// FeesCollected returns the cumulative transaction fees committed on the
// canonical chain.
func (r *Runner) FeesCollected() float64 { return r.canonical.FeesCollected() }

// TaskCounts returns a copy of every node's Table II task counters,
// letting callers price a simulation with game.TaskCosts.
func (r *Runner) TaskCounts() []TaskCounts { return r.meter.Snapshot() }

// SetDegradedWindow forces weak synchrony (the AsyncFactor delay
// inflation) for every round in [from, to], on top of the random
// AsyncProb rounds. Experiments use it to reproduce the paper's
// asynchrony-then-recovery spikes deterministically.
func (r *Runner) SetDegradedWindow(from, to uint64) {
	r.degradedFrom, r.degradedTo = from, to
}

// RunRounds simulates n consecutive rounds and returns their reports.
func (r *Runner) RunRounds(n int) []RoundReport {
	reports := make([]RoundReport, 0, n)
	for i := 0; i < n; i++ {
		reports = append(reports, r.runRound())
	}
	return reports
}

const finalVoteStep = 1 << 20 // sortition step id reserved for final votes

func (r *Runner) runRound() RoundReport {
	// Wall-clock reads happen only with metrics attached, keeping the
	// disabled path free of syscalls as well as allocations.
	var wallStart time.Time
	if r.metrics != nil {
		wallStart = time.Now()
	}
	round := r.canonical.Round()
	// Refresh the per-round weight snapshot in place via the oracle;
	// reports and role collections copy values out, so the buffer is
	// private to the round.
	r.roundStakes = r.weights.WeightsInto(round, r.roundStakes)
	r.roundTotal = r.weights.TotalWeight(round)
	if r.metrics != nil {
		r.metrics.WeightRefreshes.Add(1)
		r.metrics.WeightRefreshNS.Add(uint64(time.Since(wallStart)))
	}
	r.roundSeed = r.canonical.Seed()
	r.tauStepAbs = resolveTau(r.params.TauStep, r.roundTotal)
	r.tauFinalAbs = resolveTau(r.params.TauFinal, r.roundTotal)
	r.degraded = r.rng.Float64() < r.params.AsyncProb
	if r.degradedFrom > 0 && round >= r.degradedFrom && round <= r.degradedTo {
		r.degraded = true
	}
	if r.degraded {
		r.net.SetDelayFactor(r.params.AsyncFactor)
	} else {
		r.net.SetDelayFactor(1)
	}
	r.net.ResetSeen()
	// Steady-state stakes need ~3 tables per distinct stake (one per
	// role probability), all reused round after round. When rewards or
	// transactions move stake, τ/W and the per-account w drift, every
	// round mints fresh (stake, prob) keys and old tables become dead
	// weight — drop the whole oracle at a generous high-water mark so
	// memory stays bounded while within-round reuse (12+ steps sharing
	// each table) is preserved.
	if r.cache.Size() > 8*len(r.nodes)+64 {
		r.cache.Reset()
	}
	clear(r.proposers)
	clear(r.voters)
	// The previous round's gossip has fully drained, so its payload slots
	// can be re-issued.
	r.votePool.reset()
	r.propPool.reset()

	// Adversary phase transitions happen here, before nodes derive seeds
	// or pay sortition costs, so behaviour flips and crash churn apply to
	// the whole round.
	if r.hooks.RoundStart != nil {
		r.hooks.RoundStart(round)
	}

	lastStep := 2 + r.params.MaxBinarySteps
	if r.sparse != nil {
		r.beginRoundSparse(round, lastStep)
	} else {
		for _, nd := range r.nodes {
			nd.synced = nd.ledger.Round() == round && nd.ledger.Tip() == r.canonical.Tip()
			nd.beginRound(round)
			// Every online node derives the round seed; even defectors run
			// sortition to join the network ("paying cost c_so").
			if r.net.Online(nd.id) && nd.behavior != Faulty {
				meter := r.meter.of(nd.id)
				meter.Sortition++
				if nd.behavior != Selfish {
					meter.Seed++
				}
			}
		}
	}

	start := r.engine.Now()
	r.engine.ScheduleAt(start, func() { r.proposePhase(round) })
	stepAt := func(s int) time.Duration {
		return start + r.params.ProposalTimeout + time.Duration(s-1)*r.params.StepTimeout
	}
	r.engine.ScheduleAt(stepAt(1), func() { r.reductionStep1(round) })
	r.engine.ScheduleAt(stepAt(2), func() { r.reductionStep2(round) })
	for s := 3; s <= lastStep; s++ {
		s := s
		r.engine.ScheduleAt(stepAt(s), func() { r.binaryStep(round, uint64(s)) })
	}
	// Drain all gossip; late messages land in tallies but were not counted.
	_ = r.engine.Run(0)

	var report RoundReport
	if r.sparse != nil {
		report = r.finalizeRoundSparse(round, lastStep)
		r.catchUpSparse()
		report.Desynced = len(r.sparse.desynced)
	} else {
		report = r.finalizeRound(round, lastStep)
		r.catchUp()
		report.Desynced = r.countDesynced()
	}
	if r.reward != nil {
		r.reward(r.collectRoles(round), report)
	}
	if r.hooks.RoundEnd != nil {
		r.hooks.RoundEnd(round, report)
	}
	if r.trace != nil {
		r.traceRound(round, start, stepAt, lastStep)
	}
	if r.metrics != nil {
		r.flushMetrics(&report, lastStep, time.Since(wallStart))
	}
	return report
}

// flushMetrics pushes one round's telemetry deltas into the shared
// registry: a fixed handful of atomic adds per round, so the per-event
// hot paths (scheduler pushes, cache lookups) stay on plain counters.
// Everything flushed here is a pure read of simulation state.
func (r *Runner) flushMetrics(report *RoundReport, lastStep int, wall time.Duration) {
	m := r.metrics
	m.Rounds.Add(1)
	if report.Decided {
		m.RoundsDecided.Add(1)
	}
	if report.Degraded {
		m.RoundsDegraded.Add(1)
	}
	if r.sparse != nil {
		m.RoundsSparse.Add(1)
	} else {
		m.RoundsDense.Add(1)
	}
	m.Steps.Add(uint64(lastStep) + 1) // propose + reduction 1..2 + binary 3..lastStep
	m.Proposers.Add(uint64(len(r.proposers)))
	m.CommitteeSize.Observe(float64(len(r.voters)))
	m.DesyncedNodes.Add(uint64(report.Desynced))
	m.Resyncs.Add(r.resyncs)
	r.resyncs = 0

	sched := r.engine.SchedStats()
	m.EventsScheduled.Add(sched.Scheduled - r.prevSched.Scheduled)
	m.EventsExecuted.Add(sched.Executed - r.prevSched.Executed)
	m.EventsNear.Add(sched.Near - r.prevSched.Near)
	m.EventsFar.Add(sched.Far - r.prevSched.Far)
	m.EventsOverflow.Add(sched.Overflow - r.prevSched.Overflow)
	m.EventsMigrated.Add(sched.Migrated - r.prevSched.Migrated)
	r.prevSched = sched

	hits, misses := r.cache.Stats()
	m.SortitionHits.Add(hits - r.prevHits)
	m.SortitionMisses.Add(misses - r.prevMiss)
	r.prevHits, r.prevMiss = hits, misses

	m.RoundWallNS.Add(uint64(wall))
}

// traceRound records the round's phase spans on the trace's virtual
// timeline: one span for the whole round, one for the proposal window,
// one per committee step window, all on track 0 (gossip instants use
// per-node tracks, see handleMessage). Allocation here is fine — the
// recorder is attached to at most one runner, never to benchmarks.
func (r *Runner) traceRound(round uint64, start time.Duration, stepAt func(int) time.Duration, lastStep int) {
	name := "round " + itoa(round)
	r.trace.Span("round", name, 0, start, r.engine.Now()-start)
	r.trace.Span("phase", "propose", 0, start, r.params.ProposalTimeout)
	for s := 1; s <= lastStep; s++ {
		var step string
		switch s {
		case 1:
			step = "reduction 1"
		case 2:
			step = "reduction 2"
		default:
			step = "binary " + itoa(uint64(s))
		}
		r.trace.Span("phase", step, 0, stepAt(s), r.params.StepTimeout)
	}
}

// itoa formats a uint64 without strconv (matching the runner's
// avoid-fmt-in-round-path convention; only trace recording calls it).
func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func resolveTau(tau, total float64) float64 {
	if tau <= 1 {
		return tau * total
	}
	return tau
}

// roundNodes returns the nodes the phase loops iterate: every node in
// dense mode, only the round's materialized nodes (sorted by id) in
// sparse mode. Sparse is exact here, not an approximation: unmaterialized
// nodes hold no committee seats in any step, and a dense node that never
// wins a lottery has no observable effect in any phase loop.
func (r *Runner) roundNodes() []*node {
	if r.sparse != nil {
		return r.sparse.actors
	}
	return r.nodes
}

// gossip routes a message through the simulated gossip network (dense) or
// the mean-field model (sparse).
func (r *Runner) gossip(origin int, msg network.Message) {
	if r.sparse != nil {
		r.sparseGossip(origin, msg)
		return
	}
	r.net.Gossip(origin, msg)
}

// participates reports whether node nd performs protocol tasks this round.
func (r *Runner) participates(nd *node) bool {
	if !r.net.Online(nd.id) || !nd.synced {
		return false
	}
	return nd.behavior == Honest || nd.behavior == Malicious
}

func (r *Runner) sortitionParams(role sortition.Role, round, step uint64, tau float64) sortition.Params {
	return sortition.Params{
		Seed:       [32]byte(r.roundSeed),
		Role:       role,
		Round:      round,
		Step:       step,
		Tau:        tau,
		TotalStake: r.roundTotal,
	}
}

// --- Phase actions -------------------------------------------------------

func (r *Runner) proposePhase(round uint64) {
	for _, nd := range r.roundNodes() {
		if !r.participates(nd) {
			continue
		}
		p := r.sortitionParams(sortition.RoleProposer, round, 0, r.params.TauProposer)
		var res sortition.Result
		if r.sparse != nil {
			seats := r.sparse.committeeFor(0).seats[nd.id]
			if seats == 0 {
				continue
			}
			res = sortition.Pseudo(p, nd.id, seats)
		} else {
			var err error
			res, err = r.cache.Select(r.keys[nd.id].Private, r.roundStakes[nd.id], p)
			if err != nil || !res.Selected() {
				continue
			}
		}
		r.proposers[nd.id] = float64(res.SubUsers)
		r.meter.of(nd.id).Propose++
		r.reveal(nd.id)
		fan := 1
		if r.hooks.ProposalFan != nil {
			fan = r.hooks.ProposalFan(nd.id, round)
		}
		if fan < 1 {
			continue // withheld proposal: selected and assembled, never sent
		}
		block := r.assembleBlock(nd, round)
		for v := 0; v < fan; v++ {
			variant := block
			if v > 0 {
				// Equivocating variants perturb the seed field, which the
				// block hash covers but chain validation does not pin, so
				// each variant is a distinct structurally-valid block under
				// the same proposer credential.
				variant.Seed[0] ^= byte(v)
			}
			payload := r.propPool.take()
			*payload = proposalPayload{
				Block:      variant,
				BlockHash:  variant.Hash(),
				Credential: res,
				Proposer:   nd.id,
			}
			if r.sparse != nil {
				// Pseudo-credentials carry no verifiable proof (no VRF keys
				// exist in sparse mode); emission is the trust anchor, so the
				// payload ships pre-verified and receivers skip cache.Verify.
				payload.verdict = memoValid
			}
			r.gossip(nd.id, network.Message{
				ID:      proposalVariantID(round, nd.id, v),
				Kind:    network.KindProposal,
				Origin:  nd.id,
				Payload: payload,
			})
		}
	}
	r.stepDone(round, 0)
}

// reveal stages a node whose sortition credential just became public, for
// the StepDone adaptive-corruption seam. No-op unless the hook is set.
func (r *Runner) reveal(id int) {
	if r.hooks.StepDone != nil {
		r.stepRevealed = append(r.stepRevealed, id)
	}
}

// stepDone flushes the revealed set to the StepDone hook.
func (r *Runner) stepDone(round, step uint64) {
	if r.hooks.StepDone == nil {
		return
	}
	r.hooks.StepDone(round, step, r.stepRevealed)
	r.stepRevealed = r.stepRevealed[:0]
}

// assembleBlock packs pending valid transactions into a proposal. A
// malicious proposer produces a structurally valid but empty-payload block
// with a perturbed seed lineage, modelling an adversarial proposal.
func (r *Runner) assembleBlock(nd *node, round uint64) ledger.Block {
	block := ledger.Block{
		Round:    round,
		Prev:     nd.ledger.Tip(),
		Seed:     ledger.NextSeed(nd.ledger.Seed(), round),
		Proposer: nd.id,
	}
	if nd.behavior == Malicious {
		return block // valid-but-empty adversarial payload
	}
	count := 0
	for _, tx := range r.pending {
		if count >= r.params.MaxTxPerBlock {
			break
		}
		r.meter.of(nd.id).Verify++
		if nd.ledger.ValidateTx(tx) == nil {
			block.Txns = append(block.Txns, tx)
			count++
		}
	}
	return block
}

func (r *Runner) reductionStep1(round uint64) {
	if r.sparse != nil {
		// Flat meter pass: every participant pays the block-selection task
		// exactly as the dense sweep meters it, materialized or not.
		for id := range r.nodes {
			if r.participatesID(id) {
				r.meter.of(id).SelectBlock++
			}
		}
	}
	for _, nd := range r.roundNodes() {
		if !r.participates(nd) {
			continue
		}
		value := nd.emptyHash()
		if nd.bestProposal != nil {
			value = nd.bestProposal.BlockHash
		}
		if r.sparse == nil {
			r.meter.of(nd.id).SelectBlock++
		}
		r.castVote(nd, round, 1, false, value)
	}
	r.stepDone(round, 1)
}

func (r *Runner) reductionStep2(round uint64) {
	quorum := r.params.ThresholdStep * r.tauStepAbs
	for _, nd := range r.roundNodes() {
		if !r.participates(nd) {
			continue
		}
		value := nd.emptyHash()
		if leader, w := nd.tally(1).leader(); w >= quorum && leader != nd.emptyHash() {
			value = leader
		}
		r.castVote(nd, round, 2, false, value)
	}
	r.stepDone(round, 2)
}

// binaryStep first evaluates the previous step's tally and then, if the
// node has not yet decided, casts the next BinaryBA* vote.
func (r *Runner) binaryStep(round, step uint64) {
	quorum := r.params.ThresholdStep * r.tauStepAbs
	for _, nd := range r.roundNodes() {
		if !r.participates(nd) || nd.decided {
			continue
		}
		prev := nd.tally(step - 1)
		empty := nd.emptyHash()
		if step == 3 {
			// Entering BinaryBA*: adopt the reduction output.
			nd.value = empty
			if leader, w := prev.leader(); w >= quorum && leader != empty {
				nd.value = leader
			}
		} else {
			r.evaluateBinaryTally(nd, prev, quorum, step-1)
			if nd.decided {
				continue
			}
		}
		r.castVote(nd, round, step, false, nd.value)
	}
	r.stepDone(round, step)
}

// evaluateBinaryTally applies the BinaryBA* decision rule to one tally.
func (r *Runner) evaluateBinaryTally(nd *node, t *stepTally, quorum float64, step uint64) {
	empty := nd.emptyHash()
	var bestNonEmpty ledger.Hash
	bestW := 0.0
	for i := range t.slots {
		e := &t.slots[i]
		if !e.live || e.key == empty {
			continue
		}
		if e.w > bestW || (e.w == bestW && hashLess(e.key, bestNonEmpty)) {
			bestNonEmpty, bestW = e.key, e.w
		}
	}
	switch {
	case bestW >= quorum:
		nd.decided = true
		nd.decidedHash = bestNonEmpty
		nd.decidedStep = step
		if step == 3 {
			// Completed in the first BinaryBA* step: vote in the final
			// committee so the network can declare the block FINAL.
			r.castFinalVote(nd, nd.round, bestNonEmpty)
		}
	case t.weightFor(empty) >= quorum:
		nd.decided = true
		nd.decidedHash = empty
		nd.decidedStep = step
	}
}

func (r *Runner) castVote(nd *node, round, step uint64, final bool, value ledger.Hash) {
	tau := r.tauStepAbs
	role := sortition.RoleCommittee
	sortStep := step
	if final {
		tau = r.tauFinalAbs
		role = sortition.RoleFinal
		sortStep = finalVoteStep
	}
	p := r.sortitionParams(role, round, sortStep, tau)
	var res sortition.Result
	if r.sparse != nil {
		seats := r.sparse.committeeFor(sortStep).seats[nd.id]
		if seats == 0 {
			return
		}
		res = sortition.Pseudo(p, nd.id, seats)
	} else {
		var err error
		res, err = r.cache.Select(r.keys[nd.id].Private, r.roundStakes[nd.id], p)
		if err != nil || !res.Selected() {
			return
		}
	}
	r.voters[nd.id] = r.voters[nd.id] + float64(res.SubUsers)
	r.meter.of(nd.id).Vote++
	r.reveal(nd.id)
	if nd.behavior == Malicious {
		value = r.maliciousValue(nd, value)
	}
	if r.hooks.VoteValues != nil {
		if values, ok := r.hooks.VoteValues(nd.id, round, step, final, value, nd.emptyHash()); ok {
			// Equivocation (or, for an empty slice, selective silence): one
			// vote per value, each under its own message ID but the same
			// revealed credential.
			for v, val := range values {
				r.emitVote(nd, round, step, final, val, v, res)
			}
			return
		}
	}
	r.emitVote(nd, round, step, final, value, 0, res)
}

// emitVote gossips one committee vote. variant distinguishes equivocating
// votes from the same (round, step, voter); variant 0 reproduces the
// historical message ID byte-for-byte.
func (r *Runner) emitVote(nd *node, round, step uint64, final bool, value ledger.Hash, variant int, res sortition.Result) {
	payload := r.votePool.take()
	*payload = votePayload{
		Round:      round,
		Step:       step,
		Final:      final,
		Value:      value,
		Voter:      nd.id,
		Credential: res,
	}
	if r.sparse != nil {
		// Pseudo-credentials are unverifiable; emission is the trust anchor
		// (see proposePhase).
		payload.verdict = memoValid
	}
	r.gossip(nd.id, network.Message{
		ID:      voteVariantID(round, step, final, nd.id, variant),
		Kind:    network.KindVote,
		Origin:  nd.id,
		Payload: payload,
	})
}

func (r *Runner) castFinalVote(nd *node, round uint64, value ledger.Hash) {
	r.castVote(nd, round, finalVoteStep, true, value)
}

// maliciousValue votes adversarially: against whatever the node would
// honestly support. When the honest vote backs a block, it votes for the
// empty hash; when the honest vote is empty, it backs the smallest
// observed block. The choice is a pure function of node state — an
// earlier version picked "any" block via map iteration, whose randomised
// order made runs irreproducible.
func (r *Runner) maliciousValue(nd *node, honest ledger.Hash) ledger.Hash {
	empty := nd.emptyHash()
	if honest != empty {
		return empty
	}
	var best ledger.Hash
	found := false
	for h := range nd.blocks {
		if !found || hashLess(h, best) {
			best, found = h, true
		}
	}
	if !found {
		return empty
	}
	return best
}

// --- Message handling ----------------------------------------------------

func (r *Runner) handleMessage(nodeID int, msg network.Message) {
	if r.trace != nil && nodeID < r.trace.Panel() {
		name := "vote"
		if msg.Kind == network.KindProposal {
			name = "proposal"
		}
		r.trace.Instant("gossip", name, nodeID, r.engine.Now())
	}
	nd := r.nodes[nodeID]
	if nd == nil {
		// Sparse mode only materializes committee ∪ panel; nothing else can
		// be addressed, but the guard keeps the invariant local.
		return
	}
	if nd.behavior == Selfish || nd.behavior == Faulty {
		// Defectors skip verification, block selection and vote counting;
		// faulty nodes are offline anyway.
		return
	}
	switch payload := msg.Payload.(type) {
	case *proposalPayload:
		r.handleProposal(nd, payload)
	case *votePayload:
		r.handleVote(nd, payload)
	}
}

func (r *Runner) handleProposal(nd *node, p *proposalPayload) {
	if p.Block.Round != nd.round {
		return
	}
	r.meter.of(nd.id).VerifyProof++
	if p.verdict == memoUnknown {
		// Credential and body-hash integrity are both pure in the shared
		// payload, so one verdict covers every delivery of this proposal.
		params := r.sortitionParams(sortition.RoleProposer, nd.round, 0, r.params.TauProposer)
		if r.cache.Verify(r.keys[p.Proposer].Public, r.roundStakes[p.Proposer], params, p.Credential) &&
			p.Block.Hash() == p.BlockHash {
			p.verdict = memoValid
		} else {
			p.verdict = memoInvalid
		}
	}
	if p.verdict != memoValid {
		return
	}
	if nd.synced && nd.ledger.ValidateBlock(p.Block) != nil {
		return
	}
	nd.observeProposal(p)
}

func (r *Runner) handleVote(nd *node, v *votePayload) {
	if v.Round != nd.round {
		return
	}
	tau := r.tauStepAbs
	role := sortition.RoleCommittee
	sortStep := v.Step
	if v.Final {
		tau = r.tauFinalAbs
		role = sortition.RoleFinal
		sortStep = finalVoteStep
	}
	meter := r.meter.of(nd.id)
	meter.VerifyProof++
	if v.verdict == memoUnknown {
		params := r.sortitionParams(role, v.Round, sortStep, tau)
		if r.cache.Verify(r.keys[v.Voter].Public, r.roundStakes[v.Voter], params, v.Credential) {
			v.verdict = memoValid
		} else {
			v.verdict = memoInvalid
		}
	}
	if v.verdict != memoValid {
		return
	}
	meter.CountVotes++
	nd.observeVote(v)
}

// --- Round finalisation --------------------------------------------------

// takeOutcomes carves one round's Outcomes slice from the slab. The
// returned slice is full-length, zeroed, capacity-clipped, and never
// re-issued, so reports can be retained by callers indefinitely.
func (r *Runner) takeOutcomes() []Outcome {
	n := len(r.nodes)
	if len(r.outcomeSlab) < n {
		const roundsPerChunk = 64
		r.outcomeSlab = make([]Outcome, n*roundsPerChunk)
	}
	out := r.outcomeSlab[:n:n]
	r.outcomeSlab = r.outcomeSlab[n:]
	return out
}

func (r *Runner) finalizeRound(round uint64, lastStep int) RoundReport {
	report := RoundReport{
		Round:      round,
		Outcomes:   r.takeOutcomes(),
		Population: len(r.nodes),
		Degraded:   r.degraded,
	}
	finalQuorum := r.params.ThresholdFinal * r.tauFinalAbs
	quorum := r.params.ThresholdStep * r.tauStepAbs

	// Give undecided nodes one last look at the final step's tally.
	for _, nd := range r.nodes {
		if r.participates(nd) && !nd.decided {
			r.evaluateBinaryTally(nd, nd.tally(uint64(lastStep)), quorum, uint64(lastStep))
		}
	}

	decisions := make(map[ledger.Hash]int)
	for _, nd := range r.nodes {
		outcome := OutcomeNone
		var hash ledger.Hash
		if r.participates(nd) && nd.decided {
			hash = nd.decidedHash
			switch {
			case hash == nd.emptyHash():
				outcome = OutcomeTentative
			case nd.finalTally.weightFor(hash) >= finalQuorum:
				outcome = OutcomeFinal
			default:
				outcome = OutcomeTentative
			}
			if _, has := nd.blocks[hash]; !has && hash != nd.emptyHash() {
				// Knows the winning hash but never received the block body.
				outcome = OutcomeNone
			}
		}
		nd.outcome = outcome
		nd.outcomeHash = hash
		report.Outcomes[nd.id] = outcome
		switch outcome {
		case OutcomeFinal:
			report.FinalCount++
			decisions[hash]++
		case OutcomeTentative:
			report.TentativeCount++
			decisions[hash]++
		default:
			report.NoneCount++
		}
	}

	canonicalBlock, decided := r.pickCanonical(round, decisions)
	report.Decided = decided
	if decided {
		// Only advance the canonical chain when some node actually reached
		// agreement; otherwise BA* stalls and the round is retried, which is
		// Algorand's liveness behaviour under lost synchrony.
		report.CanonicalEmpty = canonicalBlock.Empty
		report.CanonicalHash = canonicalBlock.Hash()
		if err := r.canonical.Append(canonicalBlock); err == nil && !canonicalBlock.Empty {
			r.removePending(canonicalBlock.Txns)
		}
	}

	// Nodes commit what they decided; divergent or missing commits leave
	// the node desynchronised until catch-up.
	for _, nd := range r.nodes {
		if nd.outcome == OutcomeNone {
			continue
		}
		block, ok := r.blockFor(nd, nd.outcomeHash)
		if !ok {
			continue
		}
		_ = nd.ledger.Append(block)
	}
	return report
}

// pickCanonical selects the network-wide agreed block: the plurality
// decision among nodes, falling back to the empty block when nobody
// decided anything.
func (r *Runner) pickCanonical(round uint64, decisions map[ledger.Hash]int) (ledger.Block, bool) {
	empty := ledger.EmptyBlock(round, r.canonical.Tip(), ledger.NextSeed(r.canonical.Seed(), round))
	var bestHash ledger.Hash
	bestCount := 0
	for h, c := range decisions {
		if c > bestCount || (c == bestCount && hashLess(h, bestHash)) {
			bestHash, bestCount = h, c
		}
	}
	if bestCount == 0 {
		return empty, false
	}
	if bestHash == empty.Hash() {
		return empty, true
	}
	for _, nd := range r.nodes {
		if b, ok := nd.blocks[bestHash]; ok {
			return b, true
		}
	}
	return empty, false
}

func (r *Runner) blockFor(nd *node, hash ledger.Hash) (ledger.Block, bool) {
	if hash == nd.emptyHash() {
		return ledger.EmptyBlock(nd.round, nd.ledger.Tip(), ledger.NextSeed(nd.ledger.Seed(), nd.round)), true
	}
	b, ok := nd.blocks[hash]
	return b, ok
}

func (r *Runner) removePending(committed []ledger.Transaction) {
	if len(committed) == 0 {
		return
	}
	drop := make(map[uint64]struct{}, len(committed))
	for _, tx := range committed {
		drop[tx.Nonce] = struct{}{}
	}
	kept := r.pending[:0]
	for _, tx := range r.pending {
		if _, gone := drop[tx.Nonce]; !gone {
			kept = append(kept, tx)
		}
	}
	r.pending = kept
}

// catchUp lets lagging nodes resynchronise from healthy peers. Selfish
// nodes free-ride: they passively accept the chain they heard about.
// Honest nodes succeed with CatchUpProb when some outbound peer is synced
// and online; degraded rounds make recovery five times less likely,
// modelling the paper's weak-synchrony periods.
func (r *Runner) catchUp() {
	prob := r.params.CatchUpProb
	if r.degraded {
		prob *= 0.2
	}
	for _, nd := range r.nodes {
		behind := nd.ledger.Round() != r.canonical.Round() || nd.ledger.Tip() != r.canonical.Tip()
		if !behind {
			continue
		}
		if nd.behavior == Selfish {
			nd.ledger = r.canonical.CloneView()
			r.resyncs++
			continue
		}
		if !r.net.Online(nd.id) {
			continue
		}
		if r.rng.Float64() >= prob {
			continue
		}
		for _, peer := range r.net.Peers(nd.id) {
			p := r.nodes[peer]
			// Only honest, synced, online peers serve catch-up data;
			// defectors free-ride but do not help others recover.
			if p.behavior != Honest || !r.net.Online(peer) {
				continue
			}
			if p.ledger.Round() == r.canonical.Round() && p.ledger.Tip() == r.canonical.Tip() {
				nd.ledger = r.canonical.CloneView()
				r.resyncs++
				break
			}
		}
	}
}

func (r *Runner) countDesynced() int {
	n := 0
	for _, nd := range r.nodes {
		if nd.ledger.Round() != r.canonical.Round() || nd.ledger.Tip() != r.canonical.Tip() {
			n++
		}
	}
	return n
}

// collectRoles reports who filled each role this round; nodes that neither
// proposed nor voted are "others" (set K in the paper). Role groups are
// staged in reusable scratch and copied into one exact-size allocation,
// so hooks may retain the RoundRoles value without aliasing later rounds.
func (r *Runner) collectRoles(round uint64) RoundRoles {
	roles := RoundRoles{Round: round}
	clear(r.roleTaken)
	scratch := r.roleScratch[:0]
	for id, w := range r.proposers {
		scratch = append(scratch, RoleStake{ID: id, Stake: r.roundStakes[id], Weight: w})
		r.roleTaken[id] = true
	}
	nLeaders := len(scratch)
	for id, w := range r.voters {
		if r.roleTaken[id] {
			continue
		}
		scratch = append(scratch, RoleStake{ID: id, Stake: r.roundStakes[id], Weight: w})
		r.roleTaken[id] = true
	}
	nCommittee := len(scratch) - nLeaders
	for id := range r.nodes {
		if r.roleTaken[id] || !r.net.Online(id) {
			continue
		}
		scratch = append(scratch, RoleStake{ID: id, Stake: r.roundStakes[id], Weight: 0})
	}
	r.roleScratch = scratch

	buf := make([]RoleStake, len(scratch))
	copy(buf, scratch)
	roles.Leaders = buf[:nLeaders:nLeaders]
	roles.Committee = buf[nLeaders : nLeaders+nCommittee : nLeaders+nCommittee]
	roles.Others = buf[nLeaders+nCommittee:]
	sortRoleStakes(roles.Leaders)
	sortRoleStakes(roles.Committee)
	sortRoleStakes(roles.Others)
	return roles
}

func sortRoleStakes(rs []RoleStake) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].ID < rs[j-1].ID; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// emptyHash is the node's hash of this round's empty block, derived from
// its own chain view so that synced nodes agree on it. The value is
// computed once per round in beginRound; the chain view it derives from
// cannot change until finalisation.
func (nd *node) emptyHash() ledger.Hash {
	return nd.emptyH
}
