//go:build protocol_pernode_draw

package protocol

// Built with -tags protocol_pernode_draw: every configuration — including
// SparseOn — runs the dense per-node sortition sweep, the differential
// oracle for the centralized committee sampler. CI runs the goldens and
// the protocol suite under this tag; the randomized equivalence tests
// skip themselves (there is no sparse path to compare against).
const forcePerNodeDraw = true
