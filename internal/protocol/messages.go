package protocol

import (
	"crypto/sha256"
	"encoding/binary"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
)

// verifyMemo caches a credential's verification verdict on the gossiped
// payload itself. Verification is a pure function of the payload and the
// round state shared by all synced nodes, so the first receiver's verdict
// is valid for every later receiver; the memo collapses fanout×N
// re-verifications of one credential into one. Each node's VerifyProof
// cost counter still ticks per delivery — the memo models shared
// computation inside the simulator, not a protocol change.
type verifyMemo uint8

const (
	memoUnknown verifyMemo = iota
	memoValid
	memoInvalid
)

// proposalPayload is the gossiped block proposal: the block itself plus
// the sortition credential proving the sender's proposer role.
type proposalPayload struct {
	Block      ledger.Block
	BlockHash  ledger.Hash
	Credential sortition.Result
	Proposer   int
	verdict    verifyMemo
}

func proposalID(round uint64, proposer int) [32]byte {
	var buf [17]byte
	buf[0] = byte('P')
	binary.BigEndian.PutUint64(buf[1:], round)
	binary.BigEndian.PutUint64(buf[9:], uint64(int64(proposer)))
	return sha256.Sum256(buf[:])
}

// proposalVariantID identifies the variant'th equivocating proposal from
// one proposer. Variant 0 is the historical proposalID byte-for-byte, so
// hook-free runs keep their exact gossip identifiers.
func proposalVariantID(round uint64, proposer, variant int) [32]byte {
	if variant == 0 {
		return proposalID(round, proposer)
	}
	var buf [25]byte
	buf[0] = byte('Q') // distinct domain from the primary proposal
	binary.BigEndian.PutUint64(buf[1:], round)
	binary.BigEndian.PutUint64(buf[9:], uint64(int64(proposer)))
	binary.BigEndian.PutUint64(buf[17:], uint64(int64(variant)))
	return sha256.Sum256(buf[:])
}

// votePayload is a signed committee vote for a block hash at a given
// (round, step), carrying the sortition proof of committee membership.
type votePayload struct {
	Round      uint64
	Step       uint64
	Final      bool
	Value      ledger.Hash
	Voter      int
	Credential sortition.Result
	verdict    verifyMemo
}

func voteID(round, step uint64, final bool, voter int) [32]byte {
	var buf [26]byte
	buf[0] = byte('V')
	if final {
		buf[1] = 1
	}
	binary.BigEndian.PutUint64(buf[2:], round)
	binary.BigEndian.PutUint64(buf[10:], step)
	binary.BigEndian.PutUint64(buf[18:], uint64(int64(voter)))
	return sha256.Sum256(buf[:])
}

// voteVariantID identifies the variant'th equivocating vote from one
// voter at a (round, step). Variant 0 is the historical voteID
// byte-for-byte.
func voteVariantID(round, step uint64, final bool, voter, variant int) [32]byte {
	if variant == 0 {
		return voteID(round, step, final, voter)
	}
	var buf [34]byte
	buf[0] = byte('W') // distinct domain from the primary vote
	if final {
		buf[1] = 1
	}
	binary.BigEndian.PutUint64(buf[2:], round)
	binary.BigEndian.PutUint64(buf[10:], step)
	binary.BigEndian.PutUint64(buf[18:], uint64(int64(voter)))
	binary.BigEndian.PutUint64(buf[26:], uint64(int64(variant)))
	return sha256.Sum256(buf[:])
}
