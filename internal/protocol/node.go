package protocol

import (
	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
)

// stepTally accumulates weighted votes for one (round, step).
type stepTally struct {
	weights map[ledger.Hash]float64
	voters  map[int]struct{}
}

func newStepTally() *stepTally {
	return &stepTally{
		weights: make(map[ledger.Hash]float64),
		voters:  make(map[int]struct{}),
	}
}

// add records a vote of the given weight, once per voter.
func (t *stepTally) add(voter int, value ledger.Hash, weight float64) {
	if _, dup := t.voters[voter]; dup {
		return
	}
	t.voters[voter] = struct{}{}
	t.weights[value] += weight
}

// leader returns the value with the largest weight and that weight.
func (t *stepTally) leader() (ledger.Hash, float64) {
	var best ledger.Hash
	bestW := -1.0
	for v, w := range t.weights {
		if w > bestW || (w == bestW && hashLess(v, best)) {
			best, bestW = v, w
		}
	}
	if bestW < 0 {
		return ledger.Hash{}, 0
	}
	return best, bestW
}

// weightFor returns the accumulated weight for value.
func (t *stepTally) weightFor(value ledger.Hash) float64 {
	return t.weights[value]
}

func hashLess(a, b ledger.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// node is one simulated participant's protocol state for the current
// round. Long-lived state (the ledger replica, behaviour) persists across
// rounds; per-round state is reset by beginRound.
type node struct {
	id       int
	behavior Behavior
	ledger   *ledger.Ledger
	synced   bool

	// Per-round state.
	round        uint64
	bestPriority sortition.Priority
	bestProposal *proposalPayload
	blocks       map[ledger.Hash]ledger.Block
	tallies      map[uint64]*stepTally
	finalTally   *stepTally
	value        ledger.Hash // current BinaryBA* value
	decided      bool
	decidedHash  ledger.Hash
	decidedStep  uint64
	outcome      Outcome
	outcomeHash  ledger.Hash
}

func (nd *node) beginRound(round uint64) {
	nd.round = round
	nd.bestPriority = sortition.Priority{}
	nd.bestProposal = nil
	nd.blocks = make(map[ledger.Hash]ledger.Block)
	nd.tallies = make(map[uint64]*stepTally)
	nd.finalTally = newStepTally()
	nd.value = ledger.Hash{}
	nd.decided = false
	nd.decidedHash = ledger.Hash{}
	nd.decidedStep = 0
	nd.outcome = OutcomeNone
	nd.outcomeHash = ledger.Hash{}
}

func (nd *node) tally(step uint64) *stepTally {
	t, ok := nd.tallies[step]
	if !ok {
		t = newStepTally()
		nd.tallies[step] = t
	}
	return t
}

// observeProposal records a proposal if it beats the current best
// priority; the block body is retained so the node can commit it on
// consensus.
func (nd *node) observeProposal(p *proposalPayload) {
	nd.blocks[p.BlockHash] = p.Block
	if nd.bestProposal == nil || nd.bestPriority.Less(p.Credential.Priority) {
		nd.bestProposal = p
		nd.bestPriority = p.Credential.Priority
	}
}

// observeVote records a verified committee vote.
func (nd *node) observeVote(v *votePayload) {
	weight := float64(v.Credential.SubUsers)
	if v.Final {
		nd.finalTally.add(v.Voter, v.Value, weight)
		return
	}
	nd.tally(v.Step).add(v.Voter, v.Value, weight)
}
