package protocol

import (
	"encoding/binary"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/sortition"
)

// tallyEntry is one accumulated vote value in a stepTally.
type tallyEntry struct {
	live bool
	key  ledger.Hash
	w    float64
}

// stepTally accumulates weighted votes for one (round, step). The
// per-value weights live in a small open-addressed array probed on the
// hash's 8-byte prefix: a step sees only a handful of distinct values
// (the empty hash plus the live proposals), so the array replaces the
// map[Hash]float64 the profile flagged at ~5-8% of round CPU — no
// per-lookup hashing of 32-byte keys and no map rebuild churn. Slots are
// scanned in index order for leader selection, which stays deterministic
// because the (weight, hashLess) comparison is a total order.
type stepTally struct {
	slots  []tallyEntry
	n      int // live slot count
	voters map[int]struct{}
}

// tallyMinSlots is the initial value-array size; it covers every
// honest-path step (≤3 distinct values) without growth.
const tallyMinSlots = 8

func newStepTally() *stepTally {
	return &stepTally{
		slots:  make([]tallyEntry, tallyMinSlots),
		voters: make(map[int]struct{}),
	}
}

// slotFor returns the entry for value, claiming a free slot when absent.
func (t *stepTally) slotFor(value ledger.Hash) *tallyEntry {
	if t.n*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := binary.LittleEndian.Uint64(value[:8]) & mask; ; i = (i + 1) & mask {
		e := &t.slots[i]
		if !e.live {
			e.live = true
			e.key = value
			e.w = 0
			t.n++
			return e
		}
		if e.key == value {
			return e
		}
	}
}

// grow doubles the value array; only adversarial equivocation fans ever
// push a step past tallyMinSlots distinct values.
func (t *stepTally) grow() {
	old := t.slots
	t.slots = make([]tallyEntry, 2*len(old))
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		e := &old[i]
		if !e.live {
			continue
		}
		j := binary.LittleEndian.Uint64(e.key[:8]) & mask
		for t.slots[j].live {
			j = (j + 1) & mask
		}
		t.slots[j] = *e
	}
}

// add records a vote of the given weight, once per voter.
func (t *stepTally) add(voter int, value ledger.Hash, weight float64) {
	if _, dup := t.voters[voter]; dup {
		return
	}
	t.voters[voter] = struct{}{}
	t.slotFor(value).w += weight
}

// reset empties the tally for reuse in a later round, keeping the sized
// array and map.
func (t *stepTally) reset() {
	if t.n > 0 {
		for i := range t.slots {
			t.slots[i].live = false
		}
		t.n = 0
	}
	clear(t.voters)
}

// leader returns the value with the largest weight and that weight.
func (t *stepTally) leader() (ledger.Hash, float64) {
	var best ledger.Hash
	bestW := -1.0
	for i := range t.slots {
		e := &t.slots[i]
		if !e.live {
			continue
		}
		if e.w > bestW || (e.w == bestW && hashLess(e.key, best)) {
			best, bestW = e.key, e.w
		}
	}
	if bestW < 0 {
		return ledger.Hash{}, 0
	}
	return best, bestW
}

// weightFor returns the accumulated weight for value.
func (t *stepTally) weightFor(value ledger.Hash) float64 {
	if t.n == 0 {
		return 0
	}
	mask := uint64(len(t.slots) - 1)
	for i := binary.LittleEndian.Uint64(value[:8]) & mask; ; i = (i + 1) & mask {
		e := &t.slots[i]
		if !e.live {
			return 0
		}
		if e.key == value {
			return e.w
		}
	}
}

func hashLess(a, b ledger.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// node is one simulated participant's protocol state for the current
// round. Long-lived state (the ledger replica, behaviour) persists across
// rounds; per-round state is reset by beginRound.
type node struct {
	id       int
	behavior Behavior
	ledger   *ledger.Ledger
	synced   bool

	// Per-round state. beginRound resets values but retains the maps and
	// recycled tallies, so steady-state rounds run allocation-lean.
	round        uint64
	bestPriority sortition.Priority
	bestProposal *proposalPayload
	blocks       map[ledger.Hash]ledger.Block
	tallies      map[uint64]*stepTally
	tallyPool    []*stepTally // cleared tallies awaiting reuse
	finalTally   *stepTally
	value        ledger.Hash // current BinaryBA* value
	emptyH       ledger.Hash // this round's empty-block hash (see emptyHash)
	decided      bool
	decidedHash  ledger.Hash
	decidedStep  uint64
	outcome      Outcome
	outcomeHash  ledger.Hash
}

func (nd *node) beginRound(round uint64) {
	nd.round = round
	nd.bestPriority = sortition.Priority{}
	nd.bestProposal = nil
	if nd.blocks == nil {
		nd.blocks = make(map[ledger.Hash]ledger.Block)
	} else {
		clear(nd.blocks)
	}
	if nd.tallies == nil {
		nd.tallies = make(map[uint64]*stepTally)
	} else {
		for _, t := range nd.tallies {
			t.reset()
			nd.tallyPool = append(nd.tallyPool, t)
		}
		clear(nd.tallies)
	}
	if nd.finalTally == nil {
		nd.finalTally = newStepTally()
	} else {
		nd.finalTally.reset()
	}
	nd.value = ledger.Hash{}
	// The empty-block hash is pure in the node's chain view, which is
	// frozen until this round finalises; deriving it once replaces the
	// two SHA-256 invocations every emptyHash call used to pay. A nil
	// ledger only occurs in unit tests exercising tally mechanics.
	nd.emptyH = ledger.Hash{}
	if nd.ledger != nil {
		nd.emptyH = ledger.EmptyBlock(round, nd.ledger.Tip(), ledger.NextSeed(nd.ledger.Seed(), round)).Hash()
	}
	nd.decided = false
	nd.decidedHash = ledger.Hash{}
	nd.decidedStep = 0
	nd.outcome = OutcomeNone
	nd.outcomeHash = ledger.Hash{}
}

func (nd *node) tally(step uint64) *stepTally {
	t, ok := nd.tallies[step]
	if !ok {
		if n := len(nd.tallyPool); n > 0 {
			t = nd.tallyPool[n-1]
			nd.tallyPool[n-1] = nil
			nd.tallyPool = nd.tallyPool[:n-1]
		} else {
			t = newStepTally()
		}
		nd.tallies[step] = t
	}
	return t
}

// observeProposal records a proposal if it beats the current best
// priority; the block body is retained so the node can commit it on
// consensus.
func (nd *node) observeProposal(p *proposalPayload) {
	nd.blocks[p.BlockHash] = p.Block
	if nd.bestProposal == nil || nd.bestPriority.Less(p.Credential.Priority) {
		nd.bestProposal = p
		nd.bestPriority = p.Credential.Priority
	}
}

// observeVote records a verified committee vote.
func (nd *node) observeVote(v *votePayload) {
	weight := float64(v.Credential.SubUsers)
	if v.Final {
		nd.finalTally.add(v.Voter, v.Value, weight)
		return
	}
	nd.tally(v.Step).add(v.Voter, v.Value, weight)
}
