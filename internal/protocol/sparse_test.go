package protocol

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// sparseParams returns DefaultParams with absolute committee taus, the
// sparse-eligible configuration.
func sparseParams() Params {
	p := DefaultParams()
	p.TauStep = 60
	p.TauFinal = 70
	p.AsyncProb = 0 // keep equivalence comparisons out of degraded rounds
	return p
}

func sparseTestConfig(n int, seed int64, mode SparseMode) Config {
	return Config{
		Params:    sparseParams(),
		Stakes:    testStakes(n),
		Behaviors: behaviorsOf(n, Honest),
		Fanout:    5,
		Seed:      seed,
		Sparse:    mode,
	}
}

// reportInvariants checks the count bookkeeping every report must satisfy
// regardless of path: the three outcome classes partition the population.
func reportInvariants(t *testing.T, rep RoundReport, n int) {
	t.Helper()
	if got := rep.FinalCount + rep.TentativeCount + rep.NoneCount; got != n {
		t.Fatalf("round %d: outcome counts sum to %d, population is %d", rep.Round, got, n)
	}
	if rep.population() != n {
		t.Fatalf("round %d: population() = %d, want %d", rep.Round, rep.population(), n)
	}
	if rep.Desynced < 0 || rep.Desynced > n {
		t.Fatalf("round %d: desynced = %d out of range", rep.Round, rep.Desynced)
	}
}

func TestSparseOnRejectsFractionalTau(t *testing.T) {
	cfg := sparseTestConfig(100, 1, SparseOn)
	cfg.Params.TauStep = 0.35 // fractional: committees are O(N), nothing sparse
	if _, err := NewRunner(cfg); !errors.Is(err, errSparseTau) {
		t.Fatalf("SparseOn with fractional tau: err = %v, want errSparseTau", err)
	}
}

func TestSparseAutoSmallPopulationStaysDense(t *testing.T) {
	r, err := NewRunner(sparseTestConfig(100, 2, SparseAuto))
	if err != nil {
		t.Fatal(err)
	}
	if r.sparse != nil {
		t.Fatal("SparseAuto picked the sparse path below the threshold")
	}
	rep := r.runRound()
	if len(rep.Outcomes) != 100 {
		t.Fatalf("dense round lost per-node outcomes: len = %d", len(rep.Outcomes))
	}
	reportInvariants(t, rep, 100)
}

// TestSparseCommitteeLaw pins the centralized sampler to the dense joint
// law: with S ~ Binomial(trials, p) total seats split over distinct stake
// units, every node's seat count must behave as an independent
// Binomial(int(stake_i), p) — mean seats proportional to stake, never more
// seats than whole stake units.
func TestSparseCommitteeLaw(t *testing.T) {
	const (
		nNodes = 400
		rounds = 3000
		tau    = 50.0
	)
	stakes := testStakes(nNodes)
	total := 0.0
	for _, w := range stakes {
		total += w
	}
	s := newSparseState(rand.New(rand.NewSource(7)))
	s.refreshWeights(stakes, nil)
	p := tau / total

	seatSum := make([]float64, nNodes)
	totalSeats := 0.0
	for i := 0; i < rounds; i++ {
		c := s.sampleCommittee(tau, total)
		for id, seats := range c.seats {
			if seats > int(stakes[id]) {
				t.Fatalf("node %d drew %d seats with only %d stake units", id, seats, int(stakes[id]))
			}
			seatSum[id] += float64(seats)
			totalSeats += float64(seats)
		}
		c.reset()
		s.comPool = append(s.comPool, c)
	}

	// Total seats: mean within 5 standard errors of trials·p.
	meanTotal := totalSeats / rounds
	wantTotal := float64(s.trials) * p
	seTotal := math.Sqrt(float64(s.trials) * p * (1 - p) / rounds)
	if math.Abs(meanTotal-wantTotal) > 5*seTotal {
		t.Fatalf("mean committee size %.3f, want %.3f ± %.3f", meanTotal, wantTotal, 5*seTotal)
	}
	// Per-node seats: spot-check the extreme stakes at 5 standard errors.
	for _, id := range []int{0, 1, nNodes / 2, nNodes - 1} {
		w := float64(int(stakes[id]))
		mean := seatSum[id] / rounds
		want := w * p
		se := math.Sqrt(w * p * (1 - p) / rounds)
		if math.Abs(mean-want) > 5*se {
			t.Fatalf("node %d: mean seats %.4f, want %.4f ± %.4f", id, mean, want, 5*se)
		}
	}
}

// TestSparseDenseEquivalence runs the same honest population through both
// paths and requires the aggregate round statistics to agree: the sparse
// rewrite is a performance restructuring, not a behaviour change.
func TestSparseDenseEquivalence(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: no sparse path to compare against")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		n      = 2000
		rounds = 30
	)
	run := func(mode SparseMode) (finalFrac, decidedFrac float64) {
		r, err := NewRunner(sparseTestConfig(n, 11, mode))
		if err != nil {
			t.Fatal(err)
		}
		if mode == SparseOn && r.sparse == nil {
			t.Fatal("SparseOn did not select the sparse path")
		}
		if mode == SparseOff && r.sparse != nil {
			t.Fatal("SparseOff selected the sparse path")
		}
		for _, rep := range r.RunRounds(rounds) {
			reportInvariants(t, rep, n)
			finalFrac += rep.FinalFrac()
			if rep.Decided {
				decidedFrac++
			}
		}
		return finalFrac / rounds, decidedFrac / rounds
	}
	denseFinal, denseDecided := run(SparseOff)
	sparseFinal, sparseDecided := run(SparseOn)
	if math.Abs(denseFinal-sparseFinal) > 0.10 {
		t.Errorf("final fractions diverge: dense %.3f, sparse %.3f", denseFinal, sparseFinal)
	}
	if math.Abs(denseDecided-sparseDecided) > 0.15 {
		t.Errorf("decided fractions diverge: dense %.3f, sparse %.3f", denseDecided, sparseDecided)
	}
}

func TestSparseAutoLargePopulation(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: sparse path disabled")
	}
	n := SparseAutoThreshold + 1000
	r, err := NewRunner(sparseTestConfig(n, 3, SparseAuto))
	if err != nil {
		t.Fatal(err)
	}
	if r.sparse == nil {
		t.Fatal("SparseAuto kept the dense path above the threshold")
	}
	decided := 0
	for _, rep := range r.RunRounds(5) {
		reportInvariants(t, rep, n)
		if rep.Outcomes != nil {
			t.Fatal("sparse round carried per-node outcomes")
		}
		if rep.Decided {
			decided++
		}
	}
	if decided < 3 {
		t.Fatalf("only %d/5 sparse rounds decided", decided)
	}
	if r.Canonical().Round() < 3 {
		t.Fatalf("canonical chain at round %d after 5 rounds", r.Canonical().Round())
	}
}

// TestSparseDeterminism: identical configurations replay identically, and
// an arena-recycled second run is bit-for-bit the same as a fresh one.
func TestSparseDeterminism(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: sparse path disabled")
	}
	const n, rounds = 5000, 4
	run := func(ar *Arena) []RoundReport {
		cfg := sparseTestConfig(n, 21, SparseOn)
		cfg.Arena = ar
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.RunRounds(rounds)
	}
	base := run(nil)
	ar := NewArena()
	warm := run(ar)     // populates the arena pools
	recycled := run(ar) // replays on recycled state
	for i := range base {
		for name, got := range map[string][]RoundReport{"fresh": warm, "arena-recycled": recycled} {
			g, b := got[i], base[i]
			if g.Decided != b.Decided || g.CanonicalHash != b.CanonicalHash ||
				g.FinalCount != b.FinalCount || g.TentativeCount != b.TentativeCount ||
				g.NoneCount != b.NoneCount || g.Desynced != b.Desynced {
				t.Fatalf("%s run diverges at round %d: %+v vs %+v", name, i, g, b)
			}
		}
	}
}

// TestSparseEmptyRoundKeepsSync pins the empty-block commit path: a
// degraded round that decides the empty block must leave its committers
// synced. The canonical append used to run before the desync
// bookkeeping, so the empty block every node rebuilt from the (already
// advanced) canonical tip hashed differently from the decided one — the
// whole population went desynced at once, and with no synced peers left
// the catch-up path could never recover a single node.
func TestSparseEmptyRoundKeepsSync(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: sparse path disabled")
	}
	const n = 3000
	cfg := sparseTestConfig(n, 17, SparseOn)
	cfg.Params.AsyncProb = 1 // every round degraded: empty decisions dominate
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emptyDecided := 0
	for _, rep := range r.RunRounds(6) {
		reportInvariants(t, rep, n)
		if rep.Decided && rep.CanonicalEmpty {
			emptyDecided++
		}
		if rep.Desynced > n/2 {
			t.Fatalf("round %d: %d/%d nodes desynced after an %v round — empty commits are not reconverging",
				rep.Round, rep.Desynced, n, map[bool]string{true: "empty-decided", false: "undecided"}[rep.Decided && rep.CanonicalEmpty])
		}
	}
	if emptyDecided == 0 {
		t.Fatal("no degraded round decided the empty block; the regression path was never exercised")
	}
}

// TestSparsePinMaterialized pins that PinMaterialized ids are
// materialized every sparse round — the seam per-victim adversary
// assertions rely on — and that the pin set survives rounds, drops
// out-of-range ids, and collapses duplicates.
func TestSparsePinMaterialized(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: sparse path disabled")
	}
	const n = 5000
	pinned := []int{7, 999, 2500, 4999}
	r, err := NewRunner(sparseTestConfig(n, 13, SparseOn))
	if err != nil {
		t.Fatal(err)
	}
	r.PinMaterialized(pinned)
	r.PinMaterialized([]int{2500, -1, n}) // dup and out-of-range: ignored
	if got := len(r.sparse.pinned); got != len(pinned) {
		t.Fatalf("pinned set has %d ids, want %d: %v", got, len(pinned), r.sparse.pinned)
	}
	for i := 0; i < 4; i++ {
		rep := r.runRound()
		reportInvariants(t, rep, n)
		for _, id := range pinned {
			if r.nodes[id] == nil {
				t.Fatalf("pinned node %d not materialized in round %d", id, rep.Round)
			}
		}
	}
}

// TestSparseAdversarySmoke drives the sparse path through mid-run
// behaviour flips (the adaptive-corruption seam) and a selfish cohort,
// checking the bookkeeping invariants hold every round.
func TestSparseAdversarySmoke(t *testing.T) {
	if forcePerNodeDraw {
		t.Skip("protocol_pernode_draw: sparse path disabled")
	}
	const n = 5000
	cfg := sparseTestConfig(n, 31, SparseOn)
	for i := 0; i < n/10; i++ {
		cfg.Behaviors[i*10] = Selfish
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flip := 0
	r.SetHooks(Hooks{
		RoundStart: func(round uint64) {
			// Corrupt a rolling window of nodes and restore the previous one.
			r.SetBehavior(flip, Malicious)
			if flip > 0 {
				r.SetBehavior(flip-1, Honest)
			}
			flip++
		},
	})
	for _, rep := range r.RunRounds(6) {
		reportInvariants(t, rep, n)
	}
	if got := r.Behavior(flip - 1); got != Malicious {
		t.Fatalf("behaviour table lost the last flip: %v", got)
	}
}
