package protocol

import (
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// The coverage marker is API: reward-layer experiments key off its
// spelling before pricing TaskCounts, so both values and both strings
// are pinned here.
func TestCountersCoveragePinned(t *testing.T) {
	if CoverageFull.String() != "full" {
		t.Fatalf("CoverageFull spells %q, want \"full\"", CoverageFull.String())
	}
	if CoverageMaterializedOnly.String() != "materialized-only" {
		t.Fatalf("CoverageMaterializedOnly spells %q, want \"materialized-only\"", CoverageMaterializedOnly.String())
	}

	dense, err := NewRunner(sparseTestConfig(100, 1, SparseAuto))
	if err != nil {
		t.Fatal(err)
	}
	if got := dense.CountersCoverage(); got != CoverageFull {
		t.Fatalf("dense runner coverage = %v, want full", got)
	}

	sparse, err := NewRunner(sparseTestConfig(100, 1, SparseOn))
	if err != nil {
		t.Fatal(err)
	}
	want := CoverageMaterializedOnly
	if forcePerNodeDraw {
		want = CoverageFull // protocol_pernode_draw oracle build runs dense
	}
	if got := sparse.CountersCoverage(); got != want {
		t.Fatalf("SparseOn runner coverage = %v, want %v", got, want)
	}
}

// The coverage marker must also surface as the
// sim_counters_coverage_materialized_only gauge at construction.
func TestCoverageGaugeTracksRunner(t *testing.T) {
	if !obs.Enabled {
		t.Skip("obs_off build")
	}
	obs.Disable()
	obs.Enable()
	defer obs.Disable()

	if _, err := NewRunner(sparseTestConfig(100, 1, SparseAuto)); err != nil {
		t.Fatal(err)
	}
	gauge := obs.DefaultSim().CoverageMaterializedOnly
	if got := gauge.Value(); got != 0 {
		t.Fatalf("gauge after dense construction = %d, want 0", got)
	}
	if _, err := NewRunner(sparseTestConfig(100, 1, SparseOn)); err != nil {
		t.Fatal(err)
	}
	want := int64(1)
	if forcePerNodeDraw {
		want = 0
	}
	if got := gauge.Value(); got != want {
		t.Fatalf("gauge after SparseOn construction = %d, want %d", got, want)
	}
}

// Telemetry's overhead contract: with the registry enabled, a round's
// metric flush is a fixed handful of atomic adds and must fit inside the
// same allocation budget as an uninstrumented round (0 extra allocs).
func TestRoundAllocBudgetWithMetrics(t *testing.T) {
	if !obs.Enabled {
		t.Skip("obs_off build")
	}
	obs.Disable()
	obs.Enable()
	defer obs.Disable()

	stakes := make([]float64, 100)
	behaviors := make([]Behavior, 100)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = Honest
	}
	runner, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if runner.metrics == nil {
		t.Fatal("enabled registry did not attach metrics to the runner")
	}
	runner.RunRounds(3) // warm pools, caches and map sizes
	allocs := testing.AllocsPerRun(5, func() {
		runner.RunRounds(1)
	})
	if allocs > roundAllocBudget {
		t.Errorf("one instrumented round allocates %.0f times, budget %d — telemetry leaked onto the hot path", allocs, roundAllocBudget)
	}
}
