package protocol

import (
	"math"
	"testing"
	"time"
)

func testStakes(n int) []float64 {
	stakes := make([]float64, n)
	for i := range stakes {
		stakes[i] = float64(1 + (i*7)%50)
	}
	return stakes
}

func behaviorsOf(n int, b Behavior) []Behavior {
	out := make([]Behavior, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func newTestRunner(t *testing.T, n int, behaviors []Behavior, seed int64) *Runner {
	t.Helper()
	r, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    testStakes(n),
		Behaviors: behaviors,
		Fanout:    5,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.TauProposer = 0 },
		func(p *Params) { p.TauStep = 0 },
		func(p *Params) { p.TauFinal = -1 },
		func(p *Params) { p.ThresholdStep = 0.5 },
		func(p *Params) { p.ThresholdStep = 1 },
		func(p *Params) { p.ThresholdFinal = 0.4 },
		func(p *Params) { p.ProposalTimeout = 0 },
		func(p *Params) { p.StepTimeout = -time.Second },
		func(p *Params) { p.MaxBinarySteps = 0 },
	}
	for i, m := range mutations {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{Params: DefaultParams(), Stakes: []float64{1}, Behaviors: []Behavior{Honest}}); err == nil {
		t.Error("single node accepted")
	}
	if _, err := NewRunner(Config{Params: DefaultParams(), Stakes: []float64{1, 2}, Behaviors: []Behavior{Honest}}); err == nil {
		t.Error("behavior length mismatch accepted")
	}
	bad := DefaultParams()
	bad.TauStep = 0
	if _, err := NewRunner(Config{Params: bad, Stakes: []float64{1, 2}, Behaviors: behaviorsOf(2, Honest)}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAllHonestReachesConsensus(t *testing.T) {
	r := newTestRunner(t, 60, behaviorsOf(60, Honest), 11)
	reports := r.RunRounds(8)
	decided := 0
	finalSum := 0.0
	for _, rep := range reports {
		if rep.Decided {
			decided++
		}
		finalSum += rep.FinalFrac()
	}
	if decided < 6 {
		t.Errorf("only %d/8 rounds decided in an all-honest network", decided)
	}
	if mean := finalSum / 8; mean < 0.7 {
		t.Errorf("mean final fraction = %v, want >= 0.7", mean)
	}
	if r.Canonical().Len() != decided {
		t.Errorf("canonical chain length %d, want %d decided rounds", r.Canonical().Len(), decided)
	}
}

func TestOutcomeFractionsSumToOne(t *testing.T) {
	r := newTestRunner(t, 50, behaviorsOf(50, Honest), 3)
	for _, rep := range r.RunRounds(4) {
		sum := rep.FinalFrac() + rep.TentativeFrac() + rep.NoneFrac()
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("round %d fractions sum to %v", rep.Round, sum)
		}
		if rep.FinalCount+rep.TentativeCount+rep.NoneCount != 50 {
			t.Errorf("round %d counts do not cover all nodes", rep.Round)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []RoundReport {
		r := newTestRunner(t, 40, behaviorsOf(40, Honest), 99)
		return r.RunRounds(4)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].FinalCount != b[i].FinalCount ||
			a[i].TentativeCount != b[i].TentativeCount ||
			a[i].CanonicalHash != b[i].CanonicalHash {
			t.Fatalf("round %d differs across identical seeds", i)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	r1 := newTestRunner(t, 40, behaviorsOf(40, Honest), 1)
	r2 := newTestRunner(t, 40, behaviorsOf(40, Honest), 2)
	a := r1.RunRounds(3)
	b := r2.RunRounds(3)
	same := true
	for i := range a {
		if a[i].CanonicalHash != b[i].CanonicalHash {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical canonical chains")
	}
}

func TestSelfishNodesExtractNothing(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	selfish := []int{3, 17, 42}
	for _, i := range selfish {
		behaviors[i] = Selfish
	}
	r := newTestRunner(t, 60, behaviors, 5)
	for _, rep := range r.RunRounds(5) {
		for _, i := range selfish {
			if rep.Outcomes[i] != OutcomeNone {
				t.Errorf("round %d: selfish node %d extracted %v", rep.Round, i, rep.Outcomes[i])
			}
		}
	}
}

func TestFaultyNodesOfflineAndHarmless(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	behaviors[10] = Faulty
	behaviors[20] = Faulty
	r := newTestRunner(t, 60, behaviors, 5)
	if r.Network().Online(10) || r.Network().Online(20) {
		t.Fatal("faulty nodes should be offline")
	}
	reports := r.RunRounds(5)
	decided := 0
	for _, rep := range reports {
		if rep.Outcomes[10] != OutcomeNone {
			t.Error("faulty node extracted a block")
		}
		if rep.Decided {
			decided++
		}
	}
	if decided < 3 {
		t.Errorf("two faulty nodes broke consensus: %d/5 decided", decided)
	}
}

func TestMaliciousMinorityTolerated(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	for i := 0; i < 6; i++ { // 10% malicious
		behaviors[i*10] = Malicious
	}
	r := newTestRunner(t, 60, behaviors, 8)
	decided := 0
	for _, rep := range r.RunRounds(5) {
		if rep.Decided {
			decided++
		}
	}
	if decided < 3 {
		t.Errorf("10%% malicious broke consensus: %d/5 decided", decided)
	}
}

func TestHeavyDefectionPreventsFinalConsensus(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	for i := 0; i < 24; i++ { // 40% selfish
		behaviors[i] = Selfish
	}
	r := newTestRunner(t, 60, behaviors, 6)
	for _, rep := range r.RunRounds(5) {
		if rep.FinalFrac() > 0.2 {
			t.Errorf("round %d: final fraction %v despite 40%% defection", rep.Round, rep.FinalFrac())
		}
	}
}

func TestRewardHookReceivesRoles(t *testing.T) {
	var calls int
	var lastRoles RoundRoles
	r, err := NewRunner(Config{
		Params:    DefaultParams(),
		Stakes:    testStakes(50),
		Behaviors: behaviorsOf(50, Honest),
		Seed:      13,
		Reward: func(roles RoundRoles, report RoundReport) {
			calls++
			lastRoles = roles
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(3)
	if calls != 3 {
		t.Fatalf("reward hook called %d times, want 3", calls)
	}
	seen := make(map[int]int)
	for _, rs := range lastRoles.Leaders {
		seen[rs.ID]++
		if rs.Weight <= 0 || rs.Stake <= 0 {
			t.Errorf("leader %d has weight %v stake %v", rs.ID, rs.Weight, rs.Stake)
		}
	}
	for _, rs := range lastRoles.Committee {
		seen[rs.ID]++
	}
	for _, rs := range lastRoles.Others {
		seen[rs.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("node %d appears in %d role groups", id, n)
		}
	}
	total := len(lastRoles.Leaders) + len(lastRoles.Committee) + len(lastRoles.Others)
	if total != 50 {
		t.Errorf("roles cover %d nodes, want 50", total)
	}
}

func TestTransactionsCommitAndApply(t *testing.T) {
	r := newTestRunner(t, 50, behaviorsOf(50, Honest), 21)
	from, to := 1, 2
	beforeFrom := r.Canonical().Stake(from)
	beforeTo := r.Canonical().Stake(to)
	r.SubmitTransaction(from, to, 1)
	reports := r.RunRounds(4)
	committed := false
	for _, rep := range reports {
		if rep.Decided && !rep.CanonicalEmpty {
			committed = true
		}
	}
	if !committed {
		t.Skip("no non-empty block decided in 4 rounds; seed-dependent")
	}
	if got := r.Canonical().Stake(from); math.Abs(got-(beforeFrom-1)) > 1e-9 {
		t.Errorf("sender stake %v, want %v", got, beforeFrom-1)
	}
	if got := r.Canonical().Stake(to); math.Abs(got-(beforeTo+1)) > 1e-9 {
		t.Errorf("receiver stake %v, want %v", got, beforeTo+1)
	}
}

func TestCanonicalChainConsistency(t *testing.T) {
	r := newTestRunner(t, 50, behaviorsOf(50, Honest), 31)
	reports := r.RunRounds(5)
	lastRound := uint64(0)
	for _, rep := range reports {
		if rep.Decided {
			if rep.Round <= lastRound {
				t.Errorf("decided round %d did not advance past %d", rep.Round, lastRound)
			}
			lastRound = rep.Round
		}
	}
	// Canonical round must be one past the number of committed blocks.
	if r.Canonical().Round() != uint64(r.Canonical().Len())+1 {
		t.Error("canonical round/len mismatch")
	}
}

func TestBehaviorAndOutcomeStrings(t *testing.T) {
	if Honest.String() != "honest" || Selfish.String() != "selfish" ||
		Malicious.String() != "malicious" || Faulty.String() != "faulty" ||
		Behavior(9).String() != "unknown" {
		t.Error("Behavior.String broken")
	}
	if OutcomeFinal.String() != "final" || OutcomeTentative.String() != "tentative" ||
		OutcomeNone.String() != "none" {
		t.Error("Outcome.String broken")
	}
	if !Honest.Cooperates() || Selfish.Cooperates() {
		t.Error("Cooperates broken")
	}
}

func TestDesyncedCountReported(t *testing.T) {
	behaviors := behaviorsOf(60, Honest)
	for i := 0; i < 12; i++ {
		behaviors[i] = Selfish
	}
	r := newTestRunner(t, 60, behaviors, 17)
	for _, rep := range r.RunRounds(5) {
		if rep.Desynced < 0 || rep.Desynced > 60 {
			t.Errorf("desynced = %d out of range", rep.Desynced)
		}
	}
}

func TestCanonicalChainIntegrity(t *testing.T) {
	behaviors := behaviorsOf(50, Honest)
	behaviors[0] = Malicious
	behaviors[1] = Selfish
	r := newTestRunner(t, 50, behaviors, 61)
	r.RunRounds(6)
	if err := r.Canonical().VerifyChain(); err != nil {
		t.Errorf("canonical chain integrity violated: %v", err)
	}
	for id, nd := range r.nodes {
		if err := nd.ledger.VerifyChain(); err != nil {
			t.Errorf("node %d chain integrity violated: %v", id, err)
		}
	}
}
