package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("t_hist", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if h.Sum() != 505.5 {
		t.Fatalf("hist sum = %v, want 505.5", h.Sum())
	}
	if h.buckets[0].Load() != 1 || h.buckets[1].Load() != 1 || h.buckets[2].Load() != 1 {
		t.Fatal("histogram observations landed in the wrong buckets")
	}
}

func TestRegistryDedupesAndPanicsOnKindClash(t *testing.T) {
	r := NewRegistry()
	if r.Counter("t_total", "a") != r.Counter("t_total", "b") {
		t.Fatal("same (name, labels) did not dedupe to one counter")
	}
	if r.CounterVec("t_vec", "k", "a", "") == r.CounterVec("t_vec", "k", "b", "") {
		t.Fatal("different label values share one counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("t_total", "now a gauge")
}

// The whole layer must be callable with telemetry off: a nil registry
// hands out nil metrics and every method on them is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("x", "", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded an observation")
	}
	if r.DeterministicTotals() != nil {
		t.Fatal("nil registry produced totals")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var sm *SimMetrics
	if NewSimMetrics(nil) != nil || NewPoolMetrics(nil) != nil || sm != nil {
		t.Fatal("nil registry produced a metrics bundle")
	}
	var pm *PoolMetrics
	pm.WorkerBusy(3).Add(1)
	pm.AuditEvents("clean").Inc()
	var tr *Trace
	if tr.Panel() != 0 || tr.Len() != 0 {
		t.Fatal("nil trace has a panel or events")
	}
	tr.Span("cat", "name", 0, 0, 1)
	tr.Instant("cat", "name", 0, 0)
}

// Two registries that observed the same simulated work must snapshot
// identical deterministic totals, with wall metrics and gauges excluded.
func TestDeterministicTotals(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("sim_x_total", "").Add(5)
		r.Histogram("sim_h", "", []float64{1, 2}).Observe(1.5)
		r.CounterVec("sim_v_total", "kind", "a", "").Add(2)
		return r
	}
	a, b := build(), build()
	// Wall-class noise must not affect the snapshot.
	a.WallCounter("wall_ns_total", "").Add(12345)
	a.Gauge("depth", "").Set(99)
	ta, tb := a.DeterministicTotals(), b.DeterministicTotals()
	if fmt.Sprint(ta) != fmt.Sprint(tb) {
		t.Fatalf("totals differ:\n a=%v\n b=%v", ta, tb)
	}
	if _, ok := ta["wall_ns_total"]; ok {
		t.Fatal("wall counter leaked into deterministic totals")
	}
	if _, ok := ta["depth"]; ok {
		t.Fatal("gauge leaked into deterministic totals")
	}
	if ta["sim_x_total"] != 5 || ta[`sim_v_total{kind="a"}`] != 2 {
		t.Fatalf("unexpected totals %v", ta)
	}
	if ta["sim_h!count"] != 1 || ta["sim_h!b1"] != 1 {
		t.Fatalf("histogram flattened wrong: %v", ta)
	}
}

// WritePrometheus output must parse cleanly through our own linter and
// declare every family exactly once.
func TestPrometheusWriteLintRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_rounds_total", "rounds").Add(10)
	r.Gauge("pool_queue_depth", "depth").Set(-3)
	r.CounterVec("exp_audit_events_total", "kind", `we"ird\value`, "audits").Inc()
	h := r.Histogram("sim_committee_size", "sizes", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	families, err := LintPrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("lint rejected our own output: %v\n%s", err, text)
	}
	want := map[string]bool{
		"sim_rounds_total": true, "pool_queue_depth": true,
		"exp_audit_events_total": true, "sim_committee_size": true,
	}
	for _, f := range families {
		delete(want, f)
	}
	if len(want) != 0 {
		t.Fatalf("families missing from lint result: %v\n%s", want, text)
	}
	for _, needle := range []string{
		"# TYPE sim_rounds_total counter",
		"sim_rounds_total 10",
		"pool_queue_depth -3",
		`sim_committee_size_bucket{le="+Inf"} 2`,
		"sim_committee_size_count 2",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("exposition missing %q:\n%s", needle, text)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []string{
		"9bad_name 1\n",
		"# TYPE x counter\nx notanumber\n",
		"x{le=unquoted} 1\n",
		"# TYPE x counter\n# TYPE x gauge\nx 1\n",
	}
	for _, in := range cases {
		if _, err := LintPrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("lint accepted malformed input %q", in)
		}
	}
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace(4)
	if tr.Panel() != 4 {
		t.Fatalf("panel = %d, want 4", tr.Panel())
	}
	tr.Span("round", "round 1", 0, 1000, 2000)
	tr.Instant("gossip", "vote", 2, 1500)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "X" || doc.TraceEvents[0]["dur"] != 2.0 {
		t.Fatalf("span event malformed: %v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1]["ph"] != "i" {
		t.Fatalf("instant event malformed: %v", doc.TraceEvents[1])
	}
}

func TestEnableDisableDefault(t *testing.T) {
	Disable()
	if Default() != nil || DefaultSim() != nil || DefaultPool() != nil {
		t.Fatal("disabled telemetry still hands out a registry or bundles")
	}
	r := Enable()
	if !Enabled {
		if r != nil {
			t.Fatal("obs_off build enabled a registry")
		}
		return
	}
	if r == nil || Default() != r || Enable() != r {
		t.Fatal("Enable is not idempotent on one registry")
	}
	m := DefaultSim()
	if m == nil || DefaultSim() != m {
		t.Fatal("DefaultSim is not cached per registry")
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable left the registry installed")
	}
	// A fresh Enable must hand out fresh bundles, not stale caches.
	r2 := Enable()
	defer Disable()
	if r2 == r {
		t.Fatal("Enable after Disable reused the old registry")
	}
	if DefaultSim() == m {
		t.Fatal("DefaultSim cache survived an Enable/Disable cycle")
	}
}

func TestServeEndpoints(t *testing.T) {
	if !Enabled {
		t.Skip("obs_off build")
	}
	Disable()
	reg := Enable()
	defer Disable()
	reg.Counter("sim_rounds_total", "rounds").Add(42)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "sim_rounds_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if _, err := LintPrometheus(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}
	vars := get("/debug/vars")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := doc["obs"]; !ok {
		t.Fatal("/debug/vars missing the obs export")
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}

func TestHistogramObserveBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2})
	h.Observe(1) // inclusive upper bound: le="1"
	h.Observe(math.Inf(1))
	if h.buckets[0].Load() != 1 {
		t.Fatal("upper bound not inclusive")
	}
	if h.buckets[2].Load() != 1 {
		t.Fatal("+Inf observation missed the overflow bucket")
	}
}
