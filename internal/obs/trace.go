package obs

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// Trace records Chrome-trace-format events ("trace event format", the
// JSON array consumed by chrome://tracing and https://ui.perfetto.dev)
// for the round/step/gossip phases of one simulation run.
//
// Timestamps are simulated time, not wall time: a span's ts/dur come
// straight from the engine's virtual clock, so the recorded trace is a
// deterministic function of the run — byte-identical across repeats and
// worker counts — and recording draws no RNG and reads no wall clock.
// Gossip deliveries are recorded only for nodes below Panel, bounding
// event volume on large populations, and the recorder stops appending
// at its event cap.
//
// A Trace is single-writer: exactly one runner appends to it (the
// drivers attach it to run 0 only). All methods no-op on a nil
// receiver, so un-traced runs pay one branch per instrumentation point.
type Trace struct {
	panel  int
	max    int
	events []traceEvent
}

// traceEvent is one entry of the traceEvents array. Ph is "X" for
// complete spans and "i" for instants; Ts/Dur are microseconds, with
// TsNS carrying sub-microsecond remainder nanoseconds as Perfetto
// ignores unknown fields.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant scope
}

// DefaultTracePanel is the default bounded node panel: gossip events are
// recorded for nodes 0..DefaultTracePanel-1 only.
const DefaultTracePanel = 8

// defaultTraceCap bounds recorded events (~44 MB of JSON worst case).
const defaultTraceCap = 1 << 19

// NewTrace returns a recorder with the given node panel size; panel <= 0
// selects DefaultTracePanel.
func NewTrace(panel int) *Trace {
	if panel <= 0 {
		panel = DefaultTracePanel
	}
	return &Trace{panel: panel, max: defaultTraceCap}
}

// Panel returns the traced node panel size; zero on a nil receiver
// (which no node id is below, so panel checks need no extra nil guard).
func (t *Trace) Panel() int {
	if t == nil {
		return 0
	}
	return t.panel
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Span records a complete phase [start, start+dur) of virtual time on
// track tid.
func (t *Trace) Span(cat, name string, tid int, start, dur time.Duration) {
	if t == nil || len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  float64(start) / 1e3,
		Dur: float64(dur) / 1e3,
		Tid: tid,
	})
}

// Instant records a zero-duration event (e.g. one gossip delivery) at
// virtual time at on track tid.
func (t *Trace) Instant(cat, name string, tid int, at time.Duration) {
	if t == nil || len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts:  float64(at) / 1e3,
		Tid: tid, S: "t",
	})
}

// WriteJSON renders the trace as a Chrome trace JSON object.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := []traceEvent{}
	if t != nil {
		events = t.events
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace JSON to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
