package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP/TYPE pair
// per family, histogram buckets cumulative with an explicit +Inf bound.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.snapshot() {
		if m.name != lastFamily {
			lastFamily = m.name
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeString(m.kind))
		}
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s %d\n", sampleName(m.name, m.labels), m.ctr.Value())
		case KindGauge:
			fmt.Fprintf(bw, "%s %d\n", sampleName(m.name, m.labels), m.gauge.Value())
		case KindHistogram:
			h := m.hist
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, h.Count())
		}
	}
	return bw.Flush()
}

func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func typeString(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// LintPrometheus parses a Prometheus text-format exposition and returns
// the metric family names it declares. It enforces the structural rules
// a scraper relies on: every sample belongs to a TYPE-declared family
// (histogram samples via their _bucket/_sum/_count suffixes), sample
// lines parse as name{labels} value, label lists are well-formed, and
// values are valid floats. The first violation is returned as an error
// with its line number. It is the checker behind `benchgen promlint`
// and the CI metrics-smoke job.
func LintPrometheus(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	var families []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a name and a type", lineNo)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
				families = append(families, name)
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		value := strings.TrimSpace(rest)
		// Timestamps (a trailing integer field) are permitted by the
		// format; the registry never writes them but scrapes of other
		// exporters may carry them.
		if i := strings.IndexByte(value, ' '); i >= 0 {
			ts := strings.TrimSpace(value[i+1:])
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
			value = value[:i]
		}
		if _, err := parseSampleValue(value); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		family := sampleFamily(name, types)
		if _, ok := types[family]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// splitSample splits "name{labels} value" into name and the remainder
// after the optional label list, validating label syntax.
func splitSample(line string) (name, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace < 0 || (space >= 0 && space < brace) {
		if space < 0 {
			return "", "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:space], line[space+1:], nil
	}
	name = line[:brace]
	end := strings.IndexByte(line[brace:], '}')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label list in %q", line)
	}
	labels := line[brace+1 : brace+end]
	if err := lintLabels(labels); err != nil {
		return "", "", err
	}
	rest = strings.TrimPrefix(line[brace+end+1:], " ")
	if rest == "" {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, rest, nil
}

// lintLabels validates a comma-separated key="value" list.
func lintLabels(s string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label list %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) < 2 || s[0] != '"' {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		s = s[1:]
		// Scan the quoted value honouring backslash escapes.
		i := 0
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("label %q value is unterminated", key)
		}
		s = s[i+1:]
		if s != "" {
			if s[0] != ',' {
				return fmt.Errorf("labels not comma-separated at %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

func parseSampleValue(v string) (float64, error) {
	switch v {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(v, 64)
}

// sampleFamily maps a sample name to its declaring family, stripping
// histogram/summary suffixes when the base family is histogram-typed.
func sampleFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
