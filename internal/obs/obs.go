// Package obs is the simulator's telemetry layer: a metrics registry of
// atomic counters, gauges and fixed-bucket histograms, a Prometheus
// text-format / expvar exporter with an opt-in HTTP endpoint, and a
// Chrome-trace-format round recorder.
//
// # Determinism contract
//
// Telemetry must never perturb a simulation: no instrumentation point
// reads an RNG, schedules an event, or mutates protocol state, so every
// output — golden figures, -full grid CSVs, checkpoint/shard/resume
// files — is byte-identical with telemetry enabled, disabled, or scraped
// mid-run. Metrics are split into two classes at registration:
//
//   - deterministic metrics (Counter, Histogram) measure simulated work
//     (rounds, events, committee sizes) and total to identical values at
//     any worker count — DeterministicTotals snapshots exactly this class;
//   - wall metrics (WallCounter, WallCounterVec, and every Gauge)
//     measure real time, instantaneous state, or execution-shaped counts
//     that depend on how work was scheduled rather than on what was
//     simulated (busy nanoseconds, queue depth, cache hit/miss splits)
//     and are excluded from the determinism snapshot.
//
// # Overhead contract
//
// The registry is nil-safe end to end: a nil *Registry returns nil
// metrics, and every method on a nil metric is a no-op, so a disabled
// build pays one predictable branch per flush point and zero
// allocations. Hot loops (the event scheduler, the sortition cache)
// keep plain uint64 fields and flush deltas into the shared atomic
// registry once per round. Building with -tags obs_off pins the layer
// off: Enable becomes a no-op and Default always returns nil.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for the exporters.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// metric is one registry entry: a metric family name, optional fixed
// label pair ('key="value"'), and exactly one live metric value.
type metric struct {
	name   string // family name, e.g. sim_rounds_total
	labels string // rendered label list without braces, may be empty
	help   string
	kind   Kind
	wall   bool // wall-clock / instantaneous: excluded from DeterministicTotals
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry or through Enable. All methods are safe for
// concurrent use, and a nil *Registry is valid everywhere: every
// constructor returns nil, making the whole layer a no-op.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register returns the existing metric for (name, labels) or creates
// one. Re-registration with a different kind panics: the catalog is
// static and a kind clash is a programming error.
func (r *Registry) register(name, labels, help string, kind Kind, wall bool) *metric {
	key := name + "\x00" + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return m
	}
	m := &metric{name: name, labels: labels, help: help, kind: kind, wall: wall}
	switch kind {
	case KindCounter:
		m.ctr = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter registers (or looks up) a deterministic counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, "", help, KindCounter, false).ctr
}

// WallCounter registers a counter of wall-clock quantities (elapsed
// nanoseconds, scrape counts); it is excluded from DeterministicTotals.
func (r *Registry) WallCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, "", help, KindCounter, true).ctr
}

// WallCounterVec registers a wall counter carrying one fixed label pair,
// e.g. WallCounterVec("pool_worker_busy_ns_total", "worker", "3", ...).
func (r *Registry) WallCounterVec(name, label, value, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, label+`="`+escapeLabel(value)+`"`, help, KindCounter, true).ctr
}

// CounterVec registers a deterministic counter carrying one fixed label
// pair, e.g. CounterVec("exp_audit_events_total", "kind", "safety", ...).
func (r *Registry) CounterVec(name, label, value, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, label+`="`+escapeLabel(value)+`"`, help, KindCounter, false).ctr
}

// Gauge registers an instantaneous gauge. Gauges are always excluded
// from DeterministicTotals: their value depends on when they are read.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, "", help, KindGauge, true).gauge
}

// Histogram registers a deterministic fixed-bucket histogram. bounds are
// the inclusive upper bounds in ascending order; a +Inf bucket is
// implicit. The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, "", help, KindHistogram, false)
	m.hist.init(bounds)
	return m.hist
}

// snapshot returns the registered metrics sorted by (name, labels) for
// the exporters; the slice is private to the caller.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// DeterministicTotals snapshots every deterministic metric into a flat
// map: counters by name, histograms as name+"!count", name+"!sumbits"
// and one entry per bucket. Two registries that observed the same
// simulated work — at any worker count, scraped or not — compare equal.
func (r *Registry) DeterministicTotals() map[string]uint64 {
	if r == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, m := range r.snapshot() {
		if m.wall {
			continue
		}
		key := m.name
		if m.labels != "" {
			key += "{" + m.labels + "}"
		}
		switch m.kind {
		case KindCounter:
			out[key] = m.ctr.Value()
		case KindHistogram:
			h := m.hist
			out[key+"!count"] = h.count.Load()
			out[key+"!sumbits"] = h.sumBits.Load()
			for i := range h.buckets {
				out[key+"!b"+itoa(i)] = h.buckets[i].Load()
			}
		}
	}
	return out
}

// --- Metric types --------------------------------------------------------

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. All methods are no-ops on a
// nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a total count and sum. All methods are no-ops on a nil
// receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func (h *Histogram) init(bounds []float64) {
	if h == nil || h.bounds != nil {
		return
	}
	h.bounds = append([]float64(nil), bounds...)
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// --- Global default ------------------------------------------------------

var global atomic.Pointer[Registry]

// Enable installs (creating on first call) the process-global registry
// and returns it. Until Enable is called, Default returns nil and every
// instrumentation point no-ops. Under -tags obs_off Enable itself
// no-ops and returns nil.
func Enable() *Registry {
	if !Enabled {
		return nil
	}
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable removes the global registry; subsequent Default calls return
// nil and a later Enable starts from a fresh registry. Tests use the
// pair to isolate determinism snapshots.
func Disable() { global.Store(nil) }

// Default returns the global registry, or nil when telemetry is off.
func Default() *Registry { return global.Load() }

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// itoa is a minimal non-negative integer formatter (avoids strconv in
// the snapshot hot-ish path; also keeps DeterministicTotals allocation
// behaviour obvious).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
