//go:build !obs_off

package obs

// Enabled reports whether the telemetry layer can be switched on at
// all. The obs_off build tag pins it false, compiling Enable down to a
// constant-nil return so even the Enable call sites are dead code.
const Enabled = true
