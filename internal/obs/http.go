package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the opt-in introspection endpoint: /metrics (Prometheus
// text format), /debug/vars (expvar JSON, including an "obs" map of
// every registered metric), and the standard net/http/pprof handlers
// under /debug/pprof/. It serves scrapes from its own goroutines and
// only ever reads registry atomics, so scraping a live run cannot
// perturb it.
type Server struct {
	srv *http.Server
	lis net.Listener
}

var publishOnce sync.Once

// NewMux builds the introspection route set on a fresh ServeMux:
// /metrics, /debug/vars and the /debug/pprof handlers, all reading reg.
// Serve wraps it in its own server; services with their own HTTP
// surface (the simulation daemon) mount these routes next to their API
// on one listener instead of running a second port.
func NewMux(reg *Registry) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return exportVars(Default())
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an introspection server on addr (e.g. ":9090" or
// "127.0.0.1:0") exporting reg. It returns once the listener is bound;
// requests are served in the background until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := NewMux(reg)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis: lis,
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// exportVars renders reg as the expvar "obs" map: counters and gauges
// by sample name, histograms as _count/_sum pairs.
func exportVars(reg *Registry) map[string]any {
	out := map[string]any{}
	if reg == nil {
		return out
	}
	for _, m := range reg.snapshot() {
		key := sampleName(m.name, m.labels)
		switch m.kind {
		case KindCounter:
			out[key] = m.ctr.Value()
		case KindGauge:
			out[key] = m.gauge.Value()
		case KindHistogram:
			out[key+"_count"] = m.hist.Count()
			out[key+"_sum"] = m.hist.Sum()
		}
	}
	return out
}
