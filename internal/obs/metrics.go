package obs

import "sync/atomic"

// SimMetrics is the typed bundle of simulation-side metrics: the
// protocol runner flushes per-round deltas into it, so hot loops (the
// event scheduler, the sortition cache) never touch an atomic. A nil
// *SimMetrics is the disabled state; the runner guards its flush with
// one nil check per round.
type SimMetrics struct {
	reg *Registry

	Rounds         *Counter
	RoundsDecided  *Counter
	RoundsDegraded *Counter
	RoundsSparse   *Counter
	RoundsDense    *Counter
	Steps          *Counter
	Proposers      *Counter
	DesyncedNodes  *Counter
	Resyncs        *Counter

	EventsScheduled *Counter
	EventsExecuted  *Counter
	EventsNear      *Counter
	EventsFar       *Counter
	EventsOverflow  *Counter
	EventsMigrated  *Counter

	SortitionHits   *Counter
	SortitionMisses *Counter

	WeightRefreshes   *Counter
	WeightRefreshNS   *Counter
	WeightIndexUpdate *Counter

	CommitteeSize *Histogram

	// CoverageMaterializedOnly is 1 while any live runner meters tasks
	// for materialized nodes only (the sparse path), 0 otherwise. See
	// protocol.CountersCoverage.
	CoverageMaterializedOnly *Gauge

	RoundWallNS *Counter
}

// NewSimMetrics registers the simulation metric catalog on reg. A nil
// reg returns nil.
func NewSimMetrics(reg *Registry) *SimMetrics {
	if reg == nil {
		return nil
	}
	return &SimMetrics{
		reg:            reg,
		Rounds:         reg.Counter("sim_rounds_total", "BA* rounds completed"),
		RoundsDecided:  reg.Counter("sim_rounds_decided_total", "rounds where some node reached agreement"),
		RoundsDegraded: reg.Counter("sim_rounds_degraded_total", "weak-synchrony (degraded) rounds"),
		RoundsSparse:   reg.Counter("sim_rounds_sparse_total", "rounds taking the O(committee) sparse path"),
		RoundsDense:    reg.Counter("sim_rounds_dense_total", "rounds taking the dense per-node sweep"),
		Steps:          reg.Counter("sim_steps_total", "protocol step phases executed (propose, reduction, binary)"),
		Proposers:      reg.Counter("sim_proposers_total", "proposer lottery winners across rounds"),
		DesyncedNodes:  reg.Counter("sim_desynced_node_rounds_total", "node-rounds left behind the canonical chain after catch-up"),
		Resyncs:        reg.Counter("sim_resyncs_total", "nodes resynchronised to the canonical chain during catch-up"),

		EventsScheduled: reg.Counter("sim_events_scheduled_total", "events pushed onto the scheduler"),
		EventsExecuted:  reg.Counter("sim_events_executed_total", "events popped and executed"),
		EventsNear:      reg.Counter("sim_events_near_total", "scheduler pushes routed to the near ring"),
		EventsFar:       reg.Counter("sim_events_far_total", "scheduler pushes routed to the far ring"),
		EventsOverflow:  reg.Counter("sim_events_overflow_total", "scheduler pushes routed to the overflow heap"),
		EventsMigrated:  reg.Counter("sim_events_migrated_total", "events migrated far ring -> near ring"),

		// Wall-class: the hit/miss split depends on how runs map onto
		// worker-owned arenas (one worker's warm cache serves every run;
		// N workers each start cold), so it is execution-shaped even
		// though hits+misses is invariant.
		SortitionHits:   reg.WallCounter("sim_sortition_cache_hits_total", "sortition threshold-table cache hits"),
		SortitionMisses: reg.WallCounter("sim_sortition_cache_misses_total", "sortition threshold-table cache misses (table builds)"),

		WeightRefreshes:   reg.Counter("sim_weight_refreshes_total", "per-round weight-oracle snapshot refreshes"),
		WeightRefreshNS:   reg.WallCounter("sim_weight_refresh_ns_total", "wall nanoseconds spent refreshing weight snapshots"),
		WeightIndexUpdate: reg.Counter("sim_weight_index_updates_total", "incremental stake-index updates observed"),

		CommitteeSize: reg.Histogram("sim_committee_size",
			"distinct committee voters per round",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}),

		CoverageMaterializedOnly: reg.Gauge("sim_counters_coverage_materialized_only",
			"1 while task counters cover materialized nodes only (sparse path), 0 when full"),

		RoundWallNS: reg.WallCounter("sim_round_wall_ns_total", "wall nanoseconds spent simulating rounds"),
	}
}

// PoolMetrics is the typed bundle of run-pool and experiment-pipeline
// metrics. Increments here are per run / per row / per cell — orders of
// magnitude off the event hot path — so they hit the atomics directly.
type PoolMetrics struct {
	reg *Registry

	RunsStarted   *Counter
	RunsCompleted *Counter
	// QueueDepth is runs not yet started in the sweep most recently
	// observed; instantaneous, so a wall-class gauge.
	QueueDepth *Gauge

	RowsStreamed      *Counter
	CellsDone         *Counter
	CheckpointFlushes *Counter
}

// NewPoolMetrics registers the pool metric catalog on reg. A nil reg
// returns nil.
func NewPoolMetrics(reg *Registry) *PoolMetrics {
	if reg == nil {
		return nil
	}
	return &PoolMetrics{
		reg:           reg,
		RunsStarted:   reg.Counter("pool_runs_started_total", "sweep runs handed to a worker"),
		RunsCompleted: reg.Counter("pool_runs_completed_total", "sweep runs completed"),
		QueueDepth:    reg.Gauge("pool_queue_depth", "runs not yet started in the current sweep"),

		RowsStreamed:      reg.Counter("exp_rows_streamed_total", "result rows emitted through experiment sinks"),
		CellsDone:         reg.Counter("exp_cells_done_total", "experiment cells completed through sinks"),
		CheckpointFlushes: reg.Counter("exp_checkpoint_flushes_total", "grid checkpoint records flushed to disk"),
	}
}

// WorkerBusy returns the wall counter of busy nanoseconds for one
// run-pool worker (per-worker utilization). Nil-safe.
func (p *PoolMetrics) WorkerBusy(worker int) *Counter {
	if p == nil {
		return nil
	}
	return p.reg.WallCounterVec("pool_worker_busy_ns_total", "worker", itoa(worker),
		"wall nanoseconds each run-pool worker spent inside run functions")
}

// AuditEvents returns the counter of sink audit events for one kind.
// Nil-safe.
func (p *PoolMetrics) AuditEvents(kind string) *Counter {
	if p == nil {
		return nil
	}
	return p.reg.CounterVec("exp_audit_events_total", "kind", kind,
		"audit events emitted through experiment sinks, by kind")
}

// SimdMetrics is the typed bundle of simulation-daemon metrics: job
// lifecycle, queue pressure, the completed-cell cache, and the volume
// streamed to clients. Increments are per job / per cell / per row —
// far off the simulation hot path — so they hit the atomics directly.
// All of it is wall-class by nature (a daemon's workload is whatever
// clients submit), so none of these families participate in the
// deterministic-totals contract.
type SimdMetrics struct {
	reg *Registry

	JobsSubmitted *Counter
	JobsCompleted *Counter
	JobsFailed    *Counter
	// JobsInFlight counts jobs holding worker slots right now;
	// QueueDepth counts jobs waiting for slots.
	JobsInFlight *Gauge
	QueueDepth   *Gauge

	// CellCacheHits/Misses split each job's cells by whether the
	// completed-cell cache served them; their ratio is the cache hit
	// rate. CellCacheSize is the entries currently held.
	CellCacheHits   *Counter
	CellCacheMisses *Counter
	CellCacheSize   *Gauge

	RowsStreamed  *Counter
	CellsStreamed *Counter
}

// NewSimdMetrics registers the daemon metric catalog on reg. A nil reg
// returns nil.
func NewSimdMetrics(reg *Registry) *SimdMetrics {
	if reg == nil {
		return nil
	}
	return &SimdMetrics{
		reg:           reg,
		JobsSubmitted: reg.Counter("simd_jobs_submitted_total", "jobs accepted by the simulation daemon"),
		JobsCompleted: reg.Counter("simd_jobs_completed_total", "jobs that streamed to completion"),
		JobsFailed:    reg.Counter("simd_jobs_failed_total", "jobs that ended in an error or interruption"),
		JobsInFlight:  reg.Gauge("simd_jobs_in_flight", "jobs currently holding run-pool worker slots"),
		QueueDepth:    reg.Gauge("simd_queue_depth", "jobs queued for run-pool worker slots"),

		CellCacheHits:   reg.Counter("simd_cell_cache_hits_total", "grid cells served from the completed-cell cache"),
		CellCacheMisses: reg.Counter("simd_cell_cache_misses_total", "grid cells simulated because the cache had no entry"),
		CellCacheSize:   reg.Gauge("simd_cell_cache_size", "entries in the completed-cell cache"),

		RowsStreamed:  reg.Counter("simd_rows_streamed_total", "result rows encoded onto client streams"),
		CellsStreamed: reg.Counter("simd_cells_streamed_total", "cells encoded onto client streams"),
	}
}

// --- Cached default bundles ---------------------------------------------
//
// DefaultSim/DefaultPool hand instrumented components the bundle for the
// current global registry without re-registering the catalog on every
// construction: the cache is an atomic pointer keyed by registry
// identity, so Enable/Disable cycles (tests) get fresh bundles and the
// lookup is one atomic load + compare in the common case. Racing
// creations are benign — the registry dedupes metric registration, so
// duplicate bundles share the same underlying metrics.

type simCache struct {
	reg *Registry
	m   *SimMetrics
}

type poolCache struct {
	reg *Registry
	m   *PoolMetrics
}

var (
	simDefault  atomic.Pointer[simCache]
	poolDefault atomic.Pointer[poolCache]
)

// DefaultSim returns the SimMetrics bundle for the global registry, or
// nil when telemetry is off.
func DefaultSim() *SimMetrics {
	reg := Default()
	if reg == nil {
		return nil
	}
	if c := simDefault.Load(); c != nil && c.reg == reg {
		return c.m
	}
	m := NewSimMetrics(reg)
	simDefault.Store(&simCache{reg: reg, m: m})
	return m
}

// DefaultPool returns the PoolMetrics bundle for the global registry,
// or nil when telemetry is off.
func DefaultPool() *PoolMetrics {
	reg := Default()
	if reg == nil {
		return nil
	}
	if c := poolDefault.Load(); c != nil && c.reg == reg {
		return c.m
	}
	m := NewPoolMetrics(reg)
	poolDefault.Store(&poolCache{reg: reg, m: m})
	return m
}
