//go:build obs_off

package obs

// Enabled is pinned false by the obs_off build tag: Enable no-ops,
// Default stays nil, and every instrumentation point reduces to a
// nil-check branch.
const Enabled = false
