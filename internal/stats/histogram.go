package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Samples below
// Lo land in the first bin, samples at or above Hi in the last bin, so
// every observation is counted. The experiment harness uses it to render
// the Fig. 6 distributions of the per-round reward B_i.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equally spaced bins over
// [lo, hi). It returns an error when the range is empty or bins < 1.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Observe adds one sample to the histogram. NaN samples are ignored.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// ObserveAll adds every sample in xs.
func (h *Histogram) ObserveAll(xs []float64) {
	for _, x := range xs {
		h.Observe(x)
	}
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the center of the most populated bin; ErrEmpty if no samples.
func (h *Histogram) Mode() (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best), nil
}

// Render draws an ASCII bar chart of the histogram, width characters wide.
// It is used by cmd/benchgen to echo the Fig. 6 panels to the terminal.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
