package stats_test

import (
	"fmt"
	"os"

	"github.com/dsn2020-algorand/incentives/internal/stats"
)

// ExampleTrimmedMean averages ten simulation outcomes the way the paper
// does: a 20% trimmed mean discarding the two lowest and two highest.
func ExampleTrimmedMean() {
	runs := []float64{0.91, 0.90, 0.89, 0.92, 0.88, 0.90, 0.13, 0.91, 0.99, 0.90}
	tm, err := stats.TrimmedMean(runs, 0.20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("trimmed mean: %.3f\n", tm)
	// Output:
	// trimmed mean: 0.902
}

// ExampleTable_WriteCSV emits an experiment series as CSV.
func ExampleTable_WriteCSV() {
	t := stats.NewTable(
		stats.Series{Name: "round", Values: []float64{1, 2}},
		stats.Series{Name: "final_frac", Values: []float64{0.95, 0.91}},
	)
	if err := t.WriteCSV(os.Stdout); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// round,final_frac
	// 1,0.95
	// 2,0.91
}
