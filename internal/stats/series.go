package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is a named column of float64 samples. Tables (in the CSV sense)
// are built out of one X column plus any number of Y series; every paper
// figure that plots lines over rounds is emitted through this type.
type Series struct {
	Name   string
	Values []float64
}

// Table is a rectangular collection of columns rendered as CSV or as an
// aligned text table. Columns may have different lengths; missing cells
// render empty.
type Table struct {
	Columns []Series
}

// NewTable creates a table with the given columns.
func NewTable(cols ...Series) *Table {
	return &Table{Columns: cols}
}

// AddColumn appends a column to the table.
func (t *Table) AddColumn(name string, values []float64) {
	t.Columns = append(t.Columns, Series{Name: name, Values: values})
}

// Rows returns the number of rows (the longest column length).
func (t *Table) Rows() int {
	n := 0
	for _, c := range t.Columns {
		if len(c.Values) > n {
			n = len(c.Values)
		}
	}
	return n
}

// WriteCSV writes the table in CSV form, header row first.
func (t *Table) WriteCSV(w io.Writer) error {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	rows := t.Rows()
	cells := make([]string, len(t.Columns))
	for r := 0; r < rows; r++ {
		for i, c := range t.Columns {
			if r < len(c.Values) {
				cells[i] = strconv.FormatFloat(c.Values[r], 'g', 8, 64)
			} else {
				cells[i] = ""
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes the table as an aligned, human-readable text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	rows := t.Rows()
	formatted := make([][]string, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
		formatted[i] = make([]string, rows)
		for r := 0; r < rows; r++ {
			if r < len(c.Values) {
				formatted[i][r] = strconv.FormatFloat(c.Values[r], 'g', 6, 64)
			}
			if len(formatted[i][r]) > widths[i] {
				widths[i] = len(formatted[i][r])
			}
		}
	}
	for i, c := range t.Columns {
		if _, err := fmt.Fprintf(w, "%-*s  ", widths[i], c.Name); err != nil {
			return err
		}
		_ = i
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		for i := range t.Columns {
			if _, err := fmt.Fprintf(w, "%-*s  ", widths[i], formatted[i][r]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
