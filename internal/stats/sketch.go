package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file holds the mergeable streaming accumulators the grid's
// memory-bounded summary sink folds rows into (see
// experiments.SummarySink): an exact-moment accumulator and a
// deterministic KLL-style quantile sketch. Both are plain exported
// structs so shard processes can serialise partial summaries as JSON
// and a merge step can combine them; both are deterministic functions
// of their observation sequence (no randomness, no clocks), which is
// what keeps streamed summaries reproducible under the run pool's
// fixed fold order.

// Moments is a mergeable first/second-moment accumulator: mean,
// variance and normal-approximation confidence intervals without
// retaining observations. Merging two accumulators sums their counters,
// so a sharded computation reaches the same statistics as a single
// pass up to float addition order (counts are exact).
type Moments struct {
	N     uint64  `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Observe folds one value in.
func (m *Moments) Observe(x float64) {
	if m.N == 0 || x < m.Min {
		m.Min = x
	}
	if m.N == 0 || x > m.Max {
		m.Max = x
	}
	m.N++
	m.Sum += x
	m.SumSq += x * x
}

// Merge folds another accumulator in.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 || o.Min < m.Min {
		m.Min = o.Min
	}
	if m.N == 0 || o.Max > m.Max {
		m.Max = o.Max
	}
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
}

// Mean returns the running mean (0 when empty).
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Variance returns the population variance via the sum-of-squares
// identity. The grid folds outcome fractions in [0,1], where the
// cancellation this formulation risks on huge-magnitude data is
// immaterial; it is what makes the accumulator mergeable.
func (m Moments) Variance() float64 {
	if m.N == 0 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq/float64(m.N) - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the normal-approximation 95% confidence half-width of
// the mean (matching MeanCI's z=1.96 convention).
func (m Moments) CI95() float64 {
	if m.N < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.N))
}

// ErrEmptySketch is returned when a quantile is requested from a sketch
// that has observed nothing.
var ErrEmptySketch = errors.New("stats: empty sketch")

// DefaultSketchK is the compaction buffer width used when a sketch is
// built with k <= 0; at this width the observed rank error stays well
// under 1% over the data sizes the grids produce.
const DefaultSketchK = 256

// QuantileSketch is a deterministic KLL-style mergeable quantile
// sketch: approximate percentiles over a stream without retaining it.
// Items live in levels where level i carries weight 2^i; when a level
// overflows its k-item buffer it is sorted and every other item is
// promoted to the level above, alternating the surviving parity per
// level so compaction error cancels instead of accumulating. Unlike
// textbook KLL the surviving parity is a deterministic counter, not a
// coin flip, so the sketch is a pure function of its observation
// sequence — the property the shard-merge determinism tests pin.
//
// Count, Min and Max are tracked exactly; Quantile(0) and Quantile(1)
// are always exact. Interior quantiles carry rank error O(log(n/k)/k).
type QuantileSketch struct {
	K           int         `json:"k"`
	Count       uint64      `json:"count"`
	Min         float64     `json:"min"`
	Max         float64     `json:"max"`
	Levels      [][]float64 `json:"levels"`
	Compactions []uint64    `json:"compactions"`
}

// NewQuantileSketch builds a sketch with the given buffer width
// (k <= 0 selects DefaultSketchK).
func NewQuantileSketch(k int) *QuantileSketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	if k < 8 {
		k = 8
	}
	return &QuantileSketch{K: k}
}

func (s *QuantileSketch) ensureLevel(lvl int) {
	for len(s.Levels) <= lvl {
		s.Levels = append(s.Levels, nil)
	}
	for len(s.Compactions) <= lvl {
		s.Compactions = append(s.Compactions, 0)
	}
}

// Observe folds one value in.
func (s *QuantileSketch) Observe(x float64) {
	if s.K <= 0 {
		s.K = DefaultSketchK
	}
	if s.Count == 0 || x < s.Min {
		s.Min = x
	}
	if s.Count == 0 || x > s.Max {
		s.Max = x
	}
	s.Count++
	s.ensureLevel(0)
	s.Levels[0] = append(s.Levels[0], x)
	s.compact()
}

// compact cascades overflowing levels upward. Promotion halves the item
// count at double the weight, so the total weight is conserved up to
// the odd leftover item each compaction may shed — the sketch's rank
// error, bounded by the per-level buffer width.
func (s *QuantileSketch) compact() {
	for lvl := 0; lvl < len(s.Levels); lvl++ {
		if len(s.Levels[lvl]) <= s.K {
			continue
		}
		buf := s.Levels[lvl]
		sort.Float64s(buf)
		offset := int(s.Compactions[lvl] & 1)
		s.Compactions[lvl]++
		s.ensureLevel(lvl + 1)
		for i := offset; i < len(buf); i += 2 {
			s.Levels[lvl+1] = append(s.Levels[lvl+1], buf[i])
		}
		s.Levels[lvl] = buf[:0]
	}
}

// Merge folds another sketch in. Both sketches must share the same
// buffer width k.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil || o.Count == 0 {
		return nil
	}
	if s.K <= 0 {
		s.K = o.K
	}
	if s.K != o.K {
		return fmt.Errorf("stats: merging sketches with k=%d and k=%d", s.K, o.K)
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	for lvl, items := range o.Levels {
		if len(items) == 0 {
			continue
		}
		s.ensureLevel(lvl)
		s.Levels[lvl] = append(s.Levels[lvl], items...)
	}
	s.compact()
	return nil
}

// weighted is one surviving sketch item with its level weight.
type weightedItem struct {
	v float64
	w uint64
}

// items returns every surviving item value-sorted with its weight.
func (s *QuantileSketch) items() ([]weightedItem, uint64) {
	var out []weightedItem
	var total uint64
	for lvl, buf := range s.Levels {
		w := uint64(1) << uint(lvl)
		for _, v := range buf {
			out = append(out, weightedItem{v: v, w: w})
			total += w
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out, total
}

// Quantile returns the approximate q-quantile for q in [0, 1].
// Quantile(0) and Quantile(1) return the exact min and max.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.Count == 0 {
		return 0, ErrEmptySketch
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	if q == 0 {
		return s.Min, nil
	}
	if q == 1 {
		return s.Max, nil
	}
	items, total := s.items()
	if total == 0 {
		// Every observation was compacted away to an odd leftover; the
		// exact extrema are all that remain.
		return s.Min, nil
	}
	target := q * float64(total)
	var cum float64
	for _, it := range items {
		cum += float64(it.w)
		if cum >= target {
			v := it.v
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v, nil
		}
	}
	return s.Max, nil
}

// RetainedItems reports how many values the sketch currently stores
// across all levels — the memory-bound the streaming sink tests assert.
func (s *QuantileSketch) RetainedItems() int {
	n := 0
	for _, buf := range s.Levels {
		n += len(buf)
	}
	return n
}
