// Package stats provides the small statistical toolkit used by the
// experiment harness: means, trimmed means (the paper averages 100
// simulation runs with a 20% trimmed mean), standard deviations,
// histograms and numeric series that can be rendered as CSV.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs.
// It returns ErrEmpty when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// TrimmedMean returns the mean of xs after discarding the fraction trim of
// the smallest and the fraction trim of the largest samples. The paper uses
// trim = 0.20 when averaging its 100 simulation instances.
//
// trim must be in [0, 0.5). If trimming would discard every sample, the
// plain mean is returned instead so that small sample sets still aggregate.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if trim < 0 || trim >= 0.5 {
		return 0, errors.New("stats: trim fraction must be in [0, 0.5)")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	k := int(math.Floor(trim * float64(len(sorted))))
	if 2*k >= len(sorted) {
		return Mean(sorted)
	}
	return Mean(sorted[k : len(sorted)-k])
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile must be in [0, 100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// MeanCI returns the sample mean together with a normal-approximation
// confidence half-width at the given z score (1.96 for 95%). Experiment
// summaries use it to report run-to-run uncertainty.
func MeanCI(xs []float64, z float64) (mean, halfWidth float64, err error) {
	mean, err = Mean(xs)
	if err != nil {
		return 0, 0, err
	}
	if z < 0 {
		return 0, 0, errors.New("stats: negative z score")
	}
	if len(xs) < 2 {
		return mean, 0, nil
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, 0, err
	}
	return mean, z * sd / math.Sqrt(float64(len(xs))), nil
}

// Summary bundles the descriptive statistics of one sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	mn, _ := Min(xs)
	p25, _ := Percentile(xs, 25)
	med, _ := Median(xs)
	p75, _ := Percentile(xs, 75)
	mx, _ := Max(xs)
	return Summary{
		N:      len(xs),
		Mean:   mean,
		StdDev: sd,
		Min:    mn,
		P25:    p25,
		Median: med,
		P75:    p75,
		Max:    mx,
	}, nil
}
