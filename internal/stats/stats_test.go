package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"many", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v): %v", tt.in, err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestTrimmedMean(t *testing.T) {
	// 10 samples, trim 20%: drop 2 lowest and 2 highest.
	in := []float64{100, 1, 2, 3, 4, 5, 6, 7, 8, -100}
	got, err := TrimmedMean(in, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 + 3 + 4 + 5 + 6 + 7) / 6
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("TrimmedMean = %v, want %v", got, want)
	}
}

func TestTrimmedMeanSmallSample(t *testing.T) {
	// Trimming everything falls back to the plain mean.
	got, err := TrimmedMean([]float64{1, 3}, 0.49)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("TrimmedMean small = %v, want 2", got)
	}
}

func TestTrimmedMeanInvalidFraction(t *testing.T) {
	for _, trim := range []float64{-0.1, 0.5, 1} {
		if _, err := TrimmedMean([]float64{1, 2}, trim); err == nil {
			t.Errorf("TrimmedMean(trim=%v) expected error", trim)
		}
	}
}

func TestTrimmedMeanZeroIsMean(t *testing.T) {
	in := []float64{4, 8, 15, 16, 23, 42}
	tm, err := TrimmedMean(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Mean(in)
	if !almostEqual(tm, m, 1e-12) {
		t.Errorf("TrimmedMean(0) = %v, Mean = %v", tm, m)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, err := StdDev(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -2, 7, 0}
	mn, err := Min(in)
	if err != nil || mn != -2 {
		t.Errorf("Min = %v (err %v), want -2", mn, err)
	}
	mx, err := Max(in)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v (err %v), want 7", mx, err)
	}
}

func TestSum(t *testing.T) {
	if s := Sum([]float64{1.5, 2.5, -1}); !almostEqual(s, 3, 1e-12) {
		t.Errorf("Sum = %v, want 3", s)
	}
	if s := Sum(nil); s != 0 {
		t.Errorf("Sum(nil) = %v, want 0", s)
	}
}

func TestPercentile(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {12.5, 1.5},
	}
	for _, tt := range tests {
		got, err := Percentile(in, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("Percentile(101) expected error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("Percentile(-1) expected error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v", err)
	}
}

// Property: the trimmed mean always lies within [min, max] of the sample.
func TestTrimmedMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		tm, err := TrimmedMean(xs, 0.2)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return tm >= mn-1e-9 && tm <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean is translation-equivariant: Mean(xs + c) = Mean(xs) + c.
func TestMeanTranslationProperty(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1e6)
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m1, _ := Mean(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		m2, _ := Mean(shifted)
		return math.Abs(m2-(m1+shift)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err1 := Percentile(xs, pa)
		vb, err2 := Percentile(xs, pb)
		return err1 == nil && err2 == nil && va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw, err := MeanCI([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	// sd = 2, n = 8: hw = 1.96*2/sqrt(8).
	want := 1.96 * 2 / math.Sqrt(8)
	if !almostEqual(hw, want, 1e-12) {
		t.Errorf("half width = %v, want %v", hw, want)
	}
}

func TestMeanCIEdgeCases(t *testing.T) {
	if _, _, err := MeanCI(nil, 1.96); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, _, err := MeanCI([]float64{1, 2}, -1); err == nil {
		t.Error("negative z accepted")
	}
	mean, hw, err := MeanCI([]float64{7}, 1.96)
	if err != nil || mean != 7 || hw != 0 {
		t.Errorf("single sample: %v ± %v (err %v)", mean, hw, err)
	}
}
