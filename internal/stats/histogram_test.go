package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("expected error for inverted range")
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveAll([]float64{0, 1.9, 2, 5, 9.9})
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	h.Observe(-5)  // below range -> first bin
	h.Observe(100) // above range -> last bin
	h.Observe(math.NaN())
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("counts = %v, want [1 1]", h.Counts)
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (NaN ignored)", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if _, err := h.Mode(); err != ErrEmpty {
		t.Errorf("Mode() on empty error = %v, want ErrEmpty", err)
	}
	h.ObserveAll([]float64{3, 3.5, 3.9, 7})
	mode, err := h.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode != 3 { // bin [2,4) center
		t.Errorf("Mode = %v, want 3", mode)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.ObserveAll([]float64{1, 1, 3})
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Errorf("render missing full bar:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("render has %d lines, want 2", lines)
	}
}

// Property: total observed count equals the sum of bin counts.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-100, 100, 13)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
