package stats

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tbl := NewTable(
		Series{Name: "x", Values: []float64{1, 2, 3}},
		Series{Name: "y", Values: []float64{10, 20}},
	)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[3] != "3," {
		t.Errorf("row 3 = %q, want trailing empty cell", lines[3])
	}
}

func TestTableRows(t *testing.T) {
	tbl := &Table{}
	if tbl.Rows() != 0 {
		t.Errorf("empty table Rows = %d", tbl.Rows())
	}
	tbl.AddColumn("a", []float64{1})
	tbl.AddColumn("b", []float64{1, 2, 3})
	if tbl.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", tbl.Rows())
	}
}

func TestTableText(t *testing.T) {
	tbl := NewTable(Series{Name: "value", Values: []float64{1.5, 2.25}})
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "value") || !strings.Contains(out, "2.25") {
		t.Errorf("text table missing content:\n%s", out)
	}
}
