package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func randomData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = rng.Float64()
		case 1:
			out[i] = rng.NormFloat64() * 10
		default:
			out[i] = rng.ExpFloat64()
		}
	}
	return out
}

func TestMomentsMatchesExactStats(t *testing.T) {
	data := randomData(5000, 1)
	var m Moments
	for _, v := range data {
		m.Observe(v)
	}
	wantMean, _ := Mean(data)
	if math.Abs(m.Mean()-wantMean) > 1e-9*math.Abs(wantMean) {
		t.Fatalf("mean %v, want %v", m.Mean(), wantMean)
	}
	_, wantCI, _ := MeanCI(data, 1.96)
	if math.Abs(m.CI95()-wantCI) > 1e-6*wantCI {
		t.Fatalf("ci95 %v, want %v", m.CI95(), wantCI)
	}
	mn, _ := Min(data)
	mx, _ := Max(data)
	if m.Min != mn || m.Max != mx {
		t.Fatalf("min/max %v/%v, want %v/%v", m.Min, m.Max, mn, mx)
	}
}

// TestMomentsMergeProperties pins commutativity and associativity of
// Merge: counts and extrema exactly, sums to float tolerance.
func TestMomentsMergeProperties(t *testing.T) {
	data := randomData(3000, 2)
	chunk := func(lo, hi int) Moments {
		var m Moments
		for _, v := range data[lo:hi] {
			m.Observe(v)
		}
		return m
	}
	a, b, c := chunk(0, 1000), chunk(1000, 1700), chunk(1700, 3000)

	merge := func(ms ...Moments) Moments {
		var out Moments
		for _, m := range ms {
			out.Merge(m)
		}
		return out
	}
	ab := merge(a, b)
	ba := merge(b, a)
	abc := merge(a, b, c)
	cba := merge(c, b, a)
	var bc Moments
	bc.Merge(b)
	bc.Merge(c)
	var aBC Moments
	aBC.Merge(a)
	aBC.Merge(bc)

	close := func(name string, x, y Moments) {
		t.Helper()
		if x.N != y.N || x.Min != y.Min || x.Max != y.Max {
			t.Fatalf("%s: exact fields differ: %+v vs %+v", name, x, y)
		}
		if math.Abs(x.Sum-y.Sum) > 1e-9*math.Abs(x.Sum)+1e-12 {
			t.Fatalf("%s: sums differ: %v vs %v", name, x.Sum, y.Sum)
		}
		if math.Abs(x.SumSq-y.SumSq) > 1e-9*math.Abs(x.SumSq)+1e-12 {
			t.Fatalf("%s: sumsq differ: %v vs %v", name, x.SumSq, y.SumSq)
		}
	}
	close("commutativity", ab, ba)
	close("associativity", abc, aBC)
	close("reversal", abc, cba)
}

// rankOf returns how many values in sorted data are <= x.
func rankOf(sorted []float64, x float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
}

// checkQuantiles asserts the sketch's estimates land within tol·n ranks
// of the exact quantiles of data.
func checkQuantiles(t *testing.T, s *QuantileSketch, data []float64, tol float64) {
	t.Helper()
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := float64(len(data))
	if s.Count != uint64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count, len(data))
	}
	if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
		t.Fatalf("min/max %v/%v, want %v/%v", s.Min, s.Max, sorted[0], sorted[len(sorted)-1])
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		est, err := s.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		gotRank := float64(rankOf(sorted, est))
		if math.Abs(gotRank-q*n) > tol*n+1 {
			t.Fatalf("Quantile(%v) = %v has rank %v, want within %v of %v",
				q, est, gotRank, tol*n, q*n)
		}
	}
}

func TestQuantileSketchRankError(t *testing.T) {
	for _, n := range []int{10, 100, 5000, 200000} {
		data := randomData(n, int64(n))
		s := NewQuantileSketch(0)
		for _, v := range data {
			s.Observe(v)
		}
		// Theoretical rank error is O(log(n/k)/k); 2.5% is ~3x the
		// worst observed over these deterministic datasets.
		checkQuantiles(t, s, data, 0.025)
	}
}

// TestQuantileSketchDeterministic pins that the sketch is a pure
// function of its observation sequence: identical sequences produce
// deeply-equal internal state, the property shard-merge byte-identity
// rests on.
func TestQuantileSketchDeterministic(t *testing.T) {
	data := randomData(20000, 7)
	a, b := NewQuantileSketch(64), NewQuantileSketch(64)
	for _, v := range data {
		a.Observe(v)
	}
	for _, v := range data {
		b.Observe(v)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical observation sequences produced different sketch state")
	}
}

// TestQuantileSketchMergeProperties checks merged sketches — in any
// grouping or order — still satisfy the rank-error bound and keep the
// exact counters exact.
func TestQuantileSketchMergeProperties(t *testing.T) {
	data := randomData(30000, 9)
	chunks := [][]float64{data[:4000], data[4000:15000], data[15000:]}
	build := func(vals []float64) *QuantileSketch {
		s := NewQuantileSketch(128)
		for _, v := range vals {
			s.Observe(v)
		}
		return s
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	for _, order := range orders {
		merged := NewQuantileSketch(128)
		for _, i := range order {
			if err := merged.Merge(build(chunks[i])); err != nil {
				t.Fatal(err)
			}
		}
		checkQuantiles(t, merged, data, 0.04)
	}
	// Nested grouping: a+(b+c).
	bc := build(chunks[1])
	if err := bc.Merge(build(chunks[2])); err != nil {
		t.Fatal(err)
	}
	nested := build(chunks[0])
	if err := nested.Merge(bc); err != nil {
		t.Fatal(err)
	}
	checkQuantiles(t, nested, data, 0.04)

	if err := NewQuantileSketch(32).Merge(build(chunks[0])); err == nil {
		t.Fatal("merging mismatched k succeeded, want error")
	}
}

// TestQuantileSketchJSONRoundTrip pins that a serialised partial
// summary deserialises to an equivalent sketch — the shard handoff.
func TestQuantileSketchJSONRoundTrip(t *testing.T) {
	data := randomData(10000, 11)
	s := NewQuantileSketch(64)
	for _, v := range data {
		s.Observe(v)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		want, _ := s.Quantile(q)
		got, err := back.Quantile(q)
		if err != nil || got != want {
			t.Fatalf("Quantile(%v) after round-trip = %v (%v), want %v", q, got, err, want)
		}
	}
}

func TestQuantileSketchBounded(t *testing.T) {
	s := NewQuantileSketch(64)
	for i := 0; i < 500000; i++ {
		s.Observe(float64(i % 977))
	}
	// Retained items grow with the level count (log n), not n.
	if got := s.RetainedItems(); got > 64*24 {
		t.Fatalf("sketch retains %d items over 500k observations, want O(k log n)", got)
	}
	if s.Count != 500000 {
		t.Fatalf("count %d", s.Count)
	}
}

func TestQuantileSketchEmptyAndErrors(t *testing.T) {
	s := NewQuantileSketch(0)
	if _, err := s.Quantile(0.5); err != ErrEmptySketch {
		t.Fatalf("empty sketch quantile err = %v", err)
	}
	s.Observe(3)
	if _, err := s.Quantile(1.5); err == nil {
		t.Fatal("out-of-range quantile succeeded")
	}
	if v, err := s.Quantile(0.5); err != nil || v != 3 {
		t.Fatalf("single-value quantile = %v, %v", v, err)
	}
}
