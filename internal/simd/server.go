package simd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/obs"
	"github.com/dsn2020-algorand/incentives/internal/runpool"
)

// Config parameterises one daemon instance.
type Config struct {
	// DataDir persists grid-job specs and checkpoints so a restarted
	// daemon resumes interrupted jobs; empty disables persistence.
	DataDir string
	// MaxWorkers is the worker-slot budget shared by every concurrent
	// job (0 = GOMAXPROCS). Jobs acquire slots FIFO before running.
	MaxWorkers int
	// CacheCells is the completed-cell cache capacity in entries
	// (0 = 4096, negative disables the cache).
	CacheCells int
	// Logf, when non-nil, receives the daemon's operational log lines.
	Logf func(format string, args ...any)
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobInterrupted JobState = "interrupted"
)

// JobStatus is the API's JSON rendering of one job.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	// Cells is the job's total cell count (grid cells, or sweep runs).
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// CachedCells/RestoredCells split the cells not simulated by this
	// execution: served from the in-memory cache with full rows, or
	// restored audit-only from an interrupted run's checkpoint.
	CachedCells   int `json:"cached_cells"`
	RestoredCells int `json:"restored_cells"`
	// Workers is the slot count granted by the budget (0 until running).
	Workers int `json:"workers,omitempty"`
	// StreamBytes is the wire-stream length so far.
	StreamBytes int `json:"stream_bytes"`
}

// Job is one submitted experiment: its request, its wire-event log, and
// its mutable lifecycle state.
type Job struct {
	id  string
	req JobRequest
	log *eventLog

	mu          sync.Mutex
	state       JobState
	errText     string
	fingerprint string
	cells       int
	cellsDone   int
	cached      int
	restored    int
	workers     int
}

// ID returns the job's daemon-assigned identifier.
func (j *Job) ID() string { return j.id }

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.req.Kind, State: j.state, Error: j.errText,
		Cells: j.cells, CellsDone: j.cellsDone,
		CachedCells: j.cached, RestoredCells: j.restored,
		Workers: j.workers, StreamBytes: j.log.size(),
	}
}

func (j *Job) noteCellDone() {
	j.mu.Lock()
	j.cellsDone++
	j.mu.Unlock()
}

// Server is the simulation daemon: an http.Handler serving the job API
// alongside the obs introspection routes (/metrics, /debug/vars,
// /debug/pprof) on one listener.
type Server struct {
	cfg     Config
	metrics *obs.SimdMetrics
	budget  *runpool.WorkerBudget
	cache   *cellCache
	mux     *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	draining atomic.Bool
	wg       sync.WaitGroup
}

// New builds a daemon, enabling the global telemetry registry (the
// daemon always exposes /metrics) and re-enqueuing any interrupted grid
// jobs persisted in cfg.DataDir.
func New(cfg Config) (*Server, error) {
	reg := obs.Enable()
	s := &Server{
		cfg:     cfg,
		metrics: obs.NewSimdMetrics(reg),
		budget:  runpool.NewWorkerBudget(runpool.Resolve(cfg.MaxWorkers)),
		jobs:    make(map[string]*Job),
	}
	if s.metrics == nil {
		// -tags obs_off: a zero bundle's nil counters/gauges no-op safely.
		s.metrics = &obs.SimdMetrics{}
	}
	s.cache = newCellCache(cfg.CacheCells, s.metrics.CellCacheSize)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if reg != nil {
		s.mux = obs.NewMux(reg)
	} else {
		s.mux = http.NewServeMux() // -tags obs_off: API only
	}
	s.mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, err
		}
		if err := s.recoverJobs(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Budget exposes the shared worker budget (tests and status pages).
func (s *Server) Budget() *runpool.WorkerBudget { return s.budget }

// Submit validates and enqueues a job, returning it immediately; the
// job runs as soon as the budget grants its worker slots. Grid jobs
// with a DataDir persist their spec first, so a daemon killed while
// the job is queued or running re-enqueues it on restart.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	fingerprint, err := req.fingerprint()
	if err != nil {
		return nil, err
	}
	cells, err := jobCells(req)
	if err != nil {
		return nil, err
	}
	if req.Kind == KindGrid && s.cfg.DataDir != "" {
		blob, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(s.specPath(fingerprint), blob, 0o644); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, errors.New("simd: daemon is draining; not accepting jobs")
	}
	s.nextID++
	job := &Job{
		id: fmt.Sprintf("job-%d", s.nextID), req: req, log: newEventLog(),
		state: JobQueued, fingerprint: fingerprint, cells: cells,
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.wg.Add(1)
	s.mu.Unlock()
	s.metrics.JobsSubmitted.Add(1)
	s.logf("simd: %s submitted (%s, %d cells)\n", job.id, req.Kind, cells)
	go s.runJob(job)
	return job, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Shutdown drains the daemon: no new jobs are accepted, queued jobs are
// released as interrupted, and running jobs stop at their next cell
// boundary (each completed cell is already durable in its checkpoint).
// It returns once every job has settled or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jobCells computes a job's total cell count up front for its status.
func jobCells(req JobRequest) (int, error) {
	switch req.Kind {
	case KindScenario:
		cfg, err := req.Scenario.Config()
		if err != nil {
			return 0, err
		}
		return cfg.Runs, nil
	default:
		cfg, err := req.Grid.Config()
		if err != nil {
			return 0, err
		}
		return len(cfg.Scenarios) * len(cfg.Seeds), nil
	}
}

// runJob drives one job through acquire -> execute -> settle.
func (s *Server) runJob(job *Job) {
	defer s.wg.Done()
	err := s.execute(job)
	job.mu.Lock()
	switch {
	case err == nil:
		job.state = JobDone
	case errors.Is(err, experiments.ErrInterrupted) || errors.Is(err, context.Canceled):
		job.state = JobInterrupted
		job.errText = "interrupted by shutdown; the daemon resumes it on restart"
	default:
		job.state = JobFailed
		job.errText = err.Error()
	}
	state := job.state
	job.mu.Unlock()
	if err == nil {
		s.metrics.JobsCompleted.Add(1)
	} else {
		s.metrics.JobsFailed.Add(1)
	}
	job.log.close()
	s.logf("simd: %s %s\n", job.id, state)
}

// execute acquires worker slots and runs the job's kind.
func (s *Server) execute(job *Job) error {
	s.metrics.QueueDepth.Add(1)
	n, release, err := s.budget.Acquire(s.ctx, jobWorkers(job.req))
	s.metrics.QueueDepth.Add(-1)
	if err != nil {
		return err // context.Canceled during drain -> interrupted
	}
	defer release()
	job.mu.Lock()
	job.state = JobRunning
	job.workers = n
	job.mu.Unlock()
	s.metrics.JobsInFlight.Add(1)
	defer s.metrics.JobsInFlight.Add(-1)
	if job.req.Kind == KindScenario {
		return s.executeScenario(job, n)
	}
	return s.executeGrid(job, n)
}

func jobWorkers(req JobRequest) int {
	if req.Kind == KindScenario {
		return req.Scenario.Workers
	}
	return req.Grid.Workers
}

// jobFileBase names a grid job's durable files after its fingerprint
// digest, so resubmitting the same grid — before or after a restart —
// lands on the same checkpoint.
func jobFileBase(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return "simd_" + hex.EncodeToString(sum[:8])
}

func (s *Server) specPath(fingerprint string) string {
	return filepath.Join(s.cfg.DataDir, jobFileBase(fingerprint)+".job.json")
}

func (s *Server) ckptPath(fingerprint string) string {
	return filepath.Join(s.cfg.DataDir, jobFileBase(fingerprint)+".ckpt.jsonl")
}

// executeGrid streams one grid job: checkpointed cells restore
// audit-only, cache hits replay their full rows, and everything else
// simulates — all through one sink stack (wire log, cache capture,
// checkpoint last) whose event order the run pool fixes, so the wire
// bytes are identical at any worker count and any cache/restore split.
func (s *Server) executeGrid(job *Job, workers int) error {
	cfg, err := job.req.Grid.Config()
	if err != nil {
		return err
	}
	cfg.Workers = workers
	weightsSpec := job.req.Grid.Weights
	fingerprint := experiments.GridFingerprint(cfg, weightsSpec)
	cells := len(cfg.Scenarios) * len(cfg.Seeds)

	var prior []experiments.GridCellRecord
	persist := s.cfg.DataDir != ""
	if persist {
		prior, err = experiments.LoadGridCheckpoint(s.ckptPath(fingerprint), fingerprint, experiments.ShardSpec{})
		if err != nil {
			return err
		}
	}
	restored := make(map[int]adversary.Report, len(prior))
	for _, rec := range prior {
		restored[rec.Index] = rec.Audit
	}

	// Partition the remaining cells across the cache.
	keys := make(map[int]string, cells)
	cached := make(map[int]*experiments.GridCell)
	for cell := 0; cell < cells; cell++ {
		key := experiments.GridCellFingerprint(cfg, weightsSpec,
			cfg.Scenarios[cell/len(cfg.Seeds)], cfg.Seeds[cell%len(cfg.Seeds)])
		keys[cell] = key
		if _, ok := restored[cell]; ok {
			continue
		}
		if c := s.cache.get(key); c != nil {
			cached[cell] = c
			s.metrics.CellCacheHits.Add(1)
		} else {
			s.metrics.CellCacheMisses.Add(1)
		}
	}
	job.mu.Lock()
	job.cached = len(cached)
	job.restored = len(prior)
	job.mu.Unlock()

	sinks := []experiments.Sink{
		&meteredWireSink{sink: experiments.NewWireSink(job.log), metrics: s.metrics, job: job},
		&cacheSink{cache: s.cache, keys: keys},
	}
	var ckpt *experiments.CheckpointWriter
	if persist {
		// Rewriting heals any torn tail; checkpoint last in the stack so a
		// recorded cell implies every other sink fully consumed it.
		ckpt, err = experiments.CreateGridCheckpoint(s.ckptPath(fingerprint), fingerprint, experiments.ShardSpec{}, prior)
		if err != nil {
			return err
		}
		defer ckpt.Close()
		sinks = append(sinks, experiments.NewCheckpointSink(ckpt, 0))
	}

	opt := experiments.StreamOptions{Restored: restored, Cached: cached, Interrupt: s.draining.Load}
	if err := experiments.StreamScenarioGrid(cfg, experiments.MultiSink(sinks...), opt); err != nil {
		return err
	}
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			return err
		}
	}
	if persist {
		// The job completed: its durable state has nothing left to resume.
		// Repeats within this daemon's lifetime hit the in-memory cache
		// (full rows) instead of the checkpoint (audit-only restores).
		os.Remove(s.specPath(fingerprint))
		os.Remove(s.ckptPath(fingerprint))
	}
	return nil
}

// executeScenario streams one sweep job. Sweeps run whole (RunScenario
// has no cell-boundary interrupt seam, and at sweep scale a job is
// seconds, not hours), so shutdown waits for them; they are neither
// cached nor checkpointed.
func (s *Server) executeScenario(job *Job, workers int) error {
	cfg, err := job.req.Scenario.Config()
	if err != nil {
		return err
	}
	cfg.Workers = workers
	cfg.Sink = &meteredWireSink{sink: experiments.NewWireSink(job.log), metrics: s.metrics, job: job}
	_, err = experiments.RunScenario(cfg)
	return err
}

// recoverJobs re-enqueues every grid job whose spec file survived a
// previous daemon: each resumes from its checkpoint, re-simulating only
// unrecorded cells.
func (s *Server) recoverJobs() error {
	matches, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "simd_*.job.json"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	for _, path := range matches {
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var req JobRequest
		if err := json.Unmarshal(blob, &req); err != nil {
			s.logf("simd: dropping unreadable job spec %s: %v\n", path, err)
			os.Remove(path)
			continue
		}
		job, err := s.Submit(req)
		if err != nil {
			s.logf("simd: dropping unrunnable job spec %s: %v\n", path, err)
			os.Remove(path)
			continue
		}
		s.logf("simd: resuming interrupted job %s from %s\n", job.id, path)
	}
	return nil
}

// meteredWireSink wraps the job's wire sink with the daemon's stream
// metrics and per-job progress counts.
type meteredWireSink struct {
	sink    experiments.Sink
	metrics *obs.SimdMetrics
	job     *Job
}

func (m *meteredWireSink) CellStart(cell experiments.Cell, columns []string) error {
	return m.sink.CellStart(cell, columns)
}

func (m *meteredWireSink) Row(cell experiments.Cell, row experiments.Row) error {
	m.metrics.RowsStreamed.Add(1)
	return m.sink.Row(cell, row)
}

func (m *meteredWireSink) AuditEvent(cell experiments.Cell, report adversary.Report) error {
	return m.sink.AuditEvent(cell, report)
}

func (m *meteredWireSink) CellDone(cell experiments.Cell) error {
	err := m.sink.CellDone(cell)
	m.metrics.CellsStreamed.Add(1)
	m.job.noteCellDone()
	return err
}

// --- HTTP API ------------------------------------------------------------

// ServeHTTP serves the job API plus the obs introspection routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleJobs serves POST (submit) and GET (list) on /api/v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad job request: "+err.Error())
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			code := http.StatusBadRequest
			if s.draining.Load() {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, job.Status())
	case http.MethodGet:
		jobs := s.Jobs()
		out := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = j.Status()
		}
		writeJSON(w, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleJob serves GET /api/v1/jobs/<id> (status) and
// GET /api/v1/jobs/<id>/stream (the job's wire events, replay + follow).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	job, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job "+id)
		return
	}
	switch sub {
	case "":
		writeJSON(w, job.Status())
	case "stream":
		s.streamJob(w, r, job)
	default:
		httpError(w, http.StatusNotFound, "unknown job endpoint "+sub)
	}
}

// streamJob replays the job's wire log from the start and follows it
// until the job settles: NDJSON by default (bytes exactly as the wire
// sink encoded them — the determinism contract's unit), or SSE framing
// (each event line as one `data:` message) when the client asks via
// Accept: text/event-stream or ?sse=1.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, newOff, done := job.log.next(off)
		off = newOff
		if len(chunk) > 0 {
			if sse {
				chunk = sseFrame(chunk)
			}
			if _, err := w.Write(chunk); err != nil {
				return // client went away
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

// sseFrame wraps whole NDJSON lines (the event log never splits one)
// as SSE data messages.
func sseFrame(chunk []byte) []byte {
	var out []byte
	for _, line := range strings.Split(strings.TrimRight(string(chunk), "\n"), "\n") {
		if line == "" {
			continue
		}
		out = append(out, "data: "...)
		out = append(out, line...)
		out = append(out, "\n\n"...)
	}
	return out
}
