package simd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
)

// Client talks to a daemon's job API. The zero HTTP field uses
// http.DefaultClient.
type Client struct {
	Base string // daemon base URL, e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the daemon's {"error": ...} body for non-2xx
// responses. The daemon's own "simd: " prefix is stripped so callers
// prepending their command name don't stutter.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		return fmt.Errorf("daemon: %s", strings.TrimPrefix(body.Error, "simd: "))
	}
	return fmt.Errorf("daemon returned %s", resp.Status)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(req JobRequest) (JobStatus, error) {
	var st JobStatus
	blob, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	resp, err := c.client().Post(c.Base+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiError(resp)
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	resp, err := c.client().Get(c.Base + "/api/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiError(resp)
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// List fetches every job's status in submission order.
func (c *Client) List() ([]JobStatus, error) {
	resp, err := c.client().Get(c.Base + "/api/v1/jobs")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var out []JobStatus
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Stream opens the job's NDJSON wire stream: a full replay from event
// zero, following live until the job settles. The caller closes it.
func (c *Client) Stream(id string) (io.ReadCloser, error) {
	resp, err := c.client().Get(c.Base + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return resp.Body, nil
}

// restoredCounter counts restored cells passing through a replay; a
// stream from a resumed job carries them audit-only, which rules out
// rebuilding the row-level stream summary client-side.
type restoredCounter struct {
	n int
}

func (r *restoredCounter) CellStart(cell experiments.Cell, _ []string) error {
	if cell.Restored {
		r.n++
	}
	return nil
}
func (r *restoredCounter) Row(experiments.Cell, experiments.Row) error         { return nil }
func (r *restoredCounter) AuditEvent(experiments.Cell, adversary.Report) error { return nil }
func (r *restoredCounter) CellDone(experiments.Cell) error                     { return nil }

// WriteGridOutputs replays a grid job's wire stream into the CLI's sink
// stack, writing into dir the exact files `cmd/scenario -full` would
// have produced: full_<scenario>_s<seed>.csv and _audit.csv per cell,
// full_grid_summary.csv, and full_grid_stream_summary.csv. spec must be
// the submitted job's grid spec (the summary tables derive their
// scenario/seed columns from the grid shape). Streams from resumed jobs
// carry restored cells audit-only; their per-cell files were written by
// the pre-interruption client, so only the row-level stream summary is
// skipped. Returns the grid's total safety violations — the CLI's exit
// verdict.
func WriteGridOutputs(stream io.Reader, spec GridJobSpec, dir string, logw io.Writer) (int, error) {
	cfg, err := spec.Config()
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	csv := experiments.NewGridCSVSink(dir, cfg, "full_grid_summary.csv")
	csv.SetLog(logw)
	summary := experiments.NewSummarySink(0)
	restored := &restoredCounter{}
	if err := experiments.ReplayWire(stream, experiments.MultiSink(csv, summary, restored)); err != nil {
		return 0, err
	}
	if err := csv.Close(); err != nil {
		return 0, err
	}
	if restored.n == 0 {
		table, err := summary.Table()
		if err != nil {
			return 0, err
		}
		path := filepath.Join(dir, "full_grid_stream_summary.csv")
		f, err := os.Create(path)
		if err != nil {
			return 0, err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		if logw != nil {
			fmt.Fprintf(logw, "wrote %s\n", path)
		}
	} else if logw != nil {
		fmt.Fprintf(logw, "skipping full_grid_stream_summary.csv: %d restored cell(s) streamed audit-only\n", restored.n)
	}
	return csv.SafetyViolations(), nil
}
