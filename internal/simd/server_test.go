package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// testGridSpec is the small two-scenario × two-seed grid the e2e tests
// sweep: big enough to exercise multi-cell streaming, small enough to
// run in milliseconds.
func testGridSpec() GridJobSpec {
	return GridJobSpec{
		Scenarios: []string{"crash_churn", "honest_baseline"},
		Seeds:     2,
		Nodes:     60,
		Rounds:    6,
	}
}

// startDaemon boots a daemon over httptest and returns its client.
func startDaemon(t *testing.T, dataDir string, maxWorkers int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	daemon, err := New(Config{DataDir: dataDir, MaxWorkers: maxWorkers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(daemon)
	t.Cleanup(ts.Close)
	return daemon, ts, &Client{Base: ts.URL}
}

// streamBytes submits req with the given worker request and reads the
// job's whole wire stream (which follows until the job settles).
func streamBytes(t *testing.T, c *Client, req JobRequest) (JobStatus, []byte) {
	t.Helper()
	st, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := c.Stream(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	blob, err := io.ReadAll(stream)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final, blob
}

// directWireBytes runs the grid in-process (no daemon) through the wire
// sink — the CLI-equivalent reference bytes.
func directWireBytes(t *testing.T, spec GridJobSpec, workers int) []byte {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	var buf bytes.Buffer
	if err := experiments.StreamScenarioGrid(cfg, experiments.NewWireSink(&buf), experiments.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeCLIGridFiles replicates the `scenario -full` sink stack (CSV +
// stream summary, no checkpoint) into dir.
func writeCLIGridFiles(t *testing.T, spec GridJobSpec, dir string) {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	csv := experiments.NewGridCSVSink(dir, cfg, "full_grid_summary.csv")
	summary := experiments.NewSummarySink(0)
	if err := experiments.StreamScenarioGrid(cfg, experiments.MultiSink(csv, summary), experiments.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := csv.Close(); err != nil {
		t.Fatal(err)
	}
	table, err := summary.Table()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "full_grid_stream_summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// diffDirs asserts every file in want exists byte-identical in got.
func diffDirs(t *testing.T, want, got string) {
	t.Helper()
	entries, err := os.ReadDir(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("reference directory is empty")
	}
	for _, e := range entries {
		wantBlob, err := os.ReadFile(filepath.Join(want, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gotBlob, err := os.ReadFile(filepath.Join(got, e.Name()))
		if err != nil {
			t.Fatalf("daemon output missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(wantBlob, gotBlob) {
			t.Errorf("%s differs between CLI and daemon outputs", e.Name())
		}
	}
}

func TestGridJobMatchesCLIBytes(t *testing.T) {
	spec := testGridSpec()
	_, _, client := startDaemon(t, filepath.Join(t.TempDir(), "data"), 4)

	st, streamed := streamBytes(t, client, JobRequest{Kind: KindGrid, Grid: &spec})
	if st.State != JobDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Cells != 4 || st.CellsDone != 4 {
		t.Fatalf("cells %d done %d, want 4/4", st.Cells, st.CellsDone)
	}
	if want := directWireBytes(t, spec, 1); !bytes.Equal(streamed, want) {
		t.Fatal("daemon stream differs from in-process wire encoding")
	}

	// Replaying the stream client-side reproduces the CLI's files.
	cliDir := filepath.Join(t.TempDir(), "cli")
	gotDir := filepath.Join(t.TempDir(), "daemon")
	writeCLIGridFiles(t, spec, cliDir)
	violations, err := WriteGridOutputs(bytes.NewReader(streamed), spec, gotDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("unexpected safety violations: %d", violations)
	}
	diffDirs(t, cliDir, gotDir)

	// The job completed, so its durable state is gone: nothing to resume.
	matches, _ := filepath.Glob(filepath.Join(t.TempDir(), "data", "simd_*"))
	if len(matches) != 0 {
		t.Fatalf("completed job left durable files: %v", matches)
	}
}

func TestGridJobWorkerAndCacheInvariance(t *testing.T) {
	spec := testGridSpec()
	_, ts, client := startDaemon(t, "", 8)

	spec.Workers = 1
	cold, first := streamBytes(t, client, JobRequest{Kind: KindGrid, Grid: &spec})
	if cold.State != JobDone {
		t.Fatalf("cold job ended %s: %s", cold.State, cold.Error)
	}
	if cold.CachedCells != 0 {
		t.Fatalf("cold job reports %d cached cells", cold.CachedCells)
	}

	spec.Workers = 8
	warm, second := streamBytes(t, client, JobRequest{Kind: KindGrid, Grid: &spec})
	if warm.State != JobDone {
		t.Fatalf("warm job ended %s: %s", warm.State, warm.Error)
	}
	if warm.CachedCells != 4 {
		t.Fatalf("warm job served %d cells from cache, want 4", warm.CachedCells)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache-served stream differs from cold stream (worker budgets 1 vs 8)")
	}

	// The daemon's metric families are scrapeable and lint clean.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"simd_jobs_submitted_total", "simd_jobs_completed_total",
		"simd_cell_cache_hits_total", "simd_rows_streamed_total",
	} {
		if !strings.Contains(string(blob), family) {
			t.Errorf("/metrics lacks %s", family)
		}
	}
	if families, err := obs.LintPrometheus(bytes.NewReader(blob)); err != nil {
		t.Fatalf("promlint: %v", err)
	} else if len(families) == 0 {
		t.Fatal("promlint saw no metric families")
	}
}

// wireLinesByCell splits an NDJSON stream into per-cell event lines.
func wireLinesByCell(t *testing.T, blob []byte) map[int][]string {
	t.Helper()
	out := map[int][]string{}
	for _, line := range strings.Split(strings.TrimRight(string(blob), "\n"), "\n") {
		var ev experiments.WireEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad wire line %q: %v", line, err)
		}
		out[ev.Cell] = append(out[ev.Cell], line)
	}
	return out
}

func TestShutdownCheckpointResume(t *testing.T) {
	// A 12-cell grid at one worker: cells land one at a time, so a drain
	// triggered after the first cell interrupts mid-grid.
	spec := GridJobSpec{
		Scenarios: []string{"crash_churn", "honest_baseline", "partition_healing"},
		Seeds:     4,
		Nodes:     80,
		Rounds:    8,
	}
	reference := directWireBytes(t, spec, 1)
	refCells := wireLinesByCell(t, reference)

	dataDir := filepath.Join(t.TempDir(), "data")
	daemon, _, client := startDaemon(t, dataDir, 1)
	st, err := client.Submit(JobRequest{Kind: KindGrid, Grid: &spec})
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		cur, err := client.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.CellsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cell completed before the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := daemon.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	interrupted, err := client.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.State == JobDone {
		t.Skip("job finished before the drain landed; nothing to resume")
	}
	if interrupted.State != JobInterrupted {
		t.Fatalf("drained job ended %s: %s", interrupted.State, interrupted.Error)
	}

	// A fresh daemon on the same data dir re-enqueues and finishes the
	// job; its cache is empty, so only the checkpoint feeds the resume.
	_, _, client2 := startDaemon(t, dataDir, 1)
	var resumed JobStatus
	for deadline := time.Now().Add(60 * time.Second); ; {
		jobs, err := client2.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 1 {
			t.Fatalf("restarted daemon has %d jobs, want the one resumed", len(jobs))
		}
		resumed = jobs[0]
		if resumed.State == JobDone || resumed.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", resumed.State)
		}
		time.Sleep(time.Millisecond)
	}
	if resumed.State != JobDone {
		t.Fatalf("resumed job ended %s: %s", resumed.State, resumed.Error)
	}
	if resumed.RestoredCells < 1 || resumed.RestoredCells >= 12 {
		t.Fatalf("resumed job restored %d of 12 cells; the interrupt did not land mid-grid", resumed.RestoredCells)
	}

	stream, err := client2.Stream(resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(stream)
	stream.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Restored cells replay audit-only; every remaining cell's event
	// lines must be byte-identical to the uninterrupted run's.
	restoredCells := 0
	for cell, lines := range wireLinesByCell(t, blob) {
		var start experiments.WireEvent
		if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
			t.Fatal(err)
		}
		if start.Restored {
			restoredCells++
			// The restored audit must match the reference cell's audit line.
			var auditLine string
			for _, l := range lines {
				if strings.Contains(l, `"event":"audit"`) {
					auditLine = l
				}
			}
			found := false
			for _, l := range refCells[cell] {
				if l == auditLine {
					found = true
				}
			}
			if !found {
				t.Errorf("cell %d: restored audit differs from the uninterrupted run", cell)
			}
			continue
		}
		if len(lines) != len(refCells[cell]) {
			t.Fatalf("cell %d: %d events, reference has %d", cell, len(lines), len(refCells[cell]))
		}
		for i := range lines {
			if lines[i] != refCells[cell][i] {
				t.Fatalf("cell %d event %d differs from the uninterrupted run:\n got %s\nwant %s",
					cell, i, lines[i], refCells[cell][i])
			}
		}
	}
	if restoredCells != resumed.RestoredCells {
		t.Fatalf("stream carries %d restored cells, status says %d", restoredCells, resumed.RestoredCells)
	}

	// Completion cleaned up the durable state.
	matches, _ := filepath.Glob(filepath.Join(dataDir, "simd_*"))
	if len(matches) != 0 {
		t.Fatalf("resumed job left durable files: %v", matches)
	}
}

func TestScenarioJob(t *testing.T) {
	_, _, client := startDaemon(t, "", 4)
	req := JobRequest{Kind: KindScenario, Scenario: &ScenarioJobSpec{
		Scenario: "honest_baseline", Nodes: 40, Rounds: 5, Runs: 3,
	}}
	st, blob := streamBytes(t, client, req)
	if st.State != JobDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Cells != 3 || st.CellsDone != 3 {
		t.Fatalf("cells %d done %d, want 3/3", st.Cells, st.CellsDone)
	}
	// The stream obeys the sink grammar end to end.
	if err := experiments.ReplayWire(bytes.NewReader(blob), &restoredCounter{}); err != nil {
		t.Fatal(err)
	}
	// Streams are worker-invariant for sweeps too.
	req2 := JobRequest{Kind: KindScenario, Scenario: &ScenarioJobSpec{
		Scenario: "honest_baseline", Nodes: 40, Rounds: 5, Runs: 3, CommonSpec: CommonSpec{Workers: 3},
	}}
	st2, blob2 := streamBytes(t, client, req2)
	if st2.State != JobDone {
		t.Fatalf("job ended %s: %s", st2.State, st2.Error)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("sweep stream differs across worker budgets")
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, _, client := startDaemon(t, "", 2)
	for _, req := range []JobRequest{
		{Kind: "nope"},
		{Kind: KindGrid, Grid: &GridJobSpec{Scenarios: []string{"not_a_scenario"}}},
		{Kind: KindGrid, Grid: &GridJobSpec{Seeds: -1}},
		{Kind: KindGrid, Grid: &GridJobSpec{CommonSpec: CommonSpec{Sparse: "sideways"}}},
		{Kind: KindScenario, Scenario: &ScenarioJobSpec{Scenario: "not_a_scenario"}},
		{Kind: KindGrid, Scenario: &ScenarioJobSpec{}},
	} {
		if _, err := client.Submit(req); err == nil {
			t.Errorf("submit accepted bad request %+v", req)
		}
	}
	if _, err := client.Status("job-404"); err == nil {
		t.Error("status of unknown job did not error")
	}
}

func TestSSEFraming(t *testing.T) {
	_, ts, client := startDaemon(t, "", 2)
	spec := testGridSpec()
	st, err := client.Submit(JobRequest{Kind: KindGrid, Grid: &spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/stream?sse=1", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n\n")
	if len(lines) == 0 {
		t.Fatal("no SSE messages")
	}
	for _, msg := range lines {
		if !strings.HasPrefix(msg, "data: ") {
			t.Fatalf("SSE message %q lacks data: prefix", msg)
		}
	}
}
