package simd

import (
	"sync"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/obs"
)

// cellCache is the daemon's completed-cell store, keyed by
// experiments.GridCellFingerprint: a cell that already ran — in any
// grid sharing its configuration — is served from here with its full
// row stream instead of re-simulating. Entries are exact prior results,
// so a cache hit is byte-identical on the wire to a fresh simulation;
// the cache only ever trades compute, never output. Eviction is FIFO at
// a fixed entry capacity, which keeps the policy deterministic given
// the same job sequence.
type cellCache struct {
	mu    sync.Mutex
	cap   int
	cells map[string]*experiments.GridCell
	order []string
	size  *obs.Gauge // nil-safe
}

// newCellCache builds a cache of capacity entries (0 = 4096, negative
// disables caching entirely).
func newCellCache(capacity int, size *obs.Gauge) *cellCache {
	if capacity == 0 {
		capacity = 4096
	}
	if capacity < 0 {
		capacity = 0
	}
	return &cellCache{cap: capacity, cells: make(map[string]*experiments.GridCell), size: size}
}

// get returns the cached cell for key, or nil. Callers must not mutate
// the result — it is shared across every job that hits the key.
func (c *cellCache) get(key string) *experiments.GridCell {
	if c.cap == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cells[key]
}

// put stores a completed cell, evicting the oldest entry at capacity.
func (c *cellCache) put(key string, cell *experiments.GridCell) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	if _, ok := c.cells[key]; !ok {
		for len(c.order) >= c.cap {
			delete(c.cells, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.cells[key] = cell
	n := len(c.cells)
	c.mu.Unlock()
	c.size.Set(int64(n))
}

// len returns the live entry count.
func (c *cellCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// cacheSink captures each freshly streamed (non-restored) cell into the
// cache as it completes: rows are copied out of the stream (Row.Values
// is aliased scratch) into an owned GridCell, stored under the cell's
// precomputed fingerprint on CellDone. Cells served from the cache also
// pass through here; re-storing the same value under the same key is a
// no-op refresh.
type cacheSink struct {
	cache *cellCache
	keys  map[int]string // global cell index -> cache key
	cur   *experiments.GridCell
	key   string
}

func (s *cacheSink) CellStart(cell experiments.Cell, columns []string) error {
	s.cur = nil
	if cell.Restored || len(columns) != 3 {
		return nil
	}
	key, ok := s.keys[cell.Index]
	if !ok {
		return nil
	}
	s.key = key
	s.cur = &experiments.GridCell{Scenario: cell.Name, Seed: cell.Seed}
	return nil
}

func (s *cacheSink) Row(cell experiments.Cell, row experiments.Row) error {
	if s.cur == nil || len(row.Values) != 3 {
		return nil
	}
	s.cur.Final = append(s.cur.Final, row.Values[0])
	s.cur.Tentative = append(s.cur.Tentative, row.Values[1])
	s.cur.None = append(s.cur.None, row.Values[2])
	return nil
}

func (s *cacheSink) AuditEvent(cell experiments.Cell, report adversary.Report) error {
	if s.cur != nil {
		s.cur.Audit = report
	}
	return nil
}

func (s *cacheSink) CellDone(cell experiments.Cell) error {
	if s.cur != nil {
		s.cache.put(s.key, s.cur)
		s.cur = nil
	}
	return nil
}
