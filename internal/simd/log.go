package simd

import "sync"

// eventLog is one job's append-only wire-event buffer plus the follower
// rendezvous: the job's WireSink writes whole NDJSON lines into it, and
// any number of stream handlers replay from offset zero then block for
// more. Because json.Encoder hands each event to Write as one call, the
// buffer only ever grows by whole lines — a follower chunk never splits
// an event, which is what lets the SSE framing wrap lines naively.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write appends one encoded event and wakes every follower.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.buf = append(l.buf, p...)
	l.mu.Unlock()
	l.cond.Broadcast()
	return len(p), nil
}

// close marks the stream complete; followers drain and finish.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// next blocks until bytes beyond off exist or the log closes. It
// returns the new bytes (copied — the caller writes them outside the
// lock), the new offset, and whether the stream is complete.
func (l *eventLog) next(off int) ([]byte, int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) <= off && !l.closed {
		l.cond.Wait()
	}
	if len(l.buf) > off {
		chunk := make([]byte, len(l.buf)-off)
		copy(chunk, l.buf[off:])
		off = len(l.buf)
		return chunk, off, l.closed
	}
	return nil, off, true
}

// size returns the bytes buffered so far.
func (l *eventLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
