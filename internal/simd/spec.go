// Package simd implements the long-lived simulation daemon: an HTTP
// service that accepts scenario-sweep and scenario-grid jobs as JSON,
// schedules them on a shared worker budget, and streams each job's
// results back as the NDJSON wire encoding of the experiments.Sink
// event grammar.
//
// The daemon inherits every determinism guarantee of the batch CLIs:
// a job's streamed bytes are identical at any worker budget, whether
// its cells were freshly simulated, served from the completed-cell
// cache, or restored from the checkpoint of an interrupted run — so a
// client replaying the stream through the CSV sinks reconstructs the
// exact files `cmd/scenario` would have written.
package simd

import (
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/adversary"
	"github.com/dsn2020-algorand/incentives/internal/experiments"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// Job kinds.
const (
	KindGrid     = "grid"
	KindScenario = "scenario"
)

// CommonSpec mirrors experiments.CommonConfig plus the protocol tau
// overrides — the execution-shaping knobs every CLI spells as
// -workers/-weightBackend/-weights/-sparse/-tauStep/-tauFinal. Values
// resolve through the same parsers as the CLI flags, so a job spec and
// a command line that spell the same experiment produce the same
// config, the same fingerprint, and byte-identical results.
type CommonSpec struct {
	// Workers is the job's worker-slot request against the daemon's
	// budget (0 = as many as the host would use, clamped to the budget).
	// Like the CLI flag, it never changes a single output bit.
	Workers int `json:"workers,omitempty"`
	// WeightBackend is the CLI -weightBackend spelling: "" or "direct",
	// or "indexed".
	WeightBackend string `json:"weight_backend,omitempty"`
	// Weights is the CLI -weights profile spec (e.g. "zipf:1.1"); empty
	// keeps ledger weights.
	Weights string `json:"weights,omitempty"`
	// Sparse is the CLI -sparse spelling: "" or "auto", "on", "off".
	Sparse string `json:"sparse,omitempty"`
	// TauStep/TauFinal override the committee taus exactly like the CLI
	// flags (0 keeps the default).
	TauStep  float64 `json:"tau_step,omitempty"`
	TauFinal float64 `json:"tau_final,omitempty"`
}

// resolve parses the spec into the experiment-layer values.
func (c CommonSpec) resolve() (experiments.CommonConfig, protocol.Params, error) {
	var common experiments.CommonConfig
	backend, err := experiments.ParseWeightBackend(c.WeightBackend)
	if err != nil {
		return common, protocol.Params{}, err
	}
	profile, err := experiments.ParseWeightProfile(c.Weights)
	if err != nil {
		return common, protocol.Params{}, err
	}
	mode, err := protocol.ParseSparseMode(c.Sparse)
	if err != nil {
		return common, protocol.Params{}, err
	}
	params := protocol.DefaultParams()
	if c.TauStep != 0 {
		params.TauStep = c.TauStep
	}
	if c.TauFinal != 0 {
		params.TauFinal = c.TauFinal
	}
	common.Workers = c.Workers
	common.WeightBackend = backend
	common.WeightProfile = profile
	common.Sparse = mode
	return common, params, nil
}

// GridJobSpec is a scenario×seed grid job, mirroring the `cmd/scenario
// -full` surface: named scenarios (empty = every registered one)
// crossed with seeds 1..Seeds at Nodes nodes.
type GridJobSpec struct {
	CommonSpec
	// Scenarios names the grid's scenario axis; empty selects every
	// registered scenario.
	Scenarios []string `json:"scenarios,omitempty"`
	// Seeds is the seed-axis length: the grid runs seeds 1..Seeds
	// (default 3), exactly like -fullSeeds.
	Seeds int `json:"seeds,omitempty"`
	// Nodes is the network size per cell (default 500).
	Nodes int `json:"nodes,omitempty"`
	// Rounds is the rounds per cell (default 12).
	Rounds int `json:"rounds,omitempty"`
}

// Config resolves the spec into the grid config the CLI would build
// from the equivalent flags. The spec's Weights string doubles as the
// fingerprint's weightsSpec.
func (s GridJobSpec) Config() (experiments.ScenarioGridConfig, error) {
	cfg := experiments.FullScenarioGridConfig()
	common, params, err := s.CommonSpec.resolve()
	if err != nil {
		return cfg, err
	}
	cfg.CommonConfig = common
	cfg.Params = params
	if len(s.Scenarios) > 0 {
		cfg.Scenarios = s.Scenarios
	}
	if s.Nodes > 0 {
		cfg.Nodes = s.Nodes
	}
	if s.Rounds > 0 {
		cfg.Rounds = s.Rounds
	}
	seeds := s.Seeds
	if seeds == 0 {
		seeds = 3
	}
	if seeds < 1 {
		return cfg, fmt.Errorf("simd: grid needs seeds >= 1, got %d", seeds)
	}
	cfg.Seeds = make([]int64, seeds)
	for i := range cfg.Seeds {
		cfg.Seeds[i] = int64(i + 1)
	}
	// Resolve scenario names eagerly so a bad submission fails at the
	// API instead of after queueing.
	for _, name := range cfg.Scenarios {
		if _, ok := adversary.Lookup(name); !ok {
			return cfg, fmt.Errorf("simd: unknown scenario %q", name)
		}
	}
	return cfg, nil
}

// ScenarioJobSpec is a per-scenario sweep job, mirroring the default
// `cmd/scenario` surface: Runs independent simulations of one scenario,
// streamed run by run.
type ScenarioJobSpec struct {
	CommonSpec
	// Scenario names a registered scenario (default
	// eclipse_equivocation, like the CLI).
	Scenario string `json:"scenario,omitempty"`
	// Nodes is the network size per run (default 100).
	Nodes int `json:"nodes,omitempty"`
	// Rounds is the rounds per run (default 12).
	Rounds int `json:"rounds,omitempty"`
	// Runs is the number of independent simulations (default 4).
	Runs int `json:"runs,omitempty"`
	// Seed is the base seed; run i derives its own (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// Config resolves the spec into the sweep config the CLI would build.
func (s ScenarioJobSpec) Config() (experiments.ScenarioConfig, error) {
	name := s.Scenario
	if name == "" {
		name = adversary.EclipseEquivocation
	}
	if _, ok := adversary.Lookup(name); !ok {
		return experiments.ScenarioConfig{}, fmt.Errorf("simd: unknown scenario %q", name)
	}
	cfg := experiments.DefaultScenarioConfig(name)
	common, params, err := s.CommonSpec.resolve()
	if err != nil {
		return cfg, err
	}
	cfg.CommonConfig = common
	cfg.Params = params
	if s.Nodes > 0 {
		cfg.Nodes = s.Nodes
	}
	if s.Rounds > 0 {
		cfg.Rounds = s.Rounds
	}
	if s.Runs > 0 {
		cfg.Runs = s.Runs
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg, nil
}

// JobRequest is the POST /api/v1/jobs body: a tagged union over the job
// kinds.
type JobRequest struct {
	// Kind selects the payload: "grid" (the default) or "scenario".
	Kind     string           `json:"kind,omitempty"`
	Grid     *GridJobSpec     `json:"grid,omitempty"`
	Scenario *ScenarioJobSpec `json:"scenario,omitempty"`
}

// normalize fills the default kind and rejects mismatched payloads.
func (r *JobRequest) normalize() error {
	switch r.Kind {
	case "", KindGrid:
		r.Kind = KindGrid
		if r.Scenario != nil {
			return fmt.Errorf("simd: grid job carries a scenario payload")
		}
		if r.Grid == nil {
			r.Grid = &GridJobSpec{}
		}
	case KindScenario:
		if r.Grid != nil {
			return fmt.Errorf("simd: scenario job carries a grid payload")
		}
		if r.Scenario == nil {
			r.Scenario = &ScenarioJobSpec{}
		}
	default:
		return fmt.Errorf("simd: unknown job kind %q (want %q or %q)", r.Kind, KindGrid, KindScenario)
	}
	return nil
}

// fingerprint digests the job's full result-shaping configuration; grid
// jobs use the checkpoint fingerprint (so daemon checkpoints interoperate
// with resume validation), scenario jobs an analogous sweep digest.
func (r *JobRequest) fingerprint() (string, error) {
	switch r.Kind {
	case KindScenario:
		cfg, err := r.Scenario.Config()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("sweep|scenario=%s|nodes=%d|rounds=%d|runs=%d|seed=%d|fanout=%d|params=%+v|stake=%+v|backend=%d|weights=%s|sparse=%d",
			cfg.Scenario, cfg.Nodes, cfg.Rounds, cfg.Runs, cfg.Seed, cfg.Fanout,
			cfg.Params, cfg.StakeDist, cfg.WeightBackend, r.Scenario.Weights, cfg.Sparse), nil
	default:
		cfg, err := r.Grid.Config()
		if err != nil {
			return "", err
		}
		return experiments.GridFingerprint(cfg, r.Grid.Weights), nil
	}
}
