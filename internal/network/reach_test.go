package network

import (
	"math"
	"testing"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

func TestBranchingFactor(t *testing.T) {
	a := ReachAnalysis{Fanout: 5, RelayFrac: 0.8, LossProb: 0.2}
	if got := a.BranchingFactor(); math.Abs(got-3.2) > 1e-12 {
		t.Errorf("R0 = %v, want 3.2", got)
	}
}

func TestExpectedCoverageFixedPoint(t *testing.T) {
	// The fixed point must satisfy c = 1 - exp(-R0 c).
	a := ReachAnalysis{Fanout: 5, RelayFrac: 1, LossProb: 0}
	c := a.ExpectedCoverage()
	if math.Abs(c-(1-math.Exp(-a.BranchingFactor()*c))) > 1e-9 {
		t.Errorf("coverage %v is not a fixed point", c)
	}
	if c < 0.99 {
		t.Errorf("R0=5 coverage %v, want ~0.993", c)
	}
}

func TestExpectedCoverageBelowPercolation(t *testing.T) {
	a := ReachAnalysis{Fanout: 2, RelayFrac: 0.4, LossProb: 0.2}
	if a.BranchingFactor() > 1 {
		t.Fatal("test setup: want subcritical R0")
	}
	if got := a.ExpectedCoverage(); got != 0 {
		t.Errorf("subcritical coverage = %v, want 0", got)
	}
}

func TestExpectedCoverageMonotoneInLoss(t *testing.T) {
	prev := 1.0
	for _, loss := range []float64{0, 0.2, 0.4, 0.6} {
		a := ReachAnalysis{Fanout: 5, RelayFrac: 0.9, LossProb: loss}
		c := a.ExpectedCoverage()
		if c > prev+1e-12 {
			t.Errorf("coverage not monotone: %v at loss %v after %v", c, loss, prev)
		}
		prev = c
	}
}

func TestStaticReachFullyRelaying(t *testing.T) {
	net, _, _ := build(t, 120, 5, 0)
	reach := net.StaticReach(0)
	// A 5-out random digraph is almost surely a single giant component;
	// a couple of zero-in-degree nodes may be unreachable.
	if reach < 115 {
		t.Errorf("static reach = %d/120", reach)
	}
	if net.StaticReach(-1) != 0 || net.StaticReach(120) != 0 {
		t.Error("out-of-range origins should reach nothing")
	}
}

func TestStaticReachNonRelayingFrontier(t *testing.T) {
	net, _, _ := build(t, 120, 5, 0)
	for i := 1; i < 120; i++ {
		net.SetRelay(i, false)
	}
	if reach := net.StaticReach(0); reach != 6 {
		t.Errorf("reach with only the origin relaying = %d, want 6", reach)
	}
}

func TestStaticReachOfflineOrigin(t *testing.T) {
	net, _, _ := build(t, 50, 5, 0)
	net.SetOnline(0, false)
	if net.StaticReach(0) != 0 {
		t.Error("offline origin should reach nothing")
	}
}

// TestSimulatedCoverageMatchesTheory cross-checks the discrete-event
// gossip against the analytic percolation prediction within a tolerance.
func TestSimulatedCoverageMatchesTheory(t *testing.T) {
	const (
		nodes  = 400
		fanout = 5
		loss   = 0.3
		trials = 40
	)
	engine := sim.NewEngine(9)
	delivered := 0
	var rec int
	net, err := New(Config{
		N:        nodes,
		Fanout:   fanout,
		Delay:    UniformDelay{Min: time.Millisecond, Max: 2 * time.Millisecond},
		LossProb: loss,
	}, engine, func(node int, msg Message) { rec++ })
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < trials; trial++ {
		rec = 0
		net.ResetSeen()
		net.Gossip(trial%nodes, Message{ID: [32]byte{byte(trial), byte(trial >> 8), 99}, Kind: KindVote})
		_ = engine.Run(0)
		delivered += rec
	}
	simCoverage := float64(delivered) / float64(trials*nodes)
	theory := ReachAnalysis{Fanout: fanout, RelayFrac: 1, LossProb: loss}.ExpectedCoverage()
	// Allow for early die-out and finite-size effects.
	if math.Abs(simCoverage-theory) > 0.08 {
		t.Errorf("simulated coverage %.3f vs theoretical %.3f", simCoverage, theory)
	}
}
