package network

import (
	"fmt"
	"testing"
)

// TestDeliveredInlineGeometryCapped pins the memory contract: beyond 512
// nodes the per-slot inline bitmap stops growing and deliveries to high
// node IDs ride the overflow path.
func TestDeliveredInlineGeometryCapped(t *testing.T) {
	var s deliveredSet
	s.init(4096)
	if s.inlineWords != deliveredMaxInlineWords {
		t.Fatalf("inlineWords = %d, want cap %d", s.inlineWords, deliveredMaxInlineWords)
	}
	if s.words != 64 {
		t.Fatalf("words = %d, want 64", s.words)
	}
	id := id32(1)
	if !s.mark(&id, 100) || !s.mark(&id, 600) || !s.mark(&id, 4095) {
		t.Fatal("first deliveries reported duplicate")
	}
	if s.mark(&id, 100) || s.mark(&id, 600) || s.mark(&id, 4095) {
		t.Fatal("duplicates not detected across the inline/overflow split")
	}
	if len(s.bits) != len(s.slots)*deliveredMaxInlineWords {
		t.Fatalf("inline bits = %d words for %d slots; per-slot cap leaked", len(s.bits), len(s.slots))
	}
}

// TestDeliveredOverflowPromotion drives one message through the compact
// list into the promoted bitmap and checks every verdict on the way.
func TestDeliveredOverflowPromotion(t *testing.T) {
	var s deliveredSet
	s.init(600) // 10 words total, 8 inline
	id := id32(7)
	base := deliveredMaxInlineWords * 64
	// Fill the compact list past its cap; every delivery is a first.
	for k := 0; k < deliveredOverflowCap+10; k++ {
		node := base + k*2 // stay within 600
		if node >= 600 {
			break
		}
		if !s.mark(&id, node) {
			t.Fatalf("first overflow delivery to node %d reported duplicate", node)
		}
	}
	// Everything recorded pre- and post-promotion must still read as
	// duplicate, including entries replayed from the list into the bitmap.
	for k := 0; k < deliveredOverflowCap+10; k++ {
		node := base + k*2
		if node >= 600 {
			break
		}
		if s.mark(&id, node) {
			t.Fatalf("overflow delivery to node %d lost across promotion", node)
		}
	}
	// Never-delivered high nodes still read as fresh.
	if !s.mark(&id, base+1) || !s.mark(&id, 599) {
		t.Fatal("unrelated overflow nodes reported duplicate")
	}
}

// TestDeliveredOverflowEpochRecycling reuses extension pool entries
// across many rounds: stale lists and promoted bitmaps from earlier
// epochs must never leak verdicts into the current one.
func TestDeliveredOverflowEpochRecycling(t *testing.T) {
	var s deliveredSet
	s.init(700)
	base := deliveredMaxInlineWords * 64
	for round := 0; round < 30; round++ {
		for m := uint64(0); m < 40; m++ {
			id := id32(m)
			for k := 0; k < deliveredOverflowCap+4; k++ {
				node := base + (k+int(m))%(700-base)
				first := s.mark(&id, node)
				dup := s.mark(&id, node)
				if !first {
					t.Fatalf("round %d msg %d node %d: stale overflow verdict", round, m, node)
				}
				if dup {
					t.Fatalf("round %d msg %d node %d: duplicate undetected", round, m, node)
				}
			}
		}
		s.reset()
	}
}

// TestDeliveredGrowthKeepsOverflow checks that table growth preserves
// extension state: ext indices point into the pool, not the table.
func TestDeliveredGrowthKeepsOverflow(t *testing.T) {
	var s deliveredSet
	s.init(640)
	base := deliveredMaxInlineWords * 64
	const msgs = 2_000 // forces several grows
	for m := uint64(0); m < msgs; m++ {
		id := id32(m)
		if !s.mark(&id, base+int(m)%(640-base)) {
			t.Fatalf("msg %d first overflow delivery reported duplicate", m)
		}
		if !s.mark(&id, int(m)%base) {
			t.Fatalf("msg %d inline delivery reported duplicate", m)
		}
	}
	for m := uint64(0); m < msgs; m++ {
		id := id32(m)
		if s.mark(&id, base+int(m)%(640-base)) {
			t.Fatalf("msg %d overflow bit lost during growth", m)
		}
		if s.mark(&id, int(m)%base) {
			t.Fatalf("msg %d inline bit lost during growth", m)
		}
	}
}

// TestDeliveredMatchesPerNodeSetsLarge is the differential oracle at
// node counts past the inline cap: compact lists, promotions, and the
// inline window must agree with the old per-node tables on every
// (message, node) verdict. Node choice is biased towards the overflow
// range so promotions actually happen.
func TestDeliveredMatchesPerNodeSetsLarge(t *testing.T) {
	for _, nodes := range []int{600, 2100} {
		nodes := nodes
		t.Run(fmt.Sprint(nodes), func(t *testing.T) {
			for seed := 0; seed < 3; seed++ {
				var s deliveredSet
				s.init(nodes)
				ref := make([]dedupSet, nodes)
				state := uint64(seed)*0x9e3779b97f4a7c15 + uint64(nodes) + 1
				next := func() uint64 {
					state ^= state << 13
					state ^= state >> 7
					state ^= state << 17
					return state
				}
				base := deliveredMaxInlineWords * 64
				for op := 0; op < 60_000; op++ {
					switch next() % 200 {
					case 0: // occasional epoch reset
						s.reset()
						for i := range ref {
							ref[i].reset()
						}
					default:
						id := id32(next() % 300) // few messages: dense per-message fan drives promotion
						node := int(next()) % nodes
						if node < 0 {
							node = -node % nodes
						}
						if next()%4 != 0 { // bias into the overflow range
							node = base + int(next()%uint64(nodes-base))
						}
						want := ref[node].insert(&id)
						if got := s.mark(&id, node); got != want {
							t.Fatalf("seed %d op %d: mark(msg, node %d) = %v, per-node oracle says %v", seed, op, node, got, want)
						}
					}
				}
			}
		})
	}
}
