package network

import "encoding/binary"

// deliveredSet is the inverted gossip de-duplication layout: one
// open-addressed table keyed by message ID whose payload is a bitset of
// the nodes the message has reached. The per-node layout it replaces
// (dedupSet, kept as the differential oracle behind the
// network_pernode_dedup build tag) probed a distinct ~open-addressed
// table per node, so the duplicate-heavy relay path took a random cache
// miss across ~N tables for every delivery. Here a message's delivery
// state is contiguous — one cache line for N≤512 — and the common
// duplicate case is a single bit test next to the slot the probe already
// touched.
//
// Probing follows dedupSet's scheme: the ID's first 8 bytes (SHA-256
// output, already uniform) serve as probe key and hash, a prefix hit
// pays the full-ID confirm, and epoch-stamped slots make the per-round
// reset a counter bump. Bit words are zeroed lazily when a slot is
// claimed for the current epoch.
//
// Beyond 512 nodes the per-slot bitmap no longer rides along inline:
// pre-allocating slots×(N/64) words would grow as messages×N/8 bits and
// dominates memory at paper-scale node counts (ROADMAP: cap the bitset
// words per slot before -full scenario sweeps). Instead each slot keeps
// deliveredMaxInlineWords inline words covering nodes [0, 512) and
// spills deliveries to higher node IDs into a per-slot overflow: first a
// compact node-ID list (most messages reach only a handful of the high
// nodes before the round drains), promoted to a full extension bitmap
// from a recycled pool once the list saturates. Table memory is then
// slots×8 words plus extensions for the hot slots only.
type deliveredSet struct {
	slots []deliveredSlot
	// bits holds the inline per-slot delivery bitsets: slot i owns
	// bits[i*inlineWords : (i+1)*inlineWords].
	bits []uint64
	// words is the total word count a full bitmap for n nodes needs;
	// inlineWords = min(words, deliveredMaxInlineWords) of them live
	// inline, the rest in per-slot extensions.
	words       int
	inlineWords int
	// exts is the extension pool; extLive entries are claimed by slots of
	// the current epoch. reset recycles the pool wholesale.
	exts    []deliveredExt
	extLive int
	// count is the number of live (current-epoch) slots, i.e. distinct
	// messages seen this round.
	count int
	// epoch identifies the current round's population; slots from other
	// epochs are treated as empty. Starts at 1 — a zeroed slot is never
	// live.
	epoch uint32
}

type deliveredSlot struct {
	// prefix is the ID's first 8 bytes: probe key and hash in one.
	prefix uint64
	epoch  uint32
	// ext is the 1-based index of this slot's overflow extension in exts;
	// 0 means none claimed yet.
	ext int32
	// id is the full message ID, compared only on a prefix hit.
	id [32]byte
}

// deliveredExt tracks deliveries to nodes beyond the inline window for
// one slot: a compact ID list until it saturates, then a dense bitmap
// over the overflow range. list and bits keep their capacity across
// epochs via the pool.
type deliveredExt struct {
	list     []int32
	bits     []uint64
	promoted bool
}

// deliveredMinSlots is the initial table size; steady-state rounds reuse
// the grown table.
const deliveredMinSlots = 64

// deliveredMaxInlineWords caps the inline per-slot bitmap at 8 words
// (512 nodes) — one cache line, and exactly the historical layout for
// every network that fits.
const deliveredMaxInlineWords = 8

// deliveredOverflowCap is the compact-list length at which an overflow
// promotes to the dense extension bitmap.
const deliveredOverflowCap = 24

// init sizes the bitset geometry for n nodes. Must be called before the
// first mark.
func (s *deliveredSet) init(n int) {
	if n < 1 {
		n = 1
	}
	s.words = (n + 63) / 64
	s.inlineWords = s.words
	if s.inlineWords > deliveredMaxInlineWords {
		s.inlineWords = deliveredMaxInlineWords
	}
}

// adopt re-initialises a recycled set for a population of n, keeping the
// grown slot table, inline bitset, and extension pool whenever the
// inline stride is unchanged — the arena path that spares a fresh
// Network the steady-state table growth. A stride change (crossing the
// 512-node inline window in either direction) invalidates the per-slot
// bit windows, so the table and bitset are dropped and regrow lazily;
// extension buffers survive either way (promotion re-slices and zeroes
// them per claim).
func (s *deliveredSet) adopt(n int) {
	if n < 1 {
		n = 1
	}
	words := (n + 63) / 64
	inline := words
	if inline > deliveredMaxInlineWords {
		inline = deliveredMaxInlineWords
	}
	if inline != s.inlineWords {
		s.slots = nil
		s.bits = nil
	}
	s.words = words
	s.inlineWords = inline
	s.reset()
}

// reset retires every entry by bumping the epoch; table, bitset, and
// extension memory is retained, and stale state is re-initialised only
// when its slot is reclaimed.
func (s *deliveredSet) reset() {
	s.epoch++
	s.count = 0
	s.extLive = 0
	if s.epoch == 0 {
		// uint32 wrap (once per 4 billion rounds): stale slots could now
		// alias the restarted epoch sequence, so clear them for real.
		for i := range s.slots {
			s.slots[i] = deliveredSlot{}
		}
		s.epoch = 1
	}
}

// mark records that node received the message id, reporting whether this
// was the first delivery of id to node (true = deliver, false =
// duplicate).
func (s *deliveredSet) mark(id *[32]byte, node int) bool {
	if s.epoch == 0 {
		s.epoch = 1 // lazy init: a zeroed slot must never look live
	}
	if s.inlineWords == 0 {
		s.inlineWords = 1 // tolerate a zero-value set in tests
		s.words = 1
	}
	if s.count*4 >= len(s.slots)*3 {
		s.grow()
	}
	prefix := binary.LittleEndian.Uint64(id[:8])
	mask := uint64(len(s.slots) - 1)
	for i := prefix & mask; ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.epoch != s.epoch {
			// First sighting of this message this round: claim the slot
			// and zero its inline delivery words before recording node.
			sl.prefix = prefix
			sl.epoch = s.epoch
			sl.id = *id
			sl.ext = 0
			s.count++
			w := s.bits[int(i)*s.inlineWords : (int(i)+1)*s.inlineWords]
			for j := range w {
				w[j] = 0
			}
			if node>>6 >= s.inlineWords {
				return s.markOverflow(sl, node)
			}
			w[node>>6] = 1 << (uint(node) & 63)
			return true
		}
		if sl.prefix == prefix && sl.id == *id {
			if node>>6 >= s.inlineWords {
				return s.markOverflow(sl, node)
			}
			w := &s.bits[int(i)*s.inlineWords+node>>6]
			bit := uint64(1) << (uint(node) & 63)
			if *w&bit != 0 {
				return false
			}
			*w |= bit
			return true
		}
	}
}

// markOverflow records a delivery to a node beyond the inline window,
// claiming this slot's extension on first use.
func (s *deliveredSet) markOverflow(sl *deliveredSlot, node int) bool {
	if sl.ext == 0 {
		if s.extLive == len(s.exts) {
			s.exts = append(s.exts, deliveredExt{})
		}
		s.extLive++
		sl.ext = int32(s.extLive)
		e := &s.exts[s.extLive-1]
		e.list = append(e.list[:0], int32(node))
		e.promoted = false
		return true
	}
	e := &s.exts[sl.ext-1]
	off := node - s.inlineWords*64
	if e.promoted {
		w := &e.bits[off>>6]
		bit := uint64(1) << (uint(off) & 63)
		if *w&bit != 0 {
			return false
		}
		*w |= bit
		return true
	}
	for _, id := range e.list {
		if int(id) == node {
			return false
		}
	}
	if len(e.list) < deliveredOverflowCap {
		e.list = append(e.list, int32(node))
		return true
	}
	// The compact list saturated: promote to the dense bitmap covering
	// the overflow range and replay the list into it.
	need := s.words - s.inlineWords
	if cap(e.bits) < need {
		e.bits = make([]uint64, need)
	} else {
		e.bits = e.bits[:need]
		for j := range e.bits {
			e.bits[j] = 0
		}
	}
	base := s.inlineWords * 64
	for _, id := range e.list {
		o := int(id) - base
		e.bits[o>>6] |= 1 << (uint(o) & 63)
	}
	e.bits[off>>6] |= 1 << (uint(off) & 63)
	e.promoted = true
	return true
}

// grow doubles the table (allocating the initial table on first use),
// re-inserting the live epoch's slots and moving their inline bit words;
// extension indices stay valid because the pool is table-independent.
// Stale entries are dropped.
func (s *deliveredSet) grow() {
	if s.words == 0 {
		s.words = 1 // tolerate a zero-value set in tests
		s.inlineWords = 1
	}
	n := len(s.slots) * 2
	if n == 0 {
		n = deliveredMinSlots
	}
	oldSlots := s.slots
	oldBits := s.bits
	s.slots = make([]deliveredSlot, n)
	s.bits = make([]uint64, n*s.inlineWords)
	mask := uint64(n - 1)
	for i := range oldSlots {
		sl := &oldSlots[i]
		if sl.epoch != s.epoch {
			continue
		}
		j := sl.prefix & mask
		for s.slots[j].epoch == s.epoch {
			j = (j + 1) & mask
		}
		s.slots[j] = *sl
		copy(s.bits[int(j)*s.inlineWords:(int(j)+1)*s.inlineWords],
			oldBits[i*s.inlineWords:(i+1)*s.inlineWords])
	}
}
