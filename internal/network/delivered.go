package network

import "encoding/binary"

// deliveredSet is the inverted gossip de-duplication layout: one
// open-addressed table keyed by message ID whose payload is a bitset of
// the nodes the message has reached. The per-node layout it replaces
// (dedupSet, kept as the differential oracle behind the
// network_pernode_dedup build tag) probed a distinct ~open-addressed
// table per node, so the duplicate-heavy relay path took a random cache
// miss across ~N tables for every delivery. Here a message's delivery
// state is N/8 contiguous bytes — one cache line for N≤512 — and the
// common duplicate case is a single bit test next to the slot the probe
// already touched.
//
// Probing follows dedupSet's scheme: the ID's first 8 bytes (SHA-256
// output, already uniform) serve as probe key and hash, a prefix hit
// pays the full-ID confirm, and epoch-stamped slots make the per-round
// reset a counter bump. Bit words are zeroed lazily when a slot is
// claimed for the current epoch.
type deliveredSet struct {
	slots []deliveredSlot
	// bits holds words per-slot delivery bitsets: slot i owns
	// bits[i*words : (i+1)*words].
	bits  []uint64
	words int
	// count is the number of live (current-epoch) slots, i.e. distinct
	// messages seen this round.
	count int
	// epoch identifies the current round's population; slots from other
	// epochs are treated as empty. Starts at 1 — a zeroed slot is never
	// live.
	epoch uint32
}

type deliveredSlot struct {
	// prefix is the ID's first 8 bytes: probe key and hash in one.
	prefix uint64
	epoch  uint32
	// id is the full message ID, compared only on a prefix hit.
	id [32]byte
}

// deliveredMinSlots is the initial table size; steady-state rounds reuse
// the grown table.
const deliveredMinSlots = 64

// init sizes the bitset geometry for n nodes. Must be called before the
// first mark.
func (s *deliveredSet) init(n int) {
	if n < 1 {
		n = 1
	}
	s.words = (n + 63) / 64
}

// reset retires every entry by bumping the epoch; table and bitset
// memory is retained, and stale bit words are re-zeroed only when their
// slot is reclaimed.
func (s *deliveredSet) reset() {
	s.epoch++
	s.count = 0
	if s.epoch == 0 {
		// uint32 wrap (once per 4 billion rounds): stale slots could now
		// alias the restarted epoch sequence, so clear them for real.
		for i := range s.slots {
			s.slots[i] = deliveredSlot{}
		}
		s.epoch = 1
	}
}

// mark records that node received the message id, reporting whether this
// was the first delivery of id to node (true = deliver, false =
// duplicate).
func (s *deliveredSet) mark(id *[32]byte, node int) bool {
	if s.epoch == 0 {
		s.epoch = 1 // lazy init: a zeroed slot must never look live
	}
	if s.count*4 >= len(s.slots)*3 {
		s.grow()
	}
	prefix := binary.LittleEndian.Uint64(id[:8])
	mask := uint64(len(s.slots) - 1)
	for i := prefix & mask; ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.epoch != s.epoch {
			// First sighting of this message this round: claim the slot
			// and zero its delivery words before setting node's bit.
			sl.prefix = prefix
			sl.epoch = s.epoch
			sl.id = *id
			s.count++
			w := s.bits[int(i)*s.words : (int(i)+1)*s.words]
			for j := range w {
				w[j] = 0
			}
			w[node>>6] = 1 << (uint(node) & 63)
			return true
		}
		if sl.prefix == prefix && sl.id == *id {
			w := &s.bits[int(i)*s.words+node>>6]
			bit := uint64(1) << (uint(node) & 63)
			if *w&bit != 0 {
				return false
			}
			*w |= bit
			return true
		}
	}
}

// grow doubles the table (allocating the initial table on first use),
// re-inserting the live epoch's slots and moving their bit words; stale
// entries are dropped.
func (s *deliveredSet) grow() {
	if s.words == 0 {
		s.words = 1 // tolerate a zero-value set in tests
	}
	n := len(s.slots) * 2
	if n == 0 {
		n = deliveredMinSlots
	}
	oldSlots := s.slots
	oldBits := s.bits
	s.slots = make([]deliveredSlot, n)
	s.bits = make([]uint64, n*s.words)
	mask := uint64(n - 1)
	for i := range oldSlots {
		sl := &oldSlots[i]
		if sl.epoch != s.epoch {
			continue
		}
		j := sl.prefix & mask
		for s.slots[j].epoch == s.epoch {
			j = (j + 1) & mask
		}
		s.slots[j] = *sl
		copy(s.bits[int(j)*s.words:(int(j)+1)*s.words], oldBits[i*s.words:(i+1)*s.words])
	}
}
