package network

import "math"

// ReachAnalysis predicts gossip coverage analytically, letting tests and
// experiments cross-check the simulated percolation against theory: a
// push epidemic over a k-out digraph where only a fraction of nodes relay
// and each push survives per-hop loss independently.
type ReachAnalysis struct {
	// Fanout is the out-degree k.
	Fanout int
	// RelayFrac is the fraction of nodes that forward messages.
	RelayFrac float64
	// LossProb is the per-hop Bernoulli loss.
	LossProb float64
}

// BranchingFactor returns the epidemic's effective branching factor
// R0 = k · relay · (1 − loss): the expected number of onward infections
// per relaying node.
func (a ReachAnalysis) BranchingFactor() float64 {
	return float64(a.Fanout) * a.RelayFrac * (1 - a.LossProb)
}

// ExpectedCoverage solves the standard epidemic fixed point
// c = 1 − exp(−R0·c) for the asymptotic fraction of nodes reached by a
// message that does not die out early. Below the percolation threshold
// (R0 <= 1) coverage collapses to zero.
func (a ReachAnalysis) ExpectedCoverage() float64 {
	r0 := a.BranchingFactor()
	if r0 <= 1 {
		return 0
	}
	c := 0.5
	for i := 0; i < 100; i++ {
		next := 1 - math.Exp(-r0*c)
		if math.Abs(next-c) < 1e-12 {
			return next
		}
		c = next
	}
	return c
}

// StaticReach runs a breadth-first search over the realised topology
// counting the nodes reachable from origin when pushes never fail
// (structural reachability — the upper bound on gossip coverage). Nodes
// that do not relay still receive but do not forward.
func (n *Network) StaticReach(origin int) int {
	if origin < 0 || origin >= n.cfg.N || !n.online[origin] {
		return 0
	}
	visited := make([]bool, n.cfg.N)
	queue := []int{origin}
	visited[origin] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur != origin && !n.relay[cur] {
			continue // receives but does not forward
		}
		for _, peer := range n.peers[cur] {
			if visited[peer] || !n.online[peer] {
				continue
			}
			visited[peer] = true
			count++
			queue = append(queue, peer)
		}
	}
	return count
}
