//go:build !network_pernode_dedup

package network

// seenSet is the gossip de-duplication tracker the Network uses. The
// default build routes it to the per-message delivered-bitmap layout;
// building with -tags network_pernode_dedup swaps in the older per-node
// open-addressed tables as a differential oracle (see seen_pernode.go).
type seenSet struct {
	d deliveredSet
}

func (s *seenSet) init(n int)                       { s.d.init(n) }
func (s *seenSet) adopt(n int)                      { s.d.adopt(n) }
func (s *seenSet) reset()                           { s.d.reset() }
func (s *seenSet) mark(id *[32]byte, node int) bool { return s.d.mark(id, node) }
