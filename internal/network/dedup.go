package network

import "encoding/binary"

// dedupSet is the per-node gossip de-duplication set: an open-addressed
// hash set of 32-byte message IDs probed on a cheap 8-byte prefix, with
// epoch-stamped slots so that the per-round reset is a counter bump
// instead of a table clear.
//
// Message IDs are SHA-256 outputs, so their first 8 bytes are already a
// uniformly distributed hash — probing compares one word per slot instead
// of hashing and comparing the full 32-byte key the way a
// map[[32]byte]struct{} must, and only a prefix hit (almost always a true
// duplicate) pays the full-ID confirm. Slots stamped with an older epoch
// are free: ResetSeen retires a whole round's population in O(nodes).
type dedupSet struct {
	slots []dedupSlot
	// count is the number of live (current-epoch) slots.
	count int
	// epoch identifies the current round's population; slots from other
	// epochs are treated as empty. Starts at 1 — a zeroed slot is never
	// live.
	epoch uint32
}

type dedupSlot struct {
	// prefix is the ID's first 8 bytes: probe key and hash in one.
	prefix uint64
	epoch  uint32
	// id is the full message ID, compared only on a prefix hit.
	id [32]byte
}

// dedupMinSlots is the initial table size; steady-state rounds re-use the
// grown table, so this only matters for the first round's growth path.
const dedupMinSlots = 64

// reset retires every entry by bumping the epoch. The table memory is
// retained so steady-state rounds insert into an already-sized table.
func (s *dedupSet) reset() {
	s.epoch++
	s.count = 0
	if s.epoch == 0 {
		// uint32 wrap (once per 4 billion rounds): stale slots could now
		// alias the restarted epoch sequence, so clear them for real.
		for i := range s.slots {
			s.slots[i] = dedupSlot{}
		}
		s.epoch = 1
	}
}

// insert adds id to the set, reporting whether it was absent (true = first
// sighting, false = duplicate).
func (s *dedupSet) insert(id *[32]byte) bool {
	if s.epoch == 0 {
		s.epoch = 1 // lazy init: a zeroed slot must never look live
	}
	if s.count*4 >= len(s.slots)*3 {
		s.grow()
	}
	prefix := binary.LittleEndian.Uint64(id[:8])
	mask := uint64(len(s.slots) - 1)
	for i := prefix & mask; ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.epoch != s.epoch {
			sl.prefix = prefix
			sl.epoch = s.epoch
			sl.id = *id
			s.count++
			return true
		}
		if sl.prefix == prefix && sl.id == *id {
			return false
		}
	}
}

// grow doubles the table (allocating the initial table on first use) and
// re-inserts the live epoch's entries; stale entries are dropped.
func (s *dedupSet) grow() {
	n := len(s.slots) * 2
	if n == 0 {
		n = dedupMinSlots
	}
	old := s.slots
	s.slots = make([]dedupSlot, n)
	mask := uint64(n - 1)
	for i := range old {
		sl := &old[i]
		if sl.epoch != s.epoch {
			continue
		}
		j := sl.prefix & mask
		for s.slots[j].epoch == s.epoch {
			j = (j + 1) & mask
		}
		s.slots[j] = *sl
	}
}
