package network

// LinkFault describes the fault-overlay verdict for one directed gossip
// hop. The zero value is a healthy link.
type LinkFault struct {
	// Drop severs the hop outright (partitions, eclipses). Dropped pushes
	// consume no randomness, so an overlay that never drops-by-chance
	// keeps the delay/loss streams bit-identical to an overlay-free run.
	Drop bool
	// Loss is an additional per-push Bernoulli drop probability applied
	// after the network's base LossProb (loss bursts). Zero draws nothing.
	Loss float64
	// DelayScale multiplies the sampled hop delay when > 1 (delay
	// spikes); values <= 1 leave the delay untouched.
	DelayScale float64
}

// FaultOverlay is the network-fault injection seam: when installed, every
// push consults Link for the (from, to) hop before scheduling delivery.
// Implementations must be deterministic pure functions of their own state
// — the overlay is consulted inside the simulation's hot path and any
// hidden randomness would break run reproducibility.
type FaultOverlay interface {
	Link(from, to int) LinkFault
}

// SetOverlay installs (or, with nil, removes) the fault overlay.
// maxDelayScale is the largest DelayScale the overlay will ever return;
// it is folded into the engine's scheduling-horizon hint so delay-spiked
// hops keep the calendar queue's O(1) bucket route.
func (n *Network) SetOverlay(o FaultOverlay, maxDelayScale float64) {
	n.overlay = o
	if o == nil || maxDelayScale < 1 {
		maxDelayScale = 1
	}
	n.overlayScale = maxDelayScale
	n.hintHorizon()
}
