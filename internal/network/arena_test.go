package network

import (
	"reflect"
	"testing"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

// TestArenaTopologyBitIdentical pins the arena transparency contract at
// the topology level: a network built on a warm arena (carrying a
// previous, differently-sized run's slabs) must draw exactly the peer
// lists a fresh build does, because duplicate and self picks burn rng
// draws identically in both paths.
func TestArenaTopologyBitIdentical(t *testing.T) {
	h := func(int, Message) {}
	delay := UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond}

	ar := &Arena{}
	// Warm the arena with a larger run so recycled slabs carry stale data.
	if _, err := New(Config{N: 120, Fanout: 7, Delay: delay, Arena: ar}, sim.NewEngine(9), h); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Config{N: 60, Fanout: 5, Delay: delay}, sim.NewEngine(42), h)
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := New(Config{N: 60, Fanout: 5, Delay: delay, Arena: ar}, sim.NewEngine(42), h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if !reflect.DeepEqual(fresh.Peers(i), recycled.Peers(i)) {
			t.Fatalf("node %d peers diverge: fresh %v, recycled %v", i, fresh.Peers(i), recycled.Peers(i))
		}
	}
}

// TestArenaSeenRecycleBitIdentical pins the dedup-table recycling: one
// arena alternating between populations on either side of the 512-node
// inline-bitmap window (where the per-slot stride changes and the table
// must be dropped) and re-running the small population (where the grown
// table is retained wholesale) must produce delivery traces and stats
// identical to fresh networks every time.
func TestArenaSeenRecycleBitIdentical(t *testing.T) {
	run := func(ar *Arena, n int, seed int64) (*recorder, Stats) {
		engine := sim.NewEngine(seed)
		rec := newRecorder()
		net, err := New(Config{
			N:        n,
			Fanout:   5,
			Delay:    UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond},
			LossProb: 0.05,
			Arena:    ar,
		}, engine, rec.handle)
		if err != nil {
			t.Fatal(err)
		}
		for wave := byte(0); wave < 3; wave++ {
			net.Gossip(int(wave), Message{ID: [32]byte{wave + 1}, Kind: KindVote, Origin: int(wave)})
			if err := engine.Run(0); err != nil {
				t.Fatal(err)
			}
			net.ResetSeen()
		}
		return rec, net.Stats()
	}

	ar := &Arena{}
	// small → large → small: two stride changes plus one same-size reuse.
	for i, n := range []int{80, 600, 80, 80} {
		seed := int64(11 + i)
		freshRec, freshStats := run(nil, n, seed)
		recycledRec, recycledStats := run(ar, n, seed)
		if !reflect.DeepEqual(freshRec.delivered, recycledRec.delivered) {
			t.Fatalf("pass %d (n=%d): delivery traces diverge between fresh and recycled networks", i, n)
		}
		if freshStats != recycledStats {
			t.Fatalf("pass %d (n=%d): stats diverge: fresh %+v, recycled %+v", i, n, freshStats, recycledStats)
		}
	}
}

// TestArenaGossipBitIdentical runs a full gossip wave on fresh and
// recycled networks and compares delivery traces and stats.
func TestArenaGossipBitIdentical(t *testing.T) {
	run := func(ar *Arena) (*recorder, Stats) {
		engine := sim.NewEngine(7)
		rec := newRecorder()
		net, err := New(Config{
			N:        80,
			Fanout:   5,
			Delay:    UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond},
			LossProb: 0.1,
			Arena:    ar,
		}, engine, rec.handle)
		if err != nil {
			t.Fatal(err)
		}
		net.Gossip(3, Message{ID: [32]byte{1}, Kind: KindProposal, Origin: 3})
		if err := engine.Run(0); err != nil {
			t.Fatal(err)
		}
		return rec, net.Stats()
	}

	ar := &Arena{}
	run(ar) // warm pass populates the arena
	freshRec, freshStats := run(nil)
	recycledRec, recycledStats := run(ar)
	if !reflect.DeepEqual(freshRec.delivered, recycledRec.delivered) {
		t.Fatal("delivery traces diverge between fresh and recycled networks")
	}
	if freshStats != recycledStats {
		t.Fatalf("stats diverge: fresh %+v, recycled %+v", freshStats, recycledStats)
	}
}
