package network

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

func id32(n uint64) [32]byte {
	var id [32]byte
	// Spread bits so prefixes differ; tail bytes make IDs unique even
	// when prefixes collide in dedicated tests.
	binary.LittleEndian.PutUint64(id[:8], n*0x9e3779b97f4a7c15)
	binary.LittleEndian.PutUint64(id[24:], n)
	return id
}

func TestDedupInsertAndDuplicate(t *testing.T) {
	var s dedupSet
	for i := uint64(0); i < 100; i++ {
		id := id32(i)
		if !s.insert(&id) {
			t.Fatalf("first insert of id %d reported duplicate", i)
		}
	}
	for i := uint64(0); i < 100; i++ {
		id := id32(i)
		if s.insert(&id) {
			t.Fatalf("second insert of id %d reported new", i)
		}
	}
}

func TestDedupPrefixCollision(t *testing.T) {
	// Same 8-byte prefix, different tails: the full-ID confirm must keep
	// them distinct instead of treating the second as a duplicate.
	var a, b [32]byte
	binary.LittleEndian.PutUint64(a[:8], 0xdeadbeef)
	binary.LittleEndian.PutUint64(b[:8], 0xdeadbeef)
	a[31], b[31] = 1, 2

	var s dedupSet
	if !s.insert(&a) {
		t.Fatal("insert(a) reported duplicate")
	}
	if !s.insert(&b) {
		t.Fatal("insert(b) with colliding prefix but different tail reported duplicate")
	}
	if s.insert(&a) || s.insert(&b) {
		t.Fatal("re-insert after prefix collision lost an entry")
	}
}

func TestDedupResetRetiresEntries(t *testing.T) {
	var s dedupSet
	id := id32(7)
	if !s.insert(&id) {
		t.Fatal("fresh set reported duplicate")
	}
	s.reset()
	if !s.insert(&id) {
		t.Fatal("entry survived an epoch reset")
	}
	if s.insert(&id) {
		t.Fatal("duplicate not detected after reset re-insert")
	}
}

func TestDedupGrowth(t *testing.T) {
	var s dedupSet
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		id := id32(i)
		if !s.insert(&id) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if s.count != n {
		t.Fatalf("count = %d, want %d", s.count, n)
	}
	if load := float64(s.count) / float64(len(s.slots)); load > 0.75 {
		t.Fatalf("load factor %.2f exceeds 3/4", load)
	}
	// Growth must preserve the live population exactly.
	for i := uint64(0); i < n; i++ {
		id := id32(i)
		if s.insert(&id) {
			t.Fatalf("entry %d lost during growth", i)
		}
	}
}

func TestDedupManyEpochsReuseTable(t *testing.T) {
	var s dedupSet
	for round := 0; round < 50; round++ {
		for i := uint64(0); i < 500; i++ {
			id := id32(i)
			if !s.insert(&id) {
				t.Fatalf("round %d: stale duplicate for id %d", round, i)
			}
		}
		size := len(s.slots)
		s.reset()
		if len(s.slots) != size {
			t.Fatalf("round %d: reset changed table size %d -> %d", round, size, len(s.slots))
		}
	}
}

func TestDedupEpochWraparound(t *testing.T) {
	var s dedupSet
	id := id32(1)
	s.insert(&id)
	s.epoch = math.MaxUint32
	other := id32(2)
	if !s.insert(&other) {
		t.Fatal("insert at max epoch reported duplicate")
	}
	s.reset() // wraps: must clear stale slots rather than alias epoch 0/1
	if s.epoch == 0 {
		t.Fatal("epoch 0 must never be live")
	}
	if !s.insert(&other) {
		t.Fatal("entry from pre-wrap epoch survived the wraparound reset")
	}
}

func TestDedupAdversarialSequentialPrefixes(t *testing.T) {
	// Non-hashed, clustered prefixes (0,1,2,...) must still resolve via
	// linear probing — slower, never wrong.
	var s dedupSet
	for i := uint64(0); i < 2000; i++ {
		var id [32]byte
		binary.LittleEndian.PutUint64(id[:8], i)
		if !s.insert(&id) {
			t.Fatalf("sequential prefix %d reported duplicate", i)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		var id [32]byte
		binary.LittleEndian.PutUint64(id[:8], i)
		if s.insert(&id) {
			t.Fatalf("sequential prefix %d lost", i)
		}
	}
}

// TestDedupMatchesMap cross-checks the open-addressed set against the
// map[[32]byte]struct{} it replaced, over randomized insert/reset mixes.
func TestDedupMatchesMap(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			var s dedupSet
			ref := make(map[[32]byte]struct{})
			state := uint64(seed)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			for op := 0; op < 20_000; op++ {
				switch next() % 100 {
				case 0: // occasional epoch reset
					s.reset()
					clear(ref)
				default:
					id := id32(next() % 3000) // small key space forces duplicates
					_, dup := ref[id]
					ref[id] = struct{}{}
					if got := s.insert(&id); got != !dup {
						t.Fatalf("op %d: insert = %v, map says dup=%v", op, got, dup)
					}
				}
			}
		})
	}
}

// --- Inverted delivered-bitmap layout (deliveredSet) ---------------------

func TestDeliveredFirstAndDuplicate(t *testing.T) {
	var s deliveredSet
	s.init(100)
	for i := uint64(0); i < 50; i++ {
		id := id32(i)
		for node := 0; node < 100; node += 7 {
			if !s.mark(&id, node) {
				t.Fatalf("first delivery of msg %d to node %d reported duplicate", i, node)
			}
			if s.mark(&id, node) {
				t.Fatalf("second delivery of msg %d to node %d reported new", i, node)
			}
		}
	}
}

func TestDeliveredNodesIndependent(t *testing.T) {
	// A delivery to one node must not mark any other node.
	var s deliveredSet
	s.init(128)
	id := id32(1)
	if !s.mark(&id, 63) || !s.mark(&id, 64) || !s.mark(&id, 127) || !s.mark(&id, 0) {
		t.Fatal("independent nodes reported duplicates")
	}
	if s.mark(&id, 63) || s.mark(&id, 0) {
		t.Fatal("duplicates not detected per node")
	}
}

func TestDeliveredPrefixCollision(t *testing.T) {
	var a, b [32]byte
	binary.LittleEndian.PutUint64(a[:8], 0xdeadbeef)
	binary.LittleEndian.PutUint64(b[:8], 0xdeadbeef)
	a[31], b[31] = 1, 2

	var s deliveredSet
	s.init(8)
	if !s.mark(&a, 3) {
		t.Fatal("mark(a) reported duplicate")
	}
	if !s.mark(&b, 3) {
		t.Fatal("mark(b) with colliding prefix but different tail reported duplicate")
	}
	if s.mark(&a, 3) || s.mark(&b, 3) {
		t.Fatal("re-mark after prefix collision lost an entry")
	}
}

func TestDeliveredResetRetiresEntries(t *testing.T) {
	var s deliveredSet
	s.init(16)
	id := id32(7)
	if !s.mark(&id, 5) {
		t.Fatal("fresh set reported duplicate")
	}
	s.reset()
	if !s.mark(&id, 5) {
		t.Fatal("entry survived an epoch reset")
	}
	if s.mark(&id, 5) {
		t.Fatal("duplicate not detected after reset re-mark")
	}
}

func TestDeliveredGrowthPreservesBits(t *testing.T) {
	// Growth must move every live slot's delivery bitset along with it.
	var s deliveredSet
	s.init(200)
	const msgs = 5_000
	for i := uint64(0); i < msgs; i++ {
		id := id32(i)
		node := int(i) % 200
		if !s.mark(&id, node) {
			t.Fatalf("mark %d reported duplicate", i)
		}
	}
	if s.count != msgs {
		t.Fatalf("count = %d, want %d", s.count, msgs)
	}
	for i := uint64(0); i < msgs; i++ {
		id := id32(i)
		node := int(i) % 200
		if s.mark(&id, node) {
			t.Fatalf("delivery bit %d lost during growth", i)
		}
		other := (node + 1) % 200
		if !s.mark(&id, other) {
			t.Fatalf("unrelated node bit set for msg %d", i)
		}
	}
}

func TestDeliveredManyEpochsReuseTable(t *testing.T) {
	var s deliveredSet
	s.init(64)
	for round := 0; round < 50; round++ {
		for i := uint64(0); i < 500; i++ {
			id := id32(i)
			if !s.mark(&id, int(i)%64) {
				t.Fatalf("round %d: stale duplicate for id %d", round, i)
			}
		}
		size := len(s.slots)
		s.reset()
		if len(s.slots) != size {
			t.Fatalf("round %d: reset changed table size %d -> %d", round, size, len(s.slots))
		}
	}
}

func TestDeliveredEpochWraparound(t *testing.T) {
	var s deliveredSet
	s.init(8)
	id := id32(1)
	s.mark(&id, 1)
	s.epoch = math.MaxUint32
	other := id32(2)
	if !s.mark(&other, 1) {
		t.Fatal("mark at max epoch reported duplicate")
	}
	s.reset() // wraps: must clear stale slots rather than alias epoch 0/1
	if s.epoch == 0 {
		t.Fatal("epoch 0 must never be live")
	}
	if !s.mark(&other, 1) {
		t.Fatal("entry from pre-wrap epoch survived the wraparound reset")
	}
}

// TestDeliveredMatchesPerNodeSets is the differential oracle: the
// inverted per-message bitmap must agree with an array of the old
// per-node dedupSet tables on every (message, node) first-vs-duplicate
// verdict, across randomized mark/reset mixes.
func TestDeliveredMatchesPerNodeSets(t *testing.T) {
	const nodes = 70 // straddles one uint64 word boundary
	for seed := 0; seed < 5; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			var s deliveredSet
			s.init(nodes)
			ref := make([]dedupSet, nodes)
			state := uint64(seed)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			for op := 0; op < 30_000; op++ {
				switch next() % 100 {
				case 0: // occasional epoch reset
					s.reset()
					for i := range ref {
						ref[i].reset()
					}
				default:
					id := id32(next() % 2000) // small key space forces duplicates
					node := int(next() % nodes)
					want := ref[node].insert(&id)
					if got := s.mark(&id, node); got != want {
						t.Fatalf("op %d: mark(msg, node %d) = %v, per-node oracle says %v", op, node, got, want)
					}
				}
			}
		})
	}
}
