// Package network simulates Algorand's peer-to-peer gossip layer on top
// of the discrete-event engine: a random k-peer topology (the paper's
// simulations gossip to 5 random peers), per-hop message delays, relay
// with de-duplication, per-node relay policies (defectors stay online but
// refuse to forward), and offline nodes.
package network

import (
	"errors"
	"math/rand"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

// Kind tags the four Algorand message types.
type Kind uint8

// Message kinds defined by the Algorand communication protocol.
const (
	KindTransaction Kind = iota + 1
	KindVote
	KindProposal
	KindCredential
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTransaction:
		return "transaction"
	case KindVote:
		return "vote"
	case KindProposal:
		return "proposal"
	case KindCredential:
		return "credential"
	default:
		return "unknown"
	}
}

// Message is one gossiped payload. ID must uniquely identify the message
// for de-duplication; Payload is interpreted by the protocol layer.
type Message struct {
	ID      [32]byte
	Kind    Kind
	Origin  int
	Payload any
}

// Handler receives messages delivered to a node.
type Handler func(node int, msg Message)

// DelayModel samples per-hop propagation delays.
type DelayModel interface {
	// Sample draws one hop delay.
	Sample(rng *rand.Rand) time.Duration
}

// BoundedDelay is an optional DelayModel extension reporting the largest
// delay Sample can return. The network uses it to size the simulation
// engine's calendar-queue horizon (sim.Engine.HintHorizon) so every hop
// delivery takes the O(1) bucket route; models without a bound still work
// through the engine's adaptive resizing.
type BoundedDelay interface {
	MaxDelay() time.Duration
}

// UniformDelay samples uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max time.Duration
}

var (
	_ DelayModel   = UniformDelay{}
	_ BoundedDelay = UniformDelay{}
)

// Sample implements DelayModel.
func (d UniformDelay) Sample(rng *rand.Rand) time.Duration {
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + time.Duration(rng.Int63n(int64(d.Max-d.Min)))
}

// MaxDelay implements BoundedDelay.
func (d UniformDelay) MaxDelay() time.Duration {
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Max
}

// HeavyTailDelay is a uniform base delay with a probability SlowProb of a
// SlowFactor-times slower hop, modelling congested links. The tail is what
// makes a small fraction of honest nodes occasionally miss step timeouts,
// as observed in the paper's simulations.
type HeavyTailDelay struct {
	Base       UniformDelay
	SlowProb   float64
	SlowFactor float64
}

var (
	_ DelayModel   = HeavyTailDelay{}
	_ BoundedDelay = HeavyTailDelay{}
)

// Sample implements DelayModel.
func (d HeavyTailDelay) Sample(rng *rand.Rand) time.Duration {
	base := d.Base.Sample(rng)
	if d.SlowProb > 0 && rng.Float64() < d.SlowProb {
		return time.Duration(float64(base) * d.SlowFactor)
	}
	return base
}

// MaxDelay implements BoundedDelay.
func (d HeavyTailDelay) MaxDelay() time.Duration {
	base := d.Base.MaxDelay()
	if d.SlowProb > 0 && d.SlowFactor > 1 {
		return time.Duration(float64(base) * d.SlowFactor)
	}
	return base
}

// Config parameterises a Network.
type Config struct {
	// N is the number of nodes.
	N int
	// Fanout is the number of random peers each node pushes to (paper: 5).
	Fanout int
	// Delay models per-hop latency.
	Delay DelayModel
	// LossProb is the per-hop probability that a push is dropped,
	// modelling queue overflow and per-link timeouts. Losses are sampled
	// independently per (message, link), so reachability per message is a
	// percolation process whose branching factor shrinks as defectors stop
	// relaying — the coupling through which defection degrades synchrony.
	LossProb float64
	// Arena optionally recycles construction-heavy network state (the
	// topology's peer lists, the relay/online tables) across consecutive
	// runs of one run-pool worker. Nil builds everything fresh; see Arena
	// for the determinism contract.
	Arena *Arena
}

// Arena is a per-worker pool recycling a Network's construction-time
// allocations between the runs of a sweep: the peer-list backing store
// (one flat slab instead of N small slices) and the relay/online tables.
// It is semantically transparent — every recycled buffer is fully
// overwritten before first read, and topology generation consumes the
// exact same rng draw sequence with or without an arena, so results stay
// bit-for-bit identical. Like protocol.Arena, an Arena is owned by one
// goroutine and must not back two live Networks at once.
type Arena struct {
	peers  [][]int
	flat   []int
	relay  []bool
	online []bool
	// seen recycles the gossip de-duplication tables: the slot table and
	// delivery bitsets grow to steady state once and are then re-adopted
	// (epoch-retired, never re-allocated) by every subsequent Network the
	// arena backs. Dedup state holds no randomness, so recycling it is
	// output-invisible like the rest of the arena.
	seen seenSet
}

// takeBools returns a length-n buffer from store, growing it as needed.
// Contents are unspecified: callers overwrite every slot.
func takeBools(store *[]bool, n int) []bool {
	if cap(*store) < n {
		*store = make([]bool, n)
	}
	*store = (*store)[:n]
	return *store
}

// Stats counts network activity for the cost model and for debugging.
type Stats struct {
	Sent           uint64 // messages pushed onto links
	Delivered      uint64 // first-time deliveries to a node
	Duplicate      uint64 // suppressed duplicate deliveries
	DroppedOffline uint64 // deliveries to offline nodes
	DroppedLoss    uint64 // pushes lost to per-hop loss (base + overlay bursts)
	DroppedFault   uint64 // pushes severed by the fault overlay (partitions/eclipses)
}

// Network is the simulated gossip fabric. It is single-threaded on top of
// the sim engine.
type Network struct {
	cfg      Config
	engine   *sim.Engine
	rng      *rand.Rand
	peers    [][]int
	handler  Handler
	relay    []bool
	online   []bool
	seen     *seenSet
	factor   float64
	stats    Stats
	observer func(node int)
	// overlay is the optional fault-injection seam (see SetOverlay);
	// overlayScale is the largest delay multiplier it may apply, folded
	// into the horizon hint.
	overlay      FaultOverlay
	overlayScale float64
	// deliverCb is the single pre-bound delivery callback handed to
	// Engine.ScheduleFn; allocating it once here keeps the per-hop
	// scheduling path free of closure captures.
	deliverCb func(node int, payload any)
}

// SetRelayObserver installs a callback invoked each time a node relays a
// message to its peers; the protocol layer uses it to count gossiping
// work (cost c_go).
func (n *Network) SetRelayObserver(fn func(node int)) {
	n.observer = fn
}

// ErrBadConfig flags an invalid network configuration.
var ErrBadConfig = errors.New("network: invalid config")

// New builds a network with a fresh random topology: each node chooses
// Fanout distinct outbound peers (never itself). Gossip is push-based
// along these outbound edges, matching the paper's "each node sends the
// messages to 5 other nodes that are randomly selected".
func New(cfg Config, engine *sim.Engine, handler Handler) (*Network, error) {
	if cfg.N < 2 || cfg.Fanout < 1 || cfg.Delay == nil || engine == nil || handler == nil {
		return nil, ErrBadConfig
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, ErrBadConfig
	}
	if cfg.Fanout >= cfg.N {
		cfg.Fanout = cfg.N - 1
	}
	rng := engine.RNG("network.topology")
	relay := make([]bool, cfg.N)
	online := make([]bool, cfg.N)
	if ar := cfg.Arena; ar != nil {
		relay = takeBools(&ar.relay, cfg.N)
		online = takeBools(&ar.online, cfg.N)
	}
	n := &Network{
		cfg:          cfg,
		engine:       engine,
		rng:          engine.RNG("network.delays"),
		peers:        buildTopology(cfg.N, cfg.Fanout, rng, cfg.Arena),
		handler:      handler,
		relay:        relay,
		online:       online,
		factor:       1,
		overlayScale: 1,
	}
	if ar := cfg.Arena; ar != nil {
		ar.seen.adopt(cfg.N)
		n.seen = &ar.seen
	} else {
		n.seen = &seenSet{}
		n.seen.init(cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		n.relay[i] = true
		n.online[i] = true
	}
	n.deliverCb = func(node int, payload any) {
		n.deliver(node, payload.(*Message))
	}
	n.hintHorizon()
	return n, nil
}

// hintHorizon sizes the engine's calendar ring to the worst-case hop
// delay under the current delay factor, keeping every delivery event on
// the O(1) bucket route. Called at construction and whenever the factor
// changes; no-op for unbounded delay models.
func (n *Network) hintHorizon() {
	if bd, ok := n.cfg.Delay.(BoundedDelay); ok {
		if d := bd.MaxDelay(); d > 0 {
			n.engine.HintHorizon(time.Duration(float64(d) * n.factor * n.overlayScale))
		}
	}
}

// buildTopology draws each node's fanout distinct outbound peers. The
// duplicate check is a linear scan over the node's (at most fanout-1)
// picks so far: at gossip fanouts a scan beats a throwaway map per node,
// and it lets an arena recycle one flat slab for every peer list.
// Draw-consumption is load-bearing — a duplicate or self pick burns one
// rng draw without extending the list, exactly as the original map
// version did, so topologies are bit-identical across both versions and
// with or without an arena.
func buildTopology(n, fanout int, rng *rand.Rand, ar *Arena) [][]int {
	peers := make([][]int, n)
	flat := make([]int, 0, n*fanout)
	if ar != nil {
		if cap(ar.peers) < n {
			ar.peers = make([][]int, n)
		}
		peers = ar.peers[:n]
		if cap(ar.flat) < n*fanout {
			ar.flat = make([]int, 0, n*fanout)
		}
		flat = ar.flat[:0]
	}
	for i := range peers {
		start := len(flat)
	draw:
		for len(flat)-start < fanout {
			p := rng.Intn(n)
			if p == i {
				continue
			}
			for _, q := range flat[start:] {
				if q == p {
					continue draw
				}
			}
			flat = append(flat, p)
		}
		list := flat[start:len(flat):len(flat)]
		// Deterministic order: sort by index (the map-based predecessor
		// sorted too, so recycled and fresh topologies line up exactly).
		for a := 1; a < len(list); a++ {
			for b := a; b > 0 && list[b] < list[b-1]; b-- {
				list[b], list[b-1] = list[b-1], list[b]
			}
		}
		peers[i] = list
	}
	if ar != nil {
		ar.peers = peers
		ar.flat = flat
	}
	return peers
}

// Peers returns node i's outbound peer list (read-only view).
func (n *Network) Peers(i int) []int {
	if i < 0 || i >= len(n.peers) {
		return nil
	}
	return n.peers[i]
}

// SetRelay controls whether node i forwards gossip. Defecting nodes stay
// online (they keep receiving) but stop relaying — gossiping is one of the
// tasks with cost c_go that a defector refuses to pay.
func (n *Network) SetRelay(i int, relays bool) {
	if i >= 0 && i < len(n.relay) {
		n.relay[i] = relays
	}
}

// SetOnline controls whether node i participates at all. Offline (faulty)
// nodes neither receive nor forward.
func (n *Network) SetOnline(i int, online bool) {
	if i >= 0 && i < len(n.online) {
		n.online[i] = online
	}
}

// Online reports node i's availability.
func (n *Network) Online(i int) bool {
	return i >= 0 && i < len(n.online) && n.online[i]
}

// Relaying reports whether node i currently forwards gossip. The sparse
// committee path reads it to derive the epidemic's effective relay
// fraction (its mean-field branching factor) without touching the
// per-hop machinery.
func (n *Network) Relaying(i int) bool {
	return i >= 0 && i < len(n.relay) && n.relay[i]
}

// Fault probes the installed fault overlay for the (from, to) hop; a
// zero LinkFault means no overlay or a healthy link. Mean-field gossip
// consults it so scripted partitions and loss bursts still bite when the
// per-hop push path is bypassed.
func (n *Network) Fault(from, to int) LinkFault {
	if n.overlay == nil {
		return LinkFault{}
	}
	return n.overlay.Link(from, to)
}

// SetDelayFactor scales all sampled delays; the protocol layer uses it to
// inject weak-synchrony periods (factor >> 1) and recovery (factor 1).
// The engine's scheduling horizon follows the factor so inflated delays
// keep the O(1) bucket route.
func (n *Network) SetDelayFactor(f float64) {
	if f > 0 {
		n.factor = f
		n.hintHorizon()
	}
}

// DelayFactor returns the current delay multiplier.
func (n *Network) DelayFactor() float64 { return n.factor }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetSeen clears all de-duplication state; the round driver calls it
// between rounds to bound memory. The epoch stamp makes this O(nodes) —
// entries are retired in place and the tables stay sized, so steady-state
// rounds insert without growing.
func (n *Network) ResetSeen() {
	n.seen.reset()
}

// Gossip injects msg at node origin and propagates it through the network.
// The origin "delivers" to itself immediately (it knows its own message)
// and pushes to its peers if it relays.
func (n *Network) Gossip(origin int, msg Message) {
	if origin < 0 || origin >= n.cfg.N || !n.online[origin] {
		return
	}
	if !n.seen.mark(&msg.ID, origin) {
		return
	}
	n.stats.Delivered++
	n.handler(origin, msg)
	if n.relay[origin] {
		// One copy is shared by every hop of this message's propagation;
		// deliveries hand nodes a value copy, so sharing is invisible to
		// the protocol layer.
		shared := new(Message)
		*shared = msg
		n.push(origin, shared)
	}
}

// push schedules delivery of msg to each of node i's peers.
func (n *Network) push(from int, msg *Message) {
	if n.observer != nil {
		n.observer(from)
	}
	for _, peer := range n.peers[from] {
		var fault LinkFault
		if n.overlay != nil {
			fault = n.overlay.Link(from, peer)
			if fault.Drop {
				n.stats.DroppedFault++
				continue
			}
		}
		if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
			n.stats.DroppedLoss++
			continue
		}
		if fault.Loss > 0 && n.rng.Float64() < fault.Loss {
			n.stats.DroppedLoss++
			continue
		}
		delay := time.Duration(float64(n.cfg.Delay.Sample(n.rng)) * n.factor)
		if fault.DelayScale > 1 {
			delay = time.Duration(float64(delay) * fault.DelayScale)
		}
		n.stats.Sent++
		n.engine.ScheduleFn(delay, n.deliverCb, peer, msg)
	}
}

func (n *Network) deliver(node int, msg *Message) {
	if !n.online[node] {
		n.stats.DroppedOffline++
		return
	}
	if !n.seen.mark(&msg.ID, node) {
		n.stats.Duplicate++
		return
	}
	n.stats.Delivered++
	n.handler(node, *msg)
	if n.relay[node] {
		n.push(node, msg)
	}
}
