package network

import (
	"testing"
	"time"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

type recorder struct {
	delivered map[int][][32]byte
}

func newRecorder() *recorder {
	return &recorder{delivered: make(map[int][][32]byte)}
}

func (r *recorder) handle(node int, msg Message) {
	r.delivered[node] = append(r.delivered[node], msg.ID)
}

func build(t *testing.T, n, fanout int, loss float64) (*Network, *sim.Engine, *recorder) {
	t.Helper()
	engine := sim.NewEngine(1)
	rec := newRecorder()
	net, err := New(Config{
		N:        n,
		Fanout:   fanout,
		Delay:    UniformDelay{Min: time.Millisecond, Max: 10 * time.Millisecond},
		LossProb: loss,
	}, engine, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	return net, engine, rec
}

func TestConfigValidation(t *testing.T) {
	engine := sim.NewEngine(1)
	h := func(int, Message) {}
	cases := []Config{
		{N: 1, Fanout: 1, Delay: UniformDelay{}},
		{N: 10, Fanout: 0, Delay: UniformDelay{}},
		{N: 10, Fanout: 3},
		{N: 10, Fanout: 3, Delay: UniformDelay{}, LossProb: 1},
		{N: 10, Fanout: 3, Delay: UniformDelay{}, LossProb: -0.1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, engine, h); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	if _, err := New(Config{N: 10, Fanout: 3, Delay: UniformDelay{}}, nil, h); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(Config{N: 10, Fanout: 3, Delay: UniformDelay{}}, engine, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestTopologyShape(t *testing.T) {
	net, _, _ := build(t, 50, 5, 0)
	for i := 0; i < 50; i++ {
		peers := net.Peers(i)
		if len(peers) != 5 {
			t.Fatalf("node %d has %d peers, want 5", i, len(peers))
		}
		seen := make(map[int]bool)
		for _, p := range peers {
			if p == i {
				t.Fatalf("node %d peers with itself", i)
			}
			if seen[p] {
				t.Fatalf("node %d has duplicate peer %d", i, p)
			}
			seen[p] = true
		}
	}
	if net.Peers(-1) != nil || net.Peers(50) != nil {
		t.Error("out-of-range Peers should be nil")
	}
}

func TestFanoutClamped(t *testing.T) {
	net, _, _ := build(t, 4, 10, 0)
	if len(net.Peers(0)) != 3 {
		t.Errorf("fanout not clamped: %d", len(net.Peers(0)))
	}
}

func TestGossipFullCoverageNoLoss(t *testing.T) {
	net, engine, rec := build(t, 80, 5, 0)
	net.Gossip(0, Message{ID: [32]byte{1}, Kind: KindVote, Origin: 0})
	_ = engine.Run(0)
	if len(rec.delivered) != 80 {
		t.Errorf("delivered to %d/80 nodes", len(rec.delivered))
	}
	stats := net.Stats()
	if stats.Delivered != 80 {
		t.Errorf("Delivered = %d, want 80", stats.Delivered)
	}
	if stats.Duplicate == 0 {
		t.Error("expected duplicate suppressions in a dense gossip")
	}
}

func TestGossipDeduplication(t *testing.T) {
	net, engine, rec := build(t, 30, 5, 0)
	msg := Message{ID: [32]byte{7}, Kind: KindVote, Origin: 0}
	net.Gossip(0, msg)
	net.Gossip(0, msg) // duplicate injection is a no-op
	_ = engine.Run(0)
	for node, ids := range rec.delivered {
		if len(ids) != 1 {
			t.Errorf("node %d received %d copies", node, len(ids))
		}
	}
}

func TestOfflineNodesReceiveNothing(t *testing.T) {
	net, engine, rec := build(t, 40, 5, 0)
	net.SetOnline(3, false)
	net.Gossip(0, Message{ID: [32]byte{2}, Kind: KindProposal, Origin: 0})
	_ = engine.Run(0)
	if _, got := rec.delivered[3]; got {
		t.Error("offline node received a message")
	}
	if !net.Online(0) || net.Online(3) {
		t.Error("Online() state wrong")
	}
}

func TestOfflineOriginCannotGossip(t *testing.T) {
	net, engine, rec := build(t, 20, 5, 0)
	net.SetOnline(0, false)
	net.Gossip(0, Message{ID: [32]byte{3}, Kind: KindVote, Origin: 0})
	_ = engine.Run(0)
	if len(rec.delivered) != 0 {
		t.Error("offline origin still gossiped")
	}
}

func TestNonRelayingNodesStillReceive(t *testing.T) {
	// With every non-origin node refusing to relay, only the origin's
	// direct peers hear the message.
	net, engine, rec := build(t, 60, 5, 0)
	for i := 1; i < 60; i++ {
		net.SetRelay(i, false)
	}
	net.Gossip(0, Message{ID: [32]byte{4}, Kind: KindVote, Origin: 0})
	_ = engine.Run(0)
	if len(rec.delivered) != 6 { // origin + its 5 peers
		t.Errorf("delivered to %d nodes, want 6", len(rec.delivered))
	}
}

func TestLossReducesCoverage(t *testing.T) {
	deliveredAt := func(loss float64) int {
		net, engine, rec := build(t, 200, 5, loss)
		net.Gossip(0, Message{ID: [32]byte{5}, Kind: KindVote, Origin: 0})
		_ = engine.Run(0)
		return len(rec.delivered)
	}
	full := deliveredAt(0)
	lossy := deliveredAt(0.6)
	// A random 5-out digraph leaves ~e^-5 of nodes with zero in-degree, so
	// a couple of nodes may be structurally unreachable even without loss.
	if full < 195 {
		t.Errorf("lossless coverage = %d/200", full)
	}
	if lossy >= full {
		t.Errorf("loss did not reduce coverage: %d >= %d", lossy, full)
	}
}

func TestDelayFactorSlowsDelivery(t *testing.T) {
	engine := sim.NewEngine(1)
	var firstDelivery time.Duration
	net, err := New(Config{
		N: 10, Fanout: 3,
		Delay: UniformDelay{Min: 100 * time.Millisecond, Max: 100 * time.Millisecond},
	}, engine, func(node int, msg Message) {
		if node != 0 && firstDelivery == 0 {
			firstDelivery = engine.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	net.SetDelayFactor(10)
	if net.DelayFactor() != 10 {
		t.Errorf("DelayFactor = %v", net.DelayFactor())
	}
	net.Gossip(0, Message{ID: [32]byte{6}, Kind: KindVote, Origin: 0})
	_ = engine.Run(0)
	if firstDelivery != time.Second {
		t.Errorf("first delivery at %v, want 1s under 10x factor", firstDelivery)
	}
}

func TestResetSeenAllowsReuse(t *testing.T) {
	net, engine, rec := build(t, 20, 5, 0)
	msg := Message{ID: [32]byte{8}, Kind: KindVote, Origin: 0}
	net.Gossip(0, msg)
	_ = engine.Run(0)
	first := len(rec.delivered[0])
	net.ResetSeen()
	net.Gossip(0, msg)
	_ = engine.Run(0)
	if len(rec.delivered[0]) != first+1 {
		t.Error("ResetSeen did not clear dedup state")
	}
}

func TestUniformDelayDegenerate(t *testing.T) {
	d := UniformDelay{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if got := d.Sample(sim.NewRNG(1, "t")); got != 5*time.Millisecond {
		t.Errorf("degenerate delay = %v", got)
	}
}

func TestHeavyTailDelay(t *testing.T) {
	d := HeavyTailDelay{
		Base:       UniformDelay{Min: 10 * time.Millisecond, Max: 10 * time.Millisecond},
		SlowProb:   1,
		SlowFactor: 7,
	}
	if got := d.Sample(sim.NewRNG(1, "t")); got != 70*time.Millisecond {
		t.Errorf("slow hop = %v, want 70ms", got)
	}
	d.SlowProb = 0
	if got := d.Sample(sim.NewRNG(1, "t")); got != 10*time.Millisecond {
		t.Errorf("fast hop = %v, want 10ms", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindTransaction: "transaction",
		KindVote:        "vote",
		KindProposal:    "proposal",
		KindCredential:  "credential",
		Kind(99):        "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
