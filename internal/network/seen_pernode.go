//go:build network_pernode_dedup

package network

// seenSet under the network_pernode_dedup build tag: the pre-inversion
// per-node open-addressed dedup tables, kept as a differential oracle.
// The whole test suite run under this tag must produce identical results
// to the default delivered-bitmap build — CI pins the golden figure
// outputs on both.
type seenSet struct {
	per []dedupSet
}

func (s *seenSet) init(n int) { s.per = make([]dedupSet, n) }

// adopt re-initialises a recycled set for a population of n: per-node
// tables are kept (entries retired in place) when the population size
// matches, rebuilt otherwise.
func (s *seenSet) adopt(n int) {
	if len(s.per) != n {
		s.init(n)
		return
	}
	s.reset()
}

func (s *seenSet) reset() {
	for i := range s.per {
		s.per[i].reset()
	}
}

func (s *seenSet) mark(id *[32]byte, node int) bool { return s.per[node].insert(id) }
