package adversary

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/network"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/weight"
)

// Engine binds one Scenario to one Runner. It implements the protocol
// hook seams and the network fault overlay; per-round it restores the
// baseline node state and re-applies every active phase, so phases
// activate and retire purely by round number and compose by declaration
// order (later phases win conflicting node-level injections).
type Engine struct {
	scn   Scenario
	r     *protocol.Runner
	n     int
	rng   *rand.Rand
	audit *Audit
	// tick counts round attempts (1-based); phase windows are keyed on
	// it rather than the ledger round so that stalled consensus rounds
	// still advance the scripted timeline.
	tick uint64
	// adaptive caches the phases with an active adaptive-corruption
	// injection this tick, for the StepDone path.
	adaptive []int

	// baseline captures construction-time behaviours for restore.
	baseline []protocol.Behavior
	// stakes are the initial balances used by stake-ranked targets.
	stakes []float64
	// targets caches each phase's resolved node list (lazily, first
	// activation); members caches the per-phase membership lookup.
	targets  [][]int
	resolved []bool
	members  [][]bool

	// Persistent fault state across rounds.
	down         []bool // crash-churn victims currently offline
	churnManaged []bool // nodes covered by an active churn phase this tick
	corrupted    []bool // adaptively corrupted nodes
	budget       []int  // per-phase remaining adaptive corruptions (-1 = unlimited)

	// Per-round node-level injection tables, rebuilt at RoundStart.
	fanVotes []int // equivocation fan per node (0 = honest voting)
	fanProps []int
	silent   []bool

	// Per-round overlay tables.
	group     []uint16 // partition/eclipse group id (0 = backbone)
	lossNode  []float64
	delayNode []float64
	cutActive bool

	voteScratch []ledger.Hash
}

// Attach validates scn, binds it to r, and installs the hook seams and
// (when the scenario uses network injections) the fault overlay. It must
// be called before the first round runs. The returned engine exposes the
// audit collector; every run's randomness derives from the runner's seed
// through the "adversary.targets" and "adversary.churn" labelled
// streams, so results are reproducible and worker-count independent.
func Attach(r *protocol.Runner, scn Scenario) (*Engine, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	n := r.Canonical().NumAccounts()
	e := &Engine{
		scn:          scn,
		r:            r,
		n:            n,
		rng:          r.RNG("adversary.targets"),
		audit:        newAudit(n),
		baseline:     make([]protocol.Behavior, n),
		stakes:       weight.Snapshot(r.Weights(), r.Canonical().Round()),
		targets:      make([][]int, len(scn.Phases)),
		resolved:     make([]bool, len(scn.Phases)),
		down:         make([]bool, n),
		churnManaged: make([]bool, n),
		corrupted:    make([]bool, n),
		budget:       make([]int, len(scn.Phases)),
		fanVotes:     make([]int, n),
		fanProps:     make([]int, n),
		silent:       make([]bool, n),
		group:        make([]uint16, n),
		lossNode:     make([]float64, n),
		delayNode:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		e.baseline[i] = r.Behavior(i)
	}
	for pi, ph := range scn.Phases {
		e.budget[pi] = -1
		for _, inj := range ph.Inject {
			if inj.Kind == InjectAdaptiveCorrupt && inj.Budget > 0 {
				e.budget[pi] = inj.Budget
			}
		}
	}
	// Index-named targets are explicit victims: pin them so sparse runs
	// materialize them every round and per-victim NodeOutcome assertions
	// see exact outcomes (unpinned, an unmaterialized victim reads as
	// OutcomeNone). Only TargetIndices pins — random/stake-ranked targets
	// are aggregate-level and would skew the panel extrapolation mass for
	// no observable benefit.
	for _, ph := range scn.Phases {
		if ph.Target.Mode == TargetIndices {
			r.PinMaterialized(ph.Target.Indices)
		}
	}
	r.SetHooks(protocol.Hooks{
		RoundStart: e.roundStart,
		RoundEnd:   e.roundEnd,
		VoteValues: e.voteValues,
		ProposalFan: func(node int, round uint64) int {
			if e.silent[node] {
				return 0
			}
			if fan := e.fanProps[node]; fan > 1 {
				return fan
			}
			return 1
		},
		StepDone: e.stepDone,
	})
	if scn.needsOverlay() {
		r.Network().SetOverlay(e, scn.MaxDelayScale())
	}
	return e, nil
}

// Audit returns the safety/liveness collector accumulating over the run.
func (e *Engine) Audit() *Audit { return e.audit }

// Scenario returns the bound scenario.
func (e *Engine) Scenario() Scenario { return e.scn }

// resolveTargets returns phase pi's node list, drawing/caching it on
// first activation.
func (e *Engine) resolveTargets(pi int) []int {
	if e.resolved[pi] {
		return e.targets[pi]
	}
	e.resolved[pi] = true
	t := e.scn.Phases[pi].Target
	count := t.Count
	if count == 0 && t.Frac > 0 {
		count = int(t.Frac * float64(e.n))
		if count < 1 {
			count = 1
		}
	}
	if count > e.n {
		count = e.n
	}
	var out []int
	switch t.Mode {
	case TargetAll:
		out = make([]int, e.n)
		for i := range out {
			out[i] = i
		}
	case TargetIndices:
		for _, id := range t.Indices {
			if id >= 0 && id < e.n {
				out = append(out, id)
			}
		}
	case TargetRandom:
		out = append(out, e.rng.Perm(e.n)[:count]...)
		sort.Ints(out)
	case TargetTopStake, TargetBottomStake:
		idx := make([]int, e.n)
		for i := range idx {
			idx[i] = i
		}
		desc := t.Mode == TargetTopStake
		sort.SliceStable(idx, func(a, b int) bool {
			sa, sb := e.stakes[idx[a]], e.stakes[idx[b]]
			if sa != sb {
				if desc {
					return sa > sb
				}
				return sa < sb
			}
			return idx[a] < idx[b]
		})
		out = append(out, idx[:count]...)
		sort.Ints(out)
	}
	e.targets[pi] = out
	return out
}

// roundStart restores the baseline and re-applies every active phase.
func (e *Engine) roundStart(round uint64) {
	e.tick++
	net := e.r.Network()
	for i := 0; i < e.n; i++ {
		e.r.SetBehavior(i, e.baseline[i])
		e.fanVotes[i] = 0
		e.fanProps[i] = 0
		e.silent[i] = false
		e.group[i] = 0
		e.lossNode[i] = 0
		e.delayNode[i] = 0
		e.churnManaged[i] = false
	}
	e.cutActive = false
	e.adaptive = e.adaptive[:0]

	for pi := range e.scn.Phases {
		ph := &e.scn.Phases[pi]
		if !ph.active(e.tick) {
			continue
		}
		targets := e.resolveTargets(pi)
		for _, inj := range ph.Inject {
			switch inj.Kind {
			case InjectBehavior:
				for _, id := range targets {
					e.r.SetBehavior(id, inj.Behavior)
				}
			case InjectEquivocateVotes:
				fan := inj.Fan
				if fan < 2 {
					fan = 2
				}
				for _, id := range targets {
					e.fanVotes[id] = fan
				}
			case InjectEquivocateProposals:
				fan := inj.Fan
				if fan < 2 {
					fan = 2
				}
				for _, id := range targets {
					e.fanProps[id] = fan
				}
			case InjectSilence:
				for _, id := range targets {
					e.silent[id] = true
				}
			case InjectAdaptiveCorrupt:
				e.adaptive = append(e.adaptive, pi)
				beh := inj.Behavior
				if beh == 0 {
					beh = protocol.Malicious
				}
				for _, id := range targets {
					if e.corrupted[id] {
						e.r.SetBehavior(id, beh)
					}
				}
			case InjectCrashChurn:
				for _, id := range targets {
					e.churnManaged[id] = true
				}
				e.advanceChurn(pi, targets, inj)
			case InjectPartition, InjectEclipse:
				e.cutActive = true
				gid := uint16(pi + 1)
				for _, id := range targets {
					e.group[id] = gid
				}
			case InjectLossBurst:
				for _, id := range targets {
					if inj.Loss > e.lossNode[id] {
						e.lossNode[id] = inj.Loss
					}
				}
			case InjectDelaySpike:
				for _, id := range targets {
					if inj.DelayScale > e.delayNode[id] {
						e.delayNode[id] = inj.DelayScale
					}
				}
			}
		}
	}
	if len(e.adaptive) == 0 {
		// Corruption persists only while an adaptive phase runs.
		for i := range e.corrupted {
			e.corrupted[i] = false
		}
	}
	// Crash-churn victims stay down only while some active churn phase
	// manages them; when the phase retires, its victims recover — like
	// every other injection, churn heals at its window's end (the
	// recover draws only exist inside the window).
	for i, d := range e.down {
		if d && !e.churnManaged[i] {
			// The baseline restore above only touches online state on a
			// behaviour change, so the release must be explicit.
			e.down[i] = false
			net.SetOnline(i, true)
			continue
		}
		if d {
			net.SetOnline(i, false)
		}
	}
}

// advanceChurn draws one crash-or-recover Bernoulli per target from a
// stream labelled per (phase, tick), so the draw sequence is a pure
// function of the run seed and the scenario — independent of every
// other randomness consumer and of how many other phases are active.
func (e *Engine) advanceChurn(pi int, targets []int, inj Injection) {
	stream := e.r.RNG(fmt.Sprintf("adversary.churn.%d.%d", pi, e.tick))
	for _, id := range targets {
		if e.down[id] {
			if inj.RecoverProb > 0 && stream.Float64() < inj.RecoverProb {
				e.down[id] = false
				e.r.Network().SetOnline(id, true)
			}
		} else if inj.CrashProb > 0 && stream.Float64() < inj.CrashProb {
			e.down[id] = true
			e.r.Network().SetOnline(id, false)
		}
	}
}

// stepDone implements adaptive corruption: nodes whose credential was
// revealed this step are flipped while an adaptive phase is active and
// its budget lasts.
func (e *Engine) stepDone(round, step uint64, revealed []int) {
	for _, pi := range e.adaptive {
		ph := &e.scn.Phases[pi]
		var adaptive *Injection
		for j := range ph.Inject {
			if ph.Inject[j].Kind == InjectAdaptiveCorrupt {
				adaptive = &ph.Inject[j]
				break
			}
		}
		if adaptive == nil {
			continue
		}
		beh := adaptive.Behavior
		if beh == 0 {
			beh = protocol.Malicious
		}
		inTarget := e.membership(pi)
		for _, id := range revealed {
			if e.corrupted[id] || (inTarget != nil && !inTarget[id]) {
				continue
			}
			if e.budget[pi] == 0 {
				break
			}
			if e.budget[pi] > 0 {
				e.budget[pi]--
			}
			e.corrupted[id] = true
			e.r.SetBehavior(id, beh)
			e.audit.Corruptions++
		}
	}
}

// membership returns a cached node->bool lookup for phase pi's targets,
// or nil when the phase targets everyone.
func (e *Engine) membership(pi int) []bool {
	if e.members == nil {
		e.members = make([][]bool, len(e.scn.Phases))
	}
	targets := e.resolveTargets(pi)
	if len(targets) == e.n {
		return nil
	}
	if e.members[pi] == nil {
		m := make([]bool, e.n)
		for _, id := range targets {
			m[id] = true
		}
		e.members[pi] = m
	}
	return e.members[pi]
}

// voteValues implements equivocation and selective silence.
func (e *Engine) voteValues(node int, round, step uint64, final bool, honest, empty ledger.Hash) ([]ledger.Hash, bool) {
	if e.silent[node] {
		return e.voteScratch[:0], true
	}
	fan := e.fanVotes[node]
	if fan < 2 {
		return nil, false
	}
	vals := e.voteScratch[:0]
	vals = append(vals, honest)
	// The primary conflict is the opposite camp: empty when the honest
	// vote backs a block, a synthetic block hash when it is empty.
	if honest != empty {
		vals = append(vals, empty)
	} else {
		vals = append(vals, equivHash(round, step, node, 1))
	}
	for i := 2; i < fan; i++ {
		vals = append(vals, equivHash(round, step, node, i))
	}
	e.voteScratch = vals
	return vals, true
}

// equivHash derives a deterministic synthetic conflicting value.
func equivHash(round, step uint64, node, i int) ledger.Hash {
	var buf [3 + 8*4]byte
	copy(buf[:3], "eqv")
	binary.BigEndian.PutUint64(buf[3:], round)
	binary.BigEndian.PutUint64(buf[11:], step)
	binary.BigEndian.PutUint64(buf[19:], uint64(int64(node)))
	binary.BigEndian.PutUint64(buf[27:], uint64(int64(i)))
	return sha256.Sum256(buf[:])
}

// roundEnd feeds the audit collector.
func (e *Engine) roundEnd(round uint64, report protocol.RoundReport) {
	e.audit.observe(e.r, round, report)
}

// Link implements network.FaultOverlay: partition/eclipse cuts first,
// then the worst loss burst and delay spike touching either endpoint.
func (e *Engine) Link(from, to int) network.LinkFault {
	var f network.LinkFault
	if e.cutActive && e.group[from] != e.group[to] {
		f.Drop = true
		return f
	}
	l := e.lossNode[from]
	if e.lossNode[to] > l {
		l = e.lossNode[to]
	}
	if l > 0 {
		f.Loss = l
	}
	d := e.delayNode[from]
	if e.delayNode[to] > d {
		d = e.delayNode[to]
	}
	if d > 1 {
		f.DelayScale = d
	}
	return f
}
