// Package adversary is the scenario-injection engine: a declarative
// layer that scripts phased Byzantine and network-fault timelines over a
// protocol.Runner, plus a safety/liveness audit collector.
//
// A Scenario is a list of Phases, each active over a round window,
// aiming a set of composable Injections at a Target population. The
// Engine binds a Scenario to one Runner through the protocol hook seams
// (behaviour flips, equivocation, selective silence, adaptive
// corruption) and the network fault overlay (partitions, eclipses, loss
// bursts, delay spikes). All randomness derives from the run's seed via
// labelled streams, so scenario runs are bit-for-bit reproducible and
// worker-count independent; a scenario with no phases leaves the run
// identical to an unscripted one.
package adversary

import (
	"errors"
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// TargetMode selects how a phase's target population is drawn.
type TargetMode uint8

// Target selection modes.
const (
	// TargetAll aims the phase at every node.
	TargetAll TargetMode = iota
	// TargetIndices aims at the explicit Indices list.
	TargetIndices
	// TargetRandom draws Count (or Frac·N) distinct nodes uniformly,
	// once per run, from the adversary's labelled random stream.
	TargetRandom
	// TargetTopStake aims at the Count (or Frac·N) richest nodes by
	// initial stake — the paper's "rich node" amplification threat.
	TargetTopStake
	// TargetBottomStake aims at the poorest nodes.
	TargetBottomStake
)

// String implements fmt.Stringer.
func (m TargetMode) String() string {
	switch m {
	case TargetAll:
		return "all"
	case TargetIndices:
		return "indices"
	case TargetRandom:
		return "random"
	case TargetTopStake:
		return "top-stake"
	case TargetBottomStake:
		return "bottom-stake"
	default:
		return "unknown"
	}
}

// Target describes one phase's victim/attacker population.
type Target struct {
	Mode TargetMode
	// Count is the absolute number of nodes to select; when zero, Frac
	// of the population is used instead (rounded down, minimum 1 when
	// Frac > 0).
	Count int
	// Frac is the population fraction used when Count is zero.
	Frac float64
	// Indices is the explicit node list for TargetIndices.
	Indices []int
}

// InjectKind enumerates the composable fault injections.
type InjectKind uint8

// The adversary taxonomy. Node-level injections reach the protocol layer
// through hook seams; network-level ones through the gossip fault
// overlay.
const (
	// InjectBehavior pins targets to a Behavior class for the phase
	// (e.g. scripted selfish or malicious windows); the baseline
	// behaviour is restored when the phase ends.
	InjectBehavior InjectKind = iota + 1
	// InjectEquivocateVotes makes targets Byzantine equivocators: each
	// committee vote is cast Fan ways with conflicting values under the
	// same credential, splitting peers' tallies by arrival order.
	InjectEquivocateVotes
	// InjectEquivocateProposals makes selected target proposers gossip
	// Fan conflicting (distinct-hash) blocks under one credential.
	InjectEquivocateProposals
	// InjectSilence makes targets withhold proposals and votes while
	// still paying sortition costs — selective silence.
	InjectSilence
	// InjectAdaptiveCorrupt flips committee members to Behavior (default
	// Malicious) immediately after sortition reveals them, up to Budget
	// corruptions; corruption persists while the phase is active.
	InjectAdaptiveCorrupt
	// InjectCrashChurn crashes targets with probability CrashProb per
	// round and recovers crashed ones with RecoverProb — fail/recover
	// churn.
	InjectCrashChurn
	// InjectPartition severs every link between the target set and the
	// rest of the network (both directions) while the phase is active.
	InjectPartition
	// InjectEclipse isolates the target victims: links between a victim
	// and any non-victim are severed, links among victims survive.
	InjectEclipse
	// InjectLossBurst adds Loss to the per-hop drop probability on every
	// link touching a target.
	InjectLossBurst
	// InjectDelaySpike multiplies the sampled delay by DelayScale on
	// every link touching a target.
	InjectDelaySpike
)

// String implements fmt.Stringer.
func (k InjectKind) String() string {
	switch k {
	case InjectBehavior:
		return "behavior"
	case InjectEquivocateVotes:
		return "equivocate-votes"
	case InjectEquivocateProposals:
		return "equivocate-proposals"
	case InjectSilence:
		return "silence"
	case InjectAdaptiveCorrupt:
		return "adaptive-corrupt"
	case InjectCrashChurn:
		return "crash-churn"
	case InjectPartition:
		return "partition"
	case InjectEclipse:
		return "eclipse"
	case InjectLossBurst:
		return "loss-burst"
	case InjectDelaySpike:
		return "delay-spike"
	default:
		return "unknown"
	}
}

// Injection is one composable fault applied to a phase's targets. Only
// the fields relevant to Kind are read.
type Injection struct {
	Kind InjectKind
	// Behavior is the class applied by InjectBehavior and
	// InjectAdaptiveCorrupt (zero value defaults to Malicious for
	// adaptive corruption).
	Behavior protocol.Behavior
	// Fan is the equivocation fan-out: conflicting values per vote or
	// conflicting blocks per proposal (minimum effective value 2).
	Fan int
	// Budget caps adaptive corruptions; 0 means unlimited.
	Budget int
	// CrashProb and RecoverProb drive crash churn, per target per round.
	CrashProb, RecoverProb float64
	// Loss is the loss-burst extra drop probability per hop.
	Loss float64
	// DelayScale is the delay-spike multiplier (>1).
	DelayScale float64
}

// Phase is one window of a scenario's fault timeline.
type Phase struct {
	// Name labels the phase in summaries.
	Name string
	// From and To bound the active window, inclusive, in 1-based
	// simulation ticks — round attempts, not ledger round numbers. A
	// stalled consensus round retries under the same ledger round but
	// still advances the tick, so scripted timelines always progress:
	// a partition phase ends on schedule even when it stalls consensus
	// completely. To == 0 keeps the phase active for the rest of the
	// run.
	From, To uint64
	// Target selects the nodes the phase's injections act on.
	Target Target
	// Inject lists the faults applied while the phase is active.
	Inject []Injection
}

// active reports whether the phase covers simulation tick t.
func (p *Phase) active(t uint64) bool {
	return t >= p.From && (p.To == 0 || t <= p.To)
}

// Scenario is a named, declarative fault timeline.
type Scenario struct {
	Name        string
	Description string
	Phases      []Phase
}

// Validate reports structural errors in the scenario spec.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("adversary: scenario needs a name")
	}
	for i, ph := range s.Phases {
		where := fmt.Sprintf("adversary: scenario %q phase %d (%s)", s.Name, i, ph.Name)
		if ph.To != 0 && ph.To < ph.From {
			return fmt.Errorf("%s: To %d < From %d", where, ph.To, ph.From)
		}
		if ph.Target.Count < 0 || ph.Target.Frac < 0 || ph.Target.Frac > 1 {
			return fmt.Errorf("%s: invalid target count/frac", where)
		}
		if ph.Target.Mode == TargetIndices && len(ph.Target.Indices) == 0 {
			return fmt.Errorf("%s: indices target without indices", where)
		}
		switch ph.Target.Mode {
		case TargetRandom, TargetTopStake, TargetBottomStake:
			// An unsized selection would resolve to zero nodes and turn
			// the whole phase into a silent no-op — reject it loudly.
			if ph.Target.Count == 0 && ph.Target.Frac == 0 {
				return fmt.Errorf("%s: %s target needs Count or Frac", where, ph.Target.Mode)
			}
		}
		if len(ph.Inject) == 0 {
			return fmt.Errorf("%s: phase without injections", where)
		}
		for _, inj := range ph.Inject {
			switch inj.Kind {
			case InjectBehavior:
				if inj.Behavior == 0 {
					return fmt.Errorf("%s: behavior injection without a behavior", where)
				}
			case InjectEquivocateVotes, InjectEquivocateProposals:
				if inj.Fan < 0 {
					return fmt.Errorf("%s: negative equivocation fan", where)
				}
			case InjectSilence, InjectAdaptiveCorrupt, InjectPartition, InjectEclipse:
				// No knobs to validate beyond defaults.
			case InjectCrashChurn:
				if inj.CrashProb < 0 || inj.CrashProb > 1 || inj.RecoverProb < 0 || inj.RecoverProb > 1 {
					return fmt.Errorf("%s: crash/recover probabilities outside [0,1]", where)
				}
			case InjectLossBurst:
				if inj.Loss < 0 || inj.Loss >= 1 {
					return fmt.Errorf("%s: loss burst outside [0,1)", where)
				}
			case InjectDelaySpike:
				if inj.DelayScale < 1 {
					return fmt.Errorf("%s: delay scale must be >= 1", where)
				}
			default:
				return fmt.Errorf("%s: unknown injection kind %d", where, inj.Kind)
			}
		}
	}
	return nil
}

// MaxDelayScale returns the largest delay multiplier any phase may
// apply, for the network's scheduling-horizon hint.
func (s Scenario) MaxDelayScale() float64 {
	max := 1.0
	for _, ph := range s.Phases {
		for _, inj := range ph.Inject {
			if inj.Kind == InjectDelaySpike && inj.DelayScale > max {
				max = inj.DelayScale
			}
		}
	}
	return max
}

// needsOverlay reports whether any phase uses a network-level injection.
func (s Scenario) needsOverlay() bool {
	for _, ph := range s.Phases {
		for _, inj := range ph.Inject {
			switch inj.Kind {
			case InjectPartition, InjectEclipse, InjectLossBurst, InjectDelaySpike:
				return true
			}
		}
	}
	return false
}
