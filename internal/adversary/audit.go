package adversary

import (
	"fmt"
	"io"

	"github.com/dsn2020-algorand/incentives/internal/ledger"
	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// ForkWitness captures one conflicting-finalisation observation: two
// honest nodes that extracted FINAL consensus on different blocks in the
// same round — a BA* safety violation.
type ForkWitness struct {
	Round        uint64
	NodeA, NodeB int
	HashA, HashB ledger.Hash
}

// String implements fmt.Stringer.
func (w ForkWitness) String() string {
	return fmt.Sprintf("round %d: node %d finalised %s, node %d finalised %s",
		w.Round, w.NodeA, w.HashA, w.NodeB, w.HashB)
}

// maxForkWitnesses bounds retained witnesses; the count keeps ticking.
const maxForkWitnesses = 16

// Audit is the safety/liveness collector the engine feeds at every
// RoundEnd. Safety is BA*'s agreement goal — no two honest nodes
// finalise conflicting blocks; liveness is tracked as per-round decision
// stalls and the worst consecutive stall run.
type Audit struct {
	n int

	// Rounds is the number of observed rounds.
	Rounds int
	// Decided counts rounds in which the network reached agreement on
	// some block (possibly the empty one).
	Decided int
	// EmptyDecided counts decided rounds that fell back to the empty
	// block.
	EmptyDecided int
	// Stalls counts rounds in which no node decided — BA* retried the
	// round, Algorand's lost-synchrony liveness behaviour.
	Stalls int
	// MaxStallRun is the longest consecutive stall streak, the audit's
	// liveness-bound headline.
	MaxStallRun int
	// SafetyViolations counts rounds with conflicting honest
	// finalisations; Forks retains the first maxForkWitnesses witnesses.
	SafetyViolations int
	Forks            []ForkWitness
	// Corruptions counts adaptive-corruption flips performed.
	Corruptions int
	// FinalFracSum/NoneFracSum accumulate per-round outcome fractions
	// for mean reporting.
	FinalFracSum float64
	NoneFracSum  float64
	// DesyncSum accumulates post-catch-up desynchronised node counts.
	DesyncSum int

	curStall int
}

func newAudit(n int) *Audit { return &Audit{n: n} }

// observe ingests one finalised round.
func (a *Audit) observe(r *protocol.Runner, round uint64, report protocol.RoundReport) {
	a.Rounds++
	a.FinalFracSum += report.FinalFrac()
	a.NoneFracSum += report.NoneFrac()
	a.DesyncSum += report.Desynced
	if report.Decided {
		a.Decided++
		if report.CanonicalEmpty {
			a.EmptyDecided++
		}
		a.curStall = 0
	} else {
		a.Stalls++
		a.curStall++
		if a.curStall > a.MaxStallRun {
			a.MaxStallRun = a.curStall
		}
	}

	// Safety: among honest nodes with a FINAL outcome this round, every
	// committed hash must agree. OutcomeFinal implies a non-empty block
	// (empty decisions are classified tentative), so any divergence is a
	// genuine fork witness.
	firstNode := -1
	var firstHash ledger.Hash
	violated := false
	for i := 0; i < a.n; i++ {
		if r.Behavior(i) != protocol.Honest {
			continue
		}
		outcome, h := r.NodeOutcome(i)
		if outcome != protocol.OutcomeFinal {
			continue
		}
		if firstNode < 0 {
			firstNode, firstHash = i, h
			continue
		}
		if h != firstHash && !violated {
			violated = true
			a.SafetyViolations++
			if len(a.Forks) < maxForkWitnesses {
				a.Forks = append(a.Forks, ForkWitness{
					Round: round,
					NodeA: firstNode, HashA: firstHash,
					NodeB: i, HashB: h,
				})
			}
		}
	}
}

// Report is the audit's value summary, safe to aggregate across runs.
type Report struct {
	Rounds           int
	Decided          int
	EmptyDecided     int
	Stalls           int
	MaxStallRun      int
	SafetyViolations int
	Corruptions      int
	MeanFinalFrac    float64
	MeanNoneFrac     float64
	MeanDesynced     float64
	Forks            []ForkWitness
}

// Report snapshots the collector.
func (a *Audit) Report() Report {
	rep := Report{
		Rounds:           a.Rounds,
		Decided:          a.Decided,
		EmptyDecided:     a.EmptyDecided,
		Stalls:           a.Stalls,
		MaxStallRun:      a.MaxStallRun,
		SafetyViolations: a.SafetyViolations,
		Corruptions:      a.Corruptions,
		Forks:            append([]ForkWitness(nil), a.Forks...),
	}
	if a.Rounds > 0 {
		rep.MeanFinalFrac = a.FinalFracSum / float64(a.Rounds)
		rep.MeanNoneFrac = a.NoneFracSum / float64(a.Rounds)
		rep.MeanDesynced = float64(a.DesyncSum) / float64(a.Rounds)
	}
	return rep
}

// Merge folds other into r (for multi-run aggregation); MaxStallRun
// takes the worst run's value.
func (r *Report) Merge(other Report) {
	r.Rounds += other.Rounds
	r.Decided += other.Decided
	r.EmptyDecided += other.EmptyDecided
	r.Stalls += other.Stalls
	if other.MaxStallRun > r.MaxStallRun {
		r.MaxStallRun = other.MaxStallRun
	}
	r.SafetyViolations += other.SafetyViolations
	r.Corruptions += other.Corruptions
	// Means are re-weighted by round counts.
	tot := float64(r.Rounds)
	if tot > 0 {
		prev := float64(r.Rounds - other.Rounds)
		oth := float64(other.Rounds)
		r.MeanFinalFrac = (r.MeanFinalFrac*prev + other.MeanFinalFrac*oth) / tot
		r.MeanNoneFrac = (r.MeanNoneFrac*prev + other.MeanNoneFrac*oth) / tot
		r.MeanDesynced = (r.MeanDesynced*prev + other.MeanDesynced*oth) / tot
	}
	space := maxForkWitnesses - len(r.Forks)
	if space > 0 {
		if len(other.Forks) < space {
			space = len(other.Forks)
		}
		r.Forks = append(r.Forks, other.Forks[:space]...)
	}
}

// WriteSummary renders the report for humans.
func (r Report) WriteSummary(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"rounds %d: decided %d (empty %d), stalls %d (max run %d), mean final %5.1f%%  mean none %5.1f%%  mean desynced %.1f, adaptive corruptions %d, SAFETY VIOLATIONS %d\n",
		r.Rounds, r.Decided, r.EmptyDecided, r.Stalls, r.MaxStallRun,
		100*r.MeanFinalFrac, 100*r.MeanNoneFrac, r.MeanDesynced,
		r.Corruptions, r.SafetyViolations)
	if err != nil {
		return err
	}
	for _, f := range r.Forks {
		if _, err := fmt.Fprintf(w, "  fork witness: %s\n", f); err != nil {
			return err
		}
	}
	return nil
}
