package adversary

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/sim"
)

// runScenario executes scn over a fresh honest network and returns the
// audit report.
func runScenario(t *testing.T, scn Scenario, nodes, rounds int, seed int64) Report {
	t.Helper()
	r := newRunner(t, nodes, seed)
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(rounds)
	return e.Audit().Report()
}

// TestBuiltinScenarioSafety asserts BA*'s agreement property under every
// built-in scenario across seeds: no two honest nodes ever finalise
// conflicting blocks. The scripted adversaries (equivocation, adaptive
// corruption, eclipses, churn) stay below the honest-supermajority
// stake bound, so safety must hold even where liveness collapses.
func TestBuiltinScenarioSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	for _, scn := range Builtin() {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				rep := runScenario(t, scn, 50, 8, seed*101)
				if rep.SafetyViolations != 0 {
					t.Fatalf("seed %d: %d conflicting-finalisation rounds: %v",
						seed, rep.SafetyViolations, rep.Forks)
				}
			}
		})
	}
}

// TestBuiltinScenarioLiveness pins per-scenario liveness bounds: the
// baseline never stalls, fault scenarios keep stall runs within their
// scripted windows, and every bounded-window scenario decides rounds
// again after its phases retire.
func TestBuiltinScenarioLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	// maxStall bounds the worst tolerated consecutive-stall run over 12
	// ticks at 60 nodes; scripted windows are ≤6 ticks, so a stall run
	// longer than 8 means the engine failed to retire a phase.
	bounds := map[string]int{
		HonestBaseline:        0,
		"equivocation_storm":  4,
		"adaptive_corruption": 8, // open-ended window: only the budget bounds it
		EclipseEquivocation:   6,
		"partition_healing":   5,
		"crash_churn":         6,
		"silence_degrade":     7,
		"delay_spike":         5,
	}
	for _, scn := range Builtin() {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			t.Parallel()
			bound, ok := bounds[scn.Name]
			if !ok {
				t.Fatalf("no liveness bound declared for builtin %q — add one", scn.Name)
			}
			rep := runScenario(t, scn, 60, 12, 7)
			if rep.MaxStallRun > bound {
				t.Errorf("max stall run %d exceeds bound %d", rep.MaxStallRun, bound)
			}
			if rep.Decided == 0 {
				t.Error("no round decided at all")
			}
		})
	}
}

// randomScenario draws a structurally valid scenario with 1-3 phases of
// random windows, targets, and injections.
func randomScenario(rng *rand.Rand, idx int) Scenario {
	scn := Scenario{Name: fmt.Sprintf("random_%d", idx)}
	phases := 1 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		from := uint64(1 + rng.Intn(6))
		to := from + uint64(rng.Intn(5))
		target := Target{Mode: TargetRandom, Frac: 0.05 + 0.25*rng.Float64()}
		switch rng.Intn(4) {
		case 0:
			target = Target{Mode: TargetAll}
		case 1:
			target = Target{Mode: TargetTopStake, Frac: 0.1 + 0.2*rng.Float64()}
		case 2:
			target = Target{Mode: TargetBottomStake, Count: 1 + rng.Intn(10)}
		}
		var inj Injection
		switch rng.Intn(9) {
		case 0:
			inj = Injection{Kind: InjectBehavior, Behavior: protocol.Selfish}
		case 1:
			inj = Injection{Kind: InjectEquivocateVotes, Fan: 2 + rng.Intn(3)}
		case 2:
			inj = Injection{Kind: InjectEquivocateProposals, Fan: 2 + rng.Intn(2)}
		case 3:
			inj = Injection{Kind: InjectSilence}
		case 4:
			inj = Injection{Kind: InjectAdaptiveCorrupt, Budget: 1 + rng.Intn(10)}
		case 5:
			inj = Injection{Kind: InjectCrashChurn, CrashProb: rng.Float64() * 0.5, RecoverProb: rng.Float64()}
		case 6:
			inj = Injection{Kind: InjectEclipse}
		case 7:
			inj = Injection{Kind: InjectLossBurst, Loss: rng.Float64() * 0.3}
		case 8:
			inj = Injection{Kind: InjectDelaySpike, DelayScale: 1 + 7*rng.Float64()}
		}
		scn.Phases = append(scn.Phases, Phase{
			Name: fmt.Sprintf("p%d", p), From: from, To: to,
			Target: target, Inject: []Injection{inj},
		})
	}
	return scn
}

// TestRandomScenarioSafetyProperty is the randomized adversary property
// test: arbitrary generated fault timelines — any mix of equivocation,
// corruption, churn, partitions, loss, and delay — must never produce
// conflicting honest finalisations.
func TestRandomScenarioSafetyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	rng := sim.NewRNG(99, "adversary.property")
	for i := 0; i < 12; i++ {
		scn := randomScenario(rng, i)
		if err := scn.Validate(); err != nil {
			t.Fatalf("generator produced invalid scenario: %v", err)
		}
		seed := int64(1000 + i)
		rep := runScenario(t, scn, 40, 8, seed)
		if rep.SafetyViolations != 0 {
			t.Fatalf("scenario %d (%+v): safety violated: %v", i, scn, rep.Forks)
		}
		if rep.Rounds != 8 {
			t.Fatalf("scenario %d: audit saw %d rounds, want 8", i, rep.Rounds)
		}
	}
}

// TestRandomScenarioDeterminism re-runs a random scenario at the same
// seed and requires identical audits — the whole engine, overlay
// included, must be a pure function of (seed, scenario).
func TestRandomScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol simulation")
	}
	rng := sim.NewRNG(7, "adversary.det")
	scn := randomScenario(rng, 0)
	a := runScenario(t, scn, 40, 8, 555)
	b := runScenario(t, scn, 40, 8, 555)
	if a.Decided != b.Decided || a.Stalls != b.Stalls || a.Corruptions != b.Corruptions ||
		a.MeanFinalFrac != b.MeanFinalFrac || a.MeanNoneFrac != b.MeanNoneFrac {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}
