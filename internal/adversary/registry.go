package adversary

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// The registry maps scenario names to builders. Builders rather than
// values so every Lookup hands out an independent Scenario (phases hold
// slices).
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Scenario{}
)

// Register adds a named scenario builder; it panics on duplicates so a
// typo'd re-registration fails loudly at init time.
func Register(name string, build func() Scenario) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("adversary: scenario %q registered twice", name))
	}
	registry[name] = build
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Scenario{}, false
	}
	return build(), true
}

// Names lists registered scenarios in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns every registered scenario, sorted by name.
func Builtin() []Scenario {
	names := Names()
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		s, _ := Lookup(name)
		out = append(out, s)
	}
	return out
}

// HonestBaseline is the control scenario: no phases, bit-for-bit
// identical to an unscripted run — the golden-pin anchor.
const HonestBaseline = "honest_baseline"

// EclipseEquivocation is the bundled mixed-timeline scenario the
// acceptance gate runs: an eclipse of the richest nodes overlapping a
// Byzantine vote/proposal equivocation wave.
const EclipseEquivocation = "eclipse_equivocation"

func init() {
	Register(HonestBaseline, func() Scenario {
		return Scenario{
			Name:        HonestBaseline,
			Description: "control: no injections; reproduces unscripted runs bit-for-bit",
		}
	})

	Register("equivocation_storm", func() Scenario {
		return Scenario{
			Name:        "equivocation_storm",
			Description: "20% random Byzantine equivocators send conflicting votes and proposals in rounds 2-7",
			Phases: []Phase{{
				Name: "storm", From: 2, To: 7,
				Target: Target{Mode: TargetRandom, Frac: 0.20},
				Inject: []Injection{
					{Kind: InjectEquivocateVotes, Fan: 2},
					{Kind: InjectEquivocateProposals, Fan: 2},
				},
			}},
		}
	})

	Register("adaptive_corruption", func() Scenario {
		return Scenario{
			Name:        "adaptive_corruption",
			Description: "from round 2, committee members are flipped malicious as sortition reveals them (budget 12)",
			Phases: []Phase{{
				Name: "corrupt", From: 2,
				Target: Target{Mode: TargetAll},
				Inject: []Injection{
					{Kind: InjectAdaptiveCorrupt, Behavior: protocol.Malicious, Budget: 12},
				},
			}},
		}
	})

	Register(EclipseEquivocation, func() Scenario {
		return Scenario{
			Name:        EclipseEquivocation,
			Description: "rounds 2-6 eclipse the richest 10% of stake; rounds 3-8 a random 15% equivocate votes",
			Phases: []Phase{
				{
					Name: "eclipse", From: 2, To: 6,
					Target: Target{Mode: TargetTopStake, Frac: 0.10},
					Inject: []Injection{{Kind: InjectEclipse}},
				},
				{
					Name: "equivocate", From: 3, To: 8,
					Target: Target{Mode: TargetRandom, Frac: 0.15},
					Inject: []Injection{{Kind: InjectEquivocateVotes, Fan: 2}},
				},
			},
		}
	})

	Register("partition_healing", func() Scenario {
		return Scenario{
			Name:        "partition_healing",
			Description: "rounds 2-5 split a random half of the network from the rest, then heal",
			Phases: []Phase{{
				Name: "split", From: 2, To: 5,
				Target: Target{Mode: TargetRandom, Frac: 0.50},
				Inject: []Injection{{Kind: InjectPartition}},
			}},
		}
	})

	Register("crash_churn", func() Scenario {
		return Scenario{
			Name:        "crash_churn",
			Description: "a random 30% of nodes crash with p=0.3 and recover with p=0.5 per round, for the whole run",
			Phases: []Phase{{
				Name: "churn", From: 1,
				Target: Target{Mode: TargetRandom, Frac: 0.30},
				Inject: []Injection{{Kind: InjectCrashChurn, CrashProb: 0.3, RecoverProb: 0.5}},
			}},
		}
	})

	Register("silence_degrade", func() Scenario {
		return Scenario{
			Name:        "silence_degrade",
			Description: "rounds 2-7 the richest 20% go selectively silent while all links suffer a 15% loss burst",
			Phases: []Phase{
				{
					Name: "silence", From: 2, To: 7,
					Target: Target{Mode: TargetTopStake, Frac: 0.20},
					Inject: []Injection{{Kind: InjectSilence}},
				},
				{
					Name: "loss", From: 2, To: 7,
					Target: Target{Mode: TargetAll},
					Inject: []Injection{{Kind: InjectLossBurst, Loss: 0.15}},
				},
			},
		}
	})

	Register("delay_spike", func() Scenario {
		return Scenario{
			Name:        "delay_spike",
			Description: "rounds 3-6 links touching a random 40% of nodes run 6x slower (weak synchrony by fault overlay)",
			Phases: []Phase{{
				Name: "spike", From: 3, To: 6,
				Target: Target{Mode: TargetRandom, Frac: 0.40},
				Inject: []Injection{{Kind: InjectDelaySpike, DelayScale: 6}},
			}},
		}
	})
}
