package adversary

import (
	"strings"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

// newRunner builds an all-honest test network with stakes 1..n%50+1.
func newRunner(t *testing.T, n int, seed int64) *protocol.Runner {
	t.Helper()
	stakes := make([]float64, n)
	behaviors := make([]protocol.Behavior, n)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	r, err := protocol.NewRunner(protocol.Config{
		Params:    protocol.DefaultParams(),
		Stakes:    stakes,
		Behaviors: behaviors,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryHasRequiredBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d scenarios, the scenario driver promises at least 5", len(names))
	}
	for _, required := range []string{HonestBaseline, EclipseEquivocation} {
		if _, ok := Lookup(required); !ok {
			t.Fatalf("required scenario %q not registered", required)
		}
	}
	for _, s := range Builtin() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("builtin %s has no description", s.Name)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
		want string // substring of the expected error; empty = valid
	}{
		{"no name", Scenario{}, "needs a name"},
		{"empty ok", Scenario{Name: "x"}, ""},
		{"window inverted", Scenario{Name: "x", Phases: []Phase{{From: 5, To: 2,
			Inject: []Injection{{Kind: InjectSilence}}}}}, "To 2 < From 5"},
		{"no injections", Scenario{Name: "x", Phases: []Phase{{From: 1}}}, "without injections"},
		{"indices missing", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Target: Target{Mode: TargetIndices},
			Inject: []Injection{{Kind: InjectSilence}}}}}, "without indices"},
		{"behavior missing", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Inject: []Injection{{Kind: InjectBehavior}}}}}, "without a behavior"},
		{"bad loss", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Inject: []Injection{{Kind: InjectLossBurst, Loss: 1.2}}}}}, "loss burst"},
		{"bad delay", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Inject: []Injection{{Kind: InjectDelaySpike, DelayScale: 0.5}}}}}, "delay scale"},
		{"bad churn", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Inject: []Injection{{Kind: InjectCrashChurn, CrashProb: 2}}}}}, "probabilities"},
		{"unsized random target", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Target: Target{Mode: TargetRandom},
			Inject: []Injection{{Kind: InjectSilence}}}}}, "needs Count or Frac"},
		{"unsized top-stake target", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Target: Target{Mode: TargetTopStake},
			Inject: []Injection{{Kind: InjectSilence}}}}}, "needs Count or Frac"},
		{"unknown kind", Scenario{Name: "x", Phases: []Phase{{From: 1,
			Inject: []Injection{{Kind: 99}}}}}, "unknown injection"},
	}
	for _, tc := range cases {
		err := tc.scn.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestTargetResolution(t *testing.T) {
	r := newRunner(t, 50, 11)
	scn := Scenario{
		Name: "targets",
		Phases: []Phase{
			{Name: "all", From: 1, Target: Target{Mode: TargetAll},
				Inject: []Injection{{Kind: InjectSilence}}},
			{Name: "idx", From: 1, Target: Target{Mode: TargetIndices, Indices: []int{3, 7, 99, -1}},
				Inject: []Injection{{Kind: InjectSilence}}},
			{Name: "rand", From: 1, Target: Target{Mode: TargetRandom, Count: 5},
				Inject: []Injection{{Kind: InjectSilence}}},
			{Name: "top", From: 1, Target: Target{Mode: TargetTopStake, Frac: 0.1},
				Inject: []Injection{{Kind: InjectSilence}}},
			{Name: "bottom", From: 1, Target: Target{Mode: TargetBottomStake, Count: 4},
				Inject: []Injection{{Kind: InjectSilence}}},
		},
	}
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.resolveTargets(0); len(got) != 50 {
		t.Errorf("all: %d targets, want 50", len(got))
	}
	if got := e.resolveTargets(1); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("indices: %v, want [3 7] (out-of-range dropped)", got)
	}
	rand1 := e.resolveTargets(2)
	if len(rand1) != 5 {
		t.Errorf("random: %d targets, want 5", len(rand1))
	}
	seen := map[int]bool{}
	for _, id := range rand1 {
		if id < 0 || id >= 50 || seen[id] {
			t.Fatalf("random target list invalid: %v", rand1)
		}
		seen[id] = true
	}
	// Resolution is cached: a second call returns the same draw.
	rand2 := e.resolveTargets(2)
	for i := range rand1 {
		if rand1[i] != rand2[i] {
			t.Fatal("random targets re-drawn on second resolve")
		}
	}
	// Stakes for 50 nodes are the unique values 1..50, so stake-ranked
	// targets are exact.
	stakes := r.Canonical().Stakes()
	top := e.resolveTargets(3)
	if len(top) != 5 {
		t.Fatalf("top-stake: %d targets, want 5", len(top))
	}
	for _, id := range top {
		if stakes[id] < 46 {
			t.Errorf("top-stake target %d has stake %.0f, want one of the 5 richest (>=46)", id, stakes[id])
		}
	}
	bottom := e.resolveTargets(4)
	for _, id := range bottom {
		if stakes[id] > 4 {
			t.Errorf("bottom-stake target %d has stake %.0f, want one of the 4 poorest (<=4)", id, stakes[id])
		}
	}
}

func TestAttachRejectsInvalidScenario(t *testing.T) {
	r := newRunner(t, 20, 3)
	_, err := Attach(r, Scenario{Name: "bad", Phases: []Phase{{From: 1}}})
	if err == nil {
		t.Fatal("invalid scenario attached without error")
	}
}

// TestDeterministicRuns pins that two identical seeded runs of a
// randomness-consuming scenario produce identical reports and audits.
func TestDeterministicRuns(t *testing.T) {
	run := func() ([]protocol.RoundReport, Report) {
		r := newRunner(t, 60, 17)
		scn, _ := Lookup("crash_churn")
		e, err := Attach(r, scn)
		if err != nil {
			t.Fatal(err)
		}
		return r.RunRounds(8), e.Audit().Report()
	}
	rep1, audit1 := run()
	rep2, audit2 := run()
	for i := range rep1 {
		if rep1[i].FinalCount != rep2[i].FinalCount ||
			rep1[i].NoneCount != rep2[i].NoneCount ||
			rep1[i].CanonicalHash != rep2[i].CanonicalHash ||
			rep1[i].Decided != rep2[i].Decided {
			t.Fatalf("round %d differs across identical seeded runs", i)
		}
	}
	if audit1.Stalls != audit2.Stalls || audit1.Decided != audit2.Decided ||
		audit1.MeanFinalFrac != audit2.MeanFinalFrac {
		t.Fatalf("audits differ: %+v vs %+v", audit1, audit2)
	}
}

// TestEquivocationSplitsTallies checks the equivocation seam end to end:
// a large equivocating minority must visibly reduce final consensus
// relative to the honest baseline at the same seed.
func TestEquivocationSplitsTallies(t *testing.T) {
	final := func(name string) float64 {
		r := newRunner(t, 60, 23)
		scn, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		e, err := Attach(r, scn)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, rep := range r.RunRounds(8) {
			sum += rep.FinalFrac()
		}
		if e.Audit().Report().SafetyViolations != 0 {
			t.Fatalf("%s: safety violated", name)
		}
		return sum / 8
	}
	base := final(HonestBaseline)
	storm := final("equivocation_storm")
	if storm >= base {
		t.Errorf("equivocation storm final %.2f did not degrade vs baseline %.2f", storm, base)
	}
}

// TestPartitionSeversLinks checks the overlay end to end: a full-window
// partition must register fault drops and stall consensus within the
// window, then recover after it.
func TestPartitionSeversLinks(t *testing.T) {
	r := newRunner(t, 60, 29)
	scn, _ := Lookup("partition_healing")
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	reports := r.RunRounds(8)
	stats := r.Network().Stats()
	if stats.DroppedFault == 0 {
		t.Error("partition produced no fault drops")
	}
	if e.Audit().Report().Stalls == 0 {
		t.Error("a half/half partition should stall some rounds")
	}
	// Ticks 6..8 are after healing: consensus must resume.
	recovered := false
	for _, rep := range reports[5:] {
		if rep.Decided {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no round decided after the partition healed")
	}
}

// TestCrashChurnTogglesOnline verifies churn actually takes nodes off
// the network and brings them back.
func TestCrashChurnTogglesOnline(t *testing.T) {
	r := newRunner(t, 40, 31)
	scn, _ := Lookup("crash_churn")
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(6)
	downEver := 0
	for i := 0; i < 40; i++ {
		if e.down[i] {
			downEver++
		}
	}
	offline := 0
	for i := 0; i < 40; i++ {
		if !r.Network().Online(i) {
			offline++
		}
	}
	if offline == 0 && downEver == 0 {
		t.Error("crash churn never took any node offline")
	}
	if offline != downEver {
		t.Errorf("engine down-set (%d) disagrees with network online state (%d offline)", downEver, offline)
	}
}

// TestCrashChurnHealsAfterWindow pins that a bounded churn phase
// releases its victims when the window closes: crashed nodes must come
// back online once the phase retires, like every other injection.
func TestCrashChurnHealsAfterWindow(t *testing.T) {
	r := newRunner(t, 40, 43)
	scn := Scenario{
		Name: "bounded_churn",
		Phases: []Phase{{
			Name: "churn", From: 1, To: 3,
			Target: Target{Mode: TargetRandom, Frac: 0.5},
			// CrashProb 1 downs every target immediately; RecoverProb 0
			// means only the window's end can bring them back.
			Inject: []Injection{{Kind: InjectCrashChurn, CrashProb: 1, RecoverProb: 0}},
		}},
	}
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(3)
	offlineDuring := 0
	for i := 0; i < 40; i++ {
		if !r.Network().Online(i) {
			offlineDuring++
		}
	}
	if offlineDuring == 0 {
		t.Fatal("churn with CrashProb 1 downed nobody inside the window")
	}
	r.RunRounds(2) // ticks 4-5: the phase has retired
	for i := 0; i < 40; i++ {
		if !r.Network().Online(i) {
			t.Fatalf("node %d still offline after the churn window closed", i)
		}
		if e.down[i] {
			t.Fatalf("engine still tracks node %d as down after the window closed", i)
		}
	}
}

// TestAdaptiveCorruptionBudget pins that corruption stops at the budget
// and flips only revealed nodes.
func TestAdaptiveCorruptionBudget(t *testing.T) {
	r := newRunner(t, 60, 37)
	scn, _ := Lookup("adaptive_corruption")
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	r.RunRounds(6)
	rep := e.Audit().Report()
	if rep.Corruptions == 0 {
		t.Fatal("adaptive phase corrupted nobody")
	}
	if rep.Corruptions > 12 {
		t.Fatalf("corruptions %d exceed the budget of 12", rep.Corruptions)
	}
	malicious := 0
	for i := 0; i < 60; i++ {
		if r.Behavior(i) == protocol.Malicious {
			malicious++
		}
	}
	if malicious != rep.Corruptions {
		t.Errorf("%d malicious nodes, audit says %d corruptions", malicious, rep.Corruptions)
	}
}

// TestSparseEclipseVictimOutcomes is the regression test for sparse-mode
// per-victim queries: a scenario naming eclipse victims by index, run
// above the sparse threshold, must report exact NodeOutcome answers for
// those victims. Before the fix, an unmaterialized victim read as
// OutcomeNone whether or not it decided, so per-victim assertions were
// meaningless above SparseAutoThreshold; Attach now pins TargetIndices
// nodes into every round's materialized set.
func TestSparseEclipseVictimOutcomes(t *testing.T) {
	const n = protocol.SparseAutoThreshold // 4096: at the sparse boundary
	victims := []int{9, 1033, 2048, 4095}
	stakes := make([]float64, n)
	behaviors := make([]protocol.Behavior, n)
	for i := range stakes {
		stakes[i] = float64(1 + i%50)
		behaviors[i] = protocol.Honest
	}
	p := protocol.DefaultParams()
	p.TauStep, p.TauFinal = 60, 70
	p.AsyncProb = 0
	r, err := protocol.NewRunner(protocol.Config{
		Params:    p,
		Stakes:    stakes,
		Behaviors: behaviors,
		Fanout:    5,
		Seed:      99,
		Sparse:    protocol.SparseOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	scn := Scenario{
		Name:        "pin_eclipse",
		Description: "eclipse four named victims from tick 3 on",
		Phases: []Phase{{
			Name: "eclipse", From: 3, To: 8,
			Target: Target{Mode: TargetIndices, Indices: victims},
			Inject: []Injection{{Kind: InjectEclipse}},
		}},
	}
	e, err := Attach(r, scn)
	if err != nil {
		t.Fatal(err)
	}
	// Tick 1 is all-honest and every node starts synced: a decided first
	// round must show each victim an exact (non-None) outcome. Without
	// pinning, a given node is materialized only when the committee or
	// probe-panel lottery happens to draw it, so at this population some
	// victim reads None here. (Later honest rounds are no good for this
	// assertion: an exact outcome can legitimately be None once a node
	// has fallen behind through ordinary gossip misses.)
	rep := r.RunRounds(1)[0]
	if !rep.Decided {
		t.Fatal("round 1 did not decide; the exact-outcome assertion never ran")
	}
	for _, id := range victims {
		if out, _ := r.NodeOutcome(id); out == protocol.OutcomeNone {
			t.Errorf("tick 1 (decided): victim %d reports OutcomeNone — not materialized", id)
		}
	}
	r.RunRounds(1) // tick 2: still honest
	// Ticks 3-8: the victims are cut from the backbone. From tick 4 they
	// are behind the canonical chain (or starved of every proposal), so
	// their exact outcome is None — which per-victim audits can now
	// actually observe, instead of None-because-unmaterialized.
	for tick := 3; tick <= 8; tick++ {
		r.RunRounds(1)
		if tick < 4 {
			continue
		}
		for _, id := range victims {
			if out, _ := r.NodeOutcome(id); out != protocol.OutcomeNone {
				t.Errorf("tick %d: eclipsed victim %d reports %v, want OutcomeNone", tick, id, out)
			}
		}
	}
	if got := e.Audit().Report().SafetyViolations; got != 0 {
		t.Fatalf("eclipse run violated safety %d times", got)
	}
}

// TestSilenceDegradesConsensus: with the richest 20% selectively silent
// and a loss burst active, committee quorums must visibly suffer
// relative to the honest baseline at the same seed. (Raw message counts
// are not a usable signal here: stalled rounds keep every node voting
// through all BinaryBA* steps, which outweighs the withheld votes.)
func TestSilenceDegradesConsensus(t *testing.T) {
	run := func(name string) (finalFrac float64, stalls int) {
		r := newRunner(t, 50, 41)
		scn, _ := Lookup(name)
		e, err := Attach(r, scn)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, rep := range r.RunRounds(6) {
			sum += rep.FinalFrac()
		}
		return sum / 6, e.Audit().Report().Stalls
	}
	degradedFinal, degradedStalls := run("silence_degrade")
	baseFinal, baseStalls := run(HonestBaseline)
	if degradedFinal >= baseFinal {
		t.Errorf("silence+loss mean final %.2f did not degrade vs baseline %.2f", degradedFinal, baseFinal)
	}
	if degradedStalls < baseStalls {
		t.Errorf("silence+loss stalled %d rounds, baseline %d", degradedStalls, baseStalls)
	}
}
