package sortition

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// The defining property of the binomial sub-user lottery: with total
// stake W and expected committee size τ, the summed SubUsers across the
// whole population is a sum of W independent Bernoulli(τ/W) draws, so its
// mean concentrates on τ. This guards the cached threshold tables against
// drift: a mis-built table would bias the committee size immediately.
func TestCommitteeSizeConcentratesOnTau(t *testing.T) {
	const (
		nodes  = 120
		tau    = 400.0
		rounds = 60
	)
	cache := NewCache()
	rng := sim.NewRNG(21, "property.committee")
	stakes := make([]float64, nodes)
	keys := make([]vrf.KeyPair, nodes)
	total := 0.0
	for i := range stakes {
		stakes[i] = float64(1 + rng.Intn(100))
		total += stakes[i]
		keys[i] = vrf.GenerateKey(rng)
	}

	sum := 0.0
	draws := 0
	for round := uint64(0); round < rounds; round++ {
		p := Params{
			Seed:       [32]byte{byte(round), byte(round >> 8), 7},
			Role:       RoleCommittee,
			Round:      round,
			Step:       1,
			Tau:        tau,
			TotalStake: total,
		}
		committee := 0.0
		for i := range stakes {
			res, err := cache.Select(keys[i].Private, stakes[i], p)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Select(keys[i].Private, stakes[i], p)
			if err != nil || direct != res {
				t.Fatalf("round %d node %d: cached selection diverged from direct", round, i)
			}
			committee += float64(res.SubUsers)
		}
		sum += committee
		draws++
	}

	mean := sum / float64(draws)
	// The per-round committee stake is Binomial(W, τ/W): variance
	// ≈ τ(1-τ/W), so the mean of `rounds` draws has standard error
	// σ/sqrt(rounds). Accept a 5σ band — seeds are fixed, so this is a
	// deterministic regression bound rather than a flaky statistical test.
	stderr := math.Sqrt(tau*(1-tau/total)) / math.Sqrt(float64(draws))
	if diff := math.Abs(mean - tau); diff > 5*stderr {
		t.Fatalf("mean committee stake %v strays from τ=%v by %v (> 5σ = %v); threshold tables drifted?",
			mean, tau, diff, 5*stderr)
	}
}

// Same concentration property for a population where every account's
// stake exceeds the underflow regime, exercising long threshold tables.
func TestCommitteeSizeLargeStakes(t *testing.T) {
	const (
		nodes = 40
		tau   = 300.0
	)
	cache := NewCache()
	rng := sim.NewRNG(22, "property.largestakes")
	stakes := make([]float64, nodes)
	keys := make([]vrf.KeyPair, nodes)
	total := 0.0
	for i := range stakes {
		stakes[i] = float64(5_000 + rng.Intn(5_000))
		total += stakes[i]
		keys[i] = vrf.GenerateKey(rng)
	}
	sum := 0.0
	const rounds = 40
	for round := uint64(0); round < rounds; round++ {
		p := Params{
			Seed:       [32]byte{3, byte(round)},
			Role:       RoleCommittee,
			Round:      round,
			Tau:        tau,
			TotalStake: total,
		}
		for i := range stakes {
			res, err := cache.Select(keys[i].Private, stakes[i], p)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.SubUsers)
		}
	}
	mean := sum / rounds
	stderr := math.Sqrt(tau*(1-tau/total)) / math.Sqrt(rounds)
	if diff := math.Abs(mean - tau); diff > 5*stderr {
		t.Fatalf("mean committee stake %v strays from τ=%v by %v (> 5σ = %v)", mean, tau, diff, 5*stderr)
	}
}
