package sortition

import "github.com/dsn2020-algorand/incentives/internal/vrf"

// SelectBernoulli is the whole-node lottery some early PoS designs used
// and the ablation comparator for the binomial sub-user scheme (DESIGN.md
// ablation 1): the node is selected all-or-nothing with probability
// min(1, stake·τ/W), and a selected node carries its entire stake as
// weight. The scheme has two defects the sub-user design fixes, and the
// ablation benchmark quantifies both: (i) with heterogeneous stakes the
// expected selected stake is (τ/W)·Σs² > τ (rich accounts are double
// counted — once in the probability and once in the weight), and (ii)
// committee stake arrives in whole-account lumps, so its variance is far
// higher than the per-stake-unit lottery's.
func SelectBernoulli(key vrf.PrivateKey, stake float64, p Params) (Result, error) {
	if p.Tau <= 0 || p.TotalStake <= 0 {
		return Result{}, ErrInvalidParams
	}
	if stake < 0 {
		return Result{}, ErrInvalidParams
	}
	msg := p.message()
	out, proof := key.Evaluate(msg[:])
	prob := stake * p.Tau / p.TotalStake
	if prob > 1 {
		prob = 1
	}
	res := Result{Output: out, Proof: proof}
	if out.Uniform() < prob {
		res.SubUsers = int(stake)
		if res.SubUsers < 1 {
			res.SubUsers = 1
		}
		res.Priority = bestPriority(out, 1)
	}
	return res, nil
}

// VerifyBernoulli checks a claimed whole-node selection.
func VerifyBernoulli(pub vrf.PublicKey, stake float64, p Params, res Result) bool {
	if p.Tau <= 0 || p.TotalStake <= 0 || stake < 0 {
		return false
	}
	msg := p.message()
	if !pub.Verify(msg[:], res.Output, res.Proof) {
		return false
	}
	prob := stake * p.Tau / p.TotalStake
	if prob > 1 {
		prob = 1
	}
	selected := res.Output.Uniform() < prob
	if !selected {
		return res.SubUsers == 0 && res.Priority.IsZero()
	}
	want := int(stake)
	if want < 1 {
		want = 1
	}
	return res.SubUsers == want && res.Priority == bestPriority(res.Output, 1)
}
