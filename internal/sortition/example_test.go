package sortition_test

import (
	"fmt"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/sortition"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// ExampleSelect runs the committee lottery for one account and verifies
// the resulting proof as a peer would.
func ExampleSelect() {
	key := vrf.GenerateKey(rand.New(rand.NewSource(7)))
	params := sortition.Params{
		Seed:       [32]byte{1, 2, 3},
		Role:       sortition.RoleCommittee,
		Round:      42,
		Step:       1,
		Tau:        600,  // expected committee stake
		TotalStake: 1000, // network stake
	}
	res, err := sortition.Select(key.Private, 50, params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("selected:", res.Selected())
	fmt.Println("verified:", sortition.Verify(key.Public, 50, params, res))
	fmt.Println("claiming more stake verifies:", sortition.Verify(key.Public, 500, params, res))
	// Output:
	// selected: true
	// verified: true
	// claiming more stake verifies: false
}
