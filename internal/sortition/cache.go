package sortition

import (
	"math"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// Cache is the sortition selection oracle: it memoises the binomial CDF
// threshold tables that Select and Verify would otherwise rebuild from
// scratch on every call, turning repeated-round selection into one VRF
// evaluation plus a binary search.
//
// # Invalidation contract
//
// Entries are keyed by the pair (whole-unit stake w, selection probability
// p = τ/W). Every input that influences selection statistics is folded
// into that key:
//
//   - an account's stake change alters w → new key, fresh table;
//   - a committee-size (τ) or total-stake (W) change alters p → new key.
//
// Cached tables therefore never go stale — there is no explicit
// invalidation to perform on stake movement; the stale entry is simply
// never consulted again. The only reason to drop entries is memory: a
// long-lived process sweeping many (stake, τ, W) combinations can call
// Reset to release all tables at a natural boundary (e.g. between
// simulation runs). Seed, role, round and step do NOT enter the key: they
// only affect the VRF draw, never the thresholds.
//
// A Cache is NOT safe for concurrent use; give each goroutine (in this
// repo: each protocol.Runner, hence each run-pool worker) its own
// instance. The zero value is not usable — construct with NewCache.
type Cache struct {
	tables map[thresholdKey]*thresholdTable

	// hits/misses count table lookups for telemetry: plain (non-atomic)
	// fields — the cache is single-threaded by contract — cumulative for
	// the cache's lifetime (Reset releases tables, not statistics, so
	// consumers flushing deltas stay monotonic across the high-water
	// Reset the protocol runner performs mid-run).
	hits   uint64
	misses uint64
}

// NewCache returns an empty selection oracle.
func NewCache() *Cache {
	return &Cache{tables: make(map[thresholdKey]*thresholdTable)}
}

// Reset drops every memoised table, releasing memory. Existing results
// remain valid; subsequent calls rebuild tables on demand.
func (c *Cache) Reset() {
	clear(c.tables)
}

// Size returns the number of distinct (stake, probability) tables held.
func (c *Cache) Size() int { return len(c.tables) }

type thresholdKey struct {
	w    int
	prob float64
}

// thresholdTable holds the running binomial CDF of subUsers, truncated at
// the point where the PMF term underflows to exactly zero: beyond that
// index every further CDF value is bit-identical to the last stored one,
// so lookups past the end are decided by the final entry alone.
//
// cdf[j] is the CDF value the scalar loop in subUsers compares u against
// at iteration j, computed with the same operations in the same order —
// the table walk is therefore bit-for-bit equivalent to the recomputation
// it replaces, which the equivalence tests and golden figures pin.
type thresholdTable struct {
	cdf []float64
}

// lookup returns the unique j with cdf[j-1] <= u < cdf[j], i.e. the first
// index whose threshold exceeds u, or w when u clears every threshold.
func (t *thresholdTable) lookup(u float64, w int) int {
	// Binary search for the first j with u < cdf[j]; cdf is non-decreasing
	// (each entry adds a non-negative pmf term), so this is the same j the
	// linear scan finds.
	lo, hi := 0, len(t.cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < t.cdf[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(t.cdf) {
		// u is at or above the last stored threshold. All truncated entries
		// equal the last stored value, so the scan would run off the end.
		return w
	}
	return lo
}

// table returns the memoised threshold table for (w, prob), building it
// on first use.
func (c *Cache) table(w int, prob float64) *thresholdTable {
	key := thresholdKey{w: w, prob: prob}
	if t, ok := c.tables[key]; ok {
		c.hits++
		return t
	}
	c.misses++
	t := buildThresholdTable(w, prob)
	c.tables[key] = t
	return t
}

// Stats returns the cumulative table lookup hit/miss counts. Reading
// them never affects selection.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// buildThresholdTable replays the incremental pmf/cdf recurrence of
// subUsers once, recording the CDF value of every iteration until the pmf
// term underflows to zero (after which the CDF is frozen and needs no
// further entries) or all w iterations are recorded.
func buildThresholdTable(w int, prob float64) *thresholdTable {
	logPmf := float64(w) * math.Log1p(-prob)
	pmf := math.Exp(logPmf)
	cdf := pmf
	t := &thresholdTable{cdf: make([]float64, 0, 64)}
	for j := 0; j < w; j++ {
		t.cdf = append(t.cdf, cdf)
		if pmf == 0 {
			// Every later entry would repeat cdf exactly; truncate.
			break
		}
		pmf *= prob / (1 - prob) * float64(w-j) / float64(j+1)
		cdf += pmf
	}
	return t
}

// subUsers mirrors the scalar subUsers through the threshold table; it
// implements inverter, so the shared selectWith/verifyWith bodies route
// the binomial inversion here while everything else (validation, VRF,
// priority) stays literally the same code as the direct path.
func (c *Cache) subUsers(u float64, w int, prob float64) int {
	if w <= 0 || prob <= 0 {
		return 0
	}
	if prob >= 1 {
		return w
	}
	return c.table(w, prob).lookup(u, w)
}

// Select is the cached equivalent of the package-level Select: identical
// results, but the binomial inversion walks the memoised threshold table
// instead of recomputing the PDF recurrence per call.
func (c *Cache) Select(key vrf.PrivateKey, stake float64, p Params) (Result, error) {
	return selectWith(c, key, stake, p)
}

// Verify is the cached equivalent of the package-level Verify.
func (c *Cache) Verify(pub vrf.PublicKey, stake float64, p Params, res Result) bool {
	return verifyWith(c, pub, stake, p, res)
}

// SelectBernoulli is the cached-oracle entry point for the whole-node
// lottery. The Bernoulli draw needs no threshold table (one comparison
// decides selection), so this delegates to the package-level
// implementation; it exists so callers holding a Cache can route every
// sortition variant through the oracle API.
func (c *Cache) SelectBernoulli(key vrf.PrivateKey, stake float64, p Params) (Result, error) {
	return SelectBernoulli(key, stake, p)
}

// VerifyBernoulli mirrors SelectBernoulli for verification.
func (c *Cache) VerifyBernoulli(pub vrf.PublicKey, stake float64, p Params, res Result) bool {
	return VerifyBernoulli(pub, stake, p, res)
}
