package sortition

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// FuzzSelectVerify asserts the sortition soundness invariants for
// arbitrary stakes and parameters, for both the binomial sub-user lottery
// and the whole-node Bernoulli ablation:
//
//   - every Select result round-trips through Verify under the matching
//     public key (completeness);
//   - the selected sub-user count never exceeds the whole-unit stake;
//   - the cached oracle path is bit-identical to the direct path, so the
//     threshold tables can never drift from the scalar recurrence.
func FuzzSelectVerify(f *testing.F) {
	f.Add(int64(1), 50.0, 100.0, 10_000.0, uint64(3), uint64(1), uint8(2))
	f.Add(int64(2), 0.0, 26.0, 1e6, uint64(0), uint64(0), uint8(1))
	f.Add(int64(3), 1e6, 0.35, 1.0, uint64(9), uint64(7), uint8(3))
	f.Add(int64(4), 2.5, 1e9, 10.0, uint64(1), uint64(1<<20), uint8(2))
	f.Fuzz(func(t *testing.T, keySeed int64, stake, tau, total float64, round, step uint64, role uint8) {
		if math.IsNaN(stake) || math.IsInf(stake, 0) ||
			math.IsNaN(tau) || math.IsInf(tau, 0) ||
			math.IsNaN(total) || math.IsInf(total, 0) {
			t.Skip()
		}
		// Bound the whole-unit stake so one fuzz case cannot build a
		// gigabyte-scale threshold table or spin in bestPriority.
		if stake > 5e6 {
			t.Skip()
		}
		key := vrf.GenerateKey(sim.NewRNG(keySeed, "fuzz.sortition"))
		cache := NewCache()
		p := Params{
			Seed:       [32]byte{byte(round), byte(step)},
			Role:       Role(role),
			Round:      round,
			Step:       step,
			Tau:        tau,
			TotalStake: total,
		}
		valid := tau > 0 && total > 0 && stake >= 0

		res, err := Select(key.Private, stake, p)
		if !valid {
			if err == nil {
				t.Fatalf("Select accepted invalid params stake=%v tau=%v total=%v", stake, tau, total)
			}
		} else {
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			if w := int(stake); res.SubUsers < 0 || res.SubUsers > w {
				t.Fatalf("SubUsers = %d outside [0, %d]", res.SubUsers, w)
			}
			if !Verify(key.Public, stake, p, res) {
				t.Fatalf("Verify rejected its own Select result (stake=%v p=%+v)", stake, p)
			}
			cached, err := cache.Select(key.Private, stake, p)
			if err != nil || cached != res {
				t.Fatalf("cached Select diverged: %+v vs %+v (err=%v)", cached, res, err)
			}
			if !cache.Verify(key.Public, stake, p, res) {
				t.Fatalf("cached Verify rejected a valid result")
			}
		}

		resB, errB := SelectBernoulli(key.Private, stake, p)
		if !valid {
			if errB == nil {
				t.Fatalf("SelectBernoulli accepted invalid params")
			}
			return
		}
		if errB != nil {
			t.Fatalf("SelectBernoulli: %v", errB)
		}
		// The whole-node lottery reports the full stake as weight, floored
		// at one sub-user for fractional stakes.
		if resB.SubUsers != 0 {
			want := int(stake)
			if want < 1 {
				want = 1
			}
			if resB.SubUsers != want {
				t.Fatalf("Bernoulli SubUsers = %d, want 0 or %d", resB.SubUsers, want)
			}
		}
		if !VerifyBernoulli(key.Public, stake, p, resB) {
			t.Fatalf("VerifyBernoulli rejected its own result")
		}
		cachedB, err := cache.SelectBernoulli(key.Private, stake, p)
		if err != nil || cachedB != resB {
			t.Fatalf("cached SelectBernoulli diverged")
		}
	})
}
