package sortition

import (
	"math"
	"testing"
)

func TestBernoulliDefectsVsBinomial(t *testing.T) {
	// The whole-node lottery over-selects stake under heterogeneity
	// ((τ/W)·Σs² > τ) and selects it in whole-account lumps; the binomial
	// sub-user scheme hits τ exactly with per-unit granularity.
	const (
		nodes  = 200
		tau    = 80.0
		rounds = 150
	)
	stakes := make([]float64, nodes)
	total := 0.0
	sumSq := 0.0
	for i := range stakes {
		stakes[i] = float64(1 + i%100) // heterogeneous, max 100
		total += stakes[i]
		sumSq += stakes[i] * stakes[i]
	}

	run := func(selector func(i int, p Params) float64) (mean, varOut float64) {
		sum, sq := 0.0, 0.0
		for r := 0; r < rounds; r++ {
			p := testParams(tau, total)
			p.Round = uint64(r)
			roundStake := 0.0
			for i := 0; i < nodes; i++ {
				roundStake += selector(i, p)
			}
			sum += roundStake
			sq += roundStake * roundStake
		}
		mean = sum / rounds
		varOut = sq/rounds - mean*mean
		return mean, varOut
	}

	binMean, binVar := run(func(i int, p Params) float64 {
		res, err := Select(testKey(int64(i)).Private, stakes[i], p)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SubUsers)
	})
	berMean, berVar := run(func(i int, p Params) float64 {
		res, err := SelectBernoulli(testKey(int64(i)).Private, stakes[i], p)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SubUsers)
	})

	if math.Abs(binMean-tau) > 12 {
		t.Errorf("binomial mean selected stake = %v, want ~%v", binMean, tau)
	}
	// Defect (i): over-selection — expected (τ/W)·Σs².
	wantBer := tau / total * sumSq
	if math.Abs(berMean-wantBer) > 0.2*wantBer {
		t.Errorf("bernoulli mean selected stake = %v, want ~%v", berMean, wantBer)
	}
	if berMean < 2*binMean {
		t.Errorf("whole-node lottery should over-select: %v vs %v", berMean, binMean)
	}
	_ = berVar

	// Defect (ii): lumpy variance. For a fair comparison, rescale the
	// whole-node τ so both schemes select the same expected stake, then
	// compare relative variances (CV^2): the per-account lottery's
	// committee stake fluctuates far more.
	tauAdj := tau * total / sumSq
	berAdjMean, berAdjVar := run(func(i int, p Params) float64 {
		p.Tau = tauAdj
		res, err := SelectBernoulli(testKey(int64(i)).Private, stakes[i], p)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SubUsers)
	})
	if math.Abs(berAdjMean-tau) > 0.35*tau {
		t.Errorf("adjusted bernoulli mean = %v, want ~%v", berAdjMean, tau)
	}
	binCV2 := binVar / (binMean * binMean)
	berCV2 := berAdjVar / (berAdjMean * berAdjMean)
	if berCV2 < 5*binCV2 {
		t.Errorf("bernoulli CV^2 %v not >> binomial CV^2 %v", berCV2, binCV2)
	}
}

func TestBernoulliVerifyRoundTrip(t *testing.T) {
	p := testParams(800, 1000)
	for seed := int64(0); seed < 30; seed++ {
		kp := testKey(seed)
		res, err := SelectBernoulli(kp.Private, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyBernoulli(kp.Public, 20, p, res) {
			t.Fatalf("own bernoulli selection rejected (seed %d)", seed)
		}
	}
}

func TestBernoulliVerifyRejectsTampering(t *testing.T) {
	p := testParams(900, 1000) // near-certain selection
	kp := testKey(2)
	res, err := SelectBernoulli(kp.Private, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected() {
		t.Fatal("expected selection at tau=900")
	}
	bad := res
	bad.SubUsers++
	if VerifyBernoulli(kp.Public, 100, p, bad) {
		t.Error("inflated bernoulli claim accepted")
	}
	if VerifyBernoulli(testKey(3).Public, 100, p, res) {
		t.Error("foreign bernoulli proof accepted")
	}
}

func TestBernoulliInvalidParams(t *testing.T) {
	kp := testKey(1)
	if _, err := SelectBernoulli(kp.Private, 10, testParams(0, 100)); err != ErrInvalidParams {
		t.Errorf("tau=0 err = %v", err)
	}
	if _, err := SelectBernoulli(kp.Private, -1, testParams(10, 100)); err != ErrInvalidParams {
		t.Errorf("stake<0 err = %v", err)
	}
}

func TestBernoulliProbabilityClamp(t *testing.T) {
	// stake*tau/W > 1: always selected.
	p := testParams(500, 1000)
	for seed := int64(0); seed < 20; seed++ {
		res, err := SelectBernoulli(testKey(seed).Private, 900, p)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected() {
			t.Fatal("clamped probability should always select")
		}
	}
}
