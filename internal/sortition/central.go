package sortition

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// This file holds the centralized (sparse-committee) sampling primitives:
// instead of evaluating one VRF lottery per node per step — O(population)
// work for committees whose expected size is a constant τ — the runner
// draws the TOTAL number of selected seats from the binomial over the
// whole network stake and maps each seat to a node by bisecting the
// cumulative stake (weight.Index.Bisect / a prefix array). By binomial
// splitting, seats assigned to nodes in proportion to stake yield exactly
// the per-node joint distribution Binomial(w_i, p) that independent
// per-node draws produce; the per-node-draw path survives behind the
// protocol_pernode_draw build tag as the differential oracle, and the
// randomized equivalence suite pins the committee-size distributions of
// the two paths against each other.

// maxChunkLogPMF bounds -n·log1p(-p) per chunk so the chunk's pmf(0)
// never underflows to zero in the CDF-inversion loop. exp(-600) ≈ 2e-261
// stays comfortably inside the normal float64 range.
const maxChunkLogPMF = 600

// Binomial draws an exact Binomial(n, p) sample using rng. The sampler
// splits n into chunks small enough that each chunk's pmf(0) = (1-p)^m
// stays representable, draws each chunk by the same incremental
// CDF-inversion recurrence subUsers uses, and sums; for p > 1/2 it
// applies the symmetry Binomial(n, p) = n − Binomial(n, 1−p). The
// expected cost is O(n·p + n/chunk), i.e. proportional to the draw
// itself for the small selection probabilities sortition uses, never to
// a dense per-trial sweep.
func Binomial(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - Binomial(rng, n, 1-p)
	}
	perTrial := -math.Log1p(-p) // > 0
	chunk := n
	if float64(chunk)*perTrial > maxChunkLogPMF {
		chunk = int64(maxChunkLogPMF / perTrial)
		if chunk < 1 {
			chunk = 1
		}
	}
	var total int64
	for remaining := n; remaining > 0; {
		m := chunk
		if m > remaining {
			m = remaining
		}
		total += binomialChunk(rng, m, p)
		remaining -= m
	}
	return total
}

// binomialChunk inverts the Binomial(m, p) CDF against one uniform draw
// with the iterative pmf ratio update; m is small enough that pmf(0)
// cannot underflow.
func binomialChunk(rng *rand.Rand, m int64, p float64) int64 {
	u := rng.Float64()
	pmf := math.Exp(float64(m) * math.Log1p(-p))
	cdf := pmf
	ratio := p / (1 - p)
	var j int64
	for u >= cdf && j < m {
		pmf *= ratio * float64(m-j) / float64(j+1)
		cdf += pmf
		j++
	}
	return j
}

// pseudoDomain separates centrally-fabricated credential outputs from
// every honest VRF output domain.
var pseudoDomain = [8]byte{'s', 'p', 'a', 'r', 's', 'e', 'c', 'r'}

// Pseudo fabricates the credential for a centrally sampled selection:
// the sparse-committee path decides SubUsers by drawing the total seat
// count once per step and assigning seats by stake, so no per-node VRF
// evaluation exists to produce an output. The fabricated Output is a
// deterministic hash over (domain ‖ sortition message ‖ voter) — uniform
// and unequivocal per (params, voter) exactly like a VRF output — and
// Priority is derived from it by the same bestPriority rule the dense
// path uses, so proposal selection keeps its statistics. The Proof is
// zero: sparse credentials are valid by construction (the sampler
// fabricated them), so the runner stamps their verification memo
// directly instead of calling Verify.
func Pseudo(p Params, voter int, subUsers int) Result {
	msg := p.message()
	var buf [8 + messageLen + 8]byte
	copy(buf[:8], pseudoDomain[:])
	copy(buf[8:8+messageLen], msg[:])
	binary.BigEndian.PutUint64(buf[8+messageLen:], uint64(int64(voter)))
	out := vrf.Output(sha256.Sum256(buf[:]))
	res := Result{
		SubUsers: subUsers,
		Output:   out,
	}
	if subUsers > 0 {
		res.Priority = bestPriority(out, subUsers)
	}
	return res
}
