// Package sortition implements Algorand's cryptographic sortition: a
// private, non-interactive lottery in which each account learns — and can
// prove — how many of its stake units ("sub-users") were selected for a
// role in the current round and step. Selection is binomial: with total
// stake W, account stake w and expected committee size τ, each of the w
// sub-units is independently selected with probability p = τ/W, so the
// expected total selected stake across the network is exactly τ.
package sortition

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// Role distinguishes the sortition contexts of a round. Hashing the role
// into the VRF message gives each step an independent lottery.
type Role uint8

// Roles used by the BA* protocol.
const (
	RoleProposer Role = iota + 1
	RoleCommittee
	RoleFinal
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleProposer:
		return "proposer"
	case RoleCommittee:
		return "committee"
	case RoleFinal:
		return "final"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Params configures one sortition lottery.
type Params struct {
	// Seed is Q_{r-1}, the public per-round seed from the ledger.
	Seed [32]byte
	// Role is the protocol context being drawn for.
	Role Role
	// Round is the ledger round number.
	Round uint64
	// Step is the BA* step within the round (0 for block proposal).
	Step uint64
	// Tau is the expected committee size in stake units (τ).
	Tau float64
	// TotalStake is the online stake W of the whole network, in the same
	// units as the account stake passed to Select.
	TotalStake float64
}

// messageLen is the fixed size of a sortition VRF message:
// seed ‖ role ‖ round ‖ step.
const messageLen = 32 + 1 + 8 + 8

// message builds the VRF input on the stack; the hot path evaluates and
// verifies one per gossiped message, so it must not allocate.
func (p Params) message() [messageLen]byte {
	var msg [messageLen]byte
	copy(msg[:32], p.Seed[:])
	msg[32] = byte(p.Role)
	binary.BigEndian.PutUint64(msg[33:41], p.Round)
	binary.BigEndian.PutUint64(msg[41:49], p.Step)
	return msg
}

// Result is the outcome of one account's lottery, carrying the proof that
// peers verify.
type Result struct {
	// SubUsers is j, the number of selected stake units (0 = not selected).
	SubUsers int
	// Output is the VRF output the selection was derived from.
	Output vrf.Output
	// Proof allows third parties to verify Output.
	Proof vrf.Proof
	// Priority orders competing proposals; only meaningful when
	// SubUsers > 0. Higher wins.
	Priority Priority
}

// Selected reports whether the account won at least one sub-user slot.
func (r Result) Selected() bool { return r.SubUsers > 0 }

// Priority is the comparable priority of a selected account, derived from
// the VRF output and the winning sub-user index as in the Algorand paper
// (the proposer with the highest priority wins block selection).
type Priority [32]byte

// Less reports whether p orders strictly below q (q has higher priority).
func (p Priority) Less(q Priority) bool {
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// IsZero reports whether p is the zero priority (no selection).
func (p Priority) IsZero() bool { return p == Priority{} }

// ErrInvalidParams flags non-positive τ, stake or total stake.
var ErrInvalidParams = errors.New("sortition: invalid parameters")

// inverter turns a uniform draw into a selected sub-user count. The
// scalar recomputation and the cached threshold-table oracle are the two
// implementations; Select/Verify share one body so the paths can never
// diverge structurally. Both implementations are pointer- or empty-struct
// backed, so the interface dispatch allocates nothing.
type inverter interface {
	subUsers(u float64, w int, prob float64) int
}

// scalarInverter recomputes the binomial inversion per call.
type scalarInverter struct{}

func (scalarInverter) subUsers(u float64, w int, prob float64) int {
	return subUsers(u, w, prob)
}

func selectWith(inv inverter, key vrf.PrivateKey, stake float64, p Params) (Result, error) {
	if p.Tau <= 0 || p.TotalStake <= 0 {
		return Result{}, ErrInvalidParams
	}
	if stake < 0 {
		return Result{}, ErrInvalidParams
	}
	msg := p.message()
	out, proof := key.Evaluate(msg[:])
	j := inv.subUsers(out.Uniform(), int(stake), p.Tau/p.TotalStake)
	res := Result{SubUsers: j, Output: out, Proof: proof}
	if j > 0 {
		res.Priority = bestPriority(out, j)
	}
	return res, nil
}

func verifyWith(inv inverter, pub vrf.PublicKey, stake float64, p Params, res Result) bool {
	if p.Tau <= 0 || p.TotalStake <= 0 || stake < 0 {
		return false
	}
	msg := p.message()
	if !pub.Verify(msg[:], res.Output, res.Proof) {
		return false
	}
	j := inv.subUsers(res.Output.Uniform(), int(stake), p.Tau/p.TotalStake)
	if j != res.SubUsers {
		return false
	}
	if j == 0 {
		return res.Priority.IsZero()
	}
	return res.Priority == bestPriority(res.Output, j)
}

// Select runs the lottery for an account holding `stake` units using its
// private key. Stake is truncated to whole units, as sub-user selection is
// defined on integer stake.
func Select(key vrf.PrivateKey, stake float64, p Params) (Result, error) {
	return selectWith(scalarInverter{}, key, stake, p)
}

// Verify checks a peer's claimed sortition result: the VRF proof must be
// valid and the claimed sub-user count and priority must be the ones the
// output implies.
func Verify(pub vrf.PublicKey, stake float64, p Params, res Result) bool {
	return verifyWith(scalarInverter{}, pub, stake, p, res)
}

// subUsers inverts the binomial CDF: it returns the unique j with
// CDF(j-1) <= u < CDF(j) for Binomial(w, prob). The iterative pmf update
// pmf(k+1) = pmf(k) * (w-k)/(k+1) * prob/(1-prob) keeps it O(j).
func subUsers(u float64, w int, prob float64) int {
	if w <= 0 || prob <= 0 {
		return 0
	}
	if prob >= 1 {
		return w
	}
	// pmf(0) = (1-prob)^w computed in log space to survive large w.
	logPmf := float64(w) * math.Log1p(-prob)
	pmf := math.Exp(logPmf)
	cdf := pmf
	ratio := prob / (1 - prob)
	for j := 0; j < w; j++ {
		if u < cdf {
			return j
		}
		pmf *= ratio * float64(w-j) / float64(j+1)
		cdf += pmf
	}
	return w
}

// bestPriority hashes (output, i) for each winning sub-user index i and
// keeps the maximum, matching Algorand's proposal-priority rule.
func bestPriority(out vrf.Output, j int) Priority {
	var best Priority
	var buf [vrf.OutputLen + 8]byte
	copy(buf[:], out[:])
	for i := 0; i < j; i++ {
		binary.BigEndian.PutUint64(buf[vrf.OutputLen:], uint64(i))
		h := Priority(sha256.Sum256(buf[:]))
		if best.Less(h) {
			best = h
		}
	}
	return best
}
