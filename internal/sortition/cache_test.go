package sortition

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

// The cache must be a pure memoisation: for every input, cached selection
// and verification are bit-identical to the scalar recomputation.
func TestCacheSelectMatchesDirect(t *testing.T) {
	cache := NewCache()
	rng := sim.NewRNG(11, "cache.equiv")
	for trial := 0; trial < 2_000; trial++ {
		key := vrf.GenerateKey(rng)
		stake := float64(rng.Intn(5_000))
		p := Params{
			Seed:       [32]byte{byte(trial), byte(trial >> 8)},
			Role:       Role(1 + rng.Intn(3)),
			Round:      uint64(rng.Intn(100)),
			Step:       uint64(rng.Intn(20)),
			Tau:        float64(1 + rng.Intn(2_000)),
			TotalStake: float64(1_000 + rng.Intn(100_000)),
		}
		want, errWant := Select(key.Private, stake, p)
		got, errGot := cache.Select(key.Private, stake, p)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errWant, errGot)
		}
		if want != got {
			t.Fatalf("trial %d: cached Select diverged: %+v vs %+v (stake=%v tau=%v W=%v)",
				trial, got, want, stake, p.Tau, p.TotalStake)
		}
		if Verify(key.Public, stake, p, want) != cache.Verify(key.Public, stake, p, want) {
			t.Fatalf("trial %d: cached Verify diverged", trial)
		}
		wantB, errWantB := SelectBernoulli(key.Private, stake, p)
		gotB, errGotB := cache.SelectBernoulli(key.Private, stake, p)
		if (errWantB == nil) != (errGotB == nil) || wantB != gotB {
			t.Fatalf("trial %d: cached SelectBernoulli diverged", trial)
		}
		if VerifyBernoulli(key.Public, stake, p, wantB) != cache.VerifyBernoulli(key.Public, stake, p, wantB) {
			t.Fatalf("trial %d: cached VerifyBernoulli diverged", trial)
		}
	}
}

// Sweep the u axis densely for a spread of (w, prob) pairs, including the
// regimes where the pmf underflows (large w·prob) and where the table is
// truncated early: lookup must equal the scalar scan at every threshold
// boundary.
func TestThresholdTableMatchesScalarScan(t *testing.T) {
	cache := NewCache()
	cases := []struct {
		w    int
		prob float64
	}{
		{1, 0.5}, {2, 0.1}, {10, 0.35}, {50, 0.45}, {50, 0.999},
		{200, 0.02}, {1_000, 0.001}, {10_000, 0.0001}, {10_000, 0.35},
		{100_000, 0.001}, {100_000, 0.5}, // exp underflow: pmf(0) == 0
	}
	for _, tc := range cases {
		table := cache.table(tc.w, tc.prob)
		// Probe every stored threshold, its neighbours, and a dense grid.
		probes := []float64{0, math.Nextafter(1, 0)}
		for _, c := range table.cdf {
			probes = append(probes, c, math.Nextafter(c, 0), math.Nextafter(c, 2))
		}
		for u := 0.0; u < 1; u += 1.0 / 512 {
			probes = append(probes, u)
		}
		for _, u := range probes {
			if u < 0 || u >= 1 {
				continue
			}
			want := subUsers(u, tc.w, tc.prob)
			got := cache.subUsers(u, tc.w, tc.prob)
			if want != got {
				t.Fatalf("w=%d prob=%v u=%v: cached %d, scalar %d", tc.w, tc.prob, u, got, want)
			}
		}
	}
}

// Cache keys fold in every statistics-relevant input, so stake or τ/W
// changes land on fresh tables while repeat queries hit existing ones.
func TestCacheKeyingAndReset(t *testing.T) {
	cache := NewCache()
	key := vrf.GenerateKey(sim.NewRNG(3, "cache.keys"))
	p := Params{Seed: [32]byte{1}, Role: RoleCommittee, Tau: 100, TotalStake: 10_000}

	if _, err := cache.Select(key.Private, 50, p); err != nil {
		t.Fatal(err)
	}
	if cache.Size() != 1 {
		t.Fatalf("size = %d after first select, want 1", cache.Size())
	}
	// Same stake and probability, different round: VRF input changes but
	// the threshold table is reused.
	p.Round = 9
	if _, err := cache.Select(key.Private, 50, p); err != nil {
		t.Fatal(err)
	}
	if cache.Size() != 1 {
		t.Fatalf("size = %d after same-key select, want 1", cache.Size())
	}
	// Stake change: new key.
	if _, err := cache.Select(key.Private, 51, p); err != nil {
		t.Fatal(err)
	}
	// τ change: new probability, new key.
	p.Tau = 200
	if _, err := cache.Select(key.Private, 50, p); err != nil {
		t.Fatal(err)
	}
	if cache.Size() != 3 {
		t.Fatalf("size = %d after stake+tau changes, want 3", cache.Size())
	}
	cache.Reset()
	if cache.Size() != 0 {
		t.Fatalf("size = %d after Reset, want 0", cache.Size())
	}
	// Reset only drops memory; results are unchanged.
	res, err := cache.Select(key.Private, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if !cache.Verify(key.Public, 50, p, res) {
		t.Fatal("post-Reset result fails verification")
	}
}

// Invalid parameters must be rejected exactly like the direct API.
func TestCacheInvalidParams(t *testing.T) {
	cache := NewCache()
	key := vrf.GenerateKey(sim.NewRNG(4, "cache.invalid"))
	good := Params{Tau: 10, TotalStake: 100}
	for _, p := range []Params{{Tau: 0, TotalStake: 100}, {Tau: 10, TotalStake: 0}} {
		if _, err := cache.Select(key.Private, 5, p); err == nil {
			t.Errorf("params %+v: expected error", p)
		}
		if cache.Verify(key.Public, 5, p, Result{}) {
			t.Errorf("params %+v: Verify accepted invalid params", p)
		}
	}
	if _, err := cache.Select(key.Private, -1, good); err == nil {
		t.Error("negative stake: expected error")
	}
}
