package sortition

import (
	"math"
	"testing"

	"github.com/dsn2020-algorand/incentives/internal/sim"
)

// TestBinomialMoments checks the sampler's mean and variance against the
// exact Binomial(n, p) moments over a large sample, across the chunking
// regimes (tiny p → one giant chunk, moderate p → many chunks, p > 1/2 →
// symmetry path).
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{100, 0.3},
		{5_000, 0.01},
		{1_000_000, 1e-4}, // committee-sized draw over huge stake
		{12_500_000, 8e-6},
		{512, 0.5},
		{2_000, 0.93}, // symmetry path
		{1, 0.2},
	}
	for _, tc := range cases {
		rng := sim.NewRNG(1, "sortition.binomial.test")
		const samples = 20_000
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			x := float64(Binomial(rng, tc.n, tc.p))
			if x < 0 || x > float64(tc.n) {
				t.Fatalf("n=%d p=%v: sample %v out of range", tc.n, tc.p, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / samples
		variance := sumSq/samples - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		// Mean of `samples` draws has sd sqrt(var/samples); allow 5 sigma.
		meanTol := 5 * math.Sqrt(wantVar/samples)
		if math.Abs(mean-wantMean) > meanTol {
			t.Errorf("n=%d p=%v: mean %v, want %v ± %v", tc.n, tc.p, mean, wantMean, meanTol)
		}
		// Sample variance concentrates more slowly; a 15%% band suffices
		// to catch any chunking bug (those skew variance badly).
		if wantVar > 1 && math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("n=%d p=%v: variance %v, want ≈ %v", tc.n, tc.p, variance, wantVar)
		}
	}
}

// TestBinomialEdges pins degenerate parameters.
func TestBinomialEdges(t *testing.T) {
	rng := sim.NewRNG(2, "sortition.binomial.edge")
	if got := Binomial(rng, 0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := Binomial(rng, -5, 0.5); got != 0 {
		t.Fatalf("Binomial(-5, .5) = %d", got)
	}
	if got := Binomial(rng, 100, 0); got != 0 {
		t.Fatalf("Binomial(100, 0) = %d", got)
	}
	if got := Binomial(rng, 100, 1); got != 100 {
		t.Fatalf("Binomial(100, 1) = %d", got)
	}
	if got := Binomial(rng, 100, 1.5); got != 100 {
		t.Fatalf("Binomial(100, 1.5) = %d", got)
	}
	if got := Binomial(rng, 100, -0.5); got != 0 {
		t.Fatalf("Binomial(100, -0.5) = %d", got)
	}
}

// TestBinomialDeterministic pins that equal seeds give equal streams.
func TestBinomialDeterministic(t *testing.T) {
	a := sim.NewRNG(7, "sortition.binomial.det")
	b := sim.NewRNG(7, "sortition.binomial.det")
	for i := 0; i < 200; i++ {
		x, y := Binomial(a, 10_000, 0.001*float64(i+1)), Binomial(b, 10_000, 0.001*float64(i+1))
		if x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

// TestBinomialMatchesPerTrialSplit is the splitting property the sparse
// sampler rests on: the total over independent per-node draws
// Binomial(w_i, p) must be distributed as one Binomial(Σw_i, p) draw.
// Compared via mean/variance over many rounds.
func TestBinomialMatchesPerTrialSplit(t *testing.T) {
	weights := []int64{1, 7, 50, 13, 29, 400, 2, 98}
	var W int64
	for _, w := range weights {
		W += w
	}
	const p = 0.05
	const samples = 30_000
	rngSplit := sim.NewRNG(3, "sortition.binomial.split")
	rngWhole := sim.NewRNG(4, "sortition.binomial.whole")
	var sumSplit, sumWhole, sqSplit, sqWhole float64
	for i := 0; i < samples; i++ {
		var tot int64
		for _, w := range weights {
			tot += Binomial(rngSplit, w, p)
		}
		x, y := float64(tot), float64(Binomial(rngWhole, W, p))
		sumSplit += x
		sqSplit += x * x
		sumWhole += y
		sqWhole += y * y
	}
	meanS, meanW := sumSplit/samples, sumWhole/samples
	varS := sqSplit/samples - meanS*meanS
	varW := sqWhole/samples - meanW*meanW
	wantMean := float64(W) * p
	tol := 5 * math.Sqrt(wantMean*(1-p)/samples)
	if math.Abs(meanS-wantMean) > tol || math.Abs(meanW-wantMean) > tol {
		t.Fatalf("means diverge: split %v whole %v want %v ± %v", meanS, meanW, wantMean, tol)
	}
	if math.Abs(varS-varW) > 0.15*varW {
		t.Fatalf("variances diverge: split %v whole %v", varS, varW)
	}
}

// TestPseudoCredential pins the fabricated credential's determinism,
// per-voter uniqueness, and priority derivation.
func TestPseudoCredential(t *testing.T) {
	p := Params{Role: RoleCommittee, Round: 9, Step: 3, Tau: 40, TotalStake: 1000}
	p.Seed[0] = 0xAB
	a := Pseudo(p, 17, 2)
	b := Pseudo(p, 17, 2)
	if a != b {
		t.Fatal("Pseudo is not deterministic")
	}
	c := Pseudo(p, 18, 2)
	if a.Output == c.Output {
		t.Fatal("distinct voters share an output")
	}
	p2 := p
	p2.Step = 4
	if Pseudo(p2, 17, 2).Output == a.Output {
		t.Fatal("distinct steps share an output")
	}
	if a.SubUsers != 2 || a.Priority.IsZero() {
		t.Fatalf("selected credential malformed: %+v", a)
	}
	if got := Pseudo(p, 17, 0); !got.Priority.IsZero() {
		t.Fatal("unselected credential carries a priority")
	}
	if want := bestPriority(a.Output, 2); a.Priority != want {
		t.Fatal("priority does not follow the dense bestPriority rule")
	}
}
