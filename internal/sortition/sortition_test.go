package sortition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dsn2020-algorand/incentives/internal/vrf"
)

func testParams(tau, total float64) Params {
	return Params{
		Seed:       [32]byte{1, 2, 3},
		Role:       RoleCommittee,
		Round:      7,
		Step:       2,
		Tau:        tau,
		TotalStake: total,
	}
}

func testKey(seed int64) vrf.KeyPair {
	return vrf.GenerateKey(rand.New(rand.NewSource(seed)))
}

func TestSelectInvalidParams(t *testing.T) {
	kp := testKey(1)
	if _, err := Select(kp.Private, 10, testParams(0, 100)); err != ErrInvalidParams {
		t.Errorf("tau=0: err = %v, want ErrInvalidParams", err)
	}
	if _, err := Select(kp.Private, 10, testParams(10, 0)); err != ErrInvalidParams {
		t.Errorf("total=0: err = %v, want ErrInvalidParams", err)
	}
	if _, err := Select(kp.Private, -1, testParams(10, 100)); err != ErrInvalidParams {
		t.Errorf("stake<0: err = %v, want ErrInvalidParams", err)
	}
}

func TestSelectZeroStake(t *testing.T) {
	res, err := Select(testKey(1).Private, 0, testParams(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected() || res.SubUsers != 0 || !res.Priority.IsZero() {
		t.Errorf("zero stake selected: %+v", res)
	}
}

// TestExpectedSelection checks the core sortition property: the expected
// total selected stake across the network equals tau.
func TestExpectedSelection(t *testing.T) {
	const (
		nodes = 400
		tau   = 200.0
		stake = 25.0
	)
	total := nodes * stake
	sumSelected := 0.0
	rounds := 40
	for r := 0; r < rounds; r++ {
		p := testParams(tau, total)
		p.Round = uint64(r)
		for i := 0; i < nodes; i++ {
			res, err := Select(testKey(int64(i)).Private, stake, p)
			if err != nil {
				t.Fatal(err)
			}
			sumSelected += float64(res.SubUsers)
		}
	}
	mean := sumSelected / float64(rounds)
	// Std of the per-round total is ~sqrt(tau) ≈ 14; the mean over 40
	// rounds has std ~2.2, so ±10 is a >4-sigma band.
	if math.Abs(mean-tau) > 10 {
		t.Errorf("mean selected stake per round = %v, want ~%v", mean, tau)
	}
}

// TestSelectionProportionalToStake verifies richer accounts win
// proportionally more sub-user slots.
func TestSelectionProportionalToStake(t *testing.T) {
	const total = 10_000.0
	p := testParams(1000, total)
	sumSmall, sumBig := 0.0, 0.0
	for r := 0; r < 200; r++ {
		p.Round = uint64(r)
		small, err := Select(testKey(1).Private, 10, p)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Select(testKey(2).Private, 100, p)
		if err != nil {
			t.Fatal(err)
		}
		sumSmall += float64(small.SubUsers)
		sumBig += float64(big.SubUsers)
	}
	if sumBig < 5*sumSmall {
		t.Errorf("stake proportionality violated: big=%v small=%v", sumBig, sumSmall)
	}
}

func TestVerifyAcceptsOwnSelection(t *testing.T) {
	p := testParams(50, 1000)
	for seed := int64(0); seed < 50; seed++ {
		kp := testKey(seed)
		res, err := Select(kp.Private, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(kp.Public, 20, p, res) {
			t.Fatalf("own selection rejected (seed %d)", seed)
		}
	}
}

func TestVerifyRejectsInflatedSubUsers(t *testing.T) {
	p := testParams(50, 1000)
	kp := testKey(3)
	res, err := Select(kp.Private, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	res.SubUsers += 5 // claim more sub-users than the VRF grants
	if Verify(kp.Public, 20, p, res) {
		t.Error("inflated sub-user claim accepted")
	}
}

func TestVerifyRejectsInflatedStake(t *testing.T) {
	p := testParams(500, 1000)
	kp := testKey(3)
	res, err := Select(kp.Private, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected() {
		t.Skip("key not selected at this tau; adjust seed")
	}
	// Claiming the result computed under a different stake must fail,
	// because the verifier recomputes sub-users from the claimed stake.
	if Verify(kp.Public, 2000, p, res) {
		t.Error("selection verified under inflated stake")
	}
}

func TestVerifyRejectsForeignProof(t *testing.T) {
	p := testParams(50, 1000)
	honest := testKey(1)
	res, err := Select(honest.Private, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	forger := testKey(2)
	if Verify(forger.Public, 20, p, res) {
		t.Error("foreign proof accepted")
	}
}

func TestVerifyRejectsWrongPriority(t *testing.T) {
	p := testParams(800, 1000) // high tau so selection is near-certain
	kp := testKey(4)
	res, err := Select(kp.Private, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected() {
		t.Fatal("expected selection at tau=800")
	}
	res.Priority[0] ^= 0x01
	if Verify(kp.Public, 50, p, res) {
		t.Error("tampered priority accepted")
	}
}

func TestRoleSeparation(t *testing.T) {
	kp := testKey(5)
	p1 := testParams(500, 1000)
	p2 := p1
	p2.Role = RoleProposer
	r1, _ := Select(kp.Private, 100, p1)
	r2, _ := Select(kp.Private, 100, p2)
	if r1.Output == r2.Output {
		t.Error("different roles produced identical VRF outputs")
	}
}

func TestStepSeparation(t *testing.T) {
	kp := testKey(5)
	p1 := testParams(500, 1000)
	p2 := p1
	p2.Step = 3
	r1, _ := Select(kp.Private, 100, p1)
	r2, _ := Select(kp.Private, 100, p2)
	if r1.Output == r2.Output {
		t.Error("different steps produced identical VRF outputs")
	}
}

func TestSubUsersCDFInversion(t *testing.T) {
	// Exhaustively check the binomial inversion for small w against a
	// directly computed CDF.
	const w = 5
	const prob = 0.3
	pmf := make([]float64, w+1)
	for k := 0; k <= w; k++ {
		pmf[k] = binomPMF(w, k, prob)
	}
	cdf := 0.0
	for k := 0; k <= w; k++ {
		// u just below the CDF boundary selects k.
		uLow := cdf + pmf[k]/2
		if got := subUsers(uLow, w, prob); got != k {
			t.Errorf("subUsers(mid of bucket %d) = %d", k, got)
		}
		cdf += pmf[k]
	}
	if got := subUsers(0.999999999, w, prob); got != w {
		t.Errorf("subUsers(~1) = %d, want %d", got, w)
	}
}

func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestSubUsersEdgeCases(t *testing.T) {
	if subUsers(0.5, 0, 0.3) != 0 {
		t.Error("w=0 must select nothing")
	}
	if subUsers(0.5, 10, 0) != 0 {
		t.Error("p=0 must select nothing")
	}
	if subUsers(0.5, 10, 1) != 10 {
		t.Error("p=1 must select everything")
	}
}

func TestSubUsersLargeStakeStability(t *testing.T) {
	// Large w with small p must not underflow: expected j = w*p = 20.
	j := 0
	for u := 0.05; u < 1; u += 0.05 {
		j += subUsers(u, 2_000_000, 1e-5)
	}
	mean := float64(j) / 19
	if mean < 10 || mean > 30 {
		t.Errorf("large-w mean sub-users = %v, want ~20", mean)
	}
}

func TestPriorityLess(t *testing.T) {
	a := Priority{0: 1}
	b := Priority{0: 2}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("priority ordering broken")
	}
	var zero Priority
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero broken")
	}
}

func TestRoleString(t *testing.T) {
	if RoleProposer.String() != "proposer" || RoleCommittee.String() != "committee" ||
		RoleFinal.String() != "final" || Role(9).String() != "role(9)" {
		t.Error("Role.String broken")
	}
}

// Property: Select/Verify round-trips for arbitrary stakes and seeds.
func TestSelectVerifyProperty(t *testing.T) {
	f := func(seed int64, stakeRaw uint16, tauRaw uint16) bool {
		stake := float64(stakeRaw%1000) + 1
		tau := float64(tauRaw%500) + 1
		p := testParams(tau, 10_000)
		kp := testKey(seed)
		res, err := Select(kp.Private, stake, p)
		if err != nil {
			return false
		}
		return Verify(kp.Public, stake, p, res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sub-user counts never exceed the integer stake.
func TestSubUsersBoundedProperty(t *testing.T) {
	f := func(seed int64, stakeRaw uint16) bool {
		stake := float64(stakeRaw % 2000)
		p := testParams(1000, 10_000)
		res, err := Select(testKey(seed).Private, stake, p)
		if err != nil {
			return false
		}
		return res.SubUsers >= 0 && float64(res.SubUsers) <= stake
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
