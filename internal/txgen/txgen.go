// Package txgen generates the synthetic transaction workload of the
// paper's Sec. V-B evaluation: each round, 1000 accounts are drawn with
// probability proportional to stake (an account may be drawn repeatedly)
// and each drawn account sends or receives a uniform amount in (0, 4]
// Algos, emulating the public algoexplorer exchange traffic.
package txgen

import (
	"errors"
	"math/rand"

	"github.com/dsn2020-algorand/incentives/internal/stake"
)

// Config parameterises the workload.
type Config struct {
	// DrawsPerRound is how many stake-weighted account draws happen per
	// round (paper: 1000).
	DrawsPerRound int
	// MaxAmount bounds each transfer; amounts are U(0, MaxAmount]
	// (paper: 4 Algos, the uniform (−4, 4) magnitude).
	MaxAmount float64
}

// DefaultConfig returns the paper's workload constants.
func DefaultConfig() Config {
	return Config{DrawsPerRound: 1000, MaxAmount: 4}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	if c.DrawsPerRound < 1 {
		return errors.New("txgen: DrawsPerRound must be >= 1")
	}
	if c.MaxAmount <= 0 {
		return errors.New("txgen: MaxAmount must be positive")
	}
	return nil
}

// Transfer is one generated transaction.
type Transfer struct {
	From, To int
	Amount   float64
}

// Generator produces per-round transfer batches.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// New builds a generator.
func New(cfg Config, rng *rand.Rand) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rng}, nil
}

// Round draws one round of transfers against the population. Senders and
// receivers are stake-weighted draws; a draw whose sign is negative sends,
// positive receives — realised here by pairing each drawn account with a
// second weighted draw as its counterparty.
func (g *Generator) Round(pop *stake.Population) []Transfer {
	if pop == nil || pop.N() < 2 {
		return nil
	}
	// A prefix-sum sampler makes each draw O(log n); it snapshots the
	// stakes once per round, matching the paper's procedure of drawing
	// all of a round's transacting nodes against the same stake state.
	sampler := stake.NewWeightedSampler(pop)
	if sampler == nil {
		return nil
	}
	out := make([]Transfer, 0, g.cfg.DrawsPerRound)
	for i := 0; i < g.cfg.DrawsPerRound; i++ {
		a := sampler.Sample(g.rng)
		b := sampler.Sample(g.rng)
		if a == b {
			continue
		}
		amount := g.rng.Float64() * g.cfg.MaxAmount
		if amount == 0 {
			continue
		}
		// The paper draws amounts in (−4, 4): negative means the selected
		// node sends, positive means it receives.
		if g.rng.Float64() < 0.5 {
			out = append(out, Transfer{From: a, To: b, Amount: amount})
		} else {
			out = append(out, Transfer{From: b, To: a, Amount: amount})
		}
	}
	return out
}

// Apply executes transfers against the population, saturating at zero
// balances, and returns the total value moved.
func Apply(pop *stake.Population, transfers []Transfer) float64 {
	moved := 0.0
	for _, t := range transfers {
		moved += pop.Transfer(t.From, t.To, t.Amount)
	}
	return moved
}
