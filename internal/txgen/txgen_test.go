package txgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dsn2020-algorand/incentives/internal/stake"
)

func testPop(stakes ...float64) *stake.Population {
	return &stake.Population{Stakes: stakes}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{DrawsPerRound: 0, MaxAmount: 4}).Validate(); err == nil {
		t.Error("zero draws accepted")
	}
	if err := (Config{DrawsPerRound: 10, MaxAmount: 0}).Validate(); err == nil {
		t.Error("zero amount accepted")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRoundAmountsBounded(t *testing.T) {
	g, err := New(Config{DrawsPerRound: 2000, MaxAmount: 4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	pop := testPop(10, 20, 30, 40, 50)
	for _, tr := range g.Round(pop) {
		if tr.Amount <= 0 || tr.Amount > 4 {
			t.Fatalf("amount %v out of (0, 4]", tr.Amount)
		}
		if tr.From == tr.To {
			t.Fatal("self transfer generated")
		}
		if tr.From < 0 || tr.From >= 5 || tr.To < 0 || tr.To >= 5 {
			t.Fatalf("transfer endpoints out of range: %+v", tr)
		}
	}
}

func TestRoundEmptyPopulation(t *testing.T) {
	g, _ := New(DefaultConfig(), rand.New(rand.NewSource(1)))
	if got := g.Round(nil); got != nil {
		t.Error("nil population should produce no transfers")
	}
	if got := g.Round(testPop(5)); got != nil {
		t.Error("single-account population should produce no transfers")
	}
}

func TestRoundStakeWeighted(t *testing.T) {
	// One whale and many minnows: the whale must participate in most
	// transfers.
	stakes := make([]float64, 101)
	for i := range stakes {
		stakes[i] = 1
	}
	stakes[0] = 10_000
	pop := &stake.Population{Stakes: stakes}
	g, _ := New(Config{DrawsPerRound: 1000, MaxAmount: 4}, rand.New(rand.NewSource(2)))
	whale := 0
	transfers := g.Round(pop)
	for _, tr := range transfers {
		if tr.From == 0 || tr.To == 0 {
			whale++
		}
	}
	if float64(whale) < 0.9*float64(len(transfers)) {
		t.Errorf("whale in %d/%d transfers, want >90%%", whale, len(transfers))
	}
}

func TestApplyConservesTotal(t *testing.T) {
	pop := testPop(100, 200, 300)
	before := pop.Total()
	g, _ := New(DefaultConfig(), rand.New(rand.NewSource(3)))
	moved := Apply(pop, g.Round(pop))
	if moved <= 0 {
		t.Error("no value moved")
	}
	if math.Abs(pop.Total()-before) > 1e-6 {
		t.Errorf("total drifted: %v -> %v", before, pop.Total())
	}
}

func TestApplyNeverNegative(t *testing.T) {
	pop := testPop(0.5, 0.5, 1000)
	g, _ := New(Config{DrawsPerRound: 5000, MaxAmount: 4}, rand.New(rand.NewSource(4)))
	Apply(pop, g.Round(pop))
	for i, s := range pop.Stakes {
		if s < 0 {
			t.Errorf("account %d went negative: %v", i, s)
		}
	}
}

// Property: Apply conserves total stake for any workload size.
func TestApplyConservationProperty(t *testing.T) {
	f := func(seed int64, draws uint16) bool {
		pop := testPop(10, 20, 30, 40)
		before := pop.Total()
		g, err := New(Config{DrawsPerRound: int(draws%500) + 1, MaxAmount: 4},
			rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		Apply(pop, g.Round(pop))
		return math.Abs(pop.Total()-before) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
