// Package stake models stake populations for the Algorand incentive
// analysis. The paper evaluates four stake distributions — U(1,200),
// N(100,20), N(100,10) and N(2000,25) — plus the truncated families
// U_w(1,200) where accounts with stake below w are removed from the
// rewarded set (Fig. 7-c). Stakes are denominated in Algos.
package stake

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// MinStake is the smallest stake any sampled account may hold. Algorand
// accounts need a positive balance to participate in sortition, and the
// paper's distributions all start at 1 Algo.
const MinStake = 1.0

// Distribution samples one account stake. Implementations must be safe for
// sequential reuse with the supplied *rand.Rand (they hold no state).
type Distribution interface {
	// Sample draws a single stake in Algos. Results are >= MinStake.
	Sample(rng *rand.Rand) float64
	// Name identifies the distribution in experiment output, e.g. "U(1,200)".
	Name() string
}

// Uniform is the continuous uniform distribution over [A, B].
type Uniform struct {
	A, B float64
}

var _ Distribution = Uniform{}

// Sample draws from [A, B], clamped to MinStake.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return clampStake(u.A + rng.Float64()*(u.B-u.A))
}

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("U(%g,%g)", u.A, u.B) }

// UniformInt is the discrete uniform distribution over the integers
// {A, A+1, ..., B}. The paper's protocol simulations distribute stakes
// "with a uniform distribution between 1 to 50 Algos".
type UniformInt struct {
	A, B int
}

var _ Distribution = UniformInt{}

// Sample draws an integer stake in [A, B].
func (u UniformInt) Sample(rng *rand.Rand) float64 {
	if u.B <= u.A {
		return clampStake(float64(u.A))
	}
	return clampStake(float64(u.A + rng.Intn(u.B-u.A+1)))
}

// Name implements Distribution.
func (u UniformInt) Name() string { return fmt.Sprintf("U{%d..%d}", u.A, u.B) }

// Normal is the normal distribution N(Mu, Sigma) truncated below at
// MinStake, matching the paper's N(100,20), N(100,10) and N(2000,25)
// populations (stakes cannot be non-positive).
type Normal struct {
	Mu, Sigma float64
}

var _ Distribution = Normal{}

// Sample draws from N(Mu, Sigma) clamped below at MinStake.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return clampStake(n.Mu + n.Sigma*rng.NormFloat64())
}

// Name implements Distribution.
func (n Normal) Name() string { return fmt.Sprintf("N(%g,%g)", n.Mu, n.Sigma) }

// Pareto is a heavy-tailed distribution (scale Xm, shape Alpha) used by the
// extension experiments to model "rich get richer" stake concentration, a
// network condition the paper's conclusion calls out for the Foundation to
// monitor.
type Pareto struct {
	Xm, Alpha float64
}

var _ Distribution = Pareto{}

// Sample draws from Pareto(Xm, Alpha) via inverse-CDF sampling.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return clampStake(p.Xm / math.Pow(u, 1/p.Alpha))
}

// Name implements Distribution.
func (p Pareto) Name() string { return fmt.Sprintf("Pareto(%g,%g)", p.Xm, p.Alpha) }

// Constant assigns every account the same stake; useful in unit tests and
// in the equal-stake ablations.
type Constant struct {
	Value float64
}

var _ Distribution = Constant{}

// Sample returns the constant value.
func (c Constant) Sample(*rand.Rand) float64 { return clampStake(c.Value) }

// Name implements Distribution.
func (c Constant) Name() string { return fmt.Sprintf("Const(%g)", c.Value) }

func clampStake(x float64) float64 {
	if x < MinStake {
		return MinStake
	}
	return x
}

// Population is a concrete assignment of stakes to account indices.
type Population struct {
	Stakes []float64
}

// SamplePopulation draws n account stakes from dist.
func SamplePopulation(dist Distribution, n int, rng *rand.Rand) (*Population, error) {
	if n <= 0 {
		return nil, errors.New("stake: population size must be positive")
	}
	return SamplePopulationInto(dist, make([]float64, n), rng)
}

// SamplePopulationInto draws len(buf) account stakes from dist into buf
// and wraps it — the returned Population aliases buf, so the caller must
// not reuse the buffer while the population is live. Sweep workers use it
// with an arena-recycled vector (protocol.Arena.StakeBuf) to stop
// per-cell population builds from dominating large-population setup. The
// draw sequence is identical to SamplePopulation's.
func SamplePopulationInto(dist Distribution, buf []float64, rng *rand.Rand) (*Population, error) {
	if len(buf) == 0 {
		return nil, errors.New("stake: population size must be positive")
	}
	for i := range buf {
		buf[i] = dist.Sample(rng)
	}
	return &Population{Stakes: buf}, nil
}

// ScaledPopulation draws n stakes from dist and rescales them so the total
// equals totalAlgos. The paper distributes exactly 50 million Algos among
// 500k nodes regardless of the sampling distribution.
func ScaledPopulation(dist Distribution, n int, totalAlgos float64, rng *rand.Rand) (*Population, error) {
	p, err := SamplePopulation(dist, n, rng)
	if err != nil {
		return nil, err
	}
	if totalAlgos <= 0 {
		return nil, errors.New("stake: total stake must be positive")
	}
	sum := p.Total()
	if sum == 0 {
		return nil, errors.New("stake: sampled population has zero total stake")
	}
	scale := totalAlgos / sum
	for i := range p.Stakes {
		p.Stakes[i] *= scale
	}
	return p, nil
}

// N returns the number of accounts.
func (p *Population) N() int { return len(p.Stakes) }

// Total returns the sum of all stakes, S_N in the paper's notation.
func (p *Population) Total() float64 {
	sum := 0.0
	for _, s := range p.Stakes {
		sum += s
	}
	return sum
}

// Min returns the smallest stake in the population; 0 for an empty one.
func (p *Population) Min() float64 {
	if len(p.Stakes) == 0 {
		return 0
	}
	m := p.Stakes[0]
	for _, s := range p.Stakes[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// Max returns the largest stake in the population; 0 for an empty one.
func (p *Population) Max() float64 {
	if len(p.Stakes) == 0 {
		return 0
	}
	m := p.Stakes[0]
	for _, s := range p.Stakes[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

// MinAbove returns the smallest stake >= floor, or 0 when no account
// qualifies. Algorithm 1 uses it to compute s*_k under the paper's
// "ignore synchrony sets with stakes below w" rule.
func (p *Population) MinAbove(floor float64) float64 {
	best := 0.0
	found := false
	for _, s := range p.Stakes {
		if s >= floor && (!found || s < best) {
			best = s
			found = true
		}
	}
	if !found {
		return 0
	}
	return best
}

// RemoveBelow returns a new population containing only accounts with stake
// >= w, implementing the paper's U_w(1,200) truncation (Fig. 7-c). The
// receiver is not modified.
func (p *Population) RemoveBelow(w float64) *Population {
	kept := make([]float64, 0, len(p.Stakes))
	for _, s := range p.Stakes {
		if s >= w {
			kept = append(kept, s)
		}
	}
	return &Population{Stakes: kept}
}

// Clone returns a deep copy of the population.
func (p *Population) Clone() *Population {
	stakes := make([]float64, len(p.Stakes))
	copy(stakes, p.Stakes)
	return &Population{Stakes: stakes}
}

// Transfer moves amount Algos from account i to account j, saturating so
// that neither account drops below zero. It returns the amount actually
// moved. The transaction generator uses it to emulate the algoexplorer
// exchange workload between rounds.
func (p *Population) Transfer(i, j int, amount float64) float64 {
	if i < 0 || j < 0 || i >= len(p.Stakes) || j >= len(p.Stakes) || i == j || amount <= 0 {
		return 0
	}
	if amount > p.Stakes[i] {
		amount = p.Stakes[i]
	}
	p.Stakes[i] -= amount
	p.Stakes[j] += amount
	return amount
}

// WeightedIndex samples an account index with probability proportional to
// its stake, mirroring how the paper picks transacting nodes ("nodes with
// higher stakes would be selected more often"). It scans linearly; for
// repeated draws build a WeightedSampler instead.
func (p *Population) WeightedIndex(rng *rand.Rand) int {
	total := p.Total()
	if total <= 0 || len(p.Stakes) == 0 {
		return 0
	}
	target := rng.Float64() * total
	acc := 0.0
	for i, s := range p.Stakes {
		acc += s
		if target < acc {
			return i
		}
	}
	return len(p.Stakes) - 1
}

// WeightedSampler draws stake-proportional account indices in O(log n)
// per draw after an O(n) build, using prefix sums and binary search. It
// snapshots the stakes at construction time; rebuild it after transfers
// if exact proportionality to the updated balances matters.
type WeightedSampler struct {
	prefix []float64
}

// NewWeightedSampler builds a sampler over the population's current
// stakes. It returns nil for an empty or zero-stake population.
func NewWeightedSampler(p *Population) *WeightedSampler {
	if p == nil || len(p.Stakes) == 0 {
		return nil
	}
	prefix := make([]float64, len(p.Stakes))
	acc := 0.0
	for i, s := range p.Stakes {
		if s > 0 {
			acc += s
		}
		prefix[i] = acc
	}
	if acc <= 0 {
		return nil
	}
	return &WeightedSampler{prefix: prefix}
}

// Sample draws one stake-weighted index.
func (w *WeightedSampler) Sample(rng *rand.Rand) int {
	total := w.prefix[len(w.prefix)-1]
	target := rng.Float64() * total
	lo, hi := 0, len(w.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.prefix[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
