package stake

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestUniformSampleRange(t *testing.T) {
	d := Uniform{A: 1, B: 200}
	rng := testRNG()
	for i := 0; i < 10_000; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 200 {
			t.Fatalf("U(1,200) sample %v out of range", s)
		}
	}
}

func TestUniformIntSampleRange(t *testing.T) {
	d := UniformInt{A: 1, B: 50}
	rng := testRNG()
	seen := make(map[float64]bool)
	for i := 0; i < 20_000; i++ {
		s := d.Sample(rng)
		if s < 1 || s > 50 || s != math.Trunc(s) {
			t.Fatalf("U{1..50} sample %v invalid", s)
		}
		seen[s] = true
	}
	if len(seen) != 50 {
		t.Errorf("U{1..50} hit %d distinct values, want 50", len(seen))
	}
}

func TestUniformIntDegenerate(t *testing.T) {
	d := UniformInt{A: 7, B: 7}
	if s := d.Sample(testRNG()); s != 7 {
		t.Errorf("degenerate UniformInt sample = %v, want 7", s)
	}
}

func TestNormalClampsAtMinStake(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 100}
	rng := testRNG()
	for i := 0; i < 10_000; i++ {
		if s := d.Sample(rng); s < MinStake {
			t.Fatalf("normal sample %v below MinStake", s)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	d := Normal{Mu: 2000, Sigma: 25}
	rng := testRNG()
	n := 50_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2000) > 2 {
		t.Errorf("N(2000,25) sample mean = %v", mean)
	}
}

func TestParetoTail(t *testing.T) {
	d := Pareto{Xm: 10, Alpha: 2}
	rng := testRNG()
	for i := 0; i < 10_000; i++ {
		if s := d.Sample(rng); s < 10 {
			t.Fatalf("Pareto sample %v below scale", s)
		}
	}
}

func TestConstant(t *testing.T) {
	if s := (Constant{Value: 5}).Sample(nil); s != 5 {
		t.Errorf("Constant sample = %v", s)
	}
	if s := (Constant{Value: -3}).Sample(nil); s != MinStake {
		t.Errorf("Constant clamps to MinStake, got %v", s)
	}
}

func TestDistributionNames(t *testing.T) {
	tests := []struct {
		d    Distribution
		want string
	}{
		{Uniform{A: 1, B: 200}, "U(1,200)"},
		{UniformInt{A: 1, B: 50}, "U{1..50}"},
		{Normal{Mu: 100, Sigma: 20}, "N(100,20)"},
		{Pareto{Xm: 10, Alpha: 2}, "Pareto(10,2)"},
		{Constant{Value: 5}, "Const(5)"},
	}
	for _, tt := range tests {
		if got := tt.d.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestSamplePopulation(t *testing.T) {
	pop, err := SamplePopulation(Uniform{A: 1, B: 10}, 1000, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if pop.N() != 1000 {
		t.Errorf("N = %d", pop.N())
	}
	if pop.Min() < 1 || pop.Max() > 10 {
		t.Errorf("population out of range: [%v, %v]", pop.Min(), pop.Max())
	}
	if _, err := SamplePopulation(Uniform{A: 1, B: 10}, 0, testRNG()); err == nil {
		t.Error("expected error for empty population")
	}
}

func TestScaledPopulation(t *testing.T) {
	pop, err := ScaledPopulation(Uniform{A: 1, B: 200}, 5000, 50e6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pop.Total()-50e6) > 1 {
		t.Errorf("scaled total = %v, want 50e6", pop.Total())
	}
	if _, err := ScaledPopulation(Uniform{A: 1, B: 2}, 10, -1, testRNG()); err == nil {
		t.Error("expected error for negative total")
	}
}

func TestPopulationMinMaxEmpty(t *testing.T) {
	p := &Population{}
	if p.Min() != 0 || p.Max() != 0 || p.Total() != 0 {
		t.Error("empty population aggregates should be zero")
	}
}

func TestMinAbove(t *testing.T) {
	p := &Population{Stakes: []float64{1, 5, 9, 3}}
	tests := []struct {
		floor, want float64
	}{
		{0, 1}, {2, 3}, {5, 5}, {9.5, 0},
	}
	for _, tt := range tests {
		if got := p.MinAbove(tt.floor); got != tt.want {
			t.Errorf("MinAbove(%v) = %v, want %v", tt.floor, got, tt.want)
		}
	}
}

func TestRemoveBelow(t *testing.T) {
	p := &Population{Stakes: []float64{1, 2, 3, 4, 5}}
	q := p.RemoveBelow(3)
	if q.N() != 3 || q.Min() != 3 {
		t.Errorf("RemoveBelow: N=%d Min=%v", q.N(), q.Min())
	}
	if p.N() != 5 {
		t.Error("RemoveBelow mutated the receiver")
	}
}

func TestTransfer(t *testing.T) {
	p := &Population{Stakes: []float64{10, 20}}
	if moved := p.Transfer(0, 1, 4); moved != 4 {
		t.Errorf("Transfer moved %v, want 4", moved)
	}
	if p.Stakes[0] != 6 || p.Stakes[1] != 24 {
		t.Errorf("stakes after transfer: %v", p.Stakes)
	}
	// Saturates at sender balance.
	if moved := p.Transfer(0, 1, 100); moved != 6 {
		t.Errorf("saturating transfer moved %v, want 6", moved)
	}
	// Invalid transfers move nothing.
	for _, tc := range []struct {
		i, j int
		amt  float64
	}{
		{0, 0, 5}, {-1, 1, 5}, {0, 9, 5}, {0, 1, -5},
	} {
		if moved := p.Transfer(tc.i, tc.j, tc.amt); moved != 0 {
			t.Errorf("Transfer(%d,%d,%v) moved %v, want 0", tc.i, tc.j, tc.amt, moved)
		}
	}
}

func TestTransferConservesTotal(t *testing.T) {
	p := &Population{Stakes: []float64{10, 20, 30}}
	before := p.Total()
	rng := testRNG()
	for i := 0; i < 1000; i++ {
		p.Transfer(rng.Intn(3), rng.Intn(3), rng.Float64()*10)
	}
	if math.Abs(p.Total()-before) > 1e-9 {
		t.Errorf("total drifted: %v -> %v", before, p.Total())
	}
}

func TestWeightedIndexBias(t *testing.T) {
	p := &Population{Stakes: []float64{1, 99}}
	rng := testRNG()
	hits := 0
	for i := 0; i < 10_000; i++ {
		if p.WeightedIndex(rng) == 1 {
			hits++
		}
	}
	if hits < 9700 || hits > 9990 {
		t.Errorf("heavy account drawn %d/10000, want ~9900", hits)
	}
}

func TestClone(t *testing.T) {
	p := &Population{Stakes: []float64{1, 2}}
	q := p.Clone()
	q.Stakes[0] = 99
	if p.Stakes[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

// Property: RemoveBelow(w) keeps exactly the stakes >= w and never
// increases the total.
func TestRemoveBelowProperty(t *testing.T) {
	f := func(raw []float64, wRaw float64) bool {
		stakes := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				stakes = append(stakes, 1+math.Abs(math.Mod(x, 1000)))
			}
		}
		w := 1 + math.Abs(math.Mod(wRaw, 1000))
		p := &Population{Stakes: stakes}
		q := p.RemoveBelow(w)
		for _, s := range q.Stakes {
			if s < w {
				return false
			}
		}
		return q.Total() <= p.Total()+1e-9 && q.N() <= p.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling preserves relative proportions.
func TestScaledPopulationProportionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1, err := SamplePopulation(Uniform{A: 1, B: 100}, 100, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		p2, err := ScaledPopulation(Uniform{A: 1, B: 100}, 100, 12345, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		_ = rng
		ratio := p2.Stakes[0] / p1.Stakes[0]
		for i := range p1.Stakes {
			if math.Abs(p2.Stakes[i]/p1.Stakes[i]-ratio) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
