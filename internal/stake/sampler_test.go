package stake

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedSamplerNil(t *testing.T) {
	if NewWeightedSampler(nil) != nil {
		t.Error("nil population should yield nil sampler")
	}
	if NewWeightedSampler(&Population{}) != nil {
		t.Error("empty population should yield nil sampler")
	}
	if NewWeightedSampler(&Population{Stakes: []float64{0, 0}}) != nil {
		t.Error("zero-stake population should yield nil sampler")
	}
}

func TestWeightedSamplerProportionality(t *testing.T) {
	pop := &Population{Stakes: []float64{10, 30, 60}}
	s := NewWeightedSampler(pop)
	if s == nil {
		t.Fatal("nil sampler")
	}
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 3)
	const draws = 100_000
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	for i, want := range []float64{0.10, 0.30, 0.60} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d drawn %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedSamplerSkipsZeroStake(t *testing.T) {
	pop := &Population{Stakes: []float64{0, 100, 0}}
	s := NewWeightedSampler(pop)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10_000; i++ {
		if got := s.Sample(rng); got != 1 {
			t.Fatalf("drew zero-stake index %d", got)
		}
	}
}

// Property: the sampler agrees with the linear-scan WeightedIndex in
// distribution — both always return valid indices with positive stake.
func TestWeightedSamplerValidIndexProperty(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		stakes := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			stakes[i] = float64(r % 100)
			total += stakes[i]
		}
		pop := &Population{Stakes: stakes}
		s := NewWeightedSampler(pop)
		if total == 0 {
			return s == nil
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			idx := s.Sample(rng)
			if idx < 0 || idx >= len(stakes) || stakes[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
