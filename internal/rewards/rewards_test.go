package rewards

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
)

func TestScheduleTableIII(t *testing.T) {
	var s Schedule
	want := []float64{10, 13, 16, 19, 22, 25, 28, 31, 34, 36, 38, 38}
	if s.Periods() != 12 {
		t.Fatalf("Periods = %d", s.Periods())
	}
	for p := 1; p <= 12; p++ {
		got, err := s.PeriodReward(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[p-1]*1e6 {
			t.Errorf("period %d reward = %v, want %vM", p, got, want[p-1])
		}
	}
}

func TestScheduleTailRepeats(t *testing.T) {
	var s Schedule
	got, err := s.PeriodReward(13)
	if err != nil {
		t.Fatal(err)
	}
	if got != 38e6 {
		t.Errorf("period 13 reward = %v, want 38M (flat tail)", got)
	}
	if _, err := s.PeriodReward(0); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestPeriodOfRound(t *testing.T) {
	var s Schedule
	cases := []struct {
		round uint64
		want  int
	}{
		{1, 1}, {500_000, 1}, {500_001, 2}, {1_000_000, 2}, {6_000_000, 12}, {0, 1},
	}
	for _, c := range cases {
		if got := s.PeriodOfRound(c.round); got != c.want {
			t.Errorf("PeriodOfRound(%d) = %d, want %d", c.round, got, c.want)
		}
	}
}

func TestRoundRewardPeriod1Is20Algos(t *testing.T) {
	// The paper: "in the first reward period, 10 millions Algos would be
	// distributed, which is equal to approximately 20 Algos for each
	// round".
	var s Schedule
	got, err := s.RoundReward(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("round 1 reward = %v, want 20", got)
	}
	if _, err := s.RoundReward(0); err == nil {
		t.Error("round 0 accepted")
	}
}

func TestFoundationPoolCeiling(t *testing.T) {
	p := NewFoundationPool()
	if p.Name() != "foundation" {
		t.Error("pool name")
	}
	accepted, err := p.Deposit(FoundationCeiling - 10)
	if err != nil || accepted != FoundationCeiling-10 {
		t.Fatalf("deposit: %v, %v", accepted, err)
	}
	// Next deposit is truncated at the ceiling.
	accepted, err = p.Deposit(100)
	if err != nil || accepted != 10 {
		t.Errorf("truncated deposit = %v (err %v), want 10", accepted, err)
	}
	// Pool is now full.
	if _, err := p.Deposit(1); !errors.Is(err, ErrCeilingReached) {
		t.Errorf("deposit past ceiling err = %v", err)
	}
	if p.Deposited() != FoundationCeiling {
		t.Errorf("Deposited = %v", p.Deposited())
	}
}

func TestPoolWithdraw(t *testing.T) {
	p := NewTransactionFeePool()
	if _, err := p.Deposit(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Withdraw(40); err != nil {
		t.Fatal(err)
	}
	if p.Balance() != 60 {
		t.Errorf("balance = %v", p.Balance())
	}
	if err := p.Withdraw(100); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("overdraft err = %v", err)
	}
	if err := p.Withdraw(-1); err == nil {
		t.Error("negative withdrawal accepted")
	}
	if _, err := p.Deposit(-1); err == nil {
		t.Error("negative deposit accepted")
	}
}

func TestTransactionFeePoolUncapped(t *testing.T) {
	p := NewTransactionFeePool()
	if _, err := p.Deposit(FoundationCeiling * 2); err != nil {
		t.Errorf("uncapped pool rejected deposit: %v", err)
	}
}

func testRoles() protocol.RoundRoles {
	return protocol.RoundRoles{
		Round: 1,
		Leaders: []protocol.RoleStake{
			{ID: 0, Stake: 10, Weight: 1},
			{ID: 1, Stake: 20, Weight: 2},
		},
		Committee: []protocol.RoleStake{
			{ID: 2, Stake: 10, Weight: 3},
			{ID: 3, Stake: 40, Weight: 9},
		},
		Others: []protocol.RoleStake{
			{ID: 4, Stake: 10},
			{ID: 5, Stake: 110},
		},
	}
}

func TestFoundationDistribute(t *testing.T) {
	shares, err := Foundation{}.Distribute(200, testRoles())
	if err != nil {
		t.Fatal(err)
	}
	byID := sharesByID(shares)
	// Rate = 200/200 = 1 Algo per stake unit, role-blind.
	for id, stake := range map[int]float64{0: 10, 1: 20, 2: 10, 3: 40, 4: 10, 5: 110} {
		if math.Abs(byID[id]-stake) > 1e-9 {
			t.Errorf("id %d share = %v, want %v", id, byID[id], stake)
		}
	}
}

func TestRoleBasedDistribute(t *testing.T) {
	shares, err := RoleBased{Alpha: 0.2, Beta: 0.3}.Distribute(100, testRoles())
	if err != nil {
		t.Fatal(err)
	}
	byID := sharesByID(shares)
	want := map[int]float64{
		0: 20.0 * 10 / 30, 1: 20.0 * 20 / 30,
		2: 30.0 * 10 / 50, 3: 30.0 * 40 / 50,
		4: 50.0 * 10 / 120, 5: 50.0 * 110 / 120,
	}
	for id, w := range want {
		if math.Abs(byID[id]-w) > 1e-9 {
			t.Errorf("id %d share = %v, want %v", id, byID[id], w)
		}
	}
}

func TestRoleBasedEmptyGroupFolding(t *testing.T) {
	roles := testRoles()
	roles.Leaders = nil // no leader this round: α pool folds into γ
	shares, err := RoleBased{Alpha: 0.2, Beta: 0.3}.Distribute(100, roles)
	if err != nil {
		t.Fatal(err)
	}
	if total := TotalOf(shares); math.Abs(total-100) > 1e-9 {
		t.Errorf("value not conserved with empty group: %v", total)
	}
	byID := sharesByID(shares)
	// Others now share (0.2+0.5)*100 = 70.
	if math.Abs(byID[4]-70.0*10/120) > 1e-9 {
		t.Errorf("id 4 share = %v", byID[4])
	}
}

func TestRoleBasedNoOthers(t *testing.T) {
	roles := testRoles()
	roles.Others = nil // γ pool folds into the committee
	shares, err := RoleBased{Alpha: 0.2, Beta: 0.3}.Distribute(100, roles)
	if err != nil {
		t.Fatal(err)
	}
	if total := TotalOf(shares); math.Abs(total-100) > 1e-9 {
		t.Errorf("value not conserved: %v", total)
	}
}

func TestDistributeErrors(t *testing.T) {
	if _, err := (Foundation{}).Distribute(-1, testRoles()); err == nil {
		t.Error("negative reward accepted")
	}
	if _, err := (Foundation{}).Distribute(10, protocol.RoundRoles{}); !errors.Is(err, ErrNoParticipants) {
		t.Errorf("empty roles err = %v", err)
	}
	if _, err := (RoleBased{Alpha: 0, Beta: 0.3}).Distribute(10, testRoles()); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := (RoleBased{Alpha: 0.7, Beta: 0.4}).Distribute(10, testRoles()); err == nil {
		t.Error("alpha+beta>1 accepted")
	}
	if _, err := (RoleBased{Alpha: 0.2, Beta: 0.3}).Distribute(-5, testRoles()); err == nil {
		t.Error("negative reward accepted by role-based")
	}
}

func TestSchemeNames(t *testing.T) {
	if (Foundation{}).Name() != "foundation" || (RoleBased{}).Name() != "role-based" {
		t.Error("scheme names")
	}
}

func sharesByID(shares []Share) map[int]float64 {
	m := make(map[int]float64, len(shares))
	for _, s := range shares {
		m[s.ID] += s.Amount
	}
	return m
}

// Property: both schemes conserve value for arbitrary stake assignments.
func TestDistributeConservationProperty(t *testing.T) {
	f := func(stakes [6]uint16, b uint16) bool {
		roles := testRoles()
		roles.Leaders[0].Stake = float64(stakes[0]%500) + 1
		roles.Leaders[1].Stake = float64(stakes[1]%500) + 1
		roles.Committee[0].Stake = float64(stakes[2]%500) + 1
		roles.Committee[1].Stake = float64(stakes[3]%500) + 1
		roles.Others[0].Stake = float64(stakes[4]%500) + 1
		roles.Others[1].Stake = float64(stakes[5]%500) + 1
		reward := float64(b) / 7
		for _, scheme := range []Scheme{Foundation{}, RoleBased{Alpha: 0.1, Beta: 0.25}} {
			shares, err := scheme.Distribute(reward, roles)
			if err != nil {
				return false
			}
			if math.Abs(TotalOf(shares)-reward) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
