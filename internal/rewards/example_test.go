package rewards_test

import (
	"fmt"

	"github.com/dsn2020-algorand/incentives/internal/protocol"
	"github.com/dsn2020-algorand/incentives/internal/rewards"
)

// ExampleSchedule_RoundReward reads Table III: period 1 disburses 10M
// Algos over 500k blocks, i.e. 20 Algos per round.
func ExampleSchedule_RoundReward() {
	var s rewards.Schedule
	for _, round := range []uint64{1, 500_001, 5_500_001} {
		r, err := s.RoundReward(round)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("round %7d: %.0f Algos\n", round, r)
	}
	// Output:
	// round       1: 20 Algos
	// round  500001: 26 Algos
	// round 5500001: 76 Algos
}

// ExampleRoleBased_Distribute splits a 100-Algo round reward with
// (α, β) = (0.2, 0.3): 20 to the leaders, 30 to the committee, 50 to the
// other online nodes, each pool by stake.
func ExampleRoleBased_Distribute() {
	roles := protocol.RoundRoles{
		Leaders:   []protocol.RoleStake{{ID: 0, Stake: 30}},
		Committee: []protocol.RoleStake{{ID: 1, Stake: 10}, {ID: 2, Stake: 40}},
		Others:    []protocol.RoleStake{{ID: 3, Stake: 100}},
	}
	shares, err := rewards.RoleBased{Alpha: 0.2, Beta: 0.3}.Distribute(100, roles)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, s := range shares {
		fmt.Printf("node %d: %.0f Algos\n", s.ID, s.Amount)
	}
	// Output:
	// node 0: 20 Algos
	// node 1: 6 Algos
	// node 2: 24 Algos
	// node 3: 50 Algos
}
